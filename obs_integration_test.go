package vs2

// End-to-end tests of the observability layer: a traced, metered,
// explained run over a generated document must produce a span tree that
// mirrors the pipeline (phase durations accounting for the run's
// wall-clock), a populated metrics registry, and an extraction report
// whose entries agree with the extractions.

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"vs2/internal/faults"
)

func findChild(s SpanSnapshot, name string) *SpanSnapshot {
	for i := range s.Children {
		if s.Children[i].Name == name {
			return &s.Children[i]
		}
	}
	return nil
}

// TestObservabilityEndToEnd drives the full pipeline with tracing,
// metrics and explanation on a generated tax form — the acceptance
// scenario of the `vs2 -trace -metrics -explain` CLI path.
func TestObservabilityEndToEnd(t *testing.T) {
	d := GenerateTaxForms(1, 7)[0].Doc
	tr := NewTrace("vs2")
	m := NewMetrics()
	p := NewPipeline(Config{Task: NISTTaxTask(), Metrics: m, Explain: true})

	res, err := p.ExtractContext(WithTrace(context.Background(), tr), d)
	if err != nil {
		t.Fatalf("ExtractContext: %v", err)
	}
	tr.Finish()
	snap := tr.Snapshot()

	// Span tree shape: root → extract → {validate, segment, search,
	// disambiguate}, segmentation carrying split sub-spans.
	run := findChild(snap, "extract")
	if run == nil {
		t.Fatalf("trace has no extract span; children: %+v", snap.Children)
	}
	var phaseSum int64
	for _, phase := range []string{"validate", "segment", "search", "disambiguate"} {
		ps := findChild(*run, phase)
		if ps == nil {
			t.Fatalf("extract span missing %q child", phase)
		}
		phaseSum += ps.DurationNS
	}
	// The per-phase durations must account for the run's wall-clock to
	// within 10%: everything outside the phases is pointer plumbing.
	if run.DurationNS <= 0 {
		t.Fatal("extract span has no duration")
	}
	if gap := run.DurationNS - phaseSum; gap < 0 || float64(gap) > 0.10*float64(run.DurationNS) {
		t.Errorf("phase durations sum to %d of %d ns (gap %d, >10%%)", phaseSum, run.DurationNS, gap)
	}
	seg := findChild(*run, "segment")
	if findChild(*seg, "split") == nil {
		t.Error("segment span has no split sub-spans")
	}
	if got := run.Attrs["blocks"]; got == nil {
		t.Error("extract span missing blocks attribute")
	}

	// The snapshot must serialise to valid, round-trippable JSON — the
	// -trace wire contract.
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("trace does not marshal: %v", err)
	}
	var back SpanSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("trace JSON does not round-trip: %v", err)
	}

	// Metrics: one run, one observation per phase histogram, block and
	// entity counters consistent with the result.
	ms := m.Snapshot()
	if ms.Counters["extract.runs"] != 1 {
		t.Errorf("extract.runs = %d, want 1", ms.Counters["extract.runs"])
	}
	for _, h := range []string{"phase.validate.ms", "phase.segment.ms", "phase.search.ms", "phase.disambiguate.ms"} {
		if ms.Histograms[h].Count != 1 {
			t.Errorf("%s count = %d, want 1", h, ms.Histograms[h].Count)
		}
	}
	if got, want := ms.Counters["blocks.produced"], int64(len(res.Blocks)); got != want {
		t.Errorf("blocks.produced = %d, want %d", got, want)
	}
	if got, want := ms.Counters["entities.extracted"], int64(len(res.Entities)); got != want {
		t.Errorf("entities.extracted = %d, want %d", got, want)
	}

	// Report: one entry per entity with candidates; the winner of each
	// entry matches the extraction, and its block path resolves in the
	// layout tree.
	if res.Report == nil {
		t.Fatal("Explain set but Result.Report is nil")
	}
	if len(res.Entities) == 0 {
		t.Fatal("no entities extracted from the tax form")
	}
	if len(res.Report.Entities) < len(res.Entities) {
		t.Errorf("report explains %d entities, extracted %d", len(res.Report.Entities), len(res.Entities))
	}
	byEntity := map[string]EntityReport{}
	for _, er := range res.Report.Entities {
		byEntity[er.Entity] = er
	}
	for _, e := range res.Entities {
		er, ok := byEntity[e.Entity]
		if !ok {
			t.Errorf("entity %s has no report entry", e.Entity)
			continue
		}
		if len(er.Candidates) == 0 || !er.Candidates[0].Won {
			t.Errorf("entity %s: report winner not first (%+v)", e.Entity, er.Candidates)
			continue
		}
		if er.Candidates[0].Text != e.Text {
			t.Errorf("entity %s: report winner %q, extraction %q", e.Entity, er.Candidates[0].Text, e.Text)
		}
		if er.Candidates[0].BlockPath == "?" {
			t.Errorf("entity %s: winner block not found in layout tree", e.Entity)
		}
	}
}

// TestObservabilityUntraced checks the disabled path: no trace, no
// metrics, no explain — the result must be bit-identical in behaviour
// (entities, blocks) to a traced run and carry no report.
func TestObservabilityUntraced(t *testing.T) {
	d := GenerateEventPosters(1, 11)[0].Doc
	plain := NewPipeline(Config{Task: EventPosterTask()})
	res, err := plain.ExtractContext(context.Background(), d)
	if err != nil {
		t.Fatalf("ExtractContext: %v", err)
	}
	if res.Report != nil {
		t.Error("untraced run has a report")
	}

	traced := NewPipeline(Config{Task: EventPosterTask(), Metrics: NewMetrics(), Explain: true})
	tr := NewTrace("vs2")
	res2, err := traced.ExtractContext(WithTrace(context.Background(), tr), d)
	if err != nil {
		t.Fatalf("traced ExtractContext: %v", err)
	}
	if len(res.Entities) != len(res2.Entities) {
		t.Fatalf("tracing changed the result: %d vs %d entities", len(res.Entities), len(res2.Entities))
	}
	for i := range res.Entities {
		if res.Entities[i] != res2.Entities[i] {
			t.Errorf("entity %d differs under tracing: %+v vs %+v", i, res.Entities[i], res2.Entities[i])
		}
	}
}

// TestObservabilityFaultEvents checks that injected faults surface as
// span events on the phase they hit, and that degradations carry
// timestamps and render via String.
func TestObservabilityFaultEvents(t *testing.T) {
	d := GenerateEventPosters(1, 3)[0].Doc
	base := NewPipeline(Config{Task: EventPosterTask()})
	cfg := Config{
		Task:      EventPosterTask(),
		Segmenter: &faults.Segmenter{Inner: segBackend{base}, Inject: faults.Injection{Kind: faults.Panic}},
	}
	p := NewPipeline(cfg)
	tr := NewTrace("vs2")
	before := time.Now()
	res, err := p.ExtractContext(WithTrace(context.Background(), tr), d)
	if err != nil {
		t.Fatalf("ExtractContext: %v", err)
	}
	if !res.IsDegraded() {
		t.Fatal("panic injection did not degrade")
	}
	g := res.Degraded[0]
	if g.Time.Before(before) || g.Time.After(time.Now()) {
		t.Errorf("degradation time %v outside run window", g.Time)
	}
	if s := g.String(); s == "" || g.Fallback == "" {
		t.Errorf("degradation renders empty: %q", s)
	}
	tr.Finish()
	snap := tr.Snapshot()
	run := findChild(snap, "extract")
	if run == nil {
		t.Fatal("no extract span")
	}
	seg := findChild(*run, "segment")
	if seg == nil {
		t.Fatal("no segment span")
	}
	foundFault := false
	for _, ev := range seg.Events {
		if ev.Name == "fault.injected" {
			foundFault = true
		}
	}
	if !foundFault {
		t.Errorf("segment span events %+v lack fault.injected", seg.Events)
	}
	foundDeg := false
	for _, ev := range run.Events {
		if ev.Name == "degraded" {
			foundDeg = true
		}
	}
	if !foundDeg {
		t.Errorf("extract span events %+v lack degraded", run.Events)
	}
}

// segBackend adapts a Pipeline's built-in segmenter for fault wrapping.
type segBackend struct{ p *Pipeline }

func (s segBackend) SegmentContext(ctx context.Context, d *Document) (*Node, error) {
	return s.p.segmenter.SegmentContext(ctx, d)
}
