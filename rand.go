package vs2

import "math/rand"

// newRand builds the deterministic RNG used by the public noise helpers.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
