// robust.go is the hardened service layer around the two-phase pipeline:
// context-aware extraction with per-phase budgets, structured errors,
// panic containment at phase boundaries, and graceful degradation to
// cheaper strategies (linear segmentation, first-match selection) that is
// always reported to the caller through Result.Degraded.
package vs2

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/pprof"
	"time"

	"vs2/internal/baselines"
	"vs2/internal/doc"
	"vs2/internal/extract"
	"vs2/internal/obs"
	"vs2/internal/segment"
	"vs2/internal/template"
	"vs2/internal/triage"
)

// Phase identifies one stage of the pipeline in errors and degradation
// records.
type Phase string

const (
	// PhaseValidate is input admission (Document.Validate plus guards).
	PhaseValidate Phase = "validate"
	// PhaseTemplate is the pre-segmentation template-cache probe: the
	// quantized-geometry fingerprint lookup that, on a hit, replaces
	// VS2-Segment with a remapped memoized layout tree.
	PhaseTemplate Phase = "template"
	// PhaseSegment is VS2-Segment, the layout-tree decomposition.
	PhaseSegment Phase = "segment"
	// PhaseSearch is the pattern-search half of VS2-Select.
	PhaseSearch Phase = "search"
	// PhaseDisambiguate is the Eq. 2 conflict-resolution half of VS2-Select.
	PhaseDisambiguate Phase = "disambiguate"
)

// Sentinel causes carried inside Error, for errors.Is dispatch. Budget
// overruns additionally wrap context.DeadlineExceeded, and input problems
// wrap the doc-package sentinels (re-exported below).
var (
	// ErrInvalidDocument marks inputs rejected before the pipeline ran.
	ErrInvalidDocument = errors.New("invalid document")
	// ErrPanic marks a panic recovered at a phase boundary.
	ErrPanic = errors.New("panic recovered")
	// ErrBudgetExceeded marks a phase that outran its Budgets allowance.
	ErrBudgetExceeded = errors.New("phase budget exceeded")
)

// Input-guard sentinels of the document validator, re-exported so callers
// can dispatch on the rejection cause without importing internal packages.
var (
	ErrEmptyDocument   = doc.ErrEmptyDocument
	ErrNonFinite       = doc.ErrNonFinite
	ErrTooManyElements = doc.ErrTooManyElements
	ErrPageTooLarge    = doc.ErrPageTooLarge
)

// Error is the structured pipeline error: which phase failed, an optional
// finer-grained stage, and the cause. It participates in errors.Is/As
// chains through Unwrap.
type Error struct {
	// Phase is the pipeline stage that failed.
	Phase Phase
	// Stage optionally narrows the failure inside the phase.
	Stage string
	// Err is the cause; never nil.
	Err error
}

// Error implements the error interface.
func (e *Error) Error() string {
	s := "vs2: " + string(e.Phase)
	if e.Stage != "" {
		s += " (" + e.Stage + ")"
	}
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

// Unwrap exposes the cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// Timeout reports whether the failure was a deadline (the caller's or a
// phase budget).
func (e *Error) Timeout() bool { return errors.Is(e.Err, context.DeadlineExceeded) }

// Budgets bounds each pipeline phase with a wall-clock allowance. A zero
// field leaves that phase unbounded (beyond the caller's ctx). When a
// phase overruns its budget the pipeline degrades rather than fails:
// segmentation falls back to the linear baseline, search keeps the
// candidates found so far, disambiguation falls back to first-match.
type Budgets struct {
	// Segment bounds VS2-Segment.
	Segment time.Duration
	// Search bounds the pattern search over the logical blocks.
	Search time.Duration
	// Disambiguate bounds interest-point selection plus Eq. 2 ranking.
	Disambiguate time.Duration
}

// Degradation records one fallback the pipeline took instead of failing.
type Degradation struct {
	// Phase is where the primary strategy was abandoned.
	Phase Phase
	// Fallback names the strategy used instead: "linear-segmentation",
	// "sanitized-blocks", "sequential-recursion", "partial-search",
	// "first-match", or — chosen by the fidelity ladder rather than forced
	// by a failure — "triage-cheap" / "triage-skip".
	Fallback string
	// Cause describes why, in one line.
	Cause string
	// Time is when the fallback was taken, for correlating degradations
	// with traces and logs.
	Time time.Time
}

// String renders the degradation for warnings and trace output, e.g.
//
//	[12:04:05.231] segment degraded to linear-segmentation: phase budget exceeded
func (g Degradation) String() string {
	s := fmt.Sprintf("%s degraded to %s", g.Phase, g.Fallback)
	if g.Cause != "" {
		s += ": " + g.Cause
	}
	if !g.Time.IsZero() {
		s = "[" + g.Time.Format("15:04:05.000") + "] " + s
	}
	return s
}

// SegmentBackend produces the layout tree of a document. The default is
// the built-in VS2-Segment; Config.Segmenter overrides it (the
// internal/faults harness wraps it to inject failures).
type SegmentBackend interface {
	SegmentContext(ctx context.Context, d *Document) (*Node, error)
}

// ExtractBackend runs the search and select halves of VS2-Select. The
// default is the built-in extractor; Config.Extractor overrides it.
// SelectFirstMatch is the degraded-mode selection and must not depend on
// budgets or embeddings.
type ExtractBackend interface {
	SearchContext(ctx context.Context, d *Document, blocks []*Node, sets []*PatternSet) (map[string][]Candidate, error)
	SelectContext(ctx context.Context, d *Document, blocks []*Node, candidates map[string][]Candidate, sets []*PatternSet) ([]Extraction, error)
	SelectFirstMatch(d *Document, candidates map[string][]Candidate, sets []*PatternSet) []Extraction
}

// ExtractContext runs the full two-phase pipeline under ctx with the
// configured per-phase budgets. Its failure containment:
//
//   - The document is validated first; rejects return a *Error with
//     PhaseValidate wrapping ErrInvalidDocument.
//   - Panics inside a phase are recovered at the phase boundary and
//     converted to errors wrapping ErrPanic.
//   - Segmentation failure of any kind (budget, panic, error, corrupt
//     output) degrades to the linear baseline segmentation.
//   - Search that overruns its budget degrades to the candidates already
//     found; other search failures are returned as *Error.
//   - Disambiguation failure of any kind degrades to first-match
//     selection.
//   - Cancellation of ctx itself always aborts with a *Error.
//
// Every fallback taken is recorded in Result.Degraded. The returned error,
// when non-nil, is always a *Error.
//
// Observability: when the context carries an obs.Trace (vs2.WithTrace) the
// run records a span per phase — the segmenter and extractor add their own
// sub-spans beneath them — and degradations become span events. When
// Config.Metrics is set, per-phase latency histograms and the run/block/
// candidate/degradation counters are updated. Both are nil-guarded fast
// paths: an untraced, unmetered run pays a few nil checks.
func (p *Pipeline) ExtractContext(ctx context.Context, d *Document) (*Result, error) {
	m := p.cfg.Metrics
	parent := obs.SpanFrom(ctx)
	if parent == nil {
		parent = obs.TraceFrom(ctx).Root()
	}
	run := parent.Child("extract")
	defer run.End()
	m.Counter("extract.runs").Inc()

	fail := func(phase Phase, stage string, err error) (*Result, error) {
		e := &Error{Phase: phase, Stage: stage, Err: err}
		run.SetAttr("error", e.Error())
		m.Counter("extract.errors." + string(phase)).Inc()
		return nil, e
	}

	// Phase 0: validation.
	vstart := time.Now()
	vspan := run.Child("validate")
	verr := func() error {
		switch {
		case ctx.Err() != nil:
			return ctx.Err()
		case d == nil:
			return fmt.Errorf("%w: nil document", ErrInvalidDocument)
		default:
			if err := d.Validate(); err != nil {
				return fmt.Errorf("%w: %w", ErrInvalidDocument, err)
			}
			return nil
		}
	}()
	vspan.End()
	m.Histogram("phase.validate.ms", nil).Observe(msSince(vstart))
	if verr != nil {
		return fail(PhaseValidate, "", verr)
	}
	vspan.SetAttr("elements", len(d.Elements))

	res := &Result{}
	degrade := func(phase Phase, fallback string, cause error) {
		res.degrade(phase, fallback, cause)
		g := res.Degraded[len(res.Degraded)-1]
		run.AddEvent("degraded",
			obs.Str("phase", string(phase)),
			obs.Str("fallback", fallback),
			obs.Str("cause", g.Cause))
		m.Counter("degraded." + fallback).Inc()
	}

	// Phase 0.5: triage. When the serving layer's fidelity ladder marked
	// this document for a cheaper path (a choice, not a failure), the
	// expensive segmentation is skipped outright: CHEAP takes the linear
	// baseline tree, SKIP treats the whole page as one block. Exactly one
	// Degradation records the routing — it covers both the segmentation
	// substitute and the first-match selection the triaged run uses — so
	// Result.Degraded and -explain stay honest about what actually ran.
	dec, triaged := triageDecisionFrom(ctx)
	var tree *Node
	var err error
	var fp template.Fingerprint
	tplOutcome := "" // "hit" / "miss" when the cache probed this run
	tplInsert := false
	switch {
	case triaged && dec.class == triage.Skip:
		tree = doc.NewTree(d)
		degrade(PhaseTriage, "triage-skip", dec.cause())
		run.SetAttr("triage", "skip")
	case triaged && dec.class == triage.Cheap:
		tree = p.linearTree(d)
		degrade(PhaseTriage, "triage-cheap", dec.cause())
		run.SetAttr("triage", "cheap")
	default:
		triaged = false
		// Phase 0.75: template-cache probe. Only full-fidelity runs reach
		// this point, so a SKIP/CHEAP triage routing can never poison the
		// cache with its substitute trees. A hit replaces VS2-Segment with
		// the memoized structure remapped onto this document's geometry —
		// a designed reuse, not a fallback, so it records no Degradation.
		if tc := p.cfg.Templates; tc != nil {
			tstart := time.Now()
			tsp := run.Child("template")
			fp = tc.Fingerprint(d)
			if cached, ok := tc.Lookup(d, fp); ok {
				tree = cached
				tplOutcome = "hit"
			} else {
				tplOutcome = "miss"
			}
			tsp.SetAttr("outcome", tplOutcome)
			tsp.SetAttr("fingerprint", fp.String())
			tsp.End()
			m.Histogram("phase.template.ms", nil).Observe(msSince(tstart))
			run.SetAttr("template", tplOutcome)
		}
		if tree == nil {
			// Phase 1: segmentation. Any failure degrades to the linear
			// baseline. A stats sink rides the phase context so a
			// parallel-capable segmenter can report whether the branch pool
			// ever admitted a fork.
			sctx, segStats := segment.WithStats(ctx)
			tree, err = p.segmentPhase(sctx, run, d)
			if err != nil {
				if ctx.Err() != nil {
					return fail(PhaseSegment, "", err)
				}
				degrade(PhaseSegment, "linear-segmentation", err)
				tree = p.linearTree(d)
			} else if segStats.SequentialFallback() {
				// The tree is still correct — sequential recursion is the designed
				// pressure valve, and it produces identical output — but the run
				// did not get the parallelism it was configured for, which callers
				// watching latency SLOs need to see.
				degrade(PhaseSegment, "sequential-recursion",
					errors.New("branch pool exhausted; subtrees recursed inline"))
			}
			// Only a cleanly segmented tree may be memoized; the linear
			// fallback is a degradation, not the template's layout.
			tplInsert = tplOutcome == "miss" && err == nil
		}
	}
	blocks, note := sanitizeBlocks(d, tree)
	if note != "" {
		// The segmenter returned blocks a correct implementation cannot
		// produce (corrupt geometry, dangling element indices, dropped
		// elements); the cleaned set is used and the damage reported.
		degrade(PhaseSegment, "sanitized-blocks", errors.New(note))
		tree = wrapBlocks(d, blocks)
	}
	if tplInsert && note == "" {
		// Memoize after sanitation has vouched for the tree: a damaged
		// tree must degrade this run only, never future hits.
		p.cfg.Templates.Insert(d, fp, tree)
	}

	// Phase 2: pattern search. A budget overrun keeps partial candidates,
	// and a search short-circuited by its tripped circuit breaker (the
	// serving layer wraps the backend) keeps the empty set it returned —
	// both continue as degraded partial-search runs.
	cands, err := p.searchPhase(ctx, run, d, blocks)
	if err != nil {
		if ctx.Err() != nil {
			return fail(PhaseSearch, "", err)
		}
		if cands == nil || !(errors.Is(err, ErrBudgetExceeded) || errors.Is(err, ErrBreakerOpen)) {
			return fail(PhaseSearch, "", err)
		}
		degrade(PhaseSearch, "partial-search", err)
	}

	// Phase 3: disambiguation. A triaged run takes first-match selection
	// by design — the routing's single Degradation already covers it, so
	// no second entry is recorded. Otherwise any failure degrades to
	// first-match. When an explanation was requested, a sink rides the
	// phase context and the extractor fills it with the Eq. 2 reasoning
	// per entity.
	var entities []Extraction
	var sink *extract.ExplainSink
	if triaged {
		entities, err = p.firstMatchPhase(d, cands)
		if err != nil {
			return fail(PhaseDisambiguate, "triage first-match", err)
		}
	} else {
		ectx := ctx
		if p.cfg.Explain {
			ectx, sink = extract.WithExplain(ctx)
		}
		entities, err = p.selectPhase(ectx, run, d, blocks, cands)
		if err != nil {
			if ctx.Err() != nil {
				return fail(PhaseDisambiguate, "", err)
			}
			fallback, ferr := p.firstMatchPhase(d, cands)
			if ferr != nil {
				return fail(PhaseDisambiguate, "first-match fallback", ferr)
			}
			degrade(PhaseDisambiguate, "first-match", err)
			entities = fallback
		}
	}

	res.Entities, res.Blocks, res.Tree = entities, blocks, tree
	if sink != nil {
		res.Report = buildReport(tree, sink.Explanations(), res.Degraded)
	} else if p.cfg.Explain {
		// A triaged run never fills the Eq. 2 sink (first-match has no
		// reasoning to explain), but the report still carries the
		// degradation trail so -explain shows why the cheap path ran.
		res.Report = buildReport(tree, nil, res.Degraded)
	}
	if res.Report != nil {
		res.Report.Template = tplOutcome
	}
	if run != nil || m != nil {
		total := 0
		for _, cs := range cands {
			total += len(cs)
		}
		m.Counter("blocks.produced").Add(int64(len(blocks)))
		m.Counter("entities.extracted").Add(int64(len(entities)))
		m.Counter("candidates.found").Add(int64(total))
		m.Counter("candidates.rejected").Add(int64(total - len(entities)))
		m.Gauge("last.blocks").Set(float64(len(blocks)))
		run.SetAttr("blocks", len(blocks))
		run.SetAttr("entities", len(entities))
		run.SetAttr("candidates", total)
		run.SetAttr("degradations", len(res.Degraded))
	}
	return res, nil
}

// phaseSpan opens the span for one phase and attaches it to the phase
// context, so the backend below picks it up as its parent.
func phaseSpan(pctx context.Context, run *obs.Span, name string) (context.Context, *obs.Span) {
	sp := run.Child(name)
	return obs.WithSpan(pctx, sp), sp
}

func msSince(start time.Time) float64 {
	return float64(time.Since(start)) / float64(time.Millisecond)
}

// segmentPhase runs the segmenter under its budget with panic recovery.
func (p *Pipeline) segmentPhase(ctx context.Context, run *obs.Span, d *Document) (tree *Node, err error) {
	defer recoverPhase(&err)
	start := time.Now()
	defer func() { p.cfg.Metrics.Histogram("phase.segment.ms", nil).Observe(msSince(start)) }()
	pctx, cancel := phaseContext(ctx, p.cfg.Budgets.Segment)
	defer cancel()
	pctx, sp := phaseSpan(pctx, run, "segment")
	defer sp.End()
	pprof.Do(pctx, pprof.Labels("vs2_phase", "segment"), func(c context.Context) {
		tree, err = p.segmenter.SegmentContext(c, d)
	})
	if err == nil && tree == nil {
		err = errors.New("segmenter returned no tree")
	}
	if err = budgetize(ctx, pctx, err); err != nil {
		sp.SetAttr("error", err.Error())
	}
	return tree, err
}

// searchPhase runs the pattern search under its budget with panic
// recovery; on a budget overrun the partial candidate map is returned
// alongside the error.
func (p *Pipeline) searchPhase(ctx context.Context, run *obs.Span, d *Document, blocks []*Node) (cands map[string][]Candidate, err error) {
	defer recoverPhase(&err)
	start := time.Now()
	defer func() { p.cfg.Metrics.Histogram("phase.search.ms", nil).Observe(msSince(start)) }()
	pctx, cancel := phaseContext(ctx, p.cfg.Budgets.Search)
	defer cancel()
	pctx, sp := phaseSpan(pctx, run, "search")
	defer sp.End()
	pprof.Do(pctx, pprof.Labels("vs2_phase", "search"), func(c context.Context) {
		cands, err = p.extractor.SearchContext(c, d, blocks, p.cfg.Task.Sets)
	})
	if err = budgetize(ctx, pctx, err); err != nil {
		sp.SetAttr("error", err.Error())
	}
	return cands, err
}

// selectPhase runs conflict resolution under its budget with panic
// recovery.
func (p *Pipeline) selectPhase(ctx context.Context, run *obs.Span, d *Document, blocks []*Node, cands map[string][]Candidate) (out []Extraction, err error) {
	defer recoverPhase(&err)
	start := time.Now()
	defer func() { p.cfg.Metrics.Histogram("phase.disambiguate.ms", nil).Observe(msSince(start)) }()
	pctx, cancel := phaseContext(ctx, p.cfg.Budgets.Disambiguate)
	defer cancel()
	pctx, sp := phaseSpan(pctx, run, "disambiguate")
	defer sp.End()
	pprof.Do(pctx, pprof.Labels("vs2_phase", "disambiguate"), func(c context.Context) {
		out, err = p.extractor.SelectContext(c, d, blocks, cands, p.cfg.Task.Sets)
	})
	if err = budgetize(ctx, pctx, err); err != nil {
		sp.SetAttr("error", err.Error())
	}
	return out, err
}

// firstMatchPhase is the last-resort selection; recovery matters because
// the candidates may come from a search over corrupted blocks.
func (p *Pipeline) firstMatchPhase(d *Document, cands map[string][]Candidate) (out []Extraction, err error) {
	defer recoverPhase(&err)
	return p.extractor.SelectFirstMatch(d, cands, p.cfg.Task.Sets), nil
}

// linearTree builds the fallback layout tree: the linear baseline
// segmentation under the document root, or a single whole-page block if
// even that fails.
func (p *Pipeline) linearTree(d *Document) (tree *Node) {
	defer func() {
		if recover() != nil || tree == nil {
			tree = doc.NewTree(d)
		}
	}()
	root := doc.NewTree(d)
	if blocks := (baselines.Linear{}).Segment(d); len(blocks) > 1 {
		for _, b := range blocks {
			b.Depth = 1
		}
		root.Children = blocks
	}
	return root
}

// sanitizeBlocks guards the extraction phases against a segmenter that
// returned damaged output: leaves with non-finite boxes, element indices
// outside the document, or missing elements (a truncated tree). Invalid
// leaves are dropped and uncovered elements are regrouped into a residual
// block, so the search phase always sees a usable, in-bounds block set. A
// correct segmenter's output passes through untouched with note == "".
func sanitizeBlocks(d *Document, tree *Node) (blocks []*Node, note string) {
	leaves := tree.Leaves()
	covered := make([]bool, len(d.Elements))
	dropped := 0
	for _, b := range leaves {
		if !validBlock(d, b) {
			dropped++
			continue
		}
		for _, id := range b.Elements {
			covered[id] = true
		}
		blocks = append(blocks, b)
	}
	var uncovered []int
	for i, c := range covered {
		if !c {
			uncovered = append(uncovered, i)
		}
	}
	switch {
	case dropped == 0 && len(uncovered) == 0:
		return blocks, ""
	case len(uncovered) > 0:
		blocks = append(blocks, &Node{Box: d.BoundingBoxOf(uncovered), Elements: uncovered, Depth: 1})
	}
	return blocks, fmt.Sprintf("%d invalid blocks dropped, %d uncovered elements regrouped", dropped, len(uncovered))
}

func validBlock(d *Document, b *Node) bool {
	if b == nil || len(b.Elements) == 0 {
		return false
	}
	if math.IsNaN(b.Box.X) || math.IsNaN(b.Box.Y) || math.IsNaN(b.Box.W) || math.IsNaN(b.Box.H) ||
		math.IsInf(b.Box.X, 0) || math.IsInf(b.Box.Y, 0) || math.IsInf(b.Box.W, 0) || math.IsInf(b.Box.H, 0) {
		return false
	}
	for _, id := range b.Elements {
		if id < 0 || id >= len(d.Elements) {
			return false
		}
	}
	return true
}

// wrapBlocks rebuilds a two-level layout tree over a sanitized block set,
// discarding whatever internal structure the damaged tree carried.
func wrapBlocks(d *Document, blocks []*Node) *Node {
	root := doc.NewTree(d)
	if len(blocks) > 1 {
		for _, b := range blocks {
			b.Depth = 1
			b.Children = nil
		}
		root.Children = blocks
	}
	return root
}

// phaseContext derives the phase's deadline context; a non-positive budget
// leaves the caller's context in charge.
func phaseContext(ctx context.Context, budget time.Duration) (context.Context, context.CancelFunc) {
	if budget <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, budget)
}

// budgetize marks an error caused by the phase's own deadline — rather
// than the caller's — as a budget overrun.
func budgetize(ctx, pctx context.Context, err error) error {
	if err != nil && pctx.Err() != nil && ctx.Err() == nil {
		return fmt.Errorf("%w: %w", ErrBudgetExceeded, err)
	}
	return err
}

// recoverPhase converts a panic inside a phase into an error wrapping
// ErrPanic, so a pathological document (or an injected fault) cannot take
// down the process.
func recoverPhase(errp *error) {
	if r := recover(); r != nil {
		*errp = fmt.Errorf("%w: %v", ErrPanic, r)
	}
}

func (r *Result) degrade(phase Phase, fallback string, cause error) {
	c := ""
	if cause != nil {
		c = cause.Error()
	}
	r.Degraded = append(r.Degraded, Degradation{Phase: phase, Fallback: fallback, Cause: c, Time: time.Now()})
}

// IsDegraded reports whether any phase fell back to a cheaper strategy.
func (r *Result) IsDegraded() bool { return len(r.Degraded) > 0 }
