package vs2

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// This file is the differential harness for the layout-template
// fingerprint cache. The contract is absolute: a cache hit must produce
// output byte-identical (RenderLine) to what the cold path would have
// produced on the same document, with an equivalent explanation Report
// — the cache may only ever change latency, never bytes. The harness
// applies the PR 4 oracle pattern to the cache: the golden corpora plus
// seeded synthetic templates with jittered geometry, all replayable
// from their seeds through rand.go (no wall clock anywhere). `make
// template-diff` runs it under the race detector as part of `make
// check`.

// synthValue generators produce per-instance field values that vary
// freely in content while keeping the fingerprint's text shape (length
// bucket + character class) fixed — exactly the variation a recurring
// form face exhibits between fillings.
var (
	synthNames  = []string{"Burke", "Hayes", "Lopez", "Mills", "Stone", "Drake"}
	synthWords  = []string{"quiet", "sunny", "grand", "brick", "newer", "clean"}
	synthLabels = [8][4]string{
		{"Broker", "Phone", "Email", "Price"},
		{"Agent", "Contact", "Offer", "Size"},
		{"Listing", "Address", "Acres", "About"},
		{"Seller", "Callnow", "Reach", "Asking"},
		{"Realty", "Mobile", "Inbox", "Value"},
		{"Office", "Direct", "Write", "Total"},
		{"Branch", "Hotline", "Notes", "Quote"},
		{"Group", "Tollfree", "Reply", "Worth"},
	}
)

// synthTemplateDoc renders instance inst of synthetic template tpl
// (0..7): a single-column page of label/value blocks. Layout geometry
// is template-determined on a 4-unit grid; each instance jitters
// element positions by up to ±1.9 units (inside the default tolerance
// band of quantum/2 = 2) and redraws every field value with the same
// text shape. The layouts are designed so the tree's structure is
// identical across instances — which is what makes a template cacheable
// in the first place: blocks are pairs (label, value) that can never be
// split below block level (MinElements), inter-block gaps exceed the
// Eq. 1 merge ceiling of 0.16·maxDim, and the gap widths within one
// template differ from each other by ≥25% so Algorithm 1's
// clearance-ranked delimiter selection orders them identically for
// every jittered instance (near-ties would let jitter reshuffle the
// ranking and reshape the tree).
func synthTemplateDoc(tpl int, inst int64) *Document {
	rng := newRand(int64(tpl)*1000 + inst + 1)
	jit := func() float64 { return rng.Float64()*3.8 - 1.9 }
	d := &Document{
		ID:     fmt.Sprintf("synth-t%d-i%d", tpl, inst),
		Width:  400,
		Height: 560,
	}
	font := []float64{10, 12, 14}[tpl%3]
	color := []RGB{{R: 20, G: 20, B: 20}, {R: 30, G: 60, B: 200}, {R: 160, G: 30, B: 30}}[tpl%3]
	round4 := func(v float64) float64 { return float64(int((v+2)/4)) * 4 }
	addWord := func(x, y float64, text string, line int) {
		d.Elements = append(d.Elements, Element{
			ID:       len(d.Elements),
			Kind:     TextElement,
			Text:     text,
			Box:      Rect{X: x + jit(), Y: y + jit(), W: round4(float64(len(text)) * font * 0.55), H: round4(font)},
			Color:    color,
			FontSize: font,
			Line:     line,
		})
	}
	value := func(slot int) string {
		switch slot % 4 {
		case 0: // phone-shaped
			return fmt.Sprintf("614-555-%04d", rng.Intn(10000))
		case 1: // price-shaped
			return fmt.Sprintf("$%d%d%d,900", 1+rng.Intn(9), rng.Intn(10), rng.Intn(10))
		case 2: // name-shaped
			return synthNames[rng.Intn(len(synthNames))]
		default: // word-shaped
			return synthWords[rng.Intn(len(synthWords))]
		}
	}
	// Single column, 3 or 4 blocks; strictly distinct vertical pitches
	// (96 / 128 / 160, ascending or descending per template) keep the
	// delimiter ranking jitter-stable.
	nBlocks := 3 + tpl%2
	pitches := []float64{96, 128, 160}
	if tpl%2 == 1 {
		pitches = []float64{160, 128, 96}
	}
	x := 40.0
	y := 40 + 4*float64(tpl)
	for b := 0; b < nBlocks; b++ {
		label := synthLabels[tpl][b%4]
		addWord(x, y, label, b)
		addWord(x+round4(float64(len(label))*font*0.55)+4, y, value(b+tpl), b)
		if b < len(pitches) {
			y += pitches[b]
		}
	}
	return d
}

// renderedLine is the byte-identity unit of the contract.
func renderedLine(res *Result, d *Document, err error) []byte {
	return RenderLine(BatchResult{Doc: d, Result: res, Err: err})
}

// normalizeReport strips the fields the contract explicitly excludes:
// the Template marker (the cold pipeline has no cache, so "hit" vs ""
// is the one designed difference) and degradation wall-clock stamps
// (already excluded from RenderLine for the same reason).
func normalizeReport(r *Report) *Report {
	if r == nil {
		return nil
	}
	cp := *r
	cp.Template = ""
	cp.Degraded = append([]Degradation(nil), r.Degraded...)
	for i := range cp.Degraded {
		cp.Degraded[i].Time = time.Time{}
	}
	return &cp
}

func assertWarmEqualsCold(t *testing.T, label string, d *Document, coldRes, warmRes *Result, coldErr, warmErr error) {
	t.Helper()
	coldLine := renderedLine(coldRes, d, coldErr)
	warmLine := renderedLine(warmRes, d, warmErr)
	if !bytes.Equal(coldLine, warmLine) {
		t.Fatalf("%s: warm output diverges from cold\n--- cold ---\n%s\n--- warm ---\n%s", label, coldLine, warmLine)
	}
	if !reflect.DeepEqual(normalizeReport(coldRes.Report), normalizeReport(warmRes.Report)) {
		t.Fatalf("%s: warm Report diverges from cold\n--- cold ---\n%s\n--- warm ---\n%s",
			label, coldRes.Report, warmRes.Report)
	}
	if len(coldRes.Degraded) != len(warmRes.Degraded) {
		t.Fatalf("%s: degradation trail diverges: cold %v, warm %v", label, coldRes.Degraded, warmRes.Degraded)
	}
}

// TestTemplateDiffGolden runs every golden-corpus document through a
// cold pipeline and twice through a cache-enabled pipeline: the first
// warm pass must miss and memoize (the corpora are real segmenter
// output, so insert refusing any of them is a bug), the second must hit
// and render byte-identical output with an identical layout tree.
func TestTemplateDiffGolden(t *testing.T) {
	tasks := map[string]Task{
		"taxforms":     NISTTaxTask(),
		"eventposters": EventPosterTask(),
		"realestate":   RealEstateTask(),
	}
	ctx := context.Background()
	for name, docs := range goldenCorpora() {
		t.Run(name, func(t *testing.T) {
			cache := NewTemplateCache(16, 0, nil)
			cold := NewPipeline(Config{Task: tasks[name], Explain: true})
			warm := NewPipeline(Config{Task: tasks[name], Explain: true, Templates: cache})
			for _, d := range docs {
				coldRes, coldErr := cold.ExtractContext(ctx, d)
				w1, err1 := warm.ExtractContext(ctx, d)
				assertWarmEqualsCold(t, d.ID+" (warm miss)", d, coldRes, w1, coldErr, err1)
				w2, err2 := warm.ExtractContext(ctx, d)
				assertWarmEqualsCold(t, d.ID+" (warm hit)", d, coldRes, w2, coldErr, err2)
				if coldRes != nil && w2 != nil {
					if got, want := w2.Tree.Dump(d), coldRes.Tree.Dump(d); got != want {
						t.Fatalf("%s: remapped tree diverges from cold tree\n--- warm ---\n%s\n--- cold ---\n%s", d.ID, got, want)
					}
					if w2.Report.Template != "hit" {
						t.Fatalf("%s: second warm pass reported %q, want hit", d.ID, w2.Report.Template)
					}
				}
			}
			st := cache.Stats()
			if st.Hits != int64(len(docs)) || st.Inserts != int64(len(docs)) {
				t.Fatalf("cache stats %+v: want %d hits and %d inserts (every golden tree must be cacheable)", st, len(docs), len(docs))
			}
			if st.Uncacheable != 0 || st.GuardRejects != 0 {
				t.Fatalf("cache stats %+v: unexpected uncacheable/guard-reject on golden corpora", st)
			}
		})
	}
}

// TestTemplateDiffSeeded renders ≥48 seeded layouts from the 8
// synthetic templates — every instance jittered within the tolerance
// band — and asserts the warm pipeline (which hits the cache on every
// instance after the first per template) is byte-identical to the cold
// pipeline on all of them.
func TestTemplateDiffSeeded(t *testing.T) {
	instances := int64(6)
	if testing.Short() {
		instances = 3
	}
	const templates = 8
	ctx := context.Background()
	task := RealEstateTask()
	cache := NewTemplateCache(32, 0, nil)
	cold := NewPipeline(Config{Task: task, Explain: true})
	warm := NewPipeline(Config{Task: task, Explain: true, Templates: cache})
	entities := 0
	for tpl := 0; tpl < templates; tpl++ {
		for inst := int64(0); inst < instances; inst++ {
			d := synthTemplateDoc(tpl, inst)
			label := d.ID
			coldRes, coldErr := cold.ExtractContext(ctx, d)
			warmRes, warmErr := warm.ExtractContext(ctx, d)
			assertWarmEqualsCold(t, label, d, coldRes, warmRes, coldErr, warmErr)
			if coldRes != nil {
				entities += len(coldRes.Entities)
			}
			wantOutcome := "hit"
			if inst == 0 {
				wantOutcome = "miss"
			}
			if warmRes != nil && warmRes.Report.Template != wantOutcome {
				t.Fatalf("%s: template outcome %q, want %q (jitter broke the tolerance band?)", label, warmRes.Report.Template, wantOutcome)
			}
		}
	}
	st := cache.Stats()
	if want := int64(templates) * (instances - 1); st.Hits != want {
		t.Fatalf("cache stats %+v: want exactly %d hits", st, want)
	}
	if st.Misses != templates || st.Inserts != templates || st.GuardRejects != 0 {
		t.Fatalf("cache stats %+v: want %d misses and inserts, no guard rejects", st, templates)
	}
	if entities == 0 {
		t.Fatal("vacuous corpus: no entities extracted from any synthetic template")
	}
}

// TestTemplateDiffServerRaceEviction soaks a Server whose template
// cache is much smaller than the template population, under the race
// detector: 8 templates churning through a 3-entry LRU. Asserted
// invariants: every result is byte-identical to a cold pipeline's,
// memory stays bounded (size ≤ capacity), eviction happens, the
// hit/miss counters account for every full-fidelity document exactly,
// and no goroutines leak.
func TestTemplateDiffServerRaceEviction(t *testing.T) {
	const templates, instances = 8, 6
	ctx := context.Background()
	task := RealEstateTask()

	// Cold oracle lines, computed sequentially without any cache.
	cold := NewPipeline(Config{Task: task})
	docs := make([]*Document, 0, templates*instances)
	want := make(map[string][]byte, templates*instances)
	for inst := int64(0); inst < instances; inst++ {
		for tpl := 0; tpl < templates; tpl++ {
			d := synthTemplateDoc(tpl, inst)
			docs = append(docs, d)
			res, err := cold.ExtractContext(ctx, d)
			want[d.ID] = renderedLine(res, d, err)
		}
	}
	// Deterministic shuffle so template instances interleave adversarially.
	rng := newRand(99)
	rng.Shuffle(len(docs), func(i, j int) { docs[i], docs[j] = docs[j], docs[i] })

	baseline := runtime.NumGoroutine()
	m := NewMetrics()
	s := NewServer(NewPipeline(Config{Task: task}), ServerConfig{
		Workers:   4,
		Queue:     len(docs),
		QueueWait: time.Minute,
		Retry:     RetryPolicy{MaxAttempts: 1},
		Template:  TemplatePolicy{Capacity: 3},
		Metrics:   m,
	})
	results := s.ExtractBatch(ctx, docs)
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Doc.ID, r.Err)
		}
		if got := renderedLine(r.Result, r.Doc, nil); !bytes.Equal(got, want[r.Doc.ID]) {
			t.Fatalf("%s: cached-server output diverges from cold oracle\n--- server ---\n%s\n--- cold ---\n%s", r.Doc.ID, got, want[r.Doc.ID])
		}
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	snap := m.Snapshot()
	hits, misses := snap.Counters["template.hits"], snap.Counters["template.misses"]
	if hits+misses != int64(len(docs)) {
		t.Fatalf("hit/miss accounting: %d hits + %d misses != %d documents", hits, misses, len(docs))
	}
	if snap.Counters["template.evictions"] == 0 {
		t.Fatal("no evictions despite 8 templates against a 3-entry cache")
	}
	if size := snap.Gauges["template.size"]; size > 3 {
		t.Fatalf("cache size %v exceeds capacity 3", size)
	}
	if rej := snap.Counters["template.guard.rejects"]; rej != 0 {
		t.Fatalf("%d guard rejects on honest traffic", rej)
	}
	settleGoroutines(t, baseline)
}
