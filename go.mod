module vs2

go 1.22
