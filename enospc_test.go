package vs2

// ENOSPC endgame tests: disk-full failures injected through checkpoint
// compaction — the one code path that rewrites durable state instead of
// only appending to it. Compaction is a four-step dance (sync the
// journal, write the checkpoint, truncate the journal, reopen the
// append handle) and a full disk can interrupt it at any step. The
// contract under test: whatever step fails, the pre-compaction journal
// (or the just-written checkpoint) still carries every completion, and
// a resumed run replays them byte for byte.
//
// The faults ride internal/faults.DiskFile through the journal's
// Options.OpenFile hook; the tests build the *Journal directly over the
// fault-injected state, which is why they live in this package.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"vs2/internal/faults"
	"vs2/internal/journal"
)

// faultyJournal opens a fresh journal whose append handle is wrapped
// with the configured disk fault. Appends never fsync (SyncNever), so
// the first Sync the handle sees is compaction's own pre-checkpoint
// barrier. failOpenAt, when positive, fails the Nth OpenFile call —
// call 1 is the initial open, call 2 is compaction's post-truncate
// reopen.
func faultyJournal(t *testing.T, path string, m *Metrics, fault faults.DiskFault, failOpenAt int) *Journal {
	t.Helper()
	opens := 0
	st, err := journal.OpenState(path, journal.StateOptions{
		Options: journal.Options{
			Sync:    journal.SyncNever,
			Metrics: m,
			OpenFile: func(p string) (journal.File, error) {
				opens++
				if failOpenAt > 0 && opens >= failOpenAt {
					return nil, fmt.Errorf("open %s: %w", p, faults.ErrInjectedDisk)
				}
				f, ferr := os.OpenFile(p, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
				if ferr != nil {
					return nil, ferr
				}
				return faults.NewDiskFile(f, fault), nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return &Journal{st: st, path: path}
}

// enospcDocs is a small corpus that completes cleanly, so every line in
// these tests is a real extraction result, not an error rendering.
func enospcDocs(n int) []*Document {
	docs := make([]*Document, n)
	for i := range docs {
		docs[i] = namedDoc(fmt.Sprintf("enospc-%d", i))
	}
	return docs
}

// TestENOSPCCompactionSyncFailure: the disk fills at compaction's first
// step — the fsync that must make the journal durable before the
// checkpoint claims its records. Compact errors, no checkpoint appears,
// and the untouched pre-compaction journal replays every completion
// byte-identically on resume.
func TestENOSPCCompactionSyncFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	docs := enospcDocs(6)

	m1 := NewMetrics()
	j1 := faultyJournal(t, path, m1, faults.DiskFault{FailSyncAt: 1}, 0)
	first := durableServer(t, m1, false).ExtractBatch(context.Background(), docs, WithDurability(j1))
	for i, r := range first {
		if r.Err != nil {
			t.Fatalf("doc %d: %v", i, r.Err)
		}
	}
	if err := j1.Compact(); !errors.Is(err, faults.ErrInjectedDisk) {
		t.Fatalf("Compact with failing fsync = %v, want ErrInjectedDisk", err)
	}
	// The sync failed before the checkpoint was written: compaction must
	// not have claimed records it could not prove durable.
	if _, err := os.Stat(path + ".ckpt"); !os.IsNotExist(err) {
		t.Fatalf("checkpoint exists after failed pre-checkpoint sync (stat err %v)", err)
	}
	// Abandon j1 without Close — the process dies with the disk full.

	m2 := NewMetrics()
	j2, err := OpenJournal(path, JournalOptions{Resume: true, Metrics: m2})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if comp, _ := j2.Replayed(); comp != len(docs) {
		t.Fatalf("recovered %d completions from the pre-compaction journal, want %d", comp, len(docs))
	}
	// The resumed server's search backend always fails: a byte-identical
	// answer can only have come from the journal.
	second := durableServer(t, m2, true).ExtractBatch(context.Background(), docs, WithDurability(j2))
	for i, r := range second {
		if !r.Replayed {
			t.Fatalf("doc %d did not replay after the failed compaction", i)
		}
		if !bytes.Equal(r.Line, first[i].Line) {
			t.Fatalf("doc %d: resumed line differs:\n  run:    %s\n  resume: %s", i, first[i].Line, r.Line)
		}
	}
}

// TestENOSPCCompactionReopenFailure: the disk fills at compaction's
// last step — reopening the append handle after the journal was
// truncated. By then the checkpoint is already durable (temp file +
// rename), so even with the journal gone and no writable handle left,
// a resumed run replays every completion from the checkpoint alone.
func TestENOSPCCompactionReopenFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	docs := enospcDocs(6)

	m1 := NewMetrics()
	j1 := faultyJournal(t, path, m1, faults.DiskFault{}, 2)
	first := durableServer(t, m1, false).ExtractBatch(context.Background(), docs, WithDurability(j1))
	for i, r := range first {
		if r.Err != nil {
			t.Fatalf("doc %d: %v", i, r.Err)
		}
	}
	if err := j1.Compact(); !errors.Is(err, faults.ErrInjectedDisk) {
		t.Fatalf("Compact with failing reopen = %v, want ErrInjectedDisk", err)
	}
	// The checkpoint landed and the journal was truncated before the
	// reopen failed: the state lives in the checkpoint now.
	if _, err := os.Stat(path + ".ckpt"); err != nil {
		t.Fatalf("checkpoint missing after failed reopen: %v", err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != 0 {
		t.Fatalf("journal not truncated (size %d, err %v)", fi.Size(), err)
	}

	m2 := NewMetrics()
	j2, err := OpenJournal(path, JournalOptions{Resume: true, Metrics: m2})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if comp, _ := j2.Replayed(); comp != len(docs) {
		t.Fatalf("recovered %d completions from the checkpoint, want %d", comp, len(docs))
	}
	second := durableServer(t, m2, true).ExtractBatch(context.Background(), docs, WithDurability(j2))
	for i, r := range second {
		if !r.Replayed {
			t.Fatalf("doc %d did not replay from the checkpoint", i)
		}
		if !bytes.Equal(r.Line, first[i].Line) {
			t.Fatalf("doc %d: resumed line differs:\n  run:    %s\n  resume: %s", i, first[i].Line, r.Line)
		}
	}
}

// TestENOSPCAppendTornTailResume: the disk fills mid-append, tearing a
// completion frame before any compaction ran. The torn document and
// everything after it report journal-phase failures (never acknowledged
// without durability), the valid prefix replays on resume, the torn
// tail re-extracts, and the merged output matches an undisturbed run
// byte for byte.
func TestENOSPCAppendTornTailResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.wal")
	docs := enospcDocs(5)

	// Golden: the same corpus through an unfaulted journal.
	mg := NewMetrics()
	jg, err := OpenJournal(filepath.Join(dir, "golden.wal"), JournalOptions{Metrics: mg})
	if err != nil {
		t.Fatal(err)
	}
	golden := durableServer(t, mg, false).ExtractBatch(context.Background(), docs, WithDurability(jg))
	if err := jg.Close(); err != nil {
		t.Fatal(err)
	}

	// Faulted run, one document at a time so the write sequence is
	// deterministic: doc k is writes 2k+1 (admit) and 2k+2 (complete).
	// Write 6 — doc 2's completion — tears.
	m1 := NewMetrics()
	j1 := faultyJournal(t, path, m1, faults.DiskFault{ShortWriteAt: 6}, 0)
	srv := durableServer(t, m1, false)
	for i, d := range docs {
		r := srv.ExtractBatch(context.Background(), []*Document{d}, WithDurability(j1))[0]
		switch {
		case i < 2:
			if r.Err != nil {
				t.Fatalf("doc %d before the tear: %v", i, r.Err)
			}
		default:
			// Doc 2 loses its completion append; the writer goes sticky,
			// so later admits fail too. None may be acknowledged.
			var ve *Error
			if !errors.As(r.Err, &ve) || ve.Phase != PhaseJournal {
				t.Fatalf("doc %d after the tear: err %v, want a %s-phase failure", i, r.Err, PhaseJournal)
			}
		}
	}
	// Abandon j1 — the process dies with the disk full.

	m2 := NewMetrics()
	j2, err := OpenJournal(path, JournalOptions{Resume: true, Metrics: m2})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	comp, inflight := j2.Replayed()
	if comp != 2 {
		t.Fatalf("recovered %d completions ahead of the tear, want 2", comp)
	}
	if inflight != 1 {
		t.Fatalf("recovered %d admitted-but-incomplete documents, want 1 (the torn one)", inflight)
	}
	resumed := durableServer(t, m2, false).ExtractBatch(context.Background(), docs, WithDurability(j2))
	for i, r := range resumed {
		if r.Err != nil {
			t.Fatalf("doc %d on resume: %v", i, r.Err)
		}
		if want := i < 2; r.Replayed != want {
			t.Fatalf("doc %d: Replayed = %v, want %v", i, r.Replayed, want)
		}
		if !bytes.Equal(r.Line, golden[i].Line) {
			t.Fatalf("doc %d: resumed line differs from the undisturbed run:\n  golden: %s\n  resume: %s", i, golden[i].Line, r.Line)
		}
	}
}
