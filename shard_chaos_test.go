package vs2

// Shard-kill chaos harness for the sharded serving layer: a real vs2d
// front end runs a batch across a fleet of worker shard child
// processes, and the harness SIGKILLs a random shard — and, separately,
// the front end itself — at randomized journal offsets. The merged
// stdout must stay byte-identical to an uninterrupted run: the
// supervisor requeues the dead shard's in-flight work to its restarted
// child (which replays its own journal), and a killed front end resumes
// with -resume, every shard replaying only its own state.
//
// Generalizes the PR 5 single-process crash harness (crash_chaos_test.go)
// to the multi-process topology. Subprocess-heavy: runs only in the full
// suite (`make shard-chaos`); -short skips it.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

const chaosShards = 3

// buildVS2DBinary compiles cmd/vs2d once per test.
func buildVS2DBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "vs2d")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/vs2d")
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/vs2d: %v\n%s", err, out)
	}
	return bin
}

// vs2dArgs is the fixed command line of every front end in the harness:
// fast probes and restarts so a killed shard recovers in test time.
func vs2dArgs(state string, extra ...string) []string {
	args := []string{
		"-task", "events", "-shards", strconv.Itoa(chaosShards), "-state", state,
		"-probe-interval", "100ms", "-probe-timeout", "2s",
		"-restart-backoff", "10ms", "-restart-backoff-max", "100ms",
	}
	return append(args, extra...)
}

// runVS2D runs the front end to completion and returns its stdout.
func runVS2D(t *testing.T, bin string, stdin []byte, state string, extra ...string) []byte {
	t.Helper()
	cmd := exec.Command(bin, vs2dArgs(state, extra...)...)
	cmd.Stdin = bytes.NewReader(stdin)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("vs2d %v: %v\nstderr:\n%s", extra, err, stderr.String())
	}
	return stdout.Bytes()
}

// shardPid reads the shard's pidfile; -1 when it is not written yet.
func shardPid(state string, shard int) int {
	data, err := os.ReadFile(filepath.Join(state, fmt.Sprintf("shard-%d.pid", shard)))
	if err != nil {
		return -1
	}
	pid, err := strconv.Atoi(strings.TrimSpace(string(data)))
	if err != nil {
		return -1
	}
	return pid
}

// probeShardJournalWindow runs one throwaway batch and reports the
// largest size any shard journal reached, so kill offsets spread across
// the real write window instead of clustering at zero.
func probeShardJournalWindow(t *testing.T, bin string, corpus []byte, extra ...string) int64 {
	t.Helper()
	state := t.TempDir()
	cmd := exec.Command(bin, vs2dArgs(state, extra...)...)
	cmd.Stdin = bytes.NewReader(corpus)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { cmd.Wait(); close(done) }() //nolint:errcheck
	var maxSize int64
probe:
	for {
		select {
		case <-done:
			break probe
		default:
			for s := 0; s < chaosShards; s++ {
				if st, err := os.Stat(filepath.Join(state, fmt.Sprintf("shard-%d.wal", s))); err == nil && st.Size() > maxSize {
					maxSize = st.Size()
				}
			}
			time.Sleep(200 * time.Microsecond)
		}
	}
	if maxSize == 0 {
		t.Fatal("probe run never grew a shard journal")
	}
	return maxSize
}

// killShardAt runs one batch and SIGKILLs the target shard's child once
// that shard's journal reaches offset bytes. The front end must survive
// the kill and finish; its stdout and a flag for whether the kill
// landed mid-run are returned.
func killShardAt(t *testing.T, bin string, corpus []byte, state string, target int, offset int64, extra ...string) ([]byte, bool) {
	t.Helper()
	cmd := exec.Command(bin, vs2dArgs(state, extra...)...)
	cmd.Stdin = bytes.NewReader(corpus)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	jpath := filepath.Join(state, fmt.Sprintf("shard-%d.wal", target))
	killed := false
	deadline := time.Now().Add(2 * time.Minute)
	for !killed {
		select {
		case err := <-exited:
			if err != nil {
				t.Fatalf("front end failed before the kill landed: %v\nstderr:\n%s", err, stderr.String())
			}
			return stdout.Bytes(), false
		default:
		}
		if st, err := os.Stat(jpath); err == nil && st.Size() >= offset {
			if pid := shardPid(state, target); pid > 0 {
				syscall.Kill(pid, syscall.SIGKILL) //nolint:errcheck // the child may have just exited on its own
				killed = true
			}
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill() //nolint:errcheck
			<-exited
			t.Fatalf("shard %d never reached journal offset %d", target, offset)
		}
		time.Sleep(200 * time.Microsecond)
	}
	if err := <-exited; err != nil {
		t.Fatalf("front end died after shard %d was killed (must survive and fail over): %v\nstderr:\n%s",
			target, err, stderr.String())
	}
	return stdout.Bytes(), true
}

// TestShardChaosKillShard is the acceptance test of the PR: SIGKILL a
// random shard at >=20 randomized journal offsets; the front end must
// restart it, requeue its work, and still emit output byte-identical to
// an uninterrupted run.
func TestShardChaosKillShard(t *testing.T) {
	if testing.Short() {
		t.Skip("shard chaos spawns real process fleets; skipped in -short")
	}
	bin := buildVS2DBinary(t)
	corpus := chaosCorpus(t, 60)

	golden := runVS2D(t, bin, corpus, t.TempDir())

	// The sharded front end and the single-process server must agree
	// before any chaos enters the picture: sharding is a topology change,
	// not a different pipeline.
	serveBin := buildServeBinary(t)
	if single := runServe(t, serveBin, corpus); !bytes.Equal(golden, single) {
		t.Fatalf("sharded output differs from single-process output:\n-- vs2serve --\n%s\n-- vs2d --\n%s", single, golden)
	}

	window := probeShardJournalWindow(t, bin, corpus)
	rnd := rand.New(rand.NewSource(1907)) // seeded: a failure reproduces
	const iterations = 22
	landed := 0
	for i := 0; i < iterations; i++ {
		state := t.TempDir()
		target := rnd.Intn(chaosShards)
		offset := rnd.Int63n(window + 1)
		out, hit := killShardAt(t, bin, corpus, state, target, offset)
		if hit {
			landed++
		}
		if !bytes.Equal(golden, out) {
			t.Fatalf("iteration %d (SIGKILL shard %d at journal offset %d): merged output differs\n-- golden --\n%s\n-- chaos --\n%s",
				i, target, offset, golden, out)
		}
	}
	t.Logf("shard chaos: %d/%d kills landed mid-run (journal window %d bytes)", landed, iterations, window)
	if landed == 0 {
		t.Fatal("no kill ever landed before the batch finished; the harness is not exercising crashes")
	}
}

// waitShardsGone blocks until every pidfiled shard child of a killed
// front end has exited, so the resumed run never races a straggler for
// the journals.
func waitShardsGone(t *testing.T, state string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		alive := false
		for s := 0; s < chaosShards; s++ {
			if pid := shardPid(state, s); pid > 0 && syscall.Kill(pid, 0) == nil {
				alive = true
			}
		}
		if !alive {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("orphaned shard children never exited after the front-end kill")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShardChaosKillFrontEnd: SIGKILL the front end itself mid-batch at
// randomized offsets; the orphaned shards drain and exit on stdin EOF,
// and a -resume rerun replays every shard's own journal to reproduce
// the uninterrupted output byte for byte.
func TestShardChaosKillFrontEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("shard chaos spawns real process fleets; skipped in -short")
	}
	bin := buildVS2DBinary(t)
	corpus := chaosCorpus(t, 60)

	golden := runVS2D(t, bin, corpus, t.TempDir())
	window := probeShardJournalWindow(t, bin, corpus)

	rnd := rand.New(rand.NewSource(4117))
	const iterations = 8
	landed := 0
	for i := 0; i < iterations; i++ {
		state := t.TempDir()
		offset := rnd.Int63n(window + 1)

		cmd := exec.Command(bin, vs2dArgs(state)...)
		cmd.Stdin = bytes.NewReader(corpus)
		cmd.Stdout, cmd.Stderr = nil, nil // a killed run's output is garbage by design
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		exited := make(chan struct{})
		go func() { cmd.Wait(); close(exited) }() //nolint:errcheck
		deadline := time.Now().Add(2 * time.Minute)
	watch:
		for {
			select {
			case <-exited:
				break watch // finished before the kill: offset landed past this run's window
			default:
			}
			grown := false
			for s := 0; s < chaosShards; s++ {
				if st, err := os.Stat(filepath.Join(state, fmt.Sprintf("shard-%d.wal", s))); err == nil && st.Size() >= offset {
					grown = true
					break
				}
			}
			if grown {
				cmd.Process.Kill() //nolint:errcheck
				landed++
				<-exited
				break watch
			}
			if time.Now().After(deadline) {
				cmd.Process.Kill() //nolint:errcheck
				<-exited
				t.Fatalf("no shard journal ever reached offset %d", offset)
			}
			time.Sleep(200 * time.Microsecond)
		}
		waitShardsGone(t, state)

		resumed := runVS2D(t, bin, corpus, state, "-resume")
		if !bytes.Equal(golden, resumed) {
			t.Fatalf("iteration %d (front end SIGKILLed at offset %d): resumed output differs\n-- golden --\n%s\n-- resumed --\n%s",
				i, offset, golden, resumed)
		}
	}
	t.Logf("front-end chaos: %d/%d kills landed mid-run (journal window %d bytes)", landed, iterations, window)
	if landed == 0 {
		t.Fatal("no front-end kill ever landed mid-run")
	}
}

// templateChaosCorpus renders a template-heavy JSONL corpus: jittered
// instances of the differential suite's synthetic templates, so each
// shard's layout-template cache warms within a few documents and most
// of the batch takes the hit path.
func templateChaosCorpus(t *testing.T, templates, perTemplate int) []byte {
	t.Helper()
	var buf bytes.Buffer
	for inst := 0; inst < perTemplate; inst++ {
		for tpl := 0; tpl < templates; tpl++ {
			data, err := json.Marshal(synthTemplateDoc(tpl, int64(inst)))
			if err != nil {
				t.Fatal(err)
			}
			buf.Write(data)
			buf.WriteByte('\n')
		}
	}
	return buf.Bytes()
}

// templateHitsSnapshot runs one full batch with -metrics and returns
// the fleet-wide template.hits total from the front end's final
// snapshot (shard caches ship their counters up as shard-labeled
// series). With VS2_CHAOS_ARTIFACTS set, the snapshot JSON lands there
// for CI upload.
func templateHitsSnapshot(t *testing.T, bin string, corpus []byte, extra ...string) int64 {
	t.Helper()
	cmd := exec.Command(bin, vs2dArgs(t.TempDir(), append(extra, "-metrics")...)...)
	cmd.Stdin = bytes.NewReader(corpus)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("vs2d -metrics: %v\nstderr:\n%s", err, stderr.String())
	}
	marker := "vs2d: metrics:"
	i := strings.Index(stderr.String(), marker)
	if i < 0 {
		t.Fatalf("no metrics snapshot on stderr:\n%s", stderr.String())
	}
	raw := stderr.String()[i+len(marker):]
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(strings.TrimSpace(raw)), &snap); err != nil {
		t.Fatalf("decoding metrics snapshot: %v", err)
	}
	if dir := os.Getenv("VS2_CHAOS_ARTIFACTS"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err == nil {
			os.WriteFile(filepath.Join(dir, "template-chaos-metrics.json"), //nolint:errcheck
				[]byte(strings.TrimSpace(raw)+"\n"), 0o644)
		}
	}
	var hits int64
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "template.hits") {
			hits += v
		}
	}
	return hits
}

// TestShardChaosWarmTemplateCache extends the shard-kill harness to the
// layout-template cache: per-shard caches are in-memory only, so a
// SIGKILLed worker comes back cold and must rewarm from the requeued
// work — and the merged output must still be byte-identical to an
// uninterrupted warm run, which itself must be byte-identical to a run
// with the cache off (the cache may only ever change latency).
func TestShardChaosWarmTemplateCache(t *testing.T) {
	if testing.Short() {
		t.Skip("shard chaos spawns real process fleets; skipped in -short")
	}
	bin := buildVS2DBinary(t)
	corpus := templateChaosCorpus(t, 6, 10)
	tplArgs := []string{"-task", "realestate", "-template-cache", "64"}

	golden := runVS2D(t, bin, corpus, t.TempDir(), tplArgs...)
	if off := runVS2D(t, bin, corpus, t.TempDir(), "-task", "realestate"); !bytes.Equal(golden, off) {
		t.Fatalf("template cache changed the fleet's bytes\n-- cache on --\n%s\n-- cache off --\n%s", golden, off)
	}

	// Non-vacuity: the warm fleet must actually be taking the hit path,
	// or the kills below would only ever exercise the cold one.
	hits := templateHitsSnapshot(t, bin, corpus, tplArgs...)
	if hits == 0 {
		t.Fatal("no shard ever recorded a template-cache hit; the corpus is not exercising the warm path")
	}
	t.Logf("warm fleet recorded %d template-cache hits across shards", hits)

	window := probeShardJournalWindow(t, bin, corpus, tplArgs...)
	rnd := rand.New(rand.NewSource(2026)) // seeded: a failure reproduces
	const iterations = 8
	landed := 0
	for i := 0; i < iterations; i++ {
		state := t.TempDir()
		target := rnd.Intn(chaosShards)
		offset := rnd.Int63n(window + 1)
		out, hit := killShardAt(t, bin, corpus, state, target, offset, tplArgs...)
		if hit {
			landed++
		}
		if !bytes.Equal(golden, out) {
			t.Fatalf("iteration %d (SIGKILL shard %d at offset %d, warm cache): merged output differs\n-- golden --\n%s\n-- chaos --\n%s",
				i, target, offset, golden, out)
		}
	}
	t.Logf("warm-cache shard chaos: %d/%d kills landed mid-run (journal window %d bytes)", landed, iterations, window)
	if landed == 0 {
		t.Fatal("no kill ever landed before the batch finished; the harness is not exercising crashes")
	}
}

// buildVS2TraceBinary compiles cmd/vs2trace for the observability test.
func buildVS2TraceBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "vs2trace")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/vs2trace")
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/vs2trace: %v\n%s", err, out)
	}
	return bin
}

// waitAdminAddr polls for the admin.addr file the front end writes into
// its state directory when started with -admin :0.
func waitAdminAddr(t *testing.T, state string) string {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		if data, err := os.ReadFile(filepath.Join(state, "admin.addr")); err == nil {
			if addr := strings.TrimSpace(string(data)); addr != "" {
				return addr
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("admin.addr never appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// adminGet scrapes one admin endpoint, returning status code and body.
func adminGet(t *testing.T, url string) (int, string) {
	t.Helper()
	client := http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return 0, ""
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, ""
	}
	return resp.StatusCode, string(body)
}

// waitScrape polls an endpoint until ok(status, body) holds, failing
// after the deadline with the last scrape attached.
func waitScrape(t *testing.T, url, what string, ok func(int, string) bool) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var code int
	var body string
	for {
		code, body = adminGet(t, url)
		if ok(code, body) {
			return body
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never observed at %s; last scrape (HTTP %d):\n%s", what, url, code, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// metricValue extracts one sample's value from a Prometheus exposition.
func metricValue(body, sample string) (float64, bool) {
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, sample+" ") {
			v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, sample)), 64)
			return v, err == nil
		}
	}
	return 0, false
}

// TestShardChaosAdminObservability is the acceptance test of the
// observability PR: while a fleet runs a batch, the admin plane is
// scraped through a shard SIGKILL and must report the truth at every
// phase — all shards up before the kill, the dead shard's up gauge at 0
// and readiness 503 (degraded) while it is down, the restart counter
// incremented and readiness restored once the supervisor revives it.
// The run's stitched trace must then validate end to end under
// vs2trace: no orphaned worker spans, with the killed shard's
// in-flight documents re-parented under the retry that answered them.
// When VS2_CHAOS_ARTIFACTS names a directory, the final /metrics
// snapshot and the stitched trace are saved there for CI upload.
func TestShardChaosAdminObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("shard chaos spawns real process fleets; skipped in -short")
	}
	bin := buildVS2DBinary(t)
	traceBin := buildVS2TraceBinary(t)
	corpus := chaosCorpus(t, 60)
	lines := bytes.Split(bytes.TrimSpace(corpus), []byte("\n"))
	if len(lines) != 60 {
		t.Fatalf("corpus has %d lines, want 60", len(lines))
	}

	state := t.TempDir()
	tracePath := filepath.Join(state, "trace.jsonl")
	// The restart backoff is raised well above the harness default so
	// the down state is wide enough to observe through the scrape loop.
	cmd := exec.Command(bin, vs2dArgs(state,
		"-restart-backoff", "500ms", "-restart-backoff-max", "500ms",
		"-admin", "127.0.0.1:0",
		"-trace", tracePath,
		"-telemetry-interval", "50ms",
	)...)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	// Failure cleanup only: the happy path consumes the exit itself, and
	// draining the channel twice would hang the suite on success.
	reaped := false
	defer func() {
		if reaped {
			return
		}
		stdin.Close()      //nolint:errcheck
		cmd.Process.Kill() //nolint:errcheck
		<-exited
	}()

	base := "http://" + waitAdminAddr(t, state)

	// Phase 1: the whole fleet is up and ready before any document flows.
	waitScrape(t, base+"/metrics", "all shards up", func(code int, body string) bool {
		if code != http.StatusOK {
			return false
		}
		for s := 0; s < chaosShards; s++ {
			if v, ok := metricValue(body, fmt.Sprintf(`shard_up{shard="%d"}`, s)); !ok || v != 1 {
				return false
			}
		}
		return true
	})
	if code, body := adminGet(t, base+"/healthz"); code != http.StatusOK || !strings.Contains(body, `"ok"`) {
		t.Fatalf("/healthz before the kill: HTTP %d, body %s", code, body)
	}
	if code, _ := adminGet(t, base+"/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz before the kill: HTTP %d", code)
	}

	// Phase 2: half the corpus goes in, and shard 0 is SIGKILLed while
	// its slice of those documents is in flight.
	half := append(bytes.Join(lines[:30], []byte("\n")), '\n')
	if _, err := stdin.Write(half); err != nil {
		t.Fatal(err)
	}
	pid := shardPid(state, 0)
	if pid <= 0 {
		t.Fatal("no pidfile for shard 0")
	}
	if err := syscall.Kill(pid, syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}

	// The scrape must see the death: up gauge at 0, readiness draining.
	waitScrape(t, base+"/metrics", `shard_up{shard="0"} at 0`, func(code int, body string) bool {
		v, ok := metricValue(body, `shard_up{shard="0"}`)
		return code == http.StatusOK && ok && v == 0
	})
	waitScrape(t, base+"/readyz", "readiness 503 while shard 0 is down", func(code int, body string) bool {
		return code == http.StatusServiceUnavailable && strings.Contains(body, `"degraded"`)
	})
	// Liveness tolerates a degraded fleet: restarting vs2d would only
	// make things worse.
	if code, body := adminGet(t, base+"/healthz"); code != http.StatusOK || !strings.Contains(body, `"degraded"`) {
		t.Fatalf("/healthz while degraded: HTTP %d, body %s", code, body)
	}

	// Phase 3: the supervisor revives the shard; the gauges and restart
	// counter must agree with it.
	finalMetrics := waitScrape(t, base+"/metrics", "shard 0 back up with a restart counted", func(code int, body string) bool {
		up, upOK := metricValue(body, `shard_up{shard="0"}`)
		restarts, rOK := metricValue(body, `shard_restarts{shard="0"}`)
		return code == http.StatusOK && upOK && up == 1 && rOK && restarts >= 1
	})
	waitScrape(t, base+"/readyz", "readiness restored after the restart", func(code int, body string) bool {
		return code == http.StatusOK
	})

	// Phase 4: the rest of the corpus flows through the healed fleet and
	// the batch completes.
	rest := append(bytes.Join(lines[30:], []byte("\n")), '\n')
	if _, err := stdin.Write(rest); err != nil {
		t.Fatal(err)
	}
	if err := stdin.Close(); err != nil {
		t.Fatal(err)
	}
	err = <-exited
	reaped = true
	if err != nil {
		t.Fatalf("front end failed: %v\nstderr:\n%s", err, stderr.String())
	}
	if got := len(bytes.Split(bytes.TrimSpace(stdout.Bytes()), []byte("\n"))); got != 60 {
		t.Fatalf("front end emitted %d lines, want 60\nstderr:\n%s", got, stderr.String())
	}

	// Phase 5: the stitched trace — including the documents whose shard
	// died mid-flight — validates with no orphaned spans.
	vcmd := exec.Command(traceBin, "-in", tracePath, "-depth", "0")
	var vout, verr bytes.Buffer
	vcmd.Stdout, vcmd.Stderr = &vout, &verr
	if err := vcmd.Run(); err != nil {
		t.Fatalf("vs2trace rejected the stitched chaos trace: %v\nstdout:\n%s\nstderr:\n%s", err, vout.String(), verr.String())
	}
	if !strings.Contains(vout.String(), "60 traces checked, 0 bad") {
		t.Fatalf("vs2trace output: %s", vout.String())
	}

	// The CI workflow points VS2_CHAOS_ARTIFACTS at a directory and
	// uploads whatever lands there.
	if dir := os.Getenv("VS2_CHAOS_ARTIFACTS"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatalf("artifacts dir: %v", err)
		}
		if err := os.WriteFile(filepath.Join(dir, "metrics.prom"), []byte(finalMetrics), 0o644); err != nil {
			t.Fatalf("artifacts metrics: %v", err)
		}
		trace, err := os.ReadFile(tracePath)
		if err != nil {
			t.Fatalf("artifacts trace: %v", err)
		}
		if err := os.WriteFile(filepath.Join(dir, "stitched-trace.jsonl"), trace, 0o644); err != nil {
			t.Fatalf("artifacts trace: %v", err)
		}
	}
}
