package vs2

// Shard-kill chaos harness for the sharded serving layer: a real vs2d
// front end runs a batch across a fleet of worker shard child
// processes, and the harness SIGKILLs a random shard — and, separately,
// the front end itself — at randomized journal offsets. The merged
// stdout must stay byte-identical to an uninterrupted run: the
// supervisor requeues the dead shard's in-flight work to its restarted
// child (which replays its own journal), and a killed front end resumes
// with -resume, every shard replaying only its own state.
//
// Generalizes the PR 5 single-process crash harness (crash_chaos_test.go)
// to the multi-process topology. Subprocess-heavy: runs only in the full
// suite (`make shard-chaos`); -short skips it.

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

const chaosShards = 3

// buildVS2DBinary compiles cmd/vs2d once per test.
func buildVS2DBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "vs2d")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/vs2d")
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/vs2d: %v\n%s", err, out)
	}
	return bin
}

// vs2dArgs is the fixed command line of every front end in the harness:
// fast probes and restarts so a killed shard recovers in test time.
func vs2dArgs(state string, extra ...string) []string {
	args := []string{
		"-task", "events", "-shards", strconv.Itoa(chaosShards), "-state", state,
		"-probe-interval", "100ms", "-probe-timeout", "2s",
		"-restart-backoff", "10ms", "-restart-backoff-max", "100ms",
	}
	return append(args, extra...)
}

// runVS2D runs the front end to completion and returns its stdout.
func runVS2D(t *testing.T, bin string, stdin []byte, state string, extra ...string) []byte {
	t.Helper()
	cmd := exec.Command(bin, vs2dArgs(state, extra...)...)
	cmd.Stdin = bytes.NewReader(stdin)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("vs2d %v: %v\nstderr:\n%s", extra, err, stderr.String())
	}
	return stdout.Bytes()
}

// shardPid reads the shard's pidfile; -1 when it is not written yet.
func shardPid(state string, shard int) int {
	data, err := os.ReadFile(filepath.Join(state, fmt.Sprintf("shard-%d.pid", shard)))
	if err != nil {
		return -1
	}
	pid, err := strconv.Atoi(strings.TrimSpace(string(data)))
	if err != nil {
		return -1
	}
	return pid
}

// probeShardJournalWindow runs one throwaway batch and reports the
// largest size any shard journal reached, so kill offsets spread across
// the real write window instead of clustering at zero.
func probeShardJournalWindow(t *testing.T, bin string, corpus []byte) int64 {
	t.Helper()
	state := t.TempDir()
	cmd := exec.Command(bin, vs2dArgs(state)...)
	cmd.Stdin = bytes.NewReader(corpus)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { cmd.Wait(); close(done) }() //nolint:errcheck
	var maxSize int64
probe:
	for {
		select {
		case <-done:
			break probe
		default:
			for s := 0; s < chaosShards; s++ {
				if st, err := os.Stat(filepath.Join(state, fmt.Sprintf("shard-%d.wal", s))); err == nil && st.Size() > maxSize {
					maxSize = st.Size()
				}
			}
			time.Sleep(200 * time.Microsecond)
		}
	}
	if maxSize == 0 {
		t.Fatal("probe run never grew a shard journal")
	}
	return maxSize
}

// killShardAt runs one batch and SIGKILLs the target shard's child once
// that shard's journal reaches offset bytes. The front end must survive
// the kill and finish; its stdout and a flag for whether the kill
// landed mid-run are returned.
func killShardAt(t *testing.T, bin string, corpus []byte, state string, target int, offset int64) ([]byte, bool) {
	t.Helper()
	cmd := exec.Command(bin, vs2dArgs(state)...)
	cmd.Stdin = bytes.NewReader(corpus)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	jpath := filepath.Join(state, fmt.Sprintf("shard-%d.wal", target))
	killed := false
	deadline := time.Now().Add(2 * time.Minute)
	for !killed {
		select {
		case err := <-exited:
			if err != nil {
				t.Fatalf("front end failed before the kill landed: %v\nstderr:\n%s", err, stderr.String())
			}
			return stdout.Bytes(), false
		default:
		}
		if st, err := os.Stat(jpath); err == nil && st.Size() >= offset {
			if pid := shardPid(state, target); pid > 0 {
				syscall.Kill(pid, syscall.SIGKILL) //nolint:errcheck // the child may have just exited on its own
				killed = true
			}
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill() //nolint:errcheck
			<-exited
			t.Fatalf("shard %d never reached journal offset %d", target, offset)
		}
		time.Sleep(200 * time.Microsecond)
	}
	if err := <-exited; err != nil {
		t.Fatalf("front end died after shard %d was killed (must survive and fail over): %v\nstderr:\n%s",
			target, err, stderr.String())
	}
	return stdout.Bytes(), true
}

// TestShardChaosKillShard is the acceptance test of the PR: SIGKILL a
// random shard at >=20 randomized journal offsets; the front end must
// restart it, requeue its work, and still emit output byte-identical to
// an uninterrupted run.
func TestShardChaosKillShard(t *testing.T) {
	if testing.Short() {
		t.Skip("shard chaos spawns real process fleets; skipped in -short")
	}
	bin := buildVS2DBinary(t)
	corpus := chaosCorpus(t, 60)

	golden := runVS2D(t, bin, corpus, t.TempDir())

	// The sharded front end and the single-process server must agree
	// before any chaos enters the picture: sharding is a topology change,
	// not a different pipeline.
	serveBin := buildServeBinary(t)
	if single := runServe(t, serveBin, corpus); !bytes.Equal(golden, single) {
		t.Fatalf("sharded output differs from single-process output:\n-- vs2serve --\n%s\n-- vs2d --\n%s", single, golden)
	}

	window := probeShardJournalWindow(t, bin, corpus)
	rnd := rand.New(rand.NewSource(1907)) // seeded: a failure reproduces
	const iterations = 22
	landed := 0
	for i := 0; i < iterations; i++ {
		state := t.TempDir()
		target := rnd.Intn(chaosShards)
		offset := rnd.Int63n(window + 1)
		out, hit := killShardAt(t, bin, corpus, state, target, offset)
		if hit {
			landed++
		}
		if !bytes.Equal(golden, out) {
			t.Fatalf("iteration %d (SIGKILL shard %d at journal offset %d): merged output differs\n-- golden --\n%s\n-- chaos --\n%s",
				i, target, offset, golden, out)
		}
	}
	t.Logf("shard chaos: %d/%d kills landed mid-run (journal window %d bytes)", landed, iterations, window)
	if landed == 0 {
		t.Fatal("no kill ever landed before the batch finished; the harness is not exercising crashes")
	}
}

// waitShardsGone blocks until every pidfiled shard child of a killed
// front end has exited, so the resumed run never races a straggler for
// the journals.
func waitShardsGone(t *testing.T, state string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		alive := false
		for s := 0; s < chaosShards; s++ {
			if pid := shardPid(state, s); pid > 0 && syscall.Kill(pid, 0) == nil {
				alive = true
			}
		}
		if !alive {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("orphaned shard children never exited after the front-end kill")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShardChaosKillFrontEnd: SIGKILL the front end itself mid-batch at
// randomized offsets; the orphaned shards drain and exit on stdin EOF,
// and a -resume rerun replays every shard's own journal to reproduce
// the uninterrupted output byte for byte.
func TestShardChaosKillFrontEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("shard chaos spawns real process fleets; skipped in -short")
	}
	bin := buildVS2DBinary(t)
	corpus := chaosCorpus(t, 60)

	golden := runVS2D(t, bin, corpus, t.TempDir())
	window := probeShardJournalWindow(t, bin, corpus)

	rnd := rand.New(rand.NewSource(4117))
	const iterations = 8
	landed := 0
	for i := 0; i < iterations; i++ {
		state := t.TempDir()
		offset := rnd.Int63n(window + 1)

		cmd := exec.Command(bin, vs2dArgs(state)...)
		cmd.Stdin = bytes.NewReader(corpus)
		cmd.Stdout, cmd.Stderr = nil, nil // a killed run's output is garbage by design
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		exited := make(chan struct{})
		go func() { cmd.Wait(); close(exited) }() //nolint:errcheck
		deadline := time.Now().Add(2 * time.Minute)
	watch:
		for {
			select {
			case <-exited:
				break watch // finished before the kill: offset landed past this run's window
			default:
			}
			grown := false
			for s := 0; s < chaosShards; s++ {
				if st, err := os.Stat(filepath.Join(state, fmt.Sprintf("shard-%d.wal", s))); err == nil && st.Size() >= offset {
					grown = true
					break
				}
			}
			if grown {
				cmd.Process.Kill() //nolint:errcheck
				landed++
				<-exited
				break watch
			}
			if time.Now().After(deadline) {
				cmd.Process.Kill() //nolint:errcheck
				<-exited
				t.Fatalf("no shard journal ever reached offset %d", offset)
			}
			time.Sleep(200 * time.Microsecond)
		}
		waitShardsGone(t, state)

		resumed := runVS2D(t, bin, corpus, state, "-resume")
		if !bytes.Equal(golden, resumed) {
			t.Fatalf("iteration %d (front end SIGKILLed at offset %d): resumed output differs\n-- golden --\n%s\n-- resumed --\n%s",
				i, offset, golden, resumed)
		}
	}
	t.Logf("front-end chaos: %d/%d kills landed mid-run (journal window %d bytes)", landed, iterations, window)
	if landed == 0 {
		t.Fatal("no front-end kill ever landed mid-run")
	}
}
