package vs2

// FuzzExtract drives the full hardened pipeline on arbitrary JSON: any
// input that decodes must extract without a panic or hang, and any failure
// must surface as a structured *Error.

import (
	"context"
	"errors"
	"testing"
	"time"
)

func FuzzExtract(f *testing.F) {
	if data, err := EncodeDocument(chaosDoc()); err == nil {
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"id":"x","width":10,"height":10}`))
	f.Add([]byte(`{"id":"x","width":10,"height":10,"elements":[{"id":0,"kind":"text","text":"hi","box":{"x":1,"y":1,"w":5,"h":2}}]}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"id":"x","width":1e999,"height":10}`))
	p := NewPipeline(Config{
		Task: EventPosterTask(),
		Budgets: Budgets{
			Segment:      2 * time.Second,
			Search:       2 * time.Second,
			Disambiguate: 2 * time.Second,
		},
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeDocument(data)
		if err != nil {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		res, err := p.ExtractContext(ctx, d)
		if err != nil {
			var pe *Error
			if !errors.As(err, &pe) {
				t.Fatalf("unstructured pipeline error: %T %v", err, err)
			}
			return
		}
		if res == nil {
			t.Fatal("nil result with nil error")
		}
	})
}
