package vs2

// FuzzExtract drives the full hardened pipeline on arbitrary JSON: any
// input that decodes must extract without a panic or hang, and any failure
// must surface as a structured *Error.
//
// FuzzParallelSegment drives the branch-parallel segmenter on arbitrary
// element geometry: no panic, no goroutine leak, and output identical
// to the sequential recursion on every input.

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"vs2/internal/segment"
)

func FuzzExtract(f *testing.F) {
	if data, err := EncodeDocument(chaosDoc()); err == nil {
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"id":"x","width":10,"height":10}`))
	f.Add([]byte(`{"id":"x","width":10,"height":10,"elements":[{"id":0,"kind":"text","text":"hi","box":{"x":1,"y":1,"w":5,"h":2}}]}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"id":"x","width":1e999,"height":10}`))
	p := NewPipeline(Config{
		Task: EventPosterTask(),
		Budgets: Budgets{
			Segment:      2 * time.Second,
			Search:       2 * time.Second,
			Disambiguate: 2 * time.Second,
		},
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeDocument(data)
		if err != nil {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		res, err := p.ExtractContext(ctx, d)
		if err != nil {
			var pe *Error
			if !errors.As(err, &pe) {
				t.Fatalf("unstructured pipeline error: %T %v", err, err)
			}
			return
		}
		if res == nil {
			t.Fatal("nil result with nil error")
		}
	})
}

// fuzzDoc decodes raw fuzz bytes into a document: 5 bytes per element
// (x, y, w, h, style), on a 256×256 page, with the seed driving word
// choice. Zero-size boxes, off-page boxes and duplicate geometry all
// occur naturally — exactly the degenerate shapes the seam search must
// survive.
func fuzzDoc(data []byte, seed int64) *Document {
	const perElem = 5
	n := len(data) / perElem
	if n == 0 {
		return nil
	}
	if n > 64 {
		n = 64 // bound segmentation cost per fuzz iteration
	}
	rng := newRand(seed)
	d := &Document{ID: "fuzz", Width: 256, Height: 256}
	for i := 0; i < n; i++ {
		b := data[i*perElem : (i+1)*perElem]
		e := Element{
			ID:   i,
			Kind: TextElement,
			Text: diffVocab[rng.Intn(len(diffVocab))],
			Box: Rect{
				X: float64(b[0]),
				Y: float64(b[1]),
				W: float64(b[2]) / 4, // small enough that layouts have whitespace
				H: float64(b[3]) / 16,
			},
			Color:    RGB{R: b[4], G: b[4] / 2, B: 255 - b[4]},
			FontSize: float64(b[3]) / 16,
			Line:     -1,
		}
		if b[4]%7 == 0 {
			e.Kind = ImageElement
			e.Text = ""
			e.ImageData = "img"
		}
		d.Elements = append(d.Elements, e)
	}
	return d
}

func FuzzParallelSegment(f *testing.F) {
	f.Add([]byte{10, 10, 40, 32, 1, 10, 60, 40, 32, 1, 150, 10, 40, 32, 9}, int64(1))
	f.Add([]byte{0, 0, 0, 0, 0, 255, 255, 255, 255, 255}, int64(7)) // zero-size + off-page
	f.Add(func() []byte { // a banded layout likely to recurse several levels
		var buf []byte
		for row := 0; row < 8; row++ {
			for col := 0; col < 3; col++ {
				buf = append(buf, byte(10+80*col), byte(10+30*row), 120, 100, byte(row*col))
			}
		}
		return buf
	}(), int64(42))

	seq := segment.New(segment.Options{Parallel: 1})
	par := segment.New(segment.Options{Parallel: 8})

	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		d := fuzzDoc(data, seed)
		if d == nil {
			return
		}
		before := runtime.NumGoroutine()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()

		seqTree, seqErr := seq.SegmentContext(ctx, d)
		parTree, parErr := par.SegmentContext(ctx, d)
		if (seqErr == nil) != (parErr == nil) {
			t.Fatalf("error mismatch: sequential=%v parallel=%v", seqErr, parErr)
		}
		if seqErr == nil && seqTree.Dump(d) != parTree.Dump(d) {
			t.Fatalf("parallel tree diverges from sequential on fuzz input\nelements=%d seed=%d", len(d.Elements), seed)
		}

		// The parallel segmenter joins every forked goroutine before
		// returning; give the runtime a moment to retire them, then
		// require the count back at (or below) the baseline.
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > before {
			if time.Now().After(deadline) {
				t.Fatalf("goroutine leak: %d before, %d after segmentation", before, runtime.NumGoroutine())
			}
			time.Sleep(time.Millisecond)
		}
	})
}

// TestFuzzDocDecoding keeps the fuzz-input decoder itself honest: the
// corpus entries above must decode into non-trivial documents, and the
// element cap must hold.
func TestFuzzDocDecoding(t *testing.T) {
	if d := fuzzDoc(nil, 1); d != nil {
		t.Fatal("empty input must yield no document")
	}
	big := make([]byte, 5*200)
	if err := binaryFill(big); err != nil {
		t.Fatal(err)
	}
	d := fuzzDoc(big, 3)
	if d == nil || len(d.Elements) != 64 {
		t.Fatalf("element cap: got %v", d)
	}
}

func binaryFill(b []byte) error {
	for i := range b {
		b[i] = byte(i * 31)
	}
	if len(b) < binary.MaxVarintLen64 {
		return fmt.Errorf("short buffer")
	}
	return nil
}
