// Package triage implements the complexity pre-pass of the adaptive
// fidelity ladder: a deterministic, cheap score of how hard a document
// will be to segment, and a thresholded classification into FULL (run
// the whole VS2 pipeline), CHEAP (linear segmentation + first-match
// selection is good enough) or SKIP (treat the page as one block).
//
// The score is computed from nothing but the element bounding boxes —
// element count, whitespace-gutter coverage, and bbox-geometry
// statistics — so it costs O(n log n) with no allocation-heavy
// machinery, orders of magnitude below a real segmentation pass. The
// same document always scores identically, which keeps the fidelity
// ladder's output reproducible for any pinned fidelity level.
//
// The package also hosts the load Controller that shifts the triage
// thresholds up under saturation and back down on recovery (see
// controller.go); together they let a serving layer trade fidelity for
// throughput before it has to shed work.
package triage

import (
	"fmt"
	"math"
	"sort"

	"vs2/internal/doc"
)

// Class is the triage verdict for one document.
type Class int

const (
	// Full runs the complete VS2 pipeline: recursive segmentation and
	// Eq. 2 disambiguation.
	Full Class = iota
	// Cheap routes the document through the linear segmenter and
	// first-match selection: the layout is simple enough that the
	// expensive machinery cannot change the answer much.
	Cheap
	// Skip treats the whole page as a single block: the document is so
	// sparse that segmentation has nothing to separate.
	Skip
)

func (c Class) String() string {
	switch c {
	case Full:
		return "full"
	case Cheap:
		return "cheap"
	case Skip:
		return "skip"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Score is the deterministic complexity measurement of one document.
// Complexity is the headline number in [0, 1]; the remaining fields are
// the raw statistics it was derived from, kept for explainability and
// for tests that pin the formula.
type Score struct {
	// Elements is the document's element count.
	Elements int
	// GutterX and GutterY are the whitespace-gutter ratios: the fraction
	// of the page width (resp. height) covered by no element's projected
	// extent. A page of well-separated text rows has a high GutterY; a
	// dense multi-column table has almost none.
	GutterX float64
	GutterY float64
	// HeightCV is the coefficient of variation of element heights —
	// heterogeneous typography (titles, captions, body mixed) segments
	// harder than a uniform form.
	HeightCV float64
	// Coverage is the fraction of the page area under element boxes.
	Coverage float64
	// Complexity is the combined score in [0, 1]; higher means the
	// document needs the full pipeline more.
	Complexity float64
}

// Analyze scores a document. It is pure and deterministic: no clocks,
// no randomness, and it never fails — a nil or empty document scores
// zero complexity (there is nothing to segment).
func Analyze(d *doc.Document) Score {
	var s Score
	if d == nil || len(d.Elements) == 0 {
		return s
	}
	n := len(d.Elements)
	s.Elements = n
	page := d.Bounds()
	if page.W <= 0 || page.H <= 0 || !isFinite(page.W) || !isFinite(page.H) {
		// Geometry too damaged to reason about; claim full complexity so
		// the full pipeline (and its validator) deals with it.
		s.Complexity = 1
		return s
	}

	xs := make([]span, 0, n)
	ys := make([]span, 0, n)
	var area, hsum float64
	heights := make([]float64, 0, n)
	for i := range d.Elements {
		b := d.Elements[i].Box
		if !isFinite(b.X, b.Y, b.W, b.H) {
			s.Complexity = 1
			return s
		}
		xs = append(xs, clampSpan(b.X, b.X+b.W, page.X, page.X+page.W))
		ys = append(ys, clampSpan(b.Y, b.Y+b.H, page.Y, page.Y+page.H))
		area += math.Max(0, b.W) * math.Max(0, b.H)
		h := math.Max(0, b.H)
		heights = append(heights, h)
		hsum += h
	}
	s.GutterX = 1 - coveredFraction(xs, page.W)
	s.GutterY = 1 - coveredFraction(ys, page.H)
	s.Coverage = clamp01(area / (page.W * page.H))

	mean := hsum / float64(n)
	if mean > 0 {
		var varsum float64
		for _, h := range heights {
			dlt := h - mean
			varsum += dlt * dlt
		}
		s.HeightCV = math.Sqrt(varsum/float64(n)) / mean
	}

	// The combination: document size dominates (a 500-element page is
	// expensive no matter its shape), vertical structure density second
	// (a page with no row gutters defeats the linear baseline), height
	// heterogeneity third (mixed typography needs the real clusterer).
	sizeTerm := float64(n) / (float64(n) + 120)
	structureTerm := 1 - s.GutterY
	heteroTerm := math.Min(1, s.HeightCV)
	s.Complexity = clamp01(0.5*sizeTerm + 0.3*structureTerm + 0.2*heteroTerm)
	return s
}

// span is one closed interval on an axis.
type span struct{ lo, hi float64 }

func clampSpan(lo, hi, min, max float64) span {
	return span{lo: math.Max(lo, min), hi: math.Min(hi, max)}
}

// coveredFraction is the fraction of an axis of length total covered by
// the union of the spans: the complement of the whitespace-gutter ratio.
func coveredFraction(spans []span, total float64) float64 {
	if total <= 0 || len(spans) == 0 {
		return 0
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
	covered := 0.0
	curLo, curHi := spans[0].lo, spans[0].hi
	for _, sp := range spans[1:] {
		if sp.lo > curHi {
			covered += math.Max(0, curHi-curLo)
			curLo, curHi = sp.lo, sp.hi
			continue
		}
		if sp.hi > curHi {
			curHi = sp.hi
		}
	}
	covered += math.Max(0, curHi-curLo)
	return clamp01(covered / total)
}

func clamp01(v float64) float64 {
	switch {
	case v < 0 || math.IsNaN(v):
		return 0
	case v > 1:
		return 1
	}
	return v
}

func isFinite(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Policy is the pair of complexity thresholds that turn a Score into a
// Class, at fidelity level 0 (no load pressure). Higher fidelity levels
// scale both thresholds up via At, widening the CHEAP and SKIP bands.
type Policy struct {
	// CheapBelow routes documents with Complexity below it through the
	// cheap path; 0 selects 0.35, negative disables cheap routing.
	CheapBelow float64
	// SkipBelow treats documents with Complexity below it as a single
	// block; 0 selects 0.06, negative disables skipping.
	SkipBelow float64
}

// WithDefaults resolves the zero-value conventions.
func (p Policy) WithDefaults() Policy {
	if p.CheapBelow == 0 {
		p.CheapBelow = 0.35
	}
	if p.SkipBelow == 0 {
		p.SkipBelow = 0.06
	}
	return p
}

// At scales the policy to a fidelity level in [0, levels]: level 0 is
// the policy itself, and each step widens the degraded bands — at the
// top level the cheap threshold reaches 1 (every document routes cheap)
// and the skip threshold reaches the level-0 cheap threshold. The
// interpolation is linear, so adjacent levels differ modestly and the
// controller's one-step shifts stay gentle.
func (p Policy) At(level, levels int) Policy {
	p = p.WithDefaults()
	if level <= 0 || levels <= 0 {
		return p
	}
	if level > levels {
		level = levels
	}
	frac := float64(level) / float64(levels)
	out := p
	if p.CheapBelow > 0 {
		out.CheapBelow = p.CheapBelow + (1-p.CheapBelow)*frac
	}
	if p.SkipBelow > 0 {
		hi := math.Max(p.SkipBelow, p.CheapBelow)
		out.SkipBelow = p.SkipBelow + (hi-p.SkipBelow)*frac
	}
	return out
}

// Classify applies the thresholds. The skip band sits inside the cheap
// band; a disabled (negative) threshold never matches.
func (p Policy) Classify(s Score) Class {
	p = p.WithDefaults()
	switch {
	case p.SkipBelow > 0 && s.Complexity < p.SkipBelow:
		return Skip
	case p.CheapBelow > 0 && s.Complexity < p.CheapBelow:
		return Cheap
	default:
		return Full
	}
}
