package triage

import (
	"sync"
	"testing"
	"time"
)

// signalFeed replays a scripted sequence of samples; past the end it
// repeats the last one.
type signalFeed struct {
	mu      sync.Mutex
	samples []Signals
	i       int
}

func (f *signalFeed) next() Signals {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.i < len(f.samples) {
		s := f.samples[f.i]
		f.i++
		return s
	}
	return f.samples[len(f.samples)-1]
}

func (f *signalFeed) set(s Signals) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.samples = []Signals{s}
	f.i = 0
}

func ctl(t *testing.T, feed *signalFeed, cfg ControllerConfig) *Controller {
	t.Helper()
	cfg.Signals = feed.next
	c := NewController(cfg)
	t.Cleanup(c.Stop)
	return c
}

func TestControllerRaisesAfterStreak(t *testing.T) {
	feed := &signalFeed{samples: []Signals{{Load: 1}}}
	var shifts [][2]int
	c := ctl(t, feed, ControllerConfig{
		Levels: 3, RaiseAfter: 2, LowerAfter: 2, JitterHold: -1,
		OnShift: func(from, to int) { shifts = append(shifts, [2]int{from, to}) },
	})
	if c.Evaluate() != 0 {
		t.Fatal("shifted after a single hot sample; RaiseAfter=2 requires two")
	}
	if c.Evaluate() != 1 {
		t.Fatal("no shift after two hot samples")
	}
	// The streak reset on shift: one more hot sample is not enough again.
	if c.Evaluate() != 1 {
		t.Fatal("shifted immediately after shifting; streak should reset")
	}
	if c.Evaluate() != 2 {
		t.Fatal("no second shift after two more hot samples")
	}
	want := [][2]int{{0, 1}, {1, 2}}
	if len(shifts) != len(want) || shifts[0] != want[0] || shifts[1] != want[1] {
		t.Fatalf("shifts = %v, want %v", shifts, want)
	}
}

func TestControllerCapsAtTopLevel(t *testing.T) {
	feed := &signalFeed{samples: []Signals{{Load: 1}}}
	c := ctl(t, feed, ControllerConfig{Levels: 2, RaiseAfter: 1, JitterHold: -1})
	for i := 0; i < 10; i++ {
		c.Evaluate()
	}
	if got := c.Level(); got != 2 {
		t.Fatalf("level = %d, want the cap 2", got)
	}
}

func TestControllerRecoversSlowly(t *testing.T) {
	feed := &signalFeed{samples: []Signals{{Load: 1}}}
	c := ctl(t, feed, ControllerConfig{
		Levels: 3, RaiseAfter: 1, LowerAfter: 3, JitterHold: -1,
	})
	c.Evaluate()
	c.Evaluate() // level 2
	feed.set(Signals{Load: 0})
	for i := 0; i < 2; i++ {
		if got := c.Evaluate(); got != 2 {
			t.Fatalf("recovered after %d cold samples; LowerAfter=3 requires three", i+1)
		}
	}
	if got := c.Evaluate(); got != 1 {
		t.Fatalf("level = %d after three cold samples, want 1", got)
	}
	// Monotone recovery: keep evaluating, the level only ever descends.
	prev := c.Level()
	for i := 0; i < 12; i++ {
		got := c.Evaluate()
		if got > prev {
			t.Fatalf("level rose from %d to %d under cold signals", prev, got)
		}
		prev = got
	}
	if prev != 0 {
		t.Fatalf("did not recover to level 0; stuck at %d", prev)
	}
}

func TestControllerNeutralBandResetsStreaks(t *testing.T) {
	// Alternating hot / neutral samples never accumulate a streak.
	feed := &signalFeed{samples: []Signals{
		{Load: 1}, {Load: 0.5}, {Load: 1}, {Load: 0.5}, {Load: 1}, {Load: 0.5},
	}}
	c := ctl(t, feed, ControllerConfig{
		Levels: 3, HighLoad: 0.9, LowLoad: 0.1, RaiseAfter: 2, JitterHold: -1,
	})
	for i := 0; i < 6; i++ {
		if got := c.Evaluate(); got != 0 {
			t.Fatalf("level = %d on an alternating feed, want 0 (hysteresis)", got)
		}
	}
}

func TestControllerBreakerSignal(t *testing.T) {
	// An open breaker is hot regardless of load.
	feed := &signalFeed{samples: []Signals{{Load: 0, BreakerOpen: true}}}
	c := ctl(t, feed, ControllerConfig{Levels: 1, RaiseAfter: 1, JitterHold: -1})
	if got := c.Evaluate(); got != 1 {
		t.Fatalf("level = %d with an open breaker, want 1", got)
	}
	// And it blocks recovery even at zero load.
	if got := c.Evaluate(); got != 1 {
		t.Fatalf("level = %d, breaker-open must not count as cold", got)
	}
}

func TestControllerWaitSignal(t *testing.T) {
	feed := &signalFeed{samples: []Signals{{Load: 0, WaitP95MS: 500}}}
	c := ctl(t, feed, ControllerConfig{
		Levels: 1, RaiseAfter: 1, JitterHold: -1,
		HighWaitMS: 200, LowWaitMS: 50,
	})
	if got := c.Evaluate(); got != 1 {
		t.Fatalf("level = %d with p95 wait past the watermark, want 1", got)
	}
	// Low load but wait still above LowWaitMS: not cold, level holds.
	feed.set(Signals{Load: 0, WaitP95MS: 100})
	for i := 0; i < 5; i++ {
		if got := c.Evaluate(); got != 1 {
			t.Fatalf("recovered while p95 wait above LowWaitMS")
		}
	}
	feed.set(Signals{Load: 0, WaitP95MS: 10})
	for i := 0; i < 4; i++ {
		c.Evaluate()
	}
	if got := c.Level(); got != 0 {
		t.Fatalf("level = %d after sustained cold wait, want 0", got)
	}
}

func TestControllerJitterHoldDeterministic(t *testing.T) {
	// Two controllers with the same seed shift on identical schedules;
	// the jitter hold delays shifts but never diverges for equal seeds.
	run := func(seed int64) []int {
		feed := &signalFeed{samples: []Signals{{Load: 1}}}
		c := ctl(t, feed, ControllerConfig{
			Levels: 3, RaiseAfter: 1, JitterHold: 3, Seed: seed,
		})
		var levels []int
		for i := 0; i < 20; i++ {
			levels = append(levels, c.Evaluate())
		}
		return levels
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at evaluation %d: %v vs %v", i, a, b)
		}
	}
	if a[len(a)-1] != 3 {
		t.Fatalf("held forever: final level %d, want 3", a[len(a)-1])
	}
}

func TestControllerStartStop(t *testing.T) {
	feed := &signalFeed{samples: []Signals{{Load: 1}}}
	c := NewController(ControllerConfig{
		Levels: 2, RaiseAfter: 1, Interval: time.Millisecond, JitterHold: -1,
		Signals: feed.next,
	})
	c.Start()
	deadline := time.Now().Add(2 * time.Second)
	for c.Level() != 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	c.Stop()
	c.Stop() // idempotent
	if got := c.Level(); got != 2 {
		t.Fatalf("ticker never drove the level to 2 (got %d)", got)
	}
	// Stop on a never-started controller must not hang.
	c2 := NewController(ControllerConfig{Signals: feed.next})
	c2.Stop()
}
