package triage

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Signals is one sample of the serving layer's saturation state, as
// seen by the Controller on each evaluation.
type Signals struct {
	// Load is queue occupancy in [0, 1]: queued work over queue capacity
	// (or backlog over the in-flight window for a fleet front end).
	Load float64
	// WaitP95MS is the 95th-percentile queue wait (or end-to-end
	// latency) in milliseconds over a sliding window; 0 when unknown.
	WaitP95MS float64
	// BreakerOpen reports whether any circuit breaker is not closed —
	// the backend is already failing, independent of queue depth.
	BreakerOpen bool
}

// ControllerConfig tunes a Controller. The zero value of every optional
// field selects the default noted on it.
type ControllerConfig struct {
	// Levels is the top fidelity level (the deepest degradation rung);
	// 0 selects 3. The controller moves one level per shift.
	Levels int
	// Interval is the evaluation cadence of Start's ticker; 0 selects
	// 500ms.
	Interval time.Duration
	// HighLoad and LowLoad are the saturation watermarks on
	// Signals.Load: at or above HighLoad the sample is hot, at or below
	// LowLoad (with no open breaker) it is cold, in between it is
	// neutral and streaks reset. 0 selects 0.75 and 0.25.
	HighLoad float64
	LowLoad  float64
	// HighWaitMS and LowWaitMS are the same watermarks on
	// Signals.WaitP95MS. 0 disables the wait signal (load and breakers
	// alone drive the controller).
	HighWaitMS float64
	LowWaitMS  float64
	// RaiseAfter is the consecutive hot evaluations required to shift
	// the level up; LowerAfter the consecutive cold evaluations to shift
	// it down. Hysteresis: recovery is deliberately slower than
	// degradation (0 selects 2 and 4).
	RaiseAfter int
	LowerAfter int
	// JitterHold is the upper bound on the seeded-random number of
	// evaluations the controller holds still after a shift, so a fleet
	// of controllers watching correlated load cannot flap in lockstep;
	// 0 selects 2, negative disables the hold.
	JitterHold int
	// Seed drives the jitter, making a run's shift schedule
	// reproducible.
	Seed int64
	// Signals samples the saturation state; required for Start and
	// Evaluate.
	Signals func() Signals
	// OnShift, when non-nil, observes every level transition.
	OnShift func(from, to int)
}

func (c ControllerConfig) withDefaults() ControllerConfig {
	if c.Levels <= 0 {
		c.Levels = 3
	}
	if c.Interval <= 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.HighLoad == 0 {
		c.HighLoad = 0.75
	}
	if c.LowLoad == 0 {
		c.LowLoad = 0.25
	}
	if c.RaiseAfter <= 0 {
		c.RaiseAfter = 2
	}
	if c.LowerAfter <= 0 {
		c.LowerAfter = 4
	}
	switch {
	case c.JitterHold == 0:
		c.JitterHold = 2
	case c.JitterHold < 0:
		c.JitterHold = 0
	}
	return c
}

// Controller drives the fidelity level from saturation signals: shift
// up under sustained pressure, back down on sustained recovery, one
// level at a time. Flap resistance comes from three mechanisms layered
// together — streak hysteresis (RaiseAfter/LowerAfter), asymmetric
// recovery (LowerAfter > RaiseAfter by default), and a seeded-random
// post-shift hold (JitterHold) — so oscillating load cannot bounce the
// level every interval. Level reads are lock-free; a Controller is safe
// for concurrent use.
type Controller struct {
	cfg   ControllerConfig
	level atomic.Int64

	mu   sync.Mutex
	rng  *rand.Rand
	hot  int
	cold int
	hold int

	startOnce sync.Once
	stopOnce  sync.Once
	done      chan struct{}
	stopped   chan struct{}
}

// NewController builds a controller at level 0. Panics if cfg.Signals
// is nil — a controller with nothing to watch is a programming error.
func NewController(cfg ControllerConfig) *Controller {
	if cfg.Signals == nil {
		panic("triage: ControllerConfig.Signals is required")
	}
	cfg = cfg.withDefaults()
	return &Controller{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		done:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
}

// Level is the current fidelity level: 0 = full fidelity, up to
// cfg.Levels at maximum degradation. Lock-free; called on the per-
// document hot path.
func (c *Controller) Level() int { return int(c.level.Load()) }

// Levels is the configured top level.
func (c *Controller) Levels() int { return c.cfg.Levels }

// Evaluate takes one sample and applies the shift logic, returning the
// (possibly new) level. Start calls it on the ticker; tests call it
// directly for a deterministic schedule.
func (c *Controller) Evaluate() int {
	s := c.cfg.Signals()
	hot := s.BreakerOpen ||
		s.Load >= c.cfg.HighLoad ||
		(c.cfg.HighWaitMS > 0 && s.WaitP95MS >= c.cfg.HighWaitMS)
	cold := !hot && s.Load <= c.cfg.LowLoad &&
		(c.cfg.HighWaitMS <= 0 || s.WaitP95MS <= c.cfg.LowWaitMS)

	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case hot:
		c.hot++
		c.cold = 0
	case cold:
		c.cold++
		c.hot = 0
	default:
		c.hot, c.cold = 0, 0
	}
	if c.hold > 0 {
		// Post-shift hold: streaks keep accumulating, the level stays put.
		c.hold--
		return int(c.level.Load())
	}
	lvl := int(c.level.Load())
	switch {
	case c.hot >= c.cfg.RaiseAfter && lvl < c.cfg.Levels:
		c.shiftLocked(lvl, lvl+1)
	case c.cold >= c.cfg.LowerAfter && lvl > 0:
		c.shiftLocked(lvl, lvl-1)
	}
	return int(c.level.Load())
}

// shiftLocked moves the level and arms the anti-flap hold. Callers hold
// c.mu.
func (c *Controller) shiftLocked(from, to int) {
	c.level.Store(int64(to))
	c.hot, c.cold = 0, 0
	if c.cfg.JitterHold > 0 {
		c.hold = c.rng.Intn(c.cfg.JitterHold + 1)
	}
	if c.cfg.OnShift != nil {
		c.cfg.OnShift(from, to)
	}
}

// Start launches the evaluation ticker; idempotent.
func (c *Controller) Start() {
	c.startOnce.Do(func() {
		go func() {
			defer close(c.stopped)
			t := time.NewTicker(c.cfg.Interval)
			defer t.Stop()
			for {
				select {
				case <-c.done:
					return
				case <-t.C:
					c.Evaluate()
				}
			}
		}()
	})
}

// Stop halts the ticker and waits for the evaluation goroutine to
// exit; idempotent, and safe to call on a controller never started.
func (c *Controller) Stop() {
	c.stopOnce.Do(func() { close(c.done) })
	c.startOnce.Do(func() { close(c.stopped) }) // never started: nothing to wait for
	<-c.stopped
}
