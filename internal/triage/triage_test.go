package triage

import (
	"fmt"
	"math"
	"testing"

	"vs2/internal/doc"
	"vs2/internal/geom"
)

// page builds a W x H document with one text element per box.
func page(w, h float64, boxes ...geom.Rect) *doc.Document {
	d := &doc.Document{ID: "t", Width: w, Height: h}
	for i, b := range boxes {
		d.Elements = append(d.Elements, doc.Element{ID: i, Box: b, Line: i})
	}
	return d
}

// rows lays out n uniform full-width rows with a gutter between them.
func rows(n int) *doc.Document {
	boxes := make([]geom.Rect, 0, n)
	for i := 0; i < n; i++ {
		boxes = append(boxes, geom.Rect{X: 10, Y: float64(i) * 20, W: 80, H: 10})
	}
	return page(100, float64(n)*20+20, boxes...)
}

func TestAnalyzeDeterministic(t *testing.T) {
	d := rows(40)
	a, b := Analyze(d), Analyze(d)
	if a != b {
		t.Fatalf("Analyze not deterministic: %+v vs %+v", a, b)
	}
}

func TestAnalyzeEmptyAndNil(t *testing.T) {
	if s := Analyze(nil); s.Complexity != 0 {
		t.Errorf("nil doc complexity = %v, want 0", s.Complexity)
	}
	if s := Analyze(&doc.Document{Width: 100, Height: 100}); s.Complexity != 0 {
		t.Errorf("empty doc complexity = %v, want 0", s.Complexity)
	}
}

func TestAnalyzeDamagedGeometry(t *testing.T) {
	for _, d := range []*doc.Document{
		page(0, 0, geom.Rect{W: 10, H: 10}),
		page(100, 100, geom.Rect{X: math.NaN(), W: 10, H: 10}),
		page(math.Inf(1), 100, geom.Rect{W: 10, H: 10}),
	} {
		if s := Analyze(d); s.Complexity != 1 {
			t.Errorf("damaged geometry complexity = %v, want 1", s.Complexity)
		}
	}
}

func TestAnalyzeOrdering(t *testing.T) {
	// A sparse page of a few separated rows must score below a dense
	// page packed with many hetero-height boxes.
	simple := Analyze(rows(5))
	denseBoxes := make([]geom.Rect, 0, 400)
	for i := 0; i < 400; i++ {
		h := 5 + float64(i%7)*6
		denseBoxes = append(denseBoxes, geom.Rect{
			X: float64(i%20) * 5, Y: float64(i/20) * 5, W: 5, H: h,
		})
	}
	dense := Analyze(page(100, 120, denseBoxes...))
	if simple.Complexity >= dense.Complexity {
		t.Fatalf("simple %.3f >= dense %.3f", simple.Complexity, dense.Complexity)
	}
	if simple.GutterY <= dense.GutterY {
		t.Errorf("simple gutterY %.3f <= dense gutterY %.3f", simple.GutterY, dense.GutterY)
	}
	if simple.Complexity <= 0 || dense.Complexity > 1 {
		t.Errorf("complexity out of range: simple %.3f dense %.3f", simple.Complexity, dense.Complexity)
	}
}

func TestPolicyClassify(t *testing.T) {
	p := Policy{CheapBelow: 0.5, SkipBelow: 0.1}
	cases := []struct {
		c    float64
		want Class
	}{
		{0.05, Skip},
		{0.1, Cheap}, // thresholds are strict: 0.1 is not below 0.1
		{0.3, Cheap},
		{0.5, Full},
		{0.9, Full},
	}
	for _, tc := range cases {
		if got := p.Classify(Score{Complexity: tc.c}); got != tc.want {
			t.Errorf("Classify(%.2f) = %v, want %v", tc.c, got, tc.want)
		}
	}
}

func TestPolicyDisabled(t *testing.T) {
	p := Policy{CheapBelow: -1, SkipBelow: -1}
	if got := p.Classify(Score{Complexity: 0}); got != Full {
		t.Errorf("disabled policy classified %v, want full", got)
	}
	// Disabled thresholds stay disabled at every level.
	if got := p.At(3, 3).Classify(Score{Complexity: 0}); got != Full {
		t.Errorf("disabled policy at top level classified %v, want full", got)
	}
}

func TestPolicyAtScaling(t *testing.T) {
	p := Policy{}.WithDefaults()
	prevCheap, prevSkip := p.CheapBelow, p.SkipBelow
	for lvl := 1; lvl <= 3; lvl++ {
		at := p.At(lvl, 3)
		if at.CheapBelow <= prevCheap || at.SkipBelow <= prevSkip {
			t.Fatalf("level %d thresholds did not widen: %+v after %.3f/%.3f",
				lvl, at, prevCheap, prevSkip)
		}
		prevCheap, prevSkip = at.CheapBelow, at.SkipBelow
	}
	top := p.At(3, 3)
	if top.CheapBelow != 1 {
		t.Errorf("top-level cheap threshold = %.3f, want 1", top.CheapBelow)
	}
	if math.Abs(top.SkipBelow-p.CheapBelow) > 1e-9 {
		t.Errorf("top-level skip threshold = %.3f, want the base cheap threshold %.3f",
			top.SkipBelow, p.CheapBelow)
	}
	// Beyond-range levels clamp rather than extrapolate.
	if got := p.At(9, 3); got != top {
		t.Errorf("At(9,3) = %+v, want the clamped top policy %+v", got, top)
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{Full: "full", Cheap: "cheap", Skip: "skip", Class(9): "Class(9)"} {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(c), got, want)
		}
	}
}

func ExamplePolicy_At() {
	p := Policy{CheapBelow: 0.4, SkipBelow: 0.1}
	for lvl := 0; lvl <= 2; lvl++ {
		at := p.At(lvl, 2)
		fmt.Printf("level %d: cheap<%.2f skip<%.2f\n", lvl, at.CheapBelow, at.SkipBelow)
	}
	// Output:
	// level 0: cheap<0.40 skip<0.10
	// level 1: cheap<0.70 skip<0.25
	// level 2: cheap<1.00 skip<0.40
}
