package template

import (
	"fmt"
	"math"
	"testing"

	"vs2/internal/doc"
	"vs2/internal/geom"
	"vs2/internal/obs"
)

// testDoc builds a small two-block page whose coordinates sit on
// multiples of the default quantum, so sub-quantum jitter keeps the
// fingerprint stable by construction.
func testDoc(id string, jitter float64) *doc.Document {
	d := &doc.Document{ID: id, Width: 400, Height: 520}
	add := func(x, y, w, h float64, text string, font float64, line int) {
		d.Elements = append(d.Elements, doc.Element{
			ID:       len(d.Elements),
			Kind:     doc.TextElement,
			Text:     text,
			Box:      geom.Rect{X: x + jitter, Y: y + jitter, W: w, H: h},
			FontSize: font,
			Line:     line,
		})
	}
	add(40, 40, 80, 12, "invoice", 12, 0)
	add(128, 40, 64, 12, "number", 12, 0)
	add(40, 56, 96, 12, "4417-0092", 12, 1)
	add(40, 320, 80, 12, "total", 12, 2)
	add(128, 320, 72, 12, "1,204.50", 12, 2)
	return d
}

// twoBlockTree hand-builds the layout tree a segmenter would produce
// for testDoc: the page root over two leaves.
func twoBlockTree(d *doc.Document) *doc.Node {
	root := doc.NewTree(d)
	root.AddChild(d.BoundingBoxOf([]int{0, 1, 2}), []int{0, 1, 2})
	root.AddChild(d.BoundingBoxOf([]int{3, 4}), []int{3, 4})
	return root
}

func TestFingerprintToleranceBand(t *testing.T) {
	c := New(Config{})
	base := c.Fingerprint(testDoc("base", 0))
	for _, jitter := range []float64{-1.9, -0.5, 0.7, 1.9} {
		got := c.Fingerprint(testDoc("jittered", jitter))
		if got.Digest() != base.Digest() {
			t.Errorf("jitter %v: digest changed: %s vs %s", jitter, got, base)
		}
	}
	// A shift past the band must change the fingerprint.
	if got := c.Fingerprint(testDoc("shifted", 3.5)); got.Digest() == base.Digest() {
		t.Errorf("jitter beyond the tolerance band kept the fingerprint %s", base)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	c := New(Config{})
	base := c.Fingerprint(testDoc("base", 0))
	mutate := map[string]func(*doc.Document){
		"kind":       func(d *doc.Document) { d.Elements[0].Kind = doc.ImageElement },
		"color":      func(d *doc.Document) { d.Elements[0].Color.R = 200 },
		"font":       func(d *doc.Document) { d.Elements[0].FontSize = 24 },
		"bold":       func(d *doc.Document) { d.Elements[0].Bold = true },
		"line":       func(d *doc.Document) { d.Elements[0].Line = 9 },
		"text-class": func(d *doc.Document) { d.Elements[0].Text = "123" },
		"text-len":   func(d *doc.Document) { d.Elements[0].Text = "a very much longer text run" },
		"page":       func(d *doc.Document) { d.Width = 800 },
		"count":      func(d *doc.Document) { d.Elements = d.Elements[:4] },
	}
	for name, f := range mutate {
		d := testDoc("mut", 0)
		f(d)
		if got := c.Fingerprint(d); got.Digest() == base.Digest() {
			t.Errorf("%s mutation did not change the fingerprint", name)
		}
	}
	// Value text may vary freely within the same length bucket and
	// character class: that is the point of the template cache.
	d := testDoc("value", 0)
	d.Elements[2].Text = "9983-1174"
	if got := c.Fingerprint(d); got.Digest() != base.Digest() {
		t.Error("same-shape value text changed the fingerprint")
	}
}

func TestLookupRemapsOntoNewGeometry(t *testing.T) {
	m := obs.NewRegistry()
	c := New(Config{Capacity: 8, Metrics: m})
	src := testDoc("src", 0)
	fp := c.Fingerprint(src)
	if _, ok := c.Lookup(src, fp); ok {
		t.Fatal("hit on an empty cache")
	}
	if !c.Insert(src, fp, twoBlockTree(src)) {
		t.Fatal("insert refused a reconstructible tree")
	}
	dst := testDoc("dst", 1.5)
	fp2 := c.Fingerprint(dst)
	tree, ok := c.Lookup(dst, fp2)
	if !ok {
		t.Fatal("jittered instance missed")
	}
	want := twoBlockTree(dst)
	if got := tree.Dump(dst); got != want.Dump(dst) {
		t.Fatalf("remapped tree diverges from a cold tree over the same structure:\n--- remapped ---\n%s\n--- cold ---\n%s", got, want.Dump(dst))
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("remapped tree invalid: %v", err)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Inserts != 1 || st.Size != 1 {
		t.Fatalf("stats: %+v", st)
	}
	snap := m.Snapshot()
	if snap.Counters["template.hits"] != 1 || snap.Counters["template.misses"] != 1 {
		t.Fatalf("metrics: %+v", snap.Counters)
	}
}

func TestInsertRefusesUnreconstructibleTrees(t *testing.T) {
	c := New(Config{})
	d := testDoc("bad", 0)
	fp := c.Fingerprint(d)

	// A leaf box that is neither the page bounds nor the elements' bbox.
	warped := twoBlockTree(d)
	warped.Children[0].Box.X += 2
	if c.Insert(d, fp, warped) {
		t.Error("insert accepted a warped box")
	}
	// An out-of-range element index.
	dangling := twoBlockTree(d)
	dangling.Children[1].Elements = []int{3, 99}
	if c.Insert(d, fp, dangling) {
		t.Error("insert accepted a dangling element index")
	}
	// Leaves that drop an element.
	short := doc.NewTree(d)
	short.AddChild(d.BoundingBoxOf([]int{0, 1}), []int{0, 1})
	short.AddChild(d.BoundingBoxOf([]int{3, 4}), []int{3, 4})
	if c.Insert(d, fp, short) {
		t.Error("insert accepted a tree that drops element 2")
	}
	// Leaves that double-cover an element.
	dup := doc.NewTree(d)
	dup.AddChild(d.BoundingBoxOf([]int{0, 1, 2}), []int{0, 1, 2})
	dup.AddChild(d.BoundingBoxOf([]int{2, 3, 4}), []int{2, 3, 4})
	if c.Insert(d, fp, dup) {
		t.Error("insert accepted a tree that covers element 2 twice")
	}
	if st := c.Stats(); st.Uncacheable != 4 || st.Inserts != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	m := obs.NewRegistry()
	c := New(Config{Capacity: 2, Metrics: m})
	docs := make([]*doc.Document, 3)
	fps := make([]Fingerprint, 3)
	for i := range docs {
		d := testDoc(fmt.Sprintf("t%d", i), 0)
		// Distinct templates: move the second block per template by a
		// full quantum multiple.
		for j := 3; j < 5; j++ {
			d.Elements[j].Box.Y += float64(i) * 40
		}
		docs[i] = d
		fps[i] = c.Fingerprint(d)
		c.Insert(d, fps[i], twoBlockTree(d))
	}
	if st := c.Stats(); st.Size != 2 || st.Evictions != 1 {
		t.Fatalf("stats after overflow: %+v", st)
	}
	// Template 0 (oldest) was evicted; 1 and 2 remain.
	if _, ok := c.Lookup(docs[0], fps[0]); ok {
		t.Error("evicted template still hit")
	}
	if _, ok := c.Lookup(docs[1], fps[1]); !ok {
		t.Error("resident template missed")
	}
	// Touching 1 makes 2 the LRU victim for the next insert.
	c.Insert(docs[0], fps[0], twoBlockTree(docs[0]))
	if _, ok := c.Lookup(docs[2], fps[2]); ok {
		t.Error("LRU order ignored: least-recently-used entry survived")
	}
	if _, ok := c.Lookup(docs[1], fps[1]); !ok {
		t.Error("recently used entry was evicted")
	}
	if v := m.Snapshot().Gauges["template.size"]; v != 2 {
		t.Fatalf("template.size gauge = %v, want 2", v)
	}
}

func TestDigestCollisionGuard(t *testing.T) {
	c := New(Config{Capacity: 8})
	c.hashMask = 0 // every digest maps to the same slot
	a := testDoc("a", 0)
	b := testDoc("b", 0)
	b.Elements[0].Text = "totally different words here"
	b.Elements[1].Bold = true
	fpA, fpB := c.Fingerprint(a), c.Fingerprint(b)
	if !c.Insert(a, fpA, twoBlockTree(a)) {
		t.Fatal("insert failed")
	}
	if _, ok := c.Lookup(b, fpB); ok {
		t.Fatal("collision guard served a structurally different layout")
	}
	st := c.Stats()
	if st.GuardRejects != 1 {
		t.Fatalf("guard rejects = %d, want 1", st.GuardRejects)
	}
	// The true owner still hits through the same slot.
	if _, ok := c.Lookup(a, fpA); !ok {
		t.Fatal("owner missed after collision rejection")
	}
}

func TestNilSafety(t *testing.T) {
	var c *Cache
	d := testDoc("nil", 0)
	if fp := c.Fingerprint(d); !fp.Empty() {
		t.Error("nil cache produced a fingerprint")
	}
	if _, ok := c.Lookup(d, Fingerprint{}); ok {
		t.Error("nil cache hit")
	}
	if c.Insert(d, Fingerprint{}, twoBlockTree(d)) {
		t.Error("nil cache inserted")
	}
	_ = c.Stats()
	_ = c.Len()

	// Degenerate quanta select the default instead of dividing by zero.
	for _, q := range []float64{0, -3, math.NaN(), math.Inf(1)} {
		cc := New(Config{Quantum: q})
		if cc.quantum != DefaultQuantum {
			t.Errorf("quantum %v not defaulted", q)
		}
		_ = cc.Fingerprint(d)
	}
}

func TestFingerprintNonFiniteGeometry(t *testing.T) {
	c := New(Config{})
	d := testDoc("nan", 0)
	d.Elements[0].Box = geom.Rect{X: math.NaN(), Y: math.Inf(1), W: math.Inf(-1), H: 1e308}
	fp := c.Fingerprint(d)
	if fp.Empty() {
		t.Fatal("non-finite geometry produced an empty fingerprint")
	}
	if fp.Digest() == c.Fingerprint(testDoc("nan2", 0)).Digest() {
		t.Fatal("non-finite geometry collided with finite geometry")
	}
}
