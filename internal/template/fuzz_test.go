package template

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"vs2/internal/doc"
	"vs2/internal/geom"
)

// FuzzFingerprint drives the cache's two safety properties under
// adversarial inputs:
//
//  1. Fingerprinting never panics, whatever the geometry or quantum —
//     non-finite boxes, huge magnitudes, degenerate pages.
//  2. A false hit is impossible. The digest is truncated to 8 bits
//     (hashMask) so structurally different layouts collide constantly;
//     the post-hit validation guard (full signature comparison) must
//     turn every collision into a miss, and any genuine hit must
//     return a tree that validates and partitions the new document's
//     elements exactly.
func FuzzFingerprint(f *testing.F) {
	f.Add(int64(1), 4.0, 0.5, uint8(6))
	f.Add(int64(7), 0.0, 100.0, uint8(0))
	f.Add(int64(42), math.NaN(), -3.0, uint8(40))
	f.Add(int64(-9), 1e308, math.Inf(1), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, quantum, perturb float64, nElems uint8) {
		rng := rand.New(rand.NewSource(seed))
		fuzzDoc := func(extra float64) *doc.Document {
			d := &doc.Document{ID: "fuzz", Width: 100 + rng.Float64()*400, Height: 100 + rng.Float64()*400}
			for i := 0; i < int(nElems); i++ {
				box := geom.Rect{
					X: rng.Float64()*500 + extra,
					Y: rng.Float64()*500 + extra,
					W: rng.Float64() * 120,
					H: rng.Float64() * 40,
				}
				switch i % 7 {
				case 3:
					box.X = math.NaN()
				case 5:
					box.W = math.Inf(1)
				}
				d.Elements = append(d.Elements, doc.Element{
					ID:       i,
					Kind:     doc.ElementKind(i % 2),
					Text:     string(rune('a' + i%26)),
					Box:      box,
					FontSize: rng.Float64() * 30,
					Line:     i / 3,
				})
			}
			return d
		}
		a := fuzzDoc(0)
		b := fuzzDoc(perturb)

		c := New(Config{Capacity: 4, Quantum: quantum})
		c.hashMask = 0xff // force digest collisions

		fpA := c.Fingerprint(a)
		if len(a.Elements) > 0 {
			c.Insert(a, fpA, doc.NewTree(a))
		}
		fpB := c.Fingerprint(b)
		tree, ok := c.Lookup(b, fpB)
		if !ok {
			return
		}
		// A hit through a truncated digest is only legal when the full
		// signatures are equal — anything else is a served false hit.
		if !bytes.Equal(fpA.sig, fpB.sig) {
			t.Fatalf("false hit: signatures differ but Lookup returned a tree (digest %s vs %s)", fpA, fpB)
		}
		if err := tree.Validate(); err != nil {
			t.Fatalf("hit returned an invalid tree: %v", err)
		}
		if !coversExactly(mustCapture(t, b, tree), len(b.Elements)) {
			t.Fatal("hit tree does not partition the document's elements")
		}
	})
}

func mustCapture(t *testing.T, d *doc.Document, n *doc.Node) *tnode {
	t.Helper()
	c, ok := capture(d, n)
	if !ok {
		t.Fatal("remapped tree not reconstructible from its own document")
	}
	return c
}
