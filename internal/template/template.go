// Package template implements the layout-template fingerprint cache:
// documents sharing a form face (the paper's D1 corpus models 20 of
// them) produce near-identical element geometry, so the layout tree
// computed for one instance can be reused for the next. A document is
// fingerprinted by quantizing its element geometry onto a coarse grid —
// the quantum is the tolerance band that absorbs OCR jitter — together
// with the visual and coarse textual attributes the segmenter's
// decisions depend on (color, font size, boldness, line grouping, text
// length/character class). A cache hit skips VS2-Segment entirely: the
// memoized tree structure is remapped onto the new document's elements,
// with every node box recomputed from the new geometry, and the
// pipeline jumps straight to search-and-select.
//
// Correctness over hit rate, everywhere:
//
//   - The cache key is a 64-bit FNV-1a digest of the quantized
//     signature, but an entry stores the full signature bytes and a
//     lookup compares them — a digest collision between structurally
//     different layouts is detected and counted (template.guard.rejects)
//     instead of serving a wrong tree. A false hit is a correctness
//     bug, not a perf bug.
//   - Insert validates that the tree is exactly reconstructible from
//     the document (every node box is either the page bounds or the
//     recomputed bounding box of its elements, every element index in
//     range); trees that are not — damaged, sanitized, or foreign —
//     are refused (template.uncacheable) rather than memoized.
//   - Elements correspond by document order: a hit asserts the new
//     document's element list is shape-identical position by position,
//     so remapping is the identity correspondence. Producers that
//     permute elements simply miss.
//
// Eviction is LRU over a bounded entry count. All methods are safe for
// concurrent use; metrics are optional and nil-safe.
package template

import (
	"bytes"
	"container/list"
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"vs2/internal/doc"
	"vs2/internal/obs"
)

// Defaults applied by New for zero Config fields.
const (
	// DefaultCapacity bounds the LRU when Config.Capacity is 0.
	DefaultCapacity = 256
	// DefaultQuantum is the geometry tolerance band in page units: boxes
	// whose coordinates move by less than half of it keep their
	// fingerprint. 4 page units (≈ half a typical glyph height) absorbs
	// the simulated OCR channel's positional jitter.
	DefaultQuantum = 4.0
)

// Config tunes a Cache.
type Config struct {
	// Capacity is the maximum number of memoized templates; 0 selects
	// DefaultCapacity.
	Capacity int
	// Quantum is the geometry quantization step in page units — the OCR
	// jitter tolerance band. 0 (or non-finite, or negative) selects
	// DefaultQuantum.
	Quantum float64
	// Metrics, when non-nil, receives the template.hits / template.misses
	// / template.evictions / template.guard.rejects / template.inserts /
	// template.uncacheable counters and the template.size gauge.
	Metrics *obs.Registry
}

// Fingerprint is one document's quantized layout signature: the full
// signature bytes plus their 64-bit digest. Compute it once per
// document with Cache.Fingerprint and pass it to Lookup and Insert.
type Fingerprint struct {
	digest uint64
	sig    []byte
}

// Empty reports whether the fingerprint was never computed.
func (f Fingerprint) Empty() bool { return len(f.sig) == 0 }

// Digest is the signature's 64-bit FNV-1a hash, for logs and spans.
func (f Fingerprint) Digest() uint64 { return f.digest }

// String renders the digest as a hex template identifier.
func (f Fingerprint) String() string { return fmt.Sprintf("%016x", f.digest) }

// Stats is a point-in-time counter snapshot, for tests and /slo.
type Stats struct {
	Hits, Misses, Evictions, GuardRejects, Inserts, Uncacheable int64
	// Size is the current entry count (≤ the configured capacity).
	Size int
}

// tnode is the memoized form of one layout-tree node: element indices
// and structure only. Boxes are not stored — they are recomputed from
// the hitting document's geometry, which keeps a remapped tree exactly
// as faithful to its document as a cold segmentation would be.
type tnode struct {
	elems []int32
	kids  []*tnode
	// pageBox marks the one node rule exception: a box equal to the full
	// page bounds (the root NewTree creates) rather than the elements'
	// bounding box.
	pageBox bool
}

// entry is one memoized template. Immutable after insert, so remapping
// can run outside the cache lock.
type entry struct {
	sig  []byte
	root *tnode
}

// Cache is a bounded, concurrency-safe LRU of layout templates.
type Cache struct {
	capacity int
	quantum  float64
	m        *obs.Registry

	mu  sync.Mutex
	lru *list.List               // front = most recently used; values are *entry
	idx map[uint64]*list.Element // masked digest → element

	// hashMask truncates digests before indexing. Full by default; the
	// fuzz harness narrows it to force collisions and prove the
	// signature-comparison guard holds.
	hashMask uint64

	hits, misses, evictions, guardRejects, inserts, uncacheable int64
}

// New builds an empty cache. A nil *Cache is a valid no-op cache: every
// lookup misses, every insert is dropped.
func New(cfg Config) *Cache {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	if cfg.Quantum <= 0 || math.IsNaN(cfg.Quantum) || math.IsInf(cfg.Quantum, 0) {
		cfg.Quantum = DefaultQuantum
	}
	return &Cache{
		capacity: cfg.Capacity,
		quantum:  cfg.Quantum,
		m:        cfg.Metrics,
		lru:      list.New(),
		idx:      make(map[uint64]*list.Element),
		hashMask: ^uint64(0),
	}
}

// Fingerprint computes the document's quantized layout signature. It
// never panics, whatever the geometry (the fuzz target feeds it
// non-finite and extreme boxes); non-finite values quantize to a
// sentinel bucket.
func (c *Cache) Fingerprint(d *doc.Document) Fingerprint {
	if c == nil || d == nil {
		return Fingerprint{}
	}
	q := c.quantum
	fq := q / 2 // finer band for font sizes: typography drives Eq. 1 merges
	buf := make([]byte, 0, 16+24*len(d.Elements))
	var tmp [binary.MaxVarintLen64]byte
	put := func(v int64) {
		n := binary.PutVarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	put(quantize(d.Width, q))
	put(quantize(d.Height, q))
	put(int64(len(d.Elements)))
	for i := range d.Elements {
		e := &d.Elements[i]
		put(int64(e.Kind))
		put(quantize(e.Box.X, q))
		put(quantize(e.Box.Y, q))
		put(quantize(e.Box.W, q))
		put(quantize(e.Box.H, q))
		buf = append(buf, e.Color.R, e.Color.G, e.Color.B)
		put(quantize(e.FontSize, fq))
		bold := byte(0)
		if e.Bold {
			bold = 1
		}
		buf = append(buf, bold, textClass(e.Text))
		put(int64(e.Line))
	}
	return Fingerprint{digest: fnv64a(buf), sig: buf}
}

// quantize maps a coordinate onto the tolerance grid. Values within
// ±quantum/2 of a grid point share a bucket; non-finite values get a
// dedicated sentinel so they never collide with real geometry.
func quantize(v, q float64) int64 {
	r := math.Round(v / q)
	switch {
	case math.IsNaN(r):
		return math.MinInt64
	case r >= math.MaxInt64:
		return math.MaxInt64
	case r <= math.MinInt64+1:
		return math.MinInt64 + 1
	}
	return int64(r)
}

// textClass folds a text element's content into one byte: a character
// class (none/digit/alpha/mixed) and a coarse length bucket. The
// segmenter's semantic merge reads text, so the fingerprint must pin
// its shape — but only its shape, so a template's field values are free
// to vary between instances.
func textClass(s string) byte {
	hasAlpha, hasDigit := false, false
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9':
			hasDigit = true
		case (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r > 127:
			hasAlpha = true
		}
	}
	cls := byte(0)
	if hasDigit {
		cls |= 1
	}
	if hasAlpha {
		cls |= 2
	}
	bucket := len(s) / 4
	if bucket > 31 {
		bucket = 31
	}
	return cls<<5 | byte(bucket)
}

// fnv64a is the 64-bit FNV-1a hash (inlined: no dependency on the
// hash/fnv allocation of a hash.Hash64).
func fnv64a(b []byte) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}

// Lookup returns the memoized layout tree remapped onto d, or (nil,
// false) on a miss. A hit requires full signature equality — a digest
// collision is rejected by the post-hit validation guard and counted as
// template.guard.rejects plus a miss.
func (c *Cache) Lookup(d *doc.Document, fp Fingerprint) (*doc.Node, bool) {
	if c == nil || d == nil || fp.Empty() {
		return nil, false
	}
	c.mu.Lock()
	el, ok := c.idx[fp.digest&c.hashMask]
	if !ok {
		c.misses++
		c.mu.Unlock()
		c.m.Counter("template.misses").Inc()
		return nil, false
	}
	ent := el.Value.(*entry)
	if !bytes.Equal(ent.sig, fp.sig) {
		c.guardRejects++
		c.misses++
		c.mu.Unlock()
		c.m.Counter("template.guard.rejects").Inc()
		c.m.Counter("template.misses").Inc()
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	c.mu.Unlock()
	c.m.Counter("template.hits").Inc()
	// The entry is immutable; remapping outside the lock keeps hits
	// contention-free even if the entry is evicted mid-remap.
	return remap(d, ent.root, 0), true
}

// Insert memoizes the layout tree of d under fp. It refuses — counting
// template.uncacheable — trees that are not exactly reconstructible
// from the document, so a later hit can never be less faithful than a
// cold segmentation. Returns whether the template was stored.
func (c *Cache) Insert(d *doc.Document, fp Fingerprint, tree *doc.Node) bool {
	if c == nil || d == nil || fp.Empty() || tree == nil {
		return false
	}
	root, ok := capture(d, tree)
	if !ok || !coversExactly(root, len(d.Elements)) {
		c.mu.Lock()
		c.uncacheable++
		c.mu.Unlock()
		c.m.Counter("template.uncacheable").Inc()
		return false
	}
	ent := &entry{sig: append([]byte(nil), fp.sig...), root: root}
	key := fp.digest & c.hashMask
	evicted := 0
	c.mu.Lock()
	if el, ok := c.idx[key]; ok {
		// Same layout re-inserted (or a masked-digest collision): replace
		// in place, keeping the slot's recency.
		el.Value = ent
		c.lru.MoveToFront(el)
	} else {
		for c.lru.Len() >= c.capacity {
			oldest := c.lru.Back()
			c.lru.Remove(oldest)
			for k, v := range c.idx {
				if v == oldest {
					delete(c.idx, k)
					break
				}
			}
			c.evictions++
			evicted++
		}
		c.idx[key] = c.lru.PushFront(ent)
	}
	c.inserts++
	size := c.lru.Len()
	c.mu.Unlock()
	c.m.Counter("template.inserts").Inc()
	if evicted > 0 {
		c.m.Counter("template.evictions").Add(int64(evicted))
	}
	c.m.Gauge("template.size").Set(float64(size))
	return true
}

// Len is the current entry count.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:         c.hits,
		Misses:       c.misses,
		Evictions:    c.evictions,
		GuardRejects: c.guardRejects,
		Inserts:      c.inserts,
		Uncacheable:  c.uncacheable,
		Size:         c.lru.Len(),
	}
}

// capture converts a layout tree into its memoized structural form,
// verifying node by node that the tree is exactly reconstructible: each
// box must equal either the page bounds or the recomputed bounding box
// of the node's elements, and every element index must be in range. Any
// violation makes the tree uncacheable.
func capture(d *doc.Document, n *doc.Node) (*tnode, bool) {
	if n == nil {
		return nil, false
	}
	t := &tnode{}
	if len(n.Elements) > 0 {
		t.elems = make([]int32, len(n.Elements))
		for i, id := range n.Elements {
			if id < 0 || id >= len(d.Elements) {
				return nil, false
			}
			t.elems[i] = int32(id)
		}
	}
	switch {
	case n.Box == d.Bounds():
		t.pageBox = true
	case len(n.Elements) > 0 && n.Box == d.BoundingBoxOf(n.Elements):
		// reconstructible from the elements
	default:
		return nil, false
	}
	if len(n.Children) > 0 {
		t.kids = make([]*tnode, 0, len(n.Children))
		for _, k := range n.Children {
			ck, ok := capture(d, k)
			if !ok {
				return nil, false
			}
			t.kids = append(t.kids, ck)
		}
	}
	return t, true
}

// coversExactly verifies the memoized tree's leaves partition the
// element set: every index covered exactly once. Trees that drop or
// duplicate elements (the sanitizer's fallback output) are refused.
func coversExactly(root *tnode, n int) bool {
	covered := make([]bool, n)
	ok := true
	var walk func(t *tnode)
	walk = func(t *tnode) {
		if !ok {
			return
		}
		if len(t.kids) == 0 {
			for _, id := range t.elems {
				if int(id) >= n || covered[id] {
					ok = false
					return
				}
				covered[id] = true
			}
			return
		}
		for _, k := range t.kids {
			walk(k)
		}
	}
	walk(root)
	if !ok {
		return false
	}
	for _, c := range covered {
		if !c {
			return false
		}
	}
	return true
}

// remap rebuilds a live layout tree over d from the memoized structure.
// Every box is recomputed from d's element geometry (or the page
// bounds), and depths are restamped — the result is indistinguishable
// from a cold segmentation that made the same structural decisions.
func remap(d *doc.Document, t *tnode, depth int) *doc.Node {
	n := &doc.Node{Depth: depth}
	if len(t.elems) > 0 {
		n.Elements = make([]int, len(t.elems))
		for i, id := range t.elems {
			n.Elements[i] = int(id)
		}
	}
	if t.pageBox {
		n.Box = d.Bounds()
	} else {
		n.Box = d.BoundingBoxOf(n.Elements)
	}
	if len(t.kids) > 0 {
		n.Children = make([]*doc.Node, 0, len(t.kids))
		for _, k := range t.kids {
			n.Children = append(n.Children, remap(d, k, depth+1))
		}
	}
	return n
}
