package segment

import (
	"context"
	"sync/atomic"
)

// Stats aggregates one segmentation run's parallelism and cache
// telemetry. A caller that wants them attaches a sink with WithStats
// before SegmentContext; the extraction pipeline uses the result to
// record a sequential-recursion degradation when the branch pool was
// exhausted for the whole run.
type Stats struct {
	// Width is the resolved parallel width the run executed under
	// (Options.Parallel after defaulting). Written once at run start.
	Width int
	// Spawned counts subtree recursions (and direction searches)
	// forked onto the worker pool.
	Spawned atomic.Int64
	// Inline counts forks the gate denied, which then ran inline on
	// the requesting goroutine. Inline work is the designed fallback,
	// not an error — it is what guarantees progress under saturation.
	Inline atomic.Int64
	// EmbedHits / EmbedMisses count centroid-cache lookups during
	// semantic merging.
	EmbedHits, EmbedMisses atomic.Int64
}

// SequentialFallback reports whether a parallel-capable run executed
// entirely sequentially because the pool never admitted a fork: the
// degradation the pipeline surfaces in Result.Degraded.
func (st *Stats) SequentialFallback() bool {
	return st != nil && st.Width > 1 && st.Spawned.Load() == 0 && st.Inline.Load() > 0
}

func (st *Stats) addSpawned() {
	if st != nil {
		st.Spawned.Add(1)
	}
}

func (st *Stats) addInline() {
	if st != nil {
		st.Inline.Add(1)
	}
}

// StealGateForTest occupies every free slot of the segmenter's branch
// gate, simulating a pool exhausted by concurrent runs; it reports
// false for sequential segmenters (no gate). Test hook only — the
// degradation path it exercises (gate denial → inline recursion →
// Stats.Inline → "sequential-recursion" in Result.Degraded) cannot be
// triggered deterministically from outside.
func (s *Segmenter) StealGateForTest() bool {
	if s.gate == nil {
		return false
	}
	n := 0
	for s.gate.TryAcquire() {
		n++
	}
	s.stolen += n
	return n > 0
}

// ReleaseGateForTest returns the slots StealGateForTest took.
func (s *Segmenter) ReleaseGateForTest() {
	for ; s.stolen > 0; s.stolen-- {
		s.gate.Release()
	}
}

type statsKey struct{}

// WithStats derives a context carrying a fresh Stats sink that the next
// SegmentContext call on it will fill.
func WithStats(ctx context.Context) (context.Context, *Stats) {
	st := &Stats{}
	return context.WithValue(ctx, statsKey{}, st), st
}

// statsFrom returns the run's stats sink, or nil when none is attached.
func statsFrom(ctx context.Context) *Stats {
	st, _ := ctx.Value(statsKey{}).(*Stats)
	return st
}
