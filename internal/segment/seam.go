package segment

import (
	"sort"

	"vs2/internal/doc"
	"vs2/internal/geom"
	"vs2/internal/grid"
)

// A Separator is the meaningful unit Algorithm 1 scores: an equivalence
// class of valid cuts that induce the same partition of the area's
// elements. Banding raw cut origins is not enough — in sparse documents
// every origin connects to every gap through open whitespace, so origin
// bands fuse separators that cut in different places (and spill into the
// page margins). Grouping seams by the element partition they induce, and
// measuring each separator by the minimum whitespace clearance along a
// representative seam path, recovers the quantity Algorithm 1 actually
// needs: how wide the gap between the two element groups really is.
type separator struct {
	horizontal bool
	// above[i] is true when element i (index into the node's element list)
	// lies before the seam (above for horizontal, left of for vertical).
	above []bool
	// width is the minimum whitespace clearance along the seam, page units.
	width float64
	// nbH is the height of the element nearest the seam, page units.
	nbH float64
	// count of elements on the smaller side (≥1 by construction).
	minSide int
}

// findSeparators enumerates the distinct separators of a direction within
// the node's area. boxes are the node's element boxes translated to the
// area-local frame used to build g.
func findSeparators(g *grid.Grid, boxes []geom.Rect, horizontal bool) []separator {
	region := g.Bounds()
	var origins []int
	if horizontal {
		origins = g.HorizontalCutRows(region)
	} else {
		origins = g.VerticalCutCols(region)
	}
	if len(origins) == 0 {
		return nil
	}
	reach := reachTable(g, horizontal)

	type agg struct {
		sep   separator
		width float64
	}
	bySig := map[string]*agg{}
	for _, o := range origins {
		path := tracePath(g, reach, o, horizontal)
		if path == nil {
			continue
		}
		above := classify(g, boxes, path, horizontal)
		nAbove := 0
		for _, a := range above {
			if a {
				nAbove++
			}
		}
		if nAbove == 0 || nAbove == len(boxes) {
			continue // margin seam: everything on one side
		}
		width, bottleneckAt := minClearance(g, path, horizontal)
		width /= g.Scale
		sig := sigOf(above)
		if cur, ok := bySig[sig]; !ok || width > cur.width {
			minSide := nAbove
			if len(boxes)-nAbove < minSide {
				minSide = len(boxes) - nAbove
			}
			bySig[sig] = &agg{
				sep: separator{
					horizontal: horizontal,
					above:      above,
					width:      width,
					nbH:        heightAtBottleneck(g, boxes, path, bottleneckAt, horizontal),
					minSide:    minSide,
				},
				width: width,
			}
		}
	}
	out := make([]separator, 0, len(bySig))
	keys := make([]string, 0, len(bySig))
	for k := range bySig {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, bySig[k].sep)
	}
	return out
}

// reachTable computes, for every cell, whether a seam can continue from it
// to the far edge (right edge for horizontal seams, bottom for vertical).
func reachTable(g *grid.Grid, horizontal bool) [][]bool {
	w, h := g.W, g.H
	if horizontal {
		table := make([][]bool, w)
		for x := range table {
			table[x] = make([]bool, h)
		}
		for y := 0; y < h; y++ {
			table[w-1][y] = g.Whitespace(w-1, y)
		}
		for x := w - 2; x >= 0; x-- {
			for y := 0; y < h; y++ {
				if !g.Whitespace(x, y) {
					continue
				}
				for dy := -1; dy <= 1; dy++ {
					ny := y + dy
					if ny >= 0 && ny < h && table[x+1][ny] {
						table[x][y] = true
						break
					}
				}
			}
		}
		return table
	}
	table := make([][]bool, h)
	for y := range table {
		table[y] = make([]bool, w)
	}
	for x := 0; x < w; x++ {
		table[h-1][x] = g.Whitespace(x, h-1)
	}
	for y := h - 2; y >= 0; y-- {
		for x := 0; x < w; x++ {
			if !g.Whitespace(x, y) {
				continue
			}
			for dx := -1; dx <= 1; dx++ {
				nx := x + dx
				if nx >= 0 && nx < w && table[y+1][nx] {
					table[y][x] = true
					break
				}
			}
		}
	}
	return table
}

// tracePath walks one seam from the origin, preferring to stay level and
// otherwise drifting toward the larger clearance. Returns the per-column
// row (or per-row column) of the seam.
func tracePath(g *grid.Grid, reach [][]bool, origin int, horizontal bool) []int {
	if horizontal {
		if origin < 0 || origin >= g.H || !reach[0][origin] {
			return nil
		}
		path := make([]int, g.W)
		r := origin
		path[0] = r
		for x := 1; x < g.W; x++ {
			moved := false
			for _, dy := range []int{0, -1, 1} {
				ny := r + dy
				if ny >= 0 && ny < g.H && reach[x][ny] {
					r = ny
					moved = true
					break
				}
			}
			if !moved {
				return nil
			}
			path[x] = r
		}
		return path
	}
	if origin < 0 || origin >= g.W || !reach[0][origin] {
		return nil
	}
	path := make([]int, g.H)
	c := origin
	path[0] = c
	for y := 1; y < g.H; y++ {
		moved := false
		for _, dx := range []int{0, -1, 1} {
			nx := c + dx
			if nx >= 0 && nx < g.W && reach[y][nx] {
				c = nx
				moved = true
				break
			}
		}
		if !moved {
			return nil
		}
		path[y] = c
	}
	return path
}

// classify assigns each element to the side of the seam its centroid lies
// on: true = before (above / left of) the seam.
func classify(g *grid.Grid, boxes []geom.Rect, path []int, horizontal bool) []bool {
	out := make([]bool, len(boxes))
	for i, b := range boxes {
		c := b.Centroid()
		if horizontal {
			x := int(c.X * g.Scale)
			if x < 0 {
				x = 0
			}
			if x >= len(path) {
				x = len(path) - 1
			}
			out[i] = c.Y*g.Scale < float64(path[x])
		} else {
			y := int(c.Y * g.Scale)
			if y < 0 {
				y = 0
			}
			if y >= len(path) {
				y = len(path) - 1
			}
			out[i] = c.X*g.Scale < float64(path[y])
		}
	}
	return out
}

// minClearance returns the smallest whitespace run (in cells) crossed by
// the seam — the true local width of the separator — and the path index
// the bottleneck occurs at.
func minClearance(g *grid.Grid, path []int, horizontal bool) (float64, int) {
	best, at := -1, 0
	for i, p := range path {
		var run int
		if horizontal {
			run = verticalRun(g, i, p)
		} else {
			run = horizontalRun(g, p, i)
		}
		if best < 0 || run < best {
			best, at = run, i
		}
		if best == 0 {
			break
		}
	}
	if best < 0 {
		return 0, 0
	}
	return float64(best), at
}

func verticalRun(g *grid.Grid, x, y int) int {
	if !g.Whitespace(x, y) {
		return 0
	}
	n := 1
	for dy := 1; g.Whitespace(x, y-dy); dy++ {
		n++
	}
	for dy := 1; g.Whitespace(x, y+dy); dy++ {
		n++
	}
	return n
}

func horizontalRun(g *grid.Grid, x, y int) int {
	if !g.Whitespace(x, y) {
		return 0
	}
	n := 1
	for dx := 1; g.Whitespace(x-dx, y); dx++ {
		n++
	}
	for dx := 1; g.Whitespace(x+dx, y); dx++ {
		n++
	}
	return n
}

// heightAtBottleneck returns the height of the element box nearest to the
// seam's bottleneck cell. Algorithm 1 normalises a separator's width by
// the "neighboring bounding box": the box adjacent to the narrow part of
// the gap, whose font height the gap must be compared against. Measuring
// against the globally nearest element instead would let a headline's
// word gap be normalised by distant small body text, promoting it to a
// delimiter.
func heightAtBottleneck(g *grid.Grid, boxes []geom.Rect, path []int, at int, horizontal bool) float64 {
	if len(path) == 0 {
		return 0
	}
	at = clampIdx(at, len(path))
	var px, py float64
	if horizontal {
		px, py = float64(at)/g.Scale, float64(path[at])/g.Scale
	} else {
		px, py = float64(path[at])/g.Scale, float64(at)/g.Scale
	}
	cell := geom.Rect{X: px, Y: py, W: 1 / g.Scale, H: 1 / g.Scale}
	bestH, bestD := 0.0, -1.0
	for _, b := range boxes {
		d := cell.Gap(b)
		if bestD < 0 || d < bestD {
			bestD, bestH = d, b.H
		}
	}
	return bestH
}

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func sigOf(above []bool) string {
	b := make([]byte, (len(above)+7)/8)
	for i, a := range above {
		if a {
			b[i/8] |= 1 << (i % 8)
		}
	}
	return string(b)
}

// partitionBySeparators splits the node's elements into groups defined by
// the combination of chosen separators: elements sharing the same side of
// every separator form one group, ordered by their first occurrence in the
// node's element list.
func partitionBySeparators(n *doc.Node, seps []separator) [][]int {
	if len(seps) == 0 {
		return nil
	}
	groupOf := map[string][]int{}
	var order []string
	for i, id := range n.Elements {
		key := make([]byte, len(seps))
		for s, sep := range seps {
			if sep.above[i] {
				key[s] = 1
			}
		}
		k := string(key)
		if _, ok := groupOf[k]; !ok {
			order = append(order, k)
		}
		groupOf[k] = append(groupOf[k], id)
	}
	out := make([][]int, 0, len(order))
	for _, k := range order {
		out = append(out, groupOf[k])
	}
	return out
}
