package segment

import (
	"sort"
	"sync"

	"vs2/internal/doc"
	"vs2/internal/geom"
	"vs2/internal/grid"
)

// A Separator is the meaningful unit Algorithm 1 scores: an equivalence
// class of valid cuts that induce the same partition of the area's
// elements. Banding raw cut origins is not enough — in sparse documents
// every origin connects to every gap through open whitespace, so origin
// bands fuse separators that cut in different places (and spill into the
// page margins). Grouping seams by the element partition they induce, and
// measuring each separator by the minimum whitespace clearance along a
// representative seam path, recovers the quantity Algorithm 1 actually
// needs: how wide the gap between the two element groups really is.
type separator struct {
	horizontal bool
	// above[i] is true when element i (index into the node's element list)
	// lies before the seam (above for horizontal, left of for vertical).
	above []bool
	// width is the minimum whitespace clearance along the seam, page units.
	width float64
	// nbH is the height of the element nearest the seam, page units.
	nbH float64
	// count of elements on the smaller side (≥1 by construction).
	minSide int
}

// Pooled scratch buffers for the per-node seam search. A segmentation
// run builds one reach table and traces one path buffer per (node,
// direction); pooling them removes the dominant per-recursion-level
// allocations. Buffers are cleared/fully overwritten on reuse.
var (
	boolBufPool = sync.Pool{New: func() any { return new([]bool) }}
	intBufPool  = sync.Pool{New: func() any { return new([]int) }}
)

func getBoolBuf(n int) *[]bool {
	p := boolBufPool.Get().(*[]bool)
	if cap(*p) < n {
		*p = make([]bool, n)
	} else {
		*p = (*p)[:n]
		clear(*p)
	}
	return p
}

func getIntBuf(n int) *[]int {
	p := intBufPool.Get().(*[]int)
	if cap(*p) < n {
		*p = make([]int, n)
	} else {
		*p = (*p)[:n]
	}
	return p
}

// findSeparators enumerates the distinct separators of a direction within
// the node's area. boxes are the node's element boxes translated to the
// area-local frame used to build g.
//
// This is the optimised hot path. The drift-±1 reachability recurrence
// is swept once into a flat pooled table whose first layer doubles as
// the origin list (the seed implementation swept the same recurrence
// twice: once in grid.HorizontalCutRows for the origins and again for
// its own reach table); seam clearances come from the grid's O(1)
// whitespace run tables instead of an O(H) column scan per seam cell;
// and every origin reuses one pooled path buffer. Value equivalence
// with the seed implementation (reference.go) is enforced by the
// differential suite and the fuzz target.
func findSeparators(g *grid.Grid, boxes []geom.Rect, horizontal bool) []separator {
	w, h := g.W, g.H
	if w <= 0 || h <= 0 {
		return nil
	}
	reachBuf := getBoolBuf(w * h)
	defer boolBufPool.Put(reachBuf)
	reach := *reachBuf
	buildReach(g, horizontal, reach)

	span, lanes := w, h // seam length, origin-axis extent
	if !horizontal {
		span, lanes = h, w
	}
	pathBuf := getIntBuf(span)
	defer intBufPool.Put(pathBuf)
	path := *pathBuf

	type agg struct {
		sep   separator
		width float64
	}
	bySig := map[string]*agg{}
	for o := 0; o < lanes; o++ {
		if !reach[o] { // first layer: origins that reach the far edge
			continue
		}
		if !traceInto(reach, w, h, o, horizontal, path) {
			continue
		}
		above := classify(g, boxes, path, horizontal)
		nAbove := 0
		for _, a := range above {
			if a {
				nAbove++
			}
		}
		if nAbove == 0 || nAbove == len(boxes) {
			continue // margin seam: everything on one side
		}
		width, bottleneckAt := minClearance(g, path, horizontal)
		width /= g.Scale
		sig := sigOf(above)
		if cur, ok := bySig[sig]; !ok || width > cur.width {
			minSide := nAbove
			if len(boxes)-nAbove < minSide {
				minSide = len(boxes) - nAbove
			}
			bySig[sig] = &agg{
				sep: separator{
					horizontal: horizontal,
					above:      above,
					width:      width,
					nbH:        heightAtBottleneck(g, boxes, path, bottleneckAt, horizontal),
					minSide:    minSide,
				},
				width: width,
			}
		}
	}
	out := make([]separator, 0, len(bySig))
	keys := make([]string, 0, len(bySig))
	for k := range bySig {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, bySig[k].sep)
	}
	return out
}

// buildReach fills reach with the seam-reachability table: whether a
// seam can continue from a cell to the far edge (right edge for
// horizontal seams, bottom for vertical) under drift-±1 movement.
// Layout is layer-major along the seam axis: horizontal seams index
// reach[x*h+y], vertical seams reach[y*w+x], so layer 0 holds exactly
// the cut origins grid.HorizontalCutRows / VerticalCutCols would
// report. reach must be zeroed on entry.
func buildReach(g *grid.Grid, horizontal bool, reach []bool) {
	w, h := g.W, g.H
	if horizontal {
		last := reach[(w-1)*h : w*h]
		for y := 0; y < h; y++ {
			last[y] = g.Whitespace(w-1, y)
		}
		for x := w - 2; x >= 0; x-- {
			cur := reach[x*h : (x+1)*h]
			next := reach[(x+1)*h : (x+2)*h]
			for y := 0; y < h; y++ {
				if !g.Whitespace(x, y) {
					continue
				}
				if next[y] || (y > 0 && next[y-1]) || (y+1 < h && next[y+1]) {
					cur[y] = true
				}
			}
		}
		return
	}
	last := reach[(h-1)*w : h*w]
	for x := 0; x < w; x++ {
		last[x] = g.Whitespace(x, h-1)
	}
	for y := h - 2; y >= 0; y-- {
		cur := reach[y*w : (y+1)*w]
		next := reach[(y+1)*w : (y+2)*w]
		for x := 0; x < w; x++ {
			if !g.Whitespace(x, y) {
				continue
			}
			if next[x] || (x > 0 && next[x-1]) || (x+1 < w && next[x+1]) {
				cur[x] = true
			}
		}
	}
}

// traceInto walks one seam from the origin into path, preferring to
// stay level and otherwise drifting ±1, exactly like the seed
// refTracePath but without per-origin allocations. Reports whether a
// complete seam exists (it always does when the origin is reachable).
func traceInto(reach []bool, w, h, origin int, horizontal bool, path []int) bool {
	if horizontal {
		if origin < 0 || origin >= h || !reach[origin] {
			return false
		}
		r := origin
		path[0] = r
		for x := 1; x < w; x++ {
			layer := reach[x*h : (x+1)*h]
			switch {
			case layer[r]:
			case r > 0 && layer[r-1]:
				r--
			case r+1 < h && layer[r+1]:
				r++
			default:
				return false
			}
			path[x] = r
		}
		return true
	}
	if origin < 0 || origin >= w || !reach[origin] {
		return false
	}
	c := origin
	path[0] = c
	for y := 1; y < h; y++ {
		layer := reach[y*w : (y+1)*w]
		switch {
		case layer[c]:
		case c > 0 && layer[c-1]:
			c--
		case c+1 < w && layer[c+1]:
			c++
		default:
			return false
		}
		path[y] = c
	}
	return true
}

// classify assigns each element to the side of the seam its centroid lies
// on: true = before (above / left of) the seam. An empty path (a
// degenerate zero-extent grid) classifies nothing: all elements land on
// one side and the caller discards the seam.
func classify(g *grid.Grid, boxes []geom.Rect, path []int, horizontal bool) []bool {
	out := make([]bool, len(boxes))
	if len(path) == 0 {
		return out
	}
	for i, b := range boxes {
		c := b.Centroid()
		if horizontal {
			x := int(c.X * g.Scale)
			if x < 0 {
				x = 0
			}
			if x >= len(path) {
				x = len(path) - 1
			}
			out[i] = c.Y*g.Scale < float64(path[x])
		} else {
			y := int(c.Y * g.Scale)
			if y < 0 {
				y = 0
			}
			if y >= len(path) {
				y = len(path) - 1
			}
			out[i] = c.X*g.Scale < float64(path[y])
		}
	}
	return out
}

// minClearance returns the smallest whitespace run (in cells) crossed by
// the seam — the true local width of the separator — and the path index
// the bottleneck occurs at. Runs come from the grid's memoised run
// tables: O(1) per cell instead of the seed's O(H) scan.
func minClearance(g *grid.Grid, path []int, horizontal bool) (float64, int) {
	best, at := -1, 0
	for i, p := range path {
		var run int
		if horizontal {
			run = g.VRun(i, p)
		} else {
			run = g.HRun(p, i)
		}
		if best < 0 || run < best {
			best, at = run, i
		}
		if best == 0 {
			break
		}
	}
	if best < 0 {
		return 0, 0
	}
	return float64(best), at
}

// heightAtBottleneck returns the height of the element box nearest to the
// seam's bottleneck cell. Algorithm 1 normalises a separator's width by
// the "neighboring bounding box": the box adjacent to the narrow part of
// the gap, whose font height the gap must be compared against. Measuring
// against the globally nearest element instead would let a headline's
// word gap be normalised by distant small body text, promoting it to a
// delimiter.
func heightAtBottleneck(g *grid.Grid, boxes []geom.Rect, path []int, at int, horizontal bool) float64 {
	if len(path) == 0 {
		return 0
	}
	at = clampIdx(at, len(path))
	var px, py float64
	if horizontal {
		px, py = float64(at)/g.Scale, float64(path[at])/g.Scale
	} else {
		px, py = float64(path[at])/g.Scale, float64(at)/g.Scale
	}
	cell := geom.Rect{X: px, Y: py, W: 1 / g.Scale, H: 1 / g.Scale}
	bestH, bestD := 0.0, -1.0
	for _, b := range boxes {
		d := cell.Gap(b)
		if bestD < 0 || d < bestD {
			bestD, bestH = d, b.H
		}
	}
	return bestH
}

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func sigOf(above []bool) string {
	b := make([]byte, (len(above)+7)/8)
	for i, a := range above {
		if a {
			b[i/8] |= 1 << (i % 8)
		}
	}
	return string(b)
}

// partitionBySeparators splits the node's elements into groups defined by
// the combination of chosen separators: elements sharing the same side of
// every separator form one group, ordered by their first occurrence in the
// node's element list.
func partitionBySeparators(n *doc.Node, seps []separator) [][]int {
	if len(seps) == 0 {
		return nil
	}
	groupOf := map[string][]int{}
	var order []string
	for i, id := range n.Elements {
		key := make([]byte, len(seps))
		for s, sep := range seps {
			if sep.above[i] {
				key[s] = 1
			}
		}
		k := string(key)
		if _, ok := groupOf[k]; !ok {
			order = append(order, k)
		}
		groupOf[k] = append(groupOf[k], id)
	}
	out := make([][]int, 0, len(order))
	for _, k := range order {
		out = append(out, groupOf[k])
	}
	return out
}
