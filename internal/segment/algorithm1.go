package segment

import (
	"sort"

	"vs2/internal/stats"
)

// identifyDelimiters is Algorithm 1 of the paper: given the candidate
// separators found in a visual area (sets of consecutive valid cuts,
// represented here by the element partition each induces and the minimum
// whitespace clearance along a representative seam), decide which are true
// visual delimiters.
//
// The algorithm rests on two stated assumptions: (a) the distribution of
// inter-area distances differs from the distribution of intra-area
// separations (word and line gaps), and (b) font size is uniform within a
// semantically coherent area. Each separator is scored by its clearance
// relative to the height of its nearest bounding box — under (b),
// intra-area gaps are a small, roughly constant fraction of the adjacent
// font height (word spacing ≈ 0.5×, leading ≈ 0.2–0.5×), while true
// inter-area delimiters approach or exceed a full line height. Scores are
// sorted in decreasing order (Algorithm 1 line 12) and the first inflection
// point of the score-vs-rank distribution (footnote 3: solve d²f/di² = 0)
// separates prominent delimiters from ordinary spacing; an absolute floor
// keeps the rule stable when the distribution is too short for a reliable
// inflection.
func identifyDelimiters(seps []separator) []separator {
	if len(seps) == 0 {
		return nil
	}
	rels := make([]float64, len(seps))
	for i, s := range seps {
		if s.nbH <= 0 {
			rels[i] = 0
			continue
		}
		rels[i] = s.width / s.nbH
	}

	// Assumption (a) as a guard: when every gap is similar and small, the
	// separators are intra-area spacing and nothing is a delimiter.
	if len(seps) >= 3 && spread(rels) < 1.4 && maxOf(rels) < 1.2 {
		return nil
	}

	idx := make([]int, len(seps))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return rels[idx[a]] > rels[idx[b]] })
	sorted := make([]float64, len(idx))
	for i, k := range idx {
		sorted[i] = rels[k]
	}
	keep := len(idx)
	if t := stats.InflectionPoint(sorted); t > 0 {
		keep = t
	}

	// Absolute floor: a delimiter gap must approach a full adjacent line
	// height; word spacing (≈0.5×) and leading (≈0.2–0.5×) stay below it.
	const minRel = 0.8
	var out []separator
	for _, k := range idx[:keep] {
		if rels[k] >= minRel {
			out = append(out, seps[k])
		}
	}
	// Cap the number of simultaneous delimiters: 2^k combinations explode
	// and the recursion will find the rest. Keep the strongest few.
	const maxDelims = 4
	if len(out) > maxDelims {
		out = out[:maxDelims]
	}
	return out
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// spread returns max/min of the values (Inf-safe).
func spread(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if lo <= 0 {
		return 1e9
	}
	return hi / lo
}
