package segment

import (
	"context"

	"vs2/internal/doc"
	"vs2/internal/embed"
	"vs2/internal/geom"
	"vs2/internal/obs"
)

// mergeTree is the semantic-merging step of Section 5.1.2: recursive
// segmentation over-segments (the paper attributes ~80% of its errors to
// this), so sibling areas that are semantically coherent are merged back.
//
// For a node n_i with siblings n_j and same-level non-siblings n_k, the
// semantic contribution (Eq. 1) is
//
//	SC(n_i) = Σ_j cos(n_i, n_j) − Σ_k cos(n_i, n_k)
//
// using embedding centroids of each node's text. When SC exceeds the
// depth-dependent threshold θ_h = θ_min + (θ_max−θ_min)/10 × h (with
// θ_min = 0, θ_max = 1, i.e. θ_h = h/10), n_i merges with its most similar
// sibling n_p, provided the two are not visually separated. Merging
// repeats until the tree stops changing.
// Cancellation (mergeTree's ctx) is checked once per pass and once per
// parent evaluated, so a deadline unwinds before the next Eq. 1 evaluation.
// Every executed merge lands on sp as an event carrying the Eq. 1 scores
// that drove it (semantic contribution, threshold θ_h, winning pairwise
// similarity); the pass count is an attribute.
//
// cache (optional) memoises text centroids across passes, keyed by each
// node's ordered element-ID sequence: a pass merges at most one pair per
// parent, so nearly every node re-evaluated on the next pass is
// unchanged and its embedding is a map hit. A merged node's
// concatenated ID sequence is a new key, so it re-embeds exactly once.
func mergeTree(ctx context.Context, sp *obs.Span, d *doc.Document, root *doc.Node, e embed.Embedder, cache *embed.Centroids) error {
	passes := 0
	for iter := 0; iter < 8; iter++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		passes++
		if !mergePass(ctx, sp, d, root, e, cache) {
			break
		}
	}
	sp.SetAttr("passes", passes)
	return ctx.Err()
}

// nodeVec embeds a node's transcription, through the cache when one is
// supplied. Node text is a pure function of the document and the node's
// ordered element list, which is exactly what the cache keys on.
func nodeVec(d *doc.Document, n *doc.Node, e embed.Embedder, cache *embed.Centroids) []float64 {
	if cache == nil {
		return embed.TextVec(e, n.Text(d))
	}
	return cache.TextVec(embed.Key(n.Elements), func() string { return n.Text(d) })
}

// mergePass performs one bottom-up sweep; reports whether anything merged.
func mergePass(ctx context.Context, sp *obs.Span, d *doc.Document, root *doc.Node, e embed.Embedder, cache *embed.Centroids) bool {
	// Group nodes by level for the non-sibling term of Eq. 1.
	levels := map[int][]*doc.Node{}
	root.Walk(func(n *doc.Node) {
		levels[n.Depth] = append(levels[n.Depth], n)
	})

	changed := false
	var walk func(n *doc.Node)
	walk = func(n *doc.Node) {
		for _, c := range n.Children {
			walk(c)
		}
		if len(n.Children) < 2 || ctx.Err() != nil {
			return
		}
		if mergeSiblings(sp, d, root.Box, n, levels[n.Depth+1], e, cache) {
			changed = true
		}
	}
	walk(root)
	return changed
}

// mergeSiblings evaluates Eq. 1 for the children of parent and merges the
// best-qualifying pair. Only one merge per parent per pass keeps the
// computation simple and convergent.
func mergeSiblings(sp *obs.Span, d *doc.Document, page geom.Rect, parent *doc.Node, level []*doc.Node, e embed.Embedder, cache *embed.Centroids) bool {
	kids := parent.Children
	vecs := make([][]float64, len(kids))
	for i, k := range kids {
		vecs[i] = nodeVec(d, k, e, cache)
	}
	// Same-level non-sibling vectors.
	var otherVecs [][]float64
	for _, n := range level {
		isKid := false
		for _, k := range kids {
			if n == k {
				isKid = true
				break
			}
		}
		if !isKid {
			otherVecs = append(otherVecs, nodeVec(d, n, e, cache))
		}
	}

	// A merge additionally requires genuine pairwise similarity: with few
	// siblings the Σ-difference of Eq. 1 is weak evidence on its own, and a
	// low θ_h at shallow depths would otherwise glue unrelated areas.
	// When there are several siblings, the winning pair must also stand
	// out against the background similarity of the sibling set — in a form
	// whose rows are all mutually similar (every field talks about tax),
	// flat similarity is no evidence that two particular rows belong
	// together.
	// Deep areas get a softer floor: a node at depth ≥ 2 is a fragment of
	// an already-isolated section, where over-segmentation (a paragraph
	// split into its lines) is the dominant failure and a false merge is
	// bounded by the parent's extent.
	simFloor := 0.5
	if parent.Depth >= 1 {
		simFloor = 0.4
	}
	if len(kids) >= 3 {
		var sum float64
		n := 0
		for i := range kids {
			for j := i + 1; j < len(kids); j++ {
				sum += embed.Cosine(vecs[i], vecs[j])
				n++
			}
		}
		if contrast := sum/float64(n) + 0.15; contrast > simFloor {
			simFloor = contrast
		}
	}
	bestI, bestP, bestSim := -1, -1, simFloor
	bestSC, bestTheta := 0.0, 0.0
	for i := range kids {
		// Only leaf areas are merge candidates: merging exists to undo
		// over-segmentation of atomic areas; an internal node already
		// carries structure the merge would destroy.
		if !kids[i].IsLeaf() {
			continue
		}
		sc := 0.0
		for j := range kids {
			if j != i {
				sc += embed.Cosine(vecs[i], vecs[j])
			}
		}
		for _, ov := range otherVecs {
			sc -= embed.Cosine(vecs[i], ov)
		}
		theta := float64(kids[i].Depth) / 10
		if theta > 1 {
			theta = 1
		}
		if sc <= theta {
			continue
		}
		// Most similar sibling not visually separated from kids[i]. Two
		// areas count as visually separated when an intervening element
		// lies between them, or when the whitespace gap between them is
		// large at the scale of the page — a page-scale gutter is itself
		// a visual separator even with nothing inside it.
		maxGap := 0.16 * maxDim(page)
		for p := range kids {
			if p == i || !kids[p].IsLeaf() {
				continue
			}
			sim := embed.Cosine(vecs[i], vecs[p])
			if sim > bestSim &&
				kids[i].Box.Gap(kids[p].Box) <= maxGap &&
				!typographyDiffers(d, kids[i], kids[p]) &&
				!visuallySeparated(d, kids[i], kids[p]) {
				bestI, bestP, bestSim = i, p, sim
				bestSC, bestTheta = sc, theta
			}
		}
	}
	if bestI < 0 {
		return false
	}

	a, b := kids[bestI], kids[bestP]
	sp.AddEvent("merge",
		obs.Int("depth", a.Depth),
		obs.Int("elements", len(a.Elements)+len(b.Elements)),
		obs.F64("sc", bestSC),
		obs.F64("theta", bestTheta),
		obs.F64("similarity", bestSim))
	merged := &doc.Node{
		Box:      a.Box.Union(b.Box),
		Elements: append(append([]int(nil), a.Elements...), b.Elements...),
		Depth:    a.Depth,
	}
	var next []*doc.Node
	for _, k := range kids {
		if k == a || k == b {
			continue
		}
		next = append(next, k)
	}
	parent.Children = append(next, merged)
	if len(parent.Children) == 1 {
		// The parent collapsed to a single area: absorb it.
		parent.Elements = merged.Elements
		parent.Box = merged.Box
		parent.Children = nil
	}
	return true
}

// visuallySeparated reports whether another element of the document lies
// between the two areas — the Eq. 1 side condition "provided that n_i and
// n_p are not visually separated". The corridor between the two boxes is
// checked for intervening atomic elements not belonging to either node.
func visuallySeparated(d *doc.Document, a, b *doc.Node) bool {
	corridor := a.Box.Union(b.Box)
	member := map[int]bool{}
	for _, id := range a.Elements {
		member[id] = true
	}
	for _, id := range b.Elements {
		member[id] = true
	}
	for i := range d.Elements {
		if member[i] {
			continue
		}
		box := d.Elements[i].Box
		inter := corridor.Intersect(box).Area()
		if box.Area() > 0 && inter/box.Area() > 0.5 {
			return true
		}
	}
	return false
}

// typographyDiffers blocks merges across strong typographic boundaries: a
// headline should not be glued to body text however similar their topics —
// the font-size jump IS the visual separator.
func typographyDiffers(d *doc.Document, a, b *doc.Node) bool {
	ha := meanElemHeight(d, a.Elements)
	hb := meanElemHeight(d, b.Elements)
	if ha == 0 || hb == 0 {
		return false
	}
	ratio := ha / hb
	if ratio < 1 {
		ratio = 1 / ratio
	}
	return ratio >= 1.3
}

func meanElemHeight(d *doc.Document, ids []int) float64 {
	var sum float64
	n := 0
	for _, id := range ids {
		if d.Elements[id].Kind == doc.TextElement {
			sum += d.Elements[id].Box.H
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func maxDim(r geom.Rect) float64 {
	if r.W > r.H {
		return r.W
	}
	return r.H
}
