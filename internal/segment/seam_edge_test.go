package segment

import (
	"strings"
	"testing"

	"vs2/internal/colorlab"
	"vs2/internal/doc"
	"vs2/internal/geom"
	"vs2/internal/grid"
)

// Regression suite for the seam-search edge cases: degenerate 1×N and
// N×1 grids, zero-extent grids, empty pages and zero-size elements.
// The seed implementation indexed a constant-cut path through classify
// with an unclamped -1 when the path was empty (a zero-width grid under
// StraightCutsOnly); these tests pin the guards and verify the
// optimised and reference seam searches agree on every degenerate shape.

// sepsEqual compares two separator lists field by field.
func sepsEqual(a, b []separator) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].horizontal != b[i].horizontal ||
			a[i].width != b[i].width ||
			a[i].nbH != b[i].nbH ||
			a[i].minSide != b[i].minSide ||
			len(a[i].above) != len(b[i].above) {
			return false
		}
		for j := range a[i].above {
			if a[i].above[j] != b[i].above[j] {
				return false
			}
		}
	}
	return true
}

func TestClassifyEmptyPath(t *testing.T) {
	g := grid.New(0, 5)
	boxes := []geom.Rect{{X: 1, Y: 1, W: 2, H: 2}, {X: 1, Y: 4, W: 2, H: 2}}
	above := classify(g, boxes, nil, true)
	if len(above) != len(boxes) {
		t.Fatalf("classify returned %d sides for %d boxes", len(above), len(boxes))
	}
	for i, a := range above {
		if a {
			t.Errorf("box %d classified above an empty seam", i)
		}
	}
}

func TestSeparatorSearchOnDegenerateGrids(t *testing.T) {
	boxes := []geom.Rect{{X: 0, Y: 0, W: 1, H: 1}, {X: 0, Y: 3, W: 1, H: 1}}
	shapes := []struct{ w, h int }{{0, 0}, {0, 5}, {5, 0}, {1, 1}}
	for _, sh := range shapes {
		g := grid.New(sh.w, sh.h)
		for _, horizontal := range []bool{true, false} {
			if got := findSeparators(g, boxes, horizontal); len(got) != 0 {
				t.Errorf("findSeparators on %dx%d (horizontal=%v) = %d seps, want none", sh.w, sh.h, horizontal, len(got))
			}
			if got := findStraightSeparators(g, boxes, horizontal); len(got) != 0 {
				t.Errorf("findStraightSeparators on %dx%d (horizontal=%v) = %d seps, want none", sh.w, sh.h, horizontal, len(got))
			}
		}
	}
}

// TestSeamsOnThinGrids drives both implementations over 1×N and N×1
// grids — seams of length one and lanes of width one, where every drift
// move is at the grid edge — and requires identical separators.
func TestSeamsOnThinGrids(t *testing.T) {
	// N×1: a single row; vertical seams have length 1, horizontal seams
	// have one lane.
	wide := grid.New(9, 1)
	wide.Set(2, 0)
	wide.Set(6, 0)
	wideBoxes := []geom.Rect{{X: 2, Y: 0, W: 1, H: 1}, {X: 6, Y: 0, W: 1, H: 1}}

	// 1×N: a single column.
	tall := grid.New(1, 9)
	tall.Set(0, 2)
	tall.Set(0, 6)
	tallBoxes := []geom.Rect{{X: 0, Y: 2, W: 1, H: 1}, {X: 0, Y: 6, W: 1, H: 1}}

	cases := []struct {
		name  string
		g     *grid.Grid
		boxes []geom.Rect
	}{{"9x1", wide, wideBoxes}, {"1x9", tall, tallBoxes}}
	for _, c := range cases {
		for _, horizontal := range []bool{true, false} {
			got := findSeparators(c.g, c.boxes, horizontal)
			want := refFindSeparators(c.g, c.boxes, horizontal)
			if !sepsEqual(got, want) {
				t.Errorf("%s horizontal=%v: optimised %+v != reference %+v", c.name, horizontal, got, want)
			}
		}
	}
	// Sanity: the single-column grid must still find the horizontal gap
	// between the two occupied cells.
	if seps := findSeparators(tall, tallBoxes, true); len(seps) == 0 {
		t.Error("1x9 grid: no horizontal separator found across the middle gap")
	}
}

// TestSegmentEmptyAndZeroSizePages runs every segmenter mode over pages
// that rasterise to zero-extent or near-empty grids. The seed
// implementation panicked (path[-1] in classify) on a zero-width page
// under StraightCutsOnly.
func TestSegmentEmptyAndZeroSizePages(t *testing.T) {
	zeroWidth := &doc.Document{ID: "zw", Width: 0, Height: 60, Background: colorlab.White}
	for i := 0; i < 4; i++ {
		zeroWidth.Elements = append(zeroWidth.Elements, doc.Element{
			ID: i, Kind: doc.TextElement, Text: "word",
			Box: geom.Rect{X: 0, Y: float64(i * 15), W: 0, H: 8}, Line: i,
		})
	}
	zeroHeight := &doc.Document{ID: "zh", Width: 60, Height: 0, Background: colorlab.White}
	for i := 0; i < 4; i++ {
		zeroHeight.Elements = append(zeroHeight.Elements, doc.Element{
			ID: i, Kind: doc.TextElement, Text: "word",
			Box: geom.Rect{X: float64(i * 15), Y: 0, W: 8, H: 0}, Line: 0,
		})
	}
	emptyPage := &doc.Document{ID: "empty", Width: 100, Height: 100, Background: colorlab.White}
	pointElems := &doc.Document{ID: "points", Width: 50, Height: 50, Background: colorlab.White}
	for i := 0; i < 5; i++ {
		pointElems.Elements = append(pointElems.Elements, doc.Element{
			ID: i, Kind: doc.TextElement, Text: "p",
			Box: geom.Rect{X: float64(i * 10), Y: float64(i * 10), W: 0, H: 0}, Line: -1,
		})
	}

	docs := []*doc.Document{zeroWidth, zeroHeight, emptyPage, pointElems}
	segmenters := map[string]*Segmenter{
		"default":    New(Options{}),
		"parallel":   New(Options{Parallel: 4}),
		"reference":  NewReference(Options{}),
		"straight":   New(Options{StraightCutsOnly: true}),
		"nocluster":  New(Options{DisableClustering: true}),
		"straight-p": New(Options{StraightCutsOnly: true, Parallel: 4}),
	}
	for _, d := range docs {
		var wantDump string
		for _, name := range []string{"default", "parallel", "reference", "straight", "nocluster", "straight-p"} {
			s := segmenters[name]
			root := s.Segment(d) // must not panic
			if root == nil {
				t.Fatalf("%s on %s: nil tree", name, d.ID)
			}
			if err := root.Validate(); err != nil {
				t.Fatalf("%s on %s: invalid tree: %v", name, d.ID, err)
			}
			// All modes except the ablations must agree exactly.
			if name == "default" {
				wantDump = root.Dump(d)
			}
			if (name == "parallel" || name == "reference") && root.Dump(d) != wantDump {
				t.Fatalf("%s on %s: tree diverges from default sequential", name, d.ID)
			}
		}
	}
}

// TestSeamDriftAtGridEdges pins the drift-clamp audit: a seam forced to
// drift along the first and last lanes must stay in range. The dogleg
// layout funnels every horizontal seam through a one-cell gap adjacent
// to the grid edge.
func TestSeamDriftAtGridEdges(t *testing.T) {
	b := newBuilder(40, 12)
	// Top-left block and bottom-right block leave only an S-shaped
	// whitespace channel touching both horizontal edges.
	b.row(0, 0, 4, colorlab.Black, "alpha", "beta")
	b.row(12, 8, 4, colorlab.Black, "gamma", "delta")
	d := b.d

	for _, s := range []*Segmenter{New(Options{}), NewReference(Options{}), New(Options{Parallel: 4})} {
		root := s.Segment(d)
		if root == nil || len(root.Leaves()) == 0 {
			t.Fatal("no blocks from dogleg layout")
		}
	}
	seq := New(Options{}).Segment(d).Dump(d)
	ref := NewReference(Options{}).Segment(d).Dump(d)
	if seq != ref {
		t.Fatalf("dogleg layout: optimised and reference trees diverge\n--- optimised ---\n%s\n--- reference ---\n%s", seq, ref)
	}
	if !strings.Contains(seq, "depth") && seq == "" {
		t.Fatal("empty dump")
	}
}
