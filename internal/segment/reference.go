package segment

import (
	"sort"

	"vs2/internal/geom"
	"vs2/internal/grid"
)

// This file preserves the seed implementation of the seam search,
// exactly as first shipped: origins re-derived via the grid's cut-row
// sweep, a freshly allocated two-dimensional reach table per call, a
// freshly allocated path per origin, and O(H)/O(W) whitespace scans
// per seam cell for clearance. It is deliberately redundant with the
// optimised path in seam.go — NewReference wires it up as the
// independent oracle the differential suite compares the fast path
// against, and as the baseline the benchmark gate measures speedups
// from. Do not optimise it; its value is being boring.

// refFindSeparators is the seed findSeparators.
func refFindSeparators(g *grid.Grid, boxes []geom.Rect, horizontal bool) []separator {
	region := g.Bounds()
	var origins []int
	if horizontal {
		origins = g.HorizontalCutRows(region)
	} else {
		origins = g.VerticalCutCols(region)
	}
	if len(origins) == 0 {
		return nil
	}
	reach := refReachTable(g, horizontal)

	type agg struct {
		sep   separator
		width float64
	}
	bySig := map[string]*agg{}
	for _, o := range origins {
		path := refTracePath(g, reach, o, horizontal)
		if path == nil {
			continue
		}
		above := classify(g, boxes, path, horizontal)
		nAbove := 0
		for _, a := range above {
			if a {
				nAbove++
			}
		}
		if nAbove == 0 || nAbove == len(boxes) {
			continue // margin seam: everything on one side
		}
		width, bottleneckAt := refMinClearance(g, path, horizontal)
		width /= g.Scale
		sig := sigOf(above)
		if cur, ok := bySig[sig]; !ok || width > cur.width {
			minSide := nAbove
			if len(boxes)-nAbove < minSide {
				minSide = len(boxes) - nAbove
			}
			bySig[sig] = &agg{
				sep: separator{
					horizontal: horizontal,
					above:      above,
					width:      width,
					nbH:        heightAtBottleneck(g, boxes, path, bottleneckAt, horizontal),
					minSide:    minSide,
				},
				width: width,
			}
		}
	}
	out := make([]separator, 0, len(bySig))
	keys := make([]string, 0, len(bySig))
	for k := range bySig {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, bySig[k].sep)
	}
	return out
}

// refReachTable computes, for every cell, whether a seam can continue
// from it to the far edge (right edge for horizontal seams, bottom for
// vertical).
func refReachTable(g *grid.Grid, horizontal bool) [][]bool {
	w, h := g.W, g.H
	if horizontal {
		table := make([][]bool, w)
		for x := range table {
			table[x] = make([]bool, h)
		}
		for y := 0; y < h; y++ {
			table[w-1][y] = g.Whitespace(w-1, y)
		}
		for x := w - 2; x >= 0; x-- {
			for y := 0; y < h; y++ {
				if !g.Whitespace(x, y) {
					continue
				}
				for dy := -1; dy <= 1; dy++ {
					ny := y + dy
					if ny >= 0 && ny < h && table[x+1][ny] {
						table[x][y] = true
						break
					}
				}
			}
		}
		return table
	}
	table := make([][]bool, h)
	for y := range table {
		table[y] = make([]bool, w)
	}
	for x := 0; x < w; x++ {
		table[h-1][x] = g.Whitespace(x, h-1)
	}
	for y := h - 2; y >= 0; y-- {
		for x := 0; x < w; x++ {
			if !g.Whitespace(x, y) {
				continue
			}
			for dx := -1; dx <= 1; dx++ {
				nx := x + dx
				if nx >= 0 && nx < w && table[y+1][nx] {
					table[y][x] = true
					break
				}
			}
		}
	}
	return table
}

// refTracePath walks one seam from the origin, preferring to stay level
// and otherwise drifting toward the larger clearance. Returns the
// per-column row (or per-row column) of the seam.
func refTracePath(g *grid.Grid, reach [][]bool, origin int, horizontal bool) []int {
	if horizontal {
		if origin < 0 || origin >= g.H || !reach[0][origin] {
			return nil
		}
		path := make([]int, g.W)
		r := origin
		path[0] = r
		for x := 1; x < g.W; x++ {
			moved := false
			for _, dy := range []int{0, -1, 1} {
				ny := r + dy
				if ny >= 0 && ny < g.H && reach[x][ny] {
					r = ny
					moved = true
					break
				}
			}
			if !moved {
				return nil
			}
			path[x] = r
		}
		return path
	}
	if origin < 0 || origin >= g.W || !reach[0][origin] {
		return nil
	}
	path := make([]int, g.H)
	c := origin
	path[0] = c
	for y := 1; y < g.H; y++ {
		moved := false
		for _, dx := range []int{0, -1, 1} {
			nx := c + dx
			if nx >= 0 && nx < g.W && reach[y][nx] {
				c = nx
				moved = true
				break
			}
		}
		if !moved {
			return nil
		}
		path[y] = c
	}
	return path
}

// refMinClearance returns the smallest whitespace run (in cells)
// crossed by the seam and the path index it occurs at, measured by
// per-cell column/row scans.
func refMinClearance(g *grid.Grid, path []int, horizontal bool) (float64, int) {
	best, at := -1, 0
	for i, p := range path {
		var run int
		if horizontal {
			run = verticalRun(g, i, p)
		} else {
			run = horizontalRun(g, p, i)
		}
		if best < 0 || run < best {
			best, at = run, i
		}
		if best == 0 {
			break
		}
	}
	if best < 0 {
		return 0, 0
	}
	return float64(best), at
}

func verticalRun(g *grid.Grid, x, y int) int {
	if !g.Whitespace(x, y) {
		return 0
	}
	n := 1
	for dy := 1; g.Whitespace(x, y-dy); dy++ {
		n++
	}
	for dy := 1; g.Whitespace(x, y+dy); dy++ {
		n++
	}
	return n
}

func horizontalRun(g *grid.Grid, x, y int) int {
	if !g.Whitespace(x, y) {
		return 0
	}
	n := 1
	for dx := 1; g.Whitespace(x-dx, y); dx++ {
		n++
	}
	for dx := 1; g.Whitespace(x+dx, y); dx++ {
		n++
	}
	return n
}
