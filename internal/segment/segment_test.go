package segment

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"vs2/internal/colorlab"
	"vs2/internal/doc"
	"vs2/internal/geom"
)

// builder assembles synthetic documents for segmentation tests.
type builder struct {
	d    *doc.Document
	next int
}

func newBuilder(w, h float64) *builder {
	return &builder{d: &doc.Document{ID: "test", Width: w, Height: h, Background: colorlab.White}}
}

// row lays the words out left to right starting at (x, y) with the given
// glyph height; returns the builder for chaining.
func (b *builder) row(x, y, fontH float64, color colorlab.RGB, words ...string) *builder {
	cx := x
	for _, w := range words {
		width := float64(len(w)) * fontH * 0.55
		b.d.Elements = append(b.d.Elements, doc.Element{
			ID:       b.next,
			Kind:     doc.TextElement,
			Text:     w,
			Box:      geom.Rect{X: cx, Y: y, W: width, H: fontH},
			Color:    color,
			FontSize: fontH,
			Line:     int(y),
		})
		b.next++
		cx += width + fontH*0.5
	}
	return b
}

// para lays out several rows of words with line spacing 1.4×font.
func (b *builder) para(x, y, fontH float64, color colorlab.RGB, lines ...[]string) *builder {
	for i, words := range lines {
		b.row(x, y+float64(i)*fontH*1.4, fontH, color, words...)
	}
	return b
}

var (
	musicLine1 = []string{"live", "jazz", "concert", "tonight"}
	musicLine2 = []string{"band", "plays", "blues", "music"}
	taxLine1   = []string{"income", "tax", "filing", "deadline"}
	taxLine2   = []string{"deduction", "refund", "form", "amount"}
)

func TestSplitsTwoParagraphsWithGutter(t *testing.T) {
	b := newBuilder(400, 300)
	b.para(20, 20, 12, colorlab.Black, musicLine1, musicLine2)
	b.para(20, 200, 12, colorlab.Black, taxLine1, taxLine2)
	s := New(Options{DisableMerging: true})
	blocks := s.Blocks(b.d)
	if len(blocks) != 2 {
		for _, bl := range blocks {
			t.Logf("block %v: %q", bl.Box, bl.Text(b.d))
		}
		t.Fatalf("blocks = %d, want 2", len(blocks))
	}
	// Top block holds the music lines, bottom the tax lines.
	top, bottom := blocks[0], blocks[1]
	if top.Box.Y > bottom.Box.Y {
		top, bottom = bottom, top
	}
	if !strings.Contains(top.Text(b.d), "jazz") || !strings.Contains(bottom.Text(b.d), "tax") {
		t.Errorf("content misassigned: top=%q bottom=%q", top.Text(b.d), bottom.Text(b.d))
	}
}

func TestSplitsTwoColumns(t *testing.T) {
	b := newBuilder(500, 200)
	b.para(20, 20, 12, colorlab.Black, musicLine1[:2], musicLine2[:2])
	b.para(300, 20, 12, colorlab.Black, taxLine1[:2], taxLine2[:2])
	s := New(Options{DisableMerging: true})
	blocks := s.Blocks(b.d)
	if len(blocks) != 2 {
		for _, bl := range blocks {
			t.Logf("block %v: %q", bl.Box, bl.Text(b.d))
		}
		t.Fatalf("blocks = %d, want 2", len(blocks))
	}
}

func TestUniformParagraphStaysWhole(t *testing.T) {
	b := newBuilder(400, 200)
	b.para(20, 20, 12, colorlab.Black, musicLine1, musicLine2, musicLine1, musicLine2)
	s := New(Options{})
	blocks := s.Blocks(b.d)
	if len(blocks) != 1 {
		for _, bl := range blocks {
			t.Logf("block %v: %q", bl.Box, bl.Text(b.d))
		}
		t.Fatalf("uniform paragraph split into %d blocks", len(blocks))
	}
}

func TestThreeSectionsSplit(t *testing.T) {
	b := newBuilder(400, 500)
	b.row(20, 20, 28, colorlab.DarkNavy, "Jazz", "Night")       // headline
	b.para(20, 150, 12, colorlab.Black, musicLine1, musicLine2) // body
	b.para(20, 380, 12, colorlab.Black, taxLine1, taxLine2)     // unrelated section
	s := New(Options{DisableMerging: true})
	blocks := s.Blocks(b.d)
	if len(blocks) != 3 {
		for _, bl := range blocks {
			t.Logf("block %v: %q", bl.Box, bl.Text(b.d))
		}
		t.Fatalf("blocks = %d, want 3", len(blocks))
	}
}

func TestSemanticMergingReunitesTopicalNeighbors(t *testing.T) {
	b := newBuilder(400, 420)
	// Two music paragraphs separated by a moderate gap, plus a distant tax
	// paragraph. Without merging: 3 blocks. With merging the music pair
	// (semantically coherent, no intervening element) should reunite.
	b.para(20, 20, 12, colorlab.Black, musicLine1, musicLine2)
	b.para(20, 110, 12, colorlab.Black, musicLine2, musicLine1)
	b.para(20, 330, 12, colorlab.Black, taxLine1, taxLine2)

	noMerge := New(Options{DisableMerging: true}).Blocks(b.d)
	withMerge := New(Options{}).Blocks(b.d)
	if len(noMerge) < 3 {
		t.Skipf("layout did not over-segment (got %d blocks); merging untestable here", len(noMerge))
	}
	if len(withMerge) >= len(noMerge) {
		for _, bl := range withMerge {
			t.Logf("merged block %v: %q", bl.Box, bl.Text(b.d))
		}
		t.Errorf("merging did not reduce blocks: %d -> %d", len(noMerge), len(withMerge))
	}
	// The tax paragraph must survive as its own block.
	taxAlone := false
	for _, bl := range withMerge {
		txt := bl.Text(b.d)
		if strings.Contains(txt, "tax") && !strings.Contains(txt, "jazz") {
			taxAlone = true
		}
	}
	if !taxAlone {
		t.Error("tax block was wrongly merged with music content")
	}
}

func TestClusteringSplitsBicolorHeader(t *testing.T) {
	// A headline in huge navy type directly above body text in small black
	// type with no clean whitespace band (tight leading). Clustering on
	// font size + colour should separate them.
	b := newBuilder(400, 200)
	b.row(20, 20, 30, colorlab.DarkNavy, "Grand", "Opening", "Gala")
	// Body starts immediately below the headline (tiny gap ~2 units).
	b.para(20, 52, 11, colorlab.Black, musicLine1, musicLine2, taxLine1)
	s := New(Options{DisableMerging: true})
	blocks := s.Blocks(b.d)
	if len(blocks) < 2 {
		t.Fatalf("bicolor header not separated: %d block(s)", len(blocks))
	}
	// With clustering disabled the area must stay whole (assuming no seam).
	s2 := New(Options{DisableMerging: true, DisableClustering: true, GridScale: 0.5})
	blocks2 := s2.Blocks(b.d)
	if len(blocks2) > len(blocks) {
		t.Errorf("disabling clustering increased segmentation: %d > %d", len(blocks2), len(blocks))
	}
}

func TestStraightCutsAblation(t *testing.T) {
	// Staggered layout: a drifting seam separates the groups, a straight
	// line cannot. Build two element groups interlocked diagonally.
	b := newBuilder(300, 120)
	b.row(10, 10, 20, colorlab.Black, "aaaaaa", "bbbbbb") // y 10-30, x 10..~250
	b.row(80, 44, 20, colorlab.Black, "cccccc", "dddddd") // y 44-64, offset right
	seam := New(Options{DisableMerging: true, DisableClustering: true})
	straight := New(Options{DisableMerging: true, DisableClustering: true, StraightCutsOnly: true})
	nSeam := len(seam.Blocks(b.d))
	nStraight := len(straight.Blocks(b.d))
	if nSeam < nStraight {
		t.Errorf("seam model should segment at least as finely: seam=%d straight=%d", nSeam, nStraight)
	}
}

func TestLayoutTreeInvariants(t *testing.T) {
	b := newBuilder(500, 600)
	b.row(30, 20, 30, colorlab.Burgundy, "Summer", "Music", "Festival")
	b.para(30, 120, 12, colorlab.Black, musicLine1, musicLine2)
	b.para(30, 300, 12, colorlab.Black, taxLine1, taxLine2)
	b.para(280, 120, 12, colorlab.Blue, []string{"call", "614-555-0000"}, []string{"rsvp", "today"})
	tree := New(Options{}).Segment(b.d)
	if err := tree.Validate(); err != nil {
		t.Fatalf("layout tree invalid: %v", err)
	}
	// Every element appears in exactly one leaf.
	seen := map[int]int{}
	for _, leaf := range tree.Leaves() {
		for _, id := range leaf.Elements {
			seen[id]++
		}
	}
	for i := range b.d.Elements {
		if seen[i] != 1 {
			t.Errorf("element %d appears in %d leaves", i, seen[i])
		}
	}
}

func TestDeterminism(t *testing.T) {
	b := newBuilder(500, 600)
	b.row(30, 20, 30, colorlab.Burgundy, "Summer", "Music", "Festival")
	b.para(30, 120, 12, colorlab.Black, musicLine1, musicLine2)
	b.para(30, 300, 12, colorlab.Black, taxLine1, taxLine2)
	s := New(Options{})
	a := s.Segment(b.d).Dump(b.d)
	bDump := s.Segment(b.d).Dump(b.d)
	if a != bDump {
		t.Errorf("segmentation is not deterministic:\n%s\nvs\n%s", a, bDump)
	}
}

func TestEmptyAndTinyDocuments(t *testing.T) {
	empty := &doc.Document{ID: "e", Width: 100, Height: 100}
	blocks := New(Options{}).Blocks(empty)
	if len(blocks) != 1 {
		t.Errorf("empty doc blocks = %d", len(blocks))
	}
	single := newBuilder(100, 100)
	single.row(10, 10, 12, colorlab.Black, "alone")
	blocks = New(Options{}).Blocks(single.d)
	if len(blocks) != 1 {
		t.Errorf("single-word doc blocks = %d", len(blocks))
	}
}

func TestMaxDepthRespected(t *testing.T) {
	b := newBuilder(400, 800)
	for i := 0; i < 8; i++ {
		b.para(20, 20+float64(i)*100, 10, colorlab.Black, musicLine1)
	}
	tree := New(Options{MaxDepth: 2, DisableMerging: true}).Segment(b.d)
	if h := tree.Height(); h > 2 {
		t.Errorf("tree height %d exceeds MaxDepth 2", h)
	}
}

// Property test: on random non-overlapping layouts, segmentation must
// always produce a valid tree whose leaves partition the elements exactly,
// with deterministic output.
func TestSegmentationInvariantsOnRandomLayouts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := newBuilder(300+float64(rng.Intn(300)), 300+float64(rng.Intn(400)))
		// Random rows of random word counts, fonts, colors and gaps.
		y := 10.0 + float64(rng.Intn(40))
		colors := []colorlab.RGB{colorlab.Black, colorlab.DarkNavy, colorlab.Burgundy, colorlab.Gray}
		wordsPool := append(append([]string{}, musicLine1...), taxLine1...)
		for y < b.d.Height-40 && len(b.d.Elements) < 120 {
			font := 8 + float64(rng.Intn(24))
			n := 1 + rng.Intn(5)
			var line []string
			for i := 0; i < n; i++ {
				line = append(line, wordsPool[rng.Intn(len(wordsPool))])
			}
			b.row(10+float64(rng.Intn(60)), y, font, colors[rng.Intn(len(colors))], line...)
			y += font + float64(rng.Intn(70))
		}
		if len(b.d.Elements) == 0 {
			return true
		}
		s := New(Options{})
		tree := s.Segment(b.d)
		if err := tree.Validate(); err != nil {
			t.Logf("seed %d: invalid tree: %v", seed, err)
			return false
		}
		seen := map[int]int{}
		for _, leaf := range tree.Leaves() {
			for _, id := range leaf.Elements {
				seen[id]++
			}
		}
		for i := range b.d.Elements {
			if seen[i] != 1 {
				t.Logf("seed %d: element %d in %d leaves", seed, i, seen[i])
				return false
			}
		}
		// Determinism.
		if s.Segment(b.d).Dump(b.d) != tree.Dump(b.d) {
			t.Logf("seed %d: nondeterministic", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// The ablation switches must never panic or corrupt the partition.
func TestAblationSwitchesOnRandomLayouts(t *testing.T) {
	for _, opts := range []Options{
		{DisableClustering: true},
		{DisableMerging: true},
		{StraightCutsOnly: true},
		{DisableClustering: true, DisableMerging: true, StraightCutsOnly: true},
	} {
		b := newBuilder(400, 500)
		b.row(20, 20, 28, colorlab.DarkNavy, "Grand", "Gala")
		b.para(20, 120, 12, colorlab.Black, musicLine1, musicLine2)
		b.para(20, 330, 12, colorlab.Black, taxLine1, taxLine2)
		tree := New(opts).Segment(b.d)
		if err := tree.Validate(); err != nil {
			t.Errorf("opts %+v: %v", opts, err)
		}
	}
}
