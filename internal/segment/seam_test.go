package segment

import (
	"testing"

	"vs2/internal/doc"
	"vs2/internal/geom"
	"vs2/internal/grid"
)

func TestFindSeparatorsTwoBands(t *testing.T) {
	// Two stacked boxes with a clean gutter: exactly one horizontal
	// separator, splitting element 0 from element 1.
	boxes := []geom.Rect{
		{X: 0, Y: 0, W: 40, H: 10},
		{X: 0, Y: 25, W: 40, H: 10},
	}
	g := grid.FromRects(geom.Rect{W: 40, H: 35}, boxes, 1)
	seps := findSeparators(g, boxes, true)
	if len(seps) != 1 {
		t.Fatalf("separators = %d", len(seps))
	}
	s := seps[0]
	if !s.above[0] || s.above[1] {
		t.Errorf("partition wrong: %v", s.above)
	}
	if s.width < 10 || s.width > 16 {
		t.Errorf("separator width = %v, want ≈15", s.width)
	}
	if s.nbH != 10 {
		t.Errorf("neighbour height = %v", s.nbH)
	}
	if s.minSide != 1 {
		t.Errorf("minSide = %d", s.minSide)
	}
}

func TestFindSeparatorsMarginSeamsExcluded(t *testing.T) {
	// A single box: every seam puts all elements on one side, so no
	// separator may be reported.
	boxes := []geom.Rect{{X: 10, Y: 10, W: 20, H: 10}}
	g := grid.FromRects(geom.Rect{W: 60, H: 40}, boxes, 1)
	if seps := findSeparators(g, boxes, true); len(seps) != 0 {
		t.Errorf("margin seams reported: %d", len(seps))
	}
	if seps := findSeparators(g, boxes, false); len(seps) != 0 {
		t.Errorf("vertical margin seams reported: %d", len(seps))
	}
}

func TestPartitionBySeparators(t *testing.T) {
	n := &doc.Node{Elements: []int{7, 8, 9, 10}}
	seps := []separator{
		{above: []bool{true, true, false, false}},
		{above: []bool{true, false, false, false}},
	}
	groups := partitionBySeparators(n, seps)
	// Keys: (t,t)=7, (t,f)=8, (f,f)=9,10 — three groups in first-seen order.
	if len(groups) != 3 {
		t.Fatalf("groups = %v", groups)
	}
	if groups[0][0] != 7 || groups[1][0] != 8 || len(groups[2]) != 2 {
		t.Errorf("partition = %v", groups)
	}
	if partitionBySeparators(n, nil) != nil {
		t.Error("no separators should partition to nil")
	}
}

func TestIdentifyDelimitersGuards(t *testing.T) {
	// Uniform small gaps: nothing is a delimiter.
	uniform := []separator{
		{width: 5, nbH: 12}, {width: 5.2, nbH: 12}, {width: 4.9, nbH: 12},
	}
	if got := identifyDelimiters(uniform); len(got) != 0 {
		t.Errorf("uniform gaps produced %d delimiters", len(got))
	}
	// One dominant gap among line spacing: one delimiter.
	mixed := []separator{
		{width: 4, nbH: 12}, {width: 40, nbH: 12}, {width: 4.5, nbH: 12},
	}
	got := identifyDelimiters(mixed)
	if len(got) != 1 || got[0].width != 40 {
		t.Errorf("mixed gaps delimiters = %+v", got)
	}
	if identifyDelimiters(nil) != nil {
		t.Error("no separators should identify to nil")
	}
	// Zero neighbour height entries are ignored gracefully.
	weird := []separator{{width: 10, nbH: 0}}
	if got := identifyDelimiters(weird); len(got) != 0 {
		t.Errorf("zero-nbH separator kept: %+v", got)
	}
}

func TestMaxDelimiterCap(t *testing.T) {
	var many []separator
	for i := 0; i < 10; i++ {
		many = append(many, separator{width: 30 + float64(i), nbH: 10})
	}
	if got := identifyDelimiters(many); len(got) > 4 {
		t.Errorf("delimiter cap violated: %d", len(got))
	}
}
