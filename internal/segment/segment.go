// Package segment implements VS2-Segment, the hierarchical page-segmentation
// algorithm of Section 5.1: the paper's first technical contribution. A
// visually rich document is recursively decomposed into visually isolated
// but semantically coherent areas — logical blocks — recorded as the leaves
// of the layout tree of Section 4.2.
//
// Each iteration of the recursion, applied to one visual area:
//
//  1. Explicit visual delimiters: the area is rasterised (package grid) and
//     scanned for maximal bands of consecutive valid horizontal/vertical
//     cuts; Algorithm 1 (algorithm1.go) decides which bands are true
//     delimiters. The area splits along them.
//  2. Implicit visual modifiers: when no delimiter exists, the atomic
//     elements are clustered on the low-level visual features of Table 1
//     (cluster.go) — proximity, alignment, colour, font size and angular
//     position — seeded from a 2×2 grid of medoids.
//  3. Semantic merging: because steps 1–2 over-segment (the paper's main
//     reported failure mode), sibling areas whose semantic contribution
//     (Eq. 1) exceeds the depth-dependent threshold θ_h are merged back
//     together (merge.go).
//
// The resulting leaves are the logical blocks consumed by VS2-Select.
//
// Because sibling areas partition their parent's atomic elements, the
// recursion's subproblems are independent; the segmenter exploits this
// by forking child subtrees onto a bounded worker pool (Options.Parallel)
// while guaranteeing output identical to the sequential recursion.
package segment

import (
	"context"
	"sync"

	"vs2/internal/doc"
	"vs2/internal/embed"
	"vs2/internal/geom"
	"vs2/internal/grid"
	"vs2/internal/obs"
	"vs2/internal/serve"
)

// Options configures the segmenter; zero values select paper defaults.
// The boolean switches exist for the Table 9 ablation study.
type Options struct {
	// GridScale is the rasterisation resolution in cells per page unit.
	GridScale float64
	// MaxDepth bounds the recursion (default 10).
	MaxDepth int
	// MinElements is the smallest element count worth splitting (default 2).
	MinElements int
	// DisableClustering turns off the visual-feature clustering step
	// (ablation row A2 of Table 9 removes visual features).
	DisableClustering bool
	// DisableMerging turns off semantic merging (ablation row A1).
	DisableMerging bool
	// StraightCutsOnly restricts cuts to straight projection lines (no ±1
	// drift), degrading the cut model to XY-cut behaviour; a DESIGN.md
	// ablation, not part of the paper's Table 9.
	StraightCutsOnly bool
	// Embedder supplies word vectors for semantic merging; nil selects the
	// built-in lexicon embedder.
	Embedder embed.Embedder
	// Parallel bounds the branch-parallel recursion: the maximum number
	// of goroutines one Segmenter dedicates to subtree splits and seam
	// searches, shared across concurrent Segment calls through a single
	// gate. 0 selects the serving layer's pool size, min(GOMAXPROCS, 8);
	// 1 or below runs strictly sequentially. The output is
	// element-for-element identical at every width — determinism is a
	// contract, enforced by the differential suite.
	Parallel int
}

func (o Options) withDefaults() Options {
	if o.GridScale <= 0 {
		o.GridScale = 1
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 10
	}
	if o.MinElements <= 0 {
		o.MinElements = 2
	}
	if o.Embedder == nil {
		o.Embedder = sharedLexicon
	}
	if o.Parallel == 0 {
		o.Parallel = serve.PoolSize(0)
	}
	if o.Parallel < 1 {
		o.Parallel = 1
	}
	return o
}

var sharedLexicon = embed.NewLexicon()

// Segmenter decomposes documents into logical blocks.
type Segmenter struct {
	opts Options
	// gate bounds extra worker goroutines (nil when sequential). It is
	// per-Segmenter so a server's concurrent extractions share one
	// budget instead of multiplying it.
	gate *serve.Gate
	// ref selects the preserved seed implementation (reference.go):
	// sequential recursion, per-origin whitespace scans, no caches.
	ref bool
	// stolen tracks gate slots held by StealGateForTest.
	stolen int
}

// New returns a Segmenter with the given options.
func New(opts Options) *Segmenter {
	opts = opts.withDefaults()
	s := &Segmenter{opts: opts}
	if opts.Parallel > 1 {
		// Capacity Parallel-1: the calling goroutine is the pool's
		// implicit first worker.
		s.gate = serve.NewGate(opts.Parallel - 1)
	}
	return s
}

// NewReference returns a Segmenter running the seed implementation:
// strictly sequential recursion with per-call reach tables, per-cell
// clearance scans and no embedding cache. It is the oracle the
// differential suite checks the optimised path against, and the
// baseline the benchmark gate measures speedups from.
func NewReference(opts Options) *Segmenter {
	opts = opts.withDefaults()
	opts.Parallel = 1
	return &Segmenter{opts: opts, ref: true}
}

// Segment builds the layout tree of d. The returned tree's leaves are the
// logical blocks.
func (s *Segmenter) Segment(d *doc.Document) *doc.Node {
	root, _ := s.SegmentContext(context.Background(), d)
	return root
}

// SegmentContext is Segment under cooperative cancellation: the recursion
// checks ctx at every area it decomposes, the clustering step at every
// reassignment sweep, and the semantic merger at every pass, so a deadline
// or cancellation unwinds within one unit of work. On cancellation the
// partial tree is discarded and ctx's error is returned.
func (s *Segmenter) SegmentContext(ctx context.Context, d *doc.Document) (*doc.Node, error) {
	// One SpanFrom lookup per run; the recursion below passes the span
	// down explicitly, so untraced runs pay only nil checks.
	sp := obs.SpanFrom(ctx)
	st := statsFrom(ctx)
	if st != nil {
		st.Width = s.opts.Parallel
	}
	root := doc.NewTree(d)
	if err := s.split(ctx, sp, d, root, 0, st); err != nil {
		return nil, err
	}
	if !s.opts.DisableMerging {
		msp := sp.Child("merge")
		var cache *embed.Centroids
		if !s.ref {
			cache = embed.NewCentroids(s.opts.Embedder)
		}
		err := mergeTree(ctx, msp, d, root, s.opts.Embedder, cache)
		if cache != nil {
			hits, misses := cache.Stats()
			if st != nil {
				st.EmbedHits.Add(hits)
				st.EmbedMisses.Add(misses)
			}
			if msp != nil {
				msp.SetAttr("embed_cache_hits", hits)
				msp.SetAttr("embed_cache_misses", misses)
			}
		}
		msp.End()
		if err != nil {
			return nil, err
		}
	}
	if sp != nil {
		sp.SetAttr("blocks", len(root.Leaves()))
		sp.SetAttr("tree_height", root.Height())
		sp.SetAttr("parallel", s.opts.Parallel)
	}
	return root, nil
}

// Blocks segments d and returns the leaf nodes directly.
func (s *Segmenter) Blocks(d *doc.Document) []*doc.Node {
	return s.Segment(d).Leaves()
}

// split recursively decomposes the visual area represented by n. sp is
// the parent span (nil when untraced): each split attempt opens a child
// span, so the span tree mirrors the segmentation recursion one-to-one.
//
// Child subtrees are independent by construction (siblings partition
// the parent's elements), so after the children are created — in the
// deterministic order the partition yields them — each subtree may
// recurse on its own goroutine. The gate never blocks: a denied fork
// runs inline on the requesting goroutine, so progress is guaranteed
// and saturation degrades to plain recursion instead of deadlock. The
// caller always descends into the last child itself rather than asking
// the pool for it.
func (s *Segmenter) split(ctx context.Context, sp *obs.Span, d *doc.Document, n *doc.Node, depth int, st *Stats) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if depth >= s.opts.MaxDepth || len(n.Elements) <= s.opts.MinElements {
		return nil
	}
	node := sp.Child("split")
	defer node.End()
	node.SetAttr("depth", depth)
	node.SetAttr("elements", len(n.Elements))
	groups := s.splitByDelimiters(d, n, node, st)
	if groups == nil && !s.opts.DisableClustering {
		groups = clusterElements(ctx, d, n, node)
	}
	node.SetAttr("groups", len(groups))
	if len(groups) < 2 {
		return ctx.Err()
	}
	recurse := make([]*doc.Node, 0, len(groups))
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		child := n.AddChild(d.BoundingBoxOf(g), g)
		if len(g) < len(n.Elements) { // guaranteed progress
			recurse = append(recurse, child)
		}
	}
	if err := s.splitChildren(ctx, node, d, recurse, depth+1, st); err != nil {
		return err
	}
	// A single non-empty group means no real split happened; undo.
	if len(n.Children) < 2 {
		n.Children = nil
	}
	return ctx.Err()
}

// splitChildren recurses into each child subtree, forking all but the
// last onto the pool when a slot is free. Each goroutine mutates only
// its own subtree and its own error slot; the parent's span collects
// child spans under a lock. Errors surface in child order, so the
// reported error is the same one the sequential recursion would return.
func (s *Segmenter) splitChildren(ctx context.Context, sp *obs.Span, d *doc.Document, children []*doc.Node, depth int, st *Stats) error {
	if s.gate == nil || len(children) < 2 {
		for _, c := range children {
			if err := s.split(ctx, sp, d, c, depth, st); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(children))
	var wg sync.WaitGroup
	for i := 0; i < len(children)-1; i++ {
		if s.gate.TryAcquire() {
			st.addSpawned()
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer s.gate.Release()
				errs[i] = s.split(ctx, sp, d, children[i], depth, st)
			}(i)
		} else {
			st.addInline()
			errs[i] = s.split(ctx, sp, d, children[i], depth, st)
		}
	}
	last := len(children) - 1
	errs[last] = s.split(ctx, sp, d, children[last], depth, st)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// splitByDelimiters searches for explicit whitespace delimiters within n
// and partitions n's elements along them. Both directions contribute:
// separators are enumerated as element partitions (seam.go), Algorithm 1
// keeps the true delimiters, and elements sharing a side of every kept
// delimiter form one group. Returns nil when nothing passes Algorithm 1.
// The cut-band census and Algorithm 1's verdict are annotated on sp.
// The two direction searches are independent reads of the same grid, so
// the horizontal search may ride the pool while the caller runs the
// vertical one; appending horizontal-then-vertical keeps the separator
// order identical to the sequential search.
func (s *Segmenter) splitByDelimiters(d *doc.Document, n *doc.Node, sp *obs.Span, st *Stats) [][]int {
	boxes := make([]geom.Rect, 0, len(n.Elements))
	local := n.Box
	for _, id := range n.Elements {
		b := d.Elements[id].Box
		boxes = append(boxes, b.Translate(-local.X, -local.Y))
	}
	g := grid.FromRects(geom.Rect{W: local.W, H: local.H}, boxes, s.opts.GridScale)

	find := findSeparators
	switch {
	case s.opts.StraightCutsOnly:
		find = findStraightSeparators
	case s.ref:
		find = refFindSeparators
	}
	var hseps, vseps []separator
	if s.gate != nil && s.gate.TryAcquire() {
		st.addSpawned()
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer s.gate.Release()
			hseps = find(g, boxes, true)
		}()
		vseps = find(g, boxes, false)
		wg.Wait()
	} else {
		hseps = find(g, boxes, true)
		vseps = find(g, boxes, false)
	}
	seps := append(hseps, vseps...)
	delims := identifyDelimiters(seps)
	if sp != nil {
		sp.SetAttr("cut_bands", len(seps))
		sp.SetAttr("delimiters", len(delims))
		if len(delims) > 0 {
			// The Algorithm 1 decision variable per kept delimiter:
			// clearance relative to the neighbouring line height.
			rels := make([]float64, len(delims))
			for i, del := range delims {
				if del.nbH > 0 {
					rels[i] = del.width / del.nbH
				}
			}
			sp.SetAttr("delimiter_rels", rels)
		}
	}
	if len(delims) == 0 {
		return nil
	}
	return partitionBySeparators(n, delims)
}

// findStraightSeparators is the StraightCutsOnly ablation: only projection
// cuts (fully clear rows/columns) count, as in XY-cut.
func findStraightSeparators(g *grid.Grid, boxes []geom.Rect, horizontal bool) []separator {
	if g.W <= 0 || g.H <= 0 {
		return nil
	}
	var origins []int
	if horizontal {
		for y := 0; y < g.H; y++ {
			clear := true
			for x := 0; x < g.W; x++ {
				if g.Occupied(x, y) {
					clear = false
					break
				}
			}
			if clear {
				origins = append(origins, y)
			}
		}
	} else {
		for x := 0; x < g.W; x++ {
			clear := true
			for y := 0; y < g.H; y++ {
				if g.Occupied(x, y) {
					clear = false
					break
				}
			}
			if clear {
				origins = append(origins, x)
			}
		}
	}
	// A straight cut is a constant path; reuse the separator grouping by
	// synthesising constant paths.
	bySig := map[string]*separator{}
	var order []string
	for _, o := range origins {
		var path []int
		if horizontal {
			path = make([]int, g.W)
		} else {
			path = make([]int, g.H)
		}
		for i := range path {
			path[i] = o
		}
		above := classify(g, boxes, path, horizontal)
		nAbove := 0
		for _, a := range above {
			if a {
				nAbove++
			}
		}
		if nAbove == 0 || nAbove == len(boxes) {
			continue
		}
		width, bottleneckAt := minClearance(g, path, horizontal)
		width /= g.Scale
		sig := sigOf(above)
		if cur, ok := bySig[sig]; !ok || width > cur.width {
			minSide := nAbove
			if len(boxes)-nAbove < minSide {
				minSide = len(boxes) - nAbove
			}
			if !ok {
				order = append(order, sig)
			}
			bySig[sig] = &separator{
				horizontal: horizontal,
				above:      above,
				width:      width,
				nbH:        heightAtBottleneck(g, boxes, path, bottleneckAt, horizontal),
				minSide:    minSide,
			}
		}
	}
	out := make([]separator, 0, len(bySig))
	for _, k := range order {
		out = append(out, *bySig[k])
	}
	return out
}
