package segment

import (
	"context"
	"math"
	"sort"
	"sync"

	"vs2/internal/colorlab"
	"vs2/internal/doc"
	"vs2/internal/geom"
	"vs2/internal/obs"
)

// clusterElements is the implicit-visual-modifier step of VS2-Segment
// (Section 5.1.2): when no explicit whitespace delimiter exists, atomic
// elements are grouped by pairwise similarity over the low-level features
// of Table 1 — centroid position, bounding-box height, average LAB colour,
// angular distance of the centroid from the page origin, and sums of
// angular distances. Clustering is seeded with one medoid per cell of a
// 2×2 equal-partition grid over the area (the element at minimum average
// distance from the rest of its cell), then elements are iteratively
// reassigned to their nearest-medoid cluster until stable, with the
// constraint that merging pairs must not be visually separated by another
// element lying between them.
//
// Returns nil when clustering yields fewer than two groups, or when ctx is
// cancelled mid-sweep (the caller's own ctx check surfaces the error).
// Reassignment-sweep count and resulting group count are annotated on sp
// (nil when untraced).
func clusterElements(ctx context.Context, d *doc.Document, n *doc.Node, sp *obs.Span) [][]int {
	ids := n.Elements
	if len(ids) < 4 {
		return nil
	}
	// All feature vectors live in one pooled flat buffer: one Get per
	// clustering call instead of one allocation per element. Every lane
	// is fully overwritten before use and nothing below retains a
	// sub-slice past the return, so the buffer is safe to recycle.
	flat := getFeatBuf(featDim * len(ids))
	defer featBufPool.Put(flat)
	feats := make([][]float64, len(ids))
	for i, id := range ids {
		fs := (*flat)[i*featDim : (i+1)*featDim : (i+1)*featDim]
		elementFeaturesInto(d, n.Box, id, fs)
		feats[i] = fs
	}

	centers := seedMedoids(d, n, ids, feats)
	if len(centers) < 2 {
		return nil
	}

	assign := make([]int, len(ids))
	sweeps := 0
	for iter := 0; iter < 20; iter++ {
		if ctx.Err() != nil {
			return nil
		}
		sweeps++
		changed := false
		for i := range ids {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centers {
				if dist := featureDist(feats[i], feats[ctr]); dist < bestD {
					best, bestD = c, dist
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute medoids.
		for c := range centers {
			centers[c] = medoid(feats, assign, c, centers[c])
		}
		if !changed {
			break
		}
	}

	groups := make([][]int, len(centers))
	for i, a := range assign {
		groups[a] = append(groups[a], ids[i])
	}
	var out [][]int
	for _, g := range groups {
		if len(g) > 0 {
			out = append(out, g)
		}
	}
	out = mergeOverlappingGroups(d, out)
	out = mergeTypographicTwins(d, out)
	if sp != nil {
		sp.SetAttr("cluster_iterations", sweeps)
		sp.SetAttr("cluster_seeds", len(centers))
		sp.SetAttr("cluster_groups", len(out))
	}
	if len(out) < 2 {
		return nil
	}
	return out
}

// mergeTypographicTwins fuses clusters that carry no distinct implicit
// visual modifier. The clustering step exists to capture emphasis that
// whitespace analysis cannot see — font-size jumps, colour changes,
// isolation by negative space. Two clusters with the same typography and
// no meaningful spatial gap are an artefact of the spatial seed grid, not
// two logical blocks; splitting a homogeneous paragraph into quadrants
// would be pure over-segmentation.
func mergeTypographicTwins(d *doc.Document, groups [][]int) [][]int {
	for {
		merged := false
		for i := 0; i < len(groups) && !merged; i++ {
			for j := i + 1; j < len(groups); j++ {
				if typographicallyDistinct(d, groups[i], groups[j]) {
					continue
				}
				groups[i] = append(groups[i], groups[j]...)
				groups = append(groups[:j], groups[j+1:]...)
				merged = true
				break
			}
		}
		if !merged {
			return groups
		}
	}
}

// typographicallyDistinct reports whether the two element groups differ in
// an implicit visual modifier: a font-height ratio of at least 1.25, a
// perceptible colour difference (ΔE ≥ 20), or spatial isolation by a gap
// larger than the dominant line height.
func typographicallyDistinct(d *doc.Document, a, b []int) bool {
	ha, ca := groupStyle(d, a)
	hb, cb := groupStyle(d, b)
	ratio := ha / hb
	if ratio < 1 {
		ratio = 1 / ratio
	}
	if ratio >= 1.25 {
		return true
	}
	if colorlab.DeltaE(ca, cb) >= 20 {
		return true
	}
	gap := d.BoundingBoxOf(a).Gap(d.BoundingBoxOf(b))
	return gap >= math.Max(ha, hb)
}

// groupStyle returns the mean font height and mean LAB colour of a group.
func groupStyle(d *doc.Document, ids []int) (float64, colorlab.LAB) {
	var h, l, a, bb float64
	n := 0
	for _, id := range ids {
		e := &d.Elements[id]
		lab := colorlab.ToLAB(e.Color)
		h += e.Box.H
		l += lab.L
		a += lab.A
		bb += lab.B
		n++
	}
	if n == 0 {
		return 1, colorlab.LAB{}
	}
	f := float64(n)
	return h / f, colorlab.LAB{L: l / f, A: a / f, B: bb / f}
}

// featDim is the Table 1 feature-vector dimensionality.
const featDim = 7

// featBufPool recycles the flat feature buffers across clustering
// calls; the slices are sized (and fully overwritten) per call.
var featBufPool = sync.Pool{New: func() any { return new([]float64) }}

func getFeatBuf(n int) *[]float64 {
	p := featBufPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	} else {
		*p = (*p)[:n]
	}
	return p
}

// elementFeaturesInto encodes one atomic element per Table 1 into out
// (length featDim), normalised so that each feature contributes on a
// comparable scale:
//
//	[0] centroid x / area width
//	[1] centroid y / area height
//	[2] bbox height / max plausible height (area height)
//	[3] L* / 100, [4] a* / 128, [5] b* / 128
//	[6] angular distance of centroid from area origin / (π/2)
func elementFeaturesInto(d *doc.Document, area geom.Rect, id int, out []float64) {
	e := &d.Elements[id]
	c := e.Box.Centroid()
	lab := colorlab.ToLAB(e.Color)
	w, h := area.W, area.H
	if w == 0 {
		w = 1
	}
	if h == 0 {
		h = 1
	}
	rel := geom.Point{X: c.X - area.X, Y: c.Y - area.Y}
	out[0] = rel.X / w
	out[1] = rel.Y / h
	out[2] = e.Box.H / h * 4 // font size differences matter; amplify
	out[3] = lab.L / 100
	out[4] = lab.A / 128
	out[5] = lab.B / 128
	out[6] = rel.Angle() / (math.Pi / 2)
}

// featureWeights balances spatial proximity (dominant, per the paper's
// emphasis on proximity and alignment) against typographic and colour
// evidence.
var featureWeights = []float64{2.0, 2.0, 1.5, 0.8, 0.8, 0.8, 1.0}

func featureDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := (a[i] - b[i]) * featureWeights[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// seedMedoids partitions the area with a 2×2 grid and picks the medoid of
// each non-empty cell as the initial cluster centre. Returns indices into
// the ids/feats slices.
func seedMedoids(d *doc.Document, n *doc.Node, ids []int, feats [][]float64) []int {
	cells := make([][]int, 4) // member indices per cell
	midX := n.Box.X + n.Box.W/2
	midY := n.Box.Y + n.Box.H/2
	for i, id := range ids {
		c := d.Elements[id].Box.Centroid()
		cell := 0
		if c.X >= midX {
			cell |= 1
		}
		if c.Y >= midY {
			cell |= 2
		}
		cells[cell] = append(cells[cell], i)
	}
	var centers []int
	for _, members := range cells {
		if len(members) == 0 {
			continue
		}
		centers = append(centers, medoidOf(feats, members))
	}
	sort.Ints(centers)
	return centers
}

// medoidOf returns the member at minimum average feature distance from the
// other members.
func medoidOf(feats [][]float64, members []int) int {
	best, bestSum := members[0], math.Inf(1)
	for _, i := range members {
		var sum float64
		for _, j := range members {
			sum += featureDist(feats[i], feats[j])
		}
		if sum < bestSum {
			best, bestSum = i, sum
		}
	}
	return best
}

// medoid recomputes the medoid of cluster c under the given assignment,
// falling back to the previous centre when the cluster emptied.
func medoid(feats [][]float64, assign []int, c, prev int) int {
	var members []int
	for i, a := range assign {
		if a == c {
			members = append(members, i)
		}
	}
	if len(members) == 0 {
		return prev
	}
	return medoidOf(feats, members)
}

// mergeOverlappingGroups fuses groups whose bounding boxes overlap — the
// "not visually separated" constraint: clusters that interpenetrate
// spatially cannot be distinct logical blocks.
func mergeOverlappingGroups(d *doc.Document, groups [][]int) [][]int {
	for {
		merged := false
		for i := 0; i < len(groups) && !merged; i++ {
			bi := d.BoundingBoxOf(groups[i])
			for j := i + 1; j < len(groups); j++ {
				bj := d.BoundingBoxOf(groups[j])
				inter := bi.Intersect(bj).Area()
				minA := math.Min(bi.Area(), bj.Area())
				if minA > 0 && inter/minA > 0.25 {
					groups[i] = append(groups[i], groups[j]...)
					groups = append(groups[:j], groups[j+1:]...)
					merged = true
					break
				}
			}
		}
		if !merged {
			return groups
		}
	}
}
