package doc

import (
	"encoding/json"
	"fmt"
	"sort"

	"vs2/internal/geom"
)

// Annotation is one expert-labelled named entity occurrence: the smallest
// bounding box containing the entity, the entity key from the task's
// semantic vocabulary, and the ground-truth text (Section 6.2). The paper
// averages coordinates from three annotators and majority-votes the label;
// the dataset generators emit the already-consolidated result.
type Annotation struct {
	Entity string    `json:"entity"`
	Box    geom.Rect `json:"box"`
	Text   string    `json:"text"`
}

// GroundTruth holds every annotation for one document.
type GroundTruth struct {
	DocID       string       `json:"docId"`
	Annotations []Annotation `json:"annotations"`
}

// ForEntity returns the annotations labelled with the given entity key.
func (g *GroundTruth) ForEntity(entity string) []Annotation {
	var out []Annotation
	for _, a := range g.Annotations {
		if a.Entity == entity {
			out = append(out, a)
		}
	}
	return out
}

// Entities returns the distinct entity keys present, sorted.
func (g *GroundTruth) Entities() []string {
	set := map[string]bool{}
	for _, a := range g.Annotations {
		set[a.Entity] = true
	}
	out := make([]string, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// Labeled couples a document with its ground truth; the dataset generators
// return slices of these.
type Labeled struct {
	Doc   *Document    `json:"doc"`
	Truth *GroundTruth `json:"truth"`
}

// Validate checks that every annotation box intersects the page and refers
// to a known entity-key syntax (non-empty).
func (g *GroundTruth) Validate(d *Document) error {
	page := d.Bounds()
	for i, a := range g.Annotations {
		if a.Entity == "" {
			return fmt.Errorf("truth %s: annotation %d has empty entity", g.DocID, i)
		}
		if a.Box.Empty() {
			return fmt.Errorf("truth %s: annotation %d (%s) has empty box", g.DocID, i, a.Entity)
		}
		if !page.Intersects(a.Box) {
			return fmt.Errorf("truth %s: annotation %d (%s) outside page", g.DocID, i, a.Entity)
		}
	}
	return nil
}

// EncodeLabeled serialises a labelled document as indented JSON.
func EncodeLabeled(l *Labeled) ([]byte, error) {
	return json.MarshalIndent(l, "", "  ")
}

// DecodeLabeled parses and validates a labelled document.
func DecodeLabeled(data []byte) (*Labeled, error) {
	var l Labeled
	if err := json.Unmarshal(data, &l); err != nil {
		return nil, fmt.Errorf("decode labeled document: %w", err)
	}
	if l.Doc == nil {
		return nil, fmt.Errorf("decode labeled document: missing doc")
	}
	if err := l.Doc.Validate(); err != nil {
		return nil, err
	}
	if l.Truth != nil {
		if err := l.Truth.Validate(l.Doc); err != nil {
			return nil, err
		}
	}
	return &l, nil
}
