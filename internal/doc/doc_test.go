package doc

import (
	"errors"
	"math"
	"strings"
	"testing"

	"vs2/internal/colorlab"
	"vs2/internal/geom"
)

// testDoc builds a two-line document:
//
//	Hello World      (line 0, y=10)
//	Goodbye          (line 1, y=40)
//	[image]          (y=80)
func testDoc() *Document {
	return &Document{
		ID:     "t1",
		Width:  200,
		Height: 120,
		Elements: []Element{
			{ID: 0, Kind: TextElement, Text: "Hello", Box: geom.Rect{X: 10, Y: 10, W: 40, H: 12}, Line: 0},
			{ID: 1, Kind: TextElement, Text: "World", Box: geom.Rect{X: 60, Y: 10, W: 40, H: 12}, Line: 0},
			{ID: 2, Kind: TextElement, Text: "Goodbye", Box: geom.Rect{X: 10, Y: 40, W: 60, H: 12}, Line: 1},
			{ID: 3, Kind: ImageElement, ImageData: "logo", Box: geom.Rect{X: 10, Y: 80, W: 30, H: 30}, Line: -1},
		},
		Background: colorlab.White,
	}
}

func TestTextAndImageElements(t *testing.T) {
	d := testDoc()
	if got := d.TextElements(); len(got) != 3 {
		t.Errorf("TextElements = %v", got)
	}
	if got := d.ImageElements(); len(got) != 1 || got[0] != 3 {
		t.Errorf("ImageElements = %v", got)
	}
}

func TestReadingOrder(t *testing.T) {
	d := testDoc()
	// Scramble the order deliberately.
	got := d.ReadingOrder([]int{2, 1, 0})
	want := []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ReadingOrder = %v, want %v", got, want)
		}
	}
}

func TestTranscript(t *testing.T) {
	d := testDoc()
	got := d.Transcript(nil)
	want := "Hello World\nGoodbye"
	if got != want {
		t.Errorf("Transcript = %q, want %q", got, want)
	}
	// Subset transcription.
	if got := d.Transcript([]int{2}); got != "Goodbye" {
		t.Errorf("subset Transcript = %q", got)
	}
}

func TestElementsIn(t *testing.T) {
	d := testDoc()
	top := geom.Rect{X: 0, Y: 0, W: 200, H: 30}
	got := d.ElementsIn(top)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("ElementsIn(top) = %v", got)
	}
	if got := d.ElementsIn(geom.Rect{X: 150, Y: 0, W: 10, H: 10}); len(got) != 0 {
		t.Errorf("ElementsIn(empty corner) = %v", got)
	}
}

func TestBoundingBoxOf(t *testing.T) {
	d := testDoc()
	bb := d.BoundingBoxOf([]int{0, 2})
	if bb.X != 10 || bb.Y != 10 || bb.MaxX() != 70 || bb.MaxY() != 52 {
		t.Errorf("BoundingBoxOf = %v", bb)
	}
}

func TestValidate(t *testing.T) {
	d := testDoc()
	if err := d.Validate(); err != nil {
		t.Fatalf("valid doc rejected: %v", err)
	}
	bad := testDoc()
	bad.Elements[1].ID = 0
	if err := bad.Validate(); err == nil {
		t.Error("duplicate IDs not caught")
	}
	bad = testDoc()
	bad.Elements[0].Text = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty text element not caught")
	}
	bad = testDoc()
	bad.Width = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero width not caught")
	}
}

func TestValidateGuards(t *testing.T) {
	check := func(name string, mutate func(*Document), want error) {
		t.Helper()
		d := testDoc()
		mutate(d)
		err := d.Validate()
		if err == nil {
			t.Errorf("%s not caught", name)
			return
		}
		if want != nil && !errors.Is(err, want) {
			t.Errorf("%s: err = %v, want sentinel %v", name, err, want)
		}
	}
	check("NaN width", func(d *Document) { d.Width = math.NaN() }, ErrNonFinite)
	check("Inf height", func(d *Document) { d.Height = math.Inf(1) }, ErrNonFinite)
	check("oversized page", func(d *Document) { d.Width = MaxPageDim * 2 }, ErrPageTooLarge)
	check("empty document", func(d *Document) { d.Elements = nil }, ErrEmptyDocument)
	check("NaN element box", func(d *Document) { d.Elements[1].Box.X = math.NaN() }, ErrNonFinite)
	check("Inf font size", func(d *Document) { d.Elements[2].FontSize = math.Inf(-1) }, ErrNonFinite)
	check("negative element size", func(d *Document) { d.Elements[0].Box.W = -5 }, nil)

	big := testDoc()
	big.Elements = make([]Element, MaxElements+1)
	for i := range big.Elements {
		big.Elements[i] = Element{ID: i, Kind: TextElement, Text: "w", Box: geom.Rect{X: 1, Y: 1, W: 2, H: 2}}
	}
	if err := big.Validate(); !errors.Is(err, ErrTooManyElements) {
		t.Errorf("element cap: err = %v, want ErrTooManyElements", err)
	}

	// Errors must name the offending element.
	d := testDoc()
	d.Elements[2].Box.Y = math.NaN()
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "index 2") {
		t.Errorf("error does not name the element index: %v", d.Validate())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	d := testDoc()
	d.DOM = &DOMNode{Tag: "body", Box: d.Bounds(), Children: []*DOMNode{
		{Tag: "div", Box: geom.Rect{X: 10, Y: 10, W: 90, H: 12}, Elements: []int{0, 1}},
	}}
	data, err := Encode(d)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != d.ID || len(back.Elements) != len(d.Elements) {
		t.Errorf("round trip mismatch: %+v", back)
	}
	if back.DOM == nil || back.DOM.Children[0].Tag != "div" {
		t.Errorf("DOM lost in round trip")
	}
	if _, err := Decode([]byte("{not json")); err == nil {
		t.Error("invalid JSON accepted")
	}
}

func TestClone(t *testing.T) {
	d := testDoc()
	d.DOM = &DOMNode{Tag: "body"}
	c := d.Clone()
	c.Elements[0].Text = "changed"
	c.DOM.Tag = "changed"
	if d.Elements[0].Text != "Hello" || d.DOM.Tag != "body" {
		t.Error("Clone is not deep")
	}
}

func TestTreeBasics(t *testing.T) {
	d := testDoc()
	root := NewTree(d)
	if !root.IsLeaf() || len(root.Elements) != 4 {
		t.Fatalf("fresh tree: %+v", root)
	}
	top := root.AddChild(geom.Rect{X: 0, Y: 0, W: 200, H: 30}, []int{0, 1})
	bot := root.AddChild(geom.Rect{X: 0, Y: 30, W: 200, H: 90}, []int{2, 3})
	if top.Depth != 1 || bot.Depth != 1 {
		t.Errorf("child depths: %d %d", top.Depth, bot.Depth)
	}
	if root.Height() != 1 || root.Size() != 3 {
		t.Errorf("Height=%d Size=%d", root.Height(), root.Size())
	}
	leaves := root.Leaves()
	if len(leaves) != 2 {
		t.Fatalf("Leaves = %d", len(leaves))
	}
	if err := root.Validate(); err != nil {
		t.Errorf("valid tree rejected: %v", err)
	}
	var visited int
	root.Walk(func(*Node) { visited++ })
	if visited != 3 {
		t.Errorf("Walk visited %d", visited)
	}
}

func TestTreeValidateCatchesOverlapAssignments(t *testing.T) {
	d := testDoc()
	root := NewTree(d)
	root.AddChild(geom.Rect{X: 0, Y: 0, W: 200, H: 30}, []int{0, 1})
	root.AddChild(geom.Rect{X: 0, Y: 30, W: 200, H: 90}, []int{1, 2}) // element 1 duplicated
	if err := root.Validate(); err == nil {
		t.Error("duplicate element assignment not caught")
	}
	root2 := NewTree(d)
	c := root2.AddChild(geom.Rect{X: 0, Y: 0, W: 200, H: 30}, []int{0})
	c.Depth = 5 // corrupt depth
	if err := root2.Validate(); err == nil {
		t.Error("bad depth not caught")
	}
}

func TestNodeTextAndDensity(t *testing.T) {
	d := testDoc()
	n := &Node{Box: geom.Rect{X: 0, Y: 0, W: 200, H: 30}, Elements: []int{0, 1, 3}}
	if got := n.Text(d); got != "Hello World" {
		t.Errorf("Node.Text = %q", got)
	}
	wd := n.WordDensity(d)
	if wd <= 0 {
		t.Errorf("WordDensity = %v", wd)
	}
	empty := &Node{}
	if empty.WordDensity(d) != 0 {
		t.Error("empty node density should be 0")
	}
}

func TestDump(t *testing.T) {
	d := testDoc()
	root := NewTree(d)
	root.AddChild(geom.Rect{X: 0, Y: 0, W: 200, H: 30}, []int{0, 1})
	s := root.Dump(d)
	if !strings.Contains(s, "block") || !strings.Contains(s, "Hello") {
		t.Errorf("Dump output unexpected:\n%s", s)
	}
}

func TestGroundTruth(t *testing.T) {
	d := testDoc()
	g := &GroundTruth{DocID: "t1", Annotations: []Annotation{
		{Entity: "Title", Box: geom.Rect{X: 10, Y: 10, W: 90, H: 12}, Text: "Hello World"},
		{Entity: "Body", Box: geom.Rect{X: 10, Y: 40, W: 60, H: 12}, Text: "Goodbye"},
		{Entity: "Title", Box: geom.Rect{X: 10, Y: 80, W: 30, H: 30}, Text: "dup"},
	}}
	if err := g.Validate(d); err != nil {
		t.Fatalf("valid truth rejected: %v", err)
	}
	if got := g.ForEntity("Title"); len(got) != 2 {
		t.Errorf("ForEntity = %v", got)
	}
	ents := g.Entities()
	if len(ents) != 2 || ents[0] != "Body" || ents[1] != "Title" {
		t.Errorf("Entities = %v", ents)
	}
	bad := &GroundTruth{DocID: "t1", Annotations: []Annotation{{Entity: "", Box: geom.Rect{W: 1, H: 1}}}}
	if err := bad.Validate(d); err == nil {
		t.Error("empty entity not caught")
	}
	far := &GroundTruth{DocID: "t1", Annotations: []Annotation{{Entity: "X", Box: geom.Rect{X: 999, Y: 999, W: 1, H: 1}}}}
	if err := far.Validate(d); err == nil {
		t.Error("off-page annotation not caught")
	}
}

func TestLabeledRoundTrip(t *testing.T) {
	d := testDoc()
	l := &Labeled{Doc: d, Truth: &GroundTruth{DocID: d.ID, Annotations: []Annotation{
		{Entity: "Title", Box: geom.Rect{X: 10, Y: 10, W: 90, H: 12}, Text: "Hello World"},
	}}}
	data, err := EncodeLabeled(l)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeLabeled(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Truth.Annotations[0].Entity != "Title" {
		t.Errorf("round trip truth mismatch: %+v", back.Truth)
	}
	if _, err := DecodeLabeled([]byte(`{"truth":{}}`)); err == nil {
		t.Error("missing doc accepted")
	}
}

func TestCaptureAndKindStrings(t *testing.T) {
	if TextElement.String() != "text" || ImageElement.String() != "image" {
		t.Error("ElementKind strings wrong")
	}
	if CaptureDigital.String() != "digital" || CaptureMobile.String() != "mobile" || CaptureScan.String() != "scan" {
		t.Error("Capture strings wrong")
	}
	if !strings.Contains(ElementKind(9).String(), "9") {
		t.Error("unknown kind string")
	}
}
