package doc

import (
	"fmt"
	"strings"

	"vs2/internal/geom"
)

// Node is a node of the hierarchical layout tree T_D = (V, E) of
// Section 4.2. Each node is the nested tuple (B, x, y, width, height): the
// smallest bounding box enclosing a visual area, plus the atomic elements
// appearing within it. An edge from a parent to a child means the child's
// visual area is enclosed by the parent's. Leaf nodes represent the logical
// blocks of the document after segmentation converges.
type Node struct {
	Box      geom.Rect
	Elements []int // indices into Document.Elements appearing in this area
	Children []*Node
	// Depth is the node's distance from the root; the semantic-merging
	// threshold θ_h of Section 5.1.2 depends on it.
	Depth int
}

// NewTree returns a single-node layout tree covering the whole document with
// every atomic element attached — the starting state of VS2-Segment.
func NewTree(d *Document) *Node {
	all := make([]int, len(d.Elements))
	for i := range all {
		all[i] = i
	}
	return &Node{Box: d.Bounds(), Elements: all}
}

// IsLeaf reports whether n has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Leaves returns the leaf nodes of the subtree rooted at n, left to right.
// After convergence these are the logical blocks.
func (n *Node) Leaves() []*Node {
	if n == nil {
		return nil
	}
	if n.IsLeaf() {
		return []*Node{n}
	}
	var out []*Node
	for _, c := range n.Children {
		out = append(out, c.Leaves()...)
	}
	return out
}

// Walk visits every node of the subtree in pre-order.
func (n *Node) Walk(f func(*Node)) {
	if n == nil {
		return
	}
	f(n)
	for _, c := range n.Children {
		c.Walk(f)
	}
}

// Height returns the height of the subtree rooted at n (a single node has
// height 0).
func (n *Node) Height() int {
	h := 0
	for _, c := range n.Children {
		if ch := c.Height() + 1; ch > h {
			h = ch
		}
	}
	return h
}

// Size returns the number of nodes in the subtree.
func (n *Node) Size() int {
	if n == nil {
		return 0
	}
	s := 1
	for _, c := range n.Children {
		s += c.Size()
	}
	return s
}

// AddChild appends a child node, stamping its depth, and returns it.
func (n *Node) AddChild(box geom.Rect, elems []int) *Node {
	c := &Node{Box: box, Elements: elems, Depth: n.Depth + 1}
	n.Children = append(n.Children, c)
	return c
}

// Text transcribes the node's textual elements in reading order.
func (n *Node) Text(d *Document) string {
	var textual []int
	for _, id := range n.Elements {
		if d.Elements[id].Kind == TextElement {
			textual = append(textual, id)
		}
	}
	if len(textual) == 0 {
		return ""
	}
	return d.Transcript(textual)
}

// WordDensity returns the number of words per unit area of the node's box,
// scaled by 1e4 so typical magnitudes are near 1. Objective (3) of the
// interest-point selection (Section 5.3.1) minimises this.
func (n *Node) WordDensity(d *Document) float64 {
	area := n.Box.Area()
	if area == 0 {
		return 0
	}
	words := 0
	for _, id := range n.Elements {
		if d.Elements[id].Kind == TextElement {
			words++
		}
	}
	return float64(words) / area * 1e4
}

// Validate checks the layout-tree invariants: children boxes are contained
// in (or at least intersect) the parent box, child element sets partition a
// subset of the parent's, and depths increase by one.
func (n *Node) Validate() error {
	return n.validate(nil)
}

func (n *Node) validate(parent *Node) error {
	if parent != nil {
		if n.Depth != parent.Depth+1 {
			return fmt.Errorf("node depth %d under parent depth %d", n.Depth, parent.Depth)
		}
		if !n.Box.Empty() && !parent.Box.Intersects(n.Box) && !parent.Box.ContainsRect(n.Box) {
			return fmt.Errorf("child box %v escapes parent %v", n.Box, parent.Box)
		}
	}
	if len(n.Children) > 0 {
		seen := map[int]bool{}
		parentSet := map[int]bool{}
		for _, id := range n.Elements {
			parentSet[id] = true
		}
		for _, c := range n.Children {
			for _, id := range c.Elements {
				if seen[id] {
					return fmt.Errorf("element %d assigned to two sibling nodes", id)
				}
				seen[id] = true
				if len(parentSet) > 0 && !parentSet[id] {
					return fmt.Errorf("element %d in child but not in parent", id)
				}
			}
			if err := c.validate(n); err != nil {
				return err
			}
		}
	}
	return nil
}

// Dump renders the tree as an indented ASCII outline (the Fig. 4 analogue
// produced by cmd/vs2 -dump).
func (n *Node) Dump(d *Document) string {
	var sb strings.Builder
	n.dump(d, &sb, 0)
	return sb.String()
}

func (n *Node) dump(d *Document, sb *strings.Builder, indent int) {
	sb.WriteString(strings.Repeat("  ", indent))
	kind := "block"
	if !n.IsLeaf() {
		kind = "area"
	}
	fmt.Fprintf(sb, "%s %v (%d elems)", kind, n.Box, len(n.Elements))
	if n.IsLeaf() && d != nil {
		txt := n.Text(d)
		if len(txt) > 40 {
			txt = txt[:40] + "…"
		}
		fmt.Fprintf(sb, " %q", strings.ReplaceAll(txt, "\n", " / "))
	}
	sb.WriteByte('\n')
	for _, c := range n.Children {
		c.dump(d, sb, indent+1)
	}
}
