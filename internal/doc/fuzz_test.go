package doc

import "testing"

// FuzzDecode checks the document JSON decoder: arbitrary bytes must never
// panic, and accepted documents must pass validation and re-encode.
func FuzzDecode(f *testing.F) {
	good := testDoc()
	data, _ := Encode(good)
	f.Add(data)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"id":"x","width":10,"height":10}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"width":-1}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Decode(data)
		if err != nil {
			return
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("Decode accepted an invalid document: %v", err)
		}
		if _, err := Encode(d); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
	})
}
