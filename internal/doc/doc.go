// Package doc implements the document layout model of Section 4 of the VS2
// paper: a visually rich document D is a nested tuple (C, T) where C is the
// set of visual contents (atomic textual and image elements, Section 4.1)
// and T is the visual organisation of D — a tree whose leaves are the
// smallest visually isolated but semantically coherent areas (Section 4.2).
//
// Documents are self-describing and serialisable to JSON so that the CLI
// tools, the dataset generators and downstream users exchange one format.
// Born-digital documents (the PDF/HTML subsets of datasets D2 and D3) may
// additionally carry a DOM-like markup tree, which is what format-dependent
// baselines such as VIPS (Cai et al.) consume; VS2 itself never reads it.
package doc

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"vs2/internal/colorlab"
	"vs2/internal/geom"
)

// ElementKind distinguishes the two atomic element categories of
// Section 4.1.
type ElementKind int

const (
	// TextElement is the smallest unit with textual attributes; the paper
	// deems a "word" the textual element of a document.
	TextElement ElementKind = iota
	// ImageElement represents an image content (bitmap region).
	ImageElement
)

func (k ElementKind) String() string {
	switch k {
	case TextElement:
		return "text"
	case ImageElement:
		return "image"
	default:
		return fmt.Sprintf("ElementKind(%d)", int(k))
	}
}

// Element is an atomic element a = (text-data, color, width, height) or
// a_i = (image-data, width, height) per Section 4.1, positioned by the
// smallest bounding box that encloses it.
type Element struct {
	ID   int         `json:"id"`
	Kind ElementKind `json:"kind"`
	Text string      `json:"text,omitempty"`
	Box  geom.Rect   `json:"box"`
	// Color is the average colour distribution of the element's visual area.
	Color colorlab.RGB `json:"color"`
	// FontSize is the nominal glyph height in page units; for generated
	// documents it equals Box.H for single-line words.
	FontSize float64 `json:"fontSize,omitempty"`
	Bold     bool    `json:"bold,omitempty"`
	// Line groups words rendered on the same text line; -1 when unknown
	// (e.g. after OCR noise). Image elements use -1.
	Line int `json:"line"`
	// ImageData names the bitmap payload for image elements (the generators
	// store a content tag rather than pixels).
	ImageData string `json:"imageData,omitempty"`
}

// LAB returns the element colour in CIE-L*a*b* space (the encoding the
// clustering features of Table 1 operate in).
func (e *Element) LAB() colorlab.LAB { return colorlab.ToLAB(e.Color) }

// Capture describes how a document entered the pipeline; the paper's D2
// mixes mobile captures of printed flyers with born-digital PDFs, and D3 is
// HTML-native. Format-dependent baselines and the OCR noise channel branch
// on this.
type Capture int

const (
	CaptureDigital Capture = iota // born-digital (PDF/HTML): clean boxes, DOM available
	CaptureMobile                 // photographed print: jitter, rotation, transcription noise
	CaptureScan                   // flatbed scan (D1 NIST forms): mild noise, no DOM
)

func (c Capture) String() string {
	switch c {
	case CaptureDigital:
		return "digital"
	case CaptureMobile:
		return "mobile"
	case CaptureScan:
		return "scan"
	default:
		return fmt.Sprintf("Capture(%d)", int(c))
	}
}

// DOMNode is a minimal markup tree for born-digital documents. Only
// format-dependent baselines (VIPS, the ML-based comparator) read it.
type DOMNode struct {
	Tag      string     `json:"tag"`
	Box      geom.Rect  `json:"box"`
	Text     string     `json:"text,omitempty"`
	Elements []int      `json:"elements,omitempty"` // IDs of atomic elements under this node
	Children []*DOMNode `json:"children,omitempty"`
}

// Walk visits n and all descendants in depth-first order.
func (n *DOMNode) Walk(f func(*DOMNode)) {
	if n == nil {
		return
	}
	f(n)
	for _, c := range n.Children {
		c.Walk(f)
	}
}

// Document is a visually rich document: a page of atomic elements plus
// provenance metadata. Width and Height are in page units (points).
type Document struct {
	ID       string    `json:"id"`
	Dataset  string    `json:"dataset,omitempty"`
	Template string    `json:"template,omitempty"` // generator template/form-face identifier
	Width    float64   `json:"width"`
	Height   float64   `json:"height"`
	Capture  Capture   `json:"capture"`
	Elements []Element `json:"elements"`
	// Background is the dominant page colour.
	Background colorlab.RGB `json:"background"`
	// DOM is non-nil only for born-digital documents.
	DOM *DOMNode `json:"dom,omitempty"`
}

// Bounds returns the page rectangle.
func (d *Document) Bounds() geom.Rect {
	return geom.Rect{W: d.Width, H: d.Height}
}

// TextElements returns the indices of all textual atomic elements, in
// element order.
func (d *Document) TextElements() []int {
	var out []int
	for i := range d.Elements {
		if d.Elements[i].Kind == TextElement {
			out = append(out, i)
		}
	}
	return out
}

// ImageElements returns the indices of all image atomic elements.
func (d *Document) ImageElements() []int {
	var out []int
	for i := range d.Elements {
		if d.Elements[i].Kind == ImageElement {
			out = append(out, i)
		}
	}
	return out
}

// ReadingOrder returns element indices sorted into reading order: primary by
// line band (top to bottom), secondary left to right. Elements whose boxes
// overlap vertically by more than half of the smaller height share a band.
func (d *Document) ReadingOrder(ids []int) []int {
	out := append([]int(nil), ids...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := d.Elements[out[i]].Box, d.Elements[out[j]].Box
		if sameBand(a, b) {
			return a.X < b.X
		}
		return a.Y < b.Y
	})
	return out
}

func sameBand(a, b geom.Rect) bool {
	top := a.Y
	if b.Y > top {
		top = b.Y
	}
	bot := a.MaxY()
	if b.MaxY() < bot {
		bot = b.MaxY()
	}
	overlap := bot - top
	minH := a.H
	if b.H < minH {
		minH = b.H
	}
	return overlap > minH/2
}

// Transcript joins the text of the given elements in reading order with
// single spaces, inserting newlines between line bands. Passing nil
// transcribes every textual element. This is the text-only view a
// traditional IE pipeline sees (Fig. 3 of the paper).
func (d *Document) Transcript(ids []int) string {
	if ids == nil {
		ids = d.TextElements()
	}
	ordered := d.ReadingOrder(ids)
	var sb strings.Builder
	var prev geom.Rect
	for i, id := range ordered {
		e := &d.Elements[id]
		if e.Kind != TextElement || e.Text == "" {
			continue
		}
		if i > 0 {
			if sameBand(prev, e.Box) {
				sb.WriteByte(' ')
			} else {
				sb.WriteByte('\n')
			}
		}
		sb.WriteString(e.Text)
		prev = e.Box
	}
	return sb.String()
}

// ElementsIn returns indices of textual and image elements whose boxes are
// at least half contained in r. It is the "reverse lookup in the list of
// atomic elements" of Section 4.2.
func (d *Document) ElementsIn(r geom.Rect) []int {
	var out []int
	for i := range d.Elements {
		b := d.Elements[i].Box
		if b.Area() == 0 {
			if r.Contains(geom.Point{X: b.X, Y: b.Y}) {
				out = append(out, i)
			}
			continue
		}
		if r.Intersect(b).Area() >= b.Area()/2 {
			out = append(out, i)
		}
	}
	return out
}

// BoundingBoxOf returns the union of the boxes of the identified elements.
func (d *Document) BoundingBoxOf(ids []int) geom.Rect {
	var out geom.Rect
	for _, id := range ids {
		out = out.Union(d.Elements[id].Box)
	}
	return out
}

// Input guards: hard limits a document must respect before the pipeline
// will touch it. They bound the work an adversarial or corrupt input can
// demand (the rasteriser allocates O(W·H) cells, the extractor O(n²)
// pairs) without constraining any realistic page.
const (
	// MaxElements caps the atomic element count of a document.
	MaxElements = 200_000
	// MaxPageDim caps each page dimension, in page units (points).
	MaxPageDim = 1e6
)

// Sentinel causes reported by Validate, for errors.Is dispatch.
var (
	// ErrEmptyDocument marks documents with no atomic elements.
	ErrEmptyDocument = errors.New("document has no elements")
	// ErrNonFinite marks NaN or infinite geometry.
	ErrNonFinite = errors.New("non-finite geometry")
	// ErrTooManyElements marks documents above MaxElements.
	ErrTooManyElements = errors.New("element count exceeds cap")
	// ErrPageTooLarge marks page extents above MaxPageDim.
	ErrPageTooLarge = errors.New("page size exceeds cap")
)

func finite(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Validate reports structural problems: non-finite or non-positive page
// extents, oversized pages, empty documents, adversarial element counts,
// elements outside the page, NaN/Inf or negative element geometry,
// duplicate IDs. Errors carry the offending element's ID and index and wrap
// the sentinel causes above. Generators and decoders call it defensively;
// Pipeline.ExtractContext refuses documents that fail it.
func (d *Document) Validate() error {
	if !finite(d.Width, d.Height) {
		return fmt.Errorf("doc %s: page size %gx%g: %w", d.ID, d.Width, d.Height, ErrNonFinite)
	}
	if d.Width <= 0 || d.Height <= 0 {
		return fmt.Errorf("doc %s: non-positive page size %gx%g", d.ID, d.Width, d.Height)
	}
	if d.Width > MaxPageDim || d.Height > MaxPageDim {
		return fmt.Errorf("doc %s: page size %gx%g: %w (max %g)", d.ID, d.Width, d.Height, ErrPageTooLarge, float64(MaxPageDim))
	}
	if len(d.Elements) == 0 {
		return fmt.Errorf("doc %s: %w", d.ID, ErrEmptyDocument)
	}
	if len(d.Elements) > MaxElements {
		return fmt.Errorf("doc %s: %d elements: %w (max %d)", d.ID, len(d.Elements), ErrTooManyElements, MaxElements)
	}
	seen := make(map[int]bool, len(d.Elements))
	page := d.Bounds().Inset(-d.Width) // allow rotated/jittered boxes to spill one page width
	for i := range d.Elements {
		e := &d.Elements[i]
		if !finite(e.Box.X, e.Box.Y, e.Box.W, e.Box.H, e.FontSize) {
			return fmt.Errorf("doc %s: element %d (index %d) box %v: %w", d.ID, e.ID, i, e.Box, ErrNonFinite)
		}
		if e.Box.W < 0 || e.Box.H < 0 {
			return fmt.Errorf("doc %s: element %d (index %d) has negative size %v", d.ID, e.ID, i, e.Box)
		}
		if !page.ContainsRect(e.Box) {
			return fmt.Errorf("doc %s: element %d (index %d) far outside page: %v", d.ID, e.ID, i, e.Box)
		}
		if seen[e.ID] {
			return fmt.Errorf("doc %s: duplicate element id %d (index %d)", d.ID, e.ID, i)
		}
		seen[e.ID] = true
		if e.Kind == TextElement && e.Text == "" {
			return fmt.Errorf("doc %s: empty text element %d (index %d)", d.ID, e.ID, i)
		}
	}
	return nil
}

// Clone returns a deep copy of the document (DOM included).
func (d *Document) Clone() *Document {
	out := *d
	out.Elements = append([]Element(nil), d.Elements...)
	out.DOM = cloneDOM(d.DOM)
	return &out
}

func cloneDOM(n *DOMNode) *DOMNode {
	if n == nil {
		return nil
	}
	out := *n
	out.Elements = append([]int(nil), n.Elements...)
	out.Children = make([]*DOMNode, len(n.Children))
	for i, c := range n.Children {
		out.Children[i] = cloneDOM(c)
	}
	return &out
}

// MarshalJSON / decoding helpers -------------------------------------------

// Encode serialises the document as indented JSON.
func Encode(d *Document) ([]byte, error) {
	return json.MarshalIndent(d, "", "  ")
}

// Decode parses a document from JSON and validates it.
func Decode(data []byte) (*Document, error) {
	var d Document
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("decode document: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}
