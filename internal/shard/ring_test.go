package shard

import (
	"fmt"
	"testing"
)

// TestRingOwnerDeterministic: two rings with the same parameters place
// every key identically — routing must be reproducible across the front
// end's own restarts.
func TestRingOwnerDeterministic(t *testing.T) {
	a := NewRing(5, 0)
	b := NewRing(5, 0)
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("doc-%d", i)
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %s: owner %d vs %d across identical rings", k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingSequentialKeysSpread pins the mix64 finalizer: sequential
// document IDs differ only in trailing digits, and raw FNV-1a clustered
// them all onto one shard. Every shard must own a meaningful slice.
func TestRingSequentialKeysSpread(t *testing.T) {
	const n = 1000
	for _, shards := range []int{2, 3, 4, 8} {
		r := NewRing(shards, 0)
		counts := make([]int, shards)
		for i := 0; i < n; i++ {
			counts[r.Owner(fmt.Sprintf("d2-%05d", i))]++
		}
		min := n / (shards * 4) // each shard gets at least a quarter of its fair share
		for s, c := range counts {
			if c < min {
				t.Errorf("shards=%d: shard %d owns %d of %d sequential keys (want >= %d); dist=%v",
					shards, s, c, n, min, counts)
			}
		}
	}
}

// TestRingSequenceIsPermutation: Sequence visits every shard exactly
// once, starting at the owner, identically across calls.
func TestRingSequenceIsPermutation(t *testing.T) {
	r := NewRing(6, 0)
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%d", i)
		seq := r.Sequence(k)
		if len(seq) != 6 {
			t.Fatalf("key %s: sequence length %d, want 6", k, len(seq))
		}
		if seq[0] != r.Owner(k) {
			t.Fatalf("key %s: sequence starts at %d, owner is %d", k, seq[0], r.Owner(k))
		}
		seen := make([]bool, 6)
		for _, s := range seq {
			if s < 0 || s >= 6 || seen[s] {
				t.Fatalf("key %s: sequence %v is not a permutation", k, seq)
			}
			seen[s] = true
		}
		again := r.Sequence(k)
		for j := range seq {
			if seq[j] != again[j] {
				t.Fatalf("key %s: sequence not deterministic: %v vs %v", k, seq, again)
			}
		}
	}
}

// TestRingSingleShard: a one-shard ring owns everything and its
// sequence is the trivial permutation.
func TestRingSingleShard(t *testing.T) {
	r := NewRing(1, 0)
	for _, k := range []string{"", "a", "d2-00000", "#17"} {
		if got := r.Owner(k); got != 0 {
			t.Fatalf("Owner(%q) = %d, want 0", k, got)
		}
		if seq := r.Sequence(k); len(seq) != 1 || seq[0] != 0 {
			t.Fatalf("Sequence(%q) = %v, want [0]", k, seq)
		}
	}
}

// TestRingResizeVersioning: NewRing is version 1 and every Resize (grow,
// shrink, or same-size) mints the next version without touching the
// receiver.
func TestRingResizeVersioning(t *testing.T) {
	a := NewRing(3, 0)
	if a.Version() != 1 {
		t.Fatalf("NewRing version = %d, want 1", a.Version())
	}
	b := a.Resize(5)
	c := b.Resize(2)
	if a.Version() != 1 || b.Version() != 2 || c.Version() != 3 {
		t.Fatalf("versions = %d,%d,%d, want 1,2,3", a.Version(), b.Version(), c.Version())
	}
	if a.Shards() != 3 || b.Shards() != 5 || c.Shards() != 2 {
		t.Fatalf("shards = %d,%d,%d, want 3,5,2", a.Shards(), b.Shards(), c.Shards())
	}
}

// TestRingResizeMinimalMovementGrow is the minimal-movement property
// test: resizing N→N+1 may move a key only TO the added shard (surviving
// shards' virtual points are untouched, so no key can change hands
// between them), and the moved fraction must stay near the ideal
// 1/(N+1) — an implementation that silently regressed to a full
// reshuffle would move ~N/(N+1) of the keyspace and relocate keys
// between surviving shards, failing both assertions.
func TestRingResizeMinimalMovementGrow(t *testing.T) {
	const keys = 20000
	for _, n := range []int{1, 2, 3, 5, 8} {
		a := NewRing(n, 0)
		b := a.Resize(n + 1)
		moved := 0
		for i := 0; i < keys; i++ {
			k := fmt.Sprintf("d2-%05d", i)
			if ao, bo := a.Owner(k), b.Owner(k); ao != bo {
				moved++
				if bo != n {
					t.Fatalf("n=%d: key %s moved %d→%d; growth may only move keys to the new shard %d",
						n, k, ao, bo, n)
				}
			}
		}
		ideal := keys / (n + 1)
		// Vnode placement is hash-driven, so the captured arc fluctuates
		// around ideal; 2x headroom holds comfortably at 64 vnodes while a
		// full reshuffle (≈ keys*n/(n+1)) overshoots it for every n >= 2.
		if hi := 2 * ideal; moved > hi {
			t.Errorf("n=%d: %d of %d keys moved growing to %d shards (ideal %d, limit %d)",
				n, moved, keys, n+1, ideal, hi)
		}
		if lo := ideal / 3; moved < lo {
			t.Errorf("n=%d: only %d keys moved growing to %d shards (ideal %d) — new shard is underweight",
				n, moved, n+1, ideal)
		}
	}
}

// TestRingResizeMinimalMovementShrink: the mirror property — shrinking
// N→N-1 moves exactly the keys the removed shard owned, and nothing
// between survivors.
func TestRingResizeMinimalMovementShrink(t *testing.T) {
	const keys = 20000
	for _, n := range []int{2, 3, 5, 8} {
		a := NewRing(n, 0)
		b := a.Resize(n - 1)
		for i := 0; i < keys; i++ {
			k := fmt.Sprintf("d2-%05d", i)
			ao, bo := a.Owner(k), b.Owner(k)
			if ao == n-1 {
				if bo == ao {
					t.Fatalf("n=%d: key %s still owned by removed shard %d", n, k, ao)
				}
				continue
			}
			if ao != bo {
				t.Fatalf("n=%d: key %s moved %d→%d; shrink may only move the removed shard's keys",
					n, k, ao, bo)
			}
		}
	}
}

// TestRingResizeUniformity: after growing, ownership remains balanced —
// redistribution cannot starve or overload any shard.
func TestRingResizeUniformity(t *testing.T) {
	const keys = 20000
	r := NewRing(3, 0).Resize(5)
	counts := make([]int, 5)
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("d2-%05d", i))]++
	}
	fair := keys / 5
	for s, c := range counts {
		if c < fair/3 || c > fair*3 {
			t.Errorf("post-resize shard %d owns %d of %d keys (fair %d); dist=%v", s, c, keys, fair, counts)
		}
	}
}

// TestRingDefaults: invalid construction parameters clamp rather than
// panic.
func TestRingDefaults(t *testing.T) {
	r := NewRing(0, -3)
	if r.Shards() != 1 {
		t.Fatalf("Shards() = %d, want 1 after clamping", r.Shards())
	}
	if len(r.points) != 64 {
		t.Fatalf("default replicas: %d points, want 64", len(r.points))
	}
}
