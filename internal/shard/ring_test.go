package shard

import (
	"fmt"
	"testing"
)

// TestRingOwnerDeterministic: two rings with the same parameters place
// every key identically — routing must be reproducible across the front
// end's own restarts.
func TestRingOwnerDeterministic(t *testing.T) {
	a := NewRing(5, 0)
	b := NewRing(5, 0)
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("doc-%d", i)
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %s: owner %d vs %d across identical rings", k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingSequentialKeysSpread pins the mix64 finalizer: sequential
// document IDs differ only in trailing digits, and raw FNV-1a clustered
// them all onto one shard. Every shard must own a meaningful slice.
func TestRingSequentialKeysSpread(t *testing.T) {
	const n = 1000
	for _, shards := range []int{2, 3, 4, 8} {
		r := NewRing(shards, 0)
		counts := make([]int, shards)
		for i := 0; i < n; i++ {
			counts[r.Owner(fmt.Sprintf("d2-%05d", i))]++
		}
		min := n / (shards * 4) // each shard gets at least a quarter of its fair share
		for s, c := range counts {
			if c < min {
				t.Errorf("shards=%d: shard %d owns %d of %d sequential keys (want >= %d); dist=%v",
					shards, s, c, n, min, counts)
			}
		}
	}
}

// TestRingSequenceIsPermutation: Sequence visits every shard exactly
// once, starting at the owner, identically across calls.
func TestRingSequenceIsPermutation(t *testing.T) {
	r := NewRing(6, 0)
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%d", i)
		seq := r.Sequence(k)
		if len(seq) != 6 {
			t.Fatalf("key %s: sequence length %d, want 6", k, len(seq))
		}
		if seq[0] != r.Owner(k) {
			t.Fatalf("key %s: sequence starts at %d, owner is %d", k, seq[0], r.Owner(k))
		}
		seen := make([]bool, 6)
		for _, s := range seq {
			if s < 0 || s >= 6 || seen[s] {
				t.Fatalf("key %s: sequence %v is not a permutation", k, seq)
			}
			seen[s] = true
		}
		again := r.Sequence(k)
		for j := range seq {
			if seq[j] != again[j] {
				t.Fatalf("key %s: sequence not deterministic: %v vs %v", k, seq, again)
			}
		}
	}
}

// TestRingSingleShard: a one-shard ring owns everything and its
// sequence is the trivial permutation.
func TestRingSingleShard(t *testing.T) {
	r := NewRing(1, 0)
	for _, k := range []string{"", "a", "d2-00000", "#17"} {
		if got := r.Owner(k); got != 0 {
			t.Fatalf("Owner(%q) = %d, want 0", k, got)
		}
		if seq := r.Sequence(k); len(seq) != 1 || seq[0] != 0 {
			t.Fatalf("Sequence(%q) = %v, want [0]", k, seq)
		}
	}
}

// TestRingDefaults: invalid construction parameters clamp rather than
// panic.
func TestRingDefaults(t *testing.T) {
	r := NewRing(0, -3)
	if r.Shards() != 1 {
		t.Fatalf("Shards() = %d, want 1 after clamping", r.Shards())
	}
	if len(r.points) != 64 {
		t.Fatalf("default replicas: %d points, want 64", len(r.points))
	}
}
