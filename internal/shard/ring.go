// Package shard is the multi-process serving substrate: a consistent-hash
// ring that routes documents by key across N worker shards, and a
// supervisor that keeps each shard's child process alive — liveness
// probes with a deadline, exponential-backoff restarts of crashed
// children, and breaker-gated failover that reroutes a crash-looping
// shard's traffic to its ring successors. Like internal/serve it is
// deliberately free of vs2 types: cmd/vs2d binds it to the extraction
// pipeline, and the tests drive it with a plain echo worker.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring over a fixed set of shards. Each shard
// owns Replicas virtual points; a key hashes to a point on the circle
// and belongs to the first virtual point clockwise from it. The ring is
// immutable after construction — membership changes are expressed either
// by the caller skipping dead shards along Sequence (a shard coming back
// keeps exactly the keyspace it had before it died), or by Resize, which
// returns a new ring at the next version. Virtual-point hashes depend
// only on (shard, vnode), so resizing N→M leaves every surviving shard's
// points exactly where they were: only keys on arcs captured by added
// points (or orphaned by removed ones) change owner — the
// minimal-movement property live resharding depends on.
type Ring struct {
	shards   int
	replicas int
	version  int64
	points   []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds a ring over shards shards with replicas virtual points
// each, at version 1. replicas < 1 selects 64, enough that the expected
// keyspace imbalance between shards stays under a few percent.
func NewRing(shards, replicas int) *Ring {
	if shards < 1 {
		shards = 1
	}
	if replicas < 1 {
		replicas = 64
	}
	r := &Ring{shards: shards, replicas: replicas, version: 1,
		points: make([]ringPoint, 0, shards*replicas)}
	for s := 0; s < shards; s++ {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hashKey(fmt.Sprintf("shard-%d/vnode-%d", s, v)),
				shard: s,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// Resize returns a new ring over n shards (same replica count) at
// version Version()+1; the receiver is untouched. Growing moves only the
// keys captured by the new shards' virtual points; shrinking moves only
// the keys the removed shards owned.
func (r *Ring) Resize(n int) *Ring {
	nr := NewRing(n, r.replicas)
	nr.version = r.version + 1
	return nr
}

// Shards returns the number of shards on the ring.
func (r *Ring) Shards() int { return r.shards }

// Version returns the ring's configuration version: 1 for a fresh ring,
// incremented by every Resize. Reconfiguration metrics and health
// reports stamp transitions with it.
func (r *Ring) Version() int64 { return r.version }

// Owner returns the shard that owns key: the shard of the first virtual
// point clockwise from the key's hash.
func (r *Ring) Owner(key string) int {
	return r.points[r.search(key)].shard
}

// Sequence returns every shard in the order a key's traffic fails over:
// the owner first, then each further shard in the order its first
// virtual point appears clockwise. The slice always has length Shards()
// and contains each shard exactly once, so walking it visits the whole
// fleet deterministically.
func (r *Ring) Sequence(key string) []int {
	seq := make([]int, 0, r.shards)
	seen := make([]bool, r.shards)
	start := r.search(key)
	for i := 0; len(seq) < r.shards; i++ {
		s := r.points[(start+i)%len(r.points)].shard
		if !seen[s] {
			seen[s] = true
			seq = append(seq, s)
		}
	}
	return seq
}

// search finds the index of the first virtual point clockwise from the
// key's hash (wrapping past the top of the circle).
func (r *Ring) search(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key)) //nolint:errcheck // fnv never errors
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer. Raw FNV-1a of near-identical keys
// (sequential document IDs differ only in trailing digits) clusters in
// a narrow arc of the circle, piling the whole corpus onto one shard;
// the finalizer avalanches every input bit across the word so the ring
// sees a uniform circle.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
