package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"vs2/internal/obs"
	"vs2/internal/serve"
)

// Supervisor errors.
var (
	// ErrClosed marks work submitted to a supervisor that is shutting
	// down.
	ErrClosed = errors.New("shard: supervisor closed")
	// ErrNoShards marks work that cannot be placed anywhere: every shard
	// has permanently failed.
	ErrNoShards = errors.New("shard: no live shards")
	// ErrPoisoned marks a document quarantined after crashing its worker
	// Config.PoisonAfter times: it fails permanently instead of riding
	// the restart loop forever and taking the shard down with it.
	ErrPoisoned = errors.New("shard: poison document quarantined")
)

// RerouteBuckets is the bucket layout of the shard.reroute.distance
// histogram: how many ring positions a rerouted key travelled past its
// owner before landing on a live shard.
var RerouteBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16}

// Config tunes a Supervisor. The zero value of every optional field
// selects the default noted on it.
type Config struct {
	// Shards is the number of worker shards; required, >= 1.
	Shards int
	// Replicas is the number of virtual ring points per shard; 0
	// selects 64.
	Replicas int
	// Start builds the command for one (re)incarnation of a shard's
	// child process; required. The supervisor wires stdin/stdout itself
	// and starts the command, so Start must leave both unset. A fresh
	// command is requested for every restart.
	Start func(shard int) (*exec.Cmd, error)
	// OnStart, when non-nil, observes every successful child start with
	// the shard index and the child's PID (e.g. to write pidfiles for
	// external tooling and chaos harnesses).
	OnStart func(shard, pid int)
	// OnProvision, when non-nil, runs before the first child of a shard
	// added by Scale starts — the front end's chance to clear stale
	// per-shard state (a journal left behind by a previous incarnation
	// of the same index, whose completions were already handed off).
	// It is not called for the initial fleet, so resume semantics of a
	// fresh supervisor are untouched.
	OnProvision func(shard int) error
	// OnHandoff, when non-nil, runs during scale-in after the retired
	// shard's child has fully exited and before routing work resumes:
	// the front end transfers the retired shard's durable state (journal
	// ownership) to the successor and returns the path the successor
	// should adopt — "" to skip adoption (no durable state). An error
	// aborts the Scale call; the fleet keeps serving at the new size,
	// but the retired journal stays unadopted for a retry.
	OnHandoff func(retired, successor int) (adoptPath string, err error)
	// ProbeInterval is the liveness-probe cadence; 0 selects 1s,
	// negative disables probing (process exit remains detected).
	ProbeInterval time.Duration
	// ProbeTimeout is how long a child may go without answering a probe
	// (or sending any response) before it is declared hung and killed;
	// 0 selects 5s.
	ProbeTimeout time.Duration
	// RestartBackoff and RestartBackoffMax bound the jittered
	// exponential backoff between a shard's crash and its restart; 0
	// selects 100ms and 5s.
	RestartBackoff    time.Duration
	RestartBackoffMax time.Duration
	// MaxRestarts is the number of consecutive unproven (re)starts —
	// children that died or failed to start without ever answering —
	// after which the shard is abandoned as permanently failed and its
	// keyspace fails over for good; 0 selects 8.
	MaxRestarts int
	// BreakerThreshold is the consecutive-crash count after which the
	// shard's breaker opens and new traffic reroutes to its ring
	// successors while restarts continue behind it; 0 selects 3,
	// negative disables rerouting (traffic always queues on the owner).
	BreakerThreshold int
	// BreakerCooldown is how long an open shard breaker waits before a
	// recovered child may win traffic back; 0 selects 2s.
	BreakerCooldown time.Duration
	// DrainGrace is how long a drain (Close, retirement, rolling
	// restart) waits for a child after its stdin closes before killing
	// it; 0 selects 10s.
	DrainGrace time.Duration
	// PoisonAfter is the number of worker crashes one in-flight document
	// may ride through before it is quarantined: its call fails with
	// ErrPoisoned instead of requeueing, so a single pathological input
	// cannot crash-loop a shard into abandonment. 0 (the default)
	// disables quarantine — a shard that crash-loops for reasons
	// unrelated to its input must not condemn the innocent documents
	// riding through the restarts, so the threshold is an explicit
	// deployment choice.
	PoisonAfter int
	// OnPoison, when non-nil, observes every quarantined document with
	// the shard it poisoned and its crash count (e.g. to journal the key
	// for offline triage). Called outside supervisor locks.
	OnPoison func(shard int, key string, crashes int)
	// Seed drives the restart-backoff jitter; shard i uses Seed+i so one
	// seed reproduces the whole fleet's schedule.
	Seed int64
	// Metrics, when non-nil, receives the shard.* telemetry: per-shard
	// up/down gauges, start/restart/crash/failover counters and the
	// reroute-distance histogram. Per-shard series carry the shard index
	// as a real label (obs.Name), so a Prometheus exposition shows
	// shard="3" rather than a key-suffix pseudo-name.
	Metrics *obs.Registry
	// OnTelemetry, when non-nil, observes every telemetry shipment a
	// worker sends up the response pipe, stamped with the authoritative
	// shard index and child epoch. Called from the shard's reader
	// goroutine — implementations must be quick and internally
	// synchronized.
	OnTelemetry func(t Telemetry)
	// Stderr receives the children's stderr; nil selects os.Stderr.
	Stderr io.Writer
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 64
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 5 * time.Second
	}
	if c.RestartBackoff <= 0 {
		c.RestartBackoff = 100 * time.Millisecond
	}
	if c.RestartBackoffMax <= 0 {
		c.RestartBackoffMax = 5 * time.Second
	}
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = 8
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 10 * time.Second
	}
	if c.Stderr == nil {
		c.Stderr = os.Stderr
	}
	// Supervisor log lines and every child's stderr funnel into this one
	// writer from independent goroutines; serialize the writes so a plain
	// bytes.Buffer (tests) or pipe is a legal sink.
	c.Stderr = SyncWriter(c.Stderr)
	return c
}

// SyncWriter wraps w so concurrent Write calls serialize, making any
// io.Writer safe as a sink shared across goroutines and child-process
// stderr copiers. Writers that are already SyncWriters pass through.
func SyncWriter(w io.Writer) io.Writer {
	if _, ok := w.(*lockedWriter); ok {
		return w
	}
	return &lockedWriter{w: w}
}

type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// fleet is one immutable routing view: the ring and exactly the shard
// states it routes over (len(shards) == ring.Shards()). Readers load the
// pointer once and see a consistent pair; Scale swaps the whole view
// atomically, which is what lets routing flip only after a successor has
// proven liveness.
type fleet struct {
	ring   *Ring
	shards []*shardState
}

// Supervisor owns a fleet of shard child processes and routes keyed work
// across them: consistent-hash placement, liveness supervision with
// probes and exponential-backoff restarts, breaker-gated failover for
// shards that crash-loop, and live reconfiguration — Scale resizes the
// fleet with zero-loss handoff, Roll restarts children one at a time.
// Create one with New, submit work with Do from any number of
// goroutines, and Close to drain. All methods are safe for concurrent
// use.
type Supervisor struct {
	cfg  Config
	view atomic.Pointer[fleet]
	m    *obs.Registry

	// mu guards all (every shard state ever created, including retired
	// generations — Close reaps them all) and the closed transition that
	// fences new states.
	mu  sync.Mutex
	all []*shardState

	// reconfigMu serializes Scale and Roll: one transition at a time.
	reconfigMu    sync.Mutex
	reconfigEpoch atomic.Int64
	transition    atomic.Pointer[Reconfig]

	closed    atomic.Bool
	done      chan struct{}
	closeOnce sync.Once
}

// New builds a supervisor and starts one runner per shard; children
// spawn immediately.
func New(cfg Config) (*Supervisor, error) {
	if cfg.Shards < 1 {
		return nil, errors.New("shard: Config.Shards must be >= 1")
	}
	if cfg.Start == nil {
		return nil, errors.New("shard: Config.Start is required")
	}
	cfg = cfg.withDefaults()
	s := &Supervisor{
		cfg:  cfg,
		m:    cfg.Metrics,
		done: make(chan struct{}),
	}
	f := &fleet{ring: NewRing(cfg.Shards, cfg.Replicas)}
	for i := 0; i < cfg.Shards; i++ {
		f.shards = append(f.shards, s.newShardState(i))
	}
	s.view.Store(f)
	s.all = append(s.all, f.shards...)
	s.m.Gauge("shard.ring.version").Set(float64(f.ring.Version()))
	for _, st := range f.shards {
		go st.run()
	}
	return s, nil
}

// newShardState builds the supervision state for one shard index. Scale
// reuses it for added shards — including a re-added index whose previous
// generation was retired; the old state stays in s.all (terminal) and
// the new one takes over the index.
func (s *Supervisor) newShardState(i int) *shardState {
	lifeCtx, lifeStop := context.WithCancel(context.Background())
	st := &shardState{
		sup:      s,
		id:       i,
		sent:     map[string][]*call{},
		kick:     make(chan struct{}, 1),
		retireCh: make(chan struct{}),
		rollCh:   make(chan struct{}, 1),
		gone:     make(chan struct{}),
		lifeCtx:  lifeCtx,
		lifeStop: lifeStop,
		backoff:  serve.NewBackoff(s.cfg.RestartBackoff, s.cfg.RestartBackoffMax, s.cfg.Seed+int64(i)),
	}
	st.breaker = serve.NewBreaker(serve.BreakerConfig{
		Threshold: breakerThreshold(s.cfg.BreakerThreshold),
		Cooldown:  s.cfg.BreakerCooldown,
		OnTransition: func(_, to serve.State) {
			s.m.Counter(obs.Name("shard.breaker.transitions",
				obs.L("shard", strconv.Itoa(i)), obs.L("to", to.String()))).Inc()
		},
	})
	return st
}

// breakerThreshold maps the config convention (negative disables) onto a
// threshold the breaker can never reach.
func breakerThreshold(t int) int {
	if t < 0 {
		return 1 << 30
	}
	return t
}

// Result of one call, delivered exactly once.
type callResult struct {
	line []byte
	err  error
}

type call struct {
	key     string
	doc     json.RawMessage
	span    string // front-end parent span ID, "" when untraced
	level   int    // front-end fidelity level, 0 = full
	adopt   string // adoption request: path of a retired journal
	pinned  bool   // never reroute: the request only makes sense on its shard
	crashes int    // worker crashes ridden through while in flight
	done    chan callResult // buffered(1)
}

// Do routes one document to its shard and blocks for the result line.
// A crashed shard's outstanding work is re-sent to its restarted child
// (which replays its journal rather than re-extracting completed
// documents); a crash-looping shard's traffic fails over to the next
// live shard on the ring. Do returns the worker's result line, or an
// error when the caller's context expires, the supervisor closes, or
// the whole fleet is permanently failed.
func (s *Supervisor) Do(ctx context.Context, key string, doc json.RawMessage) ([]byte, error) {
	return s.DoSpan(ctx, key, doc, "")
}

// DoSpan is Do with a front-end span ID: the worker stamps its own
// extraction span tree with span as its parent, so the front end can
// stitch a cross-process trace for this document. An empty span
// disables worker tracing for the call.
func (s *Supervisor) DoSpan(ctx context.Context, key string, doc json.RawMessage, span string) ([]byte, error) {
	return s.DoLevel(ctx, key, doc, span, 0)
}

// DoLevel is DoSpan with a fidelity level: the worker extracts the
// document at the front end's level (vs2.WithFidelity on the worker
// side), so one front-end controller degrades the whole fleet
// coherently. Level 0 is full fidelity.
func (s *Supervisor) DoLevel(ctx context.Context, key string, doc json.RawMessage, span string, level int) ([]byte, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	target, ok := s.route(key)
	if !ok {
		return nil, ErrNoShards
	}
	c := &call{key: key, doc: doc, span: span, level: level, done: make(chan callResult, 1)}
	target.enqueue(c)
	select {
	case r := <-c.done:
		return r.line, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-s.done:
		return nil, ErrClosed
	}
}

// Shards returns the current fleet size (the routing view's shard
// count); it changes only through Scale.
func (s *Supervisor) Shards() int { return len(s.view.Load().shards) }

// RingVersion returns the current routing ring's version: 1 at boot,
// +1 per Scale.
func (s *Supervisor) RingVersion() int64 { return s.view.Load().ring.Version() }

// route picks the shard for a key: the ring owner when it is routeable,
// else the first routeable shard along the failover sequence (counted as
// a failover), else the owner anyway when the fleet is merely degraded
// (its queue drains on recovery). Only a fleet with every shard
// permanently failed returns !ok. The whole decision reads one routing
// view, so a concurrent Scale can never route into a half-flipped ring.
func (s *Supervisor) route(key string) (*shardState, bool) {
	f := s.view.Load()
	seq := f.ring.Sequence(key)
	for dist, id := range seq {
		if f.shards[id].routeable() {
			if dist > 0 {
				s.m.Counter("shard.failovers").Inc()
				s.m.Histogram("shard.reroute.distance", RerouteBuckets).Observe(float64(dist))
			}
			return f.shards[id], true
		}
	}
	for _, id := range seq {
		if !f.shards[id].permanentlyFailed() {
			s.m.Counter("shard.route.blind").Inc()
			return f.shards[id], true
		}
	}
	return nil, false
}

// Close stops the fleet: children's stdins close so they drain in-flight
// work and exit; stragglers are killed after DrainGrace. Close returns
// nil once every runner — including retired generations and any child
// that was mid-restart when Close fired — has finished, or ctx's error
// if that takes too long (runners keep winding down in the background).
// Pending Do calls fail with ErrClosed.
func (s *Supervisor) Close(ctx context.Context) error {
	s.closeOnce.Do(func() {
		s.closed.Store(true)
		close(s.done)
	})
	// Snapshot after the closed fence: a concurrent Scale either
	// registered its new shards before this lock (they are in the
	// snapshot) or observes closed and never starts them.
	s.mu.Lock()
	all := append([]*shardState(nil), s.all...)
	s.mu.Unlock()
	finished := make(chan struct{})
	go func() {
		for _, st := range all {
			<-st.gone
		}
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("shard: close: %w", ctx.Err())
	}
}

// Metrics returns the supervisor's registry (possibly nil).
func (s *Supervisor) Metrics() *obs.Registry { return s.m }

// ShardHealth is one shard's live supervision state, as reported by
// Health for the /healthz and /readyz endpoints.
type ShardHealth struct {
	// Shard is the shard index.
	Shard int `json:"shard"`
	// Up reports whether a child process is currently alive.
	Up bool `json:"up"`
	// PID is the live child's process ID; 0 when down.
	PID int `json:"pid,omitempty"`
	// Breaker is the shard's routing breaker state: closed shards take
	// new traffic, open ones fail over to their ring successors.
	Breaker string `json:"breaker"`
	// Backlog counts calls accepted but not yet answered: queued (not
	// written to a live child) plus in flight (awaiting a response).
	Backlog int `json:"backlog"`
	// InFlight counts calls written to the current child and awaiting
	// answers.
	InFlight int `json:"in_flight"`
	// Restarts is the shard's lifetime restart count.
	Restarts int64 `json:"restarts"`
	// Epoch is the current child incarnation (1 = first start).
	Epoch int64 `json:"epoch"`
	// Failed marks a shard abandoned after MaxRestarts consecutive
	// unproven starts; its keyspace has failed over for good.
	Failed bool `json:"failed"`
}

// Reconfig describes an in-progress fleet transition, surfaced through
// Health and the /slo endpoint so operators can watch a handoff live.
type Reconfig struct {
	// Kind is "scale_out", "scale_in" or "roll".
	Kind string `json:"kind"`
	// From and To are the fleet sizes on either side of the transition
	// (equal for rolls).
	From int `json:"from"`
	To   int `json:"to"`
	// Epoch is the reconfiguration epoch: a counter incremented at the
	// start of every transition, stamped on the shard.reconfig.* metric
	// series the transition emits.
	Epoch int64 `json:"epoch"`
	// Phase is the transition's current step: starting | proving |
	// draining | handoff | adopting | rolling.
	Phase string `json:"phase"`
	// Shard is the shard currently in transition.
	Shard int `json:"shard"`
}

// FleetHealth is the whole fleet's health summary. Degraded means the
// fleet still serves but not at full strength (a shard down, breaker
// open, or permanently failed); Failed means no shard can take work at
// all.
type FleetHealth struct {
	Shards   []ShardHealth `json:"shards"`
	Live     int           `json:"live"`     // shards with a running child
	Routable int           `json:"routable"` // shards accepting new traffic
	Degraded bool          `json:"degraded"`
	Failed   bool          `json:"failed"`
	Closed   bool          `json:"closed"`
	// RingVersion is the routing ring's version (1 at boot, +1 per
	// Scale); Reconfig reports an in-progress transition, nil when the
	// topology is stable.
	RingVersion int64     `json:"ring_version"`
	Reconfig    *Reconfig `json:"reconfig,omitempty"`
}

// Health snapshots the fleet's supervision state — the current routing
// view only; retired shard generations drop out of the report the
// moment routing flips away from them. Safe for concurrent use; the
// snapshot is internally consistent per shard (each shard's fields are
// read under its own lock).
func (s *Supervisor) Health() FleetHealth {
	f := s.view.Load()
	fh := FleetHealth{Closed: s.closed.Load(), RingVersion: f.ring.Version()}
	if t := s.transition.Load(); t != nil {
		c := *t
		fh.Reconfig = &c
	}
	for _, st := range f.shards {
		st.mu.Lock()
		sh := ShardHealth{
			Shard:    st.id,
			Up:       st.up,
			PID:      st.pid,
			Backlog:  len(st.queue),
			Restarts: st.total,
			Epoch:    st.epoch,
			Failed:   st.failed,
		}
		for _, cs := range st.sent {
			sh.InFlight += len(cs)
		}
		sh.Backlog += sh.InFlight
		st.mu.Unlock()
		sh.Breaker = st.breaker.State().String()
		fh.Shards = append(fh.Shards, sh)
		if sh.Up {
			fh.Live++
		}
		if !sh.Failed && sh.Breaker == serve.Closed.String() {
			fh.Routable++
		}
		if !sh.Up || sh.Failed || sh.Breaker != serve.Closed.String() {
			fh.Degraded = true
		}
	}
	alive := 0
	for _, st := range f.shards {
		if !st.permanentlyFailed() {
			alive++
		}
	}
	fh.Failed = alive == 0
	return fh
}

// exitKind classifies why serveChild returned.
type exitKind int

const (
	exitCrashed  exitKind = iota // child died unplanned (or failed to drain)
	exitShutdown                 // supervisor Close
	exitRetired                  // planned retirement drain completed
	exitRolled                   // planned rolling-restart drain completed
)

// shardState is one shard's supervision state: its dispatch queue, the
// calls in flight on the current child, and the crash accounting that
// drives restarts and failover.
type shardState struct {
	sup     *Supervisor
	id      int
	breaker *serve.Breaker
	backoff *serve.Backoff

	// retireCh is closed (once) to request retirement; rollCh carries
	// planned-restart requests; gone closes when the runner exits for
	// good. lifeCtx cancels with retirement so a backoff sleep aborts
	// promptly.
	retireOnce sync.Once
	retireCh   chan struct{}
	rollCh     chan struct{}
	gone       chan struct{}
	lifeCtx    context.Context
	lifeStop   context.CancelFunc

	mu          sync.Mutex
	queue       []*call            // accepted, not yet written to a live child
	sent        map[string][]*call // written, awaiting responses (FIFO per key)
	failed      bool               // permanent: MaxRestarts consecutive unproven starts
	retired     bool               // terminal: planned retirement completed
	paused      bool               // flush suspended during a planned drain
	restarts    int                // consecutive unproven (re)starts
	total       int64              // restarts over the shard's lifetime (never resets)
	epoch       int64              // child incarnation: 1 on first start, +1 per restart
	provenEpoch int64              // latest epoch that answered (pong or response)
	up          bool               // a child is currently alive
	pid         int                // current child's PID; 0 when down
	kick        chan struct{}
}

// routeable reports whether new traffic should land on this shard: not
// terminal (permanently failed or retired) and not crash-looping
// (breaker closed).
func (st *shardState) routeable() bool {
	st.mu.Lock()
	terminal := st.failed || st.retired
	st.mu.Unlock()
	return !terminal && !st.retireRequested() && st.breaker.State() == serve.Closed
}

func (st *shardState) permanentlyFailed() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.failed
}

// requestRetire asks the runner to drain and exit for good; idempotent.
func (st *shardState) requestRetire() {
	st.retireOnce.Do(func() {
		close(st.retireCh)
		st.lifeStop()
	})
}

func (st *shardState) retireRequested() bool {
	select {
	case <-st.retireCh:
		return true
	default:
		return false
	}
}

// requestRoll asks the runner to drain the current child and start a
// fresh one without crash accounting; coalesces while one is pending.
func (st *shardState) requestRoll() {
	select {
	case st.rollCh <- struct{}{}:
	default:
	}
}

func (st *shardState) setPaused(v bool) {
	st.mu.Lock()
	st.paused = v
	st.mu.Unlock()
	if !v {
		st.wake()
	}
}

func (st *shardState) sentLen() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, cs := range st.sent {
		n += len(cs)
	}
	return n
}

func (st *shardState) enqueue(c *call) {
	st.mu.Lock()
	if st.failed || st.retired {
		// The shard became terminal between routing and enqueue; bounce
		// the call along its failover sequence rather than stranding it
		// on a runner that has already exited. Recursion terminates:
		// terminal shards are never returned as targets.
		st.mu.Unlock()
		switch {
		case c.pinned:
			c.done <- callResult{err: fmt.Errorf("shard %d: pinned call %q: %w", st.id, c.key, ErrNoShards)}
		case st.failoverEnqueue(c):
		default:
			c.done <- callResult{err: ErrNoShards}
		}
		return
	}
	st.queue = append(st.queue, c)
	st.mu.Unlock()
	st.wake()
}

// failoverEnqueue places the call on a live shard other than this one,
// preferring the key's ring sequence; reports false when the rest of the
// fleet is permanently failed too.
func (st *shardState) failoverEnqueue(c *call) bool {
	if to := st.failoverTarget(c.key); to != nil {
		st.sup.m.Counter("shard.rerouted").Inc()
		to.enqueue(c)
		return true
	}
	if to := st.anyOtherAlive(); to != nil {
		st.sup.m.Counter("shard.rerouted").Inc()
		to.enqueue(c)
		return true
	}
	return false
}

func (st *shardState) wake() {
	select {
	case st.kick <- struct{}{}:
	default:
	}
}

// run is the shard's supervision loop: start a child, serve it until it
// dies, account the crash, back off, repeat — until shutdown, planned
// retirement, or the shard is abandoned as permanently failed.
func (st *shardState) run() {
	defer close(st.gone)
	defer st.lifeStop()
	for {
		select {
		case <-st.sup.done:
			return
		default:
		}
		if st.retireRequested() {
			st.finishRetire()
			return
		}
		st.mu.Lock()
		attempt := st.restarts
		st.mu.Unlock()
		if attempt > 0 {
			st.sup.m.Counter("shard.restarts").Inc()
			st.sup.m.Counter(obs.Name("shard.restarts", st.label())).Inc()
			st.mu.Lock()
			st.total++
			st.mu.Unlock()
			if err := st.backoff.Sleep(st.lifeCtx, st.sup.done, attempt-1); err != nil {
				if st.retireRequested() {
					st.finishRetire()
				}
				return
			}
		}
		if st.sup.closed.Load() {
			// Close fired while we were between children (e.g. during the
			// backoff sleep's final tick): starting a child now would
			// orphan it past Close's reaping snapshot.
			return
		}
		p, err := st.startChild()
		if err != nil {
			fmt.Fprintf(st.sup.cfg.Stderr, "vs2d: shard %d: start: %v\n", st.id, err)
			if st.crashed() {
				return
			}
			continue
		}
		switch st.serveChild(p) {
		case exitShutdown:
			return
		case exitRetired:
			st.finishRetire()
			return
		case exitRolled:
			st.setPaused(false)
			st.sup.m.Counter(obs.Name("shard.reconfig.rolled", st.label())).Inc()
			continue
		case exitCrashed:
			st.setPaused(false)
			fmt.Fprintf(st.sup.cfg.Stderr, "vs2d: shard %d: child exited unexpectedly; restarting\n", st.id)
			abandoned := st.crashed()
			if st.retireRequested() {
				st.finishRetire()
				return
			}
			if abandoned {
				return
			}
		}
	}
}

// finishRetire marks the shard terminally retired and pushes any
// straggling queued calls (enqueued in the race window while routing
// flipped) to the surviving fleet.
func (st *shardState) finishRetire() {
	st.mu.Lock()
	st.retired = true
	st.mu.Unlock()
	st.reroute()
	st.sup.m.Counter("shard.reconfig.retired").Inc()
	fmt.Fprintf(st.sup.cfg.Stderr, "vs2d: shard %d: retired\n", st.id)
}

// crashed accounts one unproven child (failed start, or an exit before
// shutdown): the crash trips toward the breaker and, at MaxRestarts
// consecutive, abandons the shard. Outstanding work is requeued —
// except documents that have now crashed PoisonAfter workers, which
// are quarantined with ErrPoisoned — and, when the shard is no longer
// routeable, rerouted to live shards. Reports whether the runner
// should stop (shard permanently failed).
func (st *shardState) crashed() bool {
	st.breaker.Failure()
	st.mu.Lock()
	st.restarts++
	poisoned := st.requeueSentLocked()
	abandoned := st.restarts > st.sup.cfg.MaxRestarts
	if abandoned {
		st.failed = true
	}
	st.mu.Unlock()
	for _, c := range poisoned {
		st.sup.m.Counter("shard.poisoned").Inc()
		st.sup.m.Counter(obs.Name("shard.poisoned", st.label())).Inc()
		fmt.Fprintf(st.sup.cfg.Stderr, "vs2d: shard %d: quarantined poison document %q after %d worker crashes\n",
			st.id, c.key, c.crashes)
		if cb := st.sup.cfg.OnPoison; cb != nil {
			cb(st.id, c.key, c.crashes)
		}
		c.done <- callResult{err: fmt.Errorf("%w: key %q crashed its worker %d times", ErrPoisoned, c.key, c.crashes)}
	}
	st.sup.m.Counter("shard.crashes").Inc()
	if abandoned {
		st.sup.m.Counter("shard.abandoned").Inc()
		fmt.Fprintf(st.sup.cfg.Stderr, "vs2d: shard %d: abandoned after %d consecutive failed starts; failing its keyspace over\n",
			st.id, st.sup.cfg.MaxRestarts)
	}
	if !st.routeable() {
		st.reroute()
	}
	return abandoned
}

// requeueSentLocked moves every unanswered in-flight call back to the
// front of the queue, preserving send order, so the next child (which
// resumes its journal) sees them again: completed-but-unacknowledged
// documents replay their cached lines, the rest re-extract. Each call
// accounts the crash it just rode through; calls at the PoisonAfter
// threshold are returned for quarantine instead of requeued — the
// caller delivers their failures outside the lock. Pinned calls
// (adoptions) are exempt from quarantine: they must ride every restart
// of their shard.
func (st *shardState) requeueSentLocked() (poisoned []*call) {
	if len(st.sent) == 0 {
		return nil
	}
	limit := st.sup.cfg.PoisonAfter
	requeued := make([]*call, 0, len(st.sent))
	for _, cs := range st.sent {
		for _, c := range cs {
			c.crashes++
			if limit > 0 && c.crashes >= limit && !c.pinned {
				poisoned = append(poisoned, c)
				continue
			}
			requeued = append(requeued, c)
		}
	}
	// Send order is not recoverable from the map, but order across keys
	// is immaterial: responses are keyed and the front end merges by
	// global input order.
	st.queue = append(requeued, st.queue...)
	st.sent = map[string][]*call{}
	return poisoned
}

// reroute drains this shard's queue onto live shards along each key's
// failover sequence. Calls with nowhere to go stay queued here (the
// fleet is merely degraded), unless this shard is terminal — permanently
// failed or retired — and no shard can ever take them — those fail with
// ErrNoShards. Pinned calls never reroute: they wait for this shard's
// restart, or fail when the shard is terminal.
func (st *shardState) reroute() {
	st.mu.Lock()
	work := st.queue
	st.queue = nil
	terminal := st.failed || st.retired
	st.mu.Unlock()
	var kept []*call
	for _, c := range work {
		switch {
		case c.pinned && !terminal:
			kept = append(kept, c)
		case c.pinned:
			c.done <- callResult{err: fmt.Errorf("shard %d: pinned call %q: %w", st.id, c.key, ErrNoShards)}
		case !terminal:
			if to := st.failoverTarget(c.key); to != nil {
				st.sup.m.Counter("shard.rerouted").Inc()
				to.enqueue(c)
			} else {
				kept = append(kept, c)
			}
		case st.failoverEnqueue(c):
		default:
			c.done <- callResult{err: ErrNoShards}
		}
	}
	if len(kept) > 0 {
		st.mu.Lock()
		st.queue = append(st.queue, kept...)
		st.mu.Unlock()
		st.wake()
	}
}

// failoverTarget finds the first routeable shard other than this one
// along the key's ring sequence in the current view; nil when none is
// routeable.
func (st *shardState) failoverTarget(key string) *shardState {
	f := st.sup.view.Load()
	for dist, id := range f.ring.Sequence(key) {
		other := f.shards[id]
		if other == st {
			continue
		}
		if other.routeable() {
			st.sup.m.Histogram("shard.reroute.distance", RerouteBuckets).Observe(float64(dist))
			return other
		}
	}
	return nil
}

// anyOtherAlive finds any non-terminal shard other than this one in the
// current view; nil when the rest of the fleet is gone too.
func (st *shardState) anyOtherAlive() *shardState {
	f := st.sup.view.Load()
	for _, other := range f.shards {
		if other == st {
			continue
		}
		other.mu.Lock()
		terminal := other.failed || other.retired
		other.mu.Unlock()
		if !terminal {
			return other
		}
	}
	return nil
}

// markLive records proof of life from the current child — a pong or a
// response — resetting the consecutive-restart streak, advancing the
// proven epoch (what Scale and Roll wait on before flipping routing or
// moving to the next shard), and walking the breaker back toward closed
// (half-open probe then success) once its cooldown has elapsed.
func (st *shardState) markLive(epoch int64) {
	st.mu.Lock()
	st.restarts = 0
	if epoch > st.provenEpoch {
		st.provenEpoch = epoch
	}
	st.mu.Unlock()
	if st.breaker.State() == serve.Closed {
		st.breaker.Success()
	} else if st.breaker.Allow() {
		st.breaker.Success()
	}
}

// waitProven blocks until a child with epoch > after proves liveness
// (pong or response) — the gate both Scale (routing flips only once the
// new shard answers) and Roll (next shard only once the restarted one
// answers) stand behind.
func (st *shardState) waitProven(ctx context.Context, after int64, done <-chan struct{}) error {
	t := time.NewTicker(2 * time.Millisecond)
	defer t.Stop()
	for {
		st.mu.Lock()
		proven := st.provenEpoch
		failed := st.failed
		st.mu.Unlock()
		if proven > after {
			return nil
		}
		if failed {
			return fmt.Errorf("shard %d permanently failed", st.id)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-done:
			return ErrClosed
		case <-t.C:
		}
	}
}

// proc is one live child process and its pipes. The supervisor wires
// plain os.Pipes rather than exec's managed StdinPipe/StdoutPipe so that
// cmd.Wait never races the reader goroutine for the pipe handles.
type proc struct {
	cmd    *exec.Cmd
	stdin  *os.File
	stdout *os.File

	wmu      sync.Mutex
	exited   chan struct{}
	waitErr  error
	killOnce sync.Once
	draining atomic.Bool  // planned drain in progress: the prober stands down
	lastSeen atomic.Int64 // unix nanos of the latest pong or response
}

func (p *proc) write(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	p.wmu.Lock()
	defer p.wmu.Unlock()
	_, err = p.stdin.Write(data)
	return err
}

func (p *proc) kill() {
	p.killOnce.Do(func() {
		if p.cmd.Process != nil {
			p.cmd.Process.Kill() //nolint:errcheck
		}
	})
}

// startChild spawns one incarnation of the shard's worker.
func (st *shardState) startChild() (*proc, error) {
	cmd, err := st.sup.cfg.Start(st.id)
	if err != nil {
		return nil, err
	}
	if cmd.Stdin != nil || cmd.Stdout != nil {
		return nil, errors.New("shard: Start must leave cmd.Stdin and cmd.Stdout unset")
	}
	inR, inW, err := os.Pipe()
	if err != nil {
		return nil, err
	}
	outR, outW, err := os.Pipe()
	if err != nil {
		inR.Close()
		inW.Close()
		return nil, err
	}
	cmd.Stdin = inR
	cmd.Stdout = outW
	if cmd.Stderr == nil {
		cmd.Stderr = st.sup.cfg.Stderr
	}
	if err := cmd.Start(); err != nil {
		inR.Close()
		inW.Close()
		outR.Close()
		outW.Close()
		return nil, err
	}
	// The child owns its ends now; the parent keeps the other two.
	inR.Close()
	outW.Close()
	p := &proc{cmd: cmd, stdin: inW, stdout: outR, exited: make(chan struct{})}
	p.lastSeen.Store(time.Now().UnixNano())
	go func() {
		p.waitErr = cmd.Wait()
		close(p.exited)
	}()
	st.mu.Lock()
	st.epoch++
	st.up = true
	st.pid = cmd.Process.Pid
	st.mu.Unlock()
	st.sup.m.Counter("shard.starts").Inc()
	st.sup.m.Gauge(obs.Name("shard.up", st.label())).Set(1)
	st.sup.m.Gauge("shard.up").Add(1)
	if st.sup.cfg.OnStart != nil {
		st.sup.cfg.OnStart(st.id, cmd.Process.Pid)
	}
	return p, nil
}

// label is the shard's metric label.
func (st *shardState) label() obs.Label {
	return obs.L("shard", strconv.Itoa(st.id))
}

// serveChild pumps one child for its whole life: a reader goroutine
// dispatches keyed responses, a prober enforces the liveness deadline,
// and the loop body writes queued requests. It returns once the child
// has exited and its output is fully drained, classified by why the
// child went down (crash, Close, retirement, roll).
func (st *shardState) serveChild(p *proc) exitKind {
	st.mu.Lock()
	epoch := st.epoch
	st.mu.Unlock()
	defer func() {
		st.mu.Lock()
		st.up = false
		st.pid = 0
		st.mu.Unlock()
		st.sup.m.Gauge(obs.Name("shard.up", st.label())).Set(0)
		st.sup.m.Gauge("shard.up").Add(-1)
	}()
	readerDone := make(chan struct{})
	go st.readResponses(p, epoch, readerDone)
	proberDone := make(chan struct{})
	go st.probe(p, proberDone)
	// A planned drain (roll) may have paused flushing on the previous
	// child; this incarnation starts fresh. Work requeued from the
	// previous incarnation (and anything enqueued while the shard was
	// down) must flush even if the kick was already consumed.
	st.setPaused(false)
	st.wake()
	// graceful closes stdin so the child finishes in-flight work,
	// journals it and exits; a straggler is killed after the grace
	// period. The prober stands down first — its pings would hit the
	// closed pipe and kill a child that is draining legitimately.
	graceful := func() {
		p.draining.Store(true)
		p.stdin.Close() //nolint:errcheck
		grace := time.NewTimer(st.sup.cfg.DrainGrace)
		defer grace.Stop()
		select {
		case <-p.exited:
		case <-grace.C:
			p.kill()
		}
	}
	// join waits out the child and both pumps; responses written before
	// the child exited are all delivered once join returns.
	join := func() {
		p.stdin.Close() //nolint:errcheck
		<-p.exited
		<-readerDone
		<-proberDone
	}
	for {
		select {
		case <-p.exited:
			join()
			return exitCrashed
		case <-st.sup.done:
			graceful()
			join()
			return exitShutdown
		case <-st.retireCh:
			// Retirement: routing has already flipped away from this
			// shard. Push queued-but-unsent work to the survivors, then
			// drain the in-flight tail through the exiting child.
			st.setPaused(true)
			st.reroute()
			before := st.sentLen()
			graceful()
			join()
			if drained := before - st.sentLen(); drained > 0 {
				st.sup.m.Counter("shard.reconfig.drained").Add(int64(drained))
			}
			if st.sentLen() > 0 {
				// The child died (or hung past grace) with answers owed:
				// fall back to the crash path so the survivors re-serve
				// the leftovers exactly once.
				return exitCrashed
			}
			return exitRetired
		case <-st.rollCh:
			st.setPaused(true)
			graceful()
			join()
			if st.sentLen() > 0 {
				return exitCrashed
			}
			return exitRolled
		case <-st.kick:
			if !st.flush(p) {
				// A write failed: the child is dying. Kill it and let the
				// exit path account the crash and requeue.
				p.kill()
			}
		}
	}
}

// flush writes every queued request to the child, moving each call to
// the sent map before its bytes hit the pipe so a response can never
// arrive for an untracked key. A paused shard (draining for a planned
// transition) holds its queue. Reports false on the first write error.
func (st *shardState) flush(p *proc) bool {
	for {
		st.mu.Lock()
		if st.paused || len(st.queue) == 0 {
			st.mu.Unlock()
			return true
		}
		c := st.queue[0]
		st.queue = st.queue[1:]
		st.sent[c.key] = append(st.sent[c.key], c)
		st.mu.Unlock()
		if err := p.write(Request{Key: c.key, Doc: c.doc, Span: c.span, Level: c.level, Adopt: c.adopt}); err != nil {
			return false
		}
	}
}

// readResponses drains the child's stdout until EOF, delivering each
// keyed line to the oldest waiting call for that key and forwarding
// telemetry shipments, stamped with the shard index and this child's
// epoch, to the telemetry observer.
func (st *shardState) readResponses(p *proc, epoch int64, done chan<- struct{}) {
	defer close(done)
	defer p.stdout.Close() //nolint:errcheck
	dec := json.NewDecoder(p.stdout)
	for {
		var r Response
		if err := dec.Decode(&r); err != nil {
			return // EOF or a torn line from a dying child
		}
		p.lastSeen.Store(time.Now().UnixNano())
		st.markLive(epoch)
		if r.Telemetry != nil {
			st.sup.m.Counter(obs.Name("shard.telemetry.shipments", st.label())).Inc()
			if cb := st.sup.cfg.OnTelemetry; cb != nil {
				t := *r.Telemetry
				t.Shard = st.id
				t.Epoch = epoch
				cb(t)
			}
			continue
		}
		if r.Pong {
			continue
		}
		st.deliver(r)
	}
}

// deliver completes the oldest call waiting on the response's key.
// Responses with no waiting call (a key answered twice, or a response
// drained from a child whose work was already requeued) are dropped and
// counted — the dedup half of exactly-once emission.
func (st *shardState) deliver(r Response) {
	st.mu.Lock()
	cs := st.sent[r.Key]
	var c *call
	if len(cs) > 0 {
		c = cs[0]
		if len(cs) == 1 {
			delete(st.sent, r.Key)
		} else {
			st.sent[r.Key] = cs[1:]
		}
	}
	st.mu.Unlock()
	if c == nil {
		st.sup.m.Counter("shard.response.orphans").Inc()
		return
	}
	if r.Err != "" {
		c.done <- callResult{err: fmt.Errorf("shard %d: %s", st.id, r.Err)}
		return
	}
	c.done <- callResult{line: append([]byte(nil), r.Line...)}
}

// probe enforces the liveness deadline: a ping every ProbeInterval, and
// a kill when the child has neither ponged nor responded within
// ProbeTimeout. A negative interval disables active probing; a planned
// drain stands the prober down (the drain grace period polices hangs).
func (st *shardState) probe(p *proc, done chan<- struct{}) {
	defer close(done)
	if st.sup.cfg.ProbeInterval < 0 {
		return
	}
	t := time.NewTicker(st.sup.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-p.exited:
			return
		case <-st.sup.done:
			return
		case <-t.C:
			if p.draining.Load() {
				return
			}
			if time.Since(time.Unix(0, p.lastSeen.Load())) > st.sup.cfg.ProbeTimeout {
				st.sup.m.Counter("shard.probe.timeouts").Inc()
				fmt.Fprintf(st.sup.cfg.Stderr, "vs2d: shard %d: liveness probe deadline exceeded; killing child\n", st.id)
				p.kill()
				return
			}
			if err := p.write(Request{Ping: true}); err != nil {
				p.kill()
				return
			}
		}
	}
}
