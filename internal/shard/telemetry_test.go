package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"vs2/internal/obs"
)

// TestSupervisorTelemetryStamped: worker telemetry shipments ride the
// response pipe and arrive at OnTelemetry stamped with the authoritative
// shard index and child epoch; their metric deltas fold into a fleet
// registry under a shard label, and their spans carry the request's span
// ID as parent_span for cross-process stitching.
func TestSupervisorTelemetryStamped(t *testing.T) {
	var mu sync.Mutex
	var shipments []Telemetry
	fleet := obs.NewRegistry()

	cfg := fastCfg(t, 1, func(int) []string {
		return []string{"SHARD_TELEMETRY=1"}
	})
	cfg.OnTelemetry = func(tl Telemetry) {
		mu.Lock()
		shipments = append(shipments, tl)
		mu.Unlock()
		if tl.Metrics != nil {
			fleet.Merge(*tl.Metrics, obs.L("shard", strconv.Itoa(tl.Shard)))
		}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer closeSup(t, s)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	const docs = 5
	for i := 0; i < docs; i++ {
		key := fmt.Sprintf("tele-%d", i)
		if _, err := s.DoSpan(ctx, key, json.RawMessage(`{}`), "span-"+key); err != nil {
			t.Fatalf("DoSpan(%s): %v", key, err)
		}
	}
	waitFor(t, 10*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(shipments) >= docs
	}, "telemetry shipments to arrive")

	mu.Lock()
	defer mu.Unlock()
	parents := map[string]bool{}
	for _, tl := range shipments {
		if tl.Shard != 0 {
			t.Errorf("shipment stamped shard %d, want 0", tl.Shard)
		}
		if tl.Epoch != 1 {
			t.Errorf("shipment stamped epoch %d, want 1 (no restarts)", tl.Epoch)
		}
		for _, sp := range tl.Spans {
			if p, ok := sp.Attrs["parent_span"].(string); ok {
				parents[p] = true
			}
		}
	}
	for i := 0; i < docs; i++ {
		want := fmt.Sprintf("span-tele-%d", i)
		if !parents[want] {
			t.Errorf("no worker span carried parent_span %q", want)
		}
	}
	if got := fleet.Counter(`worker.docs{shard="0"}`).Value(); got != docs {
		t.Errorf("fleet worker.docs{shard=0} = %d, want %d", got, docs)
	}
	if got := s.Metrics().Counter(obs.Name("shard.telemetry.shipments", obs.L("shard", "0"))).Value(); got < docs {
		t.Errorf("shard.telemetry.shipments = %d, want >= %d", got, docs)
	}
}

// TestSupervisorScrapeDuringKillRestart race-checks the observability
// read path against live supervision: one goroutine scrapes the fleet
// registry's Prometheus exposition and Health snapshot continuously
// while the test SIGKILLs shard children and waits for their restarts.
// At every settle point the labelled shard.up gauges and shard.restarts
// counters must agree with the Supervisor's own Health state.
func TestSupervisorScrapeDuringKillRestart(t *testing.T) {
	cfg := fastCfg(t, 2, nil)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer closeSup(t, s)
	m := s.Metrics()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	doOne := func(i int) {
		key := fmt.Sprintf("scrape-%d", i)
		if _, err := s.Do(ctx, key, json.RawMessage(`{}`)); err != nil {
			t.Fatalf("Do(%s): %v", key, err)
		}
	}
	waitUp := func(shard int, minEpoch int64) {
		waitFor(t, 15*time.Second, func() bool {
			for _, sh := range s.Health().Shards {
				if sh.Shard == shard {
					return sh.Up && sh.Epoch >= minEpoch
				}
			}
			return false
		}, fmt.Sprintf("shard %d up at epoch >= %d", shard, minEpoch))
	}
	waitUp(0, 1)
	waitUp(1, 1)
	doOne(0)

	// The concurrent scraper: exactly what the /metrics and /healthz
	// handlers do, hammered in a loop so the race detector sees every
	// overlap with the supervision loops. It starts after the first
	// child registrations so the shard_up family exists on every scrape.
	stop := make(chan struct{})
	var scraperWG sync.WaitGroup
	scraperWG.Add(1)
	go func() {
		defer scraperWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var b strings.Builder
			if err := m.Snapshot().WritePrometheus(&b); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
			if !strings.Contains(b.String(), "# TYPE shard_up gauge") {
				t.Error("scrape lost the shard_up family")
				return
			}
			s.Health()
		}
	}()
	defer func() {
		close(stop)
		scraperWG.Wait()
	}()

	// Three kill/restart cycles against shard 0.
	for cycle := 1; cycle <= 3; cycle++ {
		h := s.Health()
		pid := 0
		for _, sh := range h.Shards {
			if sh.Shard == 0 {
				pid = sh.PID
			}
		}
		if pid == 0 {
			t.Fatalf("cycle %d: shard 0 has no PID in %+v", cycle, h)
		}
		proc, err := os.FindProcess(pid)
		if err != nil {
			t.Fatal(err)
		}
		if err := proc.Kill(); err != nil {
			t.Fatalf("cycle %d: kill %d: %v", cycle, pid, err)
		}
		waitUp(0, int64(cycle)+1)
		doOne(cycle)
	}

	// Settle point: metrics and Health must tell the same story.
	h := s.Health()
	for _, sh := range h.Shards {
		label := obs.L("shard", strconv.Itoa(sh.Shard))
		up := m.Gauge(obs.Name("shard.up", label)).Value()
		wantUp := 0.0
		if sh.Up {
			wantUp = 1.0
		}
		if up != wantUp {
			t.Errorf("shard %d: shard.up gauge = %v, Health says up=%v", sh.Shard, up, sh.Up)
		}
		restarts := m.Counter(obs.Name("shard.restarts", label)).Value()
		if restarts != sh.Restarts {
			t.Errorf("shard %d: shard.restarts counter = %d, Health says %d", sh.Shard, restarts, sh.Restarts)
		}
	}
	var shard0 ShardHealth
	for _, sh := range h.Shards {
		if sh.Shard == 0 {
			shard0 = sh
		}
	}
	if shard0.Restarts < 3 {
		t.Errorf("shard 0 restarts = %d after 3 kill cycles, want >= 3", shard0.Restarts)
	}
	if shard0.Epoch < 4 {
		t.Errorf("shard 0 epoch = %d after 3 kill cycles, want >= 4", shard0.Epoch)
	}
	if h.Failed {
		t.Error("fleet reported Failed after recoverable kills")
	}

	// The exposition itself must carry the per-shard series.
	var b strings.Builder
	if err := m.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`shard_up{shard="0"} 1`,
		`shard_up{shard="1"} 1`,
		fmt.Sprintf(`shard_restarts{shard="0"} %d`, shard0.Restarts),
	} {
		if !strings.Contains(b.String(), want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, b.String())
		}
	}
}

// TestSupervisorHealthDegraded: a shard whose child can never start
// degrades the fleet (and eventually fails it over) without flipping
// the whole fleet to Failed while a live shard remains.
func TestSupervisorHealthDegraded(t *testing.T) {
	s, err := New(fastCfg(t, 2, func(i int) []string {
		if i == 1 {
			return []string{"SHARD_FAIL_START=1"}
		}
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer closeSup(t, s)

	waitFor(t, 15*time.Second, func() bool {
		h := s.Health()
		return h.Degraded && h.Live == 1
	}, "fleet to report degraded with one live shard")
	h := s.Health()
	if h.Failed {
		t.Error("fleet reported Failed with a live shard")
	}
	var doomed ShardHealth
	for _, sh := range h.Shards {
		if sh.Shard == 1 {
			doomed = sh
		}
	}
	if doomed.Up {
		t.Error("doomed shard reported up")
	}
}
