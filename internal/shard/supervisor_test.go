package shard

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"vs2/internal/obs"
)

// TestMain doubles as the shard worker for the supervision tests: when
// the test binary is re-executed with SHARD_TEST_WORKER set it becomes
// a scriptable echo worker instead of running the test suite — the
// standard helper-process pattern, giving the supervisor a real child
// process to probe, kill and restart.
func TestMain(m *testing.M) {
	if os.Getenv("SHARD_TEST_WORKER") != "" {
		os.Exit(echoWorker())
	}
	os.Exit(m.Run())
}

// echoWorker answers pings with pongs and documents with a
// deterministic echo line. Environment variables script its failure
// modes:
//
//	SHARD_CRASH_AFTER=n    exit(3) after answering n documents
//	SHARD_CRASH_ONCE=path  first incarnation (path absent) reads one
//	                       request and exits WITHOUT answering; later
//	                       incarnations behave normally
//	SHARD_HANG_ONCE=path   first incarnation answers nothing at all
//	                       (probe deadline must kill it)
//	SHARD_FAIL_START=1     exit(9) immediately, before reading stdin
//	SHARD_TELEMETRY=1      after each answered document, ship a telemetry
//	                       line: the worker registry's delta plus one span
//	                       stamped with the request's Span as parent_span
//	SHARD_POISON_KEY=k     exit(3) on receiving key k, every incarnation —
//	                       a deterministic poison document
//	SHARD_SLOW=ms          sleep that long before answering each document
//	                       (pings stay instant) — drain-window widener
//	SHARD_ADOPT_FAIL=1     answer Adopt requests with an error instead of
//	                       merging
//
// Adopt requests are simulated against the filesystem: the worker counts
// the lines of the file at the adopt path, removes it, and answers with
// that count — 0 when the file is already gone, mirroring the idempotent
// re-adoption of a real journal merge.
func echoWorker() int {
	if os.Getenv("SHARD_FAIL_START") != "" {
		return 9
	}
	if marker := os.Getenv("SHARD_HANG_ONCE"); marker != "" {
		if _, err := os.Stat(marker); os.IsNotExist(err) {
			os.WriteFile(marker, []byte("hung\n"), 0o644) //nolint:errcheck
			// Consume stdin without ever answering; the prober kills us.
			io.Copy(io.Discard, os.Stdin) //nolint:errcheck
			return 0
		}
	}
	crashOnce := os.Getenv("SHARD_CRASH_ONCE")
	crashAfter := -1
	if v := os.Getenv("SHARD_CRASH_AFTER"); v != "" {
		crashAfter, _ = strconv.Atoi(v)
	}
	telemetry := os.Getenv("SHARD_TELEMETRY") != ""
	wm := obs.NewRegistry()
	var prev obs.Snapshot
	answered := 0
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	out := bufio.NewWriter(os.Stdout)
	for sc.Scan() {
		var req Request
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			continue
		}
		if req.Ping {
			writeJSON(out, Response{Pong: true})
			continue
		}
		if req.Adopt != "" {
			if os.Getenv("SHARD_ADOPT_FAIL") != "" {
				writeJSON(out, Response{Key: req.Key, Err: "adopt refused by test worker"})
				continue
			}
			merged := 0
			if data, err := os.ReadFile(req.Adopt); err == nil {
				for _, b := range data {
					if b == '\n' {
						merged++
					}
				}
				os.Remove(req.Adopt) //nolint:errcheck
			}
			writeJSON(out, Response{Key: req.Key, Adopted: merged})
			continue
		}
		if ms, _ := strconv.Atoi(os.Getenv("SHARD_SLOW")); ms > 0 {
			time.Sleep(time.Duration(ms) * time.Millisecond)
		}
		if crashOnce != "" {
			if _, err := os.Stat(crashOnce); os.IsNotExist(err) {
				os.WriteFile(crashOnce, []byte("crashed\n"), 0o644) //nolint:errcheck
				return 3                                            // die holding the request: the supervisor must requeue it
			}
		}
		if pk := os.Getenv("SHARD_POISON_KEY"); pk != "" && req.Key == pk {
			return 3 // the document itself kills the worker, deterministically
		}
		line, _ := json.Marshal(map[string]any{"id": req.Key, "pid": os.Getpid(), "level": req.Level})
		writeJSON(out, Response{Key: req.Key, Line: line})
		answered++
		if telemetry {
			wm.Counter("worker.docs").Inc()
			cur := wm.Snapshot()
			delta := cur.DeltaSince(prev)
			prev = cur
			tr := obs.New("worker " + req.Key)
			tr.Root().SetAttr("key", req.Key)
			if req.Span != "" {
				tr.Root().SetAttr("parent_span", req.Span)
			}
			tr.Finish()
			span := tr.Snapshot()
			writeJSON(out, Response{Telemetry: &Telemetry{
				Metrics: &delta,
				Spans:   []obs.SpanSnapshot{span},
			}})
		}
		if crashAfter >= 0 && answered >= crashAfter {
			out.Flush() //nolint:errcheck
			return 3
		}
	}
	if telemetry {
		cur := wm.Snapshot()
		delta := cur.DeltaSince(prev)
		writeJSON(out, Response{Telemetry: &Telemetry{Metrics: &delta, Final: true}})
	}
	out.Flush() //nolint:errcheck
	return 0
}

func writeJSON(w *bufio.Writer, v any) {
	data, _ := json.Marshal(v)
	w.Write(data)     //nolint:errcheck
	w.WriteByte('\n') //nolint:errcheck
	w.Flush()         //nolint:errcheck
}

// startFunc builds a Config.Start that re-execs this test binary as an
// echo worker, with extra per-shard environment from env(shard).
func startFunc(t *testing.T, env func(shard int) []string) func(int) (*exec.Cmd, error) {
	t.Helper()
	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return func(i int) (*exec.Cmd, error) {
		cmd := exec.Command(self)
		cmd.Env = append(os.Environ(), "SHARD_TEST_WORKER=1")
		if env != nil {
			cmd.Env = append(cmd.Env, env(i)...)
		}
		return cmd, nil
	}
}

// fastCfg is a supervision config tuned for test latencies.
func fastCfg(t *testing.T, shards int, env func(int) []string) Config {
	t.Helper()
	return Config{
		Shards:            shards,
		Start:             startFunc(t, env),
		ProbeInterval:     50 * time.Millisecond,
		ProbeTimeout:      400 * time.Millisecond,
		RestartBackoff:    10 * time.Millisecond,
		RestartBackoffMax: 50 * time.Millisecond,
		MaxRestarts:       3,
		BreakerCooldown:   50 * time.Millisecond,
		DrainGrace:        2 * time.Second,
		Seed:              42,
		Metrics:           obs.NewRegistry(),
		Stderr:            io.Discard,
	}
}

func closeSup(t *testing.T, s *Supervisor) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Errorf("close: %v", err)
	}
}

func TestSupervisorConfigValidation(t *testing.T) {
	if _, err := New(Config{Shards: 0, Start: startFunc(t, nil)}); err == nil {
		t.Error("New with Shards=0 succeeded, want error")
	}
	if _, err := New(Config{Shards: 2}); err == nil {
		t.Error("New with nil Start succeeded, want error")
	}
}

// TestSupervisorEcho: keyed work fans out across a healthy fleet and
// every call gets its own answer back.
func TestSupervisorEcho(t *testing.T) {
	s, err := New(fastCfg(t, 2, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer closeSup(t, s)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, 40)
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("doc-%03d", i)
			line, err := s.Do(ctx, key, json.RawMessage(`{"n":`+strconv.Itoa(i)+`}`))
			if err != nil {
				errs <- fmt.Errorf("%s: %w", key, err)
				return
			}
			var got map[string]any
			if err := json.Unmarshal(line, &got); err != nil || got["id"] != key {
				errs <- fmt.Errorf("%s: bad echo line %q (%v)", key, line, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	m := s.Metrics()
	if got := m.Counter("shard.starts").Value(); got != 2 {
		t.Errorf("shard.starts = %d, want 2", got)
	}
	if got := m.Gauge("shard.up").Value(); got != 2 {
		t.Errorf("shard.up gauge = %v, want 2", got)
	}
}

// TestSupervisorCrashRequeueRestart: a child that dies holding an
// unanswered request is restarted and the request is re-sent — the
// caller just sees its answer, late.
func TestSupervisorCrashRequeueRestart(t *testing.T) {
	marker := filepath.Join(t.TempDir(), "crashed-once")
	s, err := New(fastCfg(t, 1, func(int) []string {
		return []string{"SHARD_CRASH_ONCE=" + marker}
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer closeSup(t, s)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	line, err := s.Do(ctx, "victim", json.RawMessage(`{}`))
	if err != nil {
		t.Fatalf("Do across crash: %v", err)
	}
	var got map[string]any
	if err := json.Unmarshal(line, &got); err != nil || got["id"] != "victim" {
		t.Fatalf("bad line after restart: %q", line)
	}
	m := s.Metrics()
	if got := m.Counter("shard.crashes").Value(); got < 1 {
		t.Errorf("shard.crashes = %d, want >= 1", got)
	}
	if got := m.Counter("shard.restarts").Value(); got < 1 {
		t.Errorf("shard.restarts = %d, want >= 1", got)
	}
	if got := m.Counter("shard.starts").Value(); got < 2 {
		t.Errorf("shard.starts = %d, want >= 2", got)
	}
}

// TestSupervisorPermanentFailureFailsOver: a shard whose child can
// never start is abandoned after MaxRestarts and its keyspace lands on
// the surviving shard — no call is lost.
func TestSupervisorPermanentFailureFailsOver(t *testing.T) {
	s, err := New(fastCfg(t, 2, func(i int) []string {
		if i == 1 {
			return []string{"SHARD_FAIL_START=1"}
		}
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer closeSup(t, s)

	// Find keys the ring places on the doomed shard 1.
	ring := NewRing(2, 0)
	var victims []string
	for i := 0; len(victims) < 10; i++ {
		k := fmt.Sprintf("doc-%04d", i)
		if ring.Owner(k) == 1 {
			victims = append(victims, k)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, k := range victims {
		line, err := s.Do(ctx, k, json.RawMessage(`{}`))
		if err != nil {
			t.Fatalf("Do(%s) owned by dead shard: %v", k, err)
		}
		var got map[string]any
		if err := json.Unmarshal(line, &got); err != nil || got["id"] != k {
			t.Fatalf("bad failover line for %s: %q", k, line)
		}
	}

	m := s.Metrics()
	waitFor(t, 10*time.Second, func() bool {
		return m.Counter("shard.abandoned").Value() == 1
	}, "shard.abandoned to reach 1")
	if fo := m.Counter("shard.failovers").Value() + m.Counter("shard.rerouted").Value() + m.Counter("shard.route.blind").Value(); fo < int64(len(victims)) {
		t.Errorf("failovers+rerouted+blind = %d, want >= %d", fo, len(victims))
	}
	if got := m.Histogram("shard.reroute.distance", RerouteBuckets).Count(); got < 1 {
		t.Errorf("shard.reroute.distance count = %d, want >= 1", got)
	}
}

// TestSupervisorFleetDead: with every shard permanently failed, Do
// reports ErrNoShards instead of hanging.
func TestSupervisorFleetDead(t *testing.T) {
	s, err := New(fastCfg(t, 2, func(int) []string {
		return []string{"SHARD_FAIL_START=1"}
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer closeSup(t, s)

	m := s.Metrics()
	waitFor(t, 15*time.Second, func() bool {
		return m.Counter("shard.abandoned").Value() == 2
	}, "both shards abandoned")

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := s.Do(ctx, "anything", json.RawMessage(`{}`)); err != ErrNoShards {
		t.Fatalf("Do on dead fleet: err = %v, want ErrNoShards", err)
	}
}

// TestSupervisorProbeTimeoutKillsHungChild: a child that stays alive
// but answers nothing is killed by the liveness deadline and its
// replacement serves the work.
func TestSupervisorProbeTimeoutKillsHungChild(t *testing.T) {
	marker := filepath.Join(t.TempDir(), "hung-once")
	s, err := New(fastCfg(t, 1, func(int) []string {
		return []string{"SHARD_HANG_ONCE=" + marker}
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer closeSup(t, s)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	line, err := s.Do(ctx, "stuck", json.RawMessage(`{}`))
	if err != nil {
		t.Fatalf("Do across hung child: %v", err)
	}
	var got map[string]any
	if err := json.Unmarshal(line, &got); err != nil || got["id"] != "stuck" {
		t.Fatalf("bad line after hang recovery: %q", line)
	}
	if got := s.Metrics().Counter("shard.probe.timeouts").Value(); got < 1 {
		t.Errorf("shard.probe.timeouts = %d, want >= 1", got)
	}
}

// TestSupervisorClosed: Do after Close fails fast with ErrClosed.
func TestSupervisorClosed(t *testing.T) {
	s, err := New(fastCfg(t, 1, nil))
	if err != nil {
		t.Fatal(err)
	}
	closeSup(t, s)
	if _, err := s.Do(context.Background(), "late", json.RawMessage(`{}`)); err != ErrClosed {
		t.Fatalf("Do after Close: err = %v, want ErrClosed", err)
	}
}

// TestSupervisorCrashLoopKeepsServing: a shard that crashes after every
// few answers still eventually serves its whole backlog — restarts and
// requeues compose.
func TestSupervisorCrashLoopKeepsServing(t *testing.T) {
	cfg := fastCfg(t, 1, func(int) []string {
		return []string{"SHARD_CRASH_AFTER=5"}
	})
	cfg.MaxRestarts = 100 // every incarnation answers, so the streak resets anyway
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer closeSup(t, s)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, 24)
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("loop-%02d", i)
			if _, err := s.Do(ctx, key, json.RawMessage(`{}`)); err != nil {
				errs <- fmt.Errorf("%s: %w", key, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := s.Metrics().Counter("shard.crashes").Value(); got < 2 {
		t.Errorf("shard.crashes = %d, want >= 2 for a crash-looping child", got)
	}
}

// TestSupervisorPoisonQuarantine: a document that deterministically
// kills its worker is quarantined after PoisonAfter crashes — the call
// fails with ErrPoisoned, the event is counted and observed, and the
// shard goes on serving everything else.
func TestSupervisorPoisonQuarantine(t *testing.T) {
	cfg := fastCfg(t, 1, func(int) []string {
		return []string{"SHARD_POISON_KEY=bad"}
	})
	cfg.PoisonAfter = 2
	cfg.MaxRestarts = 100
	type poisonEvent struct {
		shard, crashes int
		key            string
	}
	events := make(chan poisonEvent, 4)
	cfg.OnPoison = func(shard int, key string, crashes int) {
		events <- poisonEvent{shard: shard, crashes: crashes, key: key}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer closeSup(t, s)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, derr := s.Do(ctx, "bad", json.RawMessage(`{}`))
	if !errors.Is(derr, ErrPoisoned) {
		t.Fatalf("Do(bad) = %v, want ErrPoisoned", derr)
	}
	select {
	case ev := <-events:
		if ev.key != "bad" || ev.shard != 0 || ev.crashes != 2 {
			t.Errorf("OnPoison(%+v), want shard 0 key \"bad\" crashes 2", ev)
		}
	default:
		t.Error("OnPoison was not called")
	}
	if got := s.Metrics().Counter("shard.poisoned").Value(); got != 1 {
		t.Errorf("shard.poisoned = %d, want 1", got)
	}

	// The shard survives its poison: later documents are served normally.
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("good-%d", i)
		line, err := s.Do(ctx, key, json.RawMessage(`{}`))
		if err != nil {
			t.Fatalf("Do(%s) after quarantine: %v", key, err)
		}
		var got map[string]any
		if err := json.Unmarshal(line, &got); err != nil || got["id"] != key {
			t.Fatalf("bad line for %s after quarantine: %q", key, line)
		}
	}
	if got := s.Metrics().Counter("shard.abandoned").Value(); got != 0 {
		t.Errorf("shard.abandoned = %d after quarantine, want 0", got)
	}
}

// TestSupervisorLevelPropagation: the fidelity level rides the request
// envelope to the worker, and crosses restarts with the requeued call.
func TestSupervisorLevelPropagation(t *testing.T) {
	s, err := New(fastCfg(t, 1, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer closeSup(t, s)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for _, tc := range []struct {
		key   string
		level int
	}{{"full", 0}, {"degraded", 2}} {
		var line []byte
		if tc.level == 0 {
			line, err = s.Do(ctx, tc.key, json.RawMessage(`{}`))
		} else {
			line, err = s.DoLevel(ctx, tc.key, json.RawMessage(`{}`), "", tc.level)
		}
		if err != nil {
			t.Fatalf("Do(%s): %v", tc.key, err)
		}
		var got map[string]any
		if err := json.Unmarshal(line, &got); err != nil {
			t.Fatalf("bad line for %s: %q", tc.key, line)
		}
		if lvl, _ := got["level"].(float64); int(lvl) != tc.level {
			t.Errorf("worker saw level %v for %s, want %d", got["level"], tc.key, tc.level)
		}
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
