package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// TestSupervisorScaleOut: growing the fleet starts the new shards,
// proves them live before routing flips, and keys that migrate land on
// the added shards while traffic never stalls.
func TestSupervisorScaleOut(t *testing.T) {
	cfg := fastCfg(t, 2, nil)
	var provisioned []int
	var pmu sync.Mutex
	cfg.OnProvision = func(shard int) error {
		pmu.Lock()
		provisioned = append(provisioned, shard)
		pmu.Unlock()
		return nil
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer closeSup(t, s)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// Traffic before, during and after the scale: nothing may fail.
	stop := make(chan struct{})
	var trafficErr atomic.Value
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			key := fmt.Sprintf("bg-%04d", i)
			if _, err := s.Do(ctx, key, json.RawMessage(`{}`)); err != nil {
				trafficErr.Store(fmt.Errorf("%s: %w", key, err))
				return
			}
		}
	}()

	if err := s.Scale(ctx, 4); err != nil {
		t.Fatalf("Scale(4): %v", err)
	}
	close(stop)
	wg.Wait()
	if err, _ := trafficErr.Load().(error); err != nil {
		t.Fatalf("background traffic failed during scale-out: %v", err)
	}

	if got := s.Shards(); got != 4 {
		t.Errorf("Shards() = %d after Scale(4), want 4", got)
	}
	if got := s.RingVersion(); got != 2 {
		t.Errorf("RingVersion() = %d after one Scale, want 2", got)
	}
	pmu.Lock()
	if len(provisioned) != 2 || provisioned[0] != 2 || provisioned[1] != 3 {
		t.Errorf("OnProvision saw %v, want [2 3]", provisioned)
	}
	pmu.Unlock()

	// A key owned by a new shard is actually served there.
	ring := NewRing(4, 0)
	var key string
	for i := 0; ; i++ {
		k := fmt.Sprintf("probe-%04d", i)
		if ring.Owner(k) >= 2 {
			key = k
			break
		}
	}
	line, err := s.Do(ctx, key, json.RawMessage(`{}`))
	if err != nil {
		t.Fatalf("Do(%s) on new shard: %v", key, err)
	}
	var got map[string]any
	if err := json.Unmarshal(line, &got); err != nil || got["id"] != key {
		t.Fatalf("bad line from new shard: %q", line)
	}

	h := s.Health()
	if h.RingVersion != 2 || len(h.Shards) != 4 || h.Reconfig != nil {
		t.Errorf("Health after scale-out: ring v%d, %d shards, reconfig %+v; want v2, 4, nil",
			h.RingVersion, len(h.Shards), h.Reconfig)
	}
	m := s.Metrics()
	if got := m.Gauge("shard.reconfig.epoch").Value(); got != 1 {
		t.Errorf("shard.reconfig.epoch = %v, want 1", got)
	}
	if got := m.Gauge("shard.reconfig.active").Value(); got != 0 {
		t.Errorf("shard.reconfig.active = %v after completion, want 0", got)
	}
	if got := m.Counter(`shard.reconfig.transitions{epoch="1",kind="scale_out"}`).Value(); got != 1 {
		t.Errorf(`shard.reconfig.transitions{epoch="1",kind="scale_out"} = %d, want 1`, got)
	}
}

// TestSupervisorScaleInHandoff: shrinking retires the departing shards
// — drain, journal handoff to a live successor, successor adoption —
// and routing flips away before the drain so no new document lands on a
// retiree.
func TestSupervisorScaleInHandoff(t *testing.T) {
	dir := t.TempDir()
	cfg := fastCfg(t, 3, nil)
	type handoff struct{ retired, successor int }
	var handoffs []handoff
	var hmu sync.Mutex
	cfg.OnHandoff = func(retired, successor int) (string, error) {
		hmu.Lock()
		handoffs = append(handoffs, handoff{retired, successor})
		hmu.Unlock()
		// Simulate a transferred journal: a file the successor worker
		// "merges" (counts lines, removes).
		path := filepath.Join(dir, fmt.Sprintf("retired-%d.wal", retired))
		if err := os.WriteFile(path, []byte("a\nb\nc\n"), 0o644); err != nil {
			return "", err
		}
		return path, nil
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer closeSup(t, s)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// Seed some traffic so every shard has lived.
	for i := 0; i < 12; i++ {
		if _, err := s.Do(ctx, fmt.Sprintf("seed-%02d", i), json.RawMessage(`{}`)); err != nil {
			t.Fatalf("seed Do: %v", err)
		}
	}

	if err := s.Scale(ctx, 1); err != nil {
		t.Fatalf("Scale(1): %v", err)
	}
	if got := s.Shards(); got != 1 {
		t.Errorf("Shards() = %d after Scale(1), want 1", got)
	}
	hmu.Lock()
	// Retirees 1 and 2 both hand off to the only survivor, shard 0.
	want := []handoff{{1, 0}, {2, 0}}
	if len(handoffs) != 2 || handoffs[0] != want[0] || handoffs[1] != want[1] {
		t.Errorf("handoffs = %v, want %v", handoffs, want)
	}
	hmu.Unlock()
	// The worker removed the transferred journals after adoption.
	for _, rid := range []int{1, 2} {
		path := filepath.Join(dir, fmt.Sprintf("retired-%d.wal", rid))
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Errorf("transferred journal %s still present after adoption", path)
		}
	}

	// The shrunken fleet serves everything.
	for i := 0; i < 6; i++ {
		key := fmt.Sprintf("after-%02d", i)
		if _, err := s.Do(ctx, key, json.RawMessage(`{}`)); err != nil {
			t.Fatalf("Do(%s) after scale-in: %v", key, err)
		}
	}

	m := s.Metrics()
	if got := m.Counter("shard.reconfig.retired").Value(); got != 2 {
		t.Errorf("shard.reconfig.retired = %d, want 2", got)
	}
	if got := m.Counter(`shard.reconfig.handoffs{epoch="1"}`).Value(); got != 2 {
		t.Errorf(`shard.reconfig.handoffs{epoch="1"} = %d, want 2`, got)
	}
	h := s.Health()
	if len(h.Shards) != 1 || h.Degraded {
		t.Errorf("Health after scale-in: %d shards, degraded=%v; want 1 healthy shard", len(h.Shards), h.Degraded)
	}
}

// TestSupervisorScaleInDrainsInFlight: documents in flight on a
// departing shard when Scale fires are answered, not lost — the drain
// waits out the in-flight tail through the exiting child.
func TestSupervisorScaleInDrainsInFlight(t *testing.T) {
	cfg := fastCfg(t, 2, func(int) []string {
		return []string{"SHARD_SLOW=150"}
	})
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer closeSup(t, s)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// Park slow documents on shard 1 (the retiree), then shrink while
	// they are mid-extraction.
	ring := NewRing(2, 0)
	var keys []string
	for i := 0; len(keys) < 4; i++ {
		k := fmt.Sprintf("slow-%04d", i)
		if ring.Owner(k) == 1 {
			keys = append(keys, k)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(keys))
	for _, k := range keys {
		wg.Add(1)
		go func(k string) {
			defer wg.Done()
			if _, err := s.Do(ctx, k, json.RawMessage(`{}`)); err != nil {
				errs <- fmt.Errorf("%s: %w", k, err)
			}
		}(k)
	}
	time.Sleep(50 * time.Millisecond) // let the calls reach the worker
	if err := s.Scale(ctx, 1); err != nil {
		t.Fatalf("Scale(1) with in-flight work: %v", err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := s.Metrics().Counter("shard.response.orphans").Value(); got != 0 {
		t.Errorf("shard.response.orphans = %d during planned drain, want 0", got)
	}
}

// TestSupervisorScaleHandoffError: a failing handoff aborts Scale with
// the error, but the fleet keeps serving at the already-flipped size.
func TestSupervisorScaleHandoffError(t *testing.T) {
	cfg := fastCfg(t, 2, func(int) []string {
		return []string{"SHARD_ADOPT_FAIL=1"}
	})
	dir := t.TempDir()
	cfg.OnHandoff = func(retired, successor int) (string, error) {
		path := filepath.Join(dir, "x.wal")
		os.WriteFile(path, []byte("a\n"), 0o644) //nolint:errcheck
		return path, nil
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer closeSup(t, s)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err = s.Scale(ctx, 1)
	if err == nil || !strings.Contains(err.Error(), "adopt refused") {
		t.Fatalf("Scale with failing adoption: err = %v, want adopt refusal", err)
	}
	if got := s.Shards(); got != 1 {
		t.Errorf("Shards() = %d after aborted handoff, want 1 (routing already flipped)", got)
	}
	if _, err := s.Do(ctx, "still-serving", json.RawMessage(`{}`)); err != nil {
		t.Errorf("Do after failed handoff: %v", err)
	}
}

// TestSupervisorRoll: a rolling restart replaces every child with a
// fresh incarnation, one at a time, with no crash accounting and no
// failed traffic.
func TestSupervisorRoll(t *testing.T) {
	cfg := fastCfg(t, 3, nil)
	var pmu sync.Mutex
	pids := map[int][]int{}
	cfg.OnStart = func(shard, pid int) {
		pmu.Lock()
		pids[shard] = append(pids[shard], pid)
		pmu.Unlock()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer closeSup(t, s)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	stop := make(chan struct{})
	var trafficErr atomic.Value
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			key := fmt.Sprintf("roll-bg-%04d", i)
			if _, err := s.Do(ctx, key, json.RawMessage(`{}`)); err != nil {
				trafficErr.Store(fmt.Errorf("%s: %w", key, err))
				return
			}
		}
	}()

	if err := s.Roll(ctx); err != nil {
		t.Fatalf("Roll: %v", err)
	}
	close(stop)
	wg.Wait()
	if err, _ := trafficErr.Load().(error); err != nil {
		t.Fatalf("background traffic failed during roll: %v", err)
	}

	pmu.Lock()
	for shard := 0; shard < 3; shard++ {
		if got := len(pids[shard]); got != 2 {
			t.Errorf("shard %d started %d children across one roll, want 2", shard, got)
		} else if pids[shard][0] == pids[shard][1] {
			t.Errorf("shard %d kept pid %d across the roll", shard, pids[shard][0])
		}
	}
	pmu.Unlock()

	m := s.Metrics()
	if got := m.Counter("shard.crashes").Value(); got != 0 {
		t.Errorf("shard.crashes = %d after a clean roll, want 0", got)
	}
	if got := m.Counter("shard.restarts").Value(); got != 0 {
		t.Errorf("shard.restarts = %d after a clean roll, want 0 (rolls are not restarts)", got)
	}
	rolled := int64(0)
	for shard := 0; shard < 3; shard++ {
		rolled += m.Counter(fmt.Sprintf(`shard.reconfig.rolled{shard="%d"}`, shard)).Value()
	}
	if rolled != 3 {
		t.Errorf("shard.reconfig.rolled total = %d, want 3", rolled)
	}
	if got := m.Counter(`shard.reconfig.transitions{epoch="1",kind="roll"}`).Value(); got != 1 {
		t.Errorf(`shard.reconfig.transitions{epoch="1",kind="roll"} = %d, want 1`, got)
	}
	// The fleet is healthy and serving after the roll.
	h := s.Health()
	if h.Live != 3 || h.Degraded {
		t.Errorf("Health after roll: live=%d degraded=%v, want 3 live, not degraded", h.Live, h.Degraded)
	}
}

// TestSupervisorScaleSerializes: concurrent Scale calls serialize; the
// fleet lands on a coherent final size with consistent health.
func TestSupervisorScaleSerializes(t *testing.T) {
	s, err := New(fastCfg(t, 2, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer closeSup(t, s)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for _, n := range []int{3, 4, 2} {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			if err := s.Scale(ctx, n); err != nil {
				t.Errorf("Scale(%d): %v", n, err)
			}
		}(n)
	}
	wg.Wait()
	got := s.Shards()
	if got != 2 && got != 3 && got != 4 {
		t.Fatalf("Shards() = %d after concurrent scales, want one of the requested sizes", got)
	}
	h := s.Health()
	if len(h.Shards) != got {
		t.Errorf("Health reports %d shards, view says %d", len(h.Shards), got)
	}
	if _, err := s.Do(ctx, "post-scale", json.RawMessage(`{}`)); err != nil {
		t.Errorf("Do after concurrent scales: %v", err)
	}
}

// TestSupervisorCloseDuringRestartChurn: Close while children are
// crash-looping leaves no orphan child processes and no leaked
// goroutines — the Close-vs-restart race fix.
func TestSupervisorCloseDuringRestartChurn(t *testing.T) {
	baseline := runtime.NumGoroutine()
	cfg := fastCfg(t, 3, func(int) []string {
		return []string{"SHARD_CRASH_AFTER=1"}
	})
	cfg.MaxRestarts = 10000
	var pmu sync.Mutex
	var pids []int
	cfg.OnStart = func(_, pid int) {
		pmu.Lock()
		pids = append(pids, pid)
		pmu.Unlock()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Feed the churn: every answer kills the child, so restarts overlap
	// Close with high probability.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.Do(ctx, fmt.Sprintf("churn-%02d", i), json.RawMessage(`{}`)) //nolint:errcheck
		}(i)
	}
	time.Sleep(100 * time.Millisecond)
	closeSup(t, s)
	cancel()
	wg.Wait()

	// Every child the supervisor ever started must be dead: no orphans
	// from a restart that raced Close.
	waitFor(t, 10*time.Second, func() bool {
		pmu.Lock()
		defer pmu.Unlock()
		for _, pid := range pids {
			if syscall.Kill(pid, 0) == nil {
				return false
			}
		}
		return true
	}, "all child processes to exit after Close")

	// And the runner/reader/prober goroutines must all have unwound.
	waitFor(t, 10*time.Second, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline+3
	}, fmt.Sprintf("goroutines to settle near baseline %d", baseline))
}

// TestSupervisorScaleAfterClose: reconfiguration on a closed supervisor
// fails fast with ErrClosed.
func TestSupervisorScaleAfterClose(t *testing.T) {
	s, err := New(fastCfg(t, 1, nil))
	if err != nil {
		t.Fatal(err)
	}
	closeSup(t, s)
	if err := s.Scale(context.Background(), 3); !errors.Is(err, ErrClosed) {
		t.Errorf("Scale after Close: err = %v, want ErrClosed", err)
	}
	if err := s.Roll(context.Background()); !errors.Is(err, ErrClosed) {
		t.Errorf("Roll after Close: err = %v, want ErrClosed", err)
	}
}
