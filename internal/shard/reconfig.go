// reconfig.go is the supervisor's live-reconfiguration surface: Scale
// resizes the fleet in place and Roll restarts children one at a time,
// both without losing, duplicating or reordering a single in-flight
// document.
//
// Scale-out starts the new shards first and proves each one live
// (ping/pong or a response) before atomically swapping the routing view
// to the resized ring — no key ever routes to a shard that has not
// answered. The consistent-hash ring's minimal-movement property means
// keys move only onto the new shards; documents already completed under
// the old topology stay cached in their original shards' journals, and
// any key that migrated re-extracts deterministically on its new owner
// (the front end's dedup-and-reorder merge makes the output bytes
// identical either way).
//
// Scale-in flips routing away from the departing shards first, then
// drains each one: queued work reroutes to survivors, the in-flight
// tail finishes on the exiting child, and the retired shard's journal
// is handed to a live successor — ownership re-stamped via the
// journal's transfer-record chain (Config.OnHandoff), then merged into
// the successor's journal by an adoption request that rides the per-key
// FIFO exactly-once machinery (a successor killed mid-adoption sees the
// request again after restart and re-merges idempotently).
//
// Roll drains and restarts each shard's child sequentially, waiting for
// the replacement to prove liveness before touching the next shard, so
// a rolling restart never takes two shards down at once. SIGHUP on the
// vs2d front end triggers a Roll.
package shard

import (
	"context"
	"fmt"
	"strconv"

	"vs2/internal/obs"
)

// Scale resizes the fleet to n shards. Growing provisions and starts
// shards cur..n-1, waits for every one to prove liveness, then flips
// routing to the resized ring. Shrinking flips routing first, then
// retires shards n..cur-1 one at a time: each drains its in-flight work
// through its exiting child and hands its journal to a live successor
// (Config.OnHandoff + worker adoption). Scale transitions serialize
// with each other and with Roll; ctx bounds the whole transition.
func (s *Supervisor) Scale(ctx context.Context, n int) error {
	if n < 1 {
		return fmt.Errorf("shard: Scale: n must be >= 1, got %d", n)
	}
	s.reconfigMu.Lock()
	defer s.reconfigMu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	f := s.view.Load()
	cur := len(f.shards)
	if n == cur {
		return nil
	}
	epoch := s.reconfigEpoch.Add(1)
	kind := "scale_out"
	if n < cur {
		kind = "scale_in"
	}
	s.m.Counter(obs.Name("shard.reconfig.transitions",
		obs.L("kind", kind), obs.L("epoch", strconv.FormatInt(epoch, 10)))).Inc()
	s.m.Gauge("shard.reconfig.active").Set(1)
	defer s.m.Gauge("shard.reconfig.active").Set(0)
	defer s.clearTransition()
	fmt.Fprintf(s.cfg.Stderr, "vs2d: reconfig epoch %d: %s %d -> %d\n", epoch, kind, cur, n)
	var err error
	if n > cur {
		err = s.scaleOut(ctx, f, n, epoch)
	} else {
		err = s.scaleIn(ctx, f, n, epoch)
	}
	if err != nil {
		return fmt.Errorf("shard: %s to %d (epoch %d): %w", kind, n, epoch, err)
	}
	nf := s.view.Load()
	s.m.Gauge("shard.reconfig.epoch").Set(float64(epoch))
	s.m.Gauge("shard.ring.version").Set(float64(nf.ring.Version()))
	fmt.Fprintf(s.cfg.Stderr, "vs2d: reconfig epoch %d: %s complete, fleet at %d shards (ring v%d)\n",
		epoch, kind, len(nf.shards), nf.ring.Version())
	return nil
}

// scaleOut grows the fleet from len(f.shards) to n. The routing view
// flips only after every new shard's child has answered, so no document
// can route into a shard that might never come up.
func (s *Supervisor) scaleOut(ctx context.Context, f *fleet, n int, epoch int64) error {
	cur := len(f.shards)
	var fresh []*shardState
	ok := false
	defer func() {
		if ok {
			return
		}
		// Abort: retire whatever we started so a retry (or Close) does
		// not inherit half-provisioned runners taking no traffic.
		for _, st := range fresh {
			st.requestRetire()
		}
	}()
	for i := cur; i < n; i++ {
		s.setTransition(Reconfig{Kind: "scale_out", From: cur, To: n, Epoch: epoch, Phase: "starting", Shard: i})
		if cb := s.cfg.OnProvision; cb != nil {
			if err := cb(i); err != nil {
				return fmt.Errorf("provision shard %d: %w", i, err)
			}
		}
		st := s.newShardState(i)
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			st.lifeStop()
			close(st.gone) // never ran; satisfy any future waiter
			return ErrClosed
		}
		s.all = append(s.all, st)
		s.mu.Unlock()
		fresh = append(fresh, st)
		go st.run()
	}
	for _, st := range fresh {
		s.setTransition(Reconfig{Kind: "scale_out", From: cur, To: n, Epoch: epoch, Phase: "proving", Shard: st.id})
		if err := st.waitProven(ctx, 0, s.done); err != nil {
			return fmt.Errorf("prove shard %d: %w", st.id, err)
		}
	}
	shards := append(append([]*shardState(nil), f.shards...), fresh...)
	s.view.Store(&fleet{ring: f.ring.Resize(n), shards: shards})
	ok = true
	return nil
}

// scaleIn shrinks the fleet from len(f.shards) to n. Routing flips
// first — new documents stop landing on the departing shards — then
// each retiree drains and hands its journal to a live successor.
func (s *Supervisor) scaleIn(ctx context.Context, f *fleet, n int, epoch int64) error {
	cur := len(f.shards)
	survivors := append([]*shardState(nil), f.shards[:n]...)
	live := 0
	for _, st := range survivors {
		if !st.permanentlyFailed() {
			live++
		}
	}
	if live == 0 {
		return fmt.Errorf("no live shard would survive shrinking to %d", n)
	}
	nf := &fleet{ring: f.ring.Resize(n), shards: survivors}
	s.view.Store(nf)
	for _, st := range f.shards[n:cur] {
		s.setTransition(Reconfig{Kind: "scale_in", From: cur, To: n, Epoch: epoch, Phase: "draining", Shard: st.id})
		st.requestRetire()
		select {
		case <-st.gone:
		case <-ctx.Done():
			return fmt.Errorf("drain shard %d: %w", st.id, ctx.Err())
		case <-s.done:
			return ErrClosed
		}
		if s.cfg.OnHandoff == nil {
			continue
		}
		succ := nf.successor(st.id)
		if succ == nil {
			return fmt.Errorf("handoff from shard %d: no live successor", st.id)
		}
		s.setTransition(Reconfig{Kind: "scale_in", From: cur, To: n, Epoch: epoch, Phase: "handoff", Shard: st.id})
		path, err := s.cfg.OnHandoff(st.id, succ.id)
		if err != nil {
			return fmt.Errorf("handoff from shard %d to %d: %w", st.id, succ.id, err)
		}
		if path == "" {
			continue
		}
		s.setTransition(Reconfig{Kind: "scale_in", From: cur, To: n, Epoch: epoch, Phase: "adopting", Shard: succ.id})
		if err := s.adopt(ctx, succ, path); err != nil {
			return fmt.Errorf("shard %d adopting %s: %w", succ.id, path, err)
		}
		s.m.Counter(obs.Name("shard.reconfig.handoffs",
			obs.L("epoch", strconv.FormatInt(epoch, 10)))).Inc()
	}
	return nil
}

// successor picks the live shard that adopts a retired shard's journal:
// the survivor at the retiree's index modulo the new fleet size, walking
// forward past shards that are themselves failed or departing.
func (f *fleet) successor(retired int) *shardState {
	n := len(f.shards)
	for off := 0; off < n; off++ {
		st := f.shards[(retired+off)%n]
		if !st.permanentlyFailed() && !st.retireRequested() {
			return st
		}
	}
	return nil
}

// adopt sends the successor an adoption request for the retired journal
// and waits for its ack. The request is pinned to the successor — an
// adoption is meaningless anywhere else — and rides the per-key FIFO,
// so a successor crash mid-adoption requeues it for the restarted child.
func (s *Supervisor) adopt(ctx context.Context, succ *shardState, path string) error {
	c := &call{
		key:    "\x00adopt:" + path,
		adopt:  path,
		pinned: true,
		done:   make(chan callResult, 1),
	}
	succ.enqueue(c)
	select {
	case r := <-c.done:
		return r.err
	case <-ctx.Done():
		return ctx.Err()
	case <-s.done:
		return ErrClosed
	}
}

// Roll restarts every shard's child one at a time: drain the current
// child gracefully (it journals its in-flight tail and exits), start a
// fresh one, wait for it to prove liveness, then move to the next
// shard. Shards that are permanently failed or retiring are skipped; a
// shard that is down mid-crash-restart counts its in-progress restart
// as the roll. Roll serializes with Scale; ctx bounds the whole sweep.
func (s *Supervisor) Roll(ctx context.Context) error {
	s.reconfigMu.Lock()
	defer s.reconfigMu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	f := s.view.Load()
	epoch := s.reconfigEpoch.Add(1)
	s.m.Counter(obs.Name("shard.reconfig.transitions",
		obs.L("kind", "roll"), obs.L("epoch", strconv.FormatInt(epoch, 10)))).Inc()
	s.m.Gauge("shard.reconfig.active").Set(1)
	defer s.m.Gauge("shard.reconfig.active").Set(0)
	defer s.clearTransition()
	fmt.Fprintf(s.cfg.Stderr, "vs2d: reconfig epoch %d: rolling restart of %d shards\n", epoch, len(f.shards))
	for _, st := range f.shards {
		st.mu.Lock()
		skip := st.failed || st.retired
		st.mu.Unlock()
		if skip || st.retireRequested() {
			continue
		}
		s.setTransition(Reconfig{Kind: "roll", From: len(f.shards), To: len(f.shards), Epoch: epoch, Phase: "rolling", Shard: st.id})
		// First make sure the shard has a proven child at all (a fleet
		// still booting, or mid-crash-restart, settles first), then roll
		// that incarnation and wait for a NEWER one to answer — not a
		// late pong from the child draining out.
		if err := st.waitProven(ctx, 0, s.done); err != nil {
			return fmt.Errorf("shard: roll (epoch %d): shard %d: %w", epoch, st.id, err)
		}
		st.mu.Lock()
		e0 := st.epoch
		st.mu.Unlock()
		st.requestRoll()
		if err := st.waitProven(ctx, e0, s.done); err != nil {
			return fmt.Errorf("shard: roll (epoch %d): shard %d: %w", epoch, st.id, err)
		}
	}
	s.m.Gauge("shard.reconfig.epoch").Set(float64(epoch))
	fmt.Fprintf(s.cfg.Stderr, "vs2d: reconfig epoch %d: roll complete\n", epoch)
	return nil
}

func (s *Supervisor) setTransition(r Reconfig) { s.transition.Store(&r) }
func (s *Supervisor) clearTransition()         { s.transition.Store(nil) }

// Transition reports the reconfiguration currently in progress, nil
// when the topology is stable. The returned copy is the caller's.
func (s *Supervisor) Transition() *Reconfig {
	t := s.transition.Load()
	if t == nil {
		return nil
	}
	c := *t
	return &c
}
