package shard

import (
	"encoding/json"

	"vs2/internal/obs"
)

// The front end and its worker children speak JSONL over the child's
// stdin/stdout: one Request per line down, one Response per line up.
// Responses are keyed, not ordered — a worker answers documents as they
// complete and the front end reorders globally — so a restarted worker
// can replay journal-cached completions in any order without disturbing
// the merge.

// Request is one unit sent to a shard worker: a document to extract, or
// a liveness probe.
type Request struct {
	// Key identifies the document for journaling and response matching.
	// The front end derives it once (document ID, or a positional key for
	// anonymous documents) so it stays stable across restarts and resumes.
	Key string `json:"key,omitempty"`
	// Doc is the document's raw JSON, passed through verbatim — the
	// worker decodes it with the same loader as the corpus scanner, and
	// no re-encoding can perturb the bytes a resumed run depends on.
	Doc json.RawMessage `json:"doc,omitempty"`
	// Ping marks a liveness probe; the worker answers with Pong
	// immediately, ahead of any queued extraction work.
	Ping bool `json:"ping,omitempty"`
	// Span is the front end's span ID for this document — the parent
	// under which the worker's own extraction span tree re-parents when
	// traces are stitched across the process boundary. Empty when the
	// front end is not tracing.
	Span string `json:"span,omitempty"`
	// Level is the front end's fidelity level for this document, so every
	// shard degrades coherently under the one controller the front end
	// runs. Zero (omitted) means full fidelity; workers whose ladder is
	// off ignore it.
	Level int `json:"level,omitempty"`
	// Adopt asks the worker to merge the retired journal at this path —
	// already transferred to the worker's owner label — into its own
	// journal and remove the source: the successor's half of a planned
	// shard handoff during scale-in. The request carries Key like a
	// document so the ack rides the per-key FIFO exactly-once accounting;
	// a worker killed mid-adoption sees the request again after restart
	// and re-merges idempotently.
	Adopt string `json:"adopt,omitempty"`
}

// Response is one line a shard worker sends back.
type Response struct {
	// Key echoes the request's key.
	Key string `json:"key,omitempty"`
	// Line is the document's canonical result line (vs2.RenderLine): the
	// bytes the front end emits for this document, byte-identical whether
	// extracted fresh or replayed from the shard's journal.
	Line json.RawMessage `json:"line,omitempty"`
	// Pong answers a Ping.
	Pong bool `json:"pong,omitempty"`
	// Adopted acknowledges an Adopt request: how many journal entries the
	// worker merged from the retired journal (0 when the source was
	// already gone — a crashed-and-retried adoption).
	Adopted int `json:"adopted,omitempty"`
	// Err carries an adoption failure (e.g. an ownership mismatch); the
	// supervisor surfaces it to the Scale caller. Document failures ride
	// inside Line, never here.
	Err string `json:"err,omitempty"`
	// Telemetry is a periodic observability shipment riding the same
	// response pipe: metric deltas since the worker's last shipment plus
	// the span trees completed since then. Telemetry lines carry no Key.
	Telemetry *Telemetry `json:"telemetry,omitempty"`
}

// Telemetry is one worker observability shipment. The worker fills
// Metrics and Spans; the supervisor stamps Shard and Epoch (the child
// incarnation number) on receipt — the child cannot know its own epoch,
// and an authoritative stamp survives any worker confusion.
type Telemetry struct {
	// Shard is the shard index the shipment arrived from.
	Shard int `json:"shard"`
	// Epoch is the incarnation of the child that sent it: 1 for the
	// first start, incremented on every restart. A span stamped with an
	// earlier epoch than the document's final answer belonged to an
	// attempt that died.
	Epoch int64 `json:"epoch,omitempty"`
	// Metrics is the delta of the worker's registry since its previous
	// shipment (obs.Snapshot.DeltaSince); the front end folds it into
	// the fleet registry with a shard label.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
	// Spans holds the span trees of documents completed since the last
	// shipment, each root stamped with the request's Span as its
	// parent_span attribute.
	Spans []obs.SpanSnapshot `json:"spans,omitempty"`
	// Final marks the worker's shutdown flush.
	Final bool `json:"final,omitempty"`
}
