package shard

import "encoding/json"

// The front end and its worker children speak JSONL over the child's
// stdin/stdout: one Request per line down, one Response per line up.
// Responses are keyed, not ordered — a worker answers documents as they
// complete and the front end reorders globally — so a restarted worker
// can replay journal-cached completions in any order without disturbing
// the merge.

// Request is one unit sent to a shard worker: a document to extract, or
// a liveness probe.
type Request struct {
	// Key identifies the document for journaling and response matching.
	// The front end derives it once (document ID, or a positional key for
	// anonymous documents) so it stays stable across restarts and resumes.
	Key string `json:"key,omitempty"`
	// Doc is the document's raw JSON, passed through verbatim — the
	// worker decodes it with the same loader as the corpus scanner, and
	// no re-encoding can perturb the bytes a resumed run depends on.
	Doc json.RawMessage `json:"doc,omitempty"`
	// Ping marks a liveness probe; the worker answers with Pong
	// immediately, ahead of any queued extraction work.
	Ping bool `json:"ping,omitempty"`
}

// Response is one line a shard worker sends back.
type Response struct {
	// Key echoes the request's key.
	Key string `json:"key,omitempty"`
	// Line is the document's canonical result line (vs2.RenderLine): the
	// bytes the front end emits for this document, byte-identical whether
	// extracted fresh or replayed from the shard's journal.
	Line json.RawMessage `json:"line,omitempty"`
	// Pong answers a Ping.
	Pong bool `json:"pong,omitempty"`
}
