package extract

import (
	"context"
	"sync"

	"vs2/internal/doc"
	"vs2/internal/geom"
)

// Terms is the per-term breakdown of one Eq. 2 evaluation against the
// candidate's nearest interest point — the raw ΔD, ΔH, ΔSim and ΔWd
// values before weighting. Operators read these to see which modality
// decided a disambiguation.
type Terms struct {
	DD   float64 `json:"delta_d"`
	DH   float64 `json:"delta_h"`
	DSim float64 `json:"delta_sim"`
	DWd  float64 `json:"delta_wd"`
}

// Weighted returns the Eq. 2 mix α·ΔD + β·ΔH + γ·ΔSim + ν·ΔWd under w.
func (t Terms) Weighted(w Weights) float64 {
	return w.Alpha*t.DD + w.Beta*t.DH + w.Gamma*t.DSim + w.Nu*t.DWd
}

// CandidateExplain is the disambiguation record of one candidate: where
// it matched, which pattern produced it, and the Eq. 2 cost that ranked
// it.
type CandidateExplain struct {
	Entity       string    `json:"entity"`
	Text         string    `json:"text"`
	Pattern      string    `json:"pattern,omitempty"`
	PatternScore float64   `json:"pattern_score"`
	Order        int       `json:"order"`
	Box          geom.Rect `json:"box"`
	Distance     float64   `json:"distance"`
	Terms        Terms     `json:"terms"`
	Won          bool      `json:"won"`
	// Block is the logical block the candidate matched in; callers with
	// the layout tree in hand resolve it to a tree path.
	Block *doc.Node `json:"-"`
}

// Explanation records why one entity's winning candidate won: the
// strategy used, the interest points in play, and every candidate ranked
// best-first with its cost breakdown.
type Explanation struct {
	Entity         string             `json:"entity"`
	Strategy       string             `json:"strategy"`
	InterestPoints int                `json:"interest_points"`
	Candidates     []CandidateExplain `json:"candidates"`
}

// ExplainSink collects per-entity explanations across a selection run.
// Attach one to the context with WithExplain; the built-in Extractor
// fills it during SelectContext. Safe for concurrent writers.
type ExplainSink struct {
	mu  sync.Mutex
	exs []Explanation
}

// Explanations returns a copy of everything collected so far.
func (s *ExplainSink) Explanations() []Explanation {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Explanation(nil), s.exs...)
}

func (s *ExplainSink) add(e Explanation) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.exs = append(s.exs, e)
	s.mu.Unlock()
}

type explainKey struct{}

// WithExplain attaches a fresh explanation sink to the context and
// returns both. Selection phases that see the sink record their
// disambiguation reasoning into it; absent a sink they skip the work
// entirely.
func WithExplain(ctx context.Context) (context.Context, *ExplainSink) {
	sink := &ExplainSink{}
	return context.WithValue(ctx, explainKey{}, sink), sink
}

func explainFrom(ctx context.Context) *ExplainSink {
	s, _ := ctx.Value(explainKey{}).(*ExplainSink)
	return s
}

// strategyName reports the configured disambiguation strategy for
// explanation records.
func (e *Extractor) strategyName() string {
	switch e.opts.Disambiguation {
	case None:
		return "first-match"
	case Lesk:
		return "lesk"
	default:
		return "multimodal"
	}
}

// explain builds the full ranked explanation for one entity. The ranked
// candidate order is recomputed with the same comparator the selection
// used, so the record reflects the actual decision.
func (e *Extractor) explain(d *doc.Document, entity string, cands []Candidate, points []InterestPoint, winnerOrder int) Explanation {
	ranked := cands
	if len(cands) > 1 {
		ranked = e.rank(d, entity, cands, points)
	}
	ex := Explanation{
		Entity:         entity,
		Strategy:       e.strategyName(),
		InterestPoints: len(points),
		Candidates:     make([]CandidateExplain, 0, len(ranked)),
	}
	for _, c := range ranked {
		var dist float64
		var terms Terms
		if e.opts.Disambiguation == Multimodal && len(points) > 0 && len(cands) > 1 {
			dist, terms = e.distanceTerms(d, c, points)
		}
		ex.Candidates = append(ex.Candidates, CandidateExplain{
			Entity:       entity,
			Text:         c.Match.Text,
			Pattern:      c.Match.Pattern,
			PatternScore: c.Match.Score,
			Order:        c.order,
			Box:          c.Box,
			Distance:     dist,
			Terms:        terms,
			Won:          c.order == winnerOrder,
			Block:        c.BT.Block,
		})
	}
	return ex
}
