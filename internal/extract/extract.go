// Package extract implements VS2-Select, the paper's second technical
// contribution (Sections 5.2–5.3): a distantly supervised search-and-select
// method. For each named entity, the entity's lexico-syntactic pattern set
// is searched within the context boundaries defined by the logical blocks;
// when several candidates match, an optimization-based multimodal entity
// disambiguation picks the candidate minimising the Eq. 2 distance to its
// closest interest point:
//
//	F(s, c) = α·ΔD(s,c) + β·ΔH(s,c) + γ·ΔSim(s,c) + ν·ΔWd(s,c)
//
// with α+β+γ+ν = 1. ΔD is the L1 distance between centroids, ΔH the height
// difference of the enclosing boxes, ΔSim the (dis)similarity of the texts
// and ΔWd the difference of distance-normalised word densities. The weights
// express the corpus character: visually ornate corpora weight the visual
// terms (α, β, ν), verbose corpora the textual term (γ).
package extract

import (
	"context"
	"math"
	"sort"

	"vs2/internal/doc"
	"vs2/internal/embed"
	"vs2/internal/geom"
	"vs2/internal/nlp"
	"vs2/internal/obs"
	"vs2/internal/pattern"
)

// Weights are the Eq. 2 mixing coefficients.
type Weights struct {
	Alpha float64 // ΔD: centroid displacement
	Beta  float64 // ΔH: height difference
	Gamma float64 // ΔSim: textual similarity
	Nu    float64 // ΔWd: word-density difference
}

// The paper's guidance on setting the weights (Section 5.3.2).
var (
	// Balanced suits corpora that are neither extremely ornate nor extremely
	// verbose (datasets D1 and D3): α ≈ β ≈ γ ≈ ν.
	Balanced = Weights{0.25, 0.25, 0.25, 0.25}
	// VisuallyOrnate suits sparse, decorated documents (dataset D2):
	// α, β, ν ≥ γ.
	VisuallyOrnate = Weights{0.3, 0.3, 0.1, 0.3}
	// Verbose suits text-heavy documents: γ > α, β, ν.
	Verbose = Weights{0.15, 0.15, 0.55, 0.15}
)

// Disambiguation selects the conflict-resolution strategy; the non-default
// values exist for the Table 9 ablation rows A3 (none) and A4 (text-only
// Lesk).
type Disambiguation int

const (
	// Multimodal is the paper's Eq. 2 optimisation (default).
	Multimodal Disambiguation = iota
	// None takes the first match in reading order.
	None
	// Lesk ranks candidates by gloss overlap with the entity concept — the
	// text-only baseline [3].
	Lesk
)

// Options configures an Extractor.
type Options struct {
	Weights        Weights
	Disambiguation Disambiguation
	// Embedder supplies vectors for ΔSim, coherence, and interest points;
	// nil selects the built-in lexicon embedder.
	Embedder embed.Embedder
	// Concepts maps entity keys to head concepts for the Lesk strategy
	// (e.g. "EventOrganizer" → "organizer"). Unknown entities fall back to
	// first-match.
	Concepts map[string]string
}

func (o Options) withDefaults() Options {
	if o.Weights == (Weights{}) {
		o.Weights = Balanced
	}
	if o.Embedder == nil {
		o.Embedder = sharedLexicon
	}
	if o.Concepts == nil {
		o.Concepts = DefaultConcepts
	}
	return o
}

var sharedLexicon = embed.NewLexicon()

// DefaultConcepts maps the Tables 3/4 entity keys to Lesk head concepts.
var DefaultConcepts = map[string]string{
	pattern.EventTitle:       "event",
	pattern.EventPlace:       "venue",
	pattern.EventTime:        "time",
	pattern.EventOrganizer:   "organizer",
	pattern.EventDescription: "event",
	pattern.BrokerName:       "broker",
	pattern.BrokerPhone:      "phone",
	pattern.BrokerEmail:      "phone",
	pattern.PropertyAddr:     "address",
	pattern.PropertySize:     "acre",
	pattern.PropertyDesc:     "property",
}

// Extraction is one extracted named entity.
type Extraction struct {
	Entity string
	Text   string
	// Box is the bounding box of the elements the match covered.
	Box geom.Rect
	// BlockBox is the logical block the match came from.
	BlockBox geom.Rect
	// Distance is the Eq. 2 distance to the closest interest point (0 when
	// disambiguation was unnecessary or disabled).
	Distance float64
	// Pattern names the alternative that matched.
	Score float64
}

// Candidate is a pattern match with its visual grounding; exported for the
// baselines that reuse the search phase with different selection logic.
type Candidate struct {
	Entity string
	Match  pattern.Match
	Box    geom.Rect
	BT     *BlockText
	// order is the candidate's reading-order rank, for the None strategy.
	order int
}

// Extractor runs VS2-Select over segmented documents.
type Extractor struct {
	opts Options
}

// New returns an Extractor.
func New(opts Options) *Extractor {
	return &Extractor{opts: opts.withDefaults()}
}

// Search runs the pattern sets over every block, returning all candidates
// grouped by entity. This is the "search" half of search-and-select.
func (e *Extractor) Search(d *doc.Document, blocks []*doc.Node, sets []*pattern.Set) map[string][]Candidate {
	out, _ := e.SearchContext(context.Background(), d, blocks, sets)
	return out
}

// SearchContext is Search under cooperative cancellation: ctx is checked
// before each block is transcribed and searched. On cancellation the
// candidates gathered so far are returned alongside ctx's error, so a
// caller running against a budget can degrade to partial results instead
// of discarding completed work.
func (e *Extractor) SearchContext(ctx context.Context, d *doc.Document, blocks []*doc.Node, sets []*pattern.Set) (map[string][]Candidate, error) {
	sp := obs.SpanFrom(ctx)
	out := map[string][]Candidate{}
	order := 0
	searched := 0
	for _, b := range blocks {
		if err := ctx.Err(); err != nil {
			annotateSearch(sp, d, blocks, sets, out, searched)
			return out, err
		}
		bt := NewBlockText(d, b)
		if bt.Text == "" {
			continue
		}
		searched++
		for _, set := range sets {
			for _, m := range set.Find(bt.Ann) {
				box := bt.BoxFor(d, m.CharStart, m.CharStart+len(m.Text))
				if box.Empty() || set.BlockLevel {
					box = bt.Block.Box
				}
				out[set.Entity] = append(out[set.Entity], Candidate{
					Entity: set.Entity,
					Match:  m,
					Box:    box,
					BT:     bt,
					order:  order,
				})
				order++
			}
		}
	}
	annotateSearch(sp, d, blocks, sets, out, searched)
	return out, nil
}

// annotateSearch records the search phase's footprint on its span: blocks
// seen vs searched, patterns tried (every alternative of every set runs
// against every non-empty block), and per-entity candidate counts in
// deterministic entity order.
func annotateSearch(sp *obs.Span, d *doc.Document, blocks []*doc.Node, sets []*pattern.Set, out map[string][]Candidate, searched int) {
	if sp == nil {
		return
	}
	alternatives := 0
	for _, set := range sets {
		alternatives += len(set.Patterns)
	}
	total := 0
	entities := make([]string, 0, len(out))
	for entity, cs := range out {
		total += len(cs)
		entities = append(entities, entity)
	}
	sort.Strings(entities)
	sp.SetAttr("blocks", len(blocks))
	sp.SetAttr("blocks_searched", searched)
	sp.SetAttr("entity_sets", len(sets))
	sp.SetAttr("patterns_tried", alternatives*searched)
	sp.SetAttr("candidates", total)
	for _, entity := range entities {
		sp.AddEvent("candidates", obs.Str("entity", entity), obs.Int("count", len(out[entity])))
	}
}

// Extract runs the full search-and-select: one extraction per entity that
// matched anywhere (entities with no match are absent from the result).
func (e *Extractor) Extract(d *doc.Document, blocks []*doc.Node, sets []*pattern.Set) []Extraction {
	candidates := e.Search(d, blocks, sets)
	out, _ := e.SelectContext(context.Background(), d, blocks, candidates, sets)
	return out
}

// SelectContext is the "select" half under cooperative cancellation: the
// interest-point computation checks ctx per block and the per-entity
// conflict resolution checks it per pattern set. On cancellation it
// returns ctx's error; the caller can re-select the same candidates with
// SelectFirstMatch, which needs no interest points and cannot time out.
func (e *Extractor) SelectContext(ctx context.Context, d *doc.Document, blocks []*doc.Node, candidates map[string][]Candidate, sets []*pattern.Set) ([]Extraction, error) {
	sp := obs.SpanFrom(ctx)
	sink := explainFrom(ctx)
	var points []InterestPoint
	if e.opts.Disambiguation == Multimodal {
		var err error
		points, err = interestPointsCtx(ctx, d, blocks, e.opts.Embedder)
		if err != nil {
			return nil, err
		}
		sp.SetAttr("interest_points", len(points))
	}
	sp.SetAttr("strategy", e.strategyName())
	var out []Extraction
	for _, set := range sets {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cands := candidates[set.Entity]
		if len(cands) == 0 {
			continue
		}
		if set.BlockLevel {
			cands = densestBlock(d, cands)
		}
		best, dist := e.selectCandidate(d, set.Entity, cands, points)
		if sp != nil || sink != nil {
			ex := e.explain(d, set.Entity, cands, points, best.order)
			sink.add(ex)
			if sp != nil && len(ex.Candidates) > 0 {
				win := ex.Candidates[0]
				sp.AddEvent("select",
					obs.Str("entity", set.Entity),
					obs.Int("candidates", len(cands)),
					obs.Str("winner", win.Text),
					obs.Str("pattern", win.Pattern),
					obs.F64("distance", dist),
					obs.F64("delta_d", win.Terms.DD),
					obs.F64("delta_h", win.Terms.DH),
					obs.F64("delta_sim", win.Terms.DSim),
					obs.F64("delta_wd", win.Terms.DWd))
			}
		}
		out = append(out, Extraction{
			Entity:   set.Entity,
			Text:     best.Match.Text,
			Box:      best.Box,
			BlockBox: best.BT.Block.Box,
			Distance: dist,
			Score:    best.Match.Score,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Entity < out[j].Entity })
	return out, nil
}

// SelectFirstMatch resolves each entity to its first candidate in reading
// order — the degraded-mode selection used when the Eq. 2 disambiguation
// exceeds its budget or fails. It mirrors the None strategy: block-level
// entities still restrict to the densest block (a cheap O(n) count), then
// reading order decides. It performs no embedding or interest-point work
// and is safe on any candidate set SearchContext can produce.
func (e *Extractor) SelectFirstMatch(d *doc.Document, candidates map[string][]Candidate, sets []*pattern.Set) []Extraction {
	var out []Extraction
	for _, set := range sets {
		cands := candidates[set.Entity]
		if len(cands) == 0 {
			continue
		}
		if set.BlockLevel {
			cands = densestBlock(d, cands)
		}
		best := cands[0]
		for _, c := range cands[1:] {
			if c.order < best.order {
				best = c
			}
		}
		out = append(out, Extraction{
			Entity:   set.Entity,
			Text:     best.Match.Text,
			Box:      best.Box,
			BlockBox: best.BT.Block.Box,
			Score:    best.Match.Score,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Entity < out[j].Entity })
	return out
}

// ExtractAll is like Extract but returns every candidate for each entity,
// ranked best-first — used by the localisation evaluation, which scores all
// proposals, and by multi-valued fields.
func (e *Extractor) ExtractAll(d *doc.Document, blocks []*doc.Node, sets []*pattern.Set) map[string][]Extraction {
	candidates := e.Search(d, blocks, sets)
	var points []InterestPoint
	if e.opts.Disambiguation == Multimodal {
		points = interestPoints(d, blocks, e.opts.Embedder)
	}
	out := map[string][]Extraction{}
	for entity, cands := range candidates {
		ranked := e.rank(d, entity, cands, points)
		for _, c := range ranked {
			out[entity] = append(out[entity], Extraction{
				Entity:   entity,
				Text:     c.Match.Text,
				Box:      c.Box,
				BlockBox: c.BT.Block.Box,
				Score:    c.Match.Score,
			})
		}
	}
	return out
}

// selectCandidate picks the winning candidate per the configured strategy.
func (e *Extractor) selectCandidate(d *doc.Document, entity string, cands []Candidate, points []InterestPoint) (Candidate, float64) {
	if len(cands) == 1 {
		return cands[0], 0
	}
	ranked := e.rank(d, entity, cands, points)
	best := ranked[0]
	if e.opts.Disambiguation == Multimodal {
		return best, e.distanceToNearest(d, best, points)
	}
	return best, 0
}

// rank orders candidates best-first under the configured strategy.
func (e *Extractor) rank(d *doc.Document, entity string, cands []Candidate, points []InterestPoint) []Candidate {
	out := append([]Candidate(nil), cands...)
	switch e.opts.Disambiguation {
	case None:
		sort.SliceStable(out, func(i, j int) bool { return out[i].order < out[j].order })
	case Lesk:
		concept := e.opts.Concepts[entity]
		score := func(c Candidate) int {
			return nlp.LeskScore(concept, c.BT.ContextWords(c.Match.CharStart, c.Match.CharStart+len(c.Match.Text), 80))
		}
		sort.SliceStable(out, func(i, j int) bool {
			si, sj := score(out[i]), score(out[j])
			if si != sj {
				return si > sj
			}
			return out[i].order < out[j].order
		})
	default: // Multimodal
		dist := make([]float64, len(out))
		for i, c := range out {
			dist[i] = e.distanceToNearest(d, c, points)
		}
		idx := make([]int, len(out))
		for i := range idx {
			idx[i] = i
		}
		// Distances within distEps of each other are ties: the Eq. 2
		// encoding cannot meaningfully order two candidates a hair apart.
		// Ties resolve by the prominence of the candidate's block (larger
		// type marks the significant area, per the interest-point
		// objectives), then pattern specificity, then reading order.
		const distEps = 0.06
		height := make([]float64, len(out))
		for i, c := range out {
			height[i] = blockMeanHeight(d, c.BT.Block)
		}
		sort.SliceStable(idx, func(a, b int) bool {
			da, db := dist[idx[a]], dist[idx[b]]
			if da < db-distEps || db < da-distEps {
				return da < db
			}
			if ha, hb := height[idx[a]], height[idx[b]]; ha != hb {
				return ha > hb
			}
			if out[idx[a]].Match.Score != out[idx[b]].Match.Score {
				return out[idx[a]].Match.Score > out[idx[b]].Match.Score
			}
			return out[idx[a]].order < out[idx[b]].order
		})
		ranked := make([]Candidate, len(out))
		for i, k := range idx {
			ranked[i] = out[k]
		}
		return ranked
	}
	return out
}

// distanceToNearest evaluates Eq. 2 between the candidate's visual area and
// every interest point, returning the minimum.
func (e *Extractor) distanceToNearest(d *doc.Document, c Candidate, points []InterestPoint) float64 {
	f, _ := e.distanceTerms(d, c, points)
	return f
}

// distanceTerms is distanceToNearest with the per-term breakdown of the
// winning (minimum) evaluation, for explanation reports and trace spans.
func (e *Extractor) distanceTerms(d *doc.Document, c Candidate, points []InterestPoint) (float64, Terms) {
	if len(points) == 0 {
		return 0, Terms{}
	}
	w := e.opts.Weights
	pageDiag := d.Width + d.Height
	// A match inside an interest point is at its closest interest point
	// already: distance zero. Without this case the ΔSim term would
	// penalise the match for resembling its own block.
	for _, p := range points {
		if p.Block == c.BT.Block {
			return 0, Terms{}
		}
	}
	matchVec := embed.TextVec(e.opts.Embedder, c.Match.Text)
	matchWd := wordDensity(c.Box, countWords(d, c.Box))
	best := math.Inf(1)
	var bestTerms Terms
	for _, p := range points {
		dD := c.Box.Centroid().L1Dist(p.Block.Box.Centroid()) / pageDiag
		dH := math.Abs(c.Box.H-p.Block.Box.H) / d.Height
		// ΔSim is the raw cosine similarity, exactly as Eq. 2 states: F is
		// minimised, so the preferred match is textually COMPLEMENTARY to
		// the interest point rather than a duplicate of it. A broker name
		// near the property headline should not be out-scored by the
		// brokerage line merely because the latter shares the headline's
		// real-estate vocabulary.
		dSim := embed.Cosine(matchVec, p.Vec)
		dWd := math.Abs(matchWd - p.WordDensity)
		// Normalise the density term into a comparable scale.
		dWd = dWd / (dWd + 1)
		f := w.Alpha*dD + w.Beta*dH + w.Gamma*dSim + w.Nu*dWd
		if f < best {
			best = f
			bestTerms = Terms{DD: dD, DH: dH, DSim: dSim, DWd: dWd}
		}
	}
	return best, bestTerms
}

// medianTextHeight returns the median height of the document's text
// elements.
func medianTextHeight(d *doc.Document) float64 {
	var hs []float64
	for i := range d.Elements {
		if d.Elements[i].Kind == doc.TextElement {
			hs = append(hs, d.Elements[i].Box.H)
		}
	}
	if len(hs) == 0 {
		return 0
	}
	sort.Float64s(hs)
	return hs[len(hs)/2]
}

func countWords(d *doc.Document, box geom.Rect) int {
	n := 0
	for i := range d.Elements {
		el := &d.Elements[i]
		if el.Kind != doc.TextElement {
			continue
		}
		if inter := box.Intersect(el.Box); !inter.Empty() && inter.Area() >= el.Box.Area()/2 {
			n++
		}
	}
	return n
}

func wordDensity(box geom.Rect, words int) float64 {
	a := box.Area()
	if a == 0 {
		return 0
	}
	return float64(words) / a * 1e4
}

// densestBlock restricts block-level candidates to the block with the most
// pattern matches. Description-type entities are paragraphs: many clause
// and phrase patterns fire inside the true description block, while a
// headline or a logistics line yields at most one incidental match. The
// match count is the discriminating signal; Eq. 2 then ranks within the
// chosen block (and breaks ties between equally dense blocks).
func densestBlock(d *doc.Document, cands []Candidate) []Candidate {
	// Fine print cannot be the description block: drop candidates whose
	// block is set well below the document's median type size (data
	// attributions, print credits), mirroring the prominence filter of the
	// interest-point selection. If everything is small, keep everything.
	med := medianTextHeight(d)
	var kept []Candidate
	for _, c := range cands {
		if meanElementHeight(c.BT) >= 0.75*med {
			kept = append(kept, c)
		}
	}
	if len(kept) > 0 {
		cands = kept
	}
	counts := map[*BlockText]int{}
	for _, c := range cands {
		counts[c.BT]++
	}
	best, bestN := (*BlockText)(nil), 0
	for _, c := range cands {
		n := counts[c.BT]
		switch {
		case best == nil, n > bestN,
			// Equal match counts: the wordier block is the better
			// description candidate.
			n == bestN && len(c.BT.Text) > len(best.Text):
			best, bestN = c.BT, n
		}
	}
	var out []Candidate
	for _, c := range cands {
		if c.BT == best {
			out = append(out, c)
		}
	}
	return out
}
