package extract

import (
	"strings"
	"testing"

	"vs2/internal/colorlab"
	"vs2/internal/doc"
	"vs2/internal/geom"
	"vs2/internal/pattern"
	"vs2/internal/segment"
)

// poster builds a synthetic event poster with a big headline, an organizer
// line, a time/place block, and a decoy organizer mention buried in the
// fine print.
func poster() *doc.Document {
	d := &doc.Document{ID: "poster", Width: 400, Height: 600, Background: colorlab.White}
	id := 0
	add := func(x, y, fontH float64, color colorlab.RGB, words ...string) {
		cx := x
		for _, w := range words {
			width := float64(len(w)) * fontH * 0.55
			d.Elements = append(d.Elements, doc.Element{
				ID: id, Kind: doc.TextElement, Text: w,
				Box:      geom.Rect{X: cx, Y: y, W: width, H: fontH},
				Color:    color,
				FontSize: fontH, Line: int(y),
			})
			id++
			cx += width + fontH*0.5
		}
	}
	// Headline (big type — an interest point).
	add(30, 30, 30, colorlab.DarkNavy, "Summer", "Jazz", "Night")
	// Organizer line right under the headline.
	add(30, 80, 16, colorlab.Burgundy, "presented", "by", "Riverside", "Jazz", "Society")
	// Time/place block.
	add(30, 220, 14, colorlab.Black, "Saturday", "June", "14,", "7:30", "PM")
	add(30, 250, 14, colorlab.Black, "450", "Maple", "Ave,", "Columbus,", "OH")
	// Fine print with a decoy person far from any interest point.
	add(30, 520, 9, colorlab.Gray, "flyer", "design", "donated", "by", "Maria", "Chen")
	return d
}

func segmentPoster(t *testing.T, d *doc.Document) []*doc.Node {
	t.Helper()
	blocks := segment.New(segment.Options{}).Blocks(d)
	if len(blocks) < 3 {
		t.Fatalf("poster under-segmented: %d blocks", len(blocks))
	}
	return blocks
}

func byEntity(ex []Extraction) map[string]Extraction {
	out := map[string]Extraction{}
	for _, e := range ex {
		out[e.Entity] = e
	}
	return out
}

func TestBlockTextRoundTrip(t *testing.T) {
	d := poster()
	block := &doc.Node{Box: d.Bounds(), Elements: []int{0, 1, 2}}
	bt := NewBlockText(d, block)
	if bt.Text != "Summer Jazz Night" {
		t.Errorf("block text = %q", bt.Text)
	}
	// BoxFor the word "Jazz" (offset 7..11).
	lo := strings.Index(bt.Text, "Jazz")
	box := bt.BoxFor(d, lo, lo+4)
	if box.Empty() || !box.Intersects(d.Elements[1].Box) {
		t.Errorf("BoxFor = %v", box)
	}
	ids := bt.ElementsFor(lo, lo+4)
	if len(ids) != 1 || ids[0] != 1 {
		t.Errorf("ElementsFor = %v", ids)
	}
	ctx := bt.ContextWords(lo, lo+4, 100)
	if len(ctx) == 0 {
		t.Error("empty context")
	}
}

func TestSearchFindsCandidatesInBlocks(t *testing.T) {
	d := poster()
	blocks := segmentPoster(t, d)
	ex := New(Options{})
	cands := ex.Search(d, blocks, pattern.EventPatterns())
	if len(cands[pattern.EventTime]) == 0 {
		t.Error("no EventTime candidates")
	}
	if len(cands[pattern.EventOrganizer]) == 0 {
		t.Error("no EventOrganizer candidates")
	}
	// The decoy should also produce an organizer candidate — that is the
	// disambiguation's job to reject.
	if len(cands[pattern.EventOrganizer]) < 2 {
		t.Log("decoy did not produce a second candidate; disambiguation path untested")
	}
}

func TestExtractEndToEnd(t *testing.T) {
	d := poster()
	blocks := segmentPoster(t, d)
	got := byEntity(New(Options{Weights: VisuallyOrnate}).Extract(d, blocks, pattern.EventPatterns()))

	if e, ok := got[pattern.EventTime]; !ok ||
		(!strings.Contains(e.Text, "7:30") && !strings.Contains(e.Text, "June")) {
		t.Errorf("EventTime = %+v", got[pattern.EventTime])
	}
	if e, ok := got[pattern.EventPlace]; !ok || !strings.Contains(e.Text, "Maple") {
		t.Errorf("EventPlace = %+v", got[pattern.EventPlace])
	}
	org, ok := got[pattern.EventOrganizer]
	if !ok {
		t.Fatal("no organizer extracted")
	}
	if !strings.Contains(org.Text, "Riverside") && !strings.Contains(org.Text, "Jazz Society") {
		t.Errorf("organizer = %q (decoy won?)", org.Text)
	}
}

func TestDisambiguationBeatsFirstMatch(t *testing.T) {
	// Force the decoy to appear first in reading order by placing it high:
	// swap the layout so the fine print precedes the real organizer.
	d := &doc.Document{ID: "decoy", Width: 400, Height: 600, Background: colorlab.White}
	id := 0
	add := func(x, y, fontH float64, color colorlab.RGB, words ...string) {
		cx := x
		for _, w := range words {
			width := float64(len(w)) * fontH * 0.55
			d.Elements = append(d.Elements, doc.Element{
				ID: id, Kind: doc.TextElement, Text: w,
				Box:   geom.Rect{X: cx, Y: y, W: width, H: fontH},
				Color: color, FontSize: fontH, Line: int(y),
			})
			id++
			cx += width + fontH*0.5
		}
	}
	add(30, 30, 9, colorlab.Gray, "photo", "credit", "Maria", "Chen") // decoy first
	add(30, 200, 34, colorlab.DarkNavy, "Winter", "Gala")             // interest point
	add(30, 260, 16, colorlab.Burgundy, "hosted", "by", "Kevin", "Walsh")

	blocks := segment.New(segment.Options{}).Blocks(d)
	multi := byEntity(New(Options{Weights: VisuallyOrnate}).Extract(d, blocks, pattern.EventPatterns()))
	first := byEntity(New(Options{Disambiguation: None}).Extract(d, blocks, pattern.EventPatterns()))

	m, ok1 := multi[pattern.EventOrganizer]
	f, ok2 := first[pattern.EventOrganizer]
	if !ok1 || !ok2 {
		t.Fatalf("organizer missing: multi=%v first=%v", ok1, ok2)
	}
	if !strings.Contains(m.Text, "Kevin Walsh") {
		t.Errorf("multimodal picked %q, want Kevin Walsh", m.Text)
	}
	if strings.Contains(f.Text, "Kevin Walsh") {
		t.Logf("first-match baseline also got it right (%q); decoy order insufficient", f.Text)
	}
}

func TestInterestPoints(t *testing.T) {
	d := poster()
	blocks := segmentPoster(t, d)
	points := interestPoints(d, blocks, sharedLexicon)
	if len(points) == 0 {
		t.Fatal("no interest points")
	}
	if len(points) > len(blocks) {
		t.Error("more interest points than blocks")
	}
	// The headline block (tallest) must be on the Pareto front.
	foundHeadline := false
	for _, p := range points {
		if p.Block.Box.H >= 28 && p.Block.Box.Y < 120 {
			foundHeadline = true
		}
	}
	if !foundHeadline {
		for _, p := range points {
			t.Logf("interest point %v", p.Block.Box)
		}
		t.Error("headline block not an interest point")
	}
}

func TestLeskStrategyRuns(t *testing.T) {
	d := poster()
	blocks := segmentPoster(t, d)
	got := byEntity(New(Options{Disambiguation: Lesk}).Extract(d, blocks, pattern.EventPatterns()))
	if _, ok := got[pattern.EventTime]; !ok {
		t.Error("Lesk strategy lost EventTime")
	}
}

func TestExtractAllRanksBestFirst(t *testing.T) {
	d := poster()
	blocks := segmentPoster(t, d)
	all := New(Options{Weights: VisuallyOrnate}).ExtractAll(d, blocks, pattern.EventPatterns())
	orgs := all[pattern.EventOrganizer]
	if len(orgs) == 0 {
		t.Fatal("no organizer candidates")
	}
	single := byEntity(New(Options{Weights: VisuallyOrnate}).Extract(d, blocks, pattern.EventPatterns()))
	if orgs[0].Text != single[pattern.EventOrganizer].Text {
		t.Errorf("ExtractAll[0] = %q, Extract = %q", orgs[0].Text, single[pattern.EventOrganizer].Text)
	}
}

func TestWeightsProfiles(t *testing.T) {
	for _, w := range []Weights{Balanced, VisuallyOrnate, Verbose} {
		sum := w.Alpha + w.Beta + w.Gamma + w.Nu
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("weights %+v do not sum to 1", w)
		}
	}
}

func TestEmptyDocument(t *testing.T) {
	d := &doc.Document{ID: "empty", Width: 100, Height: 100}
	blocks := segment.New(segment.Options{}).Blocks(d)
	got := New(Options{}).Extract(d, blocks, pattern.EventPatterns())
	if len(got) != 0 {
		t.Errorf("extractions from empty doc: %v", got)
	}
}

func TestDensestBlockExcludesFinePrint(t *testing.T) {
	d := poster()
	// Add a 7pt fine-print block plus its pseudo-matches.
	blocks := segmentPoster(t, d)
	ex := New(Options{})
	cands := ex.Search(d, blocks, pattern.EventPatterns())
	descCands := cands[pattern.EventDescription]
	if len(descCands) == 0 {
		t.Skip("no description candidates on this layout")
	}
	kept := densestBlock(d, descCands)
	if len(kept) == 0 {
		t.Fatal("densestBlock dropped everything")
	}
	// All kept candidates share one block.
	for _, c := range kept[1:] {
		if c.BT != kept[0].BT {
			t.Error("densestBlock returned candidates from several blocks")
		}
	}
	// The fine-print block (9pt, median ~14) must not be chosen.
	if h := meanElementHeight(kept[0].BT); h < 0.75*medianTextHeight(d) {
		t.Errorf("fine-print block selected (h=%v)", h)
	}
}

func TestDistanceInsideInterestPointIsZero(t *testing.T) {
	d := poster()
	blocks := segmentPoster(t, d)
	points := interestPoints(d, blocks, sharedLexicon)
	if len(points) == 0 {
		t.Skip("no interest points")
	}
	ex := New(Options{})
	// A candidate anchored in an interest-point block has distance 0.
	bt := NewBlockText(d, points[0].Block)
	c := Candidate{BT: bt, Box: points[0].Block.Box}
	if got := ex.distanceToNearest(d, c, points); got != 0 {
		t.Errorf("inside-interest distance = %v", got)
	}
}
