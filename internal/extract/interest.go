package extract

import (
	"context"
	"sort"

	"vs2/internal/doc"
	"vs2/internal/embed"
	"vs2/internal/stats"
)

// InterestPoint is a logical block selected as visually and/or semantically
// significant (Section 5.3.1). Matches near interest points win conflicts.
type InterestPoint struct {
	Block *doc.Node
	// Vec is the embedding centroid of the block's text.
	Vec []float64
	// WordDensity is the block's distance-normalised word density.
	WordDensity float64
}

// InterestPoints exposes the interest-point selection for callers that
// want to inspect or visualise it (cmd/vs2's Fig. 6-style dump).
func InterestPoints(d *doc.Document, blocks []*doc.Node, e embed.Embedder) []InterestPoint {
	return interestPoints(d, blocks, e)
}

// interestPoints solves the optimal-subset-selection problem of
// Section 5.3.1 by non-dominated sorting of the logical blocks under three
// objectives, returning the first-order Pareto front:
//
//  1. maximise the height of the block's bounding box (large type marks
//     significant areas);
//  2. maximise semantic coherence — the sum of pairwise cosine similarities
//     between the block's text elements;
//  3. minimise the average word density (sparse, large blocks highlight
//     important content).
func interestPoints(d *doc.Document, blocks []*doc.Node, e embed.Embedder) []InterestPoint {
	out, _ := interestPointsCtx(context.Background(), d, blocks, e)
	return out
}

// interestPointsCtx is interestPoints under cooperative cancellation; ctx
// is checked before each block's embedding centroid and coherence are
// computed (the O(blocks·words²) part of selection).
func interestPointsCtx(ctx context.Context, d *doc.Document, blocks []*doc.Node, e embed.Embedder) ([]InterestPoint, error) {
	if len(blocks) == 0 {
		return nil, nil
	}
	// Only textual areas qualify: a photo block is tall and word-sparse by
	// construction and would Pareto-dominate every headline, yet carries no
	// semantics for a match to be near.
	var textBlocks []*doc.Node
	for _, b := range blocks {
		if hasTextElements(d, b) {
			textBlocks = append(textBlocks, b)
		}
	}
	blocks = textBlocks
	if len(blocks) == 0 {
		return nil, nil
	}
	objectives := make([][]float64, len(blocks))
	vecs := make([][]float64, len(blocks))
	for i, b := range blocks {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		vecs[i] = embed.TextVec(e, b.Text(d))
		objectives[i] = []float64{
			-b.Box.H,                    // maximise height
			-semanticCoherence(d, b, e), // maximise coherence
			b.WordDensity(d),            // minimise density
		}
	}
	front := stats.ParetoFront(objectives)
	// Prominence filter: "larger font size is typically used to highlight
	// significant areas" — a block set in type smaller than the document's
	// median cannot be an interest point however well it scores on the
	// remaining objectives (fine print survives Pareto fronts otherwise,
	// because three noisy objectives rarely all agree).
	med := medianElementHeight(d)
	out := make([]InterestPoint, 0, len(front))
	for _, i := range front {
		if blockMeanHeight(d, blocks[i]) < 0.9*med {
			continue
		}
		out = append(out, InterestPoint{
			Block:       blocks[i],
			Vec:         vecs[i],
			WordDensity: blocks[i].WordDensity(d),
		})
	}
	if len(out) == 0 { // degenerate: keep the unfiltered front
		for _, i := range front {
			out = append(out, InterestPoint{
				Block:       blocks[i],
				Vec:         vecs[i],
				WordDensity: blocks[i].WordDensity(d),
			})
		}
	}
	return out, nil
}

func hasTextElements(d *doc.Document, b *doc.Node) bool {
	for _, id := range b.Elements {
		if d.Elements[id].Kind == doc.TextElement {
			return true
		}
	}
	return false
}

func medianElementHeight(d *doc.Document) float64 {
	var hs []float64
	for i := range d.Elements {
		if d.Elements[i].Kind == doc.TextElement {
			hs = append(hs, d.Elements[i].Box.H)
		}
	}
	if len(hs) == 0 {
		return 0
	}
	sort.Float64s(hs)
	return hs[len(hs)/2]
}

func blockMeanHeight(d *doc.Document, b *doc.Node) float64 {
	var sum float64
	n := 0
	for _, id := range b.Elements {
		if d.Elements[id].Kind == doc.TextElement {
			sum += d.Elements[id].Box.H
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// semanticCoherence is the pairwise cosine similarity between the block's
// text elements (objective 2 of Section 5.3.1), normalised by the pair
// count. The paper states the raw sum; normalising by pairs keeps wordy
// but incoherent blocks (fine print) from dominating the objective purely
// by volume, which would drag junk areas onto the Pareto front.
func semanticCoherence(d *doc.Document, b *doc.Node, e embed.Embedder) float64 {
	var words []string
	for _, id := range b.Elements {
		el := &d.Elements[id]
		if el.Kind == doc.TextElement && el.Text != "" {
			words = append(words, el.Text)
		}
	}
	if len(words) < 2 {
		return 0
	}
	// Cap the pair count for very wordy blocks: coherence saturates and the
	// O(n²) loop is wasted effort beyond a sample.
	const maxWords = 40
	if len(words) > maxWords {
		words = words[:maxWords]
	}
	vecs := make([][]float64, len(words))
	for i, w := range words {
		vecs[i] = e.Vec(w)
	}
	var sum float64
	pairs := 0
	for i := range vecs {
		for j := i + 1; j < len(vecs); j++ {
			sum += embed.Cosine(vecs[i], vecs[j])
			pairs++
		}
	}
	return sum / float64(pairs)
}
