package extract

import (
	"strings"

	"vs2/internal/doc"
	"vs2/internal/geom"
	"vs2/internal/nlp"
)

// BlockText is the transcription of one logical block together with the
// mapping from character offsets back to the atomic elements that produced
// them — the bridge between a textual pattern match and its visual area,
// which the multimodal disambiguation of Section 5.3 needs.
type BlockText struct {
	Block *doc.Node
	Text  string
	Ann   *nlp.Annotated
	// spans[i] is the byte range of element elems[i] in Text.
	spans [][2]int
	elems []int
	// meanH is the mean text-element height (type size) of the block.
	meanH float64
}

// NewBlockText transcribes the block in reading order (mirroring
// doc.Transcript: spaces within a line band, newlines between bands) and
// annotates the result with the NLP pipeline.
func NewBlockText(d *doc.Document, block *doc.Node) *BlockText {
	var textual []int
	for _, id := range block.Elements {
		if d.Elements[id].Kind == doc.TextElement && d.Elements[id].Text != "" {
			textual = append(textual, id)
		}
	}
	ordered := d.ReadingOrder(textual)
	bt := &BlockText{Block: block}
	var sb strings.Builder
	var prev geom.Rect
	for i, id := range ordered {
		e := &d.Elements[id]
		if i > 0 {
			if sameLineBand(prev, e.Box) {
				sb.WriteByte(' ')
			} else {
				sb.WriteByte('\n')
			}
		}
		start := sb.Len()
		sb.WriteString(e.Text)
		bt.spans = append(bt.spans, [2]int{start, sb.Len()})
		bt.elems = append(bt.elems, id)
		prev = e.Box
	}
	bt.Text = sb.String()
	bt.Ann = nlp.Annotate(bt.Text)
	if len(bt.elems) > 0 {
		var sum float64
		for _, id := range bt.elems {
			sum += d.Elements[id].Box.H
		}
		bt.meanH = sum / float64(len(bt.elems))
	}
	return bt
}

func sameLineBand(a, b geom.Rect) bool {
	top := a.Y
	if b.Y > top {
		top = b.Y
	}
	bot := a.MaxY()
	if b.MaxY() < bot {
		bot = b.MaxY()
	}
	overlap := bot - top
	minH := a.H
	if b.H < minH {
		minH = b.H
	}
	return overlap > minH/2
}

// BoxFor returns the union bounding box of the elements whose text overlaps
// the byte range [lo, hi) of the transcription. An empty box means the
// range covered no element (should not happen for real matches).
func (bt *BlockText) BoxFor(d *doc.Document, lo, hi int) geom.Rect {
	var out geom.Rect
	for i, span := range bt.spans {
		if span[0] < hi && span[1] > lo {
			out = out.Union(d.Elements[bt.elems[i]].Box)
		}
	}
	return out
}

// ElementsFor returns the element IDs overlapping the byte range.
func (bt *BlockText) ElementsFor(lo, hi int) []int {
	var out []int
	for i, span := range bt.spans {
		if span[0] < hi && span[1] > lo {
			out = append(out, bt.elems[i])
		}
	}
	return out
}

// ContextWords returns the normalised stems within a window of the byte
// range — the candidate context the Lesk baseline ranks with.
func (bt *BlockText) ContextWords(lo, hi, window int) []string {
	start := lo - window
	if start < 0 {
		start = 0
	}
	end := hi + window
	if end > len(bt.Text) {
		end = len(bt.Text)
	}
	return nlp.Normalize(bt.Text[start:end])
}

// meanElementHeight returns the mean height of the block's text elements —
// its effective type size.
func meanElementHeight(bt *BlockText) float64 {
	if bt.meanH == 0 {
		return bt.Block.Box.H
	}
	return bt.meanH
}
