package nlp

import (
	"strings"
	"unicode"
)

// TagPOS assigns a Penn-Treebank-style part-of-speech tag to each token in
// place. The tagger is a three-stage rule system in the spirit of a
// transformation-based (Brill) tagger:
//
//  1. closed-class and frequent-word lexicon lookup;
//  2. orthographic rules (numbers → CD, capitalised mid-phrase words → NNP,
//     symbols → SYM);
//  3. suffix heuristics and a default of NN, followed by a contextual
//     repair pass (e.g. a VBN after a determiner is re-tagged JJ).
func TagPOS(tokens []Token) {
	for i := range tokens {
		tokens[i].POS = tagOne(tokens, i)
	}
	repair(tokens)
}

func tagOne(tokens []Token, i int) string {
	t := tokens[i]
	if tag, ok := posLexicon[t.Norm]; ok {
		// Capitalised lexicon words at non-initial positions are usually
		// proper-noun usages ("May Gallery", "Bill Evans") — but only when
		// the lexicon tag is an open-class one.
		open := strings.HasPrefix(tag, "NN") || tag == "JJ" ||
			(i > 0 && tokens[i-1].POS == "DT") // "the May Gallery"
		if isCapitalized(t.Text) && i > 0 && !isSentenceStart(tokens, i) &&
			open && looksNamey(tokens, i) {
			return "NNP"
		}
		return tag
	}
	if isNumberLike(t.Text) {
		return "CD"
	}
	if isPunct(t.Text) {
		return punctTag(t.Text)
	}
	if strings.ContainsRune(t.Text, '@') {
		return "NN" // email address
	}
	if isCapitalized(t.Text) {
		return "NNP"
	}
	return suffixTag(t.Norm)
}

func isSentenceStart(tokens []Token, i int) bool {
	if i == 0 {
		return true
	}
	p := tokens[i-1].Text
	return p == "." || p == "!" || p == "?" || p == ":"
}

// looksNamey reports whether the token at i sits in a run of capitalised
// words (a likely proper-name context).
func looksNamey(tokens []Token, i int) bool {
	if i > 0 && isCapitalized(tokens[i-1].Text) {
		return true
	}
	return i+1 < len(tokens) && isCapitalized(tokens[i+1].Text)
}

func isCapitalized(s string) bool {
	for _, r := range s {
		return unicode.IsUpper(r)
	}
	return false
}

// isNumberLike accepts integers, decimals, money, ordinals, phone-shaped
// digit strings and mixed tokens that are mostly digits ("2,465", "$1200",
// "3rd", "4/15", "614-555-0137").
func isNumberLike(s string) bool {
	digits, letters := 0, 0
	for _, r := range s {
		switch {
		case unicode.IsDigit(r):
			digits++
		case unicode.IsLetter(r):
			letters++
		}
	}
	if digits == 0 {
		return false
	}
	if letters == 0 {
		return true
	}
	// ordinals and unit-glued numbers: 3rd, 1st, 1200sf
	return digits >= letters
}

func isPunct(s string) bool {
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			return false
		}
	}
	return true
}

func punctTag(s string) string {
	switch s {
	case ".", "!", "?":
		return "."
	case ",":
		return ","
	case ":", ";":
		return ":"
	default:
		return "SYM"
	}
}

func suffixTag(w string) string {
	switch {
	case strings.HasSuffix(w, "ing"):
		return "VBG"
	case strings.HasSuffix(w, "ed"):
		return "VBN"
	case strings.HasSuffix(w, "ly"):
		return "RB"
	case strings.HasSuffix(w, "ous"), strings.HasSuffix(w, "ful"),
		strings.HasSuffix(w, "ive"), strings.HasSuffix(w, "able"),
		strings.HasSuffix(w, "al"), strings.HasSuffix(w, "ic"):
		return "JJ"
	case strings.HasSuffix(w, "tion"), strings.HasSuffix(w, "ment"),
		strings.HasSuffix(w, "ness"), strings.HasSuffix(w, "ship"),
		strings.HasSuffix(w, "ity"):
		return "NN"
	case strings.HasSuffix(w, "s"):
		return "NNS"
	default:
		return "NN"
	}
}

// repair applies contextual fix-up rules after the initial pass.
func repair(tokens []Token) {
	for i := range tokens {
		switch {
		// DT + VBN + NN: "the renovated kitchen" — participle as modifier.
		case tokens[i].POS == "VBN" && i > 0 && tokens[i-1].POS == "DT":
			tokens[i].POS = "JJ"
		// TO + anything verb-ish: infinitive base form.
		case i > 0 && tokens[i-1].POS == "TO" &&
			(strings.HasPrefix(tokens[i].POS, "NN") && !isCapitalized(tokens[i].Text)):
			if _, inLex := posLexicon[tokens[i].Norm]; !inLex {
				tokens[i].POS = "VB"
			}
		// MD + NN (unknown word after modal is a verb): "will premiere".
		case i > 0 && tokens[i-1].POS == "MD" && tokens[i].POS == "NN":
			tokens[i].POS = "VB"
		}
	}
}

// Annotated bundles a text with its fully annotated token stream, split
// into sentences, ready for chunking, NER and pattern matching.
type Annotated struct {
	Text      string
	Tokens    []Token
	Sentences [][]Token // views into Tokens
}

// Annotate runs the full pipeline: tokenise, tag, recognise entities
// (NER + TIMEX), and split sentences.
func Annotate(text string) *Annotated {
	tokens := Tokenize(text)
	TagPOS(tokens)
	TagEntities(tokens)
	return &Annotated{
		Text:      text,
		Tokens:    tokens,
		Sentences: SplitSentences(tokens),
	}
}
