package nlp

import "testing"

func chunksOf(text string) ([]Token, []Chunk) {
	toks := Tokenize(text)
	TagPOS(toks)
	TagEntities(toks)
	return toks, ChunkSentence(toks)
}

func findChunk(toks []Token, chunks []Chunk, label, text string) *Chunk {
	for i := range chunks {
		if chunks[i].Label == label && chunks[i].Text(toks) == text {
			return &chunks[i]
		}
	}
	return nil
}

func TestNPChunking(t *testing.T) {
	toks, chunks := chunksOf("the annual jazz festival")
	if c := findChunk(toks, chunks, "NP", "the annual jazz festival"); c == nil {
		t.Errorf("NP not found in %v", chunks)
	}
}

func TestVPChunking(t *testing.T) {
	toks, chunks := chunksOf("will be hosted")
	if c := findChunk(toks, chunks, "VP", "will be hosted"); c == nil {
		t.Errorf("VP not found: %v", chunks)
	}
}

func TestPPChunking(t *testing.T) {
	toks, chunks := chunksOf("at the hall")
	if c := findChunk(toks, chunks, "PP", "at the hall"); c == nil {
		t.Errorf("PP not found: %v", chunks)
	}
}

func TestChunksPartitionSentence(t *testing.T) {
	toks, chunks := chunksOf("The Riverside Jazz Society presents a special evening of live music")
	covered := 0
	prevEnd := 0
	for _, c := range chunks {
		if c.Start != prevEnd {
			t.Errorf("gap/overlap at chunk %v", c)
		}
		covered += c.End - c.Start
		prevEnd = c.End
	}
	if covered != len(toks) {
		t.Errorf("chunks cover %d of %d tokens", covered, len(toks))
	}
}

func TestHasModifier(t *testing.T) {
	toks, chunks := chunksOf("4 beds")
	np := findChunk(toks, chunks, "NP", "4 beds")
	if np == nil || !np.HasModifier(toks) {
		t.Error("numeric modifier not detected")
	}
	toks2, chunks2 := chunksOf("beds")
	np2 := findChunk(toks2, chunks2, "NP", "beds")
	if np2 == nil || np2.HasModifier(toks2) {
		t.Error("bare noun should have no modifier")
	}
}

func TestFindSVO(t *testing.T) {
	toks, chunks := chunksOf("The Jazz Society presents a special evening")
	svos := FindSVO(toks, chunks)
	if len(svos) != 1 {
		t.Fatalf("SVOs = %v", svos)
	}
	if svos[0].Verb.Text(toks) != "presents" {
		t.Errorf("verb = %q", svos[0].Verb.Text(toks))
	}
	if svos[0].Object.Text(toks) != "a special evening" {
		t.Errorf("object = %q", svos[0].Object.Text(toks))
	}
	// No SVO in a verbless fragment.
	toksB, chunksB := chunksOf("Friday night live music")
	if got := FindSVO(toksB, chunksB); len(got) != 0 {
		t.Errorf("fragment SVOs = %v", got)
	}
}

func TestParseTree(t *testing.T) {
	toks := Tokenize("Kevin Walsh hosts the gala in Columbus")
	TagPOS(toks)
	TagEntities(toks)
	tree := ParseTree(toks)
	if tree.Label != "S" || len(tree.Children) == 0 {
		t.Fatalf("tree = %+v", tree)
	}
	// The tree must contain NE:PERSON and VS:captain annotations.
	var foundPerson, foundCaptain, foundHyp bool
	var walk func(*ParseNode)
	walk = func(n *ParseNode) {
		switch n.Label {
		case "NE:PERSON":
			foundPerson = true
		case "VS:captain":
			foundCaptain = true
		case "HYP:gathering":
			foundHyp = true
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(tree)
	if !foundPerson {
		t.Error("NE:PERSON annotation missing from parse tree")
	}
	if !foundCaptain {
		t.Error("VS:captain annotation missing")
	}
	if !foundHyp {
		t.Error("HYP:gathering (gala) annotation missing")
	}
}

func TestHypernyms(t *testing.T) {
	if !HasHypernym("acres", "measure") {
		t.Error("acres should reach measure")
	}
	if !HasHypernym("bedroom", "structure") {
		t.Error("bedroom should reach structure")
	}
	if !HasHypernym("lot", "estate") {
		t.Error("lot should reach estate")
	}
	if HasHypernym("jazz", "measure") {
		t.Error("jazz has no measure sense")
	}
	chain := HypernymSenses("acre")
	if len(chain) < 2 || chain[0] != "area_unit" {
		t.Errorf("acre chain = %v", chain)
	}
	if HypernymSenses("zzzz") != nil {
		t.Error("unknown noun should have nil chain")
	}
}

func TestVerbSenses(t *testing.T) {
	for _, v := range []string{"hosts", "hosted", "hosting", "host"} {
		if !HasVerbSense(v, "captain") {
			t.Errorf("%q lacks captain sense", v)
		}
	}
	if !HasVerbSense("presents", "reflexive_appearance") {
		t.Error("presents lacks reflexive_appearance")
	}
	if !HasVerbSense("organized", "create") {
		t.Error("organized lacks create")
	}
	if !HasVerbSense("led", "captain") {
		t.Error("irregular led lacks captain")
	}
	if HasVerbSense("eat", "captain") {
		t.Error("eat should not be captain")
	}
	if !HasOrganizerSense("sponsored") {
		t.Error("sponsored should satisfy organizer senses")
	}
	if HasOrganizerSense("rented") {
		t.Error("rented should not satisfy organizer senses")
	}
}

func TestLesk(t *testing.T) {
	// Context mentioning musicians should match "concert" better than "tax".
	ctx1 := []string{"musicians", "public", "performance"}
	ctx2 := []string{"income", "deduction", "filing"}
	if LeskScore("concert", ctx1) <= LeskScore("concert", ctx2) {
		t.Error("concert gloss should prefer music context")
	}
	best := LeskBest("broker", [][]string{
		{"music", "stage", "band"},
		{"property", "sales", "negotiates"},
	})
	if best != 1 {
		t.Errorf("LeskBest = %d, want 1", best)
	}
	if LeskBest("broker", nil) != -1 {
		t.Error("LeskBest of nothing should be -1")
	}
	if LeskScore("nonexistentword", ctx1) != 0 {
		t.Error("unknown concept should score 0")
	}
}
