package nlp

// Lesk implements the simplified/adapted Lesk gloss-overlap disambiguator
// [3] that the paper uses as the text-only conflict-resolution baseline
// (Section 6.4): when a named-entity pattern matches several candidate
// spans, the baseline ranks candidates by the overlap between each
// candidate's textual context and the gloss of the entity's head concept.

// LeskScore returns the bag-of-stems overlap between a candidate context
// and the gloss of the given concept word. Stopwords are removed first.
func LeskScore(concept string, context []string) int {
	gloss := Gloss(concept)
	if gloss == "" {
		return 0
	}
	glossSet := map[string]bool{}
	for _, s := range Normalize(gloss) {
		glossSet[s] = true
	}
	seen := map[string]bool{}
	score := 0
	for _, w := range context {
		s := Stem(w)
		if glossSet[s] && !seen[s] {
			score++
			seen[s] = true
		}
	}
	return score
}

// LeskBest picks the index of the candidate context with the highest
// gloss overlap against the concept; ties resolve to the earliest
// candidate (document order), mirroring a first-match text baseline.
// Returns -1 for no candidates.
func LeskBest(concept string, contexts [][]string) int {
	best, bestScore := -1, -1
	for i, ctx := range contexts {
		if s := LeskScore(concept, ctx); s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}
