package nlp

import "strings"

// The verb-sense lexicon stands in for VerbNet [38]. Table 3 of the paper
// defines the Event Organizer pattern as "verb phrase with captain /
// create / reflexive_appearance verb-senses": verbs of leading an
// undertaking (captain), of bringing something into existence (create), and
// of presenting oneself or one's work to an audience
// (reflexive_appearance).

var verbSenses = map[string][]string{
	// captain-29.8: lead / direct an undertaking
	"host":       {"captain"},
	"chair":      {"captain"},
	"lead":       {"captain"},
	"direct":     {"captain"},
	"head":       {"captain"},
	"organize":   {"captain", "create"},
	"coordinate": {"captain"},
	"manage":     {"captain"},
	"run":        {"captain"},
	"moderate":   {"captain"},
	"sponsor":    {"captain"},
	"captain":    {"captain"},

	// create-26.4: bring into existence
	"create":    {"create"},
	"produce":   {"create"},
	"found":     {"create"},
	"establish": {"create"},
	"arrange":   {"create"},
	"develop":   {"create"},
	"curate":    {"create"},
	"design":    {"create"},

	// reflexive_appearance-48.1.2: present (oneself / one's work)
	"present":  {"reflexive_appearance"},
	"feature":  {"reflexive_appearance"},
	"appear":   {"reflexive_appearance"},
	"perform":  {"reflexive_appearance"},
	"showcase": {"reflexive_appearance"},
	"premiere": {"reflexive_appearance"},
	"exhibit":  {"reflexive_appearance"},
	"display":  {"reflexive_appearance"},
	"bring":    {"reflexive_appearance"},
	"welcome":  {"reflexive_appearance"},
	"invite":   {"reflexive_appearance"},

	// other senses used by the description patterns
	"include": {"inclusion"},
	"offer":   {"transfer"},
	"give":    {"transfer"},
	"provide": {"transfer"},
	"sell":    {"transfer"},
	"lease":   {"transfer"},
	"rent":    {"transfer"},
	"expect":  {"cognition"},
	"learn":   {"cognition"},
	"enjoy":   {"experience"},
	"attend":  {"attendance"},
	"join":    {"attendance"},
	"meet":    {"attendance"},
	"visit":   {"attendance"},
	"start":   {"begin"},
	"begin":   {"begin"},
	"open":    {"begin"},
	"end":     {"finish"},
	"close":   {"finish"},
	"locate":  {"placement"},
	"situate": {"placement"},
}

// lemmaOf reduces a verb surface form to a lexicon lemma: strips -s, -ed,
// -ing with doubling repair, plus a few irregulars.
func lemmaOf(verb string) string {
	w := strings.ToLower(verb)
	irregular := map[string]string{
		"ran": "run", "led": "lead", "brought": "bring", "gave": "give",
		"met": "meet", "began": "begin", "sold": "sell", "held": "hold",
		"found": "found", "featured": "feature", "presented": "present",
	}
	if l, ok := irregular[w]; ok {
		return l
	}
	if _, ok := verbSenses[w]; ok {
		return w
	}
	s := Stem(w)
	if _, ok := verbSenses[s]; ok {
		return s
	}
	// "-es"/"-e" mismatch repair: "premieres" -> "premiere".
	if strings.HasSuffix(w, "es") {
		if _, ok := verbSenses[w[:len(w)-1]]; ok {
			return w[:len(w)-1]
		}
	}
	if _, ok := verbSenses[s+"e"]; ok { // "organiz" -> "organize"
		return s + "e"
	}
	return s
}

// VerbSenses returns the VerbNet-style classes of a verb in any inflection,
// or nil when unknown.
func VerbSenses(verb string) []string {
	return verbSenses[lemmaOf(verb)]
}

// HasVerbSense reports whether the verb (any inflection) belongs to the
// given class.
func HasVerbSense(verb, sense string) bool {
	for _, s := range VerbSenses(verb) {
		if s == sense {
			return true
		}
	}
	return false
}

// OrganizerSenses is the Table 3 sense set for the Event Organizer pattern.
var OrganizerSenses = []string{"captain", "create", "reflexive_appearance"}

// HasOrganizerSense reports whether the verb carries any of the Table 3
// organizer senses.
func HasOrganizerSense(verb string) bool {
	for _, s := range OrganizerSenses {
		if HasVerbSense(verb, s) {
			return true
		}
	}
	return false
}
