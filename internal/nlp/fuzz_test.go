package nlp

import (
	"testing"
	"unicode/utf8"
)

// FuzzAnnotate drives the whole NLP pipeline with arbitrary input: it must
// never panic, token offsets must index the source text, and sentence
// views must tile the token stream.
func FuzzAnnotate(f *testing.F) {
	seeds := []string{
		"",
		"Hello World",
		"Dr. Maria Chen hosts Jazz Night at 7:30 PM!",
		"450 Maple Ave, Columbus, OH 43210",
		"call (614)555-0137 or rsvp@club.org",
		"ALL CAPS HEADLINE 2019",
		"weird  \t spacing\n\nand unicode — em-dash … ©",
		"12/31/1999 11:59 PM $1,000,000.00",
		"((((((", "....", "a.b.c.d.e",
		"日本語テキスト mixed with English",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		if !utf8.ValidString(text) {
			t.Skip()
		}
		a := Annotate(text)
		total := 0
		for _, sent := range a.Sentences {
			total += len(sent)
		}
		if total != len(a.Tokens) {
			t.Fatalf("sentences cover %d of %d tokens", total, len(a.Tokens))
		}
		for _, tok := range a.Tokens {
			if tok.Start < 0 || tok.Start >= len(text)+1 {
				t.Fatalf("token %q offset %d out of range (len %d)", tok.Text, tok.Start, len(text))
			}
			if tok.POS == "" {
				t.Fatalf("token %q has no POS tag", tok.Text)
			}
		}
		// The downstream consumers must survive any annotation.
		for _, sent := range a.Sentences {
			ChunkSentence(sent)
			FindSVO(sent, ChunkSentence(sent))
			FindAddresses(sent)
			ParseTree(sent)
		}
	})
}

// FuzzStem checks the stemmer's basic contract on arbitrary strings.
func FuzzStem(f *testing.F) {
	for _, s := range []string{"", "a", "running", "cities", "glass", "sses", "ied"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, w string) {
		s := Stem(w)
		if len(s) > len(w)+1 { // "ies" -> "y" may shrink, never grow past +1
			t.Fatalf("Stem(%q) = %q grew", w, s)
		}
		// Idempotence is not guaranteed by Porter-style stemmers, but
		// stability under repetition within two iterations is.
		if Stem(Stem(s)) != Stem(s) {
			t.Fatalf("stem not stable: %q -> %q -> %q", w, s, Stem(s))
		}
	})
}
