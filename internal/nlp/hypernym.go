package nlp

import "strings"

// The hypernym tree stands in for WordNet [42]: every known noun maps to a
// chain of increasingly general senses. Table 4 of the paper uses the
// senses "measure", "structure" and "estate" to define the Property Size
// pattern; the holdout-corpus annotator attaches these senses to noun POS
// tags.

// hypernymParent maps a sense to its parent sense; chains terminate at
// "entity".
var hypernymParent = map[string]string{
	"measure":       "abstraction",
	"quantity":      "measure",
	"area_unit":     "measure",
	"linear_unit":   "measure",
	"structure":     "artifact",
	"building":      "structure",
	"room":          "structure",
	"housing":       "structure",
	"estate":        "possession",
	"property":      "estate",
	"land":          "estate",
	"possession":    "abstraction",
	"artifact":      "entity",
	"abstraction":   "entity",
	"person":        "entity",
	"organization":  "entity",
	"location":      "entity",
	"event":         "entity",
	"gathering":     "event",
	"performance":   "event",
	"communication": "abstraction",
	"document":      "communication",
	"money":         "possession",
	"time_period":   "abstraction",
}

// nounSense maps a noun stem to its most specific hypernym sense.
var nounSense = map[string]string{
	// measures
	"acre": "area_unit", "sqft": "area_unit", "sf": "area_unit",
	"foot": "linear_unit", "feet": "linear_unit", "ft": "linear_unit",
	"mile": "linear_unit", "meter": "linear_unit",
	"percent": "quantity", "dozen": "quantity", "amount": "quantity",
	"total": "quantity", "number": "quantity", "sum": "quantity",

	// structures
	"building": "building", "house": "housing", "home": "housing",
	"apartment": "housing", "condo": "housing", "office": "building",
	"warehouse": "building", "garage": "building", "barn": "building",
	"bedroom": "room", "bathroom": "room", "kitchen": "room",
	"basement": "room", "room": "room", "suite": "room", "floor": "room",
	"bed": "room", "bath": "room", "hall": "building", "storey": "room",
	"story": "room", "unit": "housing",

	// estate
	"property": "property", "land": "land", "lot": "land",
	"parcel": "land", "listing": "property", "premise": "property",
	"realty": "property", "estate": "estate",

	// people / orgs / places
	"broker": "person", "agent": "person", "owner": "person",
	"organizer": "person", "speaker": "person", "teacher": "person",
	"professor": "person", "host": "person", "guest": "person",
	"company": "organization", "university": "organization",
	"club": "organization", "society": "organization",
	"committee": "organization", "department": "organization",
	"city": "location", "venue": "location", "park": "location",
	"street": "location", "address": "location",

	// events
	"event": "gathering", "concert": "performance", "workshop": "gathering",
	"seminar": "gathering", "lecture": "communication", "talk": "communication",
	"class": "gathering", "festival": "gathering", "fair": "gathering",
	"gala": "gathering", "party": "gathering", "show": "performance",
	"recital": "performance", "screening": "performance",
	"conference": "gathering", "meetup": "gathering",

	// documents / money / time
	"form": "document", "flyer": "document", "poster": "document",
	"price": "money", "rent": "money", "fee": "money", "cost": "money",
	"income": "money", "tax": "money", "wage": "money", "refund": "money",
	"salary": "money", "deduction": "money",
	"year": "time_period", "month": "time_period", "week": "time_period",
	"day": "time_period", "hour": "time_period", "date": "time_period",
}

// HypernymSenses returns the full hypernym chain of a noun, most specific
// first, or nil for unknown nouns. The input may be inflected; the lookup
// falls back to the stem.
func HypernymSenses(noun string) []string {
	w := strings.ToLower(noun)
	sense, ok := nounSense[w]
	if !ok {
		sense, ok = nounSense[Stem(w)]
	}
	if !ok {
		return nil
	}
	chain := []string{sense}
	for cur := sense; ; {
		parent, ok := hypernymParent[cur]
		if !ok || parent == "entity" {
			break
		}
		chain = append(chain, parent)
		cur = parent
	}
	return chain
}

// HasHypernym reports whether the noun's hypernym chain passes through the
// given sense — e.g. HasHypernym("acres", "measure") is true. This is the
// Table 4 predicate "noun POS tags with senses measure / structure / estate
// in the hypernym tree".
func HasHypernym(noun, sense string) bool {
	for _, s := range HypernymSenses(noun) {
		if s == sense {
			return true
		}
	}
	return false
}
