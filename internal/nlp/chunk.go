package nlp

import "strings"

// Chunk is a shallow-parse phrase: a labelled, contiguous token span.
// Labels: NP (noun phrase), VP (verb phrase), PP (prepositional phrase),
// O (everything else).
type Chunk struct {
	Label string
	Start int // token index, inclusive
	End   int // token index, exclusive
}

// ChunkSentence performs regular-expression-over-tags chunking of one
// sentence:
//
//	NP: (DT)? (JJ|CD|VBN|PRP$)* (NN|NNS|NNP|NNPS|CD)+
//	VP: (MD)? (RB)* (VB|VBD|VBG|VBN|VBP|VBZ)+
//	PP: IN NP
func ChunkSentence(tokens []Token) []Chunk {
	var out []Chunk
	i := 0
	for i < len(tokens) {
		if c, next := matchNP(tokens, i); c != nil {
			out = append(out, *c)
			i = next
			continue
		}
		if c, next := matchVP(tokens, i); c != nil {
			out = append(out, *c)
			i = next
			continue
		}
		if tokens[i].POS == "IN" {
			if c, next := matchNP(tokens, i+1); c != nil {
				out = append(out, Chunk{Label: "PP", Start: i, End: c.End})
				i = next
				continue
			}
		}
		out = append(out, Chunk{Label: "O", Start: i, End: i + 1})
		i++
	}
	return out
}

func matchNP(tokens []Token, i int) (*Chunk, int) {
	j := i
	if j < len(tokens) && tokens[j].POS == "DT" {
		j++
	}
	for j < len(tokens) && (tokens[j].IsAdj() || tokens[j].POS == "CD" ||
		tokens[j].POS == "VBN" || tokens[j].POS == "PRP$") {
		j++
	}
	headStart := j
	for j < len(tokens) && (tokens[j].IsNoun() || tokens[j].POS == "CD") {
		j++
	}
	if j == headStart {
		return nil, i
	}
	return &Chunk{Label: "NP", Start: i, End: j}, j
}

func matchVP(tokens []Token, i int) (*Chunk, int) {
	j := i
	if j < len(tokens) && tokens[j].POS == "MD" {
		j++
	}
	for j < len(tokens) && tokens[j].POS == "RB" {
		j++
	}
	verbStart := j
	for j < len(tokens) && tokens[j].IsVerb() {
		j++
	}
	if j == verbStart {
		return nil, i
	}
	return &Chunk{Label: "VP", Start: i, End: j}, j
}

// Text joins the chunk's surface forms.
func (c Chunk) Text(tokens []Token) string {
	parts := make([]string, 0, c.End-c.Start)
	for _, t := range tokens[c.Start:c.End] {
		parts = append(parts, t.Text)
	}
	return strings.Join(parts, " ")
}

// Tokens returns the chunk's token view.
func (c Chunk) Tokens(tokens []Token) []Token { return tokens[c.Start:c.End] }

// HasModifier reports whether the NP carries a numeric (CD) or textual (JJ)
// modifier — the "noun phrase with numeric or textual modifiers" pattern of
// Tables 3 and 4.
func (c Chunk) HasModifier(tokens []Token) bool {
	for _, t := range tokens[c.Start:c.End] {
		if t.IsAdj() || t.POS == "CD" {
			return true
		}
	}
	return false
}

// SVO is a subject–verb–object triple of chunks within one sentence.
type SVO struct {
	Subject, Verb, Object Chunk
}

// FindSVO locates NP-VP-NP sequences (ignoring intervening O/PP chunks
// between VP and object) — the "SVO" pattern of Table 3.
func FindSVO(tokens []Token, chunks []Chunk) []SVO {
	var out []SVO
	for i := 0; i < len(chunks); i++ {
		if chunks[i].Label != "NP" {
			continue
		}
		j := i + 1
		if j < len(chunks) && chunks[j].Label == "VP" {
			for k := j + 1; k < len(chunks) && k <= j+2; k++ {
				if chunks[k].Label == "NP" {
					out = append(out, SVO{Subject: chunks[i], Verb: chunks[j], Object: chunks[k]})
					break
				}
			}
		}
	}
	return out
}

// ParseNode is a node of the shallow parse tree built for frequent-subtree
// mining (Section 5.2.1): sentence → chunks → annotated tokens. Token
// leaves are labelled with a normalised annotation symbol rather than the
// surface form, so that mined subtrees generalise across documents.
type ParseNode struct {
	Label    string
	Children []*ParseNode
}

// ParseTree builds the mining tree of one sentence. Leaf labels follow the
// paper's feature set: POS tag, NER category when present, a GEO marker for
// geocoded locations, hypernym senses for nouns and verb senses for verbs.
func ParseTree(tokens []Token) *ParseNode {
	root := &ParseNode{Label: "S"}
	chunks := ChunkSentence(tokens)
	geocoded := map[int]bool{}
	for _, g := range FindAddresses(tokens) {
		for i := g.Span.Start; i < g.Span.End; i++ {
			geocoded[i] = true
		}
	}
	for _, c := range chunks {
		cn := &ParseNode{Label: c.Label}
		for i := c.Start; i < c.End; i++ {
			t := tokens[i]
			leaf := &ParseNode{Label: t.POS}
			if t.Entity != "" {
				leaf.Children = append(leaf.Children, &ParseNode{Label: "NE:" + t.Entity})
			}
			if geocoded[i] {
				leaf.Children = append(leaf.Children, &ParseNode{Label: "GEO"})
			}
			if t.IsNoun() {
				for _, h := range HypernymSenses(t.Norm) {
					leaf.Children = append(leaf.Children, &ParseNode{Label: "HYP:" + h})
				}
			}
			if t.IsVerb() {
				for _, v := range VerbSenses(t.Norm) {
					leaf.Children = append(leaf.Children, &ParseNode{Label: "VS:" + v})
				}
			}
			cn.Children = append(cn.Children, leaf)
		}
		root.Children = append(root.Children, cn)
	}
	return root
}
