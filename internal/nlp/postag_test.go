package nlp

import "testing"

func tagsOf(text string) ([]Token, []string) {
	toks := Tokenize(text)
	TagPOS(toks)
	tags := make([]string, len(toks))
	for i, t := range toks {
		tags[i] = t.POS
	}
	return toks, tags
}

func TestTagClosedClass(t *testing.T) {
	_, tags := tagsOf("The event is at the hall")
	want := []string{"DT", "NN", "VBZ", "IN", "DT", "NN"}
	for i := range want {
		if tags[i] != want[i] {
			t.Errorf("tag %d = %s, want %s (all: %v)", i, tags[i], want[i], tags)
		}
	}
}

func TestTagNumbers(t *testing.T) {
	toks, _ := tagsOf("4 beds and 2,465 acres for $1,200 on 4/15")
	for _, tok := range toks {
		switch tok.Text {
		case "4", "2,465", "4/15":
			if tok.POS != "CD" {
				t.Errorf("%q tagged %s, want CD", tok.Text, tok.POS)
			}
		case "$1,200":
			if tok.POS != "CD" {
				t.Errorf("%q tagged %s, want CD", tok.Text, tok.POS)
			}
		}
	}
}

func TestTagProperNouns(t *testing.T) {
	toks, _ := tagsOf("Contact Maria Chen for details")
	if toks[1].POS != "NNP" || toks[2].POS != "NNP" {
		t.Errorf("name tags = %s %s, want NNP NNP", toks[1].POS, toks[2].POS)
	}
}

func TestCapitalizedLexiconWordInNameContext(t *testing.T) {
	// "Bill" is not in our lexicon but "May" is (MD); inside a capitalised
	// run it should become NNP.
	toks, _ := tagsOf("the May Gallery opens")
	if toks[1].POS != "NNP" {
		t.Errorf("May tagged %s, want NNP", toks[1].POS)
	}
	// Sentence-initial "May" with lowercase continuation keeps its MD tag.
	toks2, _ := tagsOf("May we join")
	if toks2[0].POS != "MD" {
		t.Errorf("sentence-initial May tagged %s, want MD", toks2[0].POS)
	}
}

func TestSuffixRules(t *testing.T) {
	toks, _ := tagsOf("a fabulous gathering promoting wellness")
	byText := map[string]string{}
	for _, tok := range toks {
		byText[tok.Text] = tok.POS
	}
	if byText["fabulous"] != "JJ" {
		t.Errorf("fabulous = %s", byText["fabulous"])
	}
	if byText["promoting"] != "VBG" {
		t.Errorf("promoting = %s", byText["promoting"])
	}
}

func TestRepairRules(t *testing.T) {
	// DT + VBN -> JJ
	toks, _ := tagsOf("the renovated kitchen")
	if toks[1].POS != "JJ" {
		t.Errorf("renovated = %s, want JJ", toks[1].POS)
	}
	// MD + unknown NN -> VB
	toks2, _ := tagsOf("will premiere tonight")
	if toks2[1].POS != "VB" {
		t.Errorf("premiere = %s, want VB", toks2[1].POS)
	}
}

func TestTokenPredicates(t *testing.T) {
	cases := []struct {
		pos                  string
		noun, verb, adj, num bool
	}{
		{"NN", true, false, false, false},
		{"NNS", true, false, false, false},
		{"NNP", true, false, false, false},
		{"VBZ", false, true, false, false},
		{"JJ", false, false, true, false},
		{"CD", false, false, false, true},
	}
	for _, c := range cases {
		tok := Token{POS: c.pos}
		if tok.IsNoun() != c.noun || tok.IsVerb() != c.verb ||
			tok.IsAdj() != c.adj || tok.IsNum() != c.num {
			t.Errorf("predicates wrong for %s", c.pos)
		}
	}
}

func TestAnnotatePipeline(t *testing.T) {
	a := Annotate("Dr. Maria Chen hosts Jazz Night at 7:30 PM. RSVP today.")
	if len(a.Sentences) != 2 {
		t.Fatalf("sentences = %d", len(a.Sentences))
	}
	var persons, times int
	for _, tok := range a.Tokens {
		switch tok.Entity {
		case "PERSON":
			persons++
		case "TIME":
			times++
		}
	}
	if persons < 2 {
		t.Errorf("person tokens = %d, want >= 2", persons)
	}
	if times == 0 {
		t.Error("no TIME tokens found")
	}
}
