package nlp

import (
	"regexp"
	"strings"
)

// The TIMEX recogniser stands in for SUTime [5]: it finds temporal
// expressions (clock times, calendar dates, weekday phrases, ranges) in a
// tagged token stream and labels them TIME. The paper's Event Time entity
// is defined as "noun phrases with valid TIMEX3 tags" (Table 3).

var (
	clockRe = regexp.MustCompile(`^([01]?\d|2[0-3]):[0-5]\d$`)
	// "7pm", "7:30pm", "11 AM"
	amPmRe = regexp.MustCompile(`^(?i)([01]?\d)(:[0-5]\d)?(am|pm)\.?$`)
	// "04/15", "4/15/2019", "2019-06-30"
	slashDateRe = regexp.MustCompile(`^\d{1,4}[/-]\d{1,2}([/-]\d{2,4})?$`)
	yearRe      = regexp.MustCompile(`^(19|20)\d\d$`)
	dayNumRe    = regexp.MustCompile(`^([0-2]?\d|3[01])(st|nd|rd|th)?,?$`)
	bareAmPm    = regexp.MustCompile(`^(?i)(am|pm)\.?$`)
)

// tagTimes labels temporal tokens and glues adjacent temporal tokens (and
// connective words between them) into one TIME span: "Saturday, June 14,
// 7:30 PM" becomes a single expression.
func tagTimes(tokens []Token) {
	isTemporal := make([]bool, len(tokens))
	for i, t := range tokens {
		w := strings.TrimSuffix(t.Text, ",")
		switch {
		case clockRe.MatchString(w), amPmRe.MatchString(w), slashDateRe.MatchString(w):
			isTemporal[i] = true
		case IsWeekday(w), MonthNumber(w) > 0 && isCapitalized(t.Text), IsTimeWord(t.Norm):
			isTemporal[i] = true
		case yearRe.MatchString(w) && adjacentTemporal(tokens, i, isTemporal):
			isTemporal[i] = true
		case bareAmPm.MatchString(w) && i > 0 && tokens[i-1].POS == "CD":
			isTemporal[i] = true
			isTemporal[i-1] = true // "7 PM"
		case dayNumRe.MatchString(w) && i > 0 && MonthNumber(strings.TrimSuffix(tokens[i-1].Text, ",")) > 0:
			isTemporal[i] = true // "June 14"
		}
	}
	// Bridge single connective tokens between two temporal tokens:
	// "7 to 9 PM", "June 14 , 2026", "Saturday at 3pm".
	for i := 1; i < len(tokens)-1; i++ {
		if isTemporal[i-1] && isTemporal[i+1] && !isTemporal[i] {
			switch tokens[i].Norm {
			case "to", "-", "–", ",", "at", "through", "until":
				isTemporal[i] = true
			}
		}
	}
	for i := range tokens {
		if isTemporal[i] && tokens[i].Entity == "" {
			tokens[i].Entity = "TIME"
		}
	}
}

func adjacentTemporal(tokens []Token, i int, isTemporal []bool) bool {
	if i > 0 && isTemporal[i-1] {
		return true
	}
	if i > 0 {
		w := strings.TrimSuffix(tokens[i-1].Text, ",")
		if MonthNumber(w) > 0 || dayNumRe.MatchString(w) {
			return true
		}
	}
	return false
}

// HasTimex reports whether any token in the span carries a TIME label.
func HasTimex(tokens []Token) bool {
	for _, t := range tokens {
		if t.Entity == "TIME" {
			return true
		}
	}
	return false
}
