package nlp

import "testing"

func annotate(text string) []Token {
	toks := Tokenize(text)
	TagPOS(toks)
	TagEntities(toks)
	return toks
}

func entityOf(toks []Token, word string) string {
	for _, t := range toks {
		if t.Text == word {
			return t.Entity
		}
	}
	return "<absent>"
}

func TestPersonRecognition(t *testing.T) {
	toks := annotate("Contact Kevin Walsh for tickets")
	if entityOf(toks, "Kevin") != "PERSON" || entityOf(toks, "Walsh") != "PERSON" {
		t.Errorf("Kevin Walsh not recognised: %v %v",
			entityOf(toks, "Kevin"), entityOf(toks, "Walsh"))
	}
	toks2 := annotate("presented by Dr. Elena Petrov")
	if entityOf(toks2, "Elena") != "PERSON" || entityOf(toks2, "Petrov") != "PERSON" {
		t.Error("honorific-led person not recognised")
	}
}

func TestOrganizationRecognition(t *testing.T) {
	toks := annotate("hosted by the Riverside Jazz Society tonight")
	if entityOf(toks, "Riverside") != "ORG" || entityOf(toks, "Society") != "ORG" {
		t.Errorf("org not recognised: %v", toks)
	}
	toks2 := annotate("Acme Realty LLC lists this property")
	if entityOf(toks2, "Acme") != "ORG" {
		t.Error("LLC org not recognised")
	}
	// A single capitalised word must not become an ORG.
	toks3 := annotate("the Amazing show")
	if entityOf(toks3, "Amazing") == "ORG" {
		t.Error("lone capitalised word tagged ORG")
	}
}

func TestLocationRecognition(t *testing.T) {
	toks := annotate("live music in Columbus this weekend")
	if entityOf(toks, "Columbus") != "LOC" {
		t.Error("city not recognised")
	}
	toks2 := annotate("located at 450 Maple Ave near downtown")
	if entityOf(toks2, "Maple") != "LOC" || entityOf(toks2, "Ave") != "LOC" {
		t.Errorf("street run not recognised: Maple=%v Ave=%v",
			entityOf(toks2, "Maple"), entityOf(toks2, "Ave"))
	}
	// Ambiguous state abbreviations must require upper case.
	toks3 := annotate("come in or stay out")
	if entityOf(toks3, "in") == "LOC" || entityOf(toks3, "or") == "LOC" {
		t.Error("lowercase words tagged as states")
	}
	toks4 := annotate("Columbus, OH 43210")
	if entityOf(toks4, "OH") != "LOC" {
		t.Error("state abbreviation not recognised")
	}
}

func TestMoneyRecognition(t *testing.T) {
	toks := annotate("tickets $15 at the door")
	if entityOf(toks, "$15") != "MONEY" {
		t.Error("money not recognised")
	}
}

func TestEntitySpans(t *testing.T) {
	toks := annotate("Kevin Walsh hosts Jazz Night in Columbus")
	spans := Entities(toks)
	if len(spans) < 2 {
		t.Fatalf("spans = %v", spans)
	}
	if spans[0].Label != "PERSON" || SpanText(toks, spans[0]) != "Kevin Walsh" {
		t.Errorf("first span = %v %q", spans[0].Label, SpanText(toks, spans[0]))
	}
	var loc bool
	for _, s := range spans {
		if s.Label == "LOC" && SpanText(toks, s) == "Columbus" {
			loc = true
		}
	}
	if !loc {
		t.Error("Columbus span missing")
	}
}

func TestNERFalsePositiveBehaviour(t *testing.T) {
	// Broken OCR context: title-case words adjacent to names cause
	// over-firing, as in the paper's Fig. 3. We assert the recogniser DOES
	// produce a (wrong) PERSON here — the imperfection VS2 compensates for.
	toks := annotate("Live Music Paul Hall Friday")
	if entityOf(toks, "Paul") != "PERSON" {
		t.Skip("recogniser did not over-fire; acceptable but unexpected")
	}
}

func TestTimexRecognition(t *testing.T) {
	cases := []struct {
		text string
		word string
	}{
		{"doors open at 7:30 tonight", "7:30"},
		{"Saturday, June 14", "June"},
		{"due by 4/15/2019", "4/15/2019"},
		{"7 PM sharp", "PM"},
		{"noon until late", "noon"},
	}
	for _, c := range cases {
		toks := annotate(c.text)
		if entityOf(toks, c.word) != "TIME" {
			t.Errorf("%q: %q not tagged TIME (%v)", c.text, c.word, toks)
		}
	}
	// Bridging: "June 14, 7:30 PM" should be one contiguous TIME span.
	toks := annotate("June 14, 7:30 PM")
	spans := Entities(toks)
	if len(spans) != 1 || spans[0].Label != "TIME" {
		t.Errorf("bridged time spans = %v", spans)
	}
	if !HasTimex(toks) {
		t.Error("HasTimex false")
	}
	if HasTimex(annotate("no temporal content here")) {
		t.Error("HasTimex over-fired")
	}
}

func TestGeocode(t *testing.T) {
	toks := annotate("450 Maple Ave, Columbus, OH 43210")
	addrs := FindAddresses(toks)
	if len(addrs) != 1 {
		t.Fatalf("addresses = %v", addrs)
	}
	g := addrs[0]
	if !g.HasStreet || !g.HasCity || !g.HasState || !g.HasZip {
		t.Errorf("components = %+v", g)
	}
	if g.Confidence != 1 {
		t.Errorf("confidence = %v", g.Confidence)
	}
	if !HasGeocode(toks) {
		t.Error("HasGeocode false")
	}
	// City+state without street still geocodes (lower confidence).
	toks2 := annotate("Columbus, Ohio")
	addrs2 := FindAddresses(toks2)
	if len(addrs2) != 1 || addrs2[0].HasStreet || addrs2[0].Confidence >= 1 {
		t.Errorf("city-state geocode = %+v", addrs2)
	}
	// Non-addresses must not geocode.
	if HasGeocode(annotate("4 beds and 2 baths")) {
		t.Error("non-address geocoded")
	}
	// A date must not be mistaken for a street number.
	if HasGeocode(annotate("4/15 Maple Ave")) {
		t.Error("date fragment geocoded as street")
	}
}

func TestGeocodeUnit(t *testing.T) {
	toks := annotate("1200 Corporate Blvd, Suite 210, Columbus, OH")
	addrs := FindAddresses(toks)
	if len(addrs) != 1 {
		t.Fatalf("addresses = %v", addrs)
	}
	if !addrs[0].HasStreet || !addrs[0].HasCity || !addrs[0].HasState {
		t.Errorf("unit address components = %+v", addrs[0])
	}
}
