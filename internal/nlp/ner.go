package nlp

import (
	"strings"
)

// TagEntities runs the gazetteer-and-rule named-entity recogniser over a
// tagged token stream, writing the Entity field in place. Categories follow
// the paper's usage: PERSON, ORG, LOC, TIME, MONEY.
//
// Like the Stanford NER the paper uses, this recogniser fires on
// capitalisation evidence and therefore produces false positives on
// transcriptions whose context boundaries are broken — the failure mode
// Fig. 3 of the paper illustrates. That imperfection is intentional.
func TagEntities(tokens []Token) {
	tagTimes(tokens)
	tagMoney(tokens)
	tagOrganizations(tokens)
	tagPersons(tokens)
	tagLocations(tokens)
}

func tagMoney(tokens []Token) {
	for i := range tokens {
		if tokens[i].Entity != "" {
			continue
		}
		if strings.HasPrefix(tokens[i].Text, "$") && len(tokens[i].Text) > 1 {
			tokens[i].Entity = "MONEY"
		}
	}
}

// tagOrganizations marks maximal capitalised runs that end in an
// organisation suffix ("Riverside Jazz Society", "Acme Realty LLC") or that
// start with a known org-prefix pattern ("The Columbus Museum").
func tagOrganizations(tokens []Token) {
	for i := 0; i < len(tokens); i++ {
		if tokens[i].Entity != "" || !isCapitalized(tokens[i].Text) {
			continue
		}
		j := i
		for j < len(tokens) && tokens[j].Entity == "" &&
			(isCapitalized(tokens[j].Text) || tokens[j].Norm == "of" || tokens[j].Norm == "&") {
			j++
		}
		run := tokens[i:j]
		if len(run) < 2 {
			continue
		}
		if IsOrgSuffix(run[len(run)-1].Text) ||
			(orgPrefixes[run[0].Norm] && len(run) >= 3 && IsOrgSuffix(run[len(run)-2].Text)) {
			for k := i; k < j; k++ {
				tokens[k].Entity = "ORG"
			}
			i = j - 1
		}
	}
}

// tagPersons marks runs of capitalised words supported by name-gazetteer or
// honorific evidence: "Dr. Maria Chen", "Kevin Walsh".
func tagPersons(tokens []Token) {
	for i := 0; i < len(tokens); i++ {
		if tokens[i].Entity != "" {
			continue
		}
		if IsHonorific(tokens[i].Text) && i+1 < len(tokens) && isCapitalized(tokens[i+1].Text) {
			j := i + 1
			for j < len(tokens) && tokens[j].Entity == "" && isCapitalized(tokens[j].Text) && j-i <= 3 {
				tokens[j].Entity = "PERSON"
				j++
			}
			i = j - 1
			continue
		}
		if !isCapitalized(tokens[i].Text) || !IsFirstName(tokens[i].Text) {
			continue
		}
		// First name followed by at least one more capitalised word.
		j := i + 1
		for j < len(tokens) && tokens[j].Entity == "" && isCapitalized(tokens[j].Text) &&
			!IsOrgSuffix(tokens[j].Text) && j-i <= 2 {
			j++
		}
		if j > i+1 {
			for k := i; k < j; k++ {
				tokens[k].Entity = "PERSON"
			}
			i = j - 1
		} else if IsLastName(tokens[i].Text) {
			// A lone word that is both a first and last name: weak PERSON.
			tokens[i].Entity = "PERSON"
		}
	}
}

// tagLocations marks cities, states and street-suffix-terminated runs.
func tagLocations(tokens []Token) {
	for i := 0; i < len(tokens); i++ {
		if tokens[i].Entity != "" {
			continue
		}
		if isCapitalized(tokens[i].Text) && (IsCity(tokens[i].Text) || isStateToken(tokens, i)) {
			tokens[i].Entity = "LOC"
			continue
		}
		// "NNP+ <StreetSuffix>" run: mark the whole run.
		if isCapitalized(tokens[i].Text) && IsStreetSuffix(tokens[i].Text) && i > 0 {
			k := i - 1
			for k >= 0 && tokens[k].Entity == "" &&
				(isCapitalized(tokens[k].Text) || tokens[k].POS == "CD") && i-k <= 4 {
				k--
			}
			for m := k + 1; m <= i; m++ {
				tokens[m].Entity = "LOC"
			}
		}
	}
}

// isStateToken avoids tagging bare ambiguous two-letter words ("in", "or",
// "me") that collide with state abbreviations: an abbreviation must be
// upper-case to count.
func isStateToken(tokens []Token, i int) bool {
	w := tokens[i].Text
	lw := strings.ToLower(strings.TrimSuffix(w, "."))
	if _, full := states[lw]; full {
		return isCapitalized(w)
	}
	if stateAbbrevs[lw] {
		return strings.ToUpper(strings.TrimSuffix(w, ".")) == strings.TrimSuffix(w, ".")
	}
	return false
}

// Span is a contiguous annotated token range [Start, End) with a label.
type Span struct {
	Start, End int
	Label      string
}

// Entities extracts maximal same-label entity spans from a token slice.
func Entities(tokens []Token) []Span {
	var out []Span
	for i := 0; i < len(tokens); {
		if tokens[i].Entity == "" {
			i++
			continue
		}
		j := i
		for j < len(tokens) && tokens[j].Entity == tokens[i].Entity {
			j++
		}
		out = append(out, Span{Start: i, End: j, Label: tokens[i].Entity})
		i = j
	}
	return out
}

// SpanText joins the surface forms of a token span.
func SpanText(tokens []Token, s Span) string {
	parts := make([]string, 0, s.End-s.Start)
	for _, t := range tokens[s.Start:s.End] {
		parts = append(parts, t.Text)
	}
	return strings.Join(parts, " ")
}
