// Package nlp provides the natural-language annotators VS2 depends on.
// The paper uses "publicly available NLP tools" (Section 5.2) — Stanford
// NER, SUTime, WordNet hypernyms, VerbNet senses, a POS tagger and a
// chunker — none of which exist as pure-Go stdlib-only libraries, so this
// package implements rule- and lexicon-based equivalents from scratch:
//
//   - tokenizer + normaliser + light stemmer
//   - POS tagger (lexicon + suffix + context rules)
//   - NP/VP chunker and shallow parse trees (input to frequent-subtree mining)
//   - gazetteer NER (Person / Organization / Location)
//   - TIMEX-style temporal expression recogniser (SUTime stand-in)
//   - street-address geocoder (Google Maps API stand-in)
//   - mini hypernym tree (WordNet stand-in) and verb-sense lexicon
//     (VerbNet stand-in)
//   - the Lesk gloss-overlap word-sense disambiguator used as the paper's
//     text-only disambiguation baseline (Section 6.4, [3]).
//
// Like their real counterparts, these annotators are imperfect: NER
// over-fires on capitalised non-names and the tagger mislabels rare words,
// reproducing the qualitative failure modes shown in Fig. 3 of the paper.
package nlp

import "strings"

// wordSet builds a membership set from a whitespace-separated word list.
func wordSet(words string) map[string]bool {
	set := map[string]bool{}
	for _, w := range strings.Fields(words) {
		set[strings.ToLower(w)] = true
	}
	return set
}

// Stopwords is the standard English stopword list used by the transcription
// normalisation step of Section 5.2.
var Stopwords = wordSet(`
a an and are as at be but by for from had has have he her his i if in into is
it its me my nor not of on or our out she so than that the their them then
there these they this to until was we were what when where which while who
whom why will with you your
`)

var firstNames = wordSet(`
james john robert michael william david richard joseph thomas charles mary
patricia jennifer linda elizabeth barbara susan jessica sarah karen nancy
lisa margaret betty sandra ashley kimberly emily donna michelle carol amanda
daniel paul mark donald george kenneth steven edward brian ronald anthony
kevin jason matthew gary timothy jose larry jeffrey frank scott eric stephen
andrew raymond gregory joshua jerry dennis walter patrick peter harold
douglas henry carl arthur ryan roger joe juan jack albert jonathan justin
terry gerald keith samuel willie ralph lawrence nicholas roy benjamin bruce
brandon adam harry fred wayne billy steve louis jeremy aaron randy howard
eugene carlos russell bobby victor martin ernest phillip todd jesse craig
alan shawn clarence sean philip chris johnny earl jimmy antonio rita anita
alice julia judith grace rose janice jean cheryl kathryn joan evelyn martha
andrea frances hannah kathleen amy anna ruth brenda pamela nicole katherine
samantha christine emma catherine debra virginia rachel janet maria heather
diane julie joyce victoria kelly christina lauren joanne olivia priya wei
ahmed chen yuki ingrid sofia marco aisha ravi dmitri elena hiroshi mei
arnab ritesh
`)

var lastNames = wordSet(`
smith johnson williams brown jones garcia miller davis rodriguez martinez
hernandez lopez gonzalez wilson anderson thomas taylor moore jackson martin
lee perez thompson white harris sanchez clark ramirez lewis robinson walker
young allen king wright scott torres nguyen hill flores green adams nelson
baker hall rivera campbell mitchell carter roberts gomez phillips evans
turner diaz parker cruz edwards collins reyes stewart morris morales murphy
cook rogers gutierrez ortiz morgan cooper peterson bailey reed kelly howard
ramos kim cox ward richardson watson brooks chavez wood james bennett gray
mendoza ruiz hughes price alvarez castillo sanders patel myers long ross
foster jimenez sarkhel nandi tanaka suzuki ivanov petrov kowalski novak
`)

var honorifics = wordSet(`mr mrs ms dr prof professor rev sir madam miss`)

// orgSuffixes terminate an Organization mention.
var orgSuffixes = wordSet(`
inc llc ltd corp corporation company co group society association club
university college institute department dept school academy foundation
center centre committee council lab laboratory bank realty properties
partners holdings agency bureau ministry museum library church
theatre theater orchestra ensemble chorus federation union league
enterprises solutions systems technologies studios galleries brokerage
`)

var orgPrefixes = wordSet(`the national american international united royal first`)

var cities = wordSet(`
columbus cleveland cincinnati dayton toledo akron chicago seattle boston
austin denver portland atlanta miami dallas houston phoenix philadelphia
pittsburgh baltimore detroit minneapolis milwaukee kansas memphis nashville
louisville charlotte raleigh richmond buffalo rochester syracuse albany
newark trenton hartford providence worcester springfield sacramento oakland
fresno tucson mesa omaha tulsa wichita madison amsterdam dublin westerville
gahanna dublin hilliard grandview bexley whitehall reynoldsburg pickerington
lancaster newark marion delaware
`)

var states = map[string]string{
	"alabama": "AL", "alaska": "AK", "arizona": "AZ", "arkansas": "AR",
	"california": "CA", "colorado": "CO", "connecticut": "CT", "delaware": "DE",
	"florida": "FL", "georgia": "GA", "hawaii": "HI", "idaho": "ID",
	"illinois": "IL", "indiana": "IN", "iowa": "IA", "kansas": "KS",
	"kentucky": "KY", "louisiana": "LA", "maine": "ME", "maryland": "MD",
	"massachusetts": "MA", "michigan": "MI", "minnesota": "MN", "mississippi": "MS",
	"missouri": "MO", "montana": "MT", "nebraska": "NE", "nevada": "NV",
	"ohio": "OH", "oklahoma": "OK", "oregon": "OR", "pennsylvania": "PA",
	"texas": "TX", "utah": "UT", "vermont": "VT", "virginia": "VA",
	"washington": "WA", "wisconsin": "WI", "wyoming": "WY", "york": "NY",
}

var stateAbbrevs = func() map[string]bool {
	m := map[string]bool{"ny": true, "nj": true, "nh": true, "nm": true, "nc": true,
		"nd": true, "ri": true, "sc": true, "sd": true, "tn": true, "wv": true}
	for _, ab := range states {
		m[strings.ToLower(ab)] = true
	}
	return m
}()

var streetSuffixes = wordSet(`
st street ave avenue rd road blvd boulevard dr drive ln lane ct court pl
place way pkwy parkway cir circle ter terrace hwy highway sq square trl
trail aly alley plz plaza xing crossing run pike row walk
`)

var unitWords = wordSet(`suite ste apt unit floor fl bldg building room rm`)

// months and weekday names feed the TIMEX recogniser.
var monthNames = map[string]int{
	"january": 1, "jan": 1, "february": 2, "feb": 2, "march": 3, "mar": 3,
	"april": 4, "apr": 4, "may": 5, "june": 6, "jun": 6, "july": 7, "jul": 7,
	"august": 8, "aug": 8, "september": 9, "sep": 9, "sept": 9,
	"october": 10, "oct": 10, "november": 11, "nov": 11, "december": 12, "dec": 12,
}

var weekdays = wordSet(`monday tuesday wednesday thursday friday saturday sunday
mon tue tues wed thu thur thurs fri sat sun`)

var timeWords = wordSet(`noon midnight tonight today tomorrow morning afternoon
evening daily weekly monthly annual`)

// Core POS lexicon: word → Penn-Treebank-style tag. Words not listed fall
// through to the suffix and context rules of the tagger.
var posLexicon = map[string]string{
	// determiners, prepositions, conjunctions, pronouns
	"the": "DT", "a": "DT", "an": "DT", "this": "DT", "that": "DT",
	"these": "DT", "those": "DT", "every": "DT", "each": "DT", "all": "DT",
	"some": "DT", "any": "DT", "no": "DT",
	"of": "IN", "in": "IN", "on": "IN", "at": "IN", "by": "IN", "for": "IN",
	"with": "IN", "from": "IN", "into": "IN", "near": "IN", "about": "IN",
	"per": "IN", "through": "IN", "during": "IN", "after": "IN", "before": "IN",
	"and": "CC", "or": "CC", "but": "CC", "nor": "CC",
	"to": "TO",
	"he": "PRP", "she": "PRP", "it": "PRP", "they": "PRP", "we": "PRP",
	"i": "PRP", "you": "PRP", "us": "PRP", "them": "PRP",
	"his": "PRP$", "her": "PRP$", "its": "PRP$", "their": "PRP$", "our": "PRP$",
	"your": "PRP$", "my": "PRP$",
	"not": "RB", "very": "RB", "too": "RB", "also": "RB", "now": "RB",
	"here": "RB", "there": "RB", "soon": "RB", "only": "RB", "just": "RB",
	"will": "MD", "can": "MD", "may": "MD", "must": "MD", "shall": "MD",
	"would": "MD", "could": "MD", "should": "MD",
	"is": "VBZ", "are": "VBP", "was": "VBD", "were": "VBD", "be": "VB",
	"been": "VBN", "being": "VBG", "am": "VBP",
	"has": "VBZ", "have": "VBP", "had": "VBD",
	"do": "VBP", "does": "VBZ", "did": "VBD",

	// frequent event/real-estate verbs (base form)
	"join": "VB", "attend": "VB", "visit": "VB", "call": "VB", "contact": "VB",
	"email": "VB", "register": "VB", "rsvp": "VB", "learn": "VB", "meet": "VB",
	"enjoy": "VB", "bring": "VB", "come": "VB", "explore": "VB", "discover": "VB",
	"host": "VB", "hosts": "VBZ", "hosted": "VBN", "hosting": "VBG",
	"present": "VB", "presents": "VBZ", "presented": "VBN", "presenting": "VBG",
	"organize": "VB", "organizes": "VBZ", "organized": "VBN", "organizing": "VBG",
	"sponsor": "VB", "sponsors": "VBZ", "sponsored": "VBN",
	"feature": "VB", "features": "VBZ", "featured": "VBN", "featuring": "VBG",
	"offer": "VB", "offers": "VBZ", "offered": "VBN", "offering": "VBG",
	"include": "VB", "includes": "VBZ", "included": "VBN", "including": "VBG",
	"list": "VB", "lists": "VBZ", "listed": "VBN", "listing": "NN",
	"sell": "VB", "sells": "VBZ", "sold": "VBN", "selling": "VBG",
	"buy": "VB", "buys": "VBZ", "bought": "VBD", "buying": "VBG",
	"lease": "VB", "leased": "VBN", "rent": "VB", "rented": "VBN",
	"locate": "VB", "located": "VBN", "situated": "VBN",
	"invite": "VB", "invites": "VBZ", "invited": "VBN", "welcomes": "VBZ",
	"welcome": "VB", "celebrate": "VB", "celebrates": "VBZ",
	"perform": "VB", "performs": "VBZ", "performed": "VBN",
	"speak": "VB", "speaks": "VBZ", "starts": "VBZ", "start": "VB",
	"begins": "VBZ", "begin": "VB", "ends": "VBZ", "end": "VB",
	"runs": "VBZ", "run": "VB", "opens": "VBZ", "open": "JJ",
	"leads": "VBZ", "lead": "VB", "led": "VBD", "chairs": "VBZ",
	"directs": "VBZ", "directed": "VBN", "teaches": "VBZ", "teach": "VB",
	"appears": "VBZ", "appear": "VB", "appeared": "VBD",

	// frequent adjectives
	"free": "JJ", "new": "JJ", "live": "JJ", "local": "JJ", "annual": "JJ",
	"great": "JJ", "grand": "JJ", "special": "JJ", "public": "JJ",
	"private": "JJ", "available": "JJ", "spacious": "JJ", "beautiful": "JJ",
	"modern": "JJ", "historic": "JJ", "commercial": "JJ", "residential": "JJ",
	"prime": "JJ", "renovated": "JJ", "updated": "JJ", "charming": "JJ",
	"stunning": "JJ", "convenient": "JJ", "famous": "JJ", "final": "JJ",
	"first": "JJ", "second": "JJ", "third": "JJ", "last": "JJ", "next": "JJ",
	"big": "JJ", "small": "JJ", "large": "JJ", "huge": "JJ", "cozy": "JJ",
	"exciting": "JJ", "fun": "JJ", "amazing": "JJ", "international": "JJ",
	"excellent": "JJ", "ample": "JJ", "easy": "JJ", "ideal": "JJ",
	"flexible": "JJ", "high": "JJ", "abundant": "JJ", "natural": "JJ",
	"heavy": "JJ", "close": "JJ", "nearby": "JJ", "good": "JJ",
	"whole": "JJ", "several": "JJ", "many": "JJ", "few": "JJ",
	"light": "JJ", "essential": "JJ", "corner": "JJ", "unforgettable": "JJ",

	// frequent nouns in the three domains
	"event": "NN", "events": "NNS", "concert": "NN", "workshop": "NN",
	"seminar": "NN", "lecture": "NN", "talk": "NN", "class": "NN",
	"festival": "NN", "fair": "NN", "gala": "NN", "meetup": "NN",
	"conference": "NN", "exhibition": "NN", "show": "NN", "party": "NN",
	"fundraiser": "NN", "auction": "NN", "recital": "NN", "screening": "NN",
	"music": "NN", "art": "NN", "food": "NN", "dance": "NN", "poetry": "NN",
	"jazz": "NN", "rock": "NN", "theatre": "NN", "theater": "NN",
	"admission": "NN", "ticket": "NN", "tickets": "NNS", "entry": "NN",
	"door": "NN", "doors": "NNS", "venue": "NN", "hall": "NN", "stage": "NN",
	"speaker": "NN", "guest": "NN", "guests": "NNS", "audience": "NN",
	"property": "NN", "properties": "NNS", "home": "NN", "house": "NN",
	"building": "NN", "office": "NN", "retail": "NN", "warehouse": "NN",
	"land": "NN", "lot": "NN", "acre": "NN", "acres": "NNS",
	"bed": "NN", "beds": "NNS", "bedroom": "NN", "bedrooms": "NNS",
	"bath": "NN", "baths": "NNS", "bathroom": "NN", "bathrooms": "NNS",
	"sqft": "NN", "sf": "NN", "parking": "NN", "garage": "NN",
	"price": "NN", "sale": "NN", "floor": "NN", "floors": "NNS",
	"kitchen": "NN", "basement": "NN", "yard": "NN", "grocery": "NN",
	"broker": "NN", "agent": "NN", "owner": "NN",
	"phone": "NN", "fax": "NN", "info": "NN", "information": "NN",
	"tax": "NN", "income": "NN", "wages": "NNS", "salary": "NN",
	"deduction": "NN", "deductions": "NNS", "exemption": "NN",
	"refund": "NN", "filing": "NN", "form": "NN", "line": "NN",
	"name": "NN", "address": "NN", "city": "NN", "state": "NN", "zip": "NN",
	"amount": "NN", "total": "NN", "number": "NN", "date": "NN",
	"year": "NN", "month": "NN", "day": "NN", "time": "NN",
	"evening": "NN", "morning": "NN", "afternoon": "NN", "night": "NN",
	"weekend": "NN", "tonight": "NN", "noon": "NN",
	"organizer": "NN", "organizers": "NNS",
	"community": "NN", "family": "NN", "kids": "NNS", "children": "NNS",
	"students": "NNS", "members": "NNS", "membership": "NN",
}

// glosses provide the dictionary definitions for the Lesk baseline.
var glosses = map[string]string{
	"event":     "a planned public or social occasion gathering happening",
	"concert":   "a musical performance given in public by musicians",
	"workshop":  "a meeting for concerted discussion training or activity",
	"lecture":   "an educational talk to an audience by a speaker",
	"organizer": "a person or organization that arranges an event",
	"sponsor":   "a person or organization that pays for an event",
	"venue":     "the place where an event happens",
	"broker":    "an agent who negotiates sales of property for others",
	"agent":     "a person who acts on behalf of another in business",
	"property":  "a building or land owned by someone real estate",
	"home":      "a house or apartment where a family lives",
	"address":   "the place where a building is located street city",
	"price":     "the amount of money expected in payment for something",
	"acre":      "a unit of land area measure equal to 4840 square yards",
	"form":      "a printed document with blank fields for information",
	"tax":       "a compulsory contribution to state revenue income",
	"time":      "the hour or date at which something happens clock",
	"date":      "the day of the month or year when an event happens",
	"name":      "the word or words a person or thing is known by",
	"phone":     "a telephone number used to contact a person",
	"bank":      "a financial institution that accepts deposits money",
	"floor":     "the lower surface level of a room or building storey",
	"show":      "a public performance spectacle or exhibition",
	"fair":      "a gathering of stalls and amusements for entertainment",
	"talk":      "an informal lecture speech or address to listeners",
	"class":     "a course of instruction lessons for students",
	"line":      "a row of written items on a tax form field entry",
}

// Gloss returns the dictionary gloss for a word (empty when unknown).
func Gloss(word string) string { return glosses[strings.ToLower(word)] }

// IsStopword reports whether w is a stopword.
func IsStopword(w string) bool { return Stopwords[strings.ToLower(w)] }

// IsFirstName reports whether w is a known given name.
func IsFirstName(w string) bool { return firstNames[strings.ToLower(w)] }

// IsLastName reports whether w is a known family name.
func IsLastName(w string) bool { return lastNames[strings.ToLower(w)] }

// IsHonorific reports whether w (sans trailing period) is an honorific.
func IsHonorific(w string) bool {
	return honorifics[strings.ToLower(strings.TrimSuffix(w, "."))]
}

// IsOrgSuffix reports whether w terminates an organisation name.
func IsOrgSuffix(w string) bool {
	return orgSuffixes[strings.ToLower(strings.TrimSuffix(w, "."))]
}

// IsCity reports whether w is a known city name.
func IsCity(w string) bool { return cities[strings.ToLower(w)] }

// IsState reports whether w is a US state name or abbreviation.
func IsState(w string) bool {
	lw := strings.ToLower(strings.TrimSuffix(w, "."))
	_, full := states[lw]
	return full || stateAbbrevs[lw]
}

// IsStreetSuffix reports whether w is a street-type suffix (St, Ave, ...).
func IsStreetSuffix(w string) bool {
	return streetSuffixes[strings.ToLower(strings.TrimSuffix(w, "."))]
}

// IsUnitWord reports whether w introduces a secondary address unit.
func IsUnitWord(w string) bool {
	return unitWords[strings.ToLower(strings.TrimSuffix(w, "."))]
}

// IsWeekday reports whether w names a day of the week.
func IsWeekday(w string) bool {
	return weekdays[strings.ToLower(strings.TrimSuffix(w, "."))]
}

// MonthNumber returns the 1-based month for a month name, or 0.
func MonthNumber(w string) int {
	return monthNames[strings.ToLower(strings.TrimSuffix(w, "."))]
}

// IsTimeWord reports whether w is a bare temporal noun ("noon", "tonight").
func IsTimeWord(w string) bool { return timeWords[strings.ToLower(w)] }
