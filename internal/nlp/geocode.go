package nlp

import (
	"regexp"
	"strings"
)

// The geocoder stands in for the Google Maps geocoding API the paper calls
// to augment 'Location' entities with a geocode tag (Section 5.2.1). It
// recognises postal street addresses of the shape
//
//	<number> <name...> <street-suffix> [, <unit>] [, <city>] [, <state> [zip]]
//
// and scores how complete the address is. A span "geocodes" when it at
// least contains a street line or a city+state pair.

var zipRe = regexp.MustCompile(`^\d{5}(-\d{4})?$`)

// Geocode describes a recognised address span.
type Geocode struct {
	Span       Span
	HasStreet  bool
	HasCity    bool
	HasState   bool
	HasZip     bool
	Confidence float64 // fraction of address components present
}

// FindAddresses scans a token stream for address-shaped spans.
func FindAddresses(tokens []Token) []Geocode {
	var out []Geocode
	for i := 0; i < len(tokens); i++ {
		g, next := matchAddress(tokens, i)
		if g != nil {
			out = append(out, *g)
			i = next - 1
		}
	}
	return out
}

func matchAddress(tokens []Token, i int) (*Geocode, int) {
	g := Geocode{}
	j := i

	// Street line: CD (NNP|NN)+ streetSuffix
	if j < len(tokens) && tokens[j].POS == "CD" && !strings.Contains(tokens[j].Text, "/") {
		k := j + 1
		words := 0
		for k < len(tokens) && words < 4 &&
			(isCapitalized(tokens[k].Text) || tokens[k].POS == "CD") &&
			!IsStreetSuffix(tokens[k].Text) {
			k++
			words++
		}
		if k < len(tokens) && words >= 1 && IsStreetSuffix(tokens[k].Text) {
			g.HasStreet = true
			j = k + 1
			// optional unit: ", Suite 210"
			j = skipComma(tokens, j)
			if j < len(tokens) && IsUnitWord(tokens[j].Text) {
				j++
				if j < len(tokens) && tokens[j].POS == "CD" {
					j++
				}
			}
		}
	}

	// City
	j = skipComma(tokens, j)
	if j < len(tokens) && IsCity(tokens[j].Text) && isCapitalized(tokens[j].Text) {
		g.HasCity = true
		j++
	}

	// State [zip]
	j = skipComma(tokens, j)
	if j < len(tokens) && isStateToken(tokens, j) {
		g.HasState = true
		j++
		if j < len(tokens) && zipRe.MatchString(tokens[j].Text) {
			g.HasZip = true
			j++
		}
	}

	if !g.HasStreet && !(g.HasCity && g.HasState) {
		return nil, i + 1
	}
	n := 0.0
	for _, has := range []bool{g.HasStreet, g.HasCity, g.HasState, g.HasZip} {
		if has {
			n++
		}
	}
	g.Confidence = n / 4
	g.Span = Span{Start: i, End: j, Label: "ADDRESS"}
	return &g, j
}

func skipComma(tokens []Token, j int) int {
	if j < len(tokens) && tokens[j].Text == "," {
		return j + 1
	}
	return j
}

// HasGeocode reports whether the token span contains (or is contained in) a
// geocodable address. It is the "noun phrase with valid geocode tags"
// predicate of Tables 3 and 4.
func HasGeocode(tokens []Token) bool {
	return len(FindAddresses(tokens)) > 0
}
