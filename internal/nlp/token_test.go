package nlp

import (
	"reflect"
	"testing"
)

func texts(tokens []Token) []string {
	out := make([]string, len(tokens))
	for i, t := range tokens {
		out[i] = t.Text
	}
	return out
}

func TestTokenizeBasic(t *testing.T) {
	got := texts(Tokenize("Join us for Jazz Night!"))
	want := []string{"Join", "us", "for", "Jazz", "Night", "!"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeKeepsDomainTokensWhole(t *testing.T) {
	cases := []struct {
		in   string
		want string // the token that must appear whole
	}{
		{"email rsvp@jazzclub.org now", "rsvp@jazzclub.org"},
		{"call 614-555-0137 today", "614-555-0137"},
		{"call (614)555-0137 today", "(614)555-0137"},
		{"doors at 7:30 pm", "7:30"},
		{"only $1,200 monthly", "$1,200"},
		{"due 4/15/2019 sharp", "4/15/2019"},
		{"it's fine", "it's"},
	}
	for _, c := range cases {
		toks := texts(Tokenize(c.in))
		found := false
		for _, tok := range toks {
			if tok == c.want {
				found = true
			}
		}
		if !found {
			t.Errorf("Tokenize(%q) = %v, missing %q", c.in, toks, c.want)
		}
	}
}

func TestTokenizeSentencePeriodSplits(t *testing.T) {
	toks := texts(Tokenize("See you there. Bring friends."))
	// Final periods must be separate tokens, not glued to words.
	wantDots := 0
	for _, tok := range toks {
		if tok == "." {
			wantDots++
		}
		if tok == "there." || tok == "friends." {
			t.Errorf("period glued to word: %q", tok)
		}
	}
	if wantDots != 2 {
		t.Errorf("expected 2 period tokens, got %d in %v", wantDots, toks)
	}
}

func TestTokenOffsets(t *testing.T) {
	src := "Hello  world"
	toks := Tokenize(src)
	if toks[0].Start != 0 || toks[1].Start != 7 {
		t.Errorf("offsets = %d, %d", toks[0].Start, toks[1].Start)
	}
	if src[toks[1].Start:toks[1].Start+5] != "world" {
		t.Error("offset does not index source")
	}
}

func TestSplitSentences(t *testing.T) {
	toks := Tokenize("First one. Second one! Third")
	sents := SplitSentences(toks)
	if len(sents) != 3 {
		t.Fatalf("sentences = %d", len(sents))
	}
	if sents[0][len(sents[0])-1].Text != "." || sents[1][len(sents[1])-1].Text != "!" {
		t.Error("sentence boundaries wrong")
	}
	if len(sents[2]) != 1 || sents[2][0].Text != "Third" {
		t.Errorf("trailing sentence = %v", texts(sents[2]))
	}
}

func TestStem(t *testing.T) {
	cases := map[string]string{
		"events":     "event",
		"properties": "property",
		"hosting":    "host",
		"planned":    "plan",
		"hosted":     "host",
		"quickly":    "quick",
		"darkness":   "dark",
		"classes":    "class",
		"buses":      "buse",
		"acres":      "acre",
		"bed":        "bed",
		"is":         "is",
		"glass":      "glass",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize("The events are hosted by the club!")
	// stopwords ("the", "are", "by") and punctuation dropped, stems applied
	want := []string{"event", "host", "club"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Normalize = %v, want %v", got, want)
	}
	if Normalize("the of and") != nil {
		t.Error("all-stopword input should normalise to nil")
	}
}

func TestIsStopword(t *testing.T) {
	if !IsStopword("The") || !IsStopword("and") {
		t.Error("stopwords not recognised")
	}
	if IsStopword("jazz") {
		t.Error("jazz is not a stopword")
	}
}
