package nlp

import (
	"strings"
	"unicode"
)

// Token is one tokenised word with its annotations. Fields are filled in
// progressively by the pipeline: Tokenize sets Text/Norm/Start, the tagger
// sets POS, the NER pass sets Entity.
type Token struct {
	Text   string // surface form
	Norm   string // lowercased surface form
	Stem   string // light stem of Norm
	POS    string // Penn-Treebank-style tag
	Entity string // "", "PERSON", "ORG", "LOC", "TIME", "MONEY"
	Start  int    // byte offset into the source text
}

// IsNoun reports whether the token carries a noun tag.
func (t Token) IsNoun() bool { return strings.HasPrefix(t.POS, "NN") }

// IsVerb reports whether the token carries a verb tag.
func (t Token) IsVerb() bool { return strings.HasPrefix(t.POS, "VB") }

// IsAdj reports whether the token is an adjective (JJ*).
func (t Token) IsAdj() bool { return strings.HasPrefix(t.POS, "JJ") }

// IsNum reports whether the token is a cardinal number (CD).
func (t Token) IsNum() bool { return t.POS == "CD" }

// Tokenize splits text into word tokens. Punctuation becomes its own token
// except for intra-word characters that carry meaning in our domains:
// '@' and '.' inside email addresses, '-' '(' ')' inside phone numbers,
// '$' ',' '.' inside money and decimal amounts, ':' inside clock times and
// '/' inside dates.
func Tokenize(text string) []Token {
	var out []Token
	runes := []rune(text)
	i := 0
	for i < len(runes) {
		r := runes[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case isWordRune(r) || (r == '(' && i+1 < len(runes) && unicode.IsDigit(runes[i+1])):
			j := i + 1
			for j < len(runes) && (isWordRune(runes[j]) || isInnerRune(runes, j)) {
				j++
			}
			add(&out, string(runes[i:j]), byteOffset(runes, i))
			i = j
		default:
			// standalone punctuation
			add(&out, string(r), byteOffset(runes, i))
			i++
		}
	}
	return out
}

func isWordRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '$' || r == '#' || r == '&'
}

// isInnerRune allows certain punctuation inside a token when flanked by
// word runes (so "rsvp@club.org", "614-555-0137", "3:30", "1,200", "4/15"
// stay whole but a sentence-final period does not glue to the word).
func isInnerRune(runes []rune, j int) bool {
	r := runes[j]
	switch r {
	case '@', '.', '-', ':', ',', '/', '\'', '(', ')', '+':
	default:
		return false
	}
	if j+1 >= len(runes) || !isWordRune(runes[j+1]) {
		// '(' may open a phone area code: "(614)" — allow when followed by digit
		return false
	}
	if j == 0 {
		return r == '(' || r == '+' || r == '$'
	}
	prev := runes[j-1]
	if r == '(' {
		return unicode.IsDigit(runes[j+1])
	}
	if r == ')' {
		return unicode.IsDigit(prev) || prev == '('
	}
	return isWordRune(prev) || prev == ')' // e.g. "(614)555-0137"
}

func byteOffset(runes []rune, i int) int {
	n := 0
	for _, r := range runes[:i] {
		n += len(string(r))
	}
	return n
}

func add(out *[]Token, text string, start int) {
	*out = append(*out, Token{
		Text:  text,
		Norm:  strings.ToLower(text),
		Stem:  Stem(strings.ToLower(text)),
		Start: start,
	})
}

// SplitSentences partitions tokens at sentence-final punctuation and
// newline-derived breaks. Visually rich documents rarely contain full
// sentences, so a conservative splitter suffices: '.', '!' and '?' end a
// sentence unless the period belongs to an abbreviation/initial.
func SplitSentences(tokens []Token) [][]Token {
	var out [][]Token
	var cur []Token
	for i, tok := range tokens {
		cur = append(cur, tok)
		if tok.Text == "!" || tok.Text == "?" {
			out = append(out, cur)
			cur = nil
			continue
		}
		if tok.Text == "." {
			// Abbreviation periods ("Dr.", "J.") do not end a sentence.
			if i > 0 && (IsHonorific(tokens[i-1].Text) || len(tokens[i-1].Text) == 1) {
				continue
			}
			out = append(out, cur)
			cur = nil
		}
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}

// Stem applies a light suffix-stripping stemmer (a compact Porter subset):
// plural -s/-es, -ing, -ed, -ly, -ness, -tion families. It is intentionally
// conservative — stems are used only to group inflections for embeddings
// and Lesk overlap, not to recover lemmas.
func Stem(w string) string {
	if len(w) <= 3 {
		return w
	}
	switch {
	case strings.HasSuffix(w, "sses"):
		return w[:len(w)-2]
	case strings.HasSuffix(w, "ies") && len(w) > 4:
		return w[:len(w)-3] + "y"
	case strings.HasSuffix(w, "ness"):
		return w[:len(w)-4]
	case strings.HasSuffix(w, "ment") && len(w) > 6:
		return w[:len(w)-4]
	case strings.HasSuffix(w, "tions"):
		return w[:len(w)-1]
	case strings.HasSuffix(w, "ing") && len(w) > 5:
		stem := w[:len(w)-3]
		if len(stem) >= 3 && stem[len(stem)-1] == stem[len(stem)-2] { // hosting->host, planning->plan
			stem = stem[:len(stem)-1]
		}
		return stem
	case strings.HasSuffix(w, "ed") && len(w) > 4:
		stem := w[:len(w)-2]
		if len(stem) >= 3 && stem[len(stem)-1] == stem[len(stem)-2] {
			stem = stem[:len(stem)-1]
		}
		return stem
	case strings.HasSuffix(w, "ly") && len(w) > 4:
		return w[:len(w)-2]
	case strings.HasSuffix(w, "xes"), strings.HasSuffix(w, "ches"),
		strings.HasSuffix(w, "shes"), strings.HasSuffix(w, "zzes"):
		return w[:len(w)-2]
	case strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss") && !strings.HasSuffix(w, "us"):
		return w[:len(w)-1]
	}
	return w
}

// Normalize lowercases text, strips stopwords and punctuation-only tokens,
// and returns the remaining stems — the normalised bag-of-words view used
// before semantic comparison (Section 5.2: "the transcribed text ... is
// normalized, its stopwords are removed").
func Normalize(text string) []string {
	var out []string
	for _, t := range Tokenize(text) {
		if IsStopword(t.Norm) || !hasLetterOrDigit(t.Norm) {
			continue
		}
		out = append(out, t.Stem)
	}
	return out
}

func hasLetterOrDigit(s string) bool {
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			return true
		}
	}
	return false
}
