package admin

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vs2/internal/obs"
)

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code, rec.Body.String()
}

// TestAdminMetrics: /metrics renders the registry snapshot in
// Prometheus text exposition with the versioned content type.
func TestAdminMetrics(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("extract.runs").Add(3)
	r.Gauge(obs.Name("shard.up", obs.L("shard", "0"))).Set(1)
	h := Handler(Config{Metrics: r.Snapshot})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type = %q, want versioned exposition type", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{"extract_runs 3", `shard_up{shard="0"} 1`} {
		if !strings.Contains(body, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}

// TestAdminHealth: /healthz tolerates degradation (200) but not
// failure (503); /readyz drains on either.
func TestAdminHealth(t *testing.T) {
	cases := []struct {
		status    string
		wantLive  int
		wantReady int
	}{
		{"ok", 200, 200},
		{"degraded", 200, 503},
		{"failed", 503, 503},
	}
	for _, tc := range cases {
		h := Handler(Config{Health: func() HealthStatus {
			return HealthStatus{Status: tc.status, Detail: map[string]int{"live": 2}}
		}})
		if code, body := get(t, h, "/healthz"); code != tc.wantLive {
			t.Errorf("%s: /healthz = %d, want %d (%s)", tc.status, code, tc.wantLive, body)
		}
		if code, body := get(t, h, "/readyz"); code != tc.wantReady {
			t.Errorf("%s: /readyz = %d, want %d (%s)", tc.status, code, tc.wantReady, body)
		}
	}
	// Nil sources serve well-formed defaults.
	h := Handler(Config{})
	code, body := get(t, h, "/healthz")
	if code != 200 || !strings.Contains(body, `"ok"`) {
		t.Errorf("nil-config /healthz = %d %q", code, body)
	}
}

// TestAdminSLO: /slo renders the summary JSON from the callback.
func TestAdminSLO(t *testing.T) {
	h := Handler(Config{SLO: func() SLOStatus {
		return SLOStatus{WindowSeconds: 60, Count: 10, P50MS: 2.5, P95MS: 9, P99MS: 20, Completed: 10, Shed: 1, ShedRate: 0.1}
	}})
	code, body := get(t, h, "/slo")
	if code != 200 {
		t.Fatalf("/slo = %d", code)
	}
	var got SLOStatus
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("bad /slo JSON: %v\n%s", err, body)
	}
	if got.P95MS != 9 || got.ShedRate != 0.1 {
		t.Errorf("/slo round trip = %+v", got)
	}
}

// TestAdminScaleRoll: POST /admin/scale and /admin/roll drive the
// reconfiguration hooks; bad input, wrong methods and hook errors map
// to the right status codes; nil hooks leave the endpoints unmounted.
func TestAdminScaleRoll(t *testing.T) {
	var scaled []int
	rolled := 0
	h := Handler(Config{
		Scale: func(n int) error {
			if n > 8 {
				return errNoCapacity
			}
			scaled = append(scaled, n)
			return nil
		},
		Roll: func() error { rolled++; return nil },
	})
	post := func(path, contentType, body string) (int, string) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", path, strings.NewReader(body))
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		h.ServeHTTP(rec, req)
		return rec.Code, rec.Body.String()
	}

	if code, body := post("/admin/scale?shards=5", "", ""); code != 200 {
		t.Errorf("scale?shards=5 = %d (%s)", code, body)
	}
	if code, body := post("/admin/scale", "application/json", `{"shards":3}`); code != 200 {
		t.Errorf("scale JSON body = %d (%s)", code, body)
	}
	if len(scaled) != 2 || scaled[0] != 5 || scaled[1] != 3 {
		t.Errorf("Scale hook saw %v, want [5 3]", scaled)
	}
	if code, _ := post("/admin/roll", "", ""); code != 200 || rolled != 1 {
		t.Errorf("roll = %d, hook calls %d", rolled, rolled)
	}

	if code, _ := post("/admin/scale", "", ""); code != 400 {
		t.Errorf("scale with no n = %d, want 400", code)
	}
	if code, _ := post("/admin/scale?shards=0", "", ""); code != 400 {
		t.Errorf("scale?shards=0 = %d, want 400", code)
	}
	if code, _ := post("/admin/scale?shards=nope", "", ""); code != 400 {
		t.Errorf("scale?shards=nope = %d, want 400", code)
	}
	if code, body := post("/admin/scale?shards=99", "", ""); code != 500 || !strings.Contains(body, "no capacity") {
		t.Errorf("scale hook error = %d (%s), want 500", code, body)
	}
	if code, _ := get(t, h, "/admin/scale"); code != 405 {
		t.Errorf("GET /admin/scale = %d, want 405", code)
	}
	if code, _ := get(t, h, "/admin/roll"); code != 405 {
		t.Errorf("GET /admin/roll = %d, want 405", code)
	}

	// Without hooks (vs2serve), the endpoints do not exist.
	bare := Handler(Config{})
	rec := httptest.NewRecorder()
	rec2 := httptest.NewRecorder()
	bare.ServeHTTP(rec, httptest.NewRequest("POST", "/admin/scale?shards=2", nil))
	bare.ServeHTTP(rec2, httptest.NewRequest("POST", "/admin/roll", nil))
	if rec.Code != 404 || rec2.Code != 404 {
		t.Errorf("hookless scale/roll = %d/%d, want 404/404", rec.Code, rec2.Code)
	}
}

var errNoCapacity = errors.New("no capacity for that many shards")

// TestAdminPprof: the pprof index mounts under /debug/pprof/.
func TestAdminPprof(t *testing.T) {
	h := Handler(Config{})
	if code, body := get(t, h, "/debug/pprof/"); code != 200 || !strings.Contains(body, "profile") {
		t.Errorf("/debug/pprof/ = %d, body %.80q", code, body)
	}
}

// TestAdminStart: a real listener binds :0, serves, reports its
// address and closes cleanly.
func TestAdminStart(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("x").Add(1)
	s, err := Start("127.0.0.1:0", Config{Metrics: r.Snapshot})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || !strings.Contains(string(body), "x 1\n") {
		t.Errorf("live /metrics = %d %q", resp.StatusCode, body)
	}
	if err := s.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}
