// Package admin serves the operational plane of a vs2 process: a small
// HTTP listener exposing Prometheus metrics, liveness/readiness probes,
// an SLO summary, and the standard pprof handlers. Both vs2d (the
// sharded front end) and vs2serve (the single-process server) mount it
// behind an -admin flag; the handlers only read — scraping never
// perturbs the serving path beyond a registry snapshot.
package admin

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"vs2/internal/obs"
)

// Config wires the admin endpoints to the process's observability
// state. Every field is optional: a nil source serves an empty (but
// well-formed) response, so a caller can mount the listener before all
// subsystems exist.
type Config struct {
	// Metrics returns the snapshot /metrics renders. Called per scrape.
	Metrics func() obs.Snapshot
	// Health returns the health document /healthz and /readyz judge.
	// Degraded keeps /healthz at 200 (the process is alive and serving,
	// just not at full strength) but flips /readyz to 503 so a load
	// balancer drains it; Failed flips both to 503.
	Health func() HealthStatus
	// SLO returns the latency/error summary /slo renders. Called per
	// request.
	SLO func() SLOStatus
	// Scale, when non-nil, mounts POST /admin/scale?shards=N: live fleet
	// resizing. The hook blocks until the transition completes (or its
	// own timeout fires) and its error becomes a 500 with the message in
	// the body. Nil leaves the endpoint a 404 — vs2serve has no fleet.
	Scale func(n int) error
	// Roll, when non-nil, mounts POST /admin/roll: a rolling restart of
	// every shard's child, one at a time. Same blocking and error
	// contract as Scale.
	Roll func() error
}

// HealthStatus is the health document: an overall verdict plus an
// arbitrary detail payload (vs2d supplies the per-shard fleet health).
type HealthStatus struct {
	// Status is "ok", "degraded" or "failed".
	Status string `json:"status"`
	// Detail is endpoint-specific structured state, e.g. per-shard
	// supervision snapshots.
	Detail any `json:"detail,omitempty"`
}

// SLOStatus is the /slo summary: end-to-end latency quantiles over a
// sliding window plus cumulative shed/degraded/failed rates.
type SLOStatus struct {
	// WindowSeconds is the quantile window's span.
	WindowSeconds float64 `json:"window_seconds"`
	// Count is the number of observations inside the window.
	Count int64 `json:"count"`
	// P50MS, P95MS and P99MS are latency quantiles in milliseconds.
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	// Completed, Failed, Shed and Degraded are cumulative document
	// counts since process start.
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Shed      int64 `json:"shed"`
	Degraded  int64 `json:"degraded"`
	// ShedRate and DegradedRate are the cumulative fractions of
	// documents shed / degraded; 0 when nothing has completed.
	ShedRate     float64 `json:"shed_rate"`
	DegradedRate float64 `json:"degraded_rate"`
	// ShedReasons breaks Shed down by cause (queue_full, queue_wait,
	// admission_closed). Empty when nothing was shed.
	ShedReasons map[string]int64 `json:"shed_reasons,omitempty"`
	// FidelityLevel is the adaptive fidelity ladder's current level: 0 is
	// full fidelity, rising under saturation. Always 0 with the ladder
	// off.
	FidelityLevel int64 `json:"fidelity_level"`
	// FidelityShifts counts controller transitions by direction
	// ("up"/"down"). Empty when the controller never shifted.
	FidelityShifts map[string]int64 `json:"fidelity_shifts,omitempty"`
	// TriageDocs counts triaged documents by class ("full", "cheap",
	// "skip"), summed over fidelity levels. Empty with the ladder off.
	TriageDocs map[string]int64 `json:"triage_docs,omitempty"`
	// TemplateHits and TemplateMisses count layout-template cache
	// probes; TemplateEvictions counts LRU evictions. All 0 with the
	// cache off.
	TemplateHits      int64 `json:"template_hits"`
	TemplateMisses    int64 `json:"template_misses"`
	TemplateEvictions int64 `json:"template_evictions"`
	// TemplateHitRate is hits/(hits+misses); 0 before the first probe.
	TemplateHitRate float64 `json:"template_hit_rate"`
	// RingVersion is the routing ring's version (1 at boot, +1 per
	// scale); 0 on a process without a fleet.
	RingVersion int64 `json:"ring_version,omitempty"`
	// ReconfigEpoch is the latest completed fleet transition's epoch
	// (scales and rolls both count); Reconfig reports the one in
	// progress, null when the topology is stable.
	ReconfigEpoch int64 `json:"reconfig_epoch,omitempty"`
	Reconfig      any   `json:"reconfig,omitempty"`
}

// Server is one bound admin listener.
type Server struct {
	ln   net.Listener
	http *http.Server
}

// Start binds addr (e.g. "127.0.0.1:0") and serves the admin endpoints
// until Close. The returned server's Addr reports the bound address, so
// ":0" works for tests and for writing an address file.
func Start(addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("admin: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, http: &http.Server{
		Handler:           Handler(cfg),
		ReadHeaderTimeout: 5 * time.Second,
	}}
	go s.http.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return s, nil
}

// Addr is the listener's bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and any in-flight handlers.
func (s *Server) Close() error { return s.http.Close() }

// Handler builds the admin mux; exported so tests (and embedders) can
// drive the endpoints without a real listener.
func Handler(cfg Config) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		var snap obs.Snapshot
		if cfg.Metrics != nil {
			snap = cfg.Metrics()
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		snap.WritePrometheus(w) //nolint:errcheck // client gone mid-scrape
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeHealth(w, health(cfg), false)
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		writeHealth(w, health(cfg), true)
	})
	mux.HandleFunc("/slo", func(w http.ResponseWriter, r *http.Request) {
		var slo SLOStatus
		if cfg.SLO != nil {
			slo = cfg.SLO()
		}
		writeJSON(w, http.StatusOK, slo)
	})
	mux.HandleFunc("/admin/scale", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Scale == nil {
			http.NotFound(w, r)
			return
		}
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST required"})
			return
		}
		n, err := scaleTarget(r)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		if err := cfg.Scale(n); err != nil {
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "shards": n})
	})
	mux.HandleFunc("/admin/roll", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Roll == nil {
			http.NotFound(w, r)
			return
		}
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST required"})
			return
		}
		if err := cfg.Roll(); err != nil {
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// scaleTarget parses the target fleet size from ?shards=N (query or
// form) or a {"shards": N} JSON body.
func scaleTarget(r *http.Request) (int, error) {
	v := r.URL.Query().Get("shards")
	if v == "" && r.Header.Get("Content-Type") == "application/json" {
		var body struct {
			Shards int `json:"shards"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			return 0, fmt.Errorf("bad JSON body: %v", err)
		}
		if body.Shards >= 1 {
			return body.Shards, nil
		}
		return 0, fmt.Errorf("shards must be >= 1, got %d", body.Shards)
	}
	if v == "" {
		v = r.PostFormValue("shards")
	}
	if v == "" {
		return 0, fmt.Errorf("missing shards parameter")
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("shards must be an integer >= 1, got %q", v)
	}
	return n, nil
}

func health(cfg Config) HealthStatus {
	if cfg.Health == nil {
		return HealthStatus{Status: "ok"}
	}
	h := cfg.Health()
	if h.Status == "" {
		h.Status = "ok"
	}
	return h
}

// writeHealth maps the verdict onto a status code. Liveness (/healthz)
// tolerates degradation — restarting a degraded-but-serving process
// makes things worse; readiness (/readyz) does not — a drained process
// stops receiving new traffic until it recovers.
func writeHealth(w http.ResponseWriter, h HealthStatus, readiness bool) {
	code := http.StatusOK
	switch h.Status {
	case "failed":
		code = http.StatusServiceUnavailable
	case "degraded":
		if readiness {
			code = http.StatusServiceUnavailable
		}
	}
	writeJSON(w, code, h)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck
}
