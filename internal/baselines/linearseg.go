package baselines

import (
	"sort"

	"vs2/internal/doc"
)

// Linear is the degraded-mode segmenter of the robustness layer: a single
// linear sweep over the elements in reading order that opens a new block
// whenever the vertical gap to the previous line band exceeds 1.5× the
// median line height — paragraph segmentation with no recursion, no
// rasterisation and no feature math. It is strictly weaker than
// VS2-Segment (it cannot see columns or implicit visual modifiers) but it
// is O(n log n) on any input doc.Validate accepts, cannot loop, and never
// panics; Pipeline.ExtractContext falls back to it when VS2-Segment
// exceeds its budget or fails.
type Linear struct{}

// Name implements PageSegmenter.
func (Linear) Name() string { return "Linear" }

// Segment implements PageSegmenter. Image elements join the paragraph
// whose vertical span they fall into, like any other element in reading
// order.
func (Linear) Segment(d *doc.Document) []*doc.Node {
	if len(d.Elements) == 0 {
		return nil
	}
	all := make([]int, len(d.Elements))
	for i := range all {
		all[i] = i
	}
	ordered := d.ReadingOrder(all)

	// Median element height sets the paragraph-break threshold.
	hs := make([]float64, 0, len(ordered))
	for _, id := range ordered {
		if h := d.Elements[id].Box.H; h > 0 {
			hs = append(hs, h)
		}
	}
	gap := 1.0 // degenerate zero-height documents: any positive gap breaks
	if len(hs) > 0 {
		sort.Float64s(hs)
		gap = 1.5 * hs[len(hs)/2]
	}

	var out []*doc.Node
	var cur []int
	curMaxY := 0.0
	flush := func() {
		if len(cur) > 0 {
			out = append(out, &doc.Node{Box: d.BoundingBoxOf(cur), Elements: cur, Depth: 1})
			cur = nil
		}
	}
	for _, id := range ordered {
		b := d.Elements[id].Box
		if len(cur) > 0 && b.Y-curMaxY > gap {
			flush()
		}
		cur = append(cur, id)
		if b.MaxY() > curMaxY || len(cur) == 1 {
			curMaxY = b.MaxY()
		}
	}
	flush()
	return out
}
