package baselines

import (
	"math/rand"
	"strings"
	"testing"

	"vs2/internal/datasets"
	"vs2/internal/doc"
	"vs2/internal/extract"
	"vs2/internal/holdout"
	"vs2/internal/pattern"
)

func sampleD2(t *testing.T, n int) []doc.Labeled {
	t.Helper()
	return datasets.GenerateD2(datasets.Options{N: n, Seed: 17})
}

func sampleD3(t *testing.T, n int) []doc.Labeled {
	t.Helper()
	return datasets.GenerateD3(datasets.Options{N: n, Seed: 19})
}

func TestTextClusterSegmenter(t *testing.T) {
	d := sampleD2(t, 1)[0].Doc
	blocks := (&TextCluster{}).Segment(d)
	if len(blocks) < 2 {
		t.Fatalf("text clustering produced %d blocks", len(blocks))
	}
	// Every text element must appear in exactly one block.
	seen := map[int]int{}
	for _, b := range blocks {
		for _, id := range b.Elements {
			seen[id]++
		}
	}
	for _, id := range d.TextElements() {
		if seen[id] != 1 {
			t.Errorf("element %d in %d blocks", id, seen[id])
		}
	}
}

func TestLinearSegmenter(t *testing.T) {
	d := sampleD2(t, 1)[0].Doc
	blocks := (Linear{}).Segment(d)
	if len(blocks) < 2 {
		t.Fatalf("linear sweep produced %d blocks on a poster", len(blocks))
	}
	// Exact partition: every element in exactly one block.
	seen := map[int]int{}
	for _, b := range blocks {
		if len(b.Elements) == 0 {
			t.Fatal("empty block")
		}
		for _, id := range b.Elements {
			seen[id]++
		}
	}
	for id := range d.Elements {
		if seen[id] != 1 {
			t.Errorf("element %d in %d blocks", id, seen[id])
		}
	}
	// Degenerate inputs must not panic or loop.
	if got := (Linear{}).Segment(&doc.Document{ID: "empty", Width: 10, Height: 10}); got != nil {
		t.Errorf("empty document produced %d blocks", len(got))
	}
}

func TestXYCutSegmentsPoster(t *testing.T) {
	d := sampleD2(t, 1)[0].Doc
	blocks := (&XYCut{}).Segment(d)
	if len(blocks) < 2 {
		t.Fatalf("XY-cut produced %d blocks", len(blocks))
	}
	// Blocks must not share elements.
	seen := map[int]bool{}
	for _, b := range blocks {
		for _, id := range b.Elements {
			if seen[id] {
				t.Fatal("element in two XY-cut blocks")
			}
			seen[id] = true
		}
	}
}

func TestXYCutCannotSplitStagger(t *testing.T) {
	// Interlocked boxes: no straight gap; XY-cut must return one block.
	d := &doc.Document{ID: "stagger", Width: 100, Height: 40}
	d.Elements = []doc.Element{
		{ID: 0, Kind: doc.TextElement, Text: "aaaa", Box: rect(0, 0, 60, 12)},
		{ID: 1, Kind: doc.TextElement, Text: "bbbb", Box: rect(30, 16, 60, 12)},
	}
	blocks := (&XYCut{MinGap: 5}).Segment(d)
	if len(blocks) != 1 {
		t.Errorf("XY-cut split an interlocked layout into %d", len(blocks))
	}
}

func rect(x, y, w, h float64) (r struct{ X, Y, W, H float64 }) {
	r.X, r.Y, r.W, r.H = x, y, w, h
	return
}

func TestVoronoiSegmenter(t *testing.T) {
	d := sampleD2(t, 1)[0].Doc
	blocks := (&Voronoi{}).Segment(d)
	if len(blocks) < 2 {
		t.Fatalf("voronoi produced %d blocks", len(blocks))
	}
	empty := &doc.Document{ID: "e", Width: 10, Height: 10}
	if got := (&Voronoi{}).Segment(empty); len(got) != 1 {
		t.Errorf("empty doc blocks = %d", len(got))
	}
}

func TestVIPSRequiresDOM(t *testing.T) {
	docs := sampleD2(t, 20)
	var withDOM, without *doc.Document
	for _, l := range docs {
		if l.Doc.DOM != nil && withDOM == nil {
			withDOM = l.Doc
		}
		if l.Doc.DOM == nil && without == nil {
			without = l.Doc
		}
	}
	if withDOM == nil || without == nil {
		t.Fatal("capture mix missing one kind")
	}
	if blocks := (VIPS{}).Segment(withDOM); len(blocks) < 2 {
		t.Errorf("VIPS on DOM doc = %d blocks", len(blocks))
	}
	if blocks := (VIPS{}).Segment(without); blocks != nil {
		t.Errorf("VIPS without DOM returned %d blocks", len(blocks))
	}
}

func TestTable5SegmentersComplete(t *testing.T) {
	segs := Table5Segmenters()
	if len(segs) != 6 {
		t.Fatalf("segmenters = %d", len(segs))
	}
	names := []string{"Text-only", "XY-Cut", "Voronoi", "VIPS", "Tesseract", "VS2-Segment"}
	for i, s := range segs {
		if s.Name() != names[i] {
			t.Errorf("segmenter %d = %s, want %s", i, s.Name(), names[i])
		}
	}
}

func d2Task() Task {
	return Task{Dataset: "d2", Sets: pattern.EventPatterns(), Weights: extract.VisuallyOrnate}
}

func d3Task() Task {
	return Task{Dataset: "d3", Sets: pattern.RealEstatePatterns(), Weights: extract.Balanced}
}

func TestVS2EndToEnd(t *testing.T) {
	l := sampleD2(t, 1)[0]
	got := (VS2{}).Extract(d2Task(), l.Doc)
	if len(got) < 3 {
		t.Fatalf("VS2 extracted only %d entities: %+v", len(got), got)
	}
}

func TestTextOnlyEndToEnd(t *testing.T) {
	l := sampleD3(t, 1)[0]
	got := (TextOnly{}).Extract(d3Task(), l.Doc)
	if len(got) < 3 {
		t.Fatalf("TextOnly extracted only %d entities", len(got))
	}
}

func TestClausIE(t *testing.T) {
	if (ClausIE{}).Applicable("d1") {
		t.Error("ClausIE should not apply to D1")
	}
	l := sampleD2(t, 1)[0]
	got := (ClausIE{}).Extract(d2Task(), l.Doc)
	if len(got) == 0 {
		t.Fatal("ClausIE extracted nothing")
	}
}

func TestFSMTrainsAndExtracts(t *testing.T) {
	f := &FSM{Corpora: map[string]*holdout.Corpus{
		"d3": holdout.Build(holdout.D3Sites(), holdout.BuildOptions{Seed: 4, MaxBatches: 3}),
	}}
	task := d3Task()
	f.Train(task, nil)
	l := sampleD3(t, 1)[0]
	got := f.Extract(task, l.Doc)
	if len(got) == 0 {
		t.Fatal("FSM extracted nothing")
	}
}

func TestApostolovaLearnsBlocks(t *testing.T) {
	docs := sampleD3(t, 30)
	split := len(docs) * 6 / 10
	a := &Apostolova{}
	task := d3Task()
	a.Train(task, docs[:split])
	hits := 0
	for _, l := range docs[split:] {
		got := a.Extract(task, l.Doc)
		for _, e := range got {
			for _, ann := range l.Truth.ForEntity(e.Entity) {
				if e.Box.IoU(ann.Box) >= 0.5 {
					hits++
				}
			}
		}
	}
	if hits == 0 {
		t.Error("Apostolova never located an entity on held-out docs")
	}
}

func TestMLBasedRequiresDOM(t *testing.T) {
	m := &MLBased{}
	if m.Applicable("d1") {
		t.Error("ML-based should not apply to D1")
	}
	docs := sampleD3(t, 20)
	task := d3Task()
	m.Train(task, docs[:12])
	got := m.Extract(task, docs[15].Doc)
	if len(got) == 0 {
		t.Error("ML-based extracted nothing from a DOM document")
	}
	noDom := docs[16].Doc.Clone()
	noDom.DOM = nil
	if got := m.Extract(task, noDom); got != nil {
		t.Error("ML-based should skip DOM-less documents")
	}
}

func TestReportMinerMasks(t *testing.T) {
	docs := sampleD3(t, 40)
	split := len(docs) * 6 / 10
	r := &ReportMiner{}
	task := d3Task()
	r.Train(task, docs[:split])
	l := docs[split]
	got := r.Extract(task, l.Doc)
	if len(got) == 0 {
		t.Fatal("ReportMiner extracted nothing for a known template")
	}
	// Unknown template yields nothing.
	stranger := l.Doc.Clone()
	stranger.Template = "never-seen"
	if got := r.Extract(task, stranger); got != nil {
		t.Error("ReportMiner extracted for an unseen template")
	}
	// Masks should locate at least the phone on same-template docs.
	found := false
	for _, e := range got {
		if e.Entity == pattern.BrokerPhone && strings.ContainsAny(e.Text, "0123456789") {
			found = true
		}
	}
	if !found {
		t.Errorf("ReportMiner phone mask failed: %+v", got)
	}
}

func TestLinearModel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var xs [][]float64
	var ys []string
	for i := 0; i < 200; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		label := "a"
		if x[0]+x[1] > 1 {
			label = "b"
		}
		xs = append(xs, x)
		ys = append(ys, label)
	}
	m := trainLinear(xs, ys, 20, 3)
	correct := 0
	for i := range xs {
		if got, _ := m.Predict(xs[i]); got == ys[i] {
			correct++
		}
	}
	if correct < 180 {
		t.Errorf("linear model accuracy %d/200", correct)
	}
	if _, s := m.Predict([]float64{0, 0}); s == 0 {
		t.Log("zero score at origin is acceptable but unexpected")
	}
	empty := trainLinear(nil, nil, 5, 1)
	if c, _ := empty.Predict([]float64{1}); c != "" {
		t.Error("empty model should predict nothing")
	}
}

func TestOtsuThreshold(t *testing.T) {
	// Clean bimodal: threshold between the modes.
	gaps := []float64{4, 4, 4.5, 5, 5, 5.2, 12, 12, 12.5, 13, 13}
	cut := otsuThreshold(gaps)
	if cut < 5.2 || cut > 12 {
		t.Errorf("otsu threshold %v not in the valley", cut)
	}
	// Unimodal: no cut.
	uni := []float64{5, 5.1, 5.2, 5.3, 5.1, 5.05, 5.2}
	if cut := otsuThreshold(uni); cut < 1e10 {
		t.Errorf("unimodal threshold %v should be +Inf", cut)
	}
	// Degenerate input.
	if cut := otsuThreshold([]float64{1, 2}); cut < 1e10 {
		t.Error("tiny sample should not threshold")
	}
}

func TestAdaptiveGap(t *testing.T) {
	d := sampleD2(t, 1)[0].Doc
	ids := d.TextElements()
	g := adaptiveGap(d, ids, 6)
	if g < 6 {
		t.Errorf("adaptive gap %v below floor", g)
	}
	// Empty selection falls back to the floor.
	if got := adaptiveGap(d, nil, 6); got != 6 {
		t.Errorf("empty adaptive gap = %v", got)
	}
}

func TestVS2SegmentAdapter(t *testing.T) {
	d := sampleD2(t, 1)[0].Doc
	blocks := (VS2Segment{}).Segment(d)
	if len(blocks) < 2 {
		t.Errorf("adapter produced %d blocks", len(blocks))
	}
}
