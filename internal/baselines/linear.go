package baselines

import (
	"math"
	"math/rand"
	"sort"
)

// linear.go provides the small multiclass linear classifier behind the two
// learning-based comparators of Table 7: the SVM of Apostolova et al. [2]
// (visual + textual features of candidate regions) and the ML-based web
// extractor of Zhou & Mashuq [49] (features of HTML text nodes). An
// averaged multiclass perceptron is a faithful stand-in for a linear-kernel
// SVM at this scale: both learn a linear separator per class; the averaged
// perceptron simply reaches it by online updates.
type linearModel struct {
	classes []string
	dim     int
	// w[c] is the weight vector of class c (bias folded in at index dim).
	w [][]float64
}

// trainLinear fits an averaged multiclass perceptron. xs are feature
// vectors (equal length), ys the class labels. Deterministic for a fixed
// seed.
func trainLinear(xs [][]float64, ys []string, epochs int, seed int64) *linearModel {
	if len(xs) == 0 {
		return &linearModel{}
	}
	if epochs <= 0 {
		epochs = 12
	}
	dim := len(xs[0])
	classSet := map[string]int{}
	var classes []string
	for _, y := range ys {
		if _, ok := classSet[y]; !ok {
			classSet[y] = len(classes)
			classes = append(classes, y)
		}
	}
	sort.Strings(classes)
	for i, c := range classes {
		classSet[c] = i
	}

	w := make([][]float64, len(classes))
	acc := make([][]float64, len(classes))
	for i := range w {
		w[i] = make([]float64, dim+1)
		acc[i] = make([]float64, dim+1)
	}
	rng := rand.New(rand.NewSource(seed))
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	steps := 1.0
	for ep := 0; ep < epochs; ep++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for _, i := range idx {
			x := xs[i]
			gold := classSet[ys[i]]
			pred := argmaxClass(w, x)
			if pred != gold {
				for d := 0; d < dim; d++ {
					w[gold][d] += x[d]
					w[pred][d] -= x[d]
				}
				w[gold][dim]++
				w[pred][dim]--
			}
			for c := range w {
				for d := range w[c] {
					acc[c][d] += w[c][d]
				}
			}
			steps++
		}
	}
	for c := range acc {
		for d := range acc[c] {
			acc[c][d] /= steps
		}
	}
	return &linearModel{classes: classes, dim: dim, w: acc}
}

func argmaxClass(w [][]float64, x []float64) int {
	best, bestScore := 0, math.Inf(-1)
	for c := range w {
		s := score(w[c], x)
		if s > bestScore {
			best, bestScore = c, s
		}
	}
	return best
}

func score(w, x []float64) float64 {
	s := w[len(w)-1] // bias
	for d := 0; d < len(w)-1 && d < len(x); d++ {
		s += w[d] * x[d]
	}
	return s
}

// Predict returns the best class and its margin score.
func (m *linearModel) Predict(x []float64) (string, float64) {
	if len(m.classes) == 0 {
		return "", 0
	}
	c := argmaxClass(m.w, x)
	return m.classes[c], score(m.w[c], x)
}

// Score returns the margin of one class for the input.
func (m *linearModel) Score(class string, x []float64) float64 {
	for c, name := range m.classes {
		if name == class {
			return score(m.w[c], x)
		}
	}
	return math.Inf(-1)
}
