// Package baselines implements every comparator of the paper's evaluation:
// the five page-segmentation baselines of Table 5 (text-only clustering,
// XY-Cut, Voronoi tessellation, VIPS, Tesseract layout analysis) and the
// five end-to-end IE baselines of Table 7 (ClausIE, frequent-subtree
// mining, the ML-based web extractor, Apostolova et al.'s multimodal SVM,
// and the ReportMiner template-mask tool), plus the text-only pipeline the
// ΔF1 columns of Tables 6 and 8 are measured against.
package baselines

import (
	"math"
	"sort"

	"vs2/internal/doc"
	"vs2/internal/embed"
	"vs2/internal/ocr"
	"vs2/internal/segment"
)

// PageSegmenter is the common interface of Table 5 rows: decompose a
// document into block proposals. Segmenters that cannot process a document
// (VIPS without a DOM) return nil, and the evaluation skips the document
// for that method, as the paper does ("A4 could not be applied on D1").
type PageSegmenter interface {
	Name() string
	Segment(d *doc.Document) []*doc.Node
}

// --- A1: text-only clustering ------------------------------------------

// TextCluster groups words with similar word embeddings into the same
// clusters, ignoring geometry (baseline A1): words are consumed in reading
// order and a new cluster opens whenever the next word's embedding departs
// from the running cluster centroid — topic shifts in the text stream are
// the only block boundaries this baseline can see. Block boxes are the
// bounding boxes of the clusters, spatially incoherent whenever the layout
// interleaves topics, which is the point of the baseline.
type TextCluster struct {
	// Threshold is the cosine similarity below which a word starts a new
	// cluster (default 0.35).
	Threshold float64
	// Embedder defaults to the shared lexicon embedder.
	Embedder embed.Embedder
}

// Name implements PageSegmenter.
func (t *TextCluster) Name() string { return "Text-only" }

// Segment implements PageSegmenter.
func (t *TextCluster) Segment(d *doc.Document) []*doc.Node {
	th := t.Threshold
	if th == 0 {
		th = 0.35
	}
	e := t.Embedder
	if e == nil {
		e = sharedLexicon
	}
	var out []*doc.Node
	var cur []int
	var vec []float64
	n := 0
	flush := func() {
		if len(cur) > 0 {
			out = append(out, &doc.Node{Box: d.BoundingBoxOf(cur), Elements: cur, Depth: 1})
			cur, vec, n = nil, nil, 0
		}
	}
	for _, id := range d.ReadingOrder(d.TextElements()) {
		v := e.Vec(d.Elements[id].Text)
		if n > 0 && embed.Cosine(v, vec) < th {
			flush()
		}
		if n == 0 {
			vec = append([]float64(nil), v...)
		} else {
			for i := range vec {
				vec[i] = (vec[i]*float64(n) + v[i]) / float64(n+1)
			}
		}
		cur = append(cur, id)
		n++
	}
	flush()
	for _, id := range d.ImageElements() {
		out = append(out, &doc.Node{Box: d.Elements[id].Box, Elements: []int{id}, Depth: 1})
	}
	return out
}

var sharedLexicon = embed.NewLexicon()

// --- A2: XY-Cut ----------------------------------------------------------

// XYCut recursively splits the page at the widest straight projection gap
// (baseline A2, the classic Nagy-style recursive cut). Gaps must exceed
// MinGap page units to cut.
type XYCut struct {
	// MinGap is the smallest projection gap that still splits (default 6).
	MinGap float64
	// MaxDepth bounds the recursion (default 8).
	MaxDepth int
}

// Name implements PageSegmenter.
func (x *XYCut) Name() string { return "XY-Cut" }

// Segment implements PageSegmenter.
func (x *XYCut) Segment(d *doc.Document) []*doc.Node {
	minGap := x.MinGap
	if minGap == 0 {
		minGap = 6
	}
	maxDepth := x.MaxDepth
	if maxDepth == 0 {
		maxDepth = 14
	}
	all := make([]int, len(d.Elements))
	for i := range all {
		all[i] = i
	}
	var rec func(ids []int, depth int) []*doc.Node
	rec = func(ids []int, depth int) []*doc.Node {
		node := &doc.Node{Box: d.BoundingBoxOf(ids), Elements: ids, Depth: depth}
		if depth >= maxDepth || len(ids) < 2 {
			return []*doc.Node{node}
		}
		if groups := xySplit(d, ids, adaptiveGap(d, ids, minGap)); len(groups) >= 2 {
			var out []*doc.Node
			for _, g := range groups {
				out = append(out, rec(g, depth+1)...)
			}
			return out
		}
		return []*doc.Node{node}
	}
	return rec(all, 0)
}

// adaptiveGap scales the cut threshold to the group's typography: a
// projection gap only separates areas when it clearly exceeds the line
// height of the text it runs through (word spacing is ≈0.5×, leading
// ≈0.2-0.5× the font height).
func adaptiveGap(d *doc.Document, ids []int, minGap float64) float64 {
	var hs []float64
	for _, id := range ids {
		if d.Elements[id].Kind == doc.TextElement {
			hs = append(hs, d.Elements[id].Box.H)
		}
	}
	if len(hs) == 0 {
		return minGap
	}
	sort.Float64s(hs)
	if g := 0.9 * hs[len(hs)/2]; g > minGap {
		return g
	}
	return minGap
}

// xySplit finds the widest horizontal or vertical projection gap and
// splits the element set there.
func xySplit(d *doc.Document, ids []int, minGap float64) [][]int {
	bestGap, bestAt, bestHoriz := minGap, 0.0, false
	found := false
	for _, horiz := range []bool{true, false} {
		type iv struct{ lo, hi float64 }
		ivs := make([]iv, 0, len(ids))
		for _, id := range ids {
			b := d.Elements[id].Box
			if horiz {
				ivs = append(ivs, iv{b.Y, b.MaxY()})
			} else {
				ivs = append(ivs, iv{b.X, b.MaxX()})
			}
		}
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
		cover := ivs[0].hi
		for _, v := range ivs[1:] {
			if v.lo-cover > bestGap {
				bestGap, bestAt, bestHoriz, found = v.lo-cover, (v.lo+cover)/2, horiz, true
			}
			if v.hi > cover {
				cover = v.hi
			}
		}
	}
	if !found {
		return nil
	}
	var a, b []int
	for _, id := range ids {
		c := d.Elements[id].Box.Centroid()
		v := c.X
		if bestHoriz {
			v = c.Y
		}
		if v < bestAt {
			a = append(a, id)
		} else {
			b = append(b, id)
		}
	}
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	return [][]int{a, b}
}

// --- A3: Voronoi tessellation -------------------------------------------

// Voronoi approximates Kise's area-Voronoi segmentation (baseline A3): a
// neighbour graph over element boxes is thresholded on the gap
// distribution — edges much longer than the dominant inter-word/line gap
// are cut — and the connected components become blocks. Font-size ratio is
// taken into account as in the original ("summary statistics such as the
// distribution of font size, area ratio, angular distance").
type Voronoi struct {
	// K is the number of nearest neighbours linked per element (default 4).
	K int
}

// Name implements PageSegmenter.
func (v *Voronoi) Name() string { return "Voronoi" }

// Segment implements PageSegmenter.
func (v *Voronoi) Segment(d *doc.Document) []*doc.Node {
	k := v.K
	if k == 0 {
		k = 4
	}
	ids := append(d.TextElements(), d.ImageElements()...)
	if len(ids) == 0 {
		return []*doc.Node{doc.NewTree(d)}
	}
	type edge struct {
		a, b int
		gap  float64
	}
	var edges []edge
	for i, a := range ids {
		type cand struct {
			j   int
			gap float64
		}
		var cands []cand
		for j, b := range ids {
			if i == j {
				continue
			}
			cands = append(cands, cand{j, d.Elements[a].Box.Gap(d.Elements[b].Box)})
		}
		sort.Slice(cands, func(x, y int) bool { return cands[x].gap < cands[y].gap })
		for n := 0; n < k && n < len(cands); n++ {
			edges = append(edges, edge{i, cands[n].j, cands[n].gap})
		}
	}
	// Threshold from the gap distribution, as Kise's analysis of the area
	// Voronoi diagram does: the sorted neighbour gaps are bimodal
	// (intra-area word/line spacing vs inter-area separation); the largest
	// multiplicative jump in the sorted sequence separates the modes, and
	// the threshold sits between them. A near-unimodal distribution (max
	// jump < 1.5×) means the page has no separation structure to cut.
	gaps := make([]float64, len(edges))
	for i, e := range edges {
		gaps[i] = e.gap
	}
	sort.Float64s(gaps)
	// Trim the far tail before thresholding: a few huge gaps (isolated
	// decorations, page corners) would otherwise dominate the between-class
	// variance and drag the Otsu threshold into the tail instead of the
	// valley between the word-spacing and area-separation modes. Edges that
	// long are cuts under any threshold, so dropping them loses nothing.
	if n := len(gaps); n > 0 {
		lim := gaps[n/2]*3 + 1
		cut := sort.SearchFloat64s(gaps, lim)
		gaps = gaps[:cut]
	}
	cutAt := otsuThreshold(gaps)

	parent := make([]int, len(ids))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, e := range edges {
		if e.gap > cutAt {
			continue
		}
		// Font-size guard: elements with very different heights do not
		// join directly (headline vs body), unless they touch.
		ha, hb := d.Elements[ids[e.a]].Box.H, d.Elements[ids[e.b]].Box.H
		ratio := ha / hb
		if ratio < 1 {
			ratio = 1 / ratio
		}
		if ratio > 1.8 && e.gap > 2 {
			continue
		}
		parent[find(e.a)] = find(e.b)
	}
	comps := map[int][]int{}
	for i, id := range ids {
		r := find(i)
		comps[r] = append(comps[r], id)
	}
	roots := make([]int, 0, len(comps))
	for r := range comps {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	var out []*doc.Node
	for _, r := range roots {
		out = append(out, &doc.Node{Box: d.BoundingBoxOf(comps[r]), Elements: comps[r], Depth: 1})
	}
	return out
}

// otsuThreshold splits a sorted sample into two classes maximising the
// between-class variance (Otsu's method) — the classic way to separate the
// intra-area spacing mode from the inter-area separation mode in a gap
// histogram. Returns +Inf when the distribution is effectively unimodal
// (no threshold achieves meaningful separation).
func otsuThreshold(sorted []float64) float64 {
	n := len(sorted)
	if n < 4 {
		return math.Inf(1)
	}
	prefix := make([]float64, n+1)
	for i, g := range sorted {
		prefix[i+1] = prefix[i] + g
	}
	total := prefix[n]
	bestVar, bestAt := 0.0, -1
	for i := 1; i < n; i++ {
		if sorted[i] == sorted[i-1] {
			continue
		}
		w0 := float64(i)
		w1 := float64(n - i)
		mu0 := prefix[i] / w0
		mu1 := (total - prefix[i]) / w1
		v := w0 * w1 * (mu0 - mu1) * (mu0 - mu1)
		if v > bestVar {
			bestVar, bestAt = v, i
		}
	}
	if bestAt < 0 {
		return math.Inf(1)
	}
	lo, hi := sorted[bestAt-1], sorted[bestAt]
	// Unimodal guard: the two classes must be genuinely apart.
	if lo <= 0 || hi/math.Max(lo, 1) < 1.3 {
		mu0 := prefix[bestAt] / float64(bestAt)
		mu1 := (total - prefix[bestAt]) / float64(n-bestAt)
		if mu1/math.Max(mu0, 1) < 1.8 {
			return math.Inf(1)
		}
	}
	return (lo + hi) / 2
}

// --- A4: VIPS -------------------------------------------------------------

// VIPS exploits HTML-specific structure (baseline A4, Cai et al. [4]): the
// DOM's block-level children become visual blocks, recursively split when
// a child covers disjoint areas. Returns nil for documents without markup
// — the paper could not apply VIPS to D1 and converted other documents to
// HTML first.
type VIPS struct{}

// Name implements PageSegmenter.
func (VIPS) Name() string { return "VIPS" }

// Segment implements PageSegmenter.
func (VIPS) Segment(d *doc.Document) []*doc.Node {
	if d.DOM == nil {
		return nil
	}
	var out []*doc.Node
	var walk func(n *doc.DOMNode)
	walk = func(n *doc.DOMNode) {
		if len(n.Children) == 0 {
			if len(n.Elements) > 0 {
				out = append(out, &doc.Node{
					Box:      d.BoundingBoxOf(n.Elements),
					Elements: append([]int(nil), n.Elements...),
					Depth:    1,
				})
			}
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(d.DOM)
	if len(out) == 0 {
		return nil
	}
	// Elements not covered by any DOM node form one residual block —
	// VIPS sees only the markup tree.
	covered := map[int]bool{}
	for _, b := range out {
		for _, id := range b.Elements {
			covered[id] = true
		}
	}
	var rest []int
	for i := range d.Elements {
		if !covered[i] {
			rest = append(rest, i)
		}
	}
	if len(rest) > 0 {
		out = append(out, &doc.Node{Box: d.BoundingBoxOf(rest), Elements: rest, Depth: 1})
	}
	return out
}

// --- A5: Tesseract layout --------------------------------------------------

// Tesseract wraps the ocr package's layout analysis (baseline A5).
type Tesseract struct{}

// Name implements PageSegmenter.
func (Tesseract) Name() string { return "Tesseract" }

// Segment implements PageSegmenter.
func (Tesseract) Segment(d *doc.Document) []*doc.Node { return ocr.LayoutBlocks(d) }

// --- A6: VS2-Segment --------------------------------------------------------

// VS2Segment adapts the core segmenter to the PageSegmenter interface.
type VS2Segment struct {
	Opts segment.Options
}

// Name implements PageSegmenter.
func (VS2Segment) Name() string { return "VS2-Segment" }

// Segment implements PageSegmenter.
func (v VS2Segment) Segment(d *doc.Document) []*doc.Node {
	return segment.New(v.Opts).Blocks(d)
}

// Table5Segmenters returns the six rows of Table 5 in paper order.
func Table5Segmenters() []PageSegmenter {
	return []PageSegmenter{
		&TextCluster{},
		&XYCut{},
		&Voronoi{},
		VIPS{},
		Tesseract{},
		VS2Segment{},
	}
}
