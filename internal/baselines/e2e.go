package baselines

import (
	"regexp"
	"sort"
	"strings"

	"vs2/internal/colorlab"
	"vs2/internal/doc"
	"vs2/internal/extract"
	"vs2/internal/geom"
	"vs2/internal/holdout"
	"vs2/internal/nlp"
	"vs2/internal/ocr"
	"vs2/internal/pattern"
	"vs2/internal/segment"
)

// Task bundles what an end-to-end method needs to know about one IE task.
type Task struct {
	// Dataset is "d1", "d2" or "d3".
	Dataset string
	// Sets are the curated pattern sets (Tables 3/4, or TaxPatterns for D1).
	Sets []*pattern.Set
	// Weights is the Eq. 2 profile appropriate to the corpus (§5.3.2).
	Weights extract.Weights
}

// EndToEnd is the common interface of Table 7 rows (and the text-only
// baseline of Tables 6 and 8). Trainable methods receive the training
// split first; training is a no-op for the rest. Extract returns nil when
// the method cannot process the document (e.g. no DOM), and the evaluation
// skips it, as the paper does.
type EndToEnd interface {
	Name() string
	Train(task Task, train []doc.Labeled)
	Extract(task Task, d *doc.Document) []extract.Extraction
	// Applicable reports whether the method runs on the dataset at all
	// (ClausIE and the ML-based method do not apply to D1).
	Applicable(dataset string) bool
}

// --- VS2 (A6 of Table 7) ---------------------------------------------------

// VS2 is the full proposed pipeline: VS2-Segment then VS2-Select with
// multimodal disambiguation.
type VS2 struct {
	SegOpts segment.Options
	ExtOpts extract.Options
}

// Name implements EndToEnd.
func (VS2) Name() string { return "VS2" }

// Train implements EndToEnd (VS2 needs no supervised training).
func (VS2) Train(Task, []doc.Labeled) {}

// Applicable implements EndToEnd.
func (VS2) Applicable(string) bool { return true }

// Extract implements EndToEnd.
func (v VS2) Extract(task Task, d *doc.Document) []extract.Extraction {
	opts := v.ExtOpts
	if opts.Weights == (extract.Weights{}) {
		opts.Weights = task.Weights
	}
	blocks := segment.New(v.SegOpts).Blocks(d)
	return extract.New(opts).Extract(d, blocks, task.Sets)
}

// --- Text-only baseline (ΔF1 reference of Tables 6/8) ----------------------

// TextOnly is the paper's text-only pipeline: Tesseract segmentation,
// pattern search within each segmented area, Lesk entity disambiguation.
type TextOnly struct{}

// Name implements EndToEnd.
func (TextOnly) Name() string { return "Text-only" }

// Train implements EndToEnd.
func (TextOnly) Train(Task, []doc.Labeled) {}

// Applicable implements EndToEnd.
func (TextOnly) Applicable(string) bool { return true }

// Extract implements EndToEnd.
func (TextOnly) Extract(task Task, d *doc.Document) []extract.Extraction {
	blocks := ocr.LayoutBlocks(d)
	return extract.New(extract.Options{Disambiguation: extract.Lesk}).
		Extract(d, blocks, task.Sets)
}

// --- ClausIE (A1 of Table 7) -----------------------------------------------

// ClausIE approximates the clause-based open IE of Del Corro & Gemulla
// [10] as adapted by the paper: clause-level rules run over the raw
// transcription with no layout and no visual disambiguation (first match
// wins). Form-field extraction (D1) is out of scope for a clause system.
type ClausIE struct{}

// Name implements EndToEnd.
func (ClausIE) Name() string { return "ClausIE" }

// Train implements EndToEnd.
func (ClausIE) Train(Task, []doc.Labeled) {}

// Applicable implements EndToEnd.
func (ClausIE) Applicable(dataset string) bool { return dataset != "d1" }

// Extract implements EndToEnd.
func (ClausIE) Extract(task Task, d *doc.Document) []extract.Extraction {
	whole := wholeDocBlock(d)
	return extract.New(extract.Options{Disambiguation: extract.None}).
		Extract(d, whole, task.Sets)
}

func wholeDocBlock(d *doc.Document) []*doc.Node {
	all := make([]int, len(d.Elements))
	for i := range all {
		all[i] = i
	}
	return []*doc.Node{{Box: d.Bounds(), Elements: all}}
}

// --- FSM (A2 of Table 7) -----------------------------------------------------

// FSM is the frequent-subtree-mining comparator [31, 48]: patterns are the
// maximal frequent subtrees mined from the holdout corpus, searched within
// the Tesseract transcription; the most frequent matching subtree wins (no
// visual disambiguation).
type FSM struct {
	// Corpora maps dataset → holdout corpus; learned sets are cached.
	Corpora map[string]*holdout.Corpus
	learned map[string][]*pattern.Set
}

// Name implements EndToEnd.
func (f *FSM) Name() string { return "FSM" }

// Applicable implements EndToEnd.
func (f *FSM) Applicable(string) bool { return true }

// Train implements EndToEnd: mines the holdout corpus of the task.
func (f *FSM) Train(task Task, _ []doc.Labeled) {
	if f.learned == nil {
		f.learned = map[string][]*pattern.Set{}
	}
	if _, ok := f.learned[task.Dataset]; ok {
		return
	}
	if task.Dataset == "d1" {
		// Form fields mine to exact descriptors; reuse the curated exact
		// sets (mining a 1-tuple corpus is the identity).
		f.learned[task.Dataset] = task.Sets
		return
	}
	c := f.Corpora[task.Dataset]
	if c == nil {
		f.learned[task.Dataset] = nil
		return
	}
	f.learned[task.Dataset] = holdout.LearnedSets(c, holdout.LearnOptions{MinSupport: 0.25})
}

// Extract implements EndToEnd.
func (f *FSM) Extract(task Task, d *doc.Document) []extract.Extraction {
	sets := f.learned[task.Dataset]
	if sets == nil {
		return nil
	}
	blocks := ocr.LayoutBlocks(d)
	return extract.New(extract.Options{Disambiguation: extract.None}).
		Extract(d, blocks, sets)
}

// --- ML-based (A3 of Table 7) -------------------------------------------------

// MLBased reimplements the supervised web-content extractor of Zhou &
// Mashuq [49]: every document must be HTML; DOM text nodes are classified
// into entity types with a linear model over markup and text features.
// Inapplicable to D1, and to non-HTML documents elsewhere (the paper
// restricted D2 to its PDF subset for this method).
type MLBased struct {
	models map[string]*linearModel
}

// Name implements EndToEnd.
func (m *MLBased) Name() string { return "ML-based" }

// Applicable implements EndToEnd.
func (m *MLBased) Applicable(dataset string) bool { return dataset != "d1" }

// Train implements EndToEnd: fits on the DOM sections of the training split.
func (m *MLBased) Train(task Task, train []doc.Labeled) {
	if m.models == nil {
		m.models = map[string]*linearModel{}
	}
	var xs [][]float64
	var ys []string
	for _, l := range train {
		if l.Doc.DOM == nil {
			continue
		}
		for _, node := range domSections(l.Doc) {
			xs = append(xs, domFeatures(l.Doc, node))
			ys = append(ys, labelFor(l.Doc, l.Truth, node.box))
		}
	}
	m.models[task.Dataset] = trainLinear(xs, ys, 12, 7)
}

// Extract implements EndToEnd.
func (m *MLBased) Extract(task Task, d *doc.Document) []extract.Extraction {
	if d.DOM == nil {
		return nil
	}
	model := m.models[task.Dataset]
	if model == nil {
		return nil
	}
	best := map[string]extract.Extraction{}
	bestScore := map[string]float64{}
	for _, node := range domSections(d) {
		x := domFeatures(d, node)
		class, sc := model.Predict(x)
		if class == "" || class == "none" {
			continue
		}
		if cur, ok := bestScore[class]; !ok || sc > cur {
			bestScore[class] = sc
			best[class] = extract.Extraction{
				Entity: class,
				Text:   strings.Join(textsOf(d, node.elems), " "),
				Box:    node.box,
			}
		}
	}
	return collect(best)
}

type section struct {
	tag   string
	box   geom.Rect
	elems []int
}

func domSections(d *doc.Document) []section {
	var out []section
	d.DOM.Walk(func(n *doc.DOMNode) {
		if len(n.Elements) > 0 {
			out = append(out, section{tag: n.Tag, box: d.BoundingBoxOf(n.Elements), elems: n.Elements})
		}
	})
	return out
}

var tagIndex = map[string]int{"h1": 0, "h2": 1, "h3": 2, "p": 3, "aside": 4, "footer": 5, "img": 6, "td": 7}

func domFeatures(d *doc.Document, s section) []float64 {
	f := make([]float64, 0, 28)
	oneHot := make([]float64, len(tagIndex)+1)
	if i, ok := tagIndex[s.tag]; ok {
		oneHot[i] = 1
	} else {
		oneHot[len(tagIndex)] = 1
	}
	f = append(f, oneHot...)
	f = append(f, textVisualFeatures(d, s.box, s.elems)...)
	return f
}

// --- Apostolova et al. (A4 of Table 7) ---------------------------------------

// Apostolova reimplements the multimodal SVM of Apostolova & Tomuro [2]:
// candidate regions (layout-analysis blocks) are classified into entity
// types with a linear model over combined visual and textual features,
// trained on a 60/40 split.
type Apostolova struct {
	models map[string]*linearModel
}

// Name implements EndToEnd.
func (a *Apostolova) Name() string { return "Apostolova et al." }

// Applicable implements EndToEnd.
func (a *Apostolova) Applicable(string) bool { return true }

// Train implements EndToEnd.
func (a *Apostolova) Train(task Task, train []doc.Labeled) {
	if a.models == nil {
		a.models = map[string]*linearModel{}
	}
	var xs [][]float64
	var ys []string
	for _, l := range train {
		for _, b := range ocr.LayoutBlocks(l.Doc) {
			xs = append(xs, blockFeatures(l.Doc, b))
			ys = append(ys, labelFor(l.Doc, l.Truth, b.Box))
		}
	}
	a.models[task.Dataset] = trainLinear(xs, ys, 12, 11)
}

// Extract implements EndToEnd.
func (a *Apostolova) Extract(task Task, d *doc.Document) []extract.Extraction {
	model := a.models[task.Dataset]
	if model == nil {
		return nil
	}
	best := map[string]extract.Extraction{}
	bestScore := map[string]float64{}
	for _, b := range ocr.LayoutBlocks(d) {
		x := blockFeatures(d, b)
		class, sc := model.Predict(x)
		if class == "" || class == "none" {
			continue
		}
		if cur, ok := bestScore[class]; !ok || sc > cur {
			bestScore[class] = sc
			best[class] = extract.Extraction{
				Entity: class,
				Text:   b.Text(d),
				Box:    b.Box,
			}
		}
	}
	return collect(best)
}

func blockFeatures(d *doc.Document, b *doc.Node) []float64 {
	return textVisualFeatures(d, b.Box, b.Elements)
}

var (
	phoneFeatRE = regexp.MustCompile(`\d{3}[-. )]\d{3}[-. ]\d{4}`)
	emailFeatRE = regexp.MustCompile(`\S+@\S+\.\S+`)
)

// textVisualFeatures is the shared visual+textual feature vector: geometry,
// typography, colour, and shallow text statistics (digit fraction, NER
// counts, phone/email/geocode/TIMEX evidence).
func textVisualFeatures(d *doc.Document, box geom.Rect, elems []int) []float64 {
	var (
		fontSum, l, aa, bb   float64
		words, digits, chars int
	)
	var texts []string
	for _, id := range elems {
		e := &d.Elements[id]
		if e.Kind != doc.TextElement {
			continue
		}
		lab := colorlab.ToLAB(e.Color)
		fontSum += e.Box.H
		l += lab.L
		aa += lab.A
		bb += lab.B
		words++
		for _, r := range e.Text {
			chars++
			if r >= '0' && r <= '9' {
				digits++
			}
		}
		texts = append(texts, e.Text)
	}
	text := strings.Join(texts, " ")
	n := float64(words)
	if n == 0 {
		n = 1
	}
	tokens := nlp.Tokenize(text)
	nlp.TagPOS(tokens)
	nlp.TagEntities(tokens)
	var persons, orgs, locs, times float64
	for _, t := range tokens {
		switch t.Entity {
		case "PERSON":
			persons++
		case "ORG":
			orgs++
		case "LOC":
			locs++
		case "TIME":
			times++
		}
	}
	digitFrac := 0.0
	if chars > 0 {
		digitFrac = float64(digits) / float64(chars)
	}
	boolF := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	out := []float64{
		box.Centroid().X / d.Width,
		box.Centroid().Y / d.Height,
		box.W / d.Width,
		box.H / d.Height,
		fontSum / n / 24,
		l / n / 100, aa / n / 128, bb / n / 128,
		float64(words) / 20,
		digitFrac,
		persons / 4, orgs / 4, locs / 4, times / 4,
		boolF(phoneFeatRE.MatchString(text)),
		boolF(emailFeatRE.MatchString(text)),
		boolF(nlp.HasGeocode(tokens)),
	}
	// Hashed bag-of-words: lexical identity is what separates form fields
	// whose geometry is identical (every D1 row looks alike); a linear
	// SVM over word features is exactly what [2] and [49] train.
	const hashDim = 96
	bow := make([]float64, hashDim)
	for _, t := range tokens {
		if nlp.IsStopword(t.Norm) {
			continue
		}
		h := uint32(2166136261)
		for _, c := range []byte(t.Stem) {
			h = (h ^ uint32(c)) * 16777619
		}
		bow[h%hashDim] += 1
	}
	for i := range bow {
		if bow[i] > 3 {
			bow[i] = 3
		}
		bow[i] /= 3
	}
	return append(out, bow...)
}

// labelFor assigns the training label of a region: the annotation with the
// best IoU ≥ 0.3, else "none".
func labelFor(d *doc.Document, truth *doc.GroundTruth, box geom.Rect) string {
	best, bestIoU := "none", 0.3
	for _, a := range truth.Annotations {
		if iou := box.IoU(a.Box); iou > bestIoU {
			best, bestIoU = a.Entity, iou
		}
	}
	return best
}

// --- ReportMiner (A5 of Table 7) ----------------------------------------------

// ReportMiner reimplements the commercial human-in-the-loop workflow [22]:
// experts define a custom extraction mask per layout, stored per template;
// at test time "the most appropriate rule is selected manually" — which the
// simulation grants for free by keying masks on the generator's template
// identifier. Masks average the annotation boxes of the training split;
// they break exactly where the paper says the tool breaks: when layout
// variability (randomised offsets, mobile-capture jitter) moves content
// out from under the mask.
type ReportMiner struct {
	// masks[dataset][template][entity] = averaged box.
	masks map[string]map[string]map[string]geom.Rect
}

// Name implements EndToEnd.
func (r *ReportMiner) Name() string { return "ReportMiner" }

// Applicable implements EndToEnd.
func (r *ReportMiner) Applicable(string) bool { return true }

// Train implements EndToEnd.
func (r *ReportMiner) Train(task Task, train []doc.Labeled) {
	if r.masks == nil {
		r.masks = map[string]map[string]map[string]geom.Rect{}
	}
	type acc struct {
		sum geom.Rect
		n   float64
	}
	agg := map[string]map[string]*acc{}
	for _, l := range train {
		t := l.Doc.Template
		if agg[t] == nil {
			agg[t] = map[string]*acc{}
		}
		for _, a := range l.Truth.Annotations {
			cur := agg[t][a.Entity]
			if cur == nil {
				cur = &acc{}
				agg[t][a.Entity] = cur
			}
			cur.sum.X += a.Box.X
			cur.sum.Y += a.Box.Y
			cur.sum.W += a.Box.W
			cur.sum.H += a.Box.H
			cur.n++
		}
	}
	masks := map[string]map[string]geom.Rect{}
	for t, ents := range agg {
		masks[t] = map[string]geom.Rect{}
		for e, a := range ents {
			masks[t][e] = geom.Rect{
				X: a.sum.X / a.n, Y: a.sum.Y / a.n,
				W: a.sum.W / a.n, H: a.sum.H / a.n,
			}
		}
	}
	r.masks[task.Dataset] = masks
}

// Extract implements EndToEnd.
func (r *ReportMiner) Extract(task Task, d *doc.Document) []extract.Extraction {
	masks := r.masks[task.Dataset][d.Template]
	if masks == nil {
		return nil
	}
	var out []extract.Extraction
	for entity, mask := range masks {
		// Pad the mask slightly, as a human-drawn mask would.
		region := mask.Inset(-3)
		ids := d.ElementsIn(region)
		if len(ids) == 0 {
			continue
		}
		out = append(out, extract.Extraction{
			Entity: entity,
			Text:   strings.Join(textsOf(d, ids), " "),
			Box:    d.BoundingBoxOf(ids),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Entity < out[j].Entity })
	return out
}

// helpers --------------------------------------------------------------------

func textsOf(d *doc.Document, ids []int) []string {
	var out []string
	for _, id := range d.ReadingOrder(ids) {
		if d.Elements[id].Kind == doc.TextElement {
			out = append(out, d.Elements[id].Text)
		}
	}
	return out
}

func collect(best map[string]extract.Extraction) []extract.Extraction {
	keys := make([]string, 0, len(best))
	for k := range best {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]extract.Extraction, 0, len(keys))
	for _, k := range keys {
		out = append(out, best[k])
	}
	return out
}
