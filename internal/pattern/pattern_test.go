package pattern

import (
	"strings"
	"testing"

	"vs2/internal/nlp"
	"vs2/internal/treemine"
)

func find(p Pattern, text string) []Match {
	return p.Find(nlp.Annotate(text))
}

func hasMatch(ms []Match, substr string) bool {
	for _, m := range ms {
		if strings.Contains(m.Text, substr) {
			return true
		}
	}
	return false
}

func TestPhoneRegex(t *testing.T) {
	p := &Regex{PatternName: "phone", RE: phoneRE, ScoreVal: 1}
	for _, s := range []string{
		"call 614-555-0137 today",
		"call (614) 555-0137 today",
		"call 614.555.0137 today",
		"+1 614-555-0137",
	} {
		if ms := find(p, s); len(ms) != 1 {
			t.Errorf("%q matches = %v", s, ms)
		}
	}
	if ms := find(p, "the year 2019 was great"); len(ms) != 0 {
		t.Errorf("false phone matches: %v", ms)
	}
	// Token span recovery.
	ms := find(p, "call 614-555-0137 now")
	if ms[0].Text != "614-555-0137" || ms[0].Start != 1 || ms[0].End != 2 {
		t.Errorf("phone match span = %+v", ms[0])
	}
}

func TestEmailRegex(t *testing.T) {
	p := &Regex{PatternName: "email", RE: emailRE, ScoreVal: 1}
	ms := find(p, "contact kevin.walsh@acmerealty.com for info")
	if len(ms) != 1 || ms[0].Text != "kevin.walsh@acmerealty.com" {
		t.Errorf("email matches = %v", ms)
	}
	if ms := find(p, "no emails here at all"); len(ms) != 0 {
		t.Errorf("false email matches: %v", ms)
	}
}

func TestNPWithModifier(t *testing.T) {
	p := &NP{PatternName: "np-mod", RequireModifier: true, MinTokens: 2, ScoreVal: 0.7}
	ms := find(p, "the annual jazz festival returns")
	if !hasMatch(ms, "annual jazz festival") {
		t.Errorf("modified NP not found: %v", ms)
	}
	// Unmodified NPs must not match.
	if ms := find(p, "festival returns"); len(ms) != 0 {
		t.Errorf("unmodified NP matched: %v", ms)
	}
}

func TestNPWithTimex(t *testing.T) {
	p := &NP{PatternName: "np-time", RequireTimex: true, ScoreVal: 0.9}
	ms := find(p, "doors open Saturday 7:30 PM at the hall")
	if len(ms) == 0 {
		t.Fatalf("timex NP not found")
	}
	if ms := find(p, "the spacious kitchen"); len(ms) != 0 {
		t.Errorf("non-temporal NP matched: %v", ms)
	}
}

func TestNPWithGeocode(t *testing.T) {
	p := &NP{PatternName: "np-geo", RequireGeocode: true, ScoreVal: 0.9}
	ms := find(p, "located at 450 Maple Ave, Columbus, OH 43210")
	if len(ms) == 0 {
		t.Fatal("geocoded NP not found")
	}
	if ms := find(p, "4 beds and 2 baths with parking"); len(ms) != 0 {
		t.Errorf("non-address matched geocode: %v", ms)
	}
}

func TestNPWithNER(t *testing.T) {
	p := &NP{PatternName: "np-ne", RequireNER: []string{"PERSON", "ORG"}, ScoreVal: 0.75}
	ms := find(p, "contact Kevin Walsh about tickets")
	if !hasMatch(ms, "Kevin Walsh") {
		t.Errorf("person NP not found: %v", ms)
	}
}

func TestNPWithHypernym(t *testing.T) {
	p := &NP{PatternName: "np-hyp", RequireModifier: true,
		RequireHypernym: []string{"measure", "structure", "estate"}, ScoreVal: 0.85}
	ms := find(p, "4 beds and 2,465 acres available")
	if !hasMatch(ms, "beds") || !hasMatch(ms, "acres") {
		t.Errorf("size NPs not found: %v", ms)
	}
	if ms := find(p, "3 amazing concerts"); len(ms) != 0 {
		t.Errorf("non-size NP matched hypernym: %v", ms)
	}
}

func TestVPOrganizerSubject(t *testing.T) {
	p := &VP{PatternName: "org-vp", Senses: []string{"captain", "create", "reflexive_appearance"}, ScoreVal: 0.85}
	ms := find(p, "The Riverside Jazz Society presents a special evening")
	if !hasMatch(ms, "Riverside Jazz Society") {
		t.Errorf("subject agent not extracted: %v", ms)
	}
}

func TestVPOrganizerPassive(t *testing.T) {
	p := &VP{PatternName: "org-vp", Senses: []string{"captain", "create", "reflexive_appearance"}, ScoreVal: 0.85}
	ms := find(p, "hosted by Kevin Walsh")
	if !hasMatch(ms, "Kevin Walsh") {
		t.Errorf("passive agent not extracted: %v", ms)
	}
	// A verb without organizer sense must not fire.
	if ms := find(p, "rented by Kevin Walsh"); len(ms) != 0 {
		t.Errorf("non-organizer verb matched: %v", ms)
	}
}

func TestSVOPattern(t *testing.T) {
	p := &SVOPattern{PatternName: "svo", ScoreVal: 0.6}
	ms := find(p, "The Jazz Society presents a special evening")
	if len(ms) != 1 || !strings.Contains(ms[0].Text, "presents") {
		t.Errorf("SVO matches = %v", ms)
	}
	if ms := find(p, "Friday night live music"); len(ms) != 0 {
		t.Errorf("fragment matched SVO: %v", ms)
	}
}

func TestNESeq(t *testing.T) {
	p := &NESeq{PatternName: "ne-seq", Labels: []string{"PERSON", "ORG"},
		MinLen: 2, MaxLen: 5, ScoreVal: 0.85}
	ms := find(p, "Kevin Walsh Acme Realty LLC 614-555-0137")
	if !hasMatch(ms, "Kevin Walsh") {
		t.Errorf("person seq not found: %v", ms)
	}
	// Single-token entities are excluded by MinLen.
	ms2 := find(p, "visit Columbus today")
	if len(ms2) != 0 {
		t.Errorf("short/LOC seq matched: %v", ms2)
	}
}

func TestExactDescriptors(t *testing.T) {
	e := NewExact("f1", []string{"Wages, salaries, tips", "Taxable interest income"}, 1)
	ms := find(e, "Wages, salaries, tips")
	if len(ms) != 1 {
		t.Fatalf("exact match failed: %v", ms)
	}
	// Case/whitespace-insensitive.
	ms = find(e, "wages,  salaries, tips")
	if len(ms) != 1 {
		t.Errorf("normalised exact match failed: %v", ms)
	}
	// Line-wise matching inside a multi-line block.
	ms = find(e, "Form 1040\nTaxable interest income\nLine 8a")
	if len(ms) != 1 || !strings.Contains(ms[0].Text, "Taxable interest") {
		t.Errorf("line match failed: %v", ms)
	}
	if ms := find(e, "Unrelated text"); len(ms) != 0 {
		t.Errorf("false exact match: %v", ms)
	}
}

func TestMinedPattern(t *testing.T) {
	// Pattern: an NP containing a PERSON named entity (as mined subtrees
	// would express it).
	p := &Mined{
		PatternName: "mined-person-np",
		Tree:        treemine.T("NP", treemine.T("NE:PERSON")),
		ScoreVal:    0.8,
	}
	ms := find(p, "Kevin Walsh hosts the gala")
	if len(ms) == 0 {
		t.Fatal("mined pattern found nothing")
	}
	if !hasMatch(ms, "Kevin") {
		t.Errorf("mined match text = %v", ms)
	}
	if ms := find(p, "the gala starts at noon"); len(ms) != 0 {
		t.Errorf("mined pattern over-fired: %v", ms)
	}
}

func TestSetDeduplicates(t *testing.T) {
	s := &Set{Entity: "X", Patterns: []Pattern{
		&NP{PatternName: "a", RequireModifier: true, ScoreVal: 0.9},
		&NP{PatternName: "b", RequireModifier: true, ScoreVal: 0.1}, // same spans
	}}
	ms := s.Find(nlp.Annotate("the annual festival"))
	if len(ms) != 1 {
		t.Errorf("Set did not deduplicate: %v", ms)
	}
	if ms[0].Score != 0.9 {
		t.Errorf("first alternative should win: %+v", ms[0])
	}
}

func TestEventPatternsEndToEnd(t *testing.T) {
	text := "The Riverside Jazz Society presents Summer Jazz Night. " +
		"Saturday June 14, 7:30 PM. " +
		"450 Maple Ave, Columbus, OH. " +
		"Hosted by Kevin Walsh. Free admission and live music all night."
	a := nlp.Annotate(text)
	byEntity := map[string][]Match{}
	for _, set := range EventPatterns() {
		byEntity[set.Entity] = set.Find(a)
	}
	if !hasMatch(byEntity[EventTime], "7:30") {
		t.Errorf("EventTime = %v", byEntity[EventTime])
	}
	if !hasMatch(byEntity[EventPlace], "Maple") {
		t.Errorf("EventPlace = %v", byEntity[EventPlace])
	}
	if !hasMatch(byEntity[EventOrganizer], "Jazz Society") &&
		!hasMatch(byEntity[EventOrganizer], "Kevin Walsh") {
		t.Errorf("EventOrganizer = %v", byEntity[EventOrganizer])
	}
	if len(byEntity[EventTitle]) == 0 {
		t.Error("EventTitle found nothing")
	}
}

func TestRealEstatePatternsEndToEnd(t *testing.T) {
	text := "Prime retail space for lease. 1200 Corporate Blvd, Columbus, OH 43210. " +
		"4,500 sqft open floor with parking. " +
		"Contact Kevin Walsh, Acme Realty LLC. " +
		"Phone 614-555-0137. kevin@acmerealty.com"
	a := nlp.Annotate(text)
	byEntity := map[string][]Match{}
	for _, set := range RealEstatePatterns() {
		byEntity[set.Entity] = set.Find(a)
	}
	if !hasMatch(byEntity[BrokerPhone], "614-555-0137") {
		t.Errorf("BrokerPhone = %v", byEntity[BrokerPhone])
	}
	if !hasMatch(byEntity[BrokerEmail], "kevin@acmerealty.com") {
		t.Errorf("BrokerEmail = %v", byEntity[BrokerEmail])
	}
	if !hasMatch(byEntity[BrokerName], "Kevin Walsh") &&
		!hasMatch(byEntity[BrokerName], "Acme Realty") {
		t.Errorf("BrokerName = %v", byEntity[BrokerName])
	}
	if !hasMatch(byEntity[PropertyAddr], "Corporate Blvd") {
		t.Errorf("PropertyAddress = %v", byEntity[PropertyAddr])
	}
	if !hasMatch(byEntity[PropertySize], "sqft") && !hasMatch(byEntity[PropertySize], "floor") {
		t.Errorf("PropertySize = %v", byEntity[PropertySize])
	}
}

func TestTaxPatterns(t *testing.T) {
	sets := TaxPatterns(map[string][]string{
		"f1_wages":    {"Wages, salaries, tips"},
		"f1_interest": {"Taxable interest income"},
	})
	if len(sets) != 2 {
		t.Fatalf("sets = %d", len(sets))
	}
	for _, s := range sets {
		if s.Entity == "f1_wages" {
			ms := s.Find(nlp.Annotate("Wages, salaries, tips"))
			if len(ms) != 1 {
				t.Errorf("wages descriptor not matched: %v", ms)
			}
		}
	}
}

func TestNPTitleCase(t *testing.T) {
	p := &NP{PatternName: "tc", RequireTitleCase: true, MinTokens: 2, MaxTokens: 6, ScoreVal: 0.5}
	if ms := find(p, "Book Fair opens soon"); !hasMatch(ms, "Book Fair") {
		t.Errorf("title-case NP not found: %v", ms)
	}
	if ms := find(p, "the quiet fair"); len(ms) != 0 {
		t.Errorf("lowercase NP matched title case: %v", ms)
	}
	// ALL-CAPS badges are rejected.
	if ms := find(p, "SOLD OUT"); len(ms) != 0 {
		t.Errorf("all-caps badge matched: %v", ms)
	}
}

func TestNPRequireNumeric(t *testing.T) {
	p := &NP{PatternName: "num", RequireModifier: true, RequireNumeric: true,
		RequireHypernym: []string{"measure", "structure"}, ScoreVal: 0.8}
	if ms := find(p, "4,500 sqft available"); len(ms) == 0 {
		t.Error("numeric size NP not found")
	}
	if ms := find(p, "spacious open floor plan"); len(ms) != 0 {
		t.Errorf("non-numeric NP matched: %v", ms)
	}
}

func TestNPExcludeNER(t *testing.T) {
	p := &NP{PatternName: "x", RequireHypernym: []string{"estate"},
		ExcludeNER: []string{"ORG"}, MinTokens: 2, ScoreVal: 0.5}
	// An organization name containing an estate-sense word must not match.
	if ms := find(p, "Harbor Land Company manages it"); hasMatch(ms, "Harbor Land Company") {
		t.Errorf("ORG phrase matched: %v", ms)
	}
	if ms := find(p, "a corner lot with trees"); len(ms) == 0 {
		t.Error("plain estate NP should match")
	}
}

func TestNPExcludeTimexAndGeocode(t *testing.T) {
	p := &NP{PatternName: "x", RequireTitleCase: true, ExcludeTimex: true,
		ExcludeGeocode: true, MinTokens: 2, ScoreVal: 0.5}
	if ms := find(p, "Saturday 7:30 PM"); len(ms) != 0 {
		t.Errorf("temporal phrase matched: %v", ms)
	}
	if ms := find(p, "450 Maple Ave, Columbus, OH"); len(ms) != 0 {
		t.Errorf("address matched: %v", ms)
	}
}

func TestVPClause(t *testing.T) {
	p := &VPClause{PatternName: "vp", MinTokens: 4, ExcludeTimex: true, ScoreVal: 0.5}
	ms := find(p, "bring the whole family and enjoy free snacks")
	if len(ms) != 1 || !strings.Contains(ms[0].Text, "bring") {
		t.Errorf("imperative clause not matched: %v", ms)
	}
	// Temporal clauses are excluded.
	if ms := find(p, "doors open Saturday at 7:30 PM"); len(ms) != 0 {
		t.Errorf("temporal clause matched: %v", ms)
	}
	// Verbless fragments do not match.
	if ms := find(p, "fresh local organic produce"); len(ms) != 0 {
		t.Errorf("verbless fragment matched: %v", ms)
	}
}

func TestExactPrefixExtractsValue(t *testing.T) {
	e := NewExact("f", []string{"Wages, salaries, tips"}, 1)
	ms := find(e, "Wages, salaries, tips 28,689.50")
	if len(ms) != 1 {
		t.Fatalf("prefix match failed: %v", ms)
	}
	if ms[0].Text != "28,689.50" {
		t.Errorf("extracted value = %q, want the remainder", ms[0].Text)
	}
}

func TestBrokerNamePrefersPerson(t *testing.T) {
	sets := RealEstatePatterns()
	var brokerSet *Set
	for _, s := range sets {
		if s.Entity == BrokerName {
			brokerSet = s
		}
	}
	ms := brokerSet.Find(nlp.Annotate("Contact Kevin Walsh. Acme Realty LLC."))
	if len(ms) < 2 {
		t.Fatalf("matches = %v", ms)
	}
	// The person alternative carries the higher score.
	var personScore, orgScore float64
	for _, m := range ms {
		if strings.Contains(m.Text, "Kevin") {
			personScore = m.Score
		}
		if strings.Contains(m.Text, "Acme") {
			orgScore = m.Score
		}
	}
	if personScore <= orgScore {
		t.Errorf("person score %v should exceed org score %v", personScore, orgScore)
	}
}
