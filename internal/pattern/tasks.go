package pattern

import "regexp"

// This file hosts the concrete pattern sets of the paper's three IE tasks.
//
// Table 3 (dataset D2, event posters): Event Title, Event Place, Event
// Time, Event Organizer, Event Description.
//
// Table 4 (dataset D3, real-estate flyers): Broker Name, Broker Phone,
// Broker Email, Property Address, Property Size, Property Description.
//
// Dataset D1 (NIST tax forms) uses exact string match against the field
// descriptors of the holdout corpus (Section 5.2.1); build its Sets with
// TaxPatterns and the descriptor list of the form face.

// Entity keys for the D2 task.
const (
	EventTitle       = "EventTitle"
	EventPlace       = "EventPlace"
	EventTime        = "EventTime"
	EventOrganizer   = "EventOrganizer"
	EventDescription = "EventDescription"
)

// Entity keys for the D3 task.
const (
	BrokerName   = "BrokerName"
	BrokerPhone  = "BrokerPhone"
	BrokerEmail  = "BrokerEmail"
	PropertyAddr = "PropertyAddress"
	PropertySize = "PropertySize"
	PropertyDesc = "PropertyDescription"
)

var (
	// Phone: digits, characters and separators '-', '(', ')', '.' (Table 4).
	phoneRE = regexp.MustCompile(`(\+?1[-. ]?)?(\(\d{3}\)[-. ]?|\d{3}[-. ])\d{3}[-. ]\d{4}`)
	// Email: an RFC-5322-compliant-in-spirit expression with '@' and '.'
	// separators (Table 4).
	emailRE = regexp.MustCompile(`[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+\.[A-Za-z]{2,}`)
)

// EventPatterns returns the Table 3 pattern sets for the five D2 entities.
func EventPatterns() []*Set {
	return []*Set{
		{
			Entity: EventTitle,
			Patterns: []Pattern{
				// (1) Verb phrase, (2) NP with CD/JJ modifiers, (3) SVO;
				// headline-case NPs cover modifier-less titles ("Book Fair").
				&NP{PatternName: "title-np-modified", RequireModifier: true,
					ExcludeTimex: true, ExcludeGeocode: true,
					ExcludeNER: []string{"PERSON"},
					MinTokens:  2, MaxTokens: 8, ScoreVal: 0.7},
				&SVOPattern{PatternName: "title-svo", ScoreVal: 0.6},
				&NP{PatternName: "title-np-titlecase", RequireTitleCase: true,
					ExcludeTimex: true, ExcludeGeocode: true,
					ExcludeNER: []string{"PERSON", "ORG"},
					MinTokens:  2, MaxTokens: 6, ScoreVal: 0.5},
			},
		},
		{
			Entity: EventPlace,
			Patterns: []Pattern{
				// Noun phrases with valid geocode tags.
				&NP{PatternName: "place-np-geocode", RequireGeocode: true, ScoreVal: 0.9},
			},
		},
		{
			Entity: EventTime,
			Patterns: []Pattern{
				// Noun phrases with valid TIMEX3 tags.
				&NP{PatternName: "time-np-timex", RequireTimex: true, ScoreVal: 0.95},
			},
		},
		{
			Entity: EventOrganizer,
			Patterns: []Pattern{
				// (1) VP with captain/create/reflexive_appearance senses,
				// (2) NP with Person/Organization named entities.
				&VP{PatternName: "organizer-vp-senses",
					Senses:   []string{"captain", "create", "reflexive_appearance"},
					ScoreVal: 0.85},
				&NP{PatternName: "organizer-np-ne",
					RequireNER: []string{"PERSON", "ORG"}, ScoreVal: 0.75},
			},
		},
		{
			Entity:     EventDescription,
			BlockLevel: true,
			Patterns: []Pattern{
				// SVO or Verb phrase or NP with CD/JJ modifiers (Table 3).
				&SVOPattern{PatternName: "desc-svo", ScoreVal: 0.6},
				&VPClause{PatternName: "desc-vp", MinTokens: 4, ExcludeTimex: true, ScoreVal: 0.55},
				&NP{PatternName: "desc-np-modified", RequireModifier: true,
					ExcludeTimex: true, ExcludeGeocode: true,
					MinTokens: 3, ScoreVal: 0.5},
			},
		},
	}
}

// RealEstatePatterns returns the Table 4 pattern sets for the six D3
// entities.
func RealEstatePatterns() []*Set {
	return []*Set{
		{
			Entity: BrokerName,
			Patterns: []Pattern{
				// Bigram/trigram of NEs with Person/Organization tags. The
				// person reading scores higher: "full name of the listing
				// broker" is a person when one is printed, with the agency
				// name as fallback.
				&NESeq{PatternName: "broker-person-seq",
					Labels: []string{"PERSON"},
					MinLen: 2, MaxLen: 4, ScoreVal: 0.9},
				&NESeq{PatternName: "broker-org-seq",
					Labels: []string{"ORG"},
					MinLen: 2, MaxLen: 5, ScoreVal: 0.6},
			},
		},
		{
			Entity: BrokerPhone,
			Patterns: []Pattern{
				&Regex{PatternName: "broker-phone-re", RE: phoneRE, ScoreVal: 1.0},
			},
		},
		{
			Entity: BrokerEmail,
			Patterns: []Pattern{
				&Regex{PatternName: "broker-email-re", RE: emailRE, ScoreVal: 1.0},
			},
		},
		{
			Entity: PropertyAddr,
			Patterns: []Pattern{
				// Noun phrase with valid geocode tags.
				&NP{PatternName: "addr-np-geocode", RequireGeocode: true, ScoreVal: 0.9},
			},
		},
		{
			Entity: PropertySize,
			Patterns: []Pattern{
				// (1) NP with CD/JJ modifiers and (2) noun POS tags with
				// senses measure/structure/estate in the hypernym tree.
				&NP{PatternName: "size-np-hypernym",
					RequireModifier: true, RequireNumeric: true,
					RequireHypernym: []string{"measure", "structure", "estate"},
					MaxTokens:       6, ScoreVal: 0.85},
			},
		},
		{
			Entity:     PropertyDesc,
			BlockLevel: true,
			Patterns: []Pattern{
				// Mentions of property type plus essential details: NPs with
				// estate/structure senses or modified NPs; SVO/VP clauses.
				&NP{PatternName: "desc-np-estate",
					RequireHypernym: []string{"estate", "structure"},
					ExcludeGeocode:  true,
					ExcludeNER:      []string{"ORG", "PERSON"},
					MinTokens:       2, ScoreVal: 0.6},
				&SVOPattern{PatternName: "desc-svo", ScoreVal: 0.5},
				&VPClause{PatternName: "desc-vp", MinTokens: 4, ExcludeTimex: true, ScoreVal: 0.45},
				&NP{PatternName: "desc-np-modified", RequireModifier: true,
					ExcludeTimex: true, ExcludeGeocode: true,
					MinTokens: 3, ScoreVal: 0.4},
			},
		},
	}
}

// TaxPatterns returns the D1 pattern set: exact string matching against the
// field descriptors harvested into the holdout corpus. One Set per named
// entity (form field), keyed by the descriptor itself.
func TaxPatterns(fields map[string][]string) []*Set {
	out := make([]*Set, 0, len(fields))
	for entity, descriptors := range fields {
		out = append(out, &Set{
			Entity: entity,
			Patterns: []Pattern{
				NewExact("field-"+entity, descriptors, 1.0),
			},
		})
	}
	return out
}
