// Package pattern implements the lexico-syntactic pattern language of
// VS2-Select (Section 5.2). For every named entity, a set of patterns —
// regular expressions, constrained noun/verb phrases, SVO triples, exact
// field descriptors, or subtrees mined from the holdout corpus — is
// searched within the text transcribed from each logical block. Tables 3
// and 4 of the paper define the concrete pattern sets for the event-poster
// and real-estate tasks; this package both hosts those definitions
// (tasks.go) and the matching machinery.
package pattern

import (
	"regexp"
	"strings"

	"vs2/internal/nlp"
	"vs2/internal/treemine"
)

// Match is one occurrence of a pattern inside an annotated text.
type Match struct {
	// Text is the extracted surface string for the named entity.
	Text string
	// Start/End delimit the matched tokens in the Annotated token stream.
	Start, End int
	// CharStart is the byte offset of the match in the source text.
	CharStart int
	// Score reflects pattern specificity in [0,1]; exact regexes score
	// highest, loose phrase patterns lowest. Used only to break ties.
	Score float64
	// Pattern names the alternative that produced the match (Set.Find
	// stamps it); explanation reports surface it to operators.
	Pattern string
}

// Pattern locates candidate named-entity mentions in annotated text.
type Pattern interface {
	// Name identifies the pattern for diagnostics.
	Name() string
	// Find returns every match in the annotated text.
	Find(a *nlp.Annotated) []Match
}

// Set is an ordered disjunction of alternative patterns for one entity.
type Set struct {
	Entity   string
	Patterns []Pattern
	// BlockLevel marks entities whose extraction unit is the whole logical
	// block rather than the matched tokens — descriptions, whose annotated
	// ground truth is the full paragraph while patterns match individual
	// clauses inside it.
	BlockLevel bool
}

// Find returns the matches of every alternative, de-duplicated by token
// span (first alternative wins).
func (s *Set) Find(a *nlp.Annotated) []Match {
	var out []Match
	seen := map[[2]int]bool{}
	for _, p := range s.Patterns {
		for _, m := range p.Find(a) {
			key := [2]int{m.Start, m.End}
			if seen[key] {
				continue
			}
			seen[key] = true
			m.Pattern = p.Name()
			out = append(out, m)
		}
	}
	return out
}

// tokenSpanMatch assembles a Match from a token range.
func tokenSpanMatch(a *nlp.Annotated, start, end int, score float64) Match {
	parts := make([]string, 0, end-start)
	for _, t := range a.Tokens[start:end] {
		parts = append(parts, t.Text)
	}
	return Match{
		Text:      strings.Join(parts, " "),
		Start:     start,
		End:       end,
		CharStart: a.Tokens[start].Start,
		Score:     score,
	}
}

// sentenceOffset returns the index of the sentence's first token within the
// full token stream. Sentences are views into Tokens, so offsets can be
// recovered by pointer arithmetic on the backing array; instead we track
// them explicitly by scanning.
func sentenceOffsets(a *nlp.Annotated) []int {
	offs := make([]int, len(a.Sentences))
	pos := 0
	for i, s := range a.Sentences {
		offs[i] = pos
		pos += len(s)
	}
	return offs
}

// Regex matches a compiled regular expression against the raw text. The
// paper's Broker Phone and Broker Email patterns are regular expressions
// (Table 4).
type Regex struct {
	PatternName string
	RE          *regexp.Regexp
	ScoreVal    float64
}

// Name implements Pattern.
func (r *Regex) Name() string { return r.PatternName }

// Find implements Pattern.
func (r *Regex) Find(a *nlp.Annotated) []Match {
	var out []Match
	for _, loc := range r.RE.FindAllStringIndex(a.Text, -1) {
		start, end := tokensCovering(a, loc[0], loc[1])
		if start < 0 {
			continue
		}
		out = append(out, Match{
			Text:      a.Text[loc[0]:loc[1]],
			Start:     start,
			End:       end,
			CharStart: loc[0],
			Score:     r.ScoreVal,
		})
	}
	return out
}

// tokensCovering maps a byte range back to the covering token range.
func tokensCovering(a *nlp.Annotated, lo, hi int) (int, int) {
	start, end := -1, -1
	for i, t := range a.Tokens {
		tEnd := t.Start + len(t.Text)
		if t.Start < hi && tEnd > lo {
			if start < 0 {
				start = i
			}
			end = i + 1
		}
	}
	return start, end
}

// NP matches noun phrases subject to constraints — the workhorse of
// Tables 3 and 4 ("noun phrase with numeric or textual modifiers", "noun
// phrase with valid geocode tags", "noun phrases with valid TIMEX3 tags",
// "noun phrase with Person/Organization as named entities", "noun POS tags
// with senses measure/structure/estate in the hypernym tree").
type NP struct {
	PatternName string
	// RequireModifier demands a CD or JJ modifier inside the phrase;
	// RequireNumeric demands specifically a cardinal (CD) token.
	RequireModifier bool
	RequireNumeric  bool
	// RequireTimex demands a TIME-tagged token; ExcludeTimex rejects
	// phrases that are mostly temporal (a date line is not a title).
	RequireTimex bool
	ExcludeTimex bool
	// ExcludeGeocode rejects phrases inside a street address (an address
	// line is neither a title nor a description).
	ExcludeGeocode bool
	// RequireGeocode demands the phrase (with neighbouring tokens) geocode.
	RequireGeocode bool
	// RequireNER lists acceptable entity labels; non-empty means at least
	// one token must carry one of them. ExcludeNER rejects phrases whose
	// tokens are predominantly tagged with one of the listed labels (an
	// organization name is not a description).
	RequireNER []string
	ExcludeNER []string
	// RequireHypernym lists hypernym senses; non-empty means some noun in
	// the phrase must reach one of them.
	RequireHypernym []string
	// RequireTitleCase demands that every alphabetic token be capitalised —
	// the typographic signature of a headline phrase.
	RequireTitleCase bool
	// MinTokens/MaxTokens bound the phrase length (0 = unbounded).
	MinTokens, MaxTokens int
	ScoreVal             float64
}

// Name implements Pattern.
func (p *NP) Name() string { return p.PatternName }

// Find implements Pattern.
func (p *NP) Find(a *nlp.Annotated) []Match {
	var out []Match
	offs := sentenceOffsets(a)
	for si, sent := range a.Sentences {
		chunks := nlp.ChunkSentence(sent)
		for _, c := range chunks {
			if c.Label != "NP" {
				continue
			}
			if !p.accepts(sent, c) {
				continue
			}
			start, end := p.extend(sent, c)
			out = append(out, tokenSpanMatch(a, offs[si]+start, offs[si]+end, p.ScoreVal))
		}
	}
	return out
}

// extend widens the matched span to the full annotated expression: for a
// geocode NP the extraction is the whole address ("450 Maple Ave, Columbus,
// OH 43210", which spans chunk boundaries at the commas), and for a TIMEX
// NP the whole contiguous TIME span ("Saturday, June 14, 7:30 PM") — the
// paper's Tables 3/4 name the full expressions as the extraction targets.
func (p *NP) extend(sent []nlp.Token, c nlp.Chunk) (int, int) {
	start, end := c.Start, c.End
	if p.RequireGeocode {
		for _, g := range nlp.FindAddresses(sent) {
			if g.Span.Start < end && g.Span.End > start {
				if g.Span.Start < start {
					start = g.Span.Start
				}
				if g.Span.End > end {
					end = g.Span.End
				}
			}
		}
	}
	if p.RequireTimex {
		// Grow over adjacent TIME-tagged tokens and single bridging commas.
		for start > 0 {
			prev := start - 1
			if sent[prev].Entity == "TIME" {
				start = prev
				continue
			}
			if sent[prev].Text == "," && prev > 0 && sent[prev-1].Entity == "TIME" {
				start = prev - 1
				continue
			}
			break
		}
		for end < len(sent) {
			if sent[end].Entity == "TIME" {
				end++
				continue
			}
			if sent[end].Text == "," && end+1 < len(sent) && sent[end+1].Entity == "TIME" {
				end += 2
				continue
			}
			break
		}
	}
	return start, end
}

func (p *NP) accepts(sent []nlp.Token, c nlp.Chunk) bool {
	toks := c.Tokens(sent)
	n := len(toks)
	if p.MinTokens > 0 && n < p.MinTokens {
		return false
	}
	if p.MaxTokens > 0 && n > p.MaxTokens {
		return false
	}
	if p.RequireModifier && !c.HasModifier(sent) {
		return false
	}
	if p.RequireNumeric {
		hasCD := false
		for _, t := range toks {
			if t.POS == "CD" {
				hasCD = true
				break
			}
		}
		if !hasCD {
			return false
		}
	}
	if p.RequireTitleCase {
		allUpper := true
		for _, t := range toks {
			if t.Text == "" {
				return false
			}
			r := rune(t.Text[0])
			if r >= 'a' && r <= 'z' {
				return false
			}
			if strings.ToUpper(t.Text) != t.Text {
				allUpper = false
			}
		}
		// ALL-CAPS shouts ("SOLD OUT", "FREE") are badges, not headline
		// noun phrases.
		if allUpper {
			return false
		}
	}
	if p.RequireTimex && !nlp.HasTimex(toks) {
		return false
	}
	if p.ExcludeTimex {
		temporal := 0
		for _, t := range toks {
			if t.Entity == "TIME" {
				temporal++
			}
		}
		if temporal*2 >= len(toks) {
			return false
		}
	}
	if p.ExcludeGeocode && nlp.HasGeocode(sent) {
		for _, g := range nlp.FindAddresses(sent) {
			if g.Span.Start < c.End && g.Span.End > c.Start {
				return false
			}
		}
	}
	if p.ExcludeGeocode {
		for _, g := range nlp.FindAddresses(sent) {
			if g.Span.Start < c.End && g.Span.End > c.Start {
				return false
			}
		}
	}
	if p.RequireGeocode {
		// Geocoding may span beyond the NP (city/state follow in sibling
		// chunks); extend the window to the sentence tail.
		window := sent[c.Start:]
		if len(window) > c.End-c.Start+8 {
			window = window[:c.End-c.Start+8]
		}
		if !nlp.HasGeocode(window) {
			return false
		}
	}
	if len(p.ExcludeNER) > 0 {
		tagged := 0
		for _, t := range toks {
			for _, lbl := range p.ExcludeNER {
				if t.Entity == lbl {
					tagged++
					break
				}
			}
		}
		if tagged*2 >= len(toks) {
			return false
		}
	}
	if len(p.RequireNER) > 0 {
		ok := false
		for _, t := range toks {
			for _, lbl := range p.RequireNER {
				if t.Entity == lbl {
					ok = true
				}
			}
		}
		if !ok {
			return false
		}
	}
	if len(p.RequireHypernym) > 0 {
		ok := false
		for _, t := range toks {
			if !t.IsNoun() {
				continue
			}
			for _, sense := range p.RequireHypernym {
				if nlp.HasHypernym(t.Norm, sense) {
					ok = true
				}
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// VP matches verb phrases carrying one of the given verb senses; per
// Table 3's Event Organizer pattern the extracted text is the agent — the
// subject NP when the verb heads an SVO ("The Jazz Society presents …"),
// or the trailing NP for agentless passives ("hosted by Kevin Walsh").
type VP struct {
	PatternName string
	Senses      []string
	ScoreVal    float64
}

// Name implements Pattern.
func (p *VP) Name() string { return p.PatternName }

// Find implements Pattern.
func (p *VP) Find(a *nlp.Annotated) []Match {
	var out []Match
	offs := sentenceOffsets(a)
	for si, sent := range a.Sentences {
		chunks := nlp.ChunkSentence(sent)
		for ci, c := range chunks {
			if c.Label != "VP" || !p.hasSense(sent, c) {
				continue
			}
			if m, ok := p.agentOf(a, offs[si], sent, chunks, ci); ok {
				out = append(out, m)
			}
		}
	}
	return out
}

func (p *VP) hasSense(sent []nlp.Token, c nlp.Chunk) bool {
	for _, t := range c.Tokens(sent) {
		if !t.IsVerb() {
			continue
		}
		for _, s := range p.Senses {
			if nlp.HasVerbSense(t.Norm, s) {
				return true
			}
		}
	}
	return false
}

// agentOf extracts the agent phrase around the matched VP. For a passive
// participle with a by-phrase ("presented by X", "hosted by X") the agent
// is the PP object, even when a noun phrase precedes the verb — poster
// headlines routinely precede the credit line in the same transcription
// ("Summer Jazz Night presented by …"). For finite verbs the subject NP is
// the agent.
func (p *VP) agentOf(a *nlp.Annotated, off int, sent []nlp.Token, chunks []nlp.Chunk, vi int) (Match, bool) {
	if m, ok := p.byAgent(a, off, sent, chunks, vi); ok {
		return m, true
	}
	// Subject NP immediately before the VP.
	for i := vi - 1; i >= 0 && i >= vi-2; i-- {
		if chunks[i].Label == "NP" {
			c := chunks[i]
			return tokenSpanMatch(a, off+c.Start, off+c.End, p.ScoreVal), true
		}
	}
	// Agentless fallback: NP right after the verb.
	for i := vi + 1; i < len(chunks) && i <= vi+2; i++ {
		if chunks[i].Label == "NP" {
			c := chunks[i]
			return tokenSpanMatch(a, off+c.Start, off+c.End, p.ScoreVal), true
		}
	}
	return Match{}, false
}

// byAgent matches the "<VBN> by <NP>" passive-agent construction.
func (p *VP) byAgent(a *nlp.Annotated, off int, sent []nlp.Token, chunks []nlp.Chunk, vi int) (Match, bool) {
	c := chunks[vi]
	lastVerb := sent[c.End-1]
	if lastVerb.POS != "VBN" && lastVerb.POS != "VBD" {
		return Match{}, false
	}
	for i := vi + 1; i < len(chunks) && i <= vi+2; i++ {
		if chunks[i].Label != "PP" {
			continue
		}
		pp := chunks[i]
		if sent[pp.Start].Norm == "by" && pp.End-pp.Start > 1 {
			return tokenSpanMatch(a, off+pp.Start+1, off+pp.End, p.ScoreVal), true
		}
	}
	return Match{}, false
}

// VPClause matches any sentence containing a verb phrase and extracts the
// clause (the sentence span) — the bare "Verb phrase" alternative of
// Table 3's Event Description pattern. Description paragraphs are
// imperative and verb-rich ("join us…", "bring the family…"), so this
// pattern fires densely inside them and almost nowhere else.
type VPClause struct {
	PatternName string
	// MinTokens drops trivially short clauses (default 0 = no bound).
	MinTokens int
	// ExcludeTimex rejects clauses containing temporal expressions —
	// schedule lines and print-date footers are verb-bearing but are not
	// descriptions.
	ExcludeTimex bool
	ScoreVal     float64
}

// Name implements Pattern.
func (p *VPClause) Name() string { return p.PatternName }

// Find implements Pattern.
func (p *VPClause) Find(a *nlp.Annotated) []Match {
	var out []Match
	offs := sentenceOffsets(a)
	for si, sent := range a.Sentences {
		if p.MinTokens > 0 && len(sent) < p.MinTokens {
			continue
		}
		if p.ExcludeTimex && nlp.HasTimex(sent) {
			continue
		}
		chunks := nlp.ChunkSentence(sent)
		for _, c := range chunks {
			if c.Label == "VP" {
				out = append(out, tokenSpanMatch(a, offs[si], offs[si]+len(sent), p.ScoreVal))
				break
			}
		}
	}
	return out
}

// SVOPattern matches full subject–verb–object clauses; Table 3 uses SVO for
// Event Title and Event Description. The whole clause is the match.
type SVOPattern struct {
	PatternName string
	ScoreVal    float64
}

// Name implements Pattern.
func (p *SVOPattern) Name() string { return p.PatternName }

// Find implements Pattern.
func (p *SVOPattern) Find(a *nlp.Annotated) []Match {
	var out []Match
	offs := sentenceOffsets(a)
	for si, sent := range a.Sentences {
		chunks := nlp.ChunkSentence(sent)
		for _, svo := range nlp.FindSVO(sent, chunks) {
			start := offs[si] + svo.Subject.Start
			end := offs[si] + svo.Object.End
			out = append(out, tokenSpanMatch(a, start, end, p.ScoreVal))
		}
	}
	return out
}

// NESeq matches runs of named entities of the given labels with a bounded
// token length — Table 4's "bigram/trigram of NEs with Person/Organization
// tags" (Broker Name).
type NESeq struct {
	PatternName string
	Labels      []string
	MinLen      int
	MaxLen      int
	ScoreVal    float64
}

// Name implements Pattern.
func (p *NESeq) Name() string { return p.PatternName }

// Find implements Pattern.
func (p *NESeq) Find(a *nlp.Annotated) []Match {
	var out []Match
	for _, span := range nlp.Entities(a.Tokens) {
		if !contains(p.Labels, span.Label) {
			continue
		}
		n := span.End - span.Start
		if p.MinLen > 0 && n < p.MinLen {
			continue
		}
		if p.MaxLen > 0 && n > p.MaxLen {
			continue
		}
		out = append(out, tokenSpanMatch(a, span.Start, span.End, p.ScoreVal))
	}
	return out
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

// Exact matches any of a set of field descriptors verbatim (after
// normalisation). Dataset D1's 1369 form fields are extracted by "exact
// string match against the field descriptors in the holdout corpus"
// (Section 5.2.1).
type Exact struct {
	PatternName string
	// Descriptors maps normalised descriptor text to itself (set).
	Descriptors map[string]bool
	ScoreVal    float64
}

// NewExact builds an Exact pattern from raw descriptor strings.
func NewExact(name string, descriptors []string, score float64) *Exact {
	set := make(map[string]bool, len(descriptors))
	for _, d := range descriptors {
		set[normalizeDescriptor(d)] = true
	}
	return &Exact{PatternName: name, Descriptors: set, ScoreVal: score}
}

func normalizeDescriptor(s string) string {
	return strings.Join(strings.Fields(strings.ToLower(s)), " ")
}

// Name implements Pattern.
func (e *Exact) Name() string { return e.PatternName }

// Find implements Pattern: a line of the text must equal a descriptor or
// start with one. On a prefix match — the filled form field case, where the
// printed line is "<descriptor> <value>" — the match covers the whole line
// and the extracted text is the remainder after the descriptor (the field's
// value); on a full-line match the descriptor itself is extracted.
func (e *Exact) Find(a *nlp.Annotated) []Match {
	if len(a.Tokens) == 0 {
		return nil
	}
	var out []Match
	pos := 0
	for _, line := range strings.Split(a.Text, "\n") {
		if desc, rest, ok := e.matchLine(line); ok {
			lo, hi := pos, pos+len(line)
			text := rest
			start := lo
			if rest != "" {
				// Anchor the match at the extracted value, not the line
				// head, so the visual grounding covers the filled-in field.
				if at := strings.LastIndex(line, rest); at >= 0 {
					start = lo + at
				}
			} else {
				text = desc
			}
			if s, t := tokensCovering(a, start, hi); s >= 0 {
				out = append(out, Match{
					Text:      text,
					Start:     s,
					End:       t,
					CharStart: start,
					Score:     e.ScoreVal,
				})
			}
		}
		pos += len(line) + 1
	}
	return out
}

// matchLine tests the line against the descriptor set, returning the
// matched descriptor portion and the remainder of the line.
func (e *Exact) matchLine(line string) (desc, rest string, ok bool) {
	if e.Descriptors[normalizeDescriptor(line)] {
		return strings.TrimSpace(line), "", true
	}
	// Prefix match at word-boundary granularity, longest prefix first.
	words := strings.Fields(line)
	for cut := len(words) - 1; cut >= 1; cut-- {
		prefix := strings.Join(words[:cut], " ")
		if e.Descriptors[normalizeDescriptor(prefix)] {
			return prefix, strings.Join(words[cut:], " "), true
		}
	}
	return "", "", false
}

// Mined wraps a frequent subtree learned from the holdout corpus: a
// sentence matches when the mined tree embeds into the sentence's parse
// tree (Section 5.2.1). The extracted text is the narrowest chunk whose
// subtree still contains the pattern, falling back to the sentence.
type Mined struct {
	PatternName string
	Tree        *treemine.Tree
	ScoreVal    float64
}

// Name implements Pattern.
func (p *Mined) Name() string { return p.PatternName }

// Find implements Pattern.
func (p *Mined) Find(a *nlp.Annotated) []Match {
	var out []Match
	offs := sentenceOffsets(a)
	for si, sent := range a.Sentences {
		tree := toMineTree(nlp.ParseTree(sent))
		if !treemine.MatchEmbedded(p.Tree, tree) {
			continue
		}
		// Narrow to a chunk when possible.
		chunks := nlp.ChunkSentence(sent)
		matched := false
		for _, c := range chunks {
			sub := toMineTree(nlp.ParseTree(sent[c.Start:c.End]))
			if treemine.MatchEmbedded(p.Tree, sub) {
				out = append(out, tokenSpanMatch(a, offs[si]+c.Start, offs[si]+c.End, p.ScoreVal))
				matched = true
				break
			}
		}
		if !matched {
			out = append(out, tokenSpanMatch(a, offs[si], offs[si]+len(sent), p.ScoreVal*0.8))
		}
	}
	return out
}

// toMineTree converts an nlp parse tree into the treemine representation.
func toMineTree(n *nlp.ParseNode) *treemine.Tree {
	if n == nil {
		return nil
	}
	out := &treemine.Tree{Label: n.Label}
	for _, c := range n.Children {
		out.Children = append(out.Children, toMineTree(c))
	}
	return out
}
