package pattern

import (
	"testing"
	"unicode/utf8"

	"vs2/internal/nlp"
)

// FuzzPatternSets runs every built-in pattern set over arbitrary text: no
// panics, and every match must reference valid token/byte ranges of the
// annotated input.
func FuzzPatternSets(f *testing.F) {
	seeds := []string{
		"",
		"Summer Jazz Night presented by Riverside Jazz Society",
		"450 Maple Ave, Columbus, OH 43210 — Saturday 7:30 PM",
		"Contact Kevin Walsh 614-555-0137 kevin@acme.com",
		"4,500 sqft retail space for lease",
		"(((((", "1040 1040 1040", "ALL CAPS EVERYWHERE",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	sets := append(EventPatterns(), RealEstatePatterns()...)
	sets = append(sets, TaxPatterns(map[string][]string{"f": {"Wages, salaries, tips"}})...)
	f.Fuzz(func(t *testing.T, text string) {
		if !utf8.ValidString(text) || len(text) > 2000 {
			t.Skip()
		}
		a := nlp.Annotate(text)
		for _, set := range sets {
			for _, m := range set.Find(a) {
				if m.Start < 0 || m.End > len(a.Tokens) || m.Start >= m.End {
					t.Fatalf("set %s: bad token span [%d,%d) of %d", set.Entity, m.Start, m.End, len(a.Tokens))
				}
				if m.CharStart < 0 || m.CharStart >= len(text)+1 {
					t.Fatalf("set %s: bad char offset %d", set.Entity, m.CharStart)
				}
				if m.Text == "" {
					t.Fatalf("set %s: empty match text", set.Entity)
				}
			}
		}
	})
}
