// Package geom provides the planar geometry primitives used throughout VS2:
// integer-coordinate points and rectangles, bounding-box algebra, and the
// distance measures (Euclidean, L1, angular) referenced by the paper's
// layout model (Section 4) and the clustering features of Table 1.
//
// The coordinate system follows the paper: the origin is the top-left corner
// of the page, x grows rightward and y grows downward. A Rect is identified
// by its top-left corner (X, Y) and its Width and Height, matching the
// bounding-box tuple b = (x_b, y_b, w_b, h_b) of Section 5.1.
package geom

import (
	"fmt"
	"math"
)

// Point is a position on the document plane.
type Point struct {
	X, Y float64
}

// Add returns the vector sum p+q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector difference p-q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// L1Dist returns the Manhattan distance between p and q. Equation 2 of the
// paper measures centroid displacement ΔD with this metric.
func (p Point) L1Dist(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// Norm returns the Euclidean norm of p treated as a vector from the origin.
func (p Point) Norm() float64 { return math.Sqrt(p.X*p.X + p.Y*p.Y) }

// Angle returns the angular distance of p from the origin: the angle, in
// radians within [0, π/2] for page coordinates, of the ray from the page
// origin (top-left corner) to p. This is the "angular distance" visual
// attribute of Table 1.
func (p Point) Angle() float64 {
	if p.X == 0 && p.Y == 0 {
		return 0
	}
	return math.Atan2(p.Y, p.X)
}

func (p Point) String() string { return fmt.Sprintf("(%.1f,%.1f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle identified by its top-left corner and
// size. The zero Rect is empty.
type Rect struct {
	X, Y, W, H float64
}

// RectFromCorners builds the smallest rectangle covering both corner points.
func RectFromCorners(a, b Point) Rect {
	x0, x1 := math.Min(a.X, b.X), math.Max(a.X, b.X)
	y0, y1 := math.Min(a.Y, b.Y), math.Max(a.Y, b.Y)
	return Rect{X: x0, Y: y0, W: x1 - x0, H: y1 - y0}
}

// Empty reports whether r has no area.
func (r Rect) Empty() bool { return r.W <= 0 || r.H <= 0 }

// Area returns the area of r, or 0 if r is empty.
func (r Rect) Area() float64 {
	if r.Empty() {
		return 0
	}
	return r.W * r.H
}

// MaxX returns the x coordinate of the right edge.
func (r Rect) MaxX() float64 { return r.X + r.W }

// MaxY returns the y coordinate of the bottom edge.
func (r Rect) MaxY() float64 { return r.Y + r.H }

// Centroid returns the center point of r.
func (r Rect) Centroid() Point { return Point{r.X + r.W/2, r.Y + r.H/2} }

// Contains reports whether the point p lies inside r (edges inclusive on the
// top/left, exclusive on the bottom/right, so that adjacent rectangles
// partition the plane without double counting).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.X && p.X < r.MaxX() && p.Y >= r.Y && p.Y < r.MaxY()
}

// ContainsRect reports whether s lies entirely within r.
func (r Rect) ContainsRect(s Rect) bool {
	return s.X >= r.X && s.Y >= r.Y && s.MaxX() <= r.MaxX() && s.MaxY() <= r.MaxY()
}

// Intersect returns the overlapping region of r and s; the result is empty
// when they do not overlap.
func (r Rect) Intersect(s Rect) Rect {
	x0 := math.Max(r.X, s.X)
	y0 := math.Max(r.Y, s.Y)
	x1 := math.Min(r.MaxX(), s.MaxX())
	y1 := math.Min(r.MaxY(), s.MaxY())
	if x1 <= x0 || y1 <= y0 {
		return Rect{}
	}
	return Rect{X: x0, Y: y0, W: x1 - x0, H: y1 - y0}
}

// Intersects reports whether r and s overlap with positive area.
func (r Rect) Intersects(s Rect) bool { return !r.Intersect(s).Empty() }

// Union returns the smallest rectangle covering both r and s. An empty
// rectangle is the identity element.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	x0 := math.Min(r.X, s.X)
	y0 := math.Min(r.Y, s.Y)
	x1 := math.Max(r.MaxX(), s.MaxX())
	y1 := math.Max(r.MaxY(), s.MaxY())
	return Rect{X: x0, Y: y0, W: x1 - x0, H: y1 - y0}
}

// IoU returns the intersection-over-union overlap of r and s in [0, 1].
// The evaluation protocol of Section 6.2 deems a proposal accurate when its
// IoU against a ground-truth box exceeds 0.65.
func (r Rect) IoU(s Rect) float64 {
	inter := r.Intersect(s).Area()
	if inter == 0 {
		return 0
	}
	union := r.Area() + s.Area() - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// Inset shrinks r by d on every side. A negative d grows the rectangle.
// If the inset would make the rectangle empty, an empty Rect centered on the
// original centroid is returned.
func (r Rect) Inset(d float64) Rect {
	out := Rect{X: r.X + d, Y: r.Y + d, W: r.W - 2*d, H: r.H - 2*d}
	if out.W <= 0 || out.H <= 0 {
		c := r.Centroid()
		return Rect{X: c.X, Y: c.Y}
	}
	return out
}

// Translate returns r shifted by (dx, dy).
func (r Rect) Translate(dx, dy float64) Rect {
	return Rect{X: r.X + dx, Y: r.Y + dy, W: r.W, H: r.H}
}

// Gap returns the smallest Euclidean distance between the boundaries of r
// and s, or 0 when they touch or overlap. It is the "minimum Euclidean
// distance" used to find the neighbouring bounding boxes of a separator band
// in Algorithm 1.
func (r Rect) Gap(s Rect) float64 {
	dx := axisGap(r.X, r.MaxX(), s.X, s.MaxX())
	dy := axisGap(r.Y, r.MaxY(), s.Y, s.MaxY())
	return math.Sqrt(dx*dx + dy*dy)
}

func axisGap(a0, a1, b0, b1 float64) float64 {
	switch {
	case b0 > a1:
		return b0 - a1
	case a0 > b1:
		return a0 - b1
	default:
		return 0
	}
}

// AngularDistance returns the absolute difference between the angular
// positions of the two rectangle centroids relative to the page origin
// (Table 1, "angular distance").
func AngularDistance(r, s Rect) float64 {
	return math.Abs(r.Centroid().Angle() - s.Centroid().Angle())
}

// SumAngularDistance returns the sum of the angular positions of the two
// centroids (Table 1, "sum of angular distances"); together with the plain
// angular distance it discriminates elements on the same ray from elements
// mirrored across it.
func SumAngularDistance(r, s Rect) float64 {
	return r.Centroid().Angle() + s.Centroid().Angle()
}

// BoundingBox returns the union of all rectangles, or an empty Rect when
// the slice is empty.
func BoundingBox(rects []Rect) Rect {
	var out Rect
	for _, r := range rects {
		out = out.Union(r)
	}
	return out
}

// Rotate returns the axis-aligned bounding box of r rotated by theta radians
// about the point c. VS2-Segment claims robustness to rotation up to 45
// degrees (Section 5.1.2); the dataset corrupters use this to skew mobile
// captures.
func Rotate(r Rect, theta float64, c Point) Rect {
	sin, cos := math.Sincos(theta)
	corners := []Point{
		{r.X, r.Y}, {r.MaxX(), r.Y}, {r.X, r.MaxY()}, {r.MaxX(), r.MaxY()},
	}
	var minX, minY = math.Inf(1), math.Inf(1)
	var maxX, maxY = math.Inf(-1), math.Inf(-1)
	for _, p := range corners {
		dx, dy := p.X-c.X, p.Y-c.Y
		x := c.X + dx*cos - dy*sin
		y := c.Y + dx*sin + dy*cos
		minX = math.Min(minX, x)
		maxX = math.Max(maxX, x)
		minY = math.Min(minY, y)
		maxY = math.Max(maxY, y)
	}
	return Rect{X: minX, Y: minY, W: maxX - minX, H: maxY - minY}
}

func (r Rect) String() string {
	return fmt.Sprintf("[%.1f,%.1f %.1fx%.1f]", r.X, r.Y, r.W, r.H)
}
