package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointArithmetic(t *testing.T) {
	p := Point{3, 4}
	q := Point{1, -2}
	if got := p.Add(q); got != (Point{4, 2}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{2, 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{6, 8}) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Norm(); !almostEq(got, 5) {
		t.Errorf("Norm = %v", got)
	}
	if got := p.Dist(Point{0, 0}); !almostEq(got, 5) {
		t.Errorf("Dist = %v", got)
	}
	if got := p.L1Dist(q); !almostEq(got, 8) {
		t.Errorf("L1Dist = %v", got)
	}
}

func TestAngle(t *testing.T) {
	if got := (Point{0, 0}).Angle(); got != 0 {
		t.Errorf("origin angle = %v", got)
	}
	if got := (Point{1, 0}).Angle(); !almostEq(got, 0) {
		t.Errorf("x-axis angle = %v", got)
	}
	if got := (Point{0, 1}).Angle(); !almostEq(got, math.Pi/2) {
		t.Errorf("y-axis angle = %v", got)
	}
	if got := (Point{1, 1}).Angle(); !almostEq(got, math.Pi/4) {
		t.Errorf("diagonal angle = %v", got)
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{X: 10, Y: 20, W: 30, H: 40}
	if r.Empty() {
		t.Fatal("r should not be empty")
	}
	if got := r.Area(); got != 1200 {
		t.Errorf("Area = %v", got)
	}
	if got := r.MaxX(); got != 40 {
		t.Errorf("MaxX = %v", got)
	}
	if got := r.MaxY(); got != 60 {
		t.Errorf("MaxY = %v", got)
	}
	if got := r.Centroid(); got != (Point{25, 40}) {
		t.Errorf("Centroid = %v", got)
	}
	if (Rect{}).Area() != 0 {
		t.Error("empty rect area should be 0")
	}
	if !(Rect{W: -1, H: 5}).Empty() {
		t.Error("negative width must be empty")
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{X: 0, Y: 0, W: 10, H: 10}
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, true},
		{Point{5, 5}, true},
		{Point{10, 5}, false}, // right edge exclusive
		{Point{5, 10}, false}, // bottom edge exclusive
		{Point{-1, 5}, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !r.ContainsRect(Rect{X: 2, Y: 2, W: 3, H: 3}) {
		t.Error("inner rect should be contained")
	}
	if r.ContainsRect(Rect{X: 8, Y: 8, W: 5, H: 5}) {
		t.Error("overflowing rect should not be contained")
	}
}

func TestIntersectUnion(t *testing.T) {
	a := Rect{X: 0, Y: 0, W: 10, H: 10}
	b := Rect{X: 5, Y: 5, W: 10, H: 10}
	inter := a.Intersect(b)
	if inter != (Rect{X: 5, Y: 5, W: 5, H: 5}) {
		t.Errorf("Intersect = %v", inter)
	}
	if !a.Intersects(b) {
		t.Error("a and b should intersect")
	}
	disjoint := Rect{X: 100, Y: 100, W: 1, H: 1}
	if a.Intersects(disjoint) {
		t.Error("disjoint rects must not intersect")
	}
	u := a.Union(b)
	if u != (Rect{X: 0, Y: 0, W: 15, H: 15}) {
		t.Errorf("Union = %v", u)
	}
	if got := a.Union(Rect{}); got != a {
		t.Errorf("union with empty should be identity, got %v", got)
	}
	if got := (Rect{}).Union(a); got != a {
		t.Errorf("empty union a should be a, got %v", got)
	}
}

func TestIoU(t *testing.T) {
	a := Rect{X: 0, Y: 0, W: 10, H: 10}
	if got := a.IoU(a); !almostEq(got, 1) {
		t.Errorf("self IoU = %v", got)
	}
	b := Rect{X: 5, Y: 0, W: 10, H: 10}
	// intersection 50, union 150
	if got := a.IoU(b); !almostEq(got, 1.0/3.0) {
		t.Errorf("IoU = %v", got)
	}
	if got := a.IoU(Rect{X: 50, Y: 50, W: 2, H: 2}); got != 0 {
		t.Errorf("disjoint IoU = %v", got)
	}
}

func TestGap(t *testing.T) {
	a := Rect{X: 0, Y: 0, W: 10, H: 10}
	right := Rect{X: 15, Y: 0, W: 5, H: 10}
	if got := a.Gap(right); !almostEq(got, 5) {
		t.Errorf("horizontal gap = %v", got)
	}
	below := Rect{X: 0, Y: 13, W: 10, H: 2}
	if got := a.Gap(below); !almostEq(got, 3) {
		t.Errorf("vertical gap = %v", got)
	}
	diag := Rect{X: 13, Y: 14, W: 2, H: 2}
	if got := a.Gap(diag); !almostEq(got, 5) { // 3-4-5 triangle
		t.Errorf("diagonal gap = %v", got)
	}
	if got := a.Gap(Rect{X: 5, Y: 5, W: 2, H: 2}); got != 0 {
		t.Errorf("overlap gap = %v", got)
	}
}

func TestInsetTranslate(t *testing.T) {
	r := Rect{X: 10, Y: 10, W: 20, H: 20}
	if got := r.Inset(5); got != (Rect{X: 15, Y: 15, W: 10, H: 10}) {
		t.Errorf("Inset = %v", got)
	}
	if got := r.Inset(-5); got != (Rect{X: 5, Y: 5, W: 30, H: 30}) {
		t.Errorf("negative Inset = %v", got)
	}
	collapsed := r.Inset(15)
	if !collapsed.Empty() {
		t.Errorf("over-inset should be empty, got %v", collapsed)
	}
	if got := r.Translate(1, -2); got != (Rect{X: 11, Y: 8, W: 20, H: 20}) {
		t.Errorf("Translate = %v", got)
	}
}

func TestRectFromCorners(t *testing.T) {
	r := RectFromCorners(Point{10, 20}, Point{0, 5})
	if r != (Rect{X: 0, Y: 5, W: 10, H: 15}) {
		t.Errorf("RectFromCorners = %v", r)
	}
}

func TestBoundingBox(t *testing.T) {
	if !BoundingBox(nil).Empty() {
		t.Error("bounding box of nothing should be empty")
	}
	bb := BoundingBox([]Rect{
		{X: 0, Y: 0, W: 1, H: 1},
		{X: 9, Y: 9, W: 1, H: 1},
	})
	if bb != (Rect{X: 0, Y: 0, W: 10, H: 10}) {
		t.Errorf("BoundingBox = %v", bb)
	}
}

func TestRotate(t *testing.T) {
	r := Rect{X: -1, Y: -1, W: 2, H: 2}
	rot := Rotate(r, math.Pi/4, Point{0, 0})
	want := math.Sqrt2 * 2
	if !almostEq(rot.W, want) || !almostEq(rot.H, want) {
		t.Errorf("45-degree rotation of unit square = %v, want %vx%v", rot, want, want)
	}
	// Rotation by 0 is the identity.
	same := Rotate(r, 0, Point{5, 5})
	if !almostEq(same.X, r.X) || !almostEq(same.W, r.W) {
		t.Errorf("zero rotation changed the rect: %v", same)
	}
}

func TestAngularDistances(t *testing.T) {
	a := Rect{X: 10, Y: 0, W: 2, H: 2} // near x-axis
	b := Rect{X: 0, Y: 10, W: 2, H: 2} // near y-axis
	if d := AngularDistance(a, b); d <= 0 || d > math.Pi/2 {
		t.Errorf("angular distance out of range: %v", d)
	}
	if s := SumAngularDistance(a, a); !almostEq(s, 2*a.Centroid().Angle()) {
		t.Errorf("sum angular distance = %v", s)
	}
}

// Property: IoU is symmetric and bounded in [0,1].
func TestIoUProperties(t *testing.T) {
	f := func(x1, y1, w1, h1, x2, y2, w2, h2 uint8) bool {
		a := Rect{float64(x1), float64(y1), float64(w1%64) + 1, float64(h1%64) + 1}
		b := Rect{float64(x2), float64(y2), float64(w2%64) + 1, float64(h2%64) + 1}
		ab, ba := a.IoU(b), b.IoU(a)
		return almostEq(ab, ba) && ab >= 0 && ab <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Intersect result is contained in both operands, Union contains both.
func TestIntersectUnionProperties(t *testing.T) {
	f := func(x1, y1, w1, h1, x2, y2, w2, h2 uint8) bool {
		a := Rect{float64(x1), float64(y1), float64(w1%64) + 1, float64(h1%64) + 1}
		b := Rect{float64(x2), float64(y2), float64(w2%64) + 1, float64(h2%64) + 1}
		inter := a.Intersect(b)
		u := a.Union(b)
		if !inter.Empty() && (!a.ContainsRect(inter) || !b.ContainsRect(inter)) {
			return false
		}
		return u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Gap is zero iff rectangles touch or overlap; symmetric.
func TestGapProperties(t *testing.T) {
	f := func(x1, y1, x2, y2 uint8) bool {
		a := Rect{float64(x1), float64(y1), 10, 10}
		b := Rect{float64(x2), float64(y2), 10, 10}
		return almostEq(a.Gap(b), b.Gap(a)) && a.Gap(b) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
