package embed

import (
	"encoding/binary"
	"sync"
)

// Centroids caches TextVec results keyed by the ordered identity of the
// text's source — for the segmenter, the element-ID sequence of a
// layout-tree node. The Eq. 1 merge loop re-embeds every sibling on
// every pass even though a pass merges at most one pair per parent, so
// across the ≤8 passes almost all nodes are unchanged; the cache turns
// those re-embeddings into map hits. Keys are the ordered ID sequence
// (not a sorted set) because node text is transcribed in element order
// and two orderings may embed differently. Safe for concurrent use.
type Centroids struct {
	e Embedder

	mu     sync.Mutex
	vecs   map[string][]float64
	hits   int64
	misses int64
}

// NewCentroids builds an empty cache over e.
func NewCentroids(e Embedder) *Centroids {
	return &Centroids{e: e, vecs: make(map[string][]float64)}
}

// Key encodes an ordered element-ID sequence as a compact cache key.
func Key(ids []int) string {
	buf := make([]byte, 0, 2*len(ids)+binary.MaxVarintLen64)
	var tmp [binary.MaxVarintLen64]byte
	for _, id := range ids {
		n := binary.PutVarint(tmp[:], int64(id))
		buf = append(buf, tmp[:n]...)
	}
	return string(buf)
}

// TextVec returns the cached centroid for key, computing it from
// text() on the first lookup. The returned slice is shared — callers
// must not mutate it. text is only invoked on a miss, so callers can
// defer the (allocating) transcription of node text behind it.
func (c *Centroids) TextVec(key string, text func() string) []float64 {
	c.mu.Lock()
	if v, ok := c.vecs[key]; ok {
		c.hits++
		c.mu.Unlock()
		return v
	}
	c.misses++
	c.mu.Unlock()
	// Embed outside the lock: Lexicon lookups are themselves guarded,
	// and a duplicate computation under contention is deterministic, so
	// last-writer-wins is harmless.
	v := TextVec(c.e, text())
	c.mu.Lock()
	c.vecs[key] = v
	c.mu.Unlock()
	return v
}

// Stats reports cache hits and misses so far.
func (c *Centroids) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
