package embed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCosineBasics(t *testing.T) {
	a := []float64{1, 0, 0}
	b := []float64{0, 1, 0}
	if got := Cosine(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("self cosine = %v", got)
	}
	if got := Cosine(a, b); got != 0 {
		t.Errorf("orthogonal cosine = %v", got)
	}
	if got := Cosine(a, []float64{-1, 0, 0}); math.Abs(got+1) > 1e-12 {
		t.Errorf("opposite cosine = %v", got)
	}
	if Cosine(a, []float64{1, 2}) != 0 {
		t.Error("length mismatch should be 0")
	}
	if Cosine(a, []float64{0, 0, 0}) != 0 {
		t.Error("zero vector cosine should be 0")
	}
}

func TestCosineBounds(t *testing.T) {
	f := func(xs [6]int16, ys [6]int16) bool {
		a := make([]float64, 6)
		b := make([]float64, 6)
		for i := range xs {
			a[i] = float64(xs[i])
			b[i] = float64(ys[i])
		}
		c := Cosine(a, b)
		return c >= -1-1e-9 && c <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLexiconTopicalSimilarity(t *testing.T) {
	e := NewLexicon()
	pairsClose := [][2]string{
		{"jazz", "concert"},
		{"broker", "property"},
		{"bedroom", "kitchen"},
		{"tax", "deduction"},
		{"saturday", "june"},
	}
	pairsFar := [][2]string{
		{"jazz", "deduction"},
		{"bedroom", "saturday"},
		{"broker", "guitar"},
	}
	for _, p := range pairsClose {
		close := Cosine(e.Vec(p[0]), e.Vec(p[1]))
		if close < 0.3 {
			t.Errorf("%v similarity = %v, want >= 0.3", p, close)
		}
	}
	for _, p := range pairsFar {
		far := Cosine(e.Vec(p[0]), e.Vec(p[1]))
		if far > 0.3 {
			t.Errorf("%v similarity = %v, want < 0.3", p, far)
		}
	}
	// Relative ordering: in-topic beats cross-topic.
	music := Cosine(e.Vec("jazz"), e.Vec("guitar"))
	cross := Cosine(e.Vec("jazz"), e.Vec("mortgage"))
	if music <= cross {
		t.Errorf("in-topic %v <= cross-topic %v", music, cross)
	}
}

func TestLexiconInflectionsShareVectors(t *testing.T) {
	e := NewLexicon()
	if got := Cosine(e.Vec("concert"), e.Vec("concerts")); math.Abs(got-1) > 1e-9 {
		t.Errorf("inflection similarity = %v", got)
	}
}

func TestLexiconUnknownWordsEmbed(t *testing.T) {
	e := NewLexicon()
	v := e.Vec("zyzzyva")
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	if norm == 0 {
		t.Error("unknown word embedded to zero")
	}
	// Determinism.
	v2 := e.Vec("zyzzyva")
	for i := range v {
		if v[i] != v2[i] {
			t.Fatal("non-deterministic embedding")
		}
	}
	// Lexically similar unknown words correlate more than dissimilar ones.
	sim := Cosine(e.Vec("glimbering"), e.Vec("glimbered"))
	dis := Cosine(e.Vec("glimbering"), e.Vec("xylotomy"))
	if sim <= dis {
		t.Errorf("n-gram similarity ordering violated: %v <= %v", sim, dis)
	}
}

func TestTextVecAndSimilarity(t *testing.T) {
	e := NewLexicon()
	a := "live jazz concert with the band"
	b := "symphony orchestra performs music"
	c := "4 bedroom house with renovated kitchen"
	if Similarity(e, a, b) <= Similarity(e, a, c) {
		t.Error("music texts should be closer than music-vs-realestate")
	}
	zero := TextVec(e, "")
	for _, x := range zero {
		if x != 0 {
			t.Fatal("empty text should embed to zero vector")
		}
	}
	if len(zero) != e.Dim() {
		t.Error("zero vector has wrong dimension")
	}
}

func TestPPMITraining(t *testing.T) {
	corpus := []string{
		"jazz concert live music band stage jazz music concert",
		"band plays jazz music tonight live concert stage",
		"music concert jazz band live",
		"property broker sells house listing broker property sale",
		"house listing broker property sale agent house",
		"broker agent property house listing",
		"tax form income deduction filing tax income",
		"income tax filing deduction form refund",
		"deduction income tax form filing",
	}
	p := TrainPPMI(corpus, 8, 3, 30)
	if p.VocabSize() == 0 {
		t.Fatal("no vocabulary trained")
	}
	inTopic := Cosine(p.Vec("jazz"), p.Vec("concert"))
	crossTopic := Cosine(p.Vec("jazz"), p.Vec("deduction"))
	if inTopic <= crossTopic {
		t.Errorf("PPMI ordering violated: in=%v cross=%v", inTopic, crossTopic)
	}
	re := Cosine(p.Vec("broker"), p.Vec("listing"))
	reCross := Cosine(p.Vec("broker"), p.Vec("jazz"))
	if re <= reCross {
		t.Errorf("PPMI realestate ordering violated: in=%v cross=%v", re, reCross)
	}
	// Unknown word: zero vector.
	v := p.Vec("notinvocab")
	for _, x := range v {
		if x != 0 {
			t.Fatal("unknown word should embed to zero")
		}
	}
}

func TestPPMIDeterminism(t *testing.T) {
	corpus := []string{"alpha beta gamma alpha beta", "beta gamma alpha beta gamma"}
	p1 := TrainPPMI(corpus, 4, 2, 10)
	p2 := TrainPPMI(corpus, 4, 2, 10)
	v1, v2 := p1.Vec("alpha"), p2.Vec("alpha")
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("training is not deterministic")
		}
	}
}

func TestPPMIDegenerateInputs(t *testing.T) {
	p := TrainPPMI(nil, 8, 3, 5)
	if p.Dim() < 1 {
		t.Error("empty corpus should still yield a usable embedder")
	}
	p2 := TrainPPMI([]string{"word word"}, 100, 3, 5)
	if p2.Dim() > p2.VocabSize() && p2.VocabSize() > 0 {
		t.Error("dim should clamp to vocab size")
	}
}
