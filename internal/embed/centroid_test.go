package embed

import (
	"reflect"
	"sync"
	"testing"
)

func TestCentroidsCachesByOrderedKey(t *testing.T) {
	e := NewLexicon()
	c := NewCentroids(e)

	calls := 0
	text := func() string { calls++; return "total amount due" }

	k := Key([]int{3, 1, 2})
	v1 := c.TextVec(k, text)
	v2 := c.TextVec(k, text)
	if calls != 1 {
		t.Fatalf("text() called %d times, want 1 (second lookup must hit)", calls)
	}
	if !reflect.DeepEqual(v1, v2) {
		t.Fatal("cache returned different vectors for the same key")
	}
	if want := TextVec(e, "total amount due"); !reflect.DeepEqual(v1, want) {
		t.Fatal("cached vector differs from direct TextVec")
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("Stats = (%d, %d), want (1, 1)", hits, misses)
	}

	// Order matters: [1 2 3] and [3 1 2] are distinct nodes.
	if Key([]int{1, 2, 3}) == Key([]int{3, 1, 2}) {
		t.Fatal("Key must distinguish orderings")
	}
	// Concatenation boundaries matter: [12] vs [1, 2].
	if Key([]int{12}) == Key([]int{1, 2}) {
		t.Fatal("Key must distinguish [12] from [1,2]")
	}
}

func TestCentroidsConcurrent(t *testing.T) {
	c := NewCentroids(NewLexicon())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				k := Key([]int{j % 5})
				got := c.TextVec(k, func() string { return "invoice date" })
				if want := TextVec(NewLexicon(), "invoice date"); !reflect.DeepEqual(got, want) {
					t.Errorf("worker %d: wrong vector from cache", i)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}
