package embed

import (
	"strings"
	"sync"

	"vs2/internal/nlp"
)

// topics maps word stems to topic categories. Two words sharing a topic
// embed close together. The lists cover the vocabulary of the three
// experimental domains (events, real estate, tax forms) plus general
// document language; coverage gaps fall back to the n-gram subspace.
var topics = map[string][]string{
	"music": {
		"music", "jazz", "rock", "concert", "band", "song", "sing", "singer",
		"guitar", "piano", "drum", "orchestra", "choir", "melody", "acoustic",
		"dj", "vinyl", "album", "stage", "soundtrack", "recital", "symphony",
		"blues", "folk", "opera", "ensemble", "quartet",
	},
	"event": {
		"event", "festival", "fair", "gala", "party", "celebration",
		"gathering", "meetup", "social", "reception", "ceremony", "parade",
		"carnival", "happening", "occasion", "celebrate", "join", "attend",
		"rsvp", "invite", "admission", "ticket", "entry", "door", "guest",
		"audience", "crowd", "venue", "free", "raffle", "prize", "seating",
		"arrive", "proceeds", "benefit", "refreshments", "intermission",
		"talent", "volunteer",
	},
	"learning": {
		"workshop", "seminar", "lecture", "talk", "class", "course", "lesson",
		"training", "tutorial", "teach", "learn", "study", "student",
		"professor", "teacher", "speaker", "school", "university", "college",
		"academy", "education", "conference", "symposium", "research",
		"science", "lab", "topic", "scope", "syllabus",
	},
	"art": {
		"art", "gallery", "exhibition", "exhibit", "painting", "sculpture",
		"artist", "craft", "pottery", "photography", "film", "screening",
		"theatre", "theater", "dance", "ballet", "poetry", "poem", "author",
		"book", "museum", "mural", "design", "studio",
	},
	"food": {
		"food", "dinner", "lunch", "breakfast", "brunch", "tasting", "wine",
		"beer", "coffee", "tea", "snack", "dessert", "restaurant", "chef",
		"cook", "bake", "bbq", "barbecue", "potluck", "picnic", "menu",
		"catering", "pizza", "truck",
	},
	"realestate": {
		"property", "home", "house", "apartment", "condo", "listing", "sale",
		"rent", "lease", "broker", "agent", "realtor", "realty", "estate",
		"land", "lot", "parcel", "acre", "build", "building", "office",
		"retail", "warehouse", "commercial", "residential", "zoning",
		"mortgage", "tenant", "owner", "premise", "development", "investment",
	},
	"rooms": {
		"bed", "bedroom", "bath", "bathroom", "kitchen", "basement", "garage",
		"yard", "floor", "room", "suite", "closet", "attic", "porch", "deck",
		"patio", "fireplace", "hardwood", "granite", "appliance", "storage",
		"parking", "elevator", "lobby", "sqft", "renovate", "spacious",
	},
	"money": {
		"price", "cost", "fee", "payment", "pay", "dollar", "cash", "money",
		"discount", "deal", "offer", "value", "afford", "budget", "finance",
		"loan", "credit", "deposit", "invoice",
	},
	"tax": {
		"tax", "irs", "income", "wage", "salary", "deduction", "exemption",
		"refund", "filing", "form", "schedule", "dependent", "withhold",
		"gross", "adjusted", "taxable", "return", "interest", "dividend",
		"pension", "social", "security", "employer", "employee", "spouse",
		"line", "amount", "total", "enter", "attach", "instruction",
	},
	"time": {
		"time", "date", "day", "week", "month", "year", "hour", "minute",
		"today", "tomorrow", "tonight", "morning", "afternoon", "evening",
		"night", "noon", "midnight", "schedule", "calendar", "deadline",
		"start", "begin", "end", "open", "close", "daily", "weekly",
		"monthly", "annual", "season", "spring", "summer", "fall", "winter",
		"monday", "tuesday", "wednesday", "thursday", "friday", "saturday",
		"sunday", "january", "february", "march", "april", "may", "june",
		"july", "august", "september", "october", "november", "december",
	},
	"place": {
		"place", "location", "address", "street", "avenue", "road", "city",
		"town", "state", "zip", "downtown", "north", "south", "east", "west",
		"park", "hall", "center", "centre", "plaza", "square", "corner",
		"near", "nearby", "local", "neighborhood", "area", "direction", "map",
	},
	"person": {
		"person", "name", "people", "member", "family", "friend", "kid",
		"child", "children", "adult", "senior", "volunteer", "staff", "team",
		"host", "organizer", "sponsor", "chair", "director", "president",
		"founder", "manager", "contact", "phone", "email", "call", "fax",
	},
	"org": {
		"organization", "company", "club", "society", "association",
		"committee", "council", "foundation", "department", "agency",
		"group", "community", "church", "league", "union", "nonprofit",
		"corporation", "firm", "partner", "office",
	},
	"description": {
		"description", "detail", "info", "information", "feature", "include",
		"highlight", "note", "about", "overview", "summary", "essential",
		"expect", "bring", "present", "special", "new", "great", "amazing",
		"exciting", "fun", "beautiful", "stunning", "famous", "welcome",
		"skill", "interest", "demonstration", "program", "activity",
		"unforgettable", "hands", "serve", "limited", "early",
	},
}

// Lexicon is the deterministic topic+n-gram embedder. The first topicDim
// dimensions carry topic membership; the remaining dimensions carry a
// hashed character-trigram signature. The zero value is not usable; call
// NewLexicon.
type Lexicon struct {
	dim      int
	topicIdx map[string]int   // topic name -> dimension
	wordTop  map[string][]int // word stem -> topic dimensions
	mu       sync.Mutex
	cache    map[string][]float64
}

// topicWeight and ngramWeight set the relative strength of the topic
// subspace vs. the n-gram subspace. Topic evidence must dominate: the
// n-gram signature exists to break ties between unknown words, and at
// equal strength its hash collisions manufacture similarity between
// unrelated lines (a person name and an organization name would merge).
const (
	topicWeight = 3.0
	ngramWeight = 0.45
)

// NewLexicon builds the built-in lexicon embedder.
func NewLexicon() *Lexicon {
	l := &Lexicon{
		topicIdx: map[string]int{},
		wordTop:  map[string][]int{},
		cache:    map[string][]float64{},
	}
	names := make([]string, 0, len(topics))
	for name := range topics {
		names = append(names, name)
	}
	// map iteration order is random; sort for a stable dimension layout
	sortStrings(names)
	for i, name := range names {
		l.topicIdx[name] = i
	}
	for name, words := range topics {
		d := l.topicIdx[name]
		for _, w := range words {
			keys := map[string]bool{w: true, nlp.Stem(w): true}
			// Inflections of e-final words stem without the e ("feature" →
			// "featuring" → "featur"); register that stem too so lookups
			// from any inflection land on the topic.
			if strings.HasSuffix(w, "e") {
				keys[w[:len(w)-1]] = true
			}
			for k := range keys {
				l.wordTop[k] = append(l.wordTop[k], d)
			}
		}
	}
	const ngramDim = 24
	l.dim = len(topics) + ngramDim
	return l
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Dim implements Embedder.
func (l *Lexicon) Dim() int { return l.dim }

// Vec implements Embedder.
func (l *Lexicon) Vec(word string) []float64 {
	w := nlp.Stem(strings.ToLower(word))
	l.mu.Lock()
	if v, ok := l.cache[w]; ok {
		l.mu.Unlock()
		return v
	}
	l.mu.Unlock()

	v := make([]float64, l.dim)
	topics := l.wordTop[w]
	for _, d := range topics {
		v[d] += topicWeight
	}
	ngramStart := len(l.topicIdx)
	ng := ngramVec(w, l.dim-ngramStart)
	for i, x := range ng {
		v[ngramStart+i] = x * ngramWeight
	}
	if len(topics) > 0 {
		normalize(v)
	}
	// Topic-less words keep a sub-unit norm (ngramWeight): they must not
	// carry the same weight in a text centroid as words with real semantic
	// evidence, or hash-collision similarity between names and numbers
	// dominates every line-to-line comparison.

	l.mu.Lock()
	l.cache[w] = v
	l.mu.Unlock()
	return v
}

// ngramVec hashes the word's character trigrams into a small dense vector.
func ngramVec(w string, dim int) []float64 {
	out := make([]float64, dim)
	padded := "^" + w + "$"
	if len(padded) < 3 {
		padded += "$$"
	}
	for i := 0; i+3 <= len(padded); i++ {
		g := hashTo(padded[i:i+3], dim)
		for d := range out {
			out[d] += g[d]
		}
	}
	normalize(out)
	return out
}
