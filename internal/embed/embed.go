// Package embed provides the word-embedding space VS2 needs for its
// semantic operations: the semantic-merging step of VS2-Segment (Eq. 1
// compares sibling areas by cosine similarity of their text), the semantic
// coherence objective of the interest-point selection (Section 5.3.1), and
// the ΔSim term of the multimodal distance (Eq. 2).
//
// The paper uses a pre-trained Word2Vec model [26]. With no pretrained
// weights available offline, this package offers two deterministic
// substitutes that preserve the property the algorithms actually rely on —
// topically related words are close in cosine space:
//
//   - Lexicon: a fixed embedder that composes a topic-category subspace
//     (from a built-in word→topic lexicon) with a hashed character-n-gram
//     subspace (so unknown words still embed, and lexically similar
//     words correlate).
//   - PPMI: a trainable co-occurrence embedder (positive pointwise mutual
//     information matrix factorised by power iteration), for callers that
//     want in-domain vectors learned from their own corpus.
package embed

import (
	"hash/fnv"
	"math"

	"vs2/internal/nlp"
)

// Embedder maps words to dense vectors of a fixed dimension.
type Embedder interface {
	// Vec returns the embedding of one word. Implementations must return a
	// zero vector (len == Dim) for words they cannot embed.
	Vec(word string) []float64
	// Dim returns the embedding dimensionality.
	Dim() int
}

// Cosine returns the cosine similarity of two vectors (0 when either is
// zero or lengths differ).
func Cosine(a, b []float64) float64 {
	if len(a) != len(b) {
		return 0
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// TextVec embeds a token list as the L2-normalised centroid of its word
// vectors after stopword removal and stemming. Returns a zero vector for
// empty/unembeddable text.
func TextVec(e Embedder, text string) []float64 {
	out := make([]float64, e.Dim())
	n := 0
	for _, w := range nlp.Normalize(text) {
		v := e.Vec(w)
		for i := range v {
			out[i] += v[i]
		}
		n++
	}
	if n == 0 {
		return out
	}
	normalize(out)
	return out
}

// Similarity returns the cosine similarity of two texts under e.
func Similarity(e Embedder, a, b string) float64 {
	return Cosine(TextVec(e, a), TextVec(e, b))
}

func normalize(v []float64) {
	var n float64
	for _, x := range v {
		n += x * x
	}
	if n == 0 {
		return
	}
	n = math.Sqrt(n)
	for i := range v {
		v[i] /= n
	}
}

// hashTo produces a deterministic pseudo-random unit-ish vector for a
// string, by seeding per-dimension FNV hashes. Used for both the n-gram
// subspace of the Lexicon embedder and power-iteration initialisation.
func hashTo(s string, dim int) []float64 {
	out := make([]float64, dim)
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	for i := range out {
		// xorshift64 stream from the seed
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		// map to [-1, 1): the signed reinterpretation is symmetric around
		// zero, so components carry no bias and distinct seeds decorrelate
		out[i] = float64(int64(x)) / float64(math.MaxInt64)
	}
	normalize(out)
	return out
}
