package embed

import (
	"math"
	"sort"

	"vs2/internal/nlp"
)

// PPMI is a trainable co-occurrence embedder: it builds a word×word
// positive-pointwise-mutual-information matrix from a training corpus and
// factorises it with orthogonal power iteration, yielding dense vectors
// whose cosine similarity reflects distributional similarity — the same
// property the skip-gram model of Word2Vec [26] optimises (Levy & Goldberg
// showed SGNS implicitly factorises a shifted PMI matrix).
type PPMI struct {
	dim   int
	index map[string]int
	vecs  [][]float64
}

// TrainPPMI learns embeddings of the given dimension from a corpus of
// documents (each a plain-text string). window is the co-occurrence
// half-width in tokens; iterations controls the power-iteration count
// (20–50 is plenty). Deterministic for fixed inputs.
func TrainPPMI(corpus []string, dim, window, iterations int) *PPMI {
	if window <= 0 {
		window = 4
	}
	if iterations <= 0 {
		iterations = 30
	}

	// Pass 1: vocabulary.
	counts := map[string]int{}
	tokenized := make([][]string, len(corpus))
	for i, text := range corpus {
		tokenized[i] = nlp.Normalize(text)
		for _, w := range tokenized[i] {
			counts[w]++
		}
	}
	vocab := make([]string, 0, len(counts))
	for w, c := range counts {
		if c >= 2 { // drop hapax legomena
			vocab = append(vocab, w)
		}
	}
	sort.Strings(vocab)
	index := make(map[string]int, len(vocab))
	for i, w := range vocab {
		index[w] = i
	}
	n := len(vocab)
	if dim > n {
		dim = n
	}
	if dim < 1 {
		dim = 1
	}
	if n == 0 {
		return &PPMI{dim: dim, index: index}
	}

	// Pass 2: co-occurrence counts within the window.
	cooc := make(map[[2]int]float64)
	rowSum := make([]float64, n)
	var total float64
	for _, toks := range tokenized {
		for i, w := range toks {
			wi, ok := index[w]
			if !ok {
				continue
			}
			for j := i + 1; j <= i+window && j < len(toks); j++ {
				cj, ok := index[toks[j]]
				if !ok {
					continue
				}
				cooc[[2]int{wi, cj}]++
				cooc[[2]int{cj, wi}]++
				rowSum[wi]++
				rowSum[cj]++
				total += 2
			}
		}
	}

	// Sparse PPMI matrix rows.
	type cell struct {
		col int
		val float64
	}
	rows := make([][]cell, n)
	for key, c := range cooc {
		i, j := key[0], key[1]
		if rowSum[i] == 0 || rowSum[j] == 0 {
			continue
		}
		pmi := math.Log((c * total) / (rowSum[i] * rowSum[j]))
		if pmi > 0 {
			rows[i] = append(rows[i], cell{col: j, val: pmi})
		}
	}
	for i := range rows {
		sort.Slice(rows[i], func(a, b int) bool { return rows[i][a].col < rows[i][b].col })
	}

	mul := func(v []float64) []float64 {
		out := make([]float64, n)
		for i := range rows {
			var s float64
			for _, c := range rows[i] {
				s += c.val * v[c.col]
			}
			out[i] = s
		}
		return out
	}

	// Orthogonal power iteration on the symmetric PPMI matrix: find the top
	// dim eigenvectors. Deterministic seeds from the vocabulary.
	basis := make([][]float64, dim)
	for k := range basis {
		basis[k] = hashTo(vocab[k%n]+"#seed", n)
	}
	for it := 0; it < iterations; it++ {
		for k := range basis {
			v := mul(basis[k])
			// Gram-Schmidt against previous vectors.
			for p := 0; p < k; p++ {
				var dot float64
				for i := range v {
					dot += v[i] * basis[p][i]
				}
				for i := range v {
					v[i] -= dot * basis[p][i]
				}
			}
			normalize(v)
			basis[k] = v
		}
	}

	// Word vectors: projections onto the eigenbasis, scaled by the
	// (approximate) eigenvalues so dominant directions carry more weight.
	eigval := make([]float64, dim)
	for k := range basis {
		mv := mul(basis[k])
		var lambda float64
		for i := range mv {
			lambda += mv[i] * basis[k][i]
		}
		if lambda < 0 {
			lambda = -lambda
		}
		eigval[k] = math.Sqrt(lambda + 1e-12)
	}
	vecs := make([][]float64, n)
	for i := 0; i < n; i++ {
		v := make([]float64, dim)
		for k := 0; k < dim; k++ {
			v[k] = basis[k][i] * eigval[k]
		}
		normalize(v)
		vecs[i] = v
	}
	return &PPMI{dim: dim, index: index, vecs: vecs}
}

// Dim implements Embedder.
func (p *PPMI) Dim() int { return p.dim }

// Vec implements Embedder. Unknown words embed to the zero vector.
func (p *PPMI) Vec(word string) []float64 {
	if i, ok := p.index[nlp.Stem(word)]; ok {
		return p.vecs[i]
	}
	return make([]float64, p.dim)
}

// VocabSize returns the number of trained word vectors.
func (p *PPMI) VocabSize() int { return len(p.vecs) }
