package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vs2/internal/obs"
)

// collect replays r and returns the payloads plus stats.
func collect(t *testing.T, data []byte) ([][]byte, ReplayStats) {
	t.Helper()
	var got [][]byte
	st, err := Replay(bytes.NewReader(data), 0, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got, st
}

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte(`{"t":"admit","id":"a"}`),
		[]byte(`{}`),
		{}, // empty payload is a legal frame
		[]byte(strings.Repeat("x", 1000)),
	}
	var buf bytes.Buffer
	for _, p := range payloads {
		buf.Write(Frame(p))
	}
	got, st := collect(t, buf.Bytes())
	if len(got) != len(payloads) {
		t.Fatalf("replayed %d records, want %d", len(got), len(payloads))
	}
	for i, p := range payloads {
		if !bytes.Equal(got[i], p) {
			t.Errorf("record %d = %q, want %q", i, got[i], p)
		}
	}
	if st.Bytes != int64(buf.Len()) || st.TruncatedBytes != 0 || st.TornReason != "" {
		t.Errorf("stats = %+v, want clean full replay of %d bytes", st, buf.Len())
	}
}

func TestWriterAppendReplayFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	m := obs.NewRegistry()
	w, err := OpenWriter(path, Options{Sync: SyncAlways, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{`{"id":"a"}`, `{"id":"b"}`, `{"id":"c"}`}
	for _, p := range want {
		if err := w.Append([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var got []string
	st, err := ReplayFile(path, 0, m, func(p []byte) error {
		got = append(got, string(p))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("replayed %v, want %v", got, want)
	}
	info, _ := os.Stat(path)
	if st.Bytes != info.Size() {
		t.Errorf("valid prefix %d bytes, file is %d", st.Bytes, info.Size())
	}
	snap := m.Snapshot()
	if snap.Counters["journal.appended"] != 3 || snap.Counters["journal.fsyncs"] < 3 {
		t.Errorf("metrics: appended=%d fsyncs=%d, want 3/>=3",
			snap.Counters["journal.appended"], snap.Counters["journal.fsyncs"])
	}
	if snap.Counters["journal.replay.records"] != 3 {
		t.Errorf("replay.records = %d, want 3", snap.Counters["journal.replay.records"])
	}
}

func TestReplayMissingFileIsEmpty(t *testing.T) {
	st, err := ReplayFile(filepath.Join(t.TempDir(), "nope.wal"), 0, nil,
		func([]byte) error { t.Fatal("delivered a record from a missing file"); return nil })
	if err != nil || st.Records != 0 {
		t.Fatalf("st=%+v err=%v, want empty/nil", st, err)
	}
}

// TestReplayTornTail covers every way a crash can tear the last frame:
// mid-payload cut, missing newline, flipped payload byte, raw garbage.
// Replay must keep every intact frame and drop exactly the tail.
func TestReplayTornTail(t *testing.T) {
	intact := [][]byte{[]byte(`{"id":"a"}`), []byte(`{"id":"b"}`)}
	var prefix bytes.Buffer
	for _, p := range intact {
		prefix.Write(Frame(p))
	}
	full := Frame([]byte(`{"id":"c","x":"yyyyyyyy"}`))
	cases := []struct {
		name string
		tail []byte
	}{
		{"cut mid-frame", full[:len(full)/2]},
		{"no newline", full[:len(full)-1]},
		{"garbage", []byte("\x00\xff\x17 total garbage, not a frame")},
		{"bad magic", append([]byte("X9 "), full[3:]...)},
		{"empty line", []byte("\n")},
		{"header only", []byte("J1 10 deadbeef ")},
	}
	// Flipped payload byte (CRC mismatch) keeps the frame shape.
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)-5] ^= 0x01
	cases = append(cases, struct {
		name string
		tail []byte
	}{"crc mismatch", flipped})

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := append(append([]byte(nil), prefix.Bytes()...), tc.tail...)
			got, st := collect(t, data)
			if len(got) != len(intact) {
				t.Fatalf("replayed %d records, want %d (reason %q)", len(got), len(intact), st.TornReason)
			}
			if st.TornReason == "" {
				t.Error("torn tail not reported")
			}
			if st.TruncatedBytes != int64(len(tc.tail)) {
				t.Errorf("truncated %d bytes, want %d", st.TruncatedBytes, len(tc.tail))
			}
			if st.Bytes != int64(prefix.Len()) {
				t.Errorf("valid prefix %d, want %d", st.Bytes, prefix.Len())
			}
		})
	}
}

// TestReplayStopsAtMidJournalCorruption: a damaged frame invalidates
// everything after it — valid-looking later frames must not be
// delivered, because append ordering can no longer be trusted.
func TestReplayStopsAtMidJournalCorruption(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(Frame([]byte(`{"id":"a"}`)))
	bad := Frame([]byte(`{"id":"b"}`))
	bad[len(bad)-3] ^= 0x40
	buf.Write(bad)
	buf.Write(Frame([]byte(`{"id":"c"}`)))
	got, st := collect(t, buf.Bytes())
	if len(got) != 1 || string(got[0]) != `{"id":"a"}` {
		t.Fatalf("replayed %q, want only the first record", got)
	}
	if st.TruncatedBytes == 0 || st.TornReason == "" {
		t.Errorf("corruption not reported: %+v", st)
	}
}

func TestReplayOversizedFrameRejected(t *testing.T) {
	big := Frame(bytes.Repeat([]byte("z"), 4096))
	got, st := func() ([][]byte, ReplayStats) {
		var g [][]byte
		st, err := Replay(bytes.NewReader(big), 128, func(p []byte) error {
			g = append(g, p)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return g, st
	}()
	if len(got) != 0 {
		t.Fatalf("oversized frame delivered")
	}
	if st.TruncatedBytes != int64(len(big)) {
		t.Errorf("truncated %d, want %d", st.TruncatedBytes, len(big))
	}
}

func TestWriterRejectsNewlineAndOversize(t *testing.T) {
	w, err := OpenWriter(filepath.Join(t.TempDir(), "j.wal"), Options{MaxRecord: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append([]byte("a\nb")); err == nil {
		t.Error("newline payload accepted")
	}
	if err := w.Append(bytes.Repeat([]byte("x"), 17)); !errors.Is(err, ErrRecordTooLarge) {
		t.Errorf("oversize err = %v, want ErrRecordTooLarge", err)
	}
	if err := w.Append([]byte("ok")); err != nil {
		t.Errorf("valid append after rejected payloads failed: %v (rejections must not poison the writer)", err)
	}
}

// failFile tears the nth write to exercise the sticky-failure contract.
type failFile struct {
	f      File
	writes int
	failAt int
}

func (ff *failFile) Write(p []byte) (int, error) {
	ff.writes++
	if ff.writes == ff.failAt {
		n := len(p) / 2
		ff.f.Write(p[:n]) //nolint:errcheck
		return n, errors.New("disk full")
	}
	return ff.f.Write(p)
}
func (ff *failFile) Sync() error  { return ff.f.Sync() }
func (ff *failFile) Close() error { return ff.f.Close() }

func TestWriterShortWriteIsSticky(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	w, err := OpenWriter(path, Options{
		Sync: SyncNever,
		OpenFile: func(p string) (File, error) {
			f, err := os.OpenFile(p, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
			if err != nil {
				return nil, err
			}
			return &failFile{f: f, failAt: 2}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte(`{"id":"a"}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte(`{"id":"b"}`)); !errors.Is(err, ErrWriterFailed) {
		t.Fatalf("torn append err = %v, want ErrWriterFailed", err)
	}
	if err := w.Append([]byte(`{"id":"c"}`)); !errors.Is(err, ErrWriterFailed) {
		t.Fatalf("append after tear err = %v, want sticky ErrWriterFailed", err)
	}
	w.Close()

	// The file now holds one intact frame and half of another: replay
	// recovers the record written before the tear, drops the tear.
	var got []string
	st, err := ReplayFile(path, 0, nil, func(p []byte) error {
		got = append(got, string(p))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != `{"id":"a"}` {
		t.Fatalf("replayed %v, want the single pre-tear record", got)
	}
	if st.TruncatedBytes == 0 {
		t.Error("tear not reported")
	}
}

func TestCheckpointWriteReadCycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal.ckpt")
	ck := &Checkpoint{Seq: 3, Entries: map[string]Entry{}}
	for _, id := range []string{"a", "b", "c"} {
		line := []byte(`{"id":"` + id + `"}`)
		ck.Entries[id] = Entry{Digest: Digest(line), Line: string(line)}
	}
	if err := WriteCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 3 || len(got.Entries) != 3 {
		t.Fatalf("read back seq=%d entries=%d, want 3/3", got.Seq, len(got.Entries))
	}
	// Overwrite is atomic-replace, not merge.
	if err := WriteCheckpoint(path, &Checkpoint{Seq: 4, Entries: map[string]Entry{"z": {Digest: Digest([]byte("l")), Line: "l"}}}); err != nil {
		t.Fatal(err)
	}
	got, err = ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 4 || len(got.Entries) != 1 {
		t.Fatalf("after rewrite seq=%d entries=%d, want 4/1", got.Seq, len(got.Entries))
	}
}

func TestCheckpointMissingAndDigestMismatch(t *testing.T) {
	dir := t.TempDir()
	ck, err := ReadCheckpoint(filepath.Join(dir, "absent.ckpt"))
	if err != nil || len(ck.Entries) != 0 {
		t.Fatalf("missing checkpoint: %+v, %v", ck, err)
	}
	// An entry whose digest lies about its line is dropped, not trusted.
	path := filepath.Join(dir, "bad.ckpt")
	if err := os.WriteFile(path,
		[]byte(`{"seq":1,"entries":{"a":{"digest":"00000000","line":"tampered"},"b":{"digest":"`+Digest([]byte("ok"))+`","line":"ok"}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	ck, err = ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, bad := ck.Entries["a"]; bad {
		t.Error("digest-mismatched entry survived")
	}
	if _, good := ck.Entries["b"]; !good {
		t.Error("valid entry dropped")
	}
}

func TestStateResumeCycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.wal")
	s, err := OpenState(path, StateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range []string{"d0", "d1", "d2"} {
		if err := s.Admit(id, i); err != nil {
			t.Fatal(err)
		}
	}
	mustComplete := func(id, line string) {
		t.Helper()
		if err := s.Complete(id, []byte(line)); err != nil {
			t.Fatal(err)
		}
	}
	mustComplete("d0", `{"id":"d0","entities":[1]}`)
	if err := s.Degrade("d1", "segment", "linear-segmentation"); err != nil {
		t.Fatal(err)
	}
	mustComplete("d1", `{"id":"d1"}`)
	// d2 admitted, never completed — the crash casualty.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenState(path, StateOptions{Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if line, ok := r.Completed("d0"); !ok || string(line) != `{"id":"d0","entities":[1]}` {
		t.Fatalf("d0 line = %q ok=%v", line, ok)
	}
	if _, ok := r.Completed("d2"); ok {
		t.Error("admitted-but-incomplete d2 reported as completed")
	}
	comp, inflight := r.Replayed()
	if comp != 2 || inflight != 1 {
		t.Errorf("replayed = %d/%d, want 2 completions, 1 in-flight", comp, inflight)
	}
	if ids := r.CompletedIDs(); fmt.Sprint(ids) != "[d0 d1]" {
		t.Errorf("completed IDs %v, want [d0 d1]", ids)
	}
}

func TestStateFreshRunDiscardsOldState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.wal")
	s, err := OpenState(path, StateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Complete("old", []byte("old-line")); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil { // leaves a checkpoint behind too
		t.Fatal(err)
	}
	s.Close()

	fresh, err := OpenState(path, StateOptions{}) // no Resume
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if _, ok := fresh.Completed("old"); ok {
		t.Error("fresh (non-resume) state kept the previous run's completions")
	}
}

// TestStateResumeTruncatesTornTail: garbage after the valid frames must
// not orphan records appended by the resumed run.
func TestStateResumeTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.wal")
	s, err := OpenState(path, StateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Complete("a", []byte("line-a")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("J1 999 deadbeef torn")) //nolint:errcheck
	f.Close()

	r, err := OpenState(path, StateOptions{Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Completed("a"); !ok {
		t.Fatal("pre-tear record lost")
	}
	if err := r.Complete("b", []byte("line-b")); err != nil {
		t.Fatal(err)
	}
	r.Close()

	// Both records must now replay: the tail was truncated before append.
	r2, err := OpenState(path, StateOptions{Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	for _, id := range []string{"a", "b"} {
		if _, ok := r2.Completed(id); !ok {
			t.Errorf("record %s unreachable after torn-tail resume", id)
		}
	}
}

// TestStateCompaction: automatic checkpointing truncates the journal,
// survives resume, and interleaves correctly with post-compaction
// appends (checkpoint ∪ journal).
func TestStateCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.wal")
	m := obs.NewRegistry()
	s, err := OpenState(path, StateOptions{Options: Options{Metrics: m}, CompactEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b", "c"} { // compaction fires after b
		if err := s.Complete(id, []byte("line-"+id)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	if m.Snapshot().Counters["journal.compactions"] != 1 {
		t.Fatalf("compactions = %d, want 1", m.Snapshot().Counters["journal.compactions"])
	}
	// Only c's record should remain in the journal; a and b live in the
	// checkpoint.
	var tail []string
	if _, err := ReplayFile(path, 0, nil, func(p []byte) error {
		tail = append(tail, string(p))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(tail) != 1 || !strings.Contains(tail[0], `"id":"c"`) {
		t.Errorf("journal tail after compaction = %v, want only c's record", tail)
	}
	ck, err := ReadCheckpoint(path + ".ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.Entries) != 2 {
		t.Errorf("checkpoint entries = %d, want 2 (a, b)", len(ck.Entries))
	}

	r, err := OpenState(path, StateOptions{Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for _, id := range []string{"a", "b", "c"} {
		if line, ok := r.Completed(id); !ok || string(line) != "line-"+id {
			t.Errorf("after compaction+resume, %s = %q ok=%v", id, line, ok)
		}
	}
}

// TestStateFixtures replays the committed corrupt-journal fixtures: real
// on-disk artifacts of torn and garbage tails, pinned so the format (and
// its recovery behaviour) cannot drift silently.
func TestStateFixtures(t *testing.T) {
	cases := []struct {
		file      string
		records   int
		truncated bool
	}{
		{"clean.wal", 3, false},
		{"torn_tail.wal", 3, true},
		{"garbage_tail.wal", 2, true},
		{"bad_crc_mid.wal", 1, true},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			path := filepath.Join("..", "..", "testdata", "journal", tc.file)
			var n int
			st, err := ReplayFile(path, 0, nil, func(p []byte) error {
				n++
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if n != tc.records {
				t.Errorf("replayed %d records, want %d", n, tc.records)
			}
			if (st.TruncatedBytes > 0) != tc.truncated {
				t.Errorf("truncated=%d, want truncation=%v (reason %q)", st.TruncatedBytes, tc.truncated, st.TornReason)
			}
		})
	}
}

func TestParseSync(t *testing.T) {
	for s, want := range map[string]Sync{"always": SyncAlways, "": SyncAlways, "interval": SyncInterval, "never": SyncNever} {
		got, err := ParseSync(s)
		if err != nil || got != want {
			t.Errorf("ParseSync(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseSync("sometimes"); err == nil {
		t.Error("bad policy accepted")
	}
}
