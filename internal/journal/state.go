package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"vs2/internal/obs"
)

// Record is one durable corpus-processing event. Admission records mark
// a document handed to the pipeline (so an interrupted run knows it may
// have partially executed); completion records carry the document's
// final result line; degradation records note each fallback the
// pipeline took, for post-hoc replay auditing.
type Record struct {
	// T is the record type: "admit", "complete" or "degrade".
	T string `json:"t"`
	// ID is the document ID.
	ID string `json:"id"`
	// Index is the document's position in the corpus (admit records).
	Index int `json:"i,omitempty"`
	// Phase and Fallback describe a degradation (degrade records).
	Phase    string `json:"phase,omitempty"`
	Fallback string `json:"fallback,omitempty"`
	// Digest and Line carry the result (complete records): Line is the
	// exact output line (no trailing newline), Digest its CRC32 hex8.
	Digest string `json:"digest,omitempty"`
	Line   string `json:"line,omitempty"`
}

// Record types.
const (
	RecordAdmit    = "admit"
	RecordComplete = "complete"
	RecordDegrade  = "degrade"
	// RecordOwner stamps the journal with its owner label (the ID field
	// carries the label). A sharded deployment writes one per journal so
	// that resuming shard 2's journal as shard 0 — a misconfigured state
	// directory, a copy-paste in an ops runbook — fails loudly instead of
	// silently serving another shard's completions.
	RecordOwner = "owner"
)

// ErrWrongOwner reports a resume of a journal (or checkpoint) stamped
// with a different owner label than the opener's.
var ErrWrongOwner = errors.New("journal: owned by another writer")

// State is durable corpus-processing state: the union of the checkpoint
// and the journal's completion records, plus the append handle the
// current run writes through. Safe for concurrent use.
type State struct {
	mu        sync.Mutex
	w         *Writer
	path      string
	ckptPath  string
	opts      Options
	seq       int64
	completed map[string]Entry
	// admitted counts admit records replayed for documents that never
	// completed — the in-flight casualties of the previous crash.
	admitted int
	replayed int // completion records recovered (checkpoint + journal)
	// CompactEvery triggers a checkpoint compaction after that many new
	// completions; 0 compacts only on explicit Compact calls.
	compactEvery int
	sinceCompact int
	owner        string
	m            *obs.Registry
}

// StateOptions extends Options with State-level tuning.
type StateOptions struct {
	Options
	// Resume loads the existing checkpoint and journal instead of
	// truncating them. Without it, OpenState starts a fresh journal,
	// removing any previous state at the path.
	Resume bool
	// CompactEvery checkpoints after that many new completions;
	// 0 disables automatic compaction.
	CompactEvery int
	// Owner, when non-empty, stamps fresh journals and checkpoints with
	// this label and refuses (ErrWrongOwner) to resume state stamped with
	// a different one — the guard that keeps one shard from replaying
	// another shard's journal. Empty skips both stamping and checking,
	// and resuming an unstamped journal with an Owner set is legal (the
	// stamp is added going forward).
	Owner string
}

// OpenState opens (or resumes) the durable state rooted at path. The
// checkpoint lives beside the journal at path+".ckpt". Resuming replays
// checkpoint then journal — later records win, torn tails are truncated
// off the journal file so subsequent appends stay reachable — and then
// reopens the journal for appending.
func OpenState(path string, so StateOptions) (*State, error) {
	s := &State{
		path:         path,
		ckptPath:     path + ".ckpt",
		opts:         so.Options.withDefaults(),
		completed:    map[string]Entry{},
		compactEvery: so.CompactEvery,
		owner:        so.Owner,
		m:            so.Options.Metrics,
	}
	if !so.Resume {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("journal: reset %s: %w", path, err)
		}
		if err := os.Remove(s.ckptPath); err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("journal: reset %s: %w", s.ckptPath, err)
		}
	} else if err := s.recover(); err != nil {
		return nil, err
	}
	w, err := OpenWriter(path, s.opts)
	if err != nil {
		return nil, err
	}
	s.w = w
	if s.owner != "" {
		// Stamp every fresh journal generation; resumed journals already
		// carry the stamp (validated in recover) or predate owners.
		if err := s.append(Record{T: RecordOwner, ID: s.owner}); err != nil {
			s.w.Close() //nolint:errcheck
			return nil, err
		}
	}
	s.m.Gauge("journal.completed").Set(float64(len(s.completed)))
	return s, nil
}

// recover loads the checkpoint, replays the journal over it, and
// truncates the journal's torn tail (if any) so the writer can append.
func (s *State) recover() error {
	ck, err := ReadCheckpoint(s.ckptPath)
	if err != nil {
		return err
	}
	if s.owner != "" && ck.Owner != "" && ck.Owner != s.owner {
		return fmt.Errorf("%w: checkpoint %s is owned by %q, opened as %q", ErrWrongOwner, s.ckptPath, ck.Owner, s.owner)
	}
	s.seq = ck.Seq
	s.completed = ck.Entries
	admits := map[string]bool{}
	st, err := ReplayFile(s.path, s.opts.MaxRecord, s.m, func(payload []byte) error {
		var rec Record
		if jerr := json.Unmarshal(payload, &rec); jerr != nil {
			// A verified frame with an unparseable payload was written by
			// something that is not this schema; skip rather than abort —
			// the frame is durable but meaningless to us.
			s.m.Counter("journal.replay.unknown").Inc()
			return nil
		}
		switch rec.T {
		case RecordAdmit:
			admits[rec.ID] = true
		case RecordComplete:
			if Digest([]byte(rec.Line)) == rec.Digest {
				s.completed[rec.ID] = Entry{Digest: rec.Digest, Line: rec.Line}
			} else {
				s.m.Counter("journal.replay.bad_digest").Inc()
			}
		case RecordDegrade:
			// Informational; nothing to restore.
		case RecordOwner:
			if s.owner != "" && rec.ID != "" && rec.ID != s.owner {
				return fmt.Errorf("%w: journal %s is owned by %q, opened as %q", ErrWrongOwner, s.path, rec.ID, s.owner)
			}
		default:
			s.m.Counter("journal.replay.unknown").Inc()
		}
		return nil
	})
	if err != nil {
		return err
	}
	for id := range admits {
		if _, done := s.completed[id]; !done {
			s.admitted++
		}
	}
	s.replayed = len(s.completed)
	if st.TruncatedBytes > 0 {
		// Drop the torn tail on disk, or frames appended by this run
		// would sit unreachable behind it.
		if terr := os.Truncate(s.path, st.Bytes); terr != nil {
			return fmt.Errorf("journal: truncate torn tail of %s: %w", s.path, terr)
		}
	}
	return nil
}

func (s *State) append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: marshal record: %w", err)
	}
	return s.w.Append(payload)
}

// Admit journals that the document is about to run. Idempotent in
// effect: duplicate admits are harmless on replay.
func (s *State) Admit(id string, index int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.append(Record{T: RecordAdmit, ID: id, Index: index})
}

// Degrade journals one pipeline fallback for the document.
func (s *State) Degrade(id, phase, fallback string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.append(Record{T: RecordDegrade, ID: id, Phase: phase, Fallback: fallback})
}

// Complete journals the document's final result line (no trailing
// newline) and records it for Completed lookups. The write-ahead
// contract: call Complete before emitting the line downstream, so a
// crash between the two re-emits from the journal instead of losing the
// document. Triggers a checkpoint compaction every CompactEvery
// completions.
func (s *State) Complete(id string, line []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := Entry{Digest: Digest(line), Line: string(line)}
	if err := s.append(Record{T: RecordComplete, ID: id, Digest: e.Digest, Line: e.Line}); err != nil {
		return err
	}
	s.completed[id] = e
	s.m.Gauge("journal.completed").Set(float64(len(s.completed)))
	s.sinceCompact++
	if s.compactEvery > 0 && s.sinceCompact >= s.compactEvery {
		return s.compactLocked()
	}
	return nil
}

// Completed returns the cached result line for a document this state has
// already seen complete (in this run or a replayed one).
func (s *State) Completed(id string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.completed[id]
	if !ok {
		return nil, false
	}
	return []byte(e.Line), true
}

// CompletedIDs returns the sorted IDs of every completed document.
func (s *State) CompletedIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.completed))
	for id := range s.completed {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Replayed returns how many completions were recovered at open, and how
// many admitted-but-incomplete documents the previous run left behind.
func (s *State) Replayed() (completions, inflight int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replayed, s.admitted
}

// Compact checkpoints the completed set and truncates the journal: an
// atomic snapshot replaces the record tail. Crash windows are all safe —
// before the rename the old checkpoint plus the full journal survive;
// between rename and truncate the records are duplicated across
// checkpoint and journal (replay is idempotent, keyed by ID); after the
// truncate the new checkpoint alone carries the state.
func (s *State) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

func (s *State) compactLocked() error {
	// The journal must be durable before the checkpoint claims its
	// records; with SyncNever/SyncInterval there may be unsynced frames.
	if err := s.w.Sync(); err != nil {
		return err
	}
	s.seq++
	entries := make(map[string]Entry, len(s.completed))
	for id, e := range s.completed {
		entries[id] = e
	}
	if err := WriteCheckpoint(s.ckptPath, &Checkpoint{Seq: s.seq, Owner: s.owner, Entries: entries}); err != nil {
		return err
	}
	// Start a fresh journal generation: close, truncate, reopen append.
	if err := s.w.Close(); err != nil {
		return err
	}
	if err := os.Truncate(s.path, 0); err != nil {
		return fmt.Errorf("journal: truncate after compaction: %w", err)
	}
	w, err := OpenWriter(s.path, s.opts)
	if err != nil {
		return err
	}
	s.w = w
	s.sinceCompact = 0
	s.m.Counter("journal.compactions").Inc()
	s.m.Gauge("journal.checkpoint.entries").Set(float64(len(entries)))
	return nil
}

// Sync forces pending journal frames to stable storage.
func (s *State) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Sync()
}

// Close syncs and closes the journal handle. The checkpoint is left as
// last compacted; a final Compact before Close minimises replay work for
// the next resume.
func (s *State) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Close()
}
