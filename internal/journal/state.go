package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"vs2/internal/obs"
)

// Record is one durable corpus-processing event. Admission records mark
// a document handed to the pipeline (so an interrupted run knows it may
// have partially executed); completion records carry the document's
// final result line; degradation records note each fallback the
// pipeline took, for post-hoc replay auditing.
type Record struct {
	// T is the record type: "admit", "complete" or "degrade".
	T string `json:"t"`
	// ID is the document ID.
	ID string `json:"id"`
	// Index is the document's position in the corpus (admit records).
	Index int `json:"i,omitempty"`
	// Phase and Fallback describe a degradation (degrade records).
	Phase    string `json:"phase,omitempty"`
	Fallback string `json:"fallback,omitempty"`
	// Digest and Line carry the result (complete records): Line is the
	// exact output line (no trailing newline), Digest its CRC32 hex8.
	Digest string `json:"digest,omitempty"`
	Line   string `json:"line,omitempty"`
	// From, on owner records, names the previous owner of an explicit
	// ownership transfer (a planned handoff during live resharding);
	// empty on the initial stamp. Replay follows the chain: the final
	// stamp is the journal's owner, so a transferred journal resumes
	// cleanly under its successor while every unplanned mismatch stays
	// ErrWrongOwner.
	From string `json:"from,omitempty"`
}

// Record types.
const (
	RecordAdmit    = "admit"
	RecordComplete = "complete"
	RecordDegrade  = "degrade"
	// RecordOwner stamps the journal with its owner label (the ID field
	// carries the label). A sharded deployment writes one per journal so
	// that resuming shard 2's journal as shard 0 — a misconfigured state
	// directory, a copy-paste in an ops runbook — fails loudly instead of
	// silently serving another shard's completions.
	RecordOwner = "owner"
)

// ErrWrongOwner reports a resume of a journal (or checkpoint) stamped
// with a different owner label than the opener's.
var ErrWrongOwner = errors.New("journal: owned by another writer")

// State is durable corpus-processing state: the union of the checkpoint
// and the journal's completion records, plus the append handle the
// current run writes through. Safe for concurrent use.
type State struct {
	mu        sync.Mutex
	w         *Writer
	path      string
	ckptPath  string
	opts      Options
	seq       int64
	completed map[string]Entry
	// admitted counts admit records replayed for documents that never
	// completed — the in-flight casualties of the previous crash.
	admitted int
	replayed int // completion records recovered (checkpoint + journal)
	// CompactEvery triggers a checkpoint compaction after that many new
	// completions; 0 compacts only on explicit Compact calls.
	compactEvery int
	sinceCompact int
	owner        string
	m            *obs.Registry
}

// StateOptions extends Options with State-level tuning.
type StateOptions struct {
	Options
	// Resume loads the existing checkpoint and journal instead of
	// truncating them. Without it, OpenState starts a fresh journal,
	// removing any previous state at the path.
	Resume bool
	// CompactEvery checkpoints after that many new completions;
	// 0 disables automatic compaction.
	CompactEvery int
	// Owner, when non-empty, stamps fresh journals and checkpoints with
	// this label and refuses (ErrWrongOwner) to resume state stamped with
	// a different one — the guard that keeps one shard from replaying
	// another shard's journal. Empty skips both stamping and checking,
	// and resuming an unstamped journal with an Owner set is legal (the
	// stamp is added going forward).
	Owner string
}

// OpenState opens (or resumes) the durable state rooted at path. The
// checkpoint lives beside the journal at path+".ckpt". Resuming replays
// checkpoint then journal — later records win, torn tails are truncated
// off the journal file so subsequent appends stay reachable — and then
// reopens the journal for appending.
func OpenState(path string, so StateOptions) (*State, error) {
	s := &State{
		path:         path,
		ckptPath:     path + ".ckpt",
		opts:         so.Options.withDefaults(),
		completed:    map[string]Entry{},
		compactEvery: so.CompactEvery,
		owner:        so.Owner,
		m:            so.Options.Metrics,
	}
	if !so.Resume {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("journal: reset %s: %w", path, err)
		}
		if err := os.Remove(s.ckptPath); err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("journal: reset %s: %w", s.ckptPath, err)
		}
	} else if err := s.recover(); err != nil {
		return nil, err
	}
	w, err := OpenWriter(path, s.opts)
	if err != nil {
		return nil, err
	}
	s.w = w
	if s.owner != "" {
		// Stamp every fresh journal generation; resumed journals already
		// carry the stamp (validated in recover) or predate owners.
		if err := s.append(Record{T: RecordOwner, ID: s.owner}); err != nil {
			s.w.Close() //nolint:errcheck
			return nil, err
		}
	}
	s.m.Gauge("journal.completed").Set(float64(len(s.completed)))
	return s, nil
}

// recover loads the checkpoint, replays the journal over it, and
// truncates the journal's torn tail (if any) so the writer can append.
// The ownership check runs after the full replay so a planned transfer
// record late in the journal can legitimately re-stamp state whose
// checkpoint still carries the previous owner; nothing on disk is
// mutated before the check passes.
func (s *State) recover() error {
	completed, admits, stamped, seq, rst, err := loadEntries(s.path, s.ckptPath, s.opts.MaxRecord, s.m)
	if err != nil {
		return err
	}
	if s.owner != "" && stamped != "" && stamped != s.owner {
		return fmt.Errorf("%w: state %s is owned by %q, opened as %q", ErrWrongOwner, s.path, stamped, s.owner)
	}
	s.seq = seq
	s.completed = completed
	for id := range admits {
		if _, done := s.completed[id]; !done {
			s.admitted++
		}
	}
	s.replayed = len(s.completed)
	if rst.TruncatedBytes > 0 {
		// Drop the torn tail on disk, or frames appended by this run
		// would sit unreachable behind it.
		if terr := os.Truncate(s.path, rst.Bytes); terr != nil {
			return fmt.Errorf("journal: truncate torn tail of %s: %w", s.path, terr)
		}
	}
	return nil
}

// loadEntries is the shared read path of recover and Load: checkpoint
// first, journal replayed over it (later records win), the ownership
// chain followed to its final stamp. It reads only — torn tails are
// tolerated, not truncated — so read-only consumers (Load, adoption)
// can use it against a journal they do not own the write handle for.
func loadEntries(path, ckptPath string, maxRecord int, m *obs.Registry) (completed map[string]Entry, admits map[string]bool, stamped string, seq int64, rst ReplayStats, err error) {
	ck, err := ReadCheckpoint(ckptPath)
	if err != nil {
		return nil, nil, "", 0, ReplayStats{}, err
	}
	seq = ck.Seq
	stamped = ck.Owner
	completed = ck.Entries
	admits = map[string]bool{}
	rst, err = ReplayFile(path, maxRecord, m, func(payload []byte) error {
		var rec Record
		if jerr := json.Unmarshal(payload, &rec); jerr != nil {
			// A verified frame with an unparseable payload was written by
			// something that is not this schema; skip rather than abort —
			// the frame is durable but meaningless to us.
			m.Counter("journal.replay.unknown").Inc()
			return nil
		}
		switch rec.T {
		case RecordAdmit:
			admits[rec.ID] = true
		case RecordComplete:
			if Digest([]byte(rec.Line)) == rec.Digest {
				completed[rec.ID] = Entry{Digest: rec.Digest, Line: rec.Line}
			} else {
				m.Counter("journal.replay.bad_digest").Inc()
			}
		case RecordDegrade:
			// Informational; nothing to restore.
		case RecordOwner:
			if rec.ID != "" {
				stamped = rec.ID // the chain's latest stamp wins
			}
		default:
			m.Counter("journal.replay.unknown").Inc()
		}
		return nil
	})
	if err != nil {
		return nil, nil, "", 0, ReplayStats{}, err
	}
	return completed, admits, stamped, seq, rst, nil
}

// Load reads the durable state at path without opening a writer or
// mutating anything on disk (torn tails are tolerated, not truncated; a
// missing file is an empty state). When owner is non-empty the ownership
// chain must end at owner — the same rule OpenState enforces — and an
// unstamped journal is legal to read. Adoption after a planned handoff
// uses Load: the successor reads the retired journal it now owns,
// merges the entries into its own state, and only then removes the
// source.
func Load(path string, maxRecord int, owner string) (map[string]Entry, error) {
	if maxRecord <= 0 {
		maxRecord = (Options{}).withDefaults().MaxRecord
	}
	completed, _, stamped, _, _, err := loadEntries(path, path+".ckpt", maxRecord, nil)
	if err != nil {
		return nil, err
	}
	if owner != "" && stamped != "" && stamped != owner {
		return nil, fmt.Errorf("%w: state %s is owned by %q, loaded as %q", ErrWrongOwner, path, stamped, owner)
	}
	return completed, nil
}

func (s *State) append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: marshal record: %w", err)
	}
	return s.w.Append(payload)
}

// Admit journals that the document is about to run. Idempotent in
// effect: duplicate admits are harmless on replay.
func (s *State) Admit(id string, index int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.append(Record{T: RecordAdmit, ID: id, Index: index})
}

// Degrade journals one pipeline fallback for the document.
func (s *State) Degrade(id, phase, fallback string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.append(Record{T: RecordDegrade, ID: id, Phase: phase, Fallback: fallback})
}

// Complete journals the document's final result line (no trailing
// newline) and records it for Completed lookups. The write-ahead
// contract: call Complete before emitting the line downstream, so a
// crash between the two re-emits from the journal instead of losing the
// document. Triggers a checkpoint compaction every CompactEvery
// completions.
func (s *State) Complete(id string, line []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := Entry{Digest: Digest(line), Line: string(line)}
	if err := s.append(Record{T: RecordComplete, ID: id, Digest: e.Digest, Line: e.Line}); err != nil {
		return err
	}
	s.completed[id] = e
	s.m.Gauge("journal.completed").Set(float64(len(s.completed)))
	s.sinceCompact++
	if s.compactEvery > 0 && s.sinceCompact >= s.compactEvery {
		return s.compactLocked()
	}
	return nil
}

// Completed returns the cached result line for a document this state has
// already seen complete (in this run or a replayed one).
func (s *State) Completed(id string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.completed[id]
	if !ok {
		return nil, false
	}
	return []byte(e.Line), true
}

// CompletedIDs returns the sorted IDs of every completed document.
func (s *State) CompletedIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.completed))
	for id := range s.completed {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Replayed returns how many completions were recovered at open, and how
// many admitted-but-incomplete documents the previous run left behind.
func (s *State) Replayed() (completions, inflight int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replayed, s.admitted
}

// Compact checkpoints the completed set and truncates the journal: an
// atomic snapshot replaces the record tail. Crash windows are all safe —
// before the rename the old checkpoint plus the full journal survive;
// between rename and truncate the records are duplicated across
// checkpoint and journal (replay is idempotent, keyed by ID); after the
// truncate the new checkpoint alone carries the state.
func (s *State) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

func (s *State) compactLocked() error {
	// The journal must be durable before the checkpoint claims its
	// records; with SyncNever/SyncInterval there may be unsynced frames.
	if err := s.w.Sync(); err != nil {
		return err
	}
	s.seq++
	entries := make(map[string]Entry, len(s.completed))
	for id, e := range s.completed {
		entries[id] = e
	}
	if err := WriteCheckpoint(s.ckptPath, &Checkpoint{Seq: s.seq, Owner: s.owner, Entries: entries}); err != nil {
		return err
	}
	// Start a fresh journal generation: close, truncate, reopen append.
	if err := s.w.Close(); err != nil {
		return err
	}
	if err := os.Truncate(s.path, 0); err != nil {
		return fmt.Errorf("journal: truncate after compaction: %w", err)
	}
	w, err := OpenWriter(s.path, s.opts)
	if err != nil {
		return err
	}
	s.w = w
	s.sinceCompact = 0
	s.m.Counter("journal.compactions").Inc()
	s.m.Gauge("journal.checkpoint.entries").Set(float64(len(entries)))
	return nil
}

// TransferTo hands the journal to a new owner: an explicit
// ownership-transfer record (From = the current owner) followed by a
// checkpoint compaction, so by return the new stamp is durable in the
// checkpoint and the journal chain alike. Planned transfers are the one
// legal way ownership changes — an opener whose label matches the
// chain's final stamp resumes cleanly; every other mismatch stays
// ErrWrongOwner.
func (s *State) TransferTo(to string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if to == "" {
		return errors.New("journal: transfer to empty owner")
	}
	if to == s.owner {
		return nil
	}
	if err := s.append(Record{T: RecordOwner, ID: to, From: s.owner}); err != nil {
		return err
	}
	s.owner = to
	s.m.Counter("journal.transfers").Inc()
	return s.compactLocked()
}

// Transfer re-stamps the quiesced journal at path from owner from to
// owner to: the front-end half of a planned shard handoff, run after the
// departing worker has exited so no writer races the transfer. Opening
// as from validates the current claim (an unstamped journal is adopted);
// TransferTo leaves to durable in the checkpoint before Transfer
// returns. The successor then resumes or Loads the journal under its own
// label.
func Transfer(path string, opts Options, from, to string) error {
	s, err := OpenState(path, StateOptions{Options: opts, Resume: true, Owner: from})
	if err != nil {
		return err
	}
	if err := s.TransferTo(to); err != nil {
		s.Close() //nolint:errcheck
		return err
	}
	return s.Close()
}

// Adopt merges a retired journal's completions into this state: the
// successor's half of a planned shard handoff. The source must already
// have been transferred to this state's owner (see Transfer); its
// entries are journaled here idempotently — IDs this state already
// completed are skipped — then compacted for durability, and only after
// that are the source files removed. Every crash window is safe: a
// re-Adopt re-merges idempotently, and a source already removed adopts
// as empty.
func (s *State) Adopt(path string) (merged int, err error) {
	s.mu.Lock()
	owner := s.owner
	maxRecord := s.opts.MaxRecord
	s.mu.Unlock()
	entries, err := Load(path, maxRecord, owner)
	if err != nil {
		return 0, err
	}
	for id, e := range entries {
		if _, ok := s.Completed(id); ok {
			continue
		}
		if err := s.Complete(id, []byte(e.Line)); err != nil {
			return merged, err
		}
		merged++
	}
	if err := s.Compact(); err != nil {
		return merged, err
	}
	os.Remove(path)           //nolint:errcheck // best-effort: a leftover source re-adopts as a no-op
	os.Remove(path + ".ckpt") //nolint:errcheck
	s.m.Counter("journal.adoptions").Inc()
	return merged, nil
}

// Sync forces pending journal frames to stable storage.
func (s *State) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Sync()
}

// Close syncs and closes the journal handle. The checkpoint is left as
// last compacted; a final Compact before Close minimises replay work for
// the next resume.
func (s *State) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Close()
}
