package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalReplay feeds arbitrary bytes to the replay path and pins
// its two safety properties:
//
//  1. Replay never panics, whatever the bytes.
//  2. Replay never fabricates records: re-framing the delivered payloads
//     must reproduce exactly the valid prefix it reports — every record
//     handed back was a complete, CRC-verified frame in the input.
//
// Seeded with the committed corruption fixtures plus synthetic tears.
func FuzzJournalReplay(f *testing.F) {
	for _, name := range []string{"clean.wal", "torn_tail.wal", "garbage_tail.wal", "bad_crc_mid.wal"} {
		if data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "journal", name)); err == nil {
			f.Add(data)
		}
	}
	frame := Frame([]byte(`{"t":"complete","id":"x","line":"{}"}`))
	f.Add(frame)
	f.Add(frame[:len(frame)-3])
	f.Add(append(append([]byte(nil), frame...), frame[:7]...))
	f.Add([]byte("J1 0 00000000 \n"))
	f.Add([]byte("J1 18446744073709551616 00000000 overflow\n"))
	f.Add(bytes.Repeat([]byte("J1 "), 1000))

	f.Fuzz(func(t *testing.T, data []byte) {
		var replayed bytes.Buffer
		st, err := Replay(bytes.NewReader(data), 1<<16, func(p []byte) error {
			replayed.Write(Frame(p))
			return nil
		})
		if err != nil {
			t.Fatalf("replay of arbitrary bytes errored: %v", err)
		}
		if int64(replayed.Len()) != st.Bytes {
			t.Fatalf("re-framed %d bytes, stats claim %d", replayed.Len(), st.Bytes)
		}
		if st.Bytes > int64(len(data)) {
			t.Fatalf("valid prefix %d longer than input %d", st.Bytes, len(data))
		}
		if !bytes.Equal(replayed.Bytes(), data[:st.Bytes]) {
			t.Fatal("replay fabricated records: re-framed payloads differ from the input prefix")
		}
	})
}
