package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Entry is one completed document in a checkpoint: the digest of its
// result line plus the line itself, so a resumed run can both skip the
// document and re-emit its output byte for byte.
type Entry struct {
	// Digest is the CRC32 (IEEE, hex8) of Line.
	Digest string `json:"digest"`
	// Line is the cached result line, without its trailing newline.
	Line string `json:"line"`
}

// Digest computes the checkpoint digest of a result line.
func Digest(line []byte) string {
	return fmt.Sprintf("%08x", crc32.ChecksumIEEE(line))
}

// Checkpoint is the compacted snapshot of corpus-processing state: every
// document completed so far, keyed by document ID. Seq increments per
// compaction so stale temp files are recognisable in the journal's
// directory listing.
type Checkpoint struct {
	Seq int64 `json:"seq"`
	// Owner is the optional owner label (see StateOptions.Owner);
	// checkpoints written before owners existed simply lack it.
	Owner   string           `json:"owner,omitempty"`
	Entries map[string]Entry `json:"entries"`
}

// WriteCheckpoint atomically replaces the checkpoint at path: the
// snapshot is written to a temp file in the same directory, fsynced,
// renamed over path, and the directory entry fsynced. A crash at any
// instant leaves either the previous checkpoint or the new one — never
// a torn hybrid. (True O_TMPFILE+linkat is Linux-only; same-directory
// CreateTemp+rename gives the same visible atomicity portably.)
func WriteCheckpoint(path string, ck *Checkpoint) error {
	data, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("journal: marshal checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("journal: checkpoint temp: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: checkpoint write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: checkpoint fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("journal: checkpoint close: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("journal: checkpoint rename: %w", err)
	}
	if err := syncDir(path); err != nil {
		return fmt.Errorf("journal: checkpoint dir fsync: %w", err)
	}
	return nil
}

// ReadCheckpoint loads the checkpoint at path. A missing file is an
// empty checkpoint. Entries whose digest does not match their line are
// dropped (the document will simply be re-processed); a checkpoint that
// does not parse at all is an error, because rename atomicity means it
// cannot be a crash artifact — something else damaged it.
func ReadCheckpoint(path string) (*Checkpoint, error) {
	ck := &Checkpoint{Entries: map[string]Entry{}}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return ck, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: read checkpoint: %w", err)
	}
	if err := json.Unmarshal(data, ck); err != nil {
		return nil, fmt.Errorf("journal: parse checkpoint %s: %w", path, err)
	}
	if ck.Entries == nil {
		ck.Entries = map[string]Entry{}
	}
	for id, e := range ck.Entries {
		if Digest([]byte(e.Line)) != e.Digest {
			delete(ck.Entries, id)
		}
	}
	return ck, nil
}
