// Package journal is the durability substrate of the VS2 serving layer:
// a CRC32-framed, length-prefixed, append-only JSONL write-ahead journal
// with a configurable fsync policy, torn-tail-tolerant replay, and
// atomic checkpoint compaction (temp-file + rename snapshots).
//
// The framing is line-oriented so a journal stays greppable and
// JSONL-shaped while remaining verifiable byte for byte:
//
//	J1 <len> <crc32-ieee-hex8> <payload>\n
//
// where <len> is the decimal byte length of <payload> and the CRC covers
// exactly the payload bytes. A frame whose header does not parse, whose
// length disagrees with the line, or whose CRC does not match marks the
// torn tail: replay stops there, reports how many bytes it dropped, and
// never delivers a fabricated record. Appending to a journal with a torn
// tail first truncates the tail so the new frames stay reachable.
//
// Durability is layered:
//
//   - Writer frames and appends records under one of three fsync
//     policies (always / every-N / never).
//   - Checkpoint atomically snapshots the set of completed documents
//     (IDs, result digests and cached result lines) via a same-directory
//     temp file renamed into place.
//   - State composes the two into corpus-processing state with replay,
//     idempotent completion lookup, and checkpoint compaction that
//     truncates the journal once its records are safely in the
//     checkpoint.
package journal

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"vs2/internal/obs"
)

// Frame layout constants.
const (
	// magic opens every frame; bumping it versions the format.
	magic = "J1"
	// DefaultMaxRecord bounds a single payload (and a single replayed
	// line) at 16 MiB unless overridden.
	DefaultMaxRecord = 16 << 20
	// DefaultSyncEvery is the SyncInterval cadence when unset.
	DefaultSyncEvery = 64
)

// Sync selects when the journal reaches stable storage.
type Sync int

const (
	// SyncAlways fsyncs after every append — the write-ahead contract a
	// kill -9 cannot break. The zero value, because a journal that lies
	// about durability is worse than none.
	SyncAlways Sync = iota
	// SyncInterval fsyncs every SyncEvery appends and on Close. A crash
	// loses at most the unsynced suffix; replay drops it as a torn tail
	// and the affected documents are simply re-processed.
	SyncInterval
	// SyncNever leaves flushing to the OS (Close still syncs).
	SyncNever
)

func (s Sync) String() string {
	switch s {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return "Sync(?)"
	}
}

// ParseSync maps the CLI spellings onto a policy.
func ParseSync(s string) (Sync, error) {
	switch s {
	case "always", "":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("journal: unknown sync policy %q (want always | interval | never)", s)
	}
}

// File is the handle a Writer appends to. *os.File satisfies it; the
// fault harness substitutes one that tears writes, fails fsync, or
// freezes the on-disk image to simulate kill -9.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// Options tunes a Writer (and, through it, State).
type Options struct {
	// Sync is the fsync policy; the zero value is SyncAlways.
	Sync Sync
	// SyncEvery is the SyncInterval cadence; 0 selects DefaultSyncEvery.
	SyncEvery int
	// MaxRecord bounds one payload; 0 selects DefaultMaxRecord.
	MaxRecord int
	// Metrics, when non-nil, receives journal.appended / journal.fsyncs /
	// journal.append.errors counters and the journal.bytes gauge.
	Metrics *obs.Registry
	// OpenFile overrides how the append handle is opened — the fault
	// harness's hook. nil opens the path O_CREATE|O_APPEND|O_WRONLY.
	OpenFile func(path string) (File, error)
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = DefaultSyncEvery
	}
	if o.MaxRecord <= 0 {
		o.MaxRecord = DefaultMaxRecord
	}
	return o
}

// ErrRecordTooLarge rejects a payload over Options.MaxRecord.
var ErrRecordTooLarge = errors.New("journal: record exceeds max size")

// ErrWriterFailed is the sticky state after a failed append: a partial
// frame may be on disk, so further appends would be unreachable garbage
// behind a torn tail. The journal must be reopened (replay truncates the
// tear) before appending again.
var ErrWriterFailed = errors.New("journal: writer failed; reopen to recover")

// Frame renders one payload as its on-disk frame, newline included.
// Replay(Frame(p)) yields exactly p — the fuzz harness pins this
// round-trip and its inverse (no fabricated records).
func Frame(payload []byte) []byte {
	var b bytes.Buffer
	b.Grow(len(payload) + 24)
	fmt.Fprintf(&b, "%s %d %08x ", magic, len(payload), crc32.ChecksumIEEE(payload))
	b.Write(payload)
	b.WriteByte('\n')
	return b.Bytes()
}

// Writer appends CRC-framed records to a journal file.
type Writer struct {
	mu      sync.Mutex
	f       File
	opts    Options
	path    string
	offset  int64 // bytes appended through this handle
	pending int   // appends since the last fsync
	failed  error // sticky append failure
}

// OpenWriter opens (creating if needed) the journal at path for
// appending. It does not inspect existing contents — callers resuming a
// journal replay it first (which truncates any torn tail) and then open
// the writer; State does exactly that.
func OpenWriter(path string, opts Options) (*Writer, error) {
	opts = opts.withDefaults()
	open := opts.OpenFile
	if open == nil {
		open = func(p string) (File, error) {
			return os.OpenFile(p, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		}
	}
	f, err := open(path)
	if err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	return &Writer{f: f, opts: opts, path: path}, nil
}

// Append frames the payload and writes it under the fsync policy. The
// payload must be a single line (no '\n'); JSON-encoded records are. A
// failed or short write leaves the writer in the sticky ErrWriterFailed
// state: the on-disk tail is torn and only a reopen-with-replay may
// append after it.
func (w *Writer) Append(payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return w.failed
	}
	if len(payload) > w.opts.MaxRecord {
		return fmt.Errorf("%w: %d > %d bytes", ErrRecordTooLarge, len(payload), w.opts.MaxRecord)
	}
	if i := bytes.IndexByte(payload, '\n'); i >= 0 {
		return fmt.Errorf("journal: payload contains newline at byte %d", i)
	}
	frame := Frame(payload)
	n, err := w.f.Write(frame)
	w.offset += int64(n)
	m := w.opts.Metrics
	if err != nil || n != len(frame) {
		if err == nil {
			err = io.ErrShortWrite
		}
		w.failed = fmt.Errorf("%w: append at offset %d: %w", ErrWriterFailed, w.offset, err)
		m.Counter("journal.append.errors").Inc()
		return w.failed
	}
	m.Counter("journal.appended").Inc()
	m.Gauge("journal.bytes").Set(float64(w.offset))
	w.pending++
	switch w.opts.Sync {
	case SyncAlways:
		return w.syncLocked()
	case SyncInterval:
		if w.pending >= w.opts.SyncEvery {
			return w.syncLocked()
		}
	}
	return nil
}

// Sync forces the appended frames to stable storage.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return w.failed
	}
	return w.syncLocked()
}

func (w *Writer) syncLocked() error {
	if err := w.f.Sync(); err != nil {
		// The data may or may not be durable; appends can continue (the
		// frames themselves are intact) but the caller is told.
		w.opts.Metrics.Counter("journal.fsync.errors").Inc()
		return fmt.Errorf("journal: fsync %s: %w", w.path, err)
	}
	w.pending = 0
	w.opts.Metrics.Counter("journal.fsyncs").Inc()
	return nil
}

// Offset returns the bytes appended through this writer.
func (w *Writer) Offset() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.offset
}

// Close syncs (unless already failed) and closes the handle.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	var serr error
	if w.failed == nil && w.pending > 0 {
		serr = w.syncLocked()
	}
	cerr := w.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// ReplayStats describes what a replay recovered and what it dropped.
type ReplayStats struct {
	// Records is the count of valid frames delivered.
	Records int
	// Bytes is the length of the valid prefix — the offset a resuming
	// writer truncates the journal to before appending.
	Bytes int64
	// TruncatedBytes is the torn tail: trailing bytes after the valid
	// prefix that did not form a verifiable frame.
	TruncatedBytes int64
	// TornReason says why the tail was dropped; empty when the journal
	// ended cleanly on a frame boundary.
	TornReason string
}

// Replay scans the journal, delivering each verified payload to fn in
// append order. It stops at the first frame that fails verification —
// torn tail, garbage, CRC mismatch, oversized length — and reports the
// dropped suffix in the stats rather than erroring: a crash can tear at
// any byte and recovery must shrug. A non-nil error comes only from the
// reader or from fn (which aborts the replay).
//
// The invariant the fuzz harness pins: concatenating Frame(p) over the
// delivered payloads reproduces exactly the first Bytes bytes of the
// input. Replay never invents a record that was not durably framed.
func Replay(r io.Reader, maxRecord int, fn func(payload []byte) error) (ReplayStats, error) {
	if maxRecord <= 0 {
		maxRecord = DefaultMaxRecord
	}
	var st ReplayStats
	br := bufio.NewReaderSize(r, 64<<10)
	// A full frame line: magic + space + len digits + space + 8 hex + space
	// + payload + newline. Bound the line read just past that.
	maxLine := maxRecord + 64
	for {
		line, err := readLine(br, maxLine)
		if len(line) == 0 && err == io.EOF {
			return st, nil
		}
		if err != nil && err != io.EOF && !errors.Is(err, errLineTooLong) {
			return st, fmt.Errorf("journal: replay read: %w", err)
		}
		payload, reason := verifyFrame(line, err == io.EOF || errors.Is(err, errLineTooLong), maxRecord)
		if reason != "" {
			st.TornReason = reason
			st.TruncatedBytes = int64(len(line)) + remaining(br)
			return st, nil
		}
		if ferr := fn(payload); ferr != nil {
			return st, ferr
		}
		st.Records++
		st.Bytes += int64(len(line))
		if err == io.EOF {
			return st, nil
		}
	}
}

var errLineTooLong = errors.New("line exceeds frame bound")

// readLine reads one '\n'-terminated line (newline included), erroring
// with errLineTooLong once the line outruns max — at which point the
// journal is torn or hostile and the replay stops.
func readLine(br *bufio.Reader, max int) ([]byte, error) {
	var line []byte
	for {
		chunk, err := br.ReadSlice('\n')
		line = append(line, chunk...)
		switch {
		case err == nil:
			return line, nil
		case err == bufio.ErrBufferFull:
			if len(line) > max {
				return line, errLineTooLong
			}
		default:
			return line, err
		}
	}
}

// remaining drains the reader to count the torn tail's full extent.
func remaining(br *bufio.Reader) int64 {
	n, _ := io.Copy(io.Discard, br)
	return n
}

// verifyFrame checks one line against the frame format. incomplete marks
// a line with no terminating newline (EOF tear) — such a line can never
// verify, because the newline is part of the frame.
func verifyFrame(line []byte, incomplete bool, maxRecord int) (payload []byte, tornReason string) {
	if incomplete {
		return nil, "torn frame: no trailing newline"
	}
	body := line[:len(line)-1] // strip '\n'
	rest, ok := bytes.CutPrefix(body, []byte(magic+" "))
	if !ok {
		return nil, "garbage frame: bad magic"
	}
	sp := bytes.IndexByte(rest, ' ')
	if sp <= 0 {
		return nil, "garbage frame: no length field"
	}
	lenField := string(rest[:sp])
	n, err := strconv.Atoi(lenField)
	// The writer only ever emits canonical headers (%d, lowercase %08x);
	// anything else — leading zeros, signs, uppercase hex — is damage,
	// and accepting it would let replay "recover" bytes never written.
	if err != nil || n < 0 || n > maxRecord || strconv.Itoa(n) != lenField {
		return nil, "garbage frame: bad length"
	}
	rest = rest[sp+1:]
	if len(rest) < 9 || rest[8] != ' ' {
		return nil, "garbage frame: no checksum field"
	}
	for _, c := range rest[:8] {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return nil, "garbage frame: bad checksum encoding"
		}
	}
	want, err := strconv.ParseUint(string(rest[:8]), 16, 32)
	if err != nil {
		return nil, "garbage frame: bad checksum encoding"
	}
	payload = rest[9:]
	if len(payload) != n {
		return nil, fmt.Sprintf("torn frame: length %d, payload %d", n, len(payload))
	}
	if crc32.ChecksumIEEE(payload) != uint32(want) {
		return nil, "torn frame: checksum mismatch"
	}
	return payload, ""
}

// ReplayFile replays the journal at path. A missing file is an empty
// journal: zero stats, nil error — resuming before the first run is
// legal. When metrics is non-nil the replay outcome is exported as
// journal.replay.records and journal.replay.truncated_bytes.
func ReplayFile(path string, maxRecord int, m *obs.Registry, fn func(payload []byte) error) (ReplayStats, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return ReplayStats{}, nil
	}
	if err != nil {
		return ReplayStats{}, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	st, rerr := Replay(f, maxRecord, fn)
	m.Counter("journal.replay.records").Add(int64(st.Records))
	m.Counter("journal.replay.truncated_bytes").Add(st.TruncatedBytes)
	return st, rerr
}

// syncDir best-effort fsyncs the directory containing path, making a
// just-created or just-renamed entry durable. Errors are returned so
// callers on filesystems that refuse directory fsync can decide; the
// checkpoint writer treats them as fatal, journal creation does not.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
