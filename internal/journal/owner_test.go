package journal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestOwnerResumeMatch: a journal stamped by one owner resumes cleanly
// under the same owner, completions intact.
func TestOwnerResumeMatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "owned.wal")
	s, err := OpenState(path, StateOptions{Owner: "shard-2"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Complete("doc-1", []byte(`{"id":"doc-1"}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenState(path, StateOptions{Resume: true, Owner: "shard-2"})
	if err != nil {
		t.Fatalf("same-owner resume: %v", err)
	}
	defer r.Close()
	if line, ok := r.Completed("doc-1"); !ok || string(line) != `{"id":"doc-1"}` {
		t.Fatalf("completion lost across owned resume: %q, %v", line, ok)
	}
}

// TestOwnerResumeMismatchJournal: resuming another owner's journal fails
// with ErrWrongOwner — shard 0 must never replay shard 2's results.
func TestOwnerResumeMismatchJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "owned.wal")
	s, err := OpenState(path, StateOptions{Owner: "shard-2"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Complete("doc-1", []byte(`{"id":"doc-1"}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.w.Close(); err != nil { // close WITHOUT compacting: stamp lives in the journal
		t.Fatal(err)
	}

	_, err = OpenState(path, StateOptions{Resume: true, Owner: "shard-0"})
	if !errors.Is(err, ErrWrongOwner) {
		t.Fatalf("cross-owner journal resume: err = %v, want ErrWrongOwner", err)
	}
}

// TestOwnerResumeMismatchCheckpoint: the owner stamp survives compaction
// into the checkpoint and still guards the resume.
func TestOwnerResumeMismatchCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "owned.wal")
	s, err := OpenState(path, StateOptions{Owner: "shard-2"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Complete("doc-1", []byte(`{"id":"doc-1"}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil { // state now lives in the checkpoint
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	_, err = OpenState(path, StateOptions{Resume: true, Owner: "shard-0"})
	if !errors.Is(err, ErrWrongOwner) {
		t.Fatalf("cross-owner checkpoint resume: err = %v, want ErrWrongOwner", err)
	}
}

// TestOwnerAdoptsUnstampedState: ownerless journals predate the stamp;
// resuming one with an Owner set is legal and adopts it.
func TestOwnerAdoptsUnstampedState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.wal")
	s, err := OpenState(path, StateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Complete("doc-1", []byte(`{"id":"doc-1"}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenState(path, StateOptions{Resume: true, Owner: "shard-1"})
	if err != nil {
		t.Fatalf("adopting unstamped state: %v", err)
	}
	if _, ok := r.Completed("doc-1"); !ok {
		t.Fatal("completion lost adopting unstamped state")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// The adoption stamped it: a different owner is now rejected.
	if _, err := OpenState(path, StateOptions{Resume: true, Owner: "shard-9"}); !errors.Is(err, ErrWrongOwner) {
		t.Fatalf("resume after adoption: err = %v, want ErrWrongOwner", err)
	}
}

// TestOwnerTransferChain: a planned transfer re-stamps the journal so
// the successor resumes cleanly and the previous owner is now rejected —
// ErrWrongOwner stays fatal for unplanned mismatches only.
func TestOwnerTransferChain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "owned.wal")
	s, err := OpenState(path, StateOptions{Owner: "shard-4"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Complete("doc-1", []byte(`{"id":"doc-1"}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	if err := Transfer(path, Options{}, "shard-4", "shard-1"); err != nil {
		t.Fatalf("transfer: %v", err)
	}
	// A transfer under the wrong from-label is an unplanned mismatch.
	if err := Transfer(path, Options{}, "shard-4", "shard-9"); !errors.Is(err, ErrWrongOwner) {
		t.Fatalf("transfer with stale from-owner: err = %v, want ErrWrongOwner", err)
	}

	if _, err := OpenState(path, StateOptions{Resume: true, Owner: "shard-4"}); !errors.Is(err, ErrWrongOwner) {
		t.Fatalf("previous owner after transfer: err = %v, want ErrWrongOwner", err)
	}
	r, err := OpenState(path, StateOptions{Resume: true, Owner: "shard-1"})
	if err != nil {
		t.Fatalf("successor resume after transfer: %v", err)
	}
	defer r.Close()
	if line, ok := r.Completed("doc-1"); !ok || string(line) != `{"id":"doc-1"}` {
		t.Fatalf("completion lost across transfer: %q, %v", line, ok)
	}
}

// TestOwnerTransferSurvivesUncompactedStamp: the transfer record guards
// even when the chain lives only in the journal tail (checkpoint still
// carries the old owner) — the ownership check must run after replay,
// not against the checkpoint alone.
func TestOwnerTransferSurvivesUncompactedStamp(t *testing.T) {
	path := filepath.Join(t.TempDir(), "owned.wal")
	s, err := OpenState(path, StateOptions{Owner: "shard-2"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Complete("doc-1", []byte(`{"id":"doc-1"}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil { // checkpoint now stamped shard-2
		t.Fatal(err)
	}
	// Append a transfer record without compacting: the new stamp exists
	// only in the journal, behind a checkpoint claiming shard-2.
	if err := s.append(Record{T: RecordOwner, ID: "shard-0", From: "shard-2"}); err != nil {
		t.Fatal(err)
	}
	if err := s.w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenState(path, StateOptions{Resume: true, Owner: "shard-0"})
	if err != nil {
		t.Fatalf("resume under journal-tail transfer: %v", err)
	}
	defer r.Close()
	if _, ok := r.Completed("doc-1"); !ok {
		t.Fatal("completion lost resuming under journal-tail transfer")
	}
}

// TestAdoptMergesAndRemoves: the successor merges a transferred journal
// into its own state, the source files disappear, and re-adoption is an
// idempotent no-op — the crash-safe half of the handoff.
func TestAdoptMergesAndRemoves(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "shard-2.wal")
	dst := filepath.Join(dir, "shard-0.wal")
	s, err := OpenState(src, StateOptions{Owner: "shard-2"})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"doc-a", "doc-b", "doc-shared"} {
		if err := s.Complete(id, []byte(`{"id":"`+id+`"}`)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := Transfer(src, Options{}, "shard-2", "shard-0"); err != nil {
		t.Fatal(err)
	}

	d, err := OpenState(dst, StateOptions{Owner: "shard-0"})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Complete("doc-shared", []byte(`{"id":"doc-shared"}`)); err != nil {
		t.Fatal(err)
	}
	merged, err := d.Adopt(src)
	if err != nil {
		t.Fatalf("adopt: %v", err)
	}
	if merged != 2 {
		t.Fatalf("adopt merged %d entries, want 2 (doc-shared already completed)", merged)
	}
	for _, id := range []string{"doc-a", "doc-b", "doc-shared"} {
		if _, ok := d.Completed(id); !ok {
			t.Fatalf("entry %s missing after adoption", id)
		}
	}
	if _, err := os.Stat(src); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("source journal still present after adoption: %v", err)
	}
	if _, err := os.Stat(src + ".ckpt"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("source checkpoint still present after adoption: %v", err)
	}
	if again, err := d.Adopt(src); err != nil || again != 0 {
		t.Fatalf("re-adopt of removed source: merged=%d err=%v, want 0,nil", again, err)
	}
}

// TestAdoptRefusesForeignJournal: adopting a journal that was never
// transferred is an unplanned mismatch — the source survives untouched.
func TestAdoptRefusesForeignJournal(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "shard-2.wal")
	s, err := OpenState(src, StateOptions{Owner: "shard-2"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Complete("doc-1", []byte(`{"id":"doc-1"}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	d, err := OpenState(filepath.Join(dir, "shard-0.wal"), StateOptions{Owner: "shard-0"})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.Adopt(src); !errors.Is(err, ErrWrongOwner) {
		t.Fatalf("adopt of untransferred journal: err = %v, want ErrWrongOwner", err)
	}
	if _, err := os.Stat(src); err != nil {
		t.Fatalf("refused adoption must leave the source intact: %v", err)
	}
}

// TestLoadReadOnly: Load reads a journal without truncating its torn
// tail or creating files for a missing path.
func TestLoadReadOnly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.wal")
	s, err := OpenState(path, StateOptions{Owner: "shard-3"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Complete("doc-1", []byte(`{"id":"doc-1"}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.w.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: append garbage that replay must stop at.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("J1 torn"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	entries, err := Load(path, 0, "shard-3")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if _, ok := entries["doc-1"]; !ok {
		t.Fatal("entry missing from Load")
	}
	if _, err := Load(path, 0, "shard-9"); !errors.Is(err, ErrWrongOwner) {
		t.Fatalf("foreign load: err = %v, want ErrWrongOwner", err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != before.Size() {
		t.Fatalf("Load mutated the journal: %d -> %d bytes", before.Size(), after.Size())
	}

	missing, err := Load(filepath.Join(dir, "absent.wal"), 0, "shard-0")
	if err != nil || len(missing) != 0 {
		t.Fatalf("missing-path load: %v, %d entries; want empty", err, len(missing))
	}
	if _, err := os.Stat(filepath.Join(dir, "absent.wal")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("Load created a file for a missing path")
	}
}

// TestOwnerlessOpenIgnoresStamp: opening with no Owner never checks —
// inspection tooling can read any journal.
func TestOwnerlessOpenIgnoresStamp(t *testing.T) {
	path := filepath.Join(t.TempDir(), "owned.wal")
	s, err := OpenState(path, StateOptions{Owner: "shard-5"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Complete("doc-1", []byte(`{"id":"doc-1"}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenState(path, StateOptions{Resume: true})
	if err != nil {
		t.Fatalf("ownerless resume of stamped journal: %v", err)
	}
	defer r.Close()
	if _, ok := r.Completed("doc-1"); !ok {
		t.Fatal("completion lost in ownerless resume")
	}
}
