package journal

import (
	"errors"
	"path/filepath"
	"testing"
)

// TestOwnerResumeMatch: a journal stamped by one owner resumes cleanly
// under the same owner, completions intact.
func TestOwnerResumeMatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "owned.wal")
	s, err := OpenState(path, StateOptions{Owner: "shard-2"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Complete("doc-1", []byte(`{"id":"doc-1"}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenState(path, StateOptions{Resume: true, Owner: "shard-2"})
	if err != nil {
		t.Fatalf("same-owner resume: %v", err)
	}
	defer r.Close()
	if line, ok := r.Completed("doc-1"); !ok || string(line) != `{"id":"doc-1"}` {
		t.Fatalf("completion lost across owned resume: %q, %v", line, ok)
	}
}

// TestOwnerResumeMismatchJournal: resuming another owner's journal fails
// with ErrWrongOwner — shard 0 must never replay shard 2's results.
func TestOwnerResumeMismatchJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "owned.wal")
	s, err := OpenState(path, StateOptions{Owner: "shard-2"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Complete("doc-1", []byte(`{"id":"doc-1"}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.w.Close(); err != nil { // close WITHOUT compacting: stamp lives in the journal
		t.Fatal(err)
	}

	_, err = OpenState(path, StateOptions{Resume: true, Owner: "shard-0"})
	if !errors.Is(err, ErrWrongOwner) {
		t.Fatalf("cross-owner journal resume: err = %v, want ErrWrongOwner", err)
	}
}

// TestOwnerResumeMismatchCheckpoint: the owner stamp survives compaction
// into the checkpoint and still guards the resume.
func TestOwnerResumeMismatchCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "owned.wal")
	s, err := OpenState(path, StateOptions{Owner: "shard-2"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Complete("doc-1", []byte(`{"id":"doc-1"}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil { // state now lives in the checkpoint
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	_, err = OpenState(path, StateOptions{Resume: true, Owner: "shard-0"})
	if !errors.Is(err, ErrWrongOwner) {
		t.Fatalf("cross-owner checkpoint resume: err = %v, want ErrWrongOwner", err)
	}
}

// TestOwnerAdoptsUnstampedState: ownerless journals predate the stamp;
// resuming one with an Owner set is legal and adopts it.
func TestOwnerAdoptsUnstampedState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.wal")
	s, err := OpenState(path, StateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Complete("doc-1", []byte(`{"id":"doc-1"}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenState(path, StateOptions{Resume: true, Owner: "shard-1"})
	if err != nil {
		t.Fatalf("adopting unstamped state: %v", err)
	}
	if _, ok := r.Completed("doc-1"); !ok {
		t.Fatal("completion lost adopting unstamped state")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// The adoption stamped it: a different owner is now rejected.
	if _, err := OpenState(path, StateOptions{Resume: true, Owner: "shard-9"}); !errors.Is(err, ErrWrongOwner) {
		t.Fatalf("resume after adoption: err = %v, want ErrWrongOwner", err)
	}
}

// TestOwnerlessOpenIgnoresStamp: opening with no Owner never checks —
// inspection tooling can read any journal.
func TestOwnerlessOpenIgnoresStamp(t *testing.T) {
	path := filepath.Join(t.TempDir(), "owned.wal")
	s, err := OpenState(path, StateOptions{Owner: "shard-5"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Complete("doc-1", []byte(`{"id":"doc-1"}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenState(path, StateOptions{Resume: true})
	if err != nil {
		t.Fatalf("ownerless resume of stamped journal: %v", err)
	}
	defer r.Close()
	if _, ok := r.Completed("doc-1"); !ok {
		t.Fatal("completion lost in ownerless resume")
	}
}
