package eval

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Export helpers: the experiment runners return typed results; these
// writers emit them as CSV (for plotting pipelines) or JSON (for archival
// alongside EXPERIMENTS.md).

// WriteMethodCSV writes MethodResult rows (Tables 5/7) as CSV.
func WriteMethodCSV(w io.Writer, results []MethodResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"method", "dataset", "applicable", "tp", "fp", "fn", "precision", "recall", "f1"}); err != nil {
		return err
	}
	for _, r := range results {
		rec := []string{
			r.Method, r.Dataset, strconv.FormatBool(r.Applicable),
			strconv.Itoa(r.PR.TP), strconv.Itoa(r.PR.FP), strconv.Itoa(r.PR.FN),
			fmtF(r.PR.Precision()), fmtF(r.PR.Recall()), fmtF(r.PR.F1()),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteEntityCSV writes EntityResult rows (Tables 6/8) as CSV.
func WriteEntityCSV(w io.Writer, results []EntityResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"entity", "precision", "recall", "f1", "text_precision", "text_recall", "delta_f1"}); err != nil {
		return err
	}
	for _, r := range results {
		rec := []string{
			r.Entity,
			fmtF(r.VS2.Precision()), fmtF(r.VS2.Recall()), fmtF(r.VS2.F1()),
			fmtF(r.Text.Precision()), fmtF(r.Text.Recall()),
			fmt.Sprintf("%.4f", r.DeltaF1),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON writes any result value as indented JSON.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func fmtF(x float64) string { return strconv.FormatFloat(x, 'f', 4, 64) }
