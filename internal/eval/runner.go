package eval

import (
	"math/rand"

	"vs2/internal/baselines"
	"vs2/internal/datasets"
	"vs2/internal/doc"
	"vs2/internal/extract"
	"vs2/internal/holdout"
	"vs2/internal/ocr"
	"vs2/internal/pattern"
	"vs2/internal/segment"
	"vs2/internal/stats"
)

// Spec describes one experimental dataset: its generator, its IE task, and
// the Eq. 2 weight profile Section 5.3.2 assigns it.
type Spec struct {
	Name     string
	Generate func(n int, seed int64) []doc.Labeled
	Task     baselines.Task
}

// Specs returns the three datasets of Section 6.1 keyed "d1", "d2", "d3".
func Specs() map[string]Spec {
	taxSets := pattern.TaxPatterns(datasets.D1Fields())
	return map[string]Spec{
		"d1": {
			Name: "d1",
			Generate: func(n int, seed int64) []doc.Labeled {
				return datasets.GenerateD1(datasets.Options{N: n, Seed: seed})
			},
			Task: baselines.Task{Dataset: "d1", Sets: taxSets, Weights: extract.Balanced},
		},
		"d2": {
			Name: "d2",
			Generate: func(n int, seed int64) []doc.Labeled {
				return datasets.GenerateD2(datasets.Options{N: n, Seed: seed})
			},
			Task: baselines.Task{Dataset: "d2", Sets: pattern.EventPatterns(), Weights: extract.VisuallyOrnate},
		},
		"d3": {
			Name: "d3",
			Generate: func(n int, seed int64) []doc.Labeled {
				return datasets.GenerateD3(datasets.Options{N: n, Seed: seed})
			},
			Task: baselines.Task{Dataset: "d3", Sets: pattern.RealEstatePatterns(), Weights: extract.Balanced},
		},
	}
}

// Observed passes a clean labelled document through the OCR channel its
// capture mode dictates, keeping the clean ground truth (annotators worked
// on the page image; the pipeline sees the noisy transcription).
func Observed(l doc.Labeled, seed int64) doc.Labeled {
	noise := ocr.ForCapture(l.Doc.Capture)
	rng := rand.New(rand.NewSource(seed ^ int64(len(l.Doc.ID))*7727 ^ hashID(l.Doc.ID)))
	d, truth := ocr.TranscribeLabeled(l, noise, rng)
	return doc.Labeled{Doc: d, Truth: truth}
}

func hashID(s string) int64 {
	var h int64 = 1469598103
	for _, c := range s {
		h = (h ^ int64(c)) * 1099511628211
	}
	return h
}

// Options configures an experiment run.
type Options struct {
	// N is the number of documents per dataset (default 60).
	N int
	// Seed drives generation and noise (default 1).
	Seed int64
	// TrainFraction is the split for trainable baselines (default 0.6, the
	// paper's 60%/40%).
	TrainFraction float64
	// SegOpts configures VS2-Segment.
	SegOpts segment.Options
}

func (o Options) withDefaults() Options {
	if o.N <= 0 {
		o.N = 60
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.TrainFraction <= 0 || o.TrainFraction >= 1 {
		o.TrainFraction = 0.6
	}
	if o.SegOpts.GridScale == 0 {
		o.SegOpts.GridScale = 1
	}
	return o
}

// MethodResult is one cell group of a results table.
type MethodResult struct {
	Method  string
	Dataset string
	PR      PR
	// Applicable is false when the method skipped the dataset.
	Applicable bool
}

// RunTable5 reproduces Table 5: segmentation precision/recall of the six
// page segmenters on the three datasets.
func RunTable5(opts Options) []MethodResult {
	opts = opts.withDefaults()
	var out []MethodResult
	for _, ds := range []string{"d1", "d2", "d3"} {
		spec := Specs()[ds]
		docs := spec.Generate(opts.N, opts.Seed)
		for _, seg := range table5Segmenters(opts) {
			res := MethodResult{Method: seg.Name(), Dataset: ds}
			for i, l := range docs {
				obs := Observed(l, opts.Seed+int64(i))
				blocks := seg.Segment(obs.Doc)
				if blocks == nil {
					continue
				}
				res.Applicable = true
				res.PR.Add(SegmentationPRDoc(obs.Doc, blocks, obs.Truth))
			}
			out = append(out, res)
		}
	}
	return out
}

func table5Segmenters(opts Options) []baselines.PageSegmenter {
	return []baselines.PageSegmenter{
		&baselines.TextCluster{},
		&baselines.XYCut{},
		&baselines.Voronoi{},
		baselines.VIPS{},
		baselines.Tesseract{},
		baselines.VS2Segment{Opts: opts.SegOpts},
	}
}

// EntityResult is one per-entity row of Tables 6/8.
type EntityResult struct {
	Entity  string
	VS2     PR
	Text    PR // text-only baseline
	DeltaF1 float64
}

// RunPerEntity reproduces Table 6 (dataset "d2") or Table 8 ("d3"): VS2's
// per-entity precision/recall plus the ΔF1 column against the text-only
// baseline.
func RunPerEntity(ds string, opts Options) []EntityResult {
	opts = opts.withDefaults()
	spec := Specs()[ds]
	docs := spec.Generate(opts.N, opts.Seed)
	vs2 := baselines.VS2{SegOpts: opts.SegOpts}
	textOnly := baselines.TextOnly{}

	entities := entityOrder(ds)
	perVS2 := map[string]*PR{}
	perText := map[string]*PR{}
	for _, e := range entities {
		perVS2[e] = &PR{}
		perText[e] = &PR{}
	}
	for i, l := range docs {
		obs := Observed(l, opts.Seed+int64(i))
		ev := vs2.Extract(spec.Task, obs.Doc)
		et := textOnly.Extract(spec.Task, obs.Doc)
		for _, e := range entities {
			perVS2[e].Add(EndToEndPRForEntity(ev, obs.Truth, e))
			perText[e].Add(EndToEndPRForEntity(et, obs.Truth, e))
		}
	}
	var out []EntityResult
	for _, e := range entities {
		out = append(out, EntityResult{
			Entity:  e,
			VS2:     *perVS2[e],
			Text:    *perText[e],
			DeltaF1: (perVS2[e].F1() - perText[e].F1()) * 100,
		})
	}
	return out
}

func entityOrder(ds string) []string {
	switch ds {
	case "d2":
		return []string{
			pattern.EventTitle, pattern.EventPlace, pattern.EventTime,
			pattern.EventOrganizer, pattern.EventDescription,
		}
	case "d3":
		return []string{
			pattern.BrokerName, pattern.BrokerPhone, pattern.BrokerEmail,
			pattern.PropertyAddr, pattern.PropertySize, pattern.PropertyDesc,
		}
	default:
		return nil
	}
}

// RunTable7 reproduces Table 7: end-to-end precision/recall of the five
// prior methods plus VS2 on the three datasets, with the paper's
// applicability gaps (ClausIE and ML-based skip D1; ML-based sees only the
// born-digital subset of D2; ReportMiner trains on 60% of each dataset).
func RunTable7(opts Options) []MethodResult {
	opts = opts.withDefaults()
	methods := []baselines.EndToEnd{
		baselines.ClausIE{},
		&baselines.FSM{Corpora: holdoutCorpora(opts.Seed)},
		&baselines.MLBased{},
		&baselines.Apostolova{},
		&baselines.ReportMiner{},
		baselines.VS2{SegOpts: opts.SegOpts},
	}
	var out []MethodResult
	for _, ds := range []string{"d1", "d2", "d3"} {
		spec := Specs()[ds]
		docs := spec.Generate(opts.N, opts.Seed)
		// Random 60/40 split, as the paper does for ReportMiner and the
		// learned baselines — a sequential split would put whole templates
		// out of the training set.
		perm := rand.New(rand.NewSource(opts.Seed * 31)).Perm(len(docs))
		split := int(float64(len(docs)) * opts.TrainFraction)
		var train, test []doc.Labeled
		for i, pi := range perm {
			if i < split {
				train = append(train, Observed(docs[pi], opts.Seed+int64(pi)))
			} else {
				test = append(test, docs[pi])
			}
		}
		for _, m := range methods {
			res := MethodResult{Method: m.Name(), Dataset: ds}
			if !m.Applicable(ds) {
				out = append(out, res)
				continue
			}
			m.Train(spec.Task, train)
			for i, l := range test {
				obs := Observed(l, opts.Seed+int64(split+i))
				ex := m.Extract(spec.Task, obs.Doc)
				if ex == nil {
					continue
				}
				res.Applicable = true
				res.PR.Add(EndToEndPR(ex, obs.Truth))
			}
			out = append(out, res)
		}
	}
	return out
}

func holdoutCorpora(seed int64) map[string]*holdout.Corpus {
	return map[string]*holdout.Corpus{
		"d2": holdout.Build(holdout.D2Sites(), holdout.BuildOptions{Seed: seed, MaxBatches: 4}),
		"d3": holdout.Build(holdout.D3Sites(), holdout.BuildOptions{Seed: seed, MaxBatches: 4}),
	}
}

// AblationResult is one row of Table 9.
type AblationResult struct {
	Scenario string
	// DeltaF1 per dataset: F1(full VS2) − F1(ablated), in percentage points.
	DeltaF1 map[string]float64
}

// RunTable9 reproduces the ablation study: each scenario removes one
// component of VS2 and reports the F1 drop on every dataset.
//
//	A1 — no semantic merging in VS2-Segment
//	A2 — no visual-feature clustering
//	A3 — no entity disambiguation (first match)
//	A4 — text-only (Lesk) disambiguation
func RunTable9(opts Options) []AblationResult {
	opts = opts.withDefaults()
	type scenario struct {
		name string
		mk   func() baselines.VS2
	}
	segBase := opts.SegOpts
	scenarios := []scenario{
		{"A1 no semantic merging", func() baselines.VS2 {
			s := segBase
			s.DisableMerging = true
			return baselines.VS2{SegOpts: s}
		}},
		{"A2 no visual features", func() baselines.VS2 {
			s := segBase
			s.DisableClustering = true
			return baselines.VS2{SegOpts: s}
		}},
		{"A3 no disambiguation", func() baselines.VS2 {
			return baselines.VS2{SegOpts: segBase, ExtOpts: extract.Options{Disambiguation: extract.None}}
		}},
		{"A4 text-only disambiguation", func() baselines.VS2 {
			return baselines.VS2{SegOpts: segBase, ExtOpts: extract.Options{Disambiguation: extract.Lesk}}
		}},
	}

	out := make([]AblationResult, len(scenarios))
	for i, sc := range scenarios {
		out[i] = AblationResult{Scenario: sc.name, DeltaF1: map[string]float64{}}
	}
	for _, ds := range []string{"d1", "d2", "d3"} {
		spec := Specs()[ds]
		docs := spec.Generate(opts.N, opts.Seed)
		full := baselines.VS2{SegOpts: segBase}
		var fullPR PR
		ablPR := make([]PR, len(scenarios))
		for i, l := range docs {
			obs := Observed(l, opts.Seed+int64(i))
			fullPR.Add(EndToEndPR(full.Extract(spec.Task, obs.Doc), obs.Truth))
			for s, sc := range scenarios {
				m := sc.mk()
				ablPR[s].Add(EndToEndPR(m.Extract(spec.Task, obs.Doc), obs.Truth))
			}
		}
		for s := range scenarios {
			out[s].DeltaF1[ds] = (fullPR.F1() - ablPR[s].F1()) * 100
		}
	}
	return out
}

// SignificanceVS2VsTextOnly runs the Section 6.4 paired t-test on
// per-document F1 of VS2 vs the text-only baseline for one dataset.
func SignificanceVS2VsTextOnly(ds string, opts Options) (stats.TTestResult, error) {
	opts = opts.withDefaults()
	spec := Specs()[ds]
	docs := spec.Generate(opts.N, opts.Seed)
	vs2 := baselines.VS2{SegOpts: opts.SegOpts}
	textOnly := baselines.TextOnly{}
	var a, b []float64
	for i, l := range docs {
		obs := Observed(l, opts.Seed+int64(i))
		a = append(a, EndToEndPR(vs2.Extract(spec.Task, obs.Doc), obs.Truth).F1())
		b = append(b, EndToEndPR(textOnly.Extract(spec.Task, obs.Doc), obs.Truth).F1())
	}
	return stats.PairedTTest(a, b)
}

// rngForNoise builds the per-document RNG used by the noise sweeps.
func rngForNoise(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed * 2654435761)) }

// docLabeled pairs a document with a truth without re-validating.
func docLabeled(d *doc.Document, truth *doc.GroundTruth) doc.Labeled {
	return doc.Labeled{Doc: d, Truth: truth}
}
