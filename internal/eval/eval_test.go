package eval

import (
	"strings"
	"testing"

	"vs2/internal/doc"
	"vs2/internal/extract"
	"vs2/internal/geom"
)

func TestPRArithmetic(t *testing.T) {
	pr := PR{TP: 8, FP: 2, FN: 2}
	if pr.Precision() != 0.8 || pr.Recall() != 0.8 {
		t.Errorf("P=%v R=%v", pr.Precision(), pr.Recall())
	}
	if f1 := pr.F1(); f1 < 0.799 || f1 > 0.801 {
		t.Errorf("F1 = %v", f1)
	}
	var zero PR
	if zero.Precision() != 0 || zero.Recall() != 0 || zero.F1() != 0 {
		t.Error("zero PR should be all zeros")
	}
	zero.Add(pr)
	if zero.TP != 8 || zero.FP != 2 || zero.FN != 2 {
		t.Errorf("Add = %+v", zero)
	}
}

func TestSegmentationPRMatching(t *testing.T) {
	truth := &doc.GroundTruth{Annotations: []doc.Annotation{
		{Entity: "A", Box: geom.Rect{X: 0, Y: 0, W: 100, H: 20}},
		{Entity: "B", Box: geom.Rect{X: 0, Y: 50, W: 100, H: 20}},
	}}
	proposals := []*doc.Node{
		{Box: geom.Rect{X: 0, Y: 0, W: 100, H: 20}},  // exact match for A
		{Box: geom.Rect{X: 0, Y: 200, W: 50, H: 10}}, // matches nothing
	}
	pr := SegmentationPR(proposals, truth)
	if pr.TP != 1 || pr.FP != 1 || pr.FN != 1 {
		t.Errorf("PR = %+v", pr)
	}
}

func TestSegmentationPRGreedyNoDoubleMatch(t *testing.T) {
	// One proposal cannot satisfy two annotations.
	box := geom.Rect{X: 0, Y: 0, W: 100, H: 20}
	truth := &doc.GroundTruth{Annotations: []doc.Annotation{
		{Entity: "A", Box: box}, {Entity: "B", Box: box},
	}}
	pr := SegmentationPR([]*doc.Node{{Box: box}}, truth)
	if pr.TP != 1 || pr.FN != 1 {
		t.Errorf("PR = %+v", pr)
	}
}

func TestSegmentationPRSkipsImageOnlyProposals(t *testing.T) {
	d := &doc.Document{ID: "x", Width: 200, Height: 200, Elements: []doc.Element{
		{ID: 0, Kind: doc.ImageElement, Box: geom.Rect{X: 0, Y: 100, W: 50, H: 50}},
		{ID: 1, Kind: doc.TextElement, Text: "w", Box: geom.Rect{X: 0, Y: 0, W: 10, H: 10}},
	}}
	truth := &doc.GroundTruth{Annotations: []doc.Annotation{
		{Entity: "A", Box: geom.Rect{X: 0, Y: 0, W: 10, H: 10}},
	}}
	proposals := []*doc.Node{
		{Box: d.Elements[1].Box, Elements: []int{1}},
		{Box: d.Elements[0].Box, Elements: []int{0}}, // image-only: not an FP
	}
	pr := SegmentationPRDoc(d, proposals, truth)
	if pr.TP != 1 || pr.FP != 0 {
		t.Errorf("PR = %+v", pr)
	}
}

func TestEndToEndPRLabelsMatter(t *testing.T) {
	box := geom.Rect{X: 0, Y: 0, W: 100, H: 20}
	truth := &doc.GroundTruth{Annotations: []doc.Annotation{{Entity: "A", Box: box, Text: "hello"}}}
	right := []extract.Extraction{{Entity: "A", Box: box, Text: "zz"}}
	wrong := []extract.Extraction{{Entity: "B", Box: box, Text: "zz"}}
	if pr := EndToEndPR(right, truth); pr.TP != 1 || pr.FP != 0 || pr.FN != 0 {
		t.Errorf("right = %+v", pr)
	}
	if pr := EndToEndPR(wrong, truth); pr.TP != 0 || pr.FP != 1 || pr.FN != 1 {
		t.Errorf("wrong = %+v", pr)
	}
}

func TestEndToEndPRBlockBoxFallback(t *testing.T) {
	ann := geom.Rect{X: 0, Y: 0, W: 100, H: 20}
	truth := &doc.GroundTruth{Annotations: []doc.Annotation{{Entity: "A", Box: ann, Text: "alpha beta"}}}
	// Tight token box misses, block box hits.
	e := []extract.Extraction{{
		Entity:   "A",
		Box:      geom.Rect{X: 0, Y: 0, W: 30, H: 20},
		BlockBox: ann,
		Text:     "zz",
	}}
	if pr := EndToEndPR(e, truth); pr.TP != 1 {
		t.Errorf("block box fallback failed: %+v", pr)
	}
	// Text fallback for box-less methods.
	e2 := []extract.Extraction{{Entity: "A", Text: "alpha beta"}}
	if pr := EndToEndPR(e2, truth); pr.TP != 1 {
		t.Errorf("text fallback failed: %+v", pr)
	}
}

func TestEndToEndEntityLevelRecall(t *testing.T) {
	// Two mentions of the same entity; matching one is full recall.
	a1 := geom.Rect{X: 0, Y: 0, W: 100, H: 20}
	a2 := geom.Rect{X: 0, Y: 100, W: 100, H: 20}
	truth := &doc.GroundTruth{Annotations: []doc.Annotation{
		{Entity: "A", Box: a1, Text: "first"},
		{Entity: "A", Box: a2, Text: "second"},
	}}
	e := []extract.Extraction{{Entity: "A", Box: a1, Text: "zz"}}
	pr := EndToEndPR(e, truth)
	if pr.TP != 1 || pr.FN != 0 {
		t.Errorf("entity-level recall violated: %+v", pr)
	}
}

func TestTextMatches(t *testing.T) {
	if !textMatches("Kevin Walsh", "kevin walsh") {
		t.Error("case-insensitive match failed")
	}
	if !textMatches("Saturday, June 14", "Saturday June 14") {
		t.Error("punctuation-insensitive match failed")
	}
	if textMatches("completely different", "Kevin Walsh") {
		t.Error("unrelated texts matched")
	}
	if textMatches("", "x") || textMatches("x", "") {
		t.Error("empty text matched")
	}
}

func TestSpecsComplete(t *testing.T) {
	specs := Specs()
	for _, ds := range []string{"d1", "d2", "d3"} {
		spec, ok := specs[ds]
		if !ok {
			t.Fatalf("missing spec %s", ds)
		}
		docs := spec.Generate(2, 5)
		if len(docs) != 2 {
			t.Errorf("%s generated %d docs", ds, len(docs))
		}
		if len(spec.Task.Sets) == 0 {
			t.Errorf("%s has no pattern sets", ds)
		}
	}
}

func TestObservedAppliesCaptureNoise(t *testing.T) {
	spec := Specs()["d2"]
	docs := spec.Generate(12, 3)
	changed := false
	for i, l := range docs {
		obs := Observed(l, int64(i))
		if err := obs.Doc.Validate(); err != nil {
			t.Fatalf("observed doc invalid: %v", err)
		}
		if obs.Doc.Transcript(nil) != l.Doc.Transcript(nil) {
			changed = true
		}
		// Truth must stay aligned (same entity counts).
		if len(obs.Truth.Annotations) != len(l.Truth.Annotations) {
			t.Error("annotation count changed")
		}
	}
	if !changed {
		t.Error("no document picked up any noise")
	}
}

func TestRunTable5Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner")
	}
	results := RunTable5(Options{N: 3, Seed: 9})
	if len(results) != 18 { // 6 methods x 3 datasets
		t.Fatalf("results = %d", len(results))
	}
	// VIPS must be inapplicable on d1.
	for _, r := range results {
		if r.Method == "VIPS" && r.Dataset == "d1" && r.Applicable {
			t.Error("VIPS should not apply to d1")
		}
		if r.Method == "VS2-Segment" && !r.Applicable {
			t.Errorf("VS2 not applicable on %s", r.Dataset)
		}
	}
	table := FormatTable5(results)
	if !strings.Contains(table.String(), "VS2-Segment") {
		t.Error("table missing VS2 row")
	}
}

func TestRunPerEntitySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner")
	}
	results := RunPerEntity("d2", Options{N: 4, Seed: 9})
	if len(results) != 5 {
		t.Fatalf("entities = %d", len(results))
	}
	table := FormatPerEntity("Table 6", results)
	if !strings.Contains(table.String(), "Overall") {
		t.Error("missing Overall row")
	}
}

func TestRunTable9Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner")
	}
	results := RunTable9(Options{N: 3, Seed: 9})
	if len(results) != 4 {
		t.Fatalf("scenarios = %d", len(results))
	}
	for _, r := range results {
		for _, ds := range []string{"d1", "d2", "d3"} {
			if _, ok := r.DeltaF1[ds]; !ok {
				t.Errorf("%s missing %s", r.Scenario, ds)
			}
		}
	}
	_ = FormatTable9(results)
}

func TestSignificanceRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner")
	}
	res, err := SignificanceVS2VsTextOnly("d3", Options{N: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0 || res.P > 1 {
		t.Errorf("p = %v", res.P)
	}
}

func TestTableFormatting(t *testing.T) {
	tab := Table{
		Title:  "T",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"xxx", "y"}},
	}
	s := tab.String()
	if !strings.Contains(s, "T\n") || !strings.Contains(s, "xxx") {
		t.Errorf("table output:\n%s", s)
	}
}

func TestCutModelAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner")
	}
	results := RunCutModelAblation(Options{N: 4, Seed: 9})
	if len(results) != 4 {
		t.Fatalf("rotation steps = %d", len(results))
	}
	// The seam model should never be categorically worse than straight
	// cuts at any rotation.
	for _, r := range results {
		if r.Seam.F1() < r.Straight.F1()-0.1 {
			t.Errorf("rot %.0f°: seam F1 %.3f far below straight %.3f",
				r.Degrees, r.Seam.F1(), r.Straight.F1())
		}
	}
}

func TestWeightProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner")
	}
	results := RunWeightProfiles(Options{N: 3, Seed: 9})
	for _, r := range results {
		if len(r.F1) != 3 {
			t.Errorf("%s profiles = %v", r.Dataset, r.F1)
		}
	}
}

func TestNoiseSweepMonotoneOnAverage(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner")
	}
	points := RunNoiseSweep(Options{N: 6, Seed: 9})
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	clean, harsh := points[0], points[3]
	if harsh.VS2.F1() > clean.VS2.F1() {
		t.Errorf("harsh noise improved VS2: %.3f > %.3f", harsh.VS2.F1(), clean.VS2.F1())
	}
}

func TestRotationSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner")
	}
	points := RunRotationSweep(Options{N: 4, Seed: 9})
	if len(points) != 6 {
		t.Fatalf("points = %d", len(points))
	}
	if points[0].PR.F1() == 0 {
		t.Error("zero-rotation segmentation failed entirely")
	}
}

func TestFitWeights(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner")
	}
	w, f1 := FitWeights("d3", Options{N: 4, Seed: 9})
	sum := w.Alpha + w.Beta + w.Gamma + w.Nu
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("fitted weights do not sum to 1: %+v", w)
	}
	if f1 <= 0 {
		t.Errorf("fitted F1 = %v", f1)
	}
}

func TestCSVExport(t *testing.T) {
	var sb strings.Builder
	err := WriteMethodCSV(&sb, []MethodResult{
		{Method: "VS2", Dataset: "d1", Applicable: true, PR: PR{TP: 9, FP: 1, FN: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "VS2,d1,true,9,1,1,0.9000,0.9000,0.9000") {
		t.Errorf("method CSV:\n%s", out)
	}
	sb.Reset()
	err = WriteEntityCSV(&sb, []EntityResult{
		{Entity: "X", VS2: PR{TP: 1, FN: 1}, Text: PR{TP: 1, FP: 1}, DeltaF1: 1.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "X,") {
		t.Errorf("entity CSV:\n%s", sb.String())
	}
	sb.Reset()
	if err := WriteJSON(&sb, map[string]int{"a": 1}); err != nil || !strings.Contains(sb.String(), `"a": 1`) {
		t.Errorf("JSON export: %v %q", err, sb.String())
	}
}
