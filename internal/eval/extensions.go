package eval

import (
	"vs2/internal/baselines"
	"vs2/internal/doc"
	"vs2/internal/extract"
	"vs2/internal/ocr"
	"vs2/internal/segment"
	"vs2/internal/stats"
)

// Extension experiments beyond the paper's tables, covering the design
// choices DESIGN.md calls out and the future-work directions of Section 7.

// CutModelResult compares the drifting-seam cut model against straight
// projection cuts (DESIGN.md ablation 1: the seam model is what separates
// VS2-Segment's cut phase from XY-cut behaviour). On perfectly axis-aligned
// pages the two coincide — straight cuts are a special case of seams — so
// the comparison sweeps page rotation, where seams can follow the skewed
// gutters that straight lines cannot.
type CutModelResult struct {
	Degrees  float64
	Seam     PR
	Straight PR
}

// RunCutModelAblation measures D2 segmentation quality with and without
// seam drift under increasing page rotation.
func RunCutModelAblation(opts Options) []CutModelResult {
	opts = opts.withDefaults()
	spec := Specs()["d2"]
	docs := spec.Generate(opts.N, opts.Seed)
	seamOpts := opts.SegOpts
	straightOpts := opts.SegOpts
	straightOpts.StraightCutsOnly = true
	seam := baselines.VS2Segment{Opts: seamOpts}
	straight := baselines.VS2Segment{Opts: straightOpts}
	var out []CutModelResult
	for _, deg := range []float64{0, 4, 8, 12} {
		noise := ocr.NoiseLevel{Rotation: deg * 3.14159265 / 180}
		res := CutModelResult{Degrees: deg}
		for i, l := range docs {
			rng := rngForNoise(opts.Seed + int64(i))
			d, truth := ocr.TranscribeLabeled(l, noise, rng)
			res.Seam.Add(SegmentationPRDoc(d, seam.Segment(d), truth))
			res.Straight.Add(SegmentationPRDoc(d, straight.Segment(d), truth))
		}
		out = append(out, res)
	}
	return out
}

// WeightProfileResult measures end-to-end F1 under each Eq. 2 weight
// profile (Section 5.3.2's guidance: ornate corpora weight the visual
// terms, verbose corpora the textual term).
type WeightProfileResult struct {
	Dataset string
	// F1 per profile name.
	F1 map[string]float64
}

// RunWeightProfiles sweeps the three built-in weight profiles over every
// dataset.
func RunWeightProfiles(opts Options) []WeightProfileResult {
	opts = opts.withDefaults()
	profiles := map[string]extract.Weights{
		"balanced": extract.Balanced,
		"ornate":   extract.VisuallyOrnate,
		"verbose":  extract.Verbose,
	}
	var out []WeightProfileResult
	for _, ds := range []string{"d1", "d2", "d3"} {
		spec := Specs()[ds]
		docs := spec.Generate(opts.N, opts.Seed)
		res := WeightProfileResult{Dataset: ds, F1: map[string]float64{}}
		for name, w := range profiles {
			m := baselines.VS2{SegOpts: opts.SegOpts, ExtOpts: extract.Options{Weights: w}}
			var pr PR
			for i, l := range docs {
				obs := Observed(l, opts.Seed+int64(i))
				pr.Add(EndToEndPR(m.Extract(spec.Task, obs.Doc), obs.Truth))
			}
			res.F1[name] = pr.F1()
		}
		out = append(out, res)
	}
	return out
}

// NoisePoint is one step of the OCR noise sweep.
type NoisePoint struct {
	Label string
	VS2   PR
	Text  PR
}

// RunNoiseSweep measures VS2 and the text-only baseline on D2 under
// increasing transcription noise — the robustness claim of Sections 5.1.2
// and 7 (errors "inhibit semantic merging at later iterations").
func RunNoiseSweep(opts Options) []NoisePoint {
	opts = opts.withDefaults()
	spec := Specs()["d2"]
	docs := spec.Generate(opts.N, opts.Seed)
	vs2 := baselines.VS2{SegOpts: opts.SegOpts}
	textOnly := baselines.TextOnly{}
	levels := []struct {
		label string
		noise ocr.NoiseLevel
	}{
		{"clean", ocr.Clean},
		{"scan", ocr.Scan},
		{"mobile", ocr.Mobile},
		{"harsh", ocr.Harsh},
	}
	var out []NoisePoint
	for _, lvl := range levels {
		p := NoisePoint{Label: lvl.label}
		for i, l := range docs {
			rng := rngForNoise(opts.Seed + int64(i))
			d, truth := ocr.TranscribeLabeled(l, lvl.noise, rng)
			obs := docLabeled(d, truth)
			p.VS2.Add(EndToEndPR(vs2.Extract(spec.Task, obs.Doc), obs.Truth))
			p.Text.Add(EndToEndPR(textOnly.Extract(spec.Task, obs.Doc), obs.Truth))
		}
		out = append(out, p)
	}
	return out
}

// RotationPoint is one step of the rotation-robustness sweep.
type RotationPoint struct {
	Degrees float64
	PR      PR
}

// RunRotationSweep checks the Section 5.1.2 claim that VS2-Segment "is
// robust to rotation (up to 45°)": segmentation quality on D2 under pure
// page rotation of increasing magnitude, no other noise.
func RunRotationSweep(opts Options) []RotationPoint {
	opts = opts.withDefaults()
	spec := Specs()["d2"]
	docs := spec.Generate(opts.N, opts.Seed)
	seg := baselines.VS2Segment{Opts: opts.SegOpts}
	var out []RotationPoint
	for _, deg := range []float64{0, 5, 10, 20, 30, 45} {
		noise := ocr.NoiseLevel{Rotation: deg * 3.14159265 / 180}
		p := RotationPoint{Degrees: deg}
		for i, l := range docs {
			rng := rngForNoise(opts.Seed + int64(i))
			d, truth := ocr.TranscribeLabeled(l, noise, rng)
			p.PR.Add(SegmentationPRDoc(d, seg.Segment(d), truth))
		}
		out = append(out, p)
	}
	return out
}

// SignificanceAll runs the paired t-test on every dataset, returning the
// per-dataset results keyed by dataset name.
func SignificanceAll(opts Options) map[string]stats.TTestResult {
	out := map[string]stats.TTestResult{}
	for _, ds := range []string{"d1", "d2", "d3"} {
		if res, err := SignificanceVS2VsTextOnly(ds, opts); err == nil {
			out[ds] = res
		}
	}
	return out
}

// FitWeights implements the paper's future-work direction of "learning to
// weight each feature based on observed data" (Section 7): a grid search
// over the Eq. 2 simplex (step 0.1, α+β+γ+ν = 1) maximising end-to-end F1
// on a labelled training split. Segmentation is shared across candidates —
// the weights only affect the select phase.
func FitWeights(ds string, opts Options) (extract.Weights, float64) {
	opts = opts.withDefaults()
	spec := Specs()[ds]
	docs := spec.Generate(opts.N, opts.Seed)

	// Pre-segment every document once.
	type obsDoc struct {
		l      doc.Labeled
		blocks []*doc.Node
	}
	seg := segment.New(opts.SegOpts)
	observed := make([]obsDoc, 0, len(docs))
	for i, l := range docs {
		o := Observed(l, opts.Seed+int64(i))
		observed = append(observed, obsDoc{l: o, blocks: seg.Blocks(o.Doc)})
	}

	best := extract.Balanced
	bestF1 := -1.0
	const step = 2 // tenths
	for a := 0; a <= 10; a += step {
		for bb := 0; a+bb <= 10; bb += step {
			for g := 0; a+bb+g <= 10; g += step {
				n := 10 - a - bb - g
				w := extract.Weights{
					Alpha: float64(a) / 10, Beta: float64(bb) / 10,
					Gamma: float64(g) / 10, Nu: float64(n) / 10,
				}
				ex := extract.New(extract.Options{Weights: w})
				var pr PR
				for _, o := range observed {
					pr.Add(EndToEndPR(ex.Extract(o.l.Doc, o.blocks, spec.Task.Sets), o.l.Truth))
				}
				if f1 := pr.F1(); f1 > bestF1 {
					bestF1, best = f1, w
				}
			}
		}
	}
	return best, bestF1
}
