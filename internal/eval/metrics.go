// Package eval implements the evaluation protocol of Section 6.2 and the
// experiment runners that regenerate every table of the paper's evaluation
// (Tables 5–9), including the paired significance test of Section 6.4.
//
// Two-phase protocol: segmentation quality is measured by matching block
// proposals to ground-truth entity boxes at IoU ≥ 0.65 (labels ignored),
// following the PASCAL-VOC criterion [12]; end-to-end quality additionally
// requires the predicted entity label to match.
package eval

import (
	"strings"

	"vs2/internal/doc"
	"vs2/internal/extract"
	"vs2/internal/geom"
)

// IoUThreshold is the accuracy criterion of Section 6.2.
const IoUThreshold = 0.65

// PR accumulates precision/recall counts.
type PR struct {
	TP, FP, FN int
}

// Add merges another count.
func (p *PR) Add(q PR) {
	p.TP += q.TP
	p.FP += q.FP
	p.FN += q.FN
}

// Precision returns TP/(TP+FP), or 0 when undefined.
func (p PR) Precision() float64 {
	if p.TP+p.FP == 0 {
		return 0
	}
	return float64(p.TP) / float64(p.TP+p.FP)
}

// Recall returns TP/(TP+FN), or 0 when undefined.
func (p PR) Recall() float64 {
	if p.TP+p.FN == 0 {
		return 0
	}
	return float64(p.TP) / float64(p.TP+p.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (p PR) F1() float64 {
	pr, rc := p.Precision(), p.Recall()
	if pr+rc == 0 {
		return 0
	}
	return 2 * pr * rc / (pr + rc)
}

// SegmentationPR scores block proposals against the annotated entity boxes
// (localisation phase): each annotation greedily matches its best-IoU
// unused proposal; a proposal is accurate when its IoU exceeds the
// threshold. Labels are not considered at this stage (Section 6.2).
// Image-only proposals are excluded: entity annotations are textual, so a
// picture region is neither a hit nor a miss for any method.
func SegmentationPR(proposals []*doc.Node, truth *doc.GroundTruth) PR {
	return SegmentationPRDoc(nil, proposals, truth)
}

// SegmentationPRDoc is SegmentationPR with the document available to
// filter image-only proposals (pass nil to keep every proposal).
func SegmentationPRDoc(d *doc.Document, proposals []*doc.Node, truth *doc.GroundTruth) PR {
	var boxes []geom.Rect
	for _, p := range proposals {
		if d != nil && !hasText(d, p) {
			continue
		}
		boxes = append(boxes, p.Box)
	}
	return boxPR(boxes, truth.Annotations)
}

func hasText(d *doc.Document, n *doc.Node) bool {
	for _, id := range n.Elements {
		if id >= 0 && id < len(d.Elements) && d.Elements[id].Kind == doc.TextElement {
			return true
		}
	}
	return false
}

func boxPR(proposals []geom.Rect, annotations []doc.Annotation) PR {
	used := make([]bool, len(proposals))
	var pr PR
	for _, a := range annotations {
		best, bestIoU := -1, IoUThreshold
		for i, b := range proposals {
			if used[i] {
				continue
			}
			if iou := b.IoU(a.Box); iou >= bestIoU {
				best, bestIoU = i, iou
			}
		}
		if best >= 0 {
			used[best] = true
			pr.TP++
		} else {
			pr.FN++
		}
	}
	for _, u := range used {
		if !u {
			pr.FP++
		}
	}
	return pr
}

// EndToEndPR scores extractions against the ground truth following the
// paper's two-phase reading of Section 6.2: the *localized* unit (the
// logical block the entity was found in, when the method produces one) must
// overlap an annotation at IoU ≥ threshold, and the predicted entity label
// must match it. Extractions for entities absent from the truth count as
// false positives; annotations with no accurate extraction count as false
// negatives.
func EndToEndPR(extractions []extract.Extraction, truth *doc.GroundTruth) PR {
	var pr PR
	usedAnn := make([]bool, len(truth.Annotations))
	for _, e := range extractions {
		box := e.BlockBox
		if box.Empty() {
			box = e.Box
		}
		matched := false
		for i, a := range truth.Annotations {
			if usedAnn[i] || a.Entity != e.Entity {
				continue
			}
			if box.IoU(a.Box) >= IoUThreshold || e.Box.IoU(a.Box) >= IoUThreshold ||
				textMatches(e.Text, a.Text) {
				usedAnn[i] = true
				matched = true
				break
			}
		}
		if matched {
			pr.TP++
		} else {
			pr.FP++
		}
	}
	// Recall is entity-level: VS2-Select returns one value per named
	// entity, so an entity with several ground-truth mentions (a
	// description paragraph plus a highlight badge) is recalled when any
	// mention was matched.
	matchedEntity := map[string]bool{}
	for i, u := range usedAnn {
		if u {
			matchedEntity[truth.Annotations[i].Entity] = true
		}
	}
	seen := map[string]bool{}
	for _, a := range truth.Annotations {
		if seen[a.Entity] {
			continue
		}
		seen[a.Entity] = true
		if !matchedEntity[a.Entity] {
			pr.FN++
		}
	}
	return pr
}

// textMatches compares extracted text against the annotation's text with
// token-level Jaccard overlap. Purely textual comparators (ClausIE, FSM)
// have no native notion of an image region; the paper scores them on label
// correctness, which for a text method means the extracted string itself.
func textMatches(got, want string) bool {
	a := tokenSet(got)
	b := tokenSet(want)
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	inter := 0
	for t := range a {
		if b[t] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter)/float64(union) >= 0.6
}

func tokenSet(s string) map[string]bool {
	out := map[string]bool{}
	for _, f := range strings.Fields(strings.ToLower(s)) {
		out[strings.Trim(f, ".,;:!?()")] = true
	}
	delete(out, "")
	return out
}

// EndToEndPRForEntity restricts the end-to-end score to one entity key —
// the per-entity rows of Tables 6 and 8.
func EndToEndPRForEntity(extractions []extract.Extraction, truth *doc.GroundTruth, entity string) PR {
	var es []extract.Extraction
	for _, e := range extractions {
		if e.Entity == entity {
			es = append(es, e)
		}
	}
	sub := &doc.GroundTruth{DocID: truth.DocID, Annotations: truth.ForEntity(entity)}
	return EndToEndPR(es, sub)
}
