package eval

import (
	"fmt"
	"strings"
)

// Table is a printable results table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

func pct(x float64) string { return fmt.Sprintf("%.2f", x*100) }

// FormatTable5 renders Table 5 results in the paper's layout.
func FormatTable5(results []MethodResult) Table {
	t := Table{
		Title: "Table 5: Evaluation of VS2-Segment (segmentation P/R, IoU ≥ 0.65)",
		Header: []string{"Algorithm",
			"D1 Pr(%)", "D1 Rec(%)", "D2 Pr(%)", "D2 Rec(%)", "D3 Pr(%)", "D3 Rec(%)"},
	}
	order := []string{"Text-only", "XY-Cut", "Voronoi", "VIPS", "Tesseract", "VS2-Segment"}
	byKey := map[string]MethodResult{}
	for _, r := range results {
		byKey[r.Method+"/"+r.Dataset] = r
	}
	for _, m := range order {
		row := []string{m}
		for _, ds := range []string{"d1", "d2", "d3"} {
			r, ok := byKey[m+"/"+ds]
			if !ok || !r.Applicable {
				row = append(row, "-", "-")
				continue
			}
			row = append(row, pct(r.PR.Precision()), pct(r.PR.Recall()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// FormatPerEntity renders Tables 6 and 8.
func FormatPerEntity(title string, results []EntityResult) Table {
	t := Table{
		Title:  title,
		Header: []string{"Named Entity", "Pr(%)", "Rec(%)", "ΔF1(%)"},
	}
	var vsAll, txtAll PR
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Entity, pct(r.VS2.Precision()), pct(r.VS2.Recall()),
			fmt.Sprintf("%+.2f", r.DeltaF1),
		})
		vsAll.Add(r.VS2)
		txtAll.Add(r.Text)
	}
	t.Rows = append(t.Rows, []string{
		"Overall", pct(vsAll.Precision()), pct(vsAll.Recall()),
		fmt.Sprintf("%+.2f", (vsAll.F1()-txtAll.F1())*100),
	})
	return t
}

// FormatTable7 renders Table 7.
func FormatTable7(results []MethodResult) Table {
	t := Table{
		Title: "Table 7: End-to-end comparison against existing methods",
		Header: []string{"Algorithm",
			"D1 Pr(%)", "D1 Rec(%)", "D2 Pr(%)", "D2 Rec(%)", "D3 Pr(%)", "D3 Rec(%)"},
	}
	order := []string{"ClausIE", "FSM", "ML-based", "Apostolova et al.", "ReportMiner", "VS2"}
	byKey := map[string]MethodResult{}
	for _, r := range results {
		byKey[r.Method+"/"+r.Dataset] = r
	}
	for _, m := range order {
		row := []string{m}
		for _, ds := range []string{"d1", "d2", "d3"} {
			r, ok := byKey[m+"/"+ds]
			if !ok || !r.Applicable {
				row = append(row, "-", "-")
				continue
			}
			row = append(row, pct(r.PR.Precision()), pct(r.PR.Recall()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// FormatTable9 renders the ablation study.
func FormatTable9(results []AblationResult) Table {
	t := Table{
		Title:  "Table 9: Ablation study (ΔF1 of full VS2 over each ablation, %)",
		Header: []string{"Scenario", "D1", "D2", "D3"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Scenario,
			fmt.Sprintf("%+.2f", r.DeltaF1["d1"]),
			fmt.Sprintf("%+.2f", r.DeltaF1["d2"]),
			fmt.Sprintf("%+.2f", r.DeltaF1["d3"]),
		})
	}
	return t
}
