package treemine

import "testing"

// FuzzDecode checks that Decode never panics and that every successfully
// decoded tree re-encodes to a decodable string (round-trip stability).
func FuzzDecode(f *testing.F) {
	for _, s := range []string{
		"a", "a(b)", "a(b,c)", "a(b(c),d)", `x\(y`, `a\\`, "a(b", "", ",", ")",
		"S(NP(NNP,NE:PERSON),VP(VBZ))",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		tr, err := Decode(s)
		if err != nil {
			return
		}
		enc := tr.Encode()
		back, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of %q failed: %v", enc, err)
		}
		if back.Encode() != enc {
			t.Fatalf("unstable round trip: %q -> %q", enc, back.Encode())
		}
		// Matching must not panic on decoded trees.
		MatchInduced(tr, tr)
		MatchEmbedded(tr, tr)
	})
}
