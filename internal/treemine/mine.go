package treemine

import "sort"

// Pattern is a mined frequent subtree with its transaction support.
type Pattern struct {
	Tree    *Tree
	Support int     // number of database trees containing the pattern
	Ratio   float64 // Support / |DB|
}

// Options tunes the miner.
type Options struct {
	// MinSupport is the minimum fraction of database trees a subtree must
	// occur in (transaction support). Default 0.3.
	MinSupport float64
	// MaxNodes bounds enumerated subtree size. Default 6.
	MaxNodes int
	// MaxPerNode caps the number of candidate subtrees enumerated per
	// anchor node, guarding against pathological branching. Default 400.
	MaxPerNode int
	// MinNodes drops trivially small patterns (single labels carry no
	// syntax). Default 2.
	MinNodes int
}

func (o Options) withDefaults() Options {
	if o.MinSupport <= 0 {
		o.MinSupport = 0.3
	}
	if o.MaxNodes <= 0 {
		o.MaxNodes = 6
	}
	if o.MaxPerNode <= 0 {
		o.MaxPerNode = 400
	}
	if o.MinNodes <= 0 {
		o.MinNodes = 2
	}
	return o
}

// Mine returns the frequent subtrees of the database under opts, sorted by
// descending support then descending size.
func Mine(db []*Tree, opts Options) []Pattern {
	opts = opts.withDefaults()
	if len(db) == 0 {
		return nil
	}
	minCount := int(opts.MinSupport*float64(len(db)) + 0.999)
	if minCount < 1 {
		minCount = 1
	}

	counts := map[string]int{}
	reps := map[string]*Tree{}
	for _, tree := range db {
		seen := map[string]bool{} // transaction support: count once per tree
		tree.Walk(func(n *Tree) {
			budget := opts.MaxPerNode
			for _, sub := range enumerate(n, opts.MaxNodes, &budget) {
				if sub.Size() < opts.MinNodes {
					continue
				}
				enc := sub.Encode()
				if !seen[enc] {
					seen[enc] = true
					counts[enc]++
					if _, ok := reps[enc]; !ok {
						reps[enc] = sub
					}
				}
			}
		})
	}

	var out []Pattern
	for enc, c := range counts {
		if c >= minCount {
			out = append(out, Pattern{
				Tree:    reps[enc],
				Support: c,
				Ratio:   float64(c) / float64(len(db)),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		si, sj := out[i].Tree.Size(), out[j].Tree.Size()
		if si != sj {
			return si > sj
		}
		return out[i].Tree.Encode() < out[j].Tree.Encode()
	})
	return out
}

// MineMaximal mines frequent subtrees and keeps only the maximal ones:
// patterns with no other frequent pattern properly containing them
// (induced containment). These are the paper's "maximal frequent subtrees".
func MineMaximal(db []*Tree, opts Options) []Pattern {
	all := Mine(db, opts)
	var out []Pattern
	for i, p := range all {
		maximal := true
		for j, q := range all {
			if i == j || q.Tree.Size() <= p.Tree.Size() {
				continue
			}
			// q strictly larger; if p occurs inside q, p is not maximal —
			// but only discard when q is at least as frequent in spirit:
			// any frequent supertree suffices per the standard definition.
			if MatchInduced(p.Tree, q.Tree) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, p)
		}
	}
	return out
}

// enumerate returns the induced subtrees rooted at n with at most maxNodes
// nodes, decrementing *budget per produced subtree and stopping at zero.
func enumerate(n *Tree, maxNodes int, budget *int) []*Tree {
	if maxNodes < 1 || *budget <= 0 {
		return nil
	}
	// Subtrees rooted at n: the bare root plus combinations of child
	// subtrees in order.
	base := &Tree{Label: n.Label}
	results := []*Tree{base}
	*budget--
	// For each child, the options are: skip it, or attach one of its
	// enumerated subtrees. Walk children left to right, extending partial
	// combinations.
	partials := []*Tree{base}
	for _, c := range n.Children {
		if *budget <= 0 {
			break
		}
		childSubs := enumerate(c, maxNodes-1, budget)
		var next []*Tree
		for _, p := range partials {
			next = append(next, p) // skip child
			for _, cs := range childSubs {
				if p.Size()+cs.Size() > maxNodes {
					continue
				}
				ext := p.Clone()
				ext.Children = append(ext.Children, cs)
				next = append(next, ext)
				*budget--
				if *budget <= 0 {
					break
				}
			}
			if *budget <= 0 {
				break
			}
		}
		partials = next
	}
	// partials includes base; dedupe against results head.
	out := make([]*Tree, 0, len(partials))
	seen := map[string]bool{}
	for _, p := range append(results[:0:0], partials...) {
		enc := p.Encode()
		if !seen[enc] {
			seen[enc] = true
			out = append(out, p)
		}
	}
	return out
}
