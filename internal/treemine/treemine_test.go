package treemine

import (
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	trees := []*Tree{
		T("S"),
		T("S", T("NP", T("NN")), T("VP", T("VBZ"))),
		T("NP", T("NE:PERSON"), T("weird,label"), T("par(en")),
	}
	for _, tr := range trees {
		enc := tr.Encode()
		back, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(%q): %v", enc, err)
		}
		if back.Encode() != enc {
			t.Errorf("round trip mismatch: %q -> %q", enc, back.Encode())
		}
	}
	if _, err := Decode("a(b"); err == nil {
		t.Error("unterminated encoding accepted")
	}
	if _, err := Decode(""); err == nil {
		t.Error("empty encoding accepted")
	}
}

func TestSizeCloneWalk(t *testing.T) {
	tr := T("S", T("NP", T("NN")), T("VP"))
	if tr.Size() != 4 {
		t.Errorf("Size = %d", tr.Size())
	}
	c := tr.Clone()
	c.Children[0].Label = "changed"
	if tr.Children[0].Label != "NP" {
		t.Error("Clone not deep")
	}
	count := 0
	tr.Walk(func(*Tree) { count++ })
	if count != 4 {
		t.Errorf("Walk visited %d", count)
	}
	if (*Tree)(nil).Size() != 0 {
		t.Error("nil size")
	}
}

func TestMatchInduced(t *testing.T) {
	target := T("S",
		T("NP", T("DT"), T("NN")),
		T("VP", T("VBZ")),
		T("NP", T("NNP"), T("NNP")),
	)
	cases := []struct {
		pattern *Tree
		want    bool
	}{
		{T("S"), true},
		{T("NP", T("NN")), true},           // subsequence of children
		{T("NP", T("DT"), T("NN")), true},  // exact child list
		{T("NP", T("NN"), T("DT")), false}, // order violated
		{T("S", T("NP"), T("NP")), true},   // skip middle VP
		{T("S", T("VP"), T("NP")), true},   // ordered subsequence
		{T("S", T("NP", T("NNP"), T("NNP"))), true},
		{T("VP", T("NN")), false},
		{T("X"), false},
		{T("S", T("NP", T("DT"), T("NNP"))), false}, // mixed children from different NPs
	}
	for _, c := range cases {
		if got := MatchInduced(c.pattern, target); got != c.want {
			t.Errorf("MatchInduced(%s) = %v, want %v", c.pattern.Encode(), got, c.want)
		}
	}
	if !MatchInduced(nil, target) {
		t.Error("nil pattern should match")
	}
	if MatchInduced(T("S"), nil) {
		t.Error("nil target should not match")
	}
}

func TestMatchEmbedded(t *testing.T) {
	target := T("S",
		T("NP", T("DT"), T("ADJP", T("JJ")), T("NN")),
		T("VP", T("VBZ", T("VS:captain"))),
	)
	cases := []struct {
		pattern *Tree
		want    bool
	}{
		// Embedded: NP -> JJ skips the intermediate ADJP level.
		{T("NP", T("JJ")), true},
		{T("NP", T("JJ"), T("NN")), true},
		{T("S", T("JJ"), T("VS:captain")), true}, // deep descendants, order kept
		{T("S", T("VS:captain"), T("JJ")), false},
		{T("VP", T("VS:captain")), true},
		{T("NN", T("JJ")), false},
	}
	for _, c := range cases {
		if got := MatchEmbedded(c.pattern, target); got != c.want {
			t.Errorf("MatchEmbedded(%s) = %v, want %v", c.pattern.Encode(), got, c.want)
		}
	}
	// Induced would reject the level-skipping pattern.
	if MatchInduced(T("NP", T("JJ")), target) {
		t.Error("induced match should not skip levels")
	}
}

func TestMineFindsSharedPattern(t *testing.T) {
	// Five trees sharing NP(NE:PERSON) + VP(VS:captain); two noise trees.
	db := []*Tree{}
	for i := 0; i < 5; i++ {
		db = append(db, T("S",
			T("NP", T("NNP", T("NE:PERSON"))),
			T("VP", T("VBZ", T("VS:captain"))),
			T("NP", T("NN")),
		))
	}
	db = append(db,
		T("S", T("NP", T("CD"), T("NNS"))),
		T("S", T("PP", T("IN"), T("NP", T("NN")))),
	)
	patterns := Mine(db, Options{MinSupport: 0.5})
	if len(patterns) == 0 {
		t.Fatal("no patterns mined")
	}
	// The person-verb pattern must be among them.
	found := false
	for _, p := range patterns {
		if MatchInduced(T("VP", T("VBZ", T("VS:captain"))), p.Tree) &&
			p.Support == 5 {
			found = true
		}
	}
	if !found {
		t.Error("expected captain VP pattern with support 5")
	}
	// All returned patterns meet support.
	for _, p := range patterns {
		if p.Support < 4 { // 0.5 * 7 = 3.5 -> 4
			t.Errorf("pattern %s support %d below threshold", p.Tree.Encode(), p.Support)
		}
		if p.Tree.Size() < 2 {
			t.Errorf("trivial pattern %s returned", p.Tree.Encode())
		}
	}
}

func TestMineMaximal(t *testing.T) {
	db := []*Tree{}
	for i := 0; i < 4; i++ {
		db = append(db, T("S", T("NP", T("DT"), T("NN"))))
	}
	max := MineMaximal(db, Options{MinSupport: 0.9})
	// The full tree S(NP(DT,NN)) is frequent; every sub-pattern of it is
	// too, but only the full tree is maximal.
	if len(max) != 1 {
		for _, p := range max {
			t.Logf("maximal: %s (support %d)", p.Tree.Encode(), p.Support)
		}
		t.Fatalf("maximal patterns = %d, want 1", len(max))
	}
	if max[0].Tree.Encode() != T("S", T("NP", T("DT"), T("NN"))).Encode() {
		t.Errorf("maximal = %s", max[0].Tree.Encode())
	}
}

func TestMineTransactionSupport(t *testing.T) {
	// A pattern occurring 10 times inside ONE tree counts support 1.
	big := T("S")
	for i := 0; i < 10; i++ {
		big.Children = append(big.Children, T("NP", T("NN")))
	}
	db := []*Tree{big, T("S", T("VP"))}
	patterns := Mine(db, Options{MinSupport: 0.9})
	for _, p := range patterns {
		if p.Support > 1 && p.Tree.Encode() == T("NP", T("NN")).Encode() {
			t.Errorf("transaction support violated: %d", p.Support)
		}
	}
}

func TestMineEmptyAndBudget(t *testing.T) {
	if got := Mine(nil, Options{}); got != nil {
		t.Errorf("empty DB mined %v", got)
	}
	// A very wide tree should not explode thanks to MaxPerNode.
	wide := T("S")
	for i := 0; i < 40; i++ {
		wide.Children = append(wide.Children, T("NP", T("NN"), T("JJ")))
	}
	patterns := Mine([]*Tree{wide, wide.Clone()}, Options{MinSupport: 0.9, MaxPerNode: 100})
	if len(patterns) == 0 {
		t.Error("budgeted mining found nothing")
	}
}

func TestPatternRatio(t *testing.T) {
	db := []*Tree{
		T("S", T("NP", T("NN"))),
		T("S", T("NP", T("NN"))),
		T("S", T("VP", T("VB"))),
		T("S", T("VP", T("VB"))),
	}
	patterns := Mine(db, Options{MinSupport: 0.4})
	for _, p := range patterns {
		if p.Ratio != float64(p.Support)/4 {
			t.Errorf("ratio %v inconsistent with support %d", p.Ratio, p.Support)
		}
	}
}
