// Package treemine implements frequent-subtree mining over labelled ordered
// trees. Section 5.2.1 of the VS2 paper mines the "maximal frequent
// subtrees" of the dependency/chunk trees built from holdout-corpus entries
// (citing TreeMiner [47]); the mined subtrees become the lexico-syntactic
// patterns VS2-Select searches for.
//
// The miner enumerates induced, rooted, ordered subtrees up to a bounded
// size from every database tree, counts transaction support by canonical
// encoding, keeps subtrees meeting the minimum support, and finally filters
// to the maximal ones (no frequent proper supertree). Parse trees in this
// system are small (a sentence yields tens of nodes), so bounded
// enumeration is both exact and fast where TreeMiner's scope lists would be
// needed for web-scale forests.
package treemine

import (
	"fmt"
	"strings"
)

// Tree is a labelled ordered tree.
type Tree struct {
	Label    string
	Children []*Tree
}

// T is a convenience constructor: T("NP", T("NN"), T("NE:PERSON")).
func T(label string, children ...*Tree) *Tree {
	return &Tree{Label: label, Children: children}
}

// Size returns the number of nodes in t.
func (t *Tree) Size() int {
	if t == nil {
		return 0
	}
	n := 1
	for _, c := range t.Children {
		n += c.Size()
	}
	return n
}

// Encode returns the canonical string encoding of t:
// label(child1,child2,...). Two trees are identical iff encodings match.
func (t *Tree) Encode() string {
	if t == nil {
		return ""
	}
	if len(t.Children) == 0 {
		return escape(t.Label)
	}
	parts := make([]string, len(t.Children))
	for i, c := range t.Children {
		parts[i] = c.Encode()
	}
	return escape(t.Label) + "(" + strings.Join(parts, ",") + ")"
}

func escape(label string) string {
	r := strings.NewReplacer("(", "\\(", ")", "\\)", ",", "\\,", "\\", "\\\\")
	return r.Replace(label)
}

// Decode parses a canonical encoding back into a tree.
func Decode(s string) (*Tree, error) {
	t, rest, err := decode(s)
	if err != nil {
		return nil, err
	}
	if rest != "" {
		return nil, fmt.Errorf("treemine: trailing input %q", rest)
	}
	return t, nil
}

func decode(s string) (*Tree, string, error) {
	var label strings.Builder
	i := 0
	for i < len(s) {
		c := s[i]
		if c == '\\' && i+1 < len(s) {
			label.WriteByte(s[i+1])
			i += 2
			continue
		}
		if c == '(' || c == ')' || c == ',' {
			break
		}
		label.WriteByte(c)
		i++
	}
	if label.Len() == 0 {
		return nil, s, fmt.Errorf("treemine: empty label at %q", s)
	}
	t := &Tree{Label: label.String()}
	if i < len(s) && s[i] == '(' {
		i++
		for {
			child, rest, err := decode(s[i:])
			if err != nil {
				return nil, s, err
			}
			t.Children = append(t.Children, child)
			i = len(s) - len(rest)
			if i < len(s) && s[i] == ',' {
				i++
				continue
			}
			if i < len(s) && s[i] == ')' {
				i++
				break
			}
			return nil, s, fmt.Errorf("treemine: unterminated child list")
		}
	}
	return t, s[i:], nil
}

// Clone deep-copies the tree.
func (t *Tree) Clone() *Tree {
	if t == nil {
		return nil
	}
	out := &Tree{Label: t.Label, Children: make([]*Tree, len(t.Children))}
	for i, c := range t.Children {
		out.Children[i] = c.Clone()
	}
	return out
}

// Walk visits every node in pre-order.
func (t *Tree) Walk(f func(*Tree)) {
	if t == nil {
		return
	}
	f(t)
	for _, c := range t.Children {
		c.Walk(f)
	}
}

// MatchInduced reports whether pattern occurs in target as an induced
// rooted-ordered subtree anchored anywhere: some node v of target has
// label(pattern) and pattern's children match, in order, a subsequence of
// v's children (recursively induced).
func MatchInduced(pattern, target *Tree) bool {
	if pattern == nil {
		return true
	}
	if target == nil {
		return false
	}
	found := false
	target.Walk(func(n *Tree) {
		if !found && matchAt(pattern, n) {
			found = true
		}
	})
	return found
}

// matchAt checks induced match with pattern root pinned to node n.
func matchAt(pattern, n *Tree) bool {
	if pattern.Label != n.Label {
		return false
	}
	i := 0 // index into pattern children
	for _, c := range n.Children {
		if i >= len(pattern.Children) {
			break
		}
		if matchAt(pattern.Children[i], c) {
			i++
		}
	}
	return i == len(pattern.Children)
}

// MatchEmbedded reports whether pattern occurs in target as an embedded
// rooted-ordered subtree: pattern edges may map to ancestor-descendant
// paths, preserving left-to-right order. This is the weaker containment
// TreeMiner mines; VS2-Select uses it when searching blocks so that mined
// patterns tolerate interleaving annotations.
func MatchEmbedded(pattern, target *Tree) bool {
	if pattern == nil {
		return true
	}
	if target == nil {
		return false
	}
	found := false
	target.Walk(func(n *Tree) {
		if !found && embeddedAt(pattern, n) {
			found = true
		}
	})
	return found
}

// embeddedAt checks embedded match with pattern root pinned at n: the
// pattern children must embed, in order, into disjoint subtrees drawn from
// the pre-order sequence of n's descendants.
func embeddedAt(pattern, n *Tree) bool {
	if pattern.Label != n.Label {
		return false
	}
	return embedSeq(pattern.Children, n.Children)
}

// embedSeq greedily embeds the pattern-child sequence into the forest,
// where each pattern child may match inside any forest tree, and order is
// preserved across forest trees. Uses backtracking; forests are tiny.
func embedSeq(patterns []*Tree, forest []*Tree) bool {
	if len(patterns) == 0 {
		return true
	}
	if len(forest) == 0 {
		return false
	}
	// Option 1: embed first pattern somewhere within forest[0] (pinned or
	// deeper), then the rest must embed in the remaining forest allowing
	// reuse of forest[0]'s remainder — to keep the matcher simple and sound
	// we treat subtree granularity: pattern children embedding into the
	// same forest tree must nest under distinct child branches or chain
	// down one path.
	// Case A: match patterns[0] rooted at forest[0] (descending allowed).
	if embedsWithin(patterns[0], forest[0]) && embedSeq(patterns[1:], forest[1:]) {
		return true
	}
	// Case B: split patterns between forest[0]'s children and the rest.
	for k := len(patterns); k >= 1; k-- {
		if embedSeq(patterns[:k], forest[0].Children) && embedSeq(patterns[k:], forest[1:]) {
			return true
		}
	}
	// Case C: skip forest[0].
	return embedSeq(patterns, forest[1:])
}

// embedsWithin reports whether pattern embeds with its root mapped to t or
// any descendant of t.
func embedsWithin(pattern, t *Tree) bool {
	if t == nil {
		return false
	}
	if embeddedAt(pattern, t) {
		return true
	}
	for _, c := range t.Children {
		if embedsWithin(pattern, c) {
			return true
		}
	}
	return false
}
