// Package grid implements the rasterised whitespace analysis underpinning
// VS2-Segment (Section 5.1.1 of the paper). A document region is rendered
// onto an occupancy grid; a cell not covered by any bounding box is a
// "whitespace position". A valid horizontal movement steps one cell right
// with a vertical drift of at most one cell (and symmetrically for vertical
// movements); chaining W of them across a region of width W yields a
// horizontal "cut". Because cuts may drift ±1 per hop, they are seams rather
// than straight projection lines — this is exactly what lets VS2 separate
// blocks that are not delimited by a rectangular whitespace channel, its
// stated advantage over VIPS and XY-cut.
//
// Maximal runs of consecutive cut rows (or columns) form separator bands;
// Algorithm 1 of the paper then decides which bands are true visual
// delimiters.
package grid

import (
	"fmt"
	"math"
	"sync/atomic"

	"vs2/internal/geom"
)

// IntRect is a half-open integer rectangle [X0,X1) × [Y0,Y1) in grid cells.
type IntRect struct {
	X0, Y0, X1, Y1 int
}

// W returns the width of r in cells.
func (r IntRect) W() int { return r.X1 - r.X0 }

// H returns the height of r in cells.
func (r IntRect) H() int { return r.Y1 - r.Y0 }

// Empty reports whether r covers no cells.
func (r IntRect) Empty() bool { return r.X1 <= r.X0 || r.Y1 <= r.Y0 }

func (r IntRect) String() string {
	return fmt.Sprintf("[%d,%d)x[%d,%d)", r.X0, r.X1, r.Y0, r.Y1)
}

// Grid is a binary occupancy raster of a document page (or a sub-area).
type Grid struct {
	W, H  int
	Scale float64 // cells per page unit
	occ   []bool

	// Lazily-derived acceleration tables. Built at most once per
	// mutation epoch (Set drops them); concurrent builders race
	// benignly — the arrays are pure functions of occ, so whichever
	// pointer wins the CAS is identical to the loser's.
	vruns    atomic.Pointer[[]int32]
	hruns    atomic.Pointer[[]int32]
	integral atomic.Pointer[[]int32]
}

// New returns an empty (all-whitespace) grid of w×h cells.
func New(w, h int) *Grid {
	if w < 0 {
		w = 0
	}
	if h < 0 {
		h = 0
	}
	return &Grid{W: w, H: h, Scale: 1, occ: make([]bool, w*h)}
}

// FromRects rasterises the given bounding boxes onto a grid covering bounds.
// scale controls resolution: cells per page unit (1.0 is adequate for
// point-sized pages; the paper's grid lines of Fig. 5 correspond to scale 1).
func FromRects(bounds geom.Rect, rects []geom.Rect, scale float64) *Grid {
	if scale <= 0 {
		scale = 1
	}
	w := int(math.Ceil(bounds.W * scale))
	h := int(math.Ceil(bounds.H * scale))
	g := New(w, h)
	g.Scale = scale
	for _, r := range rects {
		g.mark(bounds, r, scale)
	}
	return g
}

func (g *Grid) mark(bounds, r geom.Rect, scale float64) {
	x0 := int(math.Floor((r.X - bounds.X) * scale))
	y0 := int(math.Floor((r.Y - bounds.Y) * scale))
	x1 := int(math.Ceil((r.MaxX() - bounds.X) * scale))
	y1 := int(math.Ceil((r.MaxY() - bounds.Y) * scale))
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > g.W {
		x1 = g.W
	}
	if y1 > g.H {
		y1 = g.H
	}
	for y := y0; y < y1; y++ {
		row := g.occ[y*g.W : (y+1)*g.W]
		for x := x0; x < x1; x++ {
			row[x] = true
		}
	}
}

// Set marks the cell (x, y) occupied (no-op out of range) and drops
// any derived tables so later queries see the new occupancy.
func (g *Grid) Set(x, y int) {
	if x < 0 || y < 0 || x >= g.W || y >= g.H {
		return
	}
	g.occ[y*g.W+x] = true
	g.vruns.Store(nil)
	g.hruns.Store(nil)
	g.integral.Store(nil)
}

// Occupied reports whether the cell (x, y) is covered by some bounding box.
// Out-of-range cells count as occupied so that movements cannot leave the
// page.
func (g *Grid) Occupied(x, y int) bool {
	if x < 0 || y < 0 || x >= g.W || y >= g.H {
		return true
	}
	return g.occ[y*g.W+x]
}

// Whitespace reports whether (x, y) is a whitespace position per
// Section 5.1.1: a position not contained in any bounding box.
func (g *Grid) Whitespace(x, y int) bool { return !g.Occupied(x, y) }

// Bounds returns the full-grid region.
func (g *Grid) Bounds() IntRect { return IntRect{0, 0, g.W, g.H} }

// ToCells converts a page-space rectangle to grid cells relative to the
// page-space origin used at rasterisation time (assumed (0,0) here, as all
// callers rasterise with bounds anchored at the area origin).
func (g *Grid) ToCells(r geom.Rect) IntRect {
	out := IntRect{
		X0: int(math.Floor(r.X * g.Scale)),
		Y0: int(math.Floor(r.Y * g.Scale)),
		X1: int(math.Ceil(r.MaxX() * g.Scale)),
		Y1: int(math.Ceil(r.MaxY() * g.Scale)),
	}
	if out.X0 < 0 {
		out.X0 = 0
	}
	if out.Y0 < 0 {
		out.Y0 = 0
	}
	if out.X1 > g.W {
		out.X1 = g.W
	}
	if out.Y1 > g.H {
		out.Y1 = g.H
	}
	return out
}

// ToPage converts a grid-cell region back to page units.
func (g *Grid) ToPage(r IntRect) geom.Rect {
	return geom.Rect{
		X: float64(r.X0) / g.Scale,
		Y: float64(r.Y0) / g.Scale,
		W: float64(r.W()) / g.Scale,
		H: float64(r.H()) / g.Scale,
	}
}

// HorizontalCutRows returns, within region, every row y (absolute grid
// coordinate) from which a horizontal cut originates: a chain of valid
// 1-hop horizontal movements with drift ±1 spanning the full region width
// through whitespace. Rows are returned in increasing order.
func (g *Grid) HorizontalCutRows(region IntRect) []int {
	w, h := region.W(), region.H()
	if w <= 0 || h <= 0 {
		return nil
	}
	// reach[y] is true when a seam can continue from column x (current) at
	// row y to the right edge. Sweep right-to-left.
	reach := make([]bool, h)
	next := make([]bool, h)
	for y := 0; y < h; y++ {
		reach[y] = g.Whitespace(region.X1-1, region.Y0+y)
	}
	for x := region.X1 - 2; x >= region.X0; x-- {
		for y := 0; y < h; y++ {
			next[y] = false
			if !g.Whitespace(x, region.Y0+y) {
				continue
			}
			for dy := -1; dy <= 1; dy++ {
				ny := y + dy
				if ny >= 0 && ny < h && reach[ny] {
					next[y] = true
					break
				}
			}
		}
		reach, next = next, reach
	}
	var rows []int
	for y := 0; y < h; y++ {
		if reach[y] {
			rows = append(rows, region.Y0+y)
		}
	}
	return rows
}

// VerticalCutCols returns, within region, every column x from which a
// vertical cut originates (the transpose of HorizontalCutRows).
func (g *Grid) VerticalCutCols(region IntRect) []int {
	w, h := region.W(), region.H()
	if w <= 0 || h <= 0 {
		return nil
	}
	reach := make([]bool, w)
	next := make([]bool, w)
	for x := 0; x < w; x++ {
		reach[x] = g.Whitespace(region.X0+x, region.Y1-1)
	}
	for y := region.Y1 - 2; y >= region.Y0; y-- {
		for x := 0; x < w; x++ {
			next[x] = false
			if !g.Whitespace(region.X0+x, y) {
				continue
			}
			for dx := -1; dx <= 1; dx++ {
				nx := x + dx
				if nx >= 0 && nx < w && reach[nx] {
					next[x] = true
					break
				}
			}
		}
		reach, next = next, reach
	}
	var cols []int
	for x := 0; x < w; x++ {
		if reach[x] {
			cols = append(cols, region.X0+x)
		}
	}
	return cols
}

// ValidHorizontalMove reports whether a valid 1-hop horizontal movement
// exists from the whitespace position (x, y): per Section 5.1.1, to
// (x+1, y) when that is whitespace, or diagonally to (x+1, y±1) otherwise.
func (g *Grid) ValidHorizontalMove(x, y int) bool {
	if !g.Whitespace(x, y) {
		return false
	}
	return g.Whitespace(x+1, y) || g.Whitespace(x+1, y-1) || g.Whitespace(x+1, y+1)
}

// ValidVerticalMove reports whether a valid 1-hop vertical movement exists
// from (x, y).
func (g *Grid) ValidVerticalMove(x, y int) bool {
	if !g.Whitespace(x, y) {
		return false
	}
	return g.Whitespace(x, y+1) || g.Whitespace(x-1, y+1) || g.Whitespace(x+1, y+1)
}

// Span is an inclusive run [Start, End] of consecutive cut rows or columns.
// Its Width (cardinality of the set of consecutive valid cuts, in the
// paper's terms) is End-Start+1.
type Span struct {
	Start, End int
}

// Width returns the number of consecutive cuts in the span.
func (s Span) Width() int { return s.End - s.Start + 1 }

// Bands groups a sorted list of cut coordinates into maximal runs of
// consecutive values — the sets V_{s,i} of Fig. 5b.
func Bands(coords []int) []Span {
	var out []Span
	for i := 0; i < len(coords); {
		j := i
		for j+1 < len(coords) && coords[j+1] == coords[j]+1 {
			j++
		}
		out = append(out, Span{Start: coords[i], End: coords[j]})
		i = j + 1
	}
	return out
}

// BottleneckWidth returns the effective width of a separator band: the
// minimum, over the rows (for a horizontal band: columns) the seams must
// traverse, of the number of whitespace cells reachable from the band's
// origins under drift-±1 movement. The raw origin span of a band
// overstates its width when open whitespace funnels into a narrow gap —
// many origins, one bottleneck — and it is the bottleneck that determines
// whether two areas are visually separated.
func (g *Grid) BottleneckWidth(region IntRect, band Span, horizontal bool) int {
	if horizontal {
		// Band of cut rows; seams run left to right. Track reachable rows.
		h := region.H()
		reach := make([]bool, h)
		next := make([]bool, h)
		for y := band.Start; y <= band.End; y++ {
			if y >= region.Y0 && y < region.Y1 {
				reach[y-region.Y0] = g.Whitespace(region.X0, y)
			}
		}
		bottleneck := count(reach)
		for x := region.X0 + 1; x < region.X1; x++ {
			for y := 0; y < h; y++ {
				next[y] = false
				if !g.Whitespace(x, region.Y0+y) {
					continue
				}
				for dy := -1; dy <= 1; dy++ {
					py := y + dy
					if py >= 0 && py < h && reach[py] {
						next[y] = true
						break
					}
				}
			}
			reach, next = next, reach
			if c := count(reach); c < bottleneck {
				bottleneck = c
			}
			if bottleneck == 0 {
				return 0
			}
		}
		return bottleneck
	}
	// Band of cut columns; seams run top to bottom. Track reachable columns.
	w := region.W()
	reach := make([]bool, w)
	next := make([]bool, w)
	for x := band.Start; x <= band.End; x++ {
		if x >= region.X0 && x < region.X1 {
			reach[x-region.X0] = g.Whitespace(x, region.Y0)
		}
	}
	bottleneck := count(reach)
	for y := region.Y0 + 1; y < region.Y1; y++ {
		for x := 0; x < w; x++ {
			next[x] = false
			if !g.Whitespace(region.X0+x, y) {
				continue
			}
			for dx := -1; dx <= 1; dx++ {
				px := x + dx
				if px >= 0 && px < w && reach[px] {
					next[x] = true
					break
				}
			}
		}
		reach, next = next, reach
		if c := count(reach); c < bottleneck {
			bottleneck = c
		}
		if bottleneck == 0 {
			return 0
		}
	}
	return bottleneck
}

func count(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// VRun returns the length of the maximal vertical whitespace run
// through (x, y): the number of consecutive whitespace cells in column
// x whose run contains row y. Occupied or out-of-range cells yield 0.
// The per-column run table is built lazily in one O(W·H) sweep and
// answers every subsequent query in O(1) — this replaces the O(H)
// column scan the seam-clearance pass used to repeat per seam cell.
func (g *Grid) VRun(x, y int) int {
	if x < 0 || y < 0 || x >= g.W || y >= g.H {
		return 0
	}
	return int((*g.loadVRuns())[y*g.W+x])
}

// HRun returns the length of the maximal horizontal whitespace run
// through (x, y) (the transpose of VRun).
func (g *Grid) HRun(x, y int) int {
	if x < 0 || y < 0 || x >= g.W || y >= g.H {
		return 0
	}
	return int((*g.loadHRuns())[y*g.W+x])
}

func (g *Grid) loadVRuns() *[]int32 {
	if t := g.vruns.Load(); t != nil {
		return t
	}
	t := g.buildRuns(true)
	if g.vruns.CompareAndSwap(nil, t) {
		return t
	}
	return g.vruns.Load()
}

func (g *Grid) loadHRuns() *[]int32 {
	if t := g.hruns.Load(); t != nil {
		return t
	}
	t := g.buildRuns(false)
	if g.hruns.CompareAndSwap(nil, t) {
		return t
	}
	return g.hruns.Load()
}

// buildRuns computes, for every cell, the length of the maximal
// contiguous whitespace run containing it along one axis: a prefix
// sweep measures each run, a suffix sweep stamps the total back onto
// every cell of the run.
func (g *Grid) buildRuns(vertical bool) *[]int32 {
	runs := make([]int32, len(g.occ))
	if vertical {
		for x := 0; x < g.W; x++ {
			for y0 := 0; y0 < g.H; {
				if g.occ[y0*g.W+x] {
					y0++
					continue
				}
				y1 := y0
				for y1 < g.H && !g.occ[y1*g.W+x] {
					y1++
				}
				n := int32(y1 - y0)
				for y := y0; y < y1; y++ {
					runs[y*g.W+x] = n
				}
				y0 = y1
			}
		}
	} else {
		for y := 0; y < g.H; y++ {
			row := g.occ[y*g.W : (y+1)*g.W]
			out := runs[y*g.W : (y+1)*g.W]
			for x0 := 0; x0 < g.W; {
				if row[x0] {
					x0++
					continue
				}
				x1 := x0
				for x1 < g.W && !row[x1] {
					x1++
				}
				n := int32(x1 - x0)
				for x := x0; x < x1; x++ {
					out[x] = n
				}
				x0 = x1
			}
		}
	}
	return &runs
}

// loadIntegral returns the (W+1)×(H+1) summed-area table of occupancy,
// building it lazily: integral[y][x] counts occupied cells in
// [0,x)×[0,y).
func (g *Grid) loadIntegral() *[]int32 {
	if t := g.integral.Load(); t != nil {
		return t
	}
	stride := g.W + 1
	sums := make([]int32, stride*(g.H+1))
	for y := 0; y < g.H; y++ {
		var rowSum int32
		for x := 0; x < g.W; x++ {
			if g.occ[y*g.W+x] {
				rowSum++
			}
			sums[(y+1)*stride+x+1] = sums[y*stride+x+1] + rowSum
		}
	}
	if g.integral.CompareAndSwap(nil, &sums) {
		return &sums
	}
	return g.integral.Load()
}

// OccupiedCount returns the number of occupied cells within region in
// O(1) via the integral image. Out-of-range cells count as occupied,
// matching Occupied.
func (g *Grid) OccupiedCount(region IntRect) int {
	if region.Empty() {
		return 0
	}
	in := region
	if in.X0 < 0 {
		in.X0 = 0
	}
	if in.Y0 < 0 {
		in.Y0 = 0
	}
	if in.X1 > g.W {
		in.X1 = g.W
	}
	if in.Y1 > g.H {
		in.Y1 = g.H
	}
	inside := 0
	if !in.Empty() {
		s := *g.loadIntegral()
		stride := g.W + 1
		inside = int(s[in.Y1*stride+in.X1] - s[in.Y0*stride+in.X1] -
			s[in.Y1*stride+in.X0] + s[in.Y0*stride+in.X0])
		return inside + region.W()*region.H() - in.W()*in.H()
	}
	return region.W() * region.H()
}

// Coverage returns the fraction of cells occupied within region.
func (g *Grid) Coverage(region IntRect) float64 {
	total := region.W() * region.H()
	if total <= 0 {
		return 0
	}
	return float64(g.OccupiedCount(region)) / float64(total)
}
