package grid

import (
	"math/rand"
	"testing"
)

// naiveVRun is the reference O(H) column scan the run table replaced:
// 1 + whitespace cells above + whitespace cells below.
func naiveVRun(g *Grid, x, y int) int {
	if !g.Whitespace(x, y) {
		return 0
	}
	n := 1
	for yy := y - 1; g.Whitespace(x, yy); yy-- {
		n++
	}
	for yy := y + 1; g.Whitespace(x, yy); yy++ {
		n++
	}
	return n
}

func naiveHRun(g *Grid, x, y int) int {
	if !g.Whitespace(x, y) {
		return 0
	}
	n := 1
	for xx := x - 1; g.Whitespace(xx, y); xx-- {
		n++
	}
	for xx := x + 1; g.Whitespace(xx, y); xx++ {
		n++
	}
	return n
}

func naiveOccupiedCount(g *Grid, region IntRect) int {
	n := 0
	for y := region.Y0; y < region.Y1; y++ {
		for x := region.X0; x < region.X1; x++ {
			if g.Occupied(x, y) {
				n++
			}
		}
	}
	return n
}

func randomGrid(rng *rand.Rand, w, h int) *Grid {
	g := New(w, h)
	for i := range g.occ {
		g.occ[i] = rng.Intn(3) == 0
	}
	return g
}

func TestRunTablesMatchNaiveScans(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := [][2]int{{1, 1}, {1, 7}, {7, 1}, {5, 5}, {17, 9}, {40, 23}}
	for _, sh := range shapes {
		for trial := 0; trial < 8; trial++ {
			g := randomGrid(rng, sh[0], sh[1])
			for y := -1; y <= g.H; y++ {
				for x := -1; x <= g.W; x++ {
					if got, want := g.VRun(x, y), naiveVRun(g, x, y); got != want {
						t.Fatalf("%dx%d trial %d: VRun(%d,%d) = %d, want %d", sh[0], sh[1], trial, x, y, got, want)
					}
					if got, want := g.HRun(x, y), naiveHRun(g, x, y); got != want {
						t.Fatalf("%dx%d trial %d: HRun(%d,%d) = %d, want %d", sh[0], sh[1], trial, x, y, got, want)
					}
				}
			}
		}
	}
}

func TestRunTablesDroppedOnSet(t *testing.T) {
	g := New(4, 4)
	if got := g.VRun(1, 1); got != 4 {
		t.Fatalf("VRun on empty 4x4 = %d, want 4", got)
	}
	g.Set(1, 2)
	if got := g.VRun(1, 1); got != 2 {
		t.Fatalf("VRun after Set(1,2) = %d, want 2 (stale table?)", got)
	}
	if got := g.HRun(2, 2); got != 2 {
		t.Fatalf("HRun after Set(1,2) = %d, want 2", got)
	}
	if got := g.OccupiedCount(g.Bounds()); got != 1 {
		t.Fatalf("OccupiedCount after Set = %d, want 1", got)
	}
}

func TestOccupiedCountMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		g := randomGrid(rng, 1+rng.Intn(25), 1+rng.Intn(25))
		regions := []IntRect{
			g.Bounds(),
			{},
			{X0: -3, Y0: -2, X1: g.W + 4, Y1: g.H + 1}, // spills off-grid: out-of-range counts occupied
			{X0: -5, Y0: -5, X1: -1, Y1: -1},           // fully off-grid
			{X0: g.W / 2, Y0: g.H / 2, X1: g.W, Y1: g.H},
			{X0: 1, Y0: 1, X1: 1 + rng.Intn(g.W), Y1: 1 + rng.Intn(g.H)},
		}
		for _, r := range regions {
			if got, want := g.OccupiedCount(r), naiveOccupiedCount(g, r); got != want {
				t.Fatalf("trial %d: OccupiedCount(%v) = %d, want %d", trial, r, got, want)
			}
			wantCov := 0.0
			if total := r.W() * r.H(); total > 0 {
				wantCov = float64(naiveOccupiedCount(g, r)) / float64(total)
			}
			if got := g.Coverage(r); got != wantCov {
				t.Fatalf("trial %d: Coverage(%v) = %v, want %v", trial, r, got, wantCov)
			}
		}
	}
}
