package grid

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vs2/internal/geom"
)

// twoColumnGrid builds a 20x10 grid with two boxes separated by a clean
// 4-cell vertical gutter at columns 8..11.
func twoColumnGrid() *Grid {
	return FromRects(
		geom.Rect{W: 20, H: 10},
		[]geom.Rect{
			{X: 0, Y: 0, W: 8, H: 10},
			{X: 12, Y: 0, W: 8, H: 10},
		},
		1,
	)
}

// twoRowGrid builds a 10x20 grid with two boxes separated by a horizontal
// gutter at rows 8..11.
func twoRowGrid() *Grid {
	return FromRects(
		geom.Rect{W: 10, H: 20},
		[]geom.Rect{
			{X: 0, Y: 0, W: 10, H: 8},
			{X: 0, Y: 12, W: 10, H: 8},
		},
		1,
	)
}

func TestOccupancy(t *testing.T) {
	g := twoColumnGrid()
	if !g.Occupied(0, 0) || !g.Occupied(7, 9) {
		t.Error("left box cells should be occupied")
	}
	if g.Occupied(9, 5) {
		t.Error("gutter cell should be whitespace")
	}
	if !g.Whitespace(10, 0) {
		t.Error("gutter top should be whitespace")
	}
	// Out of range counts as occupied.
	if !g.Occupied(-1, 0) || !g.Occupied(0, -1) || !g.Occupied(20, 0) || !g.Occupied(0, 10) {
		t.Error("out-of-range cells must be occupied")
	}
}

func TestVerticalCutThroughGutter(t *testing.T) {
	g := twoColumnGrid()
	cols := g.VerticalCutCols(g.Bounds())
	if len(cols) != 4 {
		t.Fatalf("vertical cut cols = %v, want 4 gutter columns", cols)
	}
	for i, c := range cols {
		if c != 8+i {
			t.Errorf("col %d = %d, want %d", i, c, 8+i)
		}
	}
	// No horizontal cut exists: both boxes span full height.
	if rows := g.HorizontalCutRows(g.Bounds()); len(rows) != 0 {
		t.Errorf("unexpected horizontal cuts %v", rows)
	}
}

func TestHorizontalCutThroughGutter(t *testing.T) {
	g := twoRowGrid()
	rows := g.HorizontalCutRows(g.Bounds())
	if len(rows) != 4 {
		t.Fatalf("horizontal cut rows = %v", rows)
	}
	for i, r := range rows {
		if r != 8+i {
			t.Errorf("row %d = %d, want %d", i, r, 8+i)
		}
	}
	if cols := g.VerticalCutCols(g.Bounds()); len(cols) != 0 {
		t.Errorf("unexpected vertical cuts %v", cols)
	}
}

// A staggered layout: no straight horizontal line is clear, but a drifting
// seam can snake between the boxes. XY-cut would fail here; the seam model
// must succeed.
func TestSeamDriftsAroundStagger(t *testing.T) {
	//   rows 0-4: box at x 0..10
	//   rows 6-10: box at x 4..14  (overlaps rows? no: distinct y ranges)
	// The whitespace between them is a staircase: at x<4 the gap is rows 5..10+,
	// at x>10 the gap is rows 0..5. A straight row is blocked either left or
	// right, but a drifting seam passes.
	g := FromRects(geom.Rect{W: 15, H: 12}, []geom.Rect{
		{X: 0, Y: 0, W: 11, H: 5},
		{X: 4, Y: 6, W: 11, H: 5},
	}, 1)
	// Straight-line check: row 5 must be fully whitespace? It is (y=5 between
	// 5 and 6). Tighten: shift second box up to y=5 so no straight row exists.
	g2 := FromRects(geom.Rect{W: 15, H: 12}, []geom.Rect{
		{X: 0, Y: 0, W: 11, H: 5}, // occupies rows 0..4, cols 0..10
		{X: 4, Y: 5, W: 11, H: 5}, // occupies rows 5..9, cols 4..14
	}, 1)
	// Verify no straight clear row through the occupied band (rows 0..9).
	for y := 0; y < 10; y++ {
		clear := true
		for x := 0; x < 15; x++ {
			if g2.Occupied(x, y) {
				clear = false
				break
			}
		}
		if clear {
			t.Fatalf("test layout broken: row %d is straight-clear", y)
		}
	}
	rows := g2.HorizontalCutRows(g2.Bounds())
	// Column 4 is occupied for all rows 0..9, so any seam must be at row >= 10
	// by the time it reaches column 4. With drift limited to ±1 per hop, a
	// seam starting at (0, y) can be at row at most y+4 when it reaches
	// column 4 — so origins y >= 6 succeed (6+4 = 10) and origins y <= 5 are
	// blocked. Rows 6..9 have NO straight clear line (box2 spans columns
	// 4..14 there), so their seams demonstrate the drift advantage over
	// projection-based cuts.
	got := map[int]bool{}
	for _, r := range rows {
		got[r] = true
	}
	for y := 0; y <= 5; y++ {
		if got[y] {
			t.Errorf("unexpected seam from blocked origin row %d", y)
		}
	}
	for y := 6; y <= 11; y++ {
		if !got[y] {
			t.Errorf("missing drifting seam from row %d", y)
		}
	}
	_ = g
}

// A gentle staircase where a drifting seam CAN pass although no straight row
// can: boxes shifted by one row each, with a one-cell-per-column staircase
// gap.
func TestSeamPassesGentleStaircase(t *testing.T) {
	g := New(6, 8)
	// Occupy: in column x, rows 0..(2+x-1) are the top block and rows
	// (4+x)..7 the bottom block, leaving a 2-cell staircase gap at rows
	// 2+x..3+x. The gap descends 1 row per column: drift ±1 handles it.
	for x := 0; x < 6; x++ {
		topEnd := 2 + x
		if topEnd > 8 {
			topEnd = 8
		}
		for y := 0; y < topEnd && y < 8; y++ {
			g.Set(x, y)
		}
		for y := 4 + x; y < 8; y++ {
			g.Set(x, y)
		}
	}
	// No straight clear row:
	for y := 0; y < 8; y++ {
		clear := true
		for x := 0; x < 6; x++ {
			if g.Occupied(x, y) {
				clear = false
				break
			}
		}
		if clear {
			t.Fatalf("layout broken: straight row %d clear", y)
		}
	}
	rows := g.HorizontalCutRows(g.Bounds())
	if len(rows) == 0 {
		t.Fatal("drifting seam should pass the staircase")
	}
	// The seam must originate in the staircase gap at column 0 (rows 2..3).
	for _, r := range rows {
		if r != 2 && r != 3 {
			t.Errorf("seam origin row %d, want 2 or 3", r)
		}
	}
}

func TestValidMoves(t *testing.T) {
	g := New(5, 5)
	g.Set(1, 2)                       // block straight right from (0,2)
	if !g.ValidHorizontalMove(0, 2) { // can drift to (1,1) or (1,3)
		t.Error("drift move should be valid")
	}
	g.Set(1, 1)
	g.Set(1, 3)
	if g.ValidHorizontalMove(0, 2) {
		t.Error("fully blocked move reported valid")
	}
	if g.ValidHorizontalMove(1, 2) {
		t.Error("move from occupied cell must be invalid")
	}
	if !g.ValidVerticalMove(0, 0) {
		t.Error("vertical move in open space should be valid")
	}
	g2 := New(3, 3)
	g2.Set(0, 1)
	g2.Set(1, 1)
	if g2.ValidVerticalMove(0, 0) {
		t.Error("vertical move blocked straight+diagonals should be invalid")
	}
}

func TestBands(t *testing.T) {
	bands := Bands([]int{2, 3, 4, 8, 11, 12})
	want := []Span{{2, 4}, {8, 8}, {11, 12}}
	if len(bands) != len(want) {
		t.Fatalf("bands = %v", bands)
	}
	for i := range want {
		if bands[i] != want[i] {
			t.Errorf("band %d = %v, want %v", i, bands[i], want[i])
		}
	}
	if bands[0].Width() != 3 || bands[1].Width() != 1 {
		t.Error("band widths wrong")
	}
	if got := Bands(nil); got != nil {
		t.Errorf("empty bands = %v", got)
	}
}

func TestCellConversion(t *testing.T) {
	g := FromRects(geom.Rect{W: 100, H: 50}, nil, 2)
	if g.W != 200 || g.H != 100 {
		t.Fatalf("grid size %dx%d", g.W, g.H)
	}
	cells := g.ToCells(geom.Rect{X: 10, Y: 5, W: 20, H: 10})
	if cells != (IntRect{20, 10, 60, 30}) {
		t.Errorf("ToCells = %v", cells)
	}
	back := g.ToPage(cells)
	if back != (geom.Rect{X: 10, Y: 5, W: 20, H: 10}) {
		t.Errorf("ToPage = %v", back)
	}
	// Clamping.
	big := g.ToCells(geom.Rect{X: -10, Y: -10, W: 1000, H: 1000})
	if big != g.Bounds() {
		t.Errorf("clamped = %v", big)
	}
}

func TestCoverage(t *testing.T) {
	g := twoColumnGrid()
	cov := g.Coverage(g.Bounds())
	if cov != 0.8 { // 16 of 20 columns fully occupied
		t.Errorf("coverage = %v", cov)
	}
	if g.Coverage(IntRect{}) != 0 {
		t.Error("empty region coverage should be 0")
	}
}

// Property: every returned cut row actually admits a seam — verified by
// replaying the DP with an explicit path search.
func TestCutRowsAdmitPaths(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := New(16, 12)
		for i := 0; i < 10; i++ {
			x, y := r.Intn(14), r.Intn(10)
			w, h := 1+r.Intn(4), 1+r.Intn(3)
			for yy := y; yy < y+h && yy < 12; yy++ {
				for xx := x; xx < x+w && xx < 16; xx++ {
					g.Set(xx, yy)
				}
			}
		}
		rows := g.HorizontalCutRows(g.Bounds())
		cutSet := map[int]bool{}
		for _, y := range rows {
			cutSet[y] = true
		}
		// Exhaustive check via forward BFS from each starting row.
		for y0 := 0; y0 < 12; y0++ {
			has := seamExists(g, y0)
			if has != cutSet[y0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// seamExists does an explicit forward search for a drift-±1 whitespace seam
// from (0, y0) to the right edge.
func seamExists(g *Grid, y0 int) bool {
	if !g.Whitespace(0, y0) {
		return false
	}
	frontier := map[int]bool{y0: true}
	for x := 1; x < g.W; x++ {
		next := map[int]bool{}
		for y := range frontier {
			for dy := -1; dy <= 1; dy++ {
				ny := y + dy
				if g.Whitespace(x, ny) {
					next[ny] = true
				}
			}
		}
		if len(next) == 0 {
			return false
		}
		frontier = next
	}
	return true
}

func TestIntRectHelpers(t *testing.T) {
	r := IntRect{1, 2, 5, 9}
	if r.W() != 4 || r.H() != 7 || r.Empty() {
		t.Errorf("IntRect helpers wrong: %v", r)
	}
	if !(IntRect{3, 3, 3, 9}).Empty() {
		t.Error("zero-width rect should be empty")
	}
	if (IntRect{}).String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestBottleneckWidth(t *testing.T) {
	// Open whitespace funnelling into a 5-cell gap: origins fan wide but
	// the bottleneck is 5.
	g := New(20, 12)
	// Top block: rows 0..3, cols 0..9  (whitespace right of it: cols 10..19)
	for y := 0; y < 4; y++ {
		for x := 0; x < 10; x++ {
			g.Set(x, y)
		}
	}
	// Bottom blocks: rows 8..11 cols 0..4 and cols 10..19, leaving gap 5..9.
	for y := 8; y < 12; y++ {
		for x := 0; x < 5; x++ {
			g.Set(x, y)
		}
		for x := 10; x < 20; x++ {
			g.Set(x, y)
		}
	}
	cols := g.VerticalCutCols(g.Bounds())
	bands := Bands(cols)
	if len(bands) == 0 {
		t.Fatal("no vertical bands found")
	}
	// Find the band covering the funnel region.
	var wide Span
	for _, b := range bands {
		if b.Width() > wide.Width() {
			wide = b
		}
	}
	if wide.Width() <= 5 {
		t.Skipf("origin fan did not widen (band %v); bottleneck untestable", wide)
	}
	bn := g.BottleneckWidth(g.Bounds(), wide, false)
	if bn != 5 {
		t.Errorf("bottleneck = %d, want 5 (band %v)", bn, wide)
	}
}

func TestBottleneckWidthHorizontal(t *testing.T) {
	g := FromRects(geom.Rect{W: 10, H: 20}, []geom.Rect{
		{X: 0, Y: 0, W: 10, H: 8},
		{X: 0, Y: 12, W: 10, H: 8},
	}, 1)
	rows := g.HorizontalCutRows(g.Bounds())
	bands := Bands(rows)
	if len(bands) != 1 {
		t.Fatalf("bands = %v", bands)
	}
	bn := g.BottleneckWidth(g.Bounds(), bands[0], true)
	if bn != 4 {
		t.Errorf("clean gutter bottleneck = %d, want 4", bn)
	}
}

func TestBottleneckBlockedBandIsZero(t *testing.T) {
	g := New(10, 10)
	for x := 0; x < 10; x++ {
		g.Set(x, 5) // a full wall
	}
	bn := g.BottleneckWidth(g.Bounds(), Span{Start: 0, End: 9}, false)
	if bn != 0 {
		t.Errorf("walled bottleneck = %d, want 0", bn)
	}
}
