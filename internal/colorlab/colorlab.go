// Package colorlab implements sRGB ↔ CIE-L*a*b* conversion and perceptual
// colour distance. The paper's layout model (Section 4.1.1) stores the
// "average color distribution (in LAB colorspace)" of every textual element,
// and Table 1 lists colour among the low-level features used by the
// clustering phase of VS2-Segment. Using L*a*b* instead of raw RGB makes the
// Euclidean distance between two colours approximate the perceptual
// difference a human reader would see between, say, a highlighted header and
// body text.
package colorlab

import "math"

// RGB is an 8-bit-per-channel sRGB colour.
type RGB struct {
	R, G, B uint8
}

// LAB is a colour in the CIE-L*a*b* space under the D65 reference white.
// L ranges over [0,100]; a and b are unbounded in principle but stay within
// roughly [-128, 128] for sRGB inputs.
type LAB struct {
	L, A, B float64
}

// D65 reference white point (2° observer).
const (
	xn = 0.95047
	yn = 1.00000
	zn = 1.08883
)

// linearize converts an 8-bit sRGB channel to linear light.
func linearize(c uint8) float64 {
	v := float64(c) / 255.0
	if v <= 0.04045 {
		return v / 12.92
	}
	return math.Pow((v+0.055)/1.055, 2.4)
}

// delinearize converts linear light back to an 8-bit sRGB channel.
func delinearize(v float64) uint8 {
	var s float64
	if v <= 0.0031308 {
		s = v * 12.92
	} else {
		s = 1.055*math.Pow(v, 1/2.4) - 0.055
	}
	s = math.Round(s * 255)
	if s < 0 {
		s = 0
	}
	if s > 255 {
		s = 255
	}
	return uint8(s)
}

func labF(t float64) float64 {
	const delta = 6.0 / 29.0
	if t > delta*delta*delta {
		return math.Cbrt(t)
	}
	return t/(3*delta*delta) + 4.0/29.0
}

func labFInv(t float64) float64 {
	const delta = 6.0 / 29.0
	if t > delta {
		return t * t * t
	}
	return 3 * delta * delta * (t - 4.0/29.0)
}

// ToLAB converts an sRGB colour to CIE-L*a*b*.
func ToLAB(c RGB) LAB {
	r := linearize(c.R)
	g := linearize(c.G)
	b := linearize(c.B)

	// sRGB → XYZ (D65).
	x := 0.4124564*r + 0.3575761*g + 0.1804375*b
	y := 0.2126729*r + 0.7151522*g + 0.0721750*b
	z := 0.0193339*r + 0.1191920*g + 0.9503041*b

	fx := labF(x / xn)
	fy := labF(y / yn)
	fz := labF(z / zn)
	return LAB{
		L: 116*fy - 16,
		A: 500 * (fx - fy),
		B: 200 * (fy - fz),
	}
}

// ToRGB converts a CIE-L*a*b* colour back to sRGB, clamping out-of-gamut
// channels.
func ToRGB(c LAB) RGB {
	fy := (c.L + 16) / 116
	fx := fy + c.A/500
	fz := fy - c.B/200

	x := xn * labFInv(fx)
	y := yn * labFInv(fy)
	z := zn * labFInv(fz)

	r := 3.2404542*x - 1.5371385*y - 0.4985314*z
	g := -0.9692660*x + 1.8760108*y + 0.0415560*z
	b := 0.0556434*x - 0.2040259*y + 1.0572252*z
	return RGB{R: delinearize(r), G: delinearize(g), B: delinearize(b)}
}

// DeltaE returns the CIE76 colour difference between two LAB colours: the
// Euclidean distance in L*a*b* space. A ΔE near 2.3 corresponds to a "just
// noticeable difference" for human observers.
func DeltaE(a, b LAB) float64 {
	dl := a.L - b.L
	da := a.A - b.A
	db := a.B - b.B
	return math.Sqrt(dl*dl + da*da + db*db)
}

// Mix returns the LAB colour of the average of the two sRGB colours in
// linear-light space, weighted w toward a (w in [0,1]). Dataset generators
// use it to blend text colour onto backgrounds.
func Mix(a, b RGB, w float64) RGB {
	if w < 0 {
		w = 0
	}
	if w > 1 {
		w = 1
	}
	lerp := func(x, y uint8) uint8 {
		lv := linearize(x)*w + linearize(y)*(1-w)
		return delinearize(lv)
	}
	return RGB{R: lerp(a.R, b.R), G: lerp(a.G, b.G), B: lerp(a.B, b.B)}
}

// Common document colours used by the dataset generators and tests.
var (
	Black     = RGB{0, 0, 0}
	White     = RGB{255, 255, 255}
	Red       = RGB{200, 30, 30}
	Blue      = RGB{30, 60, 180}
	Green     = RGB{20, 140, 60}
	Gray      = RGB{120, 120, 120}
	DarkNavy  = RGB{16, 24, 64}
	Gold      = RGB{212, 175, 55}
	Cream     = RGB{250, 245, 230}
	Burgundy  = RGB{128, 0, 32}
	TealPress = RGB{0, 128, 128}
)
