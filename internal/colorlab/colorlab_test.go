package colorlab

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKnownConversions(t *testing.T) {
	cases := []struct {
		in   RGB
		want LAB
		tol  float64
	}{
		{RGB{255, 255, 255}, LAB{100, 0, 0}, 0.5},
		{RGB{0, 0, 0}, LAB{0, 0, 0}, 0.5},
		{RGB{255, 0, 0}, LAB{53.24, 80.09, 67.20}, 1.0},
		{RGB{0, 255, 0}, LAB{87.73, -86.18, 83.18}, 1.0},
		{RGB{0, 0, 255}, LAB{32.30, 79.19, -107.86}, 1.0},
	}
	for _, c := range cases {
		got := ToLAB(c.in)
		if math.Abs(got.L-c.want.L) > c.tol ||
			math.Abs(got.A-c.want.A) > c.tol ||
			math.Abs(got.B-c.want.B) > c.tol {
			t.Errorf("ToLAB(%v) = %+v, want ≈ %+v", c.in, got, c.want)
		}
	}
}

// Property: round-trip through LAB recovers the original sRGB colour.
func TestRoundTrip(t *testing.T) {
	f := func(r, g, b uint8) bool {
		in := RGB{r, g, b}
		out := ToRGB(ToLAB(in))
		// Allow ±1 per channel for float rounding.
		d := func(a, b uint8) int {
			x := int(a) - int(b)
			if x < 0 {
				x = -x
			}
			return x
		}
		return d(in.R, out.R) <= 1 && d(in.G, out.G) <= 1 && d(in.B, out.B) <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDeltaE(t *testing.T) {
	if got := DeltaE(ToLAB(Black), ToLAB(Black)); got != 0 {
		t.Errorf("self distance = %v", got)
	}
	bw := DeltaE(ToLAB(Black), ToLAB(White))
	if math.Abs(bw-100) > 0.5 {
		t.Errorf("black-white ΔE = %v, want ≈ 100", bw)
	}
	// Red is farther from green than from burgundy.
	rg := DeltaE(ToLAB(Red), ToLAB(Green))
	rb := DeltaE(ToLAB(Red), ToLAB(Burgundy))
	if rg <= rb {
		t.Errorf("expected ΔE(red,green)=%v > ΔE(red,burgundy)=%v", rg, rb)
	}
}

// Property: ΔE is a symmetric, non-negative pseudo-metric obeying the
// triangle inequality (it is a Euclidean distance).
func TestDeltaEMetric(t *testing.T) {
	f := func(r1, g1, b1, r2, g2, b2, r3, g3, b3 uint8) bool {
		a := ToLAB(RGB{r1, g1, b1})
		b := ToLAB(RGB{r2, g2, b2})
		c := ToLAB(RGB{r3, g3, b3})
		if DeltaE(a, b) < 0 || math.Abs(DeltaE(a, b)-DeltaE(b, a)) > 1e-9 {
			return false
		}
		return DeltaE(a, c) <= DeltaE(a, b)+DeltaE(b, c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMix(t *testing.T) {
	if got := Mix(Black, White, 1); got != Black {
		t.Errorf("Mix w=1 = %v, want black", got)
	}
	if got := Mix(Black, White, 0); got != White {
		t.Errorf("Mix w=0 = %v, want white", got)
	}
	mid := Mix(Black, White, 0.5)
	if mid.R != mid.G || mid.G != mid.B {
		t.Errorf("mid grey should be neutral: %v", mid)
	}
	// Clamping of out-of-range weights.
	if got := Mix(Black, White, 2); got != Black {
		t.Errorf("Mix w=2 should clamp to 1, got %v", got)
	}
	if got := Mix(Black, White, -1); got != White {
		t.Errorf("Mix w=-1 should clamp to 0, got %v", got)
	}
}
