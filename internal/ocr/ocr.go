// Package ocr simulates the document-processing front end the paper builds
// on: Tesseract [41] transcription plus its hierarchical layout analysis.
// Two roles:
//
//  1. Noise channel. Real pipelines see OCR errors — the paper's error
//     analysis attributes most segmentation failures to "low-quality
//     transcription inhibiting semantic merging" and Fig. 3 shows the
//     resulting NER false positives. The channel injects calibrated
//     character substitutions, case errors, word merges/splits/drops and
//     bounding-box jitter, with severity set by the document's capture
//     mode (born-digital PDFs are nearly clean; mobile captures are not).
//
//  2. Layout analysis (baseline A5 of Table 5). Tesseract groups words
//     into lines by vertical overlap and lines into paragraphs by leading;
//     ocr.LayoutBlocks reproduces that behaviour for the baseline
//     comparison.
package ocr

import (
	"math/rand"
	"sort"
	"strings"

	"vs2/internal/doc"
	"vs2/internal/geom"
)

// NoiseLevel calibrates the channel.
type NoiseLevel struct {
	// CharSub is the probability of substituting each character.
	CharSub float64
	// CharDrop is the probability of deleting each character.
	CharDrop float64
	// CaseFlip is the probability of flipping a letter's case.
	CaseFlip float64
	// WordDrop is the probability of losing a word entirely.
	WordDrop float64
	// WordMerge is the probability of merging a word with its successor on
	// the same line (losing the whitespace between them).
	WordMerge float64
	// WordSplit is the probability of splitting a word in two.
	WordSplit float64
	// BoxJitter is the maximum bounding-box displacement in fractions of
	// the element height.
	BoxJitter float64
	// Rotation is the maximum page rotation in radians applied to mobile
	// captures (the paper claims robustness up to 45°).
	Rotation float64
}

// Calibrated noise levels per capture mode.
var (
	// Clean is a perfect transcription (born-digital documents).
	Clean = NoiseLevel{}
	// Scan matches flatbed scans of printed forms (dataset D1).
	Scan = NoiseLevel{
		CharSub: 0.001, CharDrop: 0.0005, CaseFlip: 0.003,
		WordDrop: 0.0005, WordMerge: 0.001, WordSplit: 0.001,
		BoxJitter: 0.03,
	}
	// Mobile matches hand-held captures of posters and flyers (the 1375
	// mobile captures of dataset D2).
	Mobile = NoiseLevel{
		CharSub: 0.02, CharDrop: 0.01, CaseFlip: 0.02,
		WordDrop: 0.01, WordMerge: 0.02, WordSplit: 0.015,
		BoxJitter: 0.15, Rotation: 0.1,
	}
	// Harsh models the worst mobile captures; used by noise-sensitivity
	// ablations.
	Harsh = NoiseLevel{
		CharSub: 0.06, CharDrop: 0.03, CaseFlip: 0.05,
		WordDrop: 0.04, WordMerge: 0.05, WordSplit: 0.04,
		BoxJitter: 0.3, Rotation: 0.12,
	}
)

// ForCapture returns the calibrated noise for a capture mode.
func ForCapture(c doc.Capture) NoiseLevel {
	switch c {
	case doc.CaptureMobile:
		return Mobile
	case doc.CaptureScan:
		return Scan
	default:
		return Clean
	}
}

// confusions lists visually plausible OCR character confusions.
var confusions = map[rune][]rune{
	'o': {'0', 'c', 'e'}, '0': {'o', 'O', 'D'},
	'l': {'1', 'i', '|'}, '1': {'l', 'i', '7'},
	'i': {'l', '1', 'j'}, 'e': {'c', 'o', 'a'},
	'a': {'o', 'e', 's'}, 's': {'5', 'a', 'z'},
	'5': {'s', 'S', '6'}, 'g': {'9', 'q', 'y'},
	'9': {'g', 'q', '4'}, 'b': {'6', 'h', 'd'},
	'6': {'b', 'G', '8'}, 'm': {'n', 'w', 'M'},
	'n': {'m', 'h', 'r'}, 'u': {'v', 'n', 'w'},
	'v': {'u', 'y', 'w'}, 't': {'f', '7', 'r'},
	'f': {'t', 'r', 'l'}, 'c': {'e', 'o', 'G'},
	'd': {'b', 'o', 'a'}, 'h': {'b', 'n', 'k'},
	'B': {'8', 'R', 'E'}, 'O': {'0', 'Q', 'D'},
	'S': {'5', '8', 'Z'}, 'I': {'l', '1', 'T'},
	'Z': {'2', 'S', '7'}, 'G': {'6', 'C', 'O'},
	'8': {'B', '3', '0'}, '2': {'Z', 'z', '7'},
}

// Transcribe passes the document through the OCR channel, returning a new
// document whose textual elements carry transcription noise. Image
// elements pass through unchanged. The RNG makes runs reproducible.
func Transcribe(d *doc.Document, noise NoiseLevel, rng *rand.Rand) *doc.Document {
	out, _ := TranscribeLabeled(doc.Labeled{Doc: d}, noise, rng)
	return out
}

// TranscribeLabeled is Transcribe for a labelled document: the page
// rotation of a mobile capture is applied to the ground-truth boxes too,
// because annotators labelled the captured image, not the original
// artwork (Section 6.2). The returned truth is nil when the input truth
// is nil.
func TranscribeLabeled(l doc.Labeled, noise NoiseLevel, rng *rand.Rand) (*doc.Document, *doc.GroundTruth) {
	d := l.Doc
	out := d.Clone()
	var truth *doc.GroundTruth
	if l.Truth != nil {
		t := *l.Truth
		t.Annotations = append([]doc.Annotation(nil), l.Truth.Annotations...)
		truth = &t
	}
	// Page rotation (mobile capture misalignment): rotate every box about
	// the page centre, then take axis-aligned hulls.
	if noise.Rotation > 0 {
		theta := (rng.Float64()*2 - 1) * noise.Rotation
		c := geom.Point{X: d.Width / 2, Y: d.Height / 2}
		for i := range out.Elements {
			out.Elements[i].Box = geom.Rotate(out.Elements[i].Box, theta, c)
		}
		if truth != nil {
			for i := range truth.Annotations {
				truth.Annotations[i].Box = geom.Rotate(truth.Annotations[i].Box, theta, c)
			}
		}
	}

	var elems []doc.Element
	nextID := 0
	i := 0
	for i < len(out.Elements) {
		e := out.Elements[i]
		if e.Kind != doc.TextElement {
			e.ID = nextID
			nextID++
			elems = append(elems, e)
			i++
			continue
		}
		if rng.Float64() < noise.WordDrop {
			i++
			continue
		}
		// Merge with next text element on the same line.
		if rng.Float64() < noise.WordMerge && i+1 < len(out.Elements) {
			next := out.Elements[i+1]
			if next.Kind == doc.TextElement && next.Line == e.Line {
				e.Text += next.Text
				e.Box = e.Box.Union(next.Box)
				i++ // consume the neighbour
			}
		}
		e.Text = corruptText(e.Text, noise, rng)
		if e.Text == "" {
			i++
			continue
		}
		e.Box = jitter(e.Box, noise.BoxJitter, rng)

		// Split the word in two elements.
		if rng.Float64() < noise.WordSplit && len(e.Text) >= 4 {
			cut := 1 + rng.Intn(len(e.Text)-2)
			frac := float64(cut) / float64(len(e.Text))
			left := e
			left.ID = nextID
			nextID++
			left.Text = e.Text[:cut]
			left.Box = geom.Rect{X: e.Box.X, Y: e.Box.Y, W: e.Box.W * frac, H: e.Box.H}
			elems = append(elems, left)
			right := e
			right.ID = nextID
			nextID++
			right.Text = e.Text[cut:]
			right.Box = geom.Rect{X: e.Box.X + e.Box.W*frac, Y: e.Box.Y, W: e.Box.W * (1 - frac), H: e.Box.H}
			elems = append(elems, right)
			i++
			continue
		}

		e.ID = nextID
		nextID++
		elems = append(elems, e)
		i++
	}
	out.Elements = elems
	return out, truth
}

func corruptText(text string, noise NoiseLevel, rng *rand.Rand) string {
	var sb strings.Builder
	for _, r := range text {
		if rng.Float64() < noise.CharDrop {
			continue
		}
		if rng.Float64() < noise.CharSub {
			if alts, ok := confusions[r]; ok {
				sb.WriteRune(alts[rng.Intn(len(alts))])
				continue
			}
		}
		if rng.Float64() < noise.CaseFlip {
			s := string(r)
			if up := strings.ToUpper(s); up != s {
				sb.WriteString(up)
				continue
			}
			if lo := strings.ToLower(s); lo != s {
				sb.WriteString(lo)
				continue
			}
		}
		sb.WriteRune(r)
	}
	return sb.String()
}

func jitter(b geom.Rect, amount float64, rng *rand.Rand) geom.Rect {
	if amount <= 0 {
		return b
	}
	dx := (rng.Float64()*2 - 1) * amount * b.H
	dy := (rng.Float64()*2 - 1) * amount * b.H
	dw := rng.Float64() * amount * b.H
	return geom.Rect{X: b.X + dx, Y: b.Y + dy, W: b.W + dw, H: b.H}
}

// LayoutBlocks is the Tesseract-style hierarchical layout analysis used as
// baseline A5 in Table 5: words are grouped into lines by vertical overlap,
// lines into paragraphs when the leading between them is below 0.8× line
// height and their left edges roughly align.
func LayoutBlocks(d *doc.Document) []*doc.Node {
	ids := d.TextElements()
	if len(ids) == 0 {
		return []*doc.Node{doc.NewTree(d)}
	}
	lines := groupLines(d, ids)

	// Sort lines top to bottom.
	sort.Slice(lines, func(i, j int) bool {
		return d.BoundingBoxOf(lines[i]).Y < d.BoundingBoxOf(lines[j]).Y
	})
	var blocks []*doc.Node
	var cur []int
	var curBox geom.Rect
	flush := func() {
		if len(cur) > 0 {
			blocks = append(blocks, &doc.Node{Box: curBox, Elements: cur, Depth: 1})
			cur, curBox = nil, geom.Rect{}
		}
	}
	for _, line := range lines {
		lb := d.BoundingBoxOf(line)
		if len(cur) == 0 {
			cur, curBox = append(cur, line...), lb
			continue
		}
		leading := lb.Y - curBox.MaxY()
		alignOK := abs(lb.X-curBox.X) < lb.H*2
		if leading <= 0.8*lb.H && alignOK {
			cur = append(cur, line...)
			curBox = curBox.Union(lb)
			continue
		}
		flush()
		cur, curBox = append(cur, line...), lb
	}
	flush()
	// Image elements each form their own block, as Tesseract reports
	// non-text regions separately.
	for _, id := range d.ImageElements() {
		blocks = append(blocks, &doc.Node{Box: d.Elements[id].Box, Elements: []int{id}, Depth: 1})
	}
	return blocks
}

// groupLines clusters words into text lines by vertical-overlap chaining.
func groupLines(d *doc.Document, ids []int) [][]int {
	ordered := d.ReadingOrder(ids)
	var lines [][]int
	for _, id := range ordered {
		b := d.Elements[id].Box
		placed := false
		for li := range lines {
			lb := d.BoundingBoxOf(lines[li])
			if vOverlap(b, lb) > 0.5 && b.X-lb.MaxX() < b.H*3 {
				lines[li] = append(lines[li], id)
				placed = true
				break
			}
		}
		if !placed {
			lines = append(lines, []int{id})
		}
	}
	return lines
}

// vOverlap returns the vertical overlap of two boxes as a fraction of the
// smaller height.
func vOverlap(a, b geom.Rect) float64 {
	top := a.Y
	if b.Y > top {
		top = b.Y
	}
	bot := a.MaxY()
	if b.MaxY() < bot {
		bot = b.MaxY()
	}
	if bot <= top {
		return 0
	}
	minH := a.H
	if b.H < minH {
		minH = b.H
	}
	if minH == 0 {
		return 0
	}
	return (bot - top) / minH
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
