package ocr

import (
	"math/rand"
	"strings"
	"testing"

	"vs2/internal/colorlab"
	"vs2/internal/doc"
	"vs2/internal/geom"
)

func sampleDoc() *doc.Document {
	d := &doc.Document{ID: "s", Width: 300, Height: 200, Background: colorlab.White}
	words := []struct {
		text string
		x, y float64
	}{
		{"Grand", 20, 20}, {"Opening", 70, 20}, {"Gala", 140, 20},
		{"join", 20, 60}, {"us", 55, 60}, {"tonight", 75, 60},
		{"free", 20, 90}, {"admission", 55, 90},
	}
	for i, w := range words {
		d.Elements = append(d.Elements, doc.Element{
			ID: i, Kind: doc.TextElement, Text: w.text,
			Box:  geom.Rect{X: w.x, Y: w.y, W: float64(len(w.text)) * 7, H: 12},
			Line: int(w.y),
		})
	}
	d.Elements = append(d.Elements, doc.Element{
		ID: len(words), Kind: doc.ImageElement, ImageData: "logo",
		Box: geom.Rect{X: 200, Y: 120, W: 60, H: 60}, Line: -1,
	})
	return d
}

func TestCleanTranscriptionIsIdentity(t *testing.T) {
	d := sampleDoc()
	out := Transcribe(d, Clean, rand.New(rand.NewSource(1)))
	if len(out.Elements) != len(d.Elements) {
		t.Fatalf("element count changed: %d -> %d", len(d.Elements), len(out.Elements))
	}
	for i := range d.Elements {
		if out.Elements[i].Text != d.Elements[i].Text {
			t.Errorf("text changed under clean channel: %q -> %q",
				d.Elements[i].Text, out.Elements[i].Text)
		}
		if out.Elements[i].Box != d.Elements[i].Box {
			t.Errorf("box changed under clean channel")
		}
	}
	// The input must never be mutated.
	if d.Elements[0].Text != "Grand" {
		t.Error("input document mutated")
	}
}

func TestNoiseIntroducesErrors(t *testing.T) {
	d := sampleDoc()
	rng := rand.New(rand.NewSource(7))
	diffs := 0
	for trial := 0; trial < 30; trial++ {
		out := Transcribe(d, Harsh, rng)
		orig := d.Transcript(nil)
		got := out.Transcript(nil)
		if got != orig {
			diffs++
		}
	}
	if diffs < 20 {
		t.Errorf("harsh channel produced only %d/30 noisy transcripts", diffs)
	}
}

func TestNoiseSeverityOrdering(t *testing.T) {
	// Mobile noise must corrupt more than scan noise on average.
	d := sampleDoc()
	charErrors := func(level NoiseLevel, seed int64) int {
		rng := rand.New(rand.NewSource(seed))
		total := 0
		for trial := 0; trial < 50; trial++ {
			out := Transcribe(d, level, rng)
			total += editDistanceApprox(d.Transcript(nil), out.Transcript(nil))
		}
		return total
	}
	scan := charErrors(Scan, 3)
	mobile := charErrors(Mobile, 3)
	if mobile <= scan {
		t.Errorf("mobile errors (%d) should exceed scan errors (%d)", mobile, scan)
	}
}

// editDistanceApprox counts positionwise mismatches plus length delta — a
// cheap proxy adequate for ordering tests.
func editDistanceApprox(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	dist := len(a) + len(b) - 2*n
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			dist++
		}
	}
	return dist
}

func TestDeterministicGivenSeed(t *testing.T) {
	d := sampleDoc()
	a := Transcribe(d, Mobile, rand.New(rand.NewSource(42))).Transcript(nil)
	b := Transcribe(d, Mobile, rand.New(rand.NewSource(42))).Transcript(nil)
	if a != b {
		t.Error("transcription not reproducible for a fixed seed")
	}
}

func TestElementIDsStayUnique(t *testing.T) {
	d := sampleDoc()
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		out := Transcribe(d, Harsh, rng)
		if err := out.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestRotationBoundsBoxes(t *testing.T) {
	d := sampleDoc()
	noise := Mobile
	noise.Rotation = 0.5
	out := Transcribe(d, noise, rand.New(rand.NewSource(5)))
	for _, e := range out.Elements {
		if e.Box.W <= 0 || e.Box.H <= 0 {
			t.Errorf("degenerate box after rotation: %v", e.Box)
		}
	}
}

func TestForCapture(t *testing.T) {
	if ForCapture(doc.CaptureDigital) != Clean {
		t.Error("digital should be clean")
	}
	if ForCapture(doc.CaptureMobile) != Mobile {
		t.Error("mobile level wrong")
	}
	if ForCapture(doc.CaptureScan) != Scan {
		t.Error("scan level wrong")
	}
}

func TestLayoutBlocksGroupsLinesAndParagraphs(t *testing.T) {
	d := sampleDoc()
	blocks := LayoutBlocks(d)
	// Headline (y=20), body (y=60 and y=90 — leading 18 > 0.8*12 = 9.6, so
	// they stay separate paragraphs), plus the image block.
	if len(blocks) < 3 {
		for _, b := range blocks {
			t.Logf("block %v: %q", b.Box, b.Text(d))
		}
		t.Fatalf("blocks = %d, want >= 3", len(blocks))
	}
	// Words on one line must share a block.
	var headline *doc.Node
	for _, b := range blocks {
		if strings.Contains(b.Text(d), "Grand") {
			headline = b
		}
	}
	if headline == nil || !strings.Contains(headline.Text(d), "Gala") {
		t.Error("headline words split across blocks")
	}
	// The image is its own block.
	foundImage := false
	for _, b := range blocks {
		if len(b.Elements) == 1 && d.Elements[b.Elements[0]].Kind == doc.ImageElement {
			foundImage = true
		}
	}
	if !foundImage {
		t.Error("image block missing")
	}
}

func TestLayoutBlocksTightLeadingMerges(t *testing.T) {
	d := &doc.Document{ID: "p", Width: 300, Height: 200}
	// Three lines with tight leading (gap 6 < 0.8*12): one paragraph.
	for i := 0; i < 3; i++ {
		d.Elements = append(d.Elements, doc.Element{
			ID: i, Kind: doc.TextElement, Text: "linewords",
			Box:  geom.Rect{X: 20, Y: 20 + float64(i)*18, W: 80, H: 12},
			Line: i,
		})
	}
	blocks := LayoutBlocks(d)
	if len(blocks) != 1 {
		t.Errorf("tight-leading paragraph split into %d blocks", len(blocks))
	}
}

func TestLayoutBlocksEmptyDoc(t *testing.T) {
	d := &doc.Document{ID: "e", Width: 10, Height: 10}
	blocks := LayoutBlocks(d)
	if len(blocks) != 1 {
		t.Errorf("empty doc blocks = %d", len(blocks))
	}
}

func TestTranscribeLabeledRotatesTruth(t *testing.T) {
	d := sampleDoc()
	truth := &doc.GroundTruth{DocID: d.ID, Annotations: []doc.Annotation{
		{Entity: "X", Box: d.Elements[0].Box, Text: d.Elements[0].Text},
	}}
	noise := NoiseLevel{Rotation: 0.3}
	out, outTruth := TranscribeLabeled(doc.Labeled{Doc: d, Truth: truth}, noise, rand.New(rand.NewSource(3)))
	if outTruth == nil {
		t.Fatal("truth dropped")
	}
	// The annotation must track its element: IoU between the rotated
	// element box and the rotated annotation stays high.
	var elem geom.Rect
	for _, e := range out.Elements {
		if e.Text == "Grand" {
			elem = e.Box
		}
	}
	if elem.Empty() {
		t.Skip("element dropped by noise")
	}
	if iou := elem.IoU(outTruth.Annotations[0].Box); iou < 0.9 {
		t.Errorf("truth decoupled from element after rotation: IoU %v", iou)
	}
	// Input truth untouched.
	if truth.Annotations[0].Box != d.Elements[0].Box {
		t.Error("input truth mutated")
	}
}
