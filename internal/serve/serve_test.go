package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source for breaker tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestBackoffGolden pins the delay sequence for one seed: the schedule
// is part of the serving layer's deterministic-replay contract, so a
// change here is a breaking change to chaos reproducibility.
func TestBackoffGolden(t *testing.T) {
	b := NewBackoff(50*time.Millisecond, 2*time.Second, 42)
	want := []time.Duration{
		34325709 * time.Nanosecond,
		53300024 * time.Nanosecond,
		160409385 * time.Nanosecond,
		241763740 * time.Nanosecond,
		417527383 * time.Nanosecond,
		1106554639 * time.Nanosecond,
		1812877135 * time.Nanosecond,
		1384445849 * time.Nanosecond, // capped window: exp clamps to max
	}
	for i, w := range want {
		if got := b.Delay(i); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
}

// TestBackoffSameSeedSameSchedule proves two schedules with one seed
// agree, and a different seed diverges.
func TestBackoffSameSeedSameSchedule(t *testing.T) {
	a := NewBackoff(50*time.Millisecond, 2*time.Second, 7)
	b := NewBackoff(50*time.Millisecond, 2*time.Second, 7)
	c := NewBackoff(50*time.Millisecond, 2*time.Second, 8)
	same, diff := true, true
	for i := 0; i < 16; i++ {
		da, db, dc := a.Delay(i), b.Delay(i), c.Delay(i)
		if da != db {
			same = false
		}
		if da != dc {
			diff = false
		}
	}
	if !same {
		t.Error("same seed produced different schedules")
	}
	if diff {
		t.Error("different seeds produced identical schedules")
	}
}

// TestBackoffBounds checks every delay stays inside the jitter envelope
// [exp/2, exp] with exp capped at max.
func TestBackoffBounds(t *testing.T) {
	base, max := 10*time.Millisecond, 500*time.Millisecond
	b := NewBackoff(base, max, 3)
	for i := 0; i < 20; i++ {
		exp := float64(base) * pow2(i)
		if m := float64(max); exp > m {
			exp = m
		}
		d := b.Delay(i)
		if float64(d) < exp/2 || float64(d) > exp {
			t.Errorf("Delay(%d) = %v outside [%v, %v]", i, d, time.Duration(exp/2), time.Duration(exp))
		}
	}
	if d := b.Delay(-1); d <= 0 || d > base {
		t.Errorf("Delay(-1) = %v, want clamped to attempt 0", d)
	}
}

// TestBackoffSleepAbortsOnCancel pins the shutdown-latency contract: a
// backoff sleep scheduled for tens of seconds must end within
// milliseconds of the caller's context dying, not at the end of the
// interval.
func TestBackoffSleepAbortsOnCancel(t *testing.T) {
	b := NewBackoff(30*time.Second, time.Minute, 1)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := b.Sleep(ctx, nil, 0)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep after cancel = %v, want context.Canceled", err)
	}
	if elapsed > time.Second {
		t.Fatalf("Sleep held the goroutine %v after cancellation; a 30s interval must abort promptly", elapsed)
	}
}

// TestBackoffSleepAbortsOnDone: the drain channel interrupts a sleep the
// same way, with its own sentinel so callers can tell drain from a
// caller walking away.
func TestBackoffSleepAbortsOnDone(t *testing.T) {
	b := NewBackoff(30*time.Second, time.Minute, 1)
	done := make(chan struct{})
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(done)
	}()
	start := time.Now()
	err := b.Sleep(context.Background(), done, 0)
	if !errors.Is(err, ErrSleepInterrupted) {
		t.Fatalf("Sleep after drain = %v, want ErrSleepInterrupted", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Sleep held the goroutine %v after drain", elapsed)
	}
}

// TestBackoffSleepCompletes: an uninterrupted sleep runs the full delay
// and returns nil.
func TestBackoffSleepCompletes(t *testing.T) {
	b := NewBackoff(time.Millisecond, 2*time.Millisecond, 1)
	if err := b.Sleep(context.Background(), nil, 0); err != nil {
		t.Fatalf("clean sleep = %v, want nil", err)
	}
}

func pow2(n int) float64 {
	f := 1.0
	for i := 0; i < n; i++ {
		f *= 2
	}
	return f
}

// TestBreakerLifecycle walks the full closed→open→half-open→closed loop
// and records every transition.
func TestBreakerLifecycle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	var hops []string
	b := NewBreaker(BreakerConfig{
		Threshold: 3,
		Cooldown:  100 * time.Millisecond,
		Probes:    1,
		Now:       clk.now,
		OnTransition: func(from, to State) {
			hops = append(hops, fmt.Sprintf("%s->%s", from, to))
		},
	})

	// Closed: failures below threshold keep passing; a success resets.
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker refused traffic")
		}
		b.Failure()
	}
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state = %v after reset, want closed", b.State())
	}

	// Three consecutive failures trip it.
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	if b.State() != Open {
		t.Fatalf("state = %v after threshold failures, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted traffic inside cooldown")
	}

	// Cooldown elapses: exactly Probes probes are admitted.
	clk.advance(150 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooled-down breaker refused the probe")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v after probe admitted, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe (Probes=1)")
	}

	// Probe success closes it.
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state = %v after probe success, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("re-closed breaker refused traffic")
	}

	want := []string{"closed->open", "open->half-open", "half-open->closed"}
	if fmt.Sprint(hops) != fmt.Sprint(want) {
		t.Fatalf("transitions = %v, want %v", hops, want)
	}
}

// TestBreakerHalfOpenFailureReopens proves a failed probe restarts the
// cooldown from the failure.
func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: 100 * time.Millisecond, Now: clk.now})
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
	clk.advance(150 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state = %v after failed probe, want open", b.State())
	}
	// The fresh cooldown starts at the probe failure, not the original trip.
	clk.advance(50 * time.Millisecond)
	if b.Allow() {
		t.Fatal("reopened breaker admitted traffic before the new cooldown elapsed")
	}
	clk.advance(100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("reopened breaker refused the second probe")
	}
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed", b.State())
	}
}

// TestBreakerMultiProbe requires Probes successes to close and admits
// at most Probes concurrent probes.
func TestBreakerMultiProbe(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Millisecond, Probes: 2, Now: clk.now})
	b.Failure()
	clk.advance(2 * time.Millisecond)
	if !b.Allow() || !b.Allow() {
		t.Fatal("half-open refused its two probes")
	}
	if b.Allow() {
		t.Fatal("half-open admitted a third concurrent probe")
	}
	b.Success()
	if b.State() != HalfOpen {
		t.Fatalf("state = %v after 1/2 successes, want half-open", b.State())
	}
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state = %v after 2/2 successes, want closed", b.State())
	}
}

// TestBreakerLateResultsIgnored: outcomes reported while open (from
// calls admitted before the trip) neither close nor re-trip it.
func TestBreakerLateResultsIgnored(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Hour, Now: clk.now})
	b.Failure()
	b.Success()
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state = %v, want open (late results must be ignored)", b.State())
	}
}

// TestBreakerConcurrentUse hammers one breaker from many goroutines;
// run under -race this is the data-race check.
func TestBreakerConcurrentUse(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 10, Cooldown: time.Microsecond})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if b.Allow() {
					if (g+i)%3 == 0 {
						b.Failure()
					} else {
						b.Success()
					}
				}
				b.State()
			}
		}(g)
	}
	wg.Wait()
}
