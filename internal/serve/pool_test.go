package serve

import (
	"runtime"
	"sync"
	"testing"
)

func TestPoolSize(t *testing.T) {
	if got := PoolSize(3); got != 3 {
		t.Errorf("PoolSize(3) = %d, want 3", got)
	}
	if got := PoolSize(32); got != 32 {
		t.Errorf("PoolSize(32) = %d, want 32 (explicit requests are not capped)", got)
	}
	want := runtime.GOMAXPROCS(0)
	if want > 8 {
		want = 8
	}
	if got := PoolSize(0); got != want {
		t.Errorf("PoolSize(0) = %d, want min(GOMAXPROCS, 8) = %d", got, want)
	}
	if got := PoolSize(-5); got != want {
		t.Errorf("PoolSize(-5) = %d, want %d", got, want)
	}
}

func TestGateBounds(t *testing.T) {
	g := NewGate(2)
	if g.Cap() != 2 {
		t.Fatalf("Cap = %d, want 2", g.Cap())
	}
	if !g.TryAcquire() || !g.TryAcquire() {
		t.Fatal("first two TryAcquire calls must succeed")
	}
	if g.TryAcquire() {
		t.Fatal("TryAcquire succeeded past capacity")
	}
	if g.InUse() != 2 {
		t.Fatalf("InUse = %d, want 2", g.InUse())
	}
	g.Release()
	if !g.TryAcquire() {
		t.Fatal("TryAcquire must succeed after Release")
	}
}

func TestGateClampsToOne(t *testing.T) {
	g := NewGate(0)
	if g.Cap() != 1 {
		t.Fatalf("Cap = %d, want 1", g.Cap())
	}
}

func TestGateReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release on an empty gate must panic")
		}
	}()
	NewGate(1).Release()
}

// TestGateConcurrentHolders hammers the gate from many goroutines and
// asserts the concurrent-holder count never exceeds capacity.
func TestGateConcurrentHolders(t *testing.T) {
	const gateCap = 4
	g := NewGate(gateCap)
	var (
		mu      sync.Mutex
		holding int
		peak    int
		wg      sync.WaitGroup
	)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if !g.TryAcquire() {
					continue
				}
				mu.Lock()
				holding++
				if holding > peak {
					peak = holding
				}
				mu.Unlock()
				runtime.Gosched()
				mu.Lock()
				holding--
				mu.Unlock()
				g.Release()
			}
		}()
	}
	wg.Wait()
	if peak > gateCap {
		t.Fatalf("peak concurrent holders = %d, exceeds capacity %d", peak, gateCap)
	}
	if g.InUse() != 0 {
		t.Fatalf("InUse = %d after all releases, want 0", g.InUse())
	}
}
