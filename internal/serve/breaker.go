// Package serve holds the resilience primitives of the concurrent
// serving layer: a three-state circuit breaker and a seeded, jittered
// exponential backoff schedule. Both are deliberately free of vs2
// types — the top-level serve.go wires them to the pipeline's phases —
// and both are deterministic under injected clocks and seeds, so the
// trip/recovery and retry schedules are testable bit for bit.
package serve

import (
	"sync"
	"time"
)

// State is the circuit breaker's position.
type State int

const (
	// Closed passes traffic and counts consecutive failures.
	Closed State = iota
	// Open fails fast until the cooldown elapses.
	Open
	// HalfOpen admits a bounded number of probes; success closes the
	// breaker, failure reopens it.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "State(?)"
	}
}

// BreakerConfig tunes a Breaker. The zero value selects the defaults
// noted on each field.
type BreakerConfig struct {
	// Threshold is the number of consecutive failures that trips the
	// breaker; default 5.
	Threshold int
	// Cooldown is how long the breaker stays open before admitting
	// half-open probes; default 5s.
	Cooldown time.Duration
	// Probes is both the number of concurrent half-open probes admitted
	// and the consecutive successes required to close; default 1.
	Probes int
	// Now substitutes the clock, for deterministic tests; default
	// time.Now.
	Now func() time.Time
	// OnTransition, when non-nil, observes every state change. It is
	// called with the breaker's lock held and must not call back into
	// the breaker.
	OnTransition func(from, to State)
}

// Breaker is a consecutive-failure circuit breaker, safe for concurrent
// use. Callers gate work on Allow and report the outcome with Success
// or Failure; the breaker never constructs errors itself.
type Breaker struct {
	mu        sync.Mutex
	cfg       BreakerConfig
	state     State
	failures  int // consecutive failures while closed
	successes int // consecutive probe successes while half-open
	inFlight  int // outstanding half-open probes
	openedAt  time.Time
}

// NewBreaker builds a breaker from the configuration.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 5 * time.Second
	}
	if cfg.Probes <= 0 {
		cfg.Probes = 1
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Breaker{cfg: cfg}
}

// Allow reports whether a call may proceed. While open it returns false
// until the cooldown elapses, then transitions to half-open and admits
// up to Probes concurrent probes.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.transition(HalfOpen)
		b.successes, b.inFlight = 0, 0
		fallthrough
	default: // HalfOpen
		if b.inFlight >= b.cfg.Probes {
			return false
		}
		b.inFlight++
		return true
	}
}

// Success reports a completed call. Closed: resets the failure streak.
// Half-open: counts toward the Probes successes that close the breaker.
// Open: ignored (a late result from before the trip).
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.failures = 0
	case HalfOpen:
		if b.inFlight > 0 {
			b.inFlight--
		}
		b.successes++
		if b.successes >= b.cfg.Probes {
			b.transition(Closed)
			b.failures = 0
		}
	}
}

// Failure reports a failed call. Closed: extends the streak and trips at
// Threshold. Half-open: reopens immediately. Open: ignored.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.failures++
		if b.failures >= b.cfg.Threshold {
			b.trip()
		}
	case HalfOpen:
		b.trip()
	}
}

// State returns the breaker's current position (open is reported as
// open even once the cooldown has elapsed; the transition to half-open
// happens on the next Allow).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

func (b *Breaker) trip() {
	b.transition(Open)
	b.openedAt = b.cfg.Now()
	b.failures, b.inFlight = 0, 0
}

func (b *Breaker) transition(to State) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if b.cfg.OnTransition != nil {
		b.cfg.OnTransition(from, to)
	}
}
