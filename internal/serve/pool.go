package serve

import "runtime"

// PoolSize resolves a requested worker count to an effective pool
// width. It is the single sizing rule shared by the serving layer's
// worker pool and the segmenter's branch-parallel recursion, so both
// scale with the same hardware policy: a positive request is taken as
// is; zero or negative selects min(GOMAXPROCS, 8).
func PoolSize(requested int) int {
	if requested > 0 {
		return requested
	}
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Gate is a non-blocking counting semaphore bounding how many extra
// goroutines a recursive fan-out may hold at once. TryAcquire never
// blocks: when the gate is full the caller is expected to do the work
// inline on its own goroutine, which guarantees progress (and rules
// out deadlock) no matter how deep the recursion nests.
type Gate struct {
	slots chan struct{}
}

// NewGate builds a gate with n slots; n < 1 is clamped to 1.
func NewGate(n int) *Gate {
	if n < 1 {
		n = 1
	}
	return &Gate{slots: make(chan struct{}, n)}
}

// TryAcquire claims a slot if one is free and reports whether it did.
// Every successful acquire must be paired with exactly one Release.
func (g *Gate) TryAcquire() bool {
	select {
	case g.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a previously acquired slot.
func (g *Gate) Release() {
	select {
	case <-g.slots:
	default:
		panic("serve: Gate.Release without matching TryAcquire")
	}
}

// Cap reports the gate's slot count.
func (g *Gate) Cap() int { return cap(g.slots) }

// InUse reports how many slots are currently held.
func (g *Gate) InUse() int { return len(g.slots) }
