package serve

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"time"
)

// Backoff is a seeded, jittered exponential backoff schedule:
//
//	delay(n) = cap(base·factor^n, max) · (1−jitter + jitter·U[0,1))
//
// The jitter draws come from a rand.Rand owned by the schedule, so one
// seed reproduces the whole delay sequence bit for bit — the golden
// tests pin it. Safe for concurrent use; concurrent callers interleave
// draws from the single stream.
type Backoff struct {
	base   time.Duration
	max    time.Duration
	factor float64
	jitter float64

	mu  sync.Mutex
	rng *rand.Rand
}

// NewBackoff builds the default schedule: factor 2, jitter 0.5, seeded
// with seed. Non-positive base and max select 50ms and 2s.
func NewBackoff(base, max time.Duration, seed int64) *Backoff {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	if max < base {
		max = base
	}
	return &Backoff{
		base:   base,
		max:    max,
		factor: 2,
		jitter: 0.5,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Delay returns the wait before retry attempt n (0-based: Delay(0) is
// the wait before the first retry). Each call consumes one jitter draw.
func (b *Backoff) Delay(attempt int) time.Duration {
	if attempt < 0 {
		attempt = 0
	}
	exp := float64(b.base) * math.Pow(b.factor, float64(attempt))
	if m := float64(b.max); exp > m {
		exp = m
	}
	b.mu.Lock()
	u := b.rng.Float64()
	b.mu.Unlock()
	return time.Duration(exp * (1 - b.jitter + b.jitter*u))
}

// Sleep waits Delay(attempt), aborting promptly when ctx is cancelled or
// done closes — a shutting-down server must not hang for the remainder
// of a backoff interval. It returns nil after a full sleep, ctx.Err()
// on cancellation, and ErrSleepInterrupted when done closed first. A nil
// done never interrupts. One jitter draw is consumed either way, so the
// schedule stays reproducible whether or not sleeps complete.
func (b *Backoff) Sleep(ctx context.Context, done <-chan struct{}, attempt int) error {
	t := time.NewTimer(b.Delay(attempt))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-done:
		return ErrSleepInterrupted
	}
}

// ErrSleepInterrupted reports a backoff sleep cut short by the done
// channel (server drain) rather than the caller's context.
var ErrSleepInterrupted = errors.New("serve: backoff sleep interrupted by drain")
