package serve

// Race-detector tests for the resilience primitives under concurrent
// use. The existing golden tests pin the sequential semantics; these pin
// the concurrent ones: a Backoff shared by many retry loops still hands
// every consumer a well-formed (bounded, per-consumer monotone)
// schedule, and a Breaker's half-open window admits exactly Probes
// concurrent probes no matter how many goroutines race Allow. Run under
// `make race`.

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// envelope is the deterministic part of the schedule: min(base·2^n, max).
func envelope(base, max time.Duration, attempt int) time.Duration {
	e := base
	for i := 0; i < attempt; i++ {
		e *= 2
		if e >= max {
			return max
		}
	}
	return e
}

// TestBackoffConcurrentConsumersBounded: many goroutines sharing one
// Backoff interleave jitter draws from the single stream, but every
// delay each of them observes stays inside [envelope/2, envelope] for
// its own attempt number, and below the cap each consumer's schedule is
// monotone: delay(n+1) >= envelope(n+1)/2 = envelope(n) >= delay(n).
func TestBackoffConcurrentConsumersBounded(t *testing.T) {
	const (
		base     = 10 * time.Millisecond
		max      = 2 * time.Second
		attempts = 8 // base·2^7 = 1.28s, still under the 2s cap
		workers  = 16
	)
	b := NewBackoff(base, max, 99)
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var prev time.Duration = -1
			for n := 0; n < attempts; n++ {
				d := b.Delay(n)
				e := envelope(base, max, n)
				if d < e/2 || d > e {
					errs <- "delay outside jitter envelope"
					return
				}
				if d < prev {
					errs <- "per-consumer schedule not monotone below the cap"
					return
				}
				prev = d
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// TestBackoffConcurrentMixedAttempts: hammer Delay with arbitrary
// attempt numbers (including negative and past the cap) from many
// goroutines. The race detector owns the memory-safety assertion; the
// test asserts the envelope bound survives the interleaved draws.
func TestBackoffConcurrentMixedAttempts(t *testing.T) {
	const (
		base = time.Millisecond
		max  = 64 * time.Millisecond
	)
	b := NewBackoff(base, max, 7)
	var bad atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				n := rnd.Intn(16) - 2 // negative attempts clamp to 0
				d := b.Delay(n)
				e := envelope(base, max, maxInt(n, 0))
				if d < e/2 || d > e {
					bad.Add(1)
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if got := bad.Load(); got != 0 {
		t.Fatalf("%d delays escaped the jitter envelope under contention", got)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// atomicClock is a Now() source safe to advance while concurrent Allow
// calls read it.
type atomicClock struct{ ns atomic.Int64 }

func (c *atomicClock) now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *atomicClock) advance(d time.Duration) { c.ns.Add(int64(d)) }

// TestBreakerHalfOpenProbeQuota: after a trip and an elapsed cooldown, N
// goroutines race Allow and exactly Probes of them are admitted — the
// half-open window is a quota, not a free-for-all. The admitted probes
// then succeed and the breaker closes; the rejected racers never skew
// the accounting.
func TestBreakerHalfOpenProbeQuota(t *testing.T) {
	for _, probes := range []int{1, 3} {
		clk := &atomicClock{}
		b := NewBreaker(BreakerConfig{
			Threshold: 2,
			Cooldown:  time.Second,
			Probes:    probes,
			Now:       clk.now,
		})
		b.Failure()
		b.Failure()
		if b.State() != Open {
			t.Fatalf("probes=%d: state %v after threshold failures, want open", probes, b.State())
		}
		clk.advance(time.Second)

		const racers = 32
		var admitted atomic.Int64
		start := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < racers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				if b.Allow() {
					admitted.Add(1)
				}
			}()
		}
		close(start)
		wg.Wait()
		if got := admitted.Load(); got != int64(probes) {
			t.Fatalf("probes=%d: %d racers admitted through the half-open window, want exactly %d", probes, got, probes)
		}
		if b.State() != HalfOpen {
			t.Fatalf("probes=%d: state %v after admitting probes, want half-open", probes, b.State())
		}
		for i := 0; i < probes; i++ {
			b.Success()
		}
		if b.State() != Closed {
			t.Fatalf("probes=%d: state %v after %d probe successes, want closed", probes, b.State(), probes)
		}
	}
}

// TestBreakerConcurrentHammer drives a breaker from many goroutines
// with a mixed Allow/Success/Failure load while the clock jumps past
// the cooldown, then checks the state machine never produced an illegal
// transition and still responds deterministically afterwards. The
// transition log is collected via OnTransition (called with the lock
// held, so appends are already serialized).
func TestBreakerConcurrentHammer(t *testing.T) {
	clk := &atomicClock{}
	var transitions [][2]State
	b := NewBreaker(BreakerConfig{
		Threshold: 3,
		Cooldown:  10 * time.Millisecond,
		Probes:    2,
		Now:       clk.now,
		OnTransition: func(from, to State) {
			transitions = append(transitions, [2]State{from, to})
		},
	})

	legal := map[[2]State]bool{
		{Closed, Open}:     true,
		{Open, HalfOpen}:   true,
		{HalfOpen, Closed}: true,
		{HalfOpen, Open}:   true,
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				if b.Allow() {
					if rnd.Intn(3) == 0 {
						b.Failure()
					} else {
						b.Success()
					}
				}
				if i%100 == 0 {
					clk.advance(11 * time.Millisecond) // past the cooldown
				}
			}
		}(int64(w) + 1)
	}
	wg.Wait()

	for _, tr := range transitions {
		if !legal[tr] {
			t.Fatalf("illegal transition %v -> %v under concurrent load", tr[0], tr[1])
		}
	}
	if len(transitions) == 0 {
		t.Fatal("hammer never moved the breaker; the load is not exercising transitions")
	}

	// The machine is still coherent: force it shut, then trip and
	// recover deterministically with no leftover probe accounting.
	for b.State() != Closed {
		clk.advance(11 * time.Millisecond)
		if b.Allow() {
			b.Success()
		}
	}
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	if b.State() != Open {
		t.Fatalf("state %v after threshold failures post-hammer, want open", b.State())
	}
	clk.advance(11 * time.Millisecond)
	if !b.Allow() || !b.Allow() {
		t.Fatal("half-open window did not admit the configured 2 probes post-hammer")
	}
	if b.Allow() {
		t.Fatal("half-open window admitted a third probe post-hammer")
	}
	b.Success()
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state %v after probe successes post-hammer, want closed", b.State())
	}
}
