package holdout

import (
	"fmt"
	"math/rand"
	"strings"

	"vs2/internal/datasets"
	"vs2/internal/pattern"
)

// Simulated public-domain websites per Table 2 of the paper. Each returns
// fixed-format HTML — lists of result cards with class-tagged entity spans
// — the way the real sites present indexed content. The content generators
// reuse the datasets package's pools so holdout language matches document
// language distributionally (the premise of distant supervision).

// IRSSite simulates irs.gov queried for "1988" filtered to the 1040
// package: pages of two-column tables mapping form-field identifiers to
// field descriptors. The D1 holdout corpus in the paper "contained 20
// tables, each with two columns, an identifier of the named entity to be
// extracted and its corresponding field descriptor".
func IRSSite() Site {
	fields := datasets.D1Fields()
	keys := make([]string, 0, len(fields))
	for k := range fields {
		keys = append(keys, k)
	}
	sortStrings(keys)
	const perPage = 80
	return Site{
		Name: "irs.gov",
		Query: func(batch int, rng *rand.Rand) []Page {
			start := batch * perPage
			if start >= len(keys) {
				return nil
			}
			end := start + perPage
			if end > len(keys) {
				end = len(keys)
			}
			var sb strings.Builder
			sb.WriteString("<table class=\"form-fields\">")
			for _, k := range keys[start:end] {
				fmt.Fprintf(&sb, `<div class="row"><td>%s</td><td><span class="%s">%s</span></td></div>`,
					k, k, fields[k][0])
			}
			sb.WriteString("</table>")
			return []Page{{
				URL:  fmt.Sprintf("https://irs.gov/forms?q=1988&filter=1040&page=%d", batch),
				HTML: sb.String(),
			}}
		},
	}
}

// AllEventsSite simulates allevents.in queried for "NY" filtered to
// 04/01–05/31: pages of event cards.
func AllEventsSite() Site {
	return Site{
		Name: "allevents.in",
		Query: func(batch int, rng *rand.Rand) []Page {
			if batch >= 25 {
				return nil
			}
			var sb strings.Builder
			for i := 0; i < 20; i++ {
				sb.WriteString(eventCard(rng))
			}
			return []Page{{
				URL:  fmt.Sprintf("https://allevents.in/search?q=NY&from=04/01&to=05/31&page=%d", batch),
				HTML: sb.String(),
			}}
		},
	}
}

// ACMSite simulates dl.acm.org queried for "Talks" sorted by views: talk
// listings whose titles/speakers/venues exercise different syntactic
// contexts than the event cards.
func ACMSite() Site {
	return Site{
		Name: "dl.acm.org",
		Query: func(batch int, rng *rand.Rand) []Page {
			if batch >= 25 {
				return nil
			}
			var sb strings.Builder
			for i := 0; i < 20; i++ {
				sb.WriteString(talkCard(rng))
			}
			return []Page{{
				URL:  fmt.Sprintf("https://dl.acm.org/action/doSearch?q=Talks&sort=views&page=%d", batch),
				HTML: sb.String(),
			}}
		},
	}
}

// FSBOSite simulates fsbo.com queried for "NY": listing cards.
func FSBOSite() Site {
	return Site{
		Name: "fsbo.com",
		Query: func(batch int, rng *rand.Rand) []Page {
			if batch >= 10 {
				return nil
			}
			var sb strings.Builder
			for i := 0; i < 10; i++ {
				sb.WriteString(listingCard(rng))
			}
			return []Page{{
				URL:  fmt.Sprintf("https://fsbo.com/search?q=NY&page=%d", batch),
				HTML: sb.String(),
			}}
		},
	}
}

// HomesByOwnerSite simulates homesbyowner.com queried for "NY".
func HomesByOwnerSite() Site {
	return Site{
		Name: "homesbyowner.com",
		Query: func(batch int, rng *rand.Rand) []Page {
			if batch >= 10 {
				return nil
			}
			var sb strings.Builder
			for i := 0; i < 10; i++ {
				sb.WriteString(listingCard(rng))
			}
			return []Page{{
				URL:  fmt.Sprintf("https://homesbyowner.com/search?q=NY&page=%d", batch),
				HTML: sb.String(),
			}}
		},
	}
}

// D1Sites, D2Sites and D3Sites assemble the Table 2 recipe per task.
func D1Sites() []Site { return []Site{IRSSite()} }
func D2Sites() []Site { return []Site{AllEventsSite(), ACMSite()} }
func D3Sites() []Site { return []Site{FSBOSite(), HomesByOwnerSite()} }

// Card builders ----------------------------------------------------------

func eventCard(rng *rand.Rand) string {
	title := datasets.EventTitleFor(rng)
	org := datasets.OrganizerFor(rng)
	time := datasets.EventTimeFor(rng)
	place := datasets.PlaceFor(rng)
	desc := datasets.EventDescFor(rng)
	forms := []string{
		`<div class="event"><span class="%[1]s">%[2]s</span> on <span class="%[3]s">%[4]s</span> hosted by <span class="%[5]s">%[6]s</span> at <span class="%[7]s">%[8]s</span>. <span class="%[9]s">%[10]s</span>.</div>`,
		`<div class="event"><span class="%[5]s">%[6]s</span> presents <span class="%[1]s">%[2]s</span> at <span class="%[7]s">%[8]s</span>, <span class="%[3]s">%[4]s</span>. <span class="%[9]s">%[10]s</span>.</div>`,
		`<div class="event">Join us for <span class="%[1]s">%[2]s</span>. <span class="%[9]s">%[10]s</span>. Doors open <span class="%[3]s">%[4]s</span>, <span class="%[7]s">%[8]s</span>. Organized by <span class="%[5]s">%[6]s</span>.</div>`,
	}
	f := forms[rng.Intn(len(forms))]
	return fmt.Sprintf(f,
		pattern.EventTitle, title,
		pattern.EventTime, time,
		pattern.EventOrganizer, org,
		pattern.EventPlace, place,
		pattern.EventDescription, desc,
	)
}

func talkCard(rng *rand.Rand) string {
	title := datasets.EventTitleFor(rng)
	speaker := datasets.PersonFor(rng)
	time := datasets.EventTimeFor(rng)
	return fmt.Sprintf(
		`<div class="talk"><span class="%s">%s</span>, presented by <span class="%s">%s</span>, recorded <span class="%s">%s</span>.</div>`,
		pattern.EventTitle, title,
		pattern.EventOrganizer, speaker,
		pattern.EventTime, time,
	)
}

func listingCard(rng *rand.Rand) string {
	c := datasets.FlyerContentFor(rng)
	forms := []string{
		`<div class="listing"><span class="%[1]s">%[2]s</span> at <span class="%[3]s">%[4]s</span>. <span class="%[5]s">%[6]s</span>. Contact <span class="%[7]s">%[8]s</span> at <span class="%[9]s">%[10]s</span> or <span class="%[11]s">%[12]s</span>.</div>`,
		`<div class="listing">For sale by owner: <span class="%[5]s">%[6]s</span> near <span class="%[3]s">%[4]s</span> with <span class="%[1]s">%[2]s</span>. Call <span class="%[7]s">%[8]s</span>, <span class="%[9]s">%[10]s</span>, email <span class="%[11]s">%[12]s</span>.</div>`,
	}
	f := forms[rng.Intn(len(forms))]
	return fmt.Sprintf(f,
		pattern.PropertySize, c.Size,
		pattern.PropertyAddr, c.Address,
		pattern.PropertyDesc, c.Desc,
		pattern.BrokerName, c.BrokerName,
		pattern.BrokerPhone, c.Phone,
		pattern.BrokerEmail, c.Email,
	)
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
