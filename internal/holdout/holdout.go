// Package holdout implements the distant-supervision side of VS2
// (Section 5.2.1): construction of the holdout corpus H = Σ_i (N_i, T_Ni)
// and the learning of lexico-syntactic patterns from it.
//
// The paper builds H by scraping public-domain websites (Table 2:
// irs.gov for D1; allevents.in and dl.acm.org for D2; fsbo.com and
// homesbyowner.com for D3) with a custom web wrapper [19], inserting
// tuples "until the distribution of distinct syntactic patterns defined by
// the tuples was approximately normal" (tested per Shapiro & Wilk [40]) or
// the source was exhausted. Those sites cannot be scraped offline, so this
// package simulates them: each site generator emits fixed-format HTML
// pages whose markup wraps every entity occurrence in a class-tagged span,
// exactly the structure a hand-written wrapper exploits; the wrapper then
// recovers (entity, text) tuples from the markup.
package holdout

import (
	"fmt"
	"math/rand"
	"regexp"
	"sort"
	"strings"

	"vs2/internal/stats"
)

// Entry is one (named entity, text) tuple of the corpus.
type Entry struct {
	Entity string
	Text   string
	// Context is the surrounding sentence the entity appeared in — the
	// "diverse semantic contexts" the pattern learner mines.
	Context string
}

// Page is one fixed-format HTML page returned by a site query.
type Page struct {
	URL  string
	HTML string
}

// Corpus is the holdout corpus H.
type Corpus struct {
	// Entries groups tuples by entity key.
	Entries map[string][]Entry
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{Entries: map[string][]Entry{}}
}

// Add inserts a tuple.
func (c *Corpus) Add(e Entry) {
	c.Entries[e.Entity] = append(c.Entries[e.Entity], e)
}

// Size returns the total number of tuples.
func (c *Corpus) Size() int {
	n := 0
	for _, es := range c.Entries {
		n += len(es)
	}
	return n
}

// Texts returns the texts recorded for one entity.
func (c *Corpus) Texts(entity string) []string {
	var out []string
	for _, e := range c.Entries[entity] {
		out = append(out, e.Text)
	}
	return out
}

// Entities lists the entity keys present, sorted.
func (c *Corpus) Entities() []string {
	out := make([]string, 0, len(c.Entries))
	for k := range c.Entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// The web wrapper ------------------------------------------------------

// spanRE captures <span class="Entity">text</span> occurrences; contextRE
// captures the enclosing fixed-format container.
var (
	spanRE = regexp.MustCompile(`<span class="([A-Za-z0-9_]+)">([^<]*)</span>`)
	tagRE  = regexp.MustCompile(`<[^>]+>`)
)

// ExtractTuples is the custom web wrapper of Section 5.2.1 step (c): it
// exploits the fixed-format HTML environment to pull every entity
// occurrence with its sentence context.
func ExtractTuples(p Page) []Entry {
	var out []Entry
	// Containers are the block elements; context = stripped text of the
	// container holding the span.
	for _, container := range strings.Split(p.HTML, "</div>") {
		plain := strings.TrimSpace(tagRE.ReplaceAllString(container, " "))
		plain = strings.Join(strings.Fields(plain), " ")
		for _, m := range spanRE.FindAllStringSubmatch(container, -1) {
			text := strings.TrimSpace(m[2])
			if text == "" {
				continue
			}
			out = append(out, Entry{Entity: m[1], Text: text, Context: plain})
		}
	}
	return out
}

// Corpus construction ----------------------------------------------------

// Site is a simulated public-domain website: Query returns the result
// pages for one query batch (empty when exhausted), mirroring Table 2's
// query/filter recipe.
type Site struct {
	Name string
	// Query returns the i-th batch of result pages.
	Query func(batch int, rng *rand.Rand) []Page
}

// BuildOptions controls corpus construction.
type BuildOptions struct {
	Seed int64
	// MaxBatches bounds the construction loop (default 40).
	MaxBatches int
	// NormalP is the Shapiro-Wilk p-value above which the distinct-pattern
	// distribution counts as "approximately normal" (default 0.05).
	NormalP float64
}

// Build constructs the holdout corpus from the sites per Section 5.2.1:
// batches of result pages are wrapped and inserted until the distribution
// of distinct syntactic shapes per entity is approximately normal (or the
// sites are exhausted / the batch budget runs out).
func Build(sites []Site, opts BuildOptions) *Corpus {
	if opts.MaxBatches <= 0 {
		opts.MaxBatches = 40
	}
	if opts.NormalP <= 0 {
		opts.NormalP = 0.05
	}
	rng := rand.New(rand.NewSource(opts.Seed + 97))
	c := NewCorpus()
	for batch := 0; batch < opts.MaxBatches; batch++ {
		exhausted := true
		for _, site := range sites {
			pages := site.Query(batch, rng)
			if len(pages) == 0 {
				continue
			}
			exhausted = false
			for _, p := range pages {
				for _, e := range ExtractTuples(p) {
					c.Add(e)
				}
			}
		}
		if exhausted {
			break
		}
		if batch >= 2 && c.approximatelyNormal(opts.NormalP) {
			break
		}
	}
	return c
}

// approximatelyNormal applies the Section 5.2.1 stopping criterion: for
// each entity, the counts of distinct syntactic shapes (POS-signature of
// the tuple text) should pass a Shapiro-Wilk normality test.
func (c *Corpus) approximatelyNormal(minP float64) bool {
	for _, entity := range c.Entities() {
		counts := c.ShapeDistribution(entity)
		if len(counts) < 3 {
			return false
		}
		_, p, err := stats.ShapiroWilk(counts)
		if err != nil || p < minP {
			return false
		}
	}
	return true
}

// ShapeDistribution returns, for one entity, the tuple counts of each
// distinct syntactic shape, sorted descending — the distribution the
// normality criterion inspects.
func (c *Corpus) ShapeDistribution(entity string) []float64 {
	byShape := map[string]int{}
	for _, e := range c.Entries[entity] {
		byShape[SyntacticShape(e.Text)]++
	}
	out := make([]float64, 0, len(byShape))
	for _, n := range byShape {
		out = append(out, float64(n))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// SyntacticShape reduces a text to a coarse syntactic signature: the
// sequence of word classes (capitalised word, number, lowercase word,
// symbol), capped for stability.
func SyntacticShape(text string) string {
	var sb strings.Builder
	n := 0
	for _, w := range strings.Fields(text) {
		if n >= 6 {
			break
		}
		switch {
		case strings.IndexFunc(w, isDigit) >= 0:
			sb.WriteByte('9')
		case w[0] >= 'A' && w[0] <= 'Z':
			sb.WriteByte('A')
		default:
			sb.WriteByte('a')
		}
		n++
	}
	return sb.String()
}

func isDigit(r rune) bool { return r >= '0' && r <= '9' }

// String summarises the corpus.
func (c *Corpus) String() string {
	var sb strings.Builder
	for _, e := range c.Entities() {
		fmt.Fprintf(&sb, "%s: %d tuples, %d shapes\n",
			e, len(c.Entries[e]), len(c.ShapeDistribution(e)))
	}
	return sb.String()
}
