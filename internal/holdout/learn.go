package holdout

import (
	"fmt"

	"vs2/internal/nlp"
	"vs2/internal/pattern"
	"vs2/internal/treemine"
)

// Pattern learning per Section 5.2.1: each entity's holdout entries are
// annotated with the full NLP feature stack (POS tags, chunk structure,
// named entities, geocode tags for Location entities, hypernym senses for
// noun tags, VerbNet senses for verb tags — exactly the paper's recipe),
// the annotated texts become labelled ordered trees, and the maximal
// frequent subtrees across them are the learned lexico-syntactic patterns
// for that entity.

// LearnOptions tunes the pattern learner.
type LearnOptions struct {
	// MinSupport is the frequent-subtree support threshold (default 0.3).
	MinSupport float64
	// MaxPatterns bounds the number of returned patterns (default 8).
	MaxPatterns int
	// UseContext mines the full sentence context rather than the bare
	// entity text; context trees generalise better but mine slower.
	UseContext bool
}

// Learn mines the syntactic patterns of one entity from the corpus and
// wraps them as searchable pattern.Mined alternatives.
func Learn(c *Corpus, entity string, opts LearnOptions) []*pattern.Mined {
	if opts.MinSupport <= 0 {
		opts.MinSupport = 0.3
	}
	if opts.MaxPatterns <= 0 {
		opts.MaxPatterns = 8
	}
	entries := c.Entries[entity]
	if len(entries) == 0 {
		return nil
	}
	// Cap the mining database: the distribution is what matters, not bulk.
	const maxDB = 120
	var db []*treemine.Tree
	for i, e := range entries {
		if i >= maxDB {
			break
		}
		text := e.Text
		if opts.UseContext && e.Context != "" {
			text = e.Context
		}
		tokens := nlp.Tokenize(text)
		nlp.TagPOS(tokens)
		nlp.TagEntities(tokens)
		db = append(db, toMineTree(nlp.ParseTree(tokens)))
	}
	mined := treemine.MineMaximal(db, treemine.Options{
		MinSupport: opts.MinSupport,
		MaxNodes:   5,
	})
	var out []*pattern.Mined
	for i, m := range mined {
		if i >= opts.MaxPatterns {
			break
		}
		out = append(out, &pattern.Mined{
			PatternName: fmt.Sprintf("mined-%s-%d", entity, i),
			Tree:        m.Tree,
			ScoreVal:    0.4 + 0.4*m.Ratio, // more frequent ⇒ more trusted
		})
	}
	return out
}

// LearnAll mines every entity in the corpus.
func LearnAll(c *Corpus, opts LearnOptions) map[string][]*pattern.Mined {
	out := map[string][]*pattern.Mined{}
	for _, e := range c.Entities() {
		out[e] = Learn(c, e, opts)
	}
	return out
}

// LearnedSets converts mined patterns into pattern.Sets usable by
// VS2-Select — the fully distantly-supervised configuration, as opposed to
// the curated Table 3/4 sets (which the paper reports as the *outcome* of
// this mining process).
func LearnedSets(c *Corpus, opts LearnOptions) []*pattern.Set {
	var out []*pattern.Set
	for _, entity := range c.Entities() {
		mined := Learn(c, entity, opts)
		if len(mined) == 0 {
			continue
		}
		ps := make([]pattern.Pattern, 0, len(mined))
		for _, m := range mined {
			ps = append(ps, m)
		}
		out = append(out, &pattern.Set{Entity: entity, Patterns: ps})
	}
	return out
}

func toMineTree(n *nlp.ParseNode) *treemine.Tree {
	if n == nil {
		return nil
	}
	out := &treemine.Tree{Label: n.Label}
	for _, c := range n.Children {
		out.Children = append(out.Children, toMineTree(c))
	}
	return out
}
