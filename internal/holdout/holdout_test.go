package holdout

import (
	"strings"
	"testing"

	"vs2/internal/nlp"
	"vs2/internal/pattern"
	"vs2/internal/treemine"
)

func TestWrapperExtractsTuples(t *testing.T) {
	page := Page{
		URL: "https://example.test",
		HTML: `<div class="event"><span class="EventTitle">Jazz Night</span> hosted by ` +
			`<span class="EventOrganizer">Kevin Walsh</span></div>` +
			`<div class="event"><span class="EventTitle">Art Walk</span></div>`,
	}
	tuples := ExtractTuples(page)
	if len(tuples) != 3 {
		t.Fatalf("tuples = %v", tuples)
	}
	if tuples[0].Entity != "EventTitle" || tuples[0].Text != "Jazz Night" {
		t.Errorf("tuple[0] = %+v", tuples[0])
	}
	if !strings.Contains(tuples[0].Context, "hosted by") {
		t.Errorf("context lost: %+v", tuples[0])
	}
	if tuples[1].Entity != "EventOrganizer" || tuples[1].Text != "Kevin Walsh" {
		t.Errorf("tuple[1] = %+v", tuples[1])
	}
}

func TestBuildD2Corpus(t *testing.T) {
	c := Build(D2Sites(), BuildOptions{Seed: 1})
	if c.Size() == 0 {
		t.Fatal("empty corpus")
	}
	for _, entity := range []string{
		pattern.EventTitle, pattern.EventTime, pattern.EventOrganizer,
		pattern.EventPlace, pattern.EventDescription,
	} {
		if len(c.Entries[entity]) < 20 {
			t.Errorf("%s has only %d tuples", entity, len(c.Entries[entity]))
		}
	}
	// Shape distributions exist and are non-trivial for organizers (person
	// vs org forms).
	shapes := c.ShapeDistribution(pattern.EventOrganizer)
	if len(shapes) < 2 {
		t.Errorf("organizer shapes = %v", shapes)
	}
}

func TestBuildD1Corpus(t *testing.T) {
	c := Build(D1Sites(), BuildOptions{Seed: 1, MaxBatches: 30})
	// Every form field must be present exactly once (fixed tables).
	if len(c.Entities()) < 1200 {
		t.Errorf("D1 corpus has %d entities", len(c.Entities()))
	}
	for _, e := range c.Entities()[:10] {
		if len(c.Entries[e]) != 1 {
			t.Errorf("field %s tuples = %d", e, len(c.Entries[e]))
		}
	}
}

func TestBuildD3Corpus(t *testing.T) {
	c := Build(D3Sites(), BuildOptions{Seed: 2})
	for _, entity := range []string{
		pattern.BrokerName, pattern.BrokerPhone, pattern.BrokerEmail,
		pattern.PropertyAddr, pattern.PropertySize, pattern.PropertyDesc,
	} {
		if len(c.Entries[entity]) < 10 {
			t.Errorf("%s has only %d tuples", entity, len(c.Entries[entity]))
		}
	}
	// Phones recorded verbatim.
	for _, txt := range c.Texts(pattern.BrokerPhone)[:5] {
		if !strings.ContainsAny(txt, "0123456789") {
			t.Errorf("phone tuple %q has no digits", txt)
		}
	}
}

func TestSyntacticShape(t *testing.T) {
	cases := map[string]string{
		"Kevin Walsh":            "AA",
		"Riverside Jazz Society": "AAA",
		"614-555-0137":           "9",
		"join us for fun":        "aaaa",
		"Saturday, June 14":      "AA9",
	}
	for in, want := range cases {
		if got := SyntacticShape(in); got != want {
			t.Errorf("SyntacticShape(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLearnOrganizerPatterns(t *testing.T) {
	c := Build(D2Sites(), BuildOptions{Seed: 3})
	mined := Learn(c, pattern.EventOrganizer, LearnOptions{MinSupport: 0.25})
	if len(mined) == 0 {
		t.Fatal("no organizer patterns mined")
	}
	// The mined patterns must include person-evidence: some pattern should
	// contain an NE:PERSON or NE:ORG node (organizers are people or orgs).
	var hasEntityEvidence bool
	for _, m := range mined {
		m.Tree.Walk(func(n *treemine.Tree) {
			if n.Label == "NE:PERSON" || n.Label == "NE:ORG" || n.Label == "NNP" {
				hasEntityEvidence = true
			}
		})
	}
	if !hasEntityEvidence {
		for _, m := range mined {
			t.Logf("mined: %s (score %v)", m.Tree.Encode(), m.ScoreVal)
		}
		t.Error("mined organizer patterns carry no entity evidence")
	}
	// And the mined patterns must actually match fresh organizer text.
	a := nlp.Annotate("Maria Chen hosts the gala")
	matched := false
	for _, m := range mined {
		if len(m.Find(a)) > 0 {
			matched = true
		}
	}
	if !matched {
		t.Error("no mined pattern matches a fresh organizer mention")
	}
}

func TestLearnedSetsCoverEntities(t *testing.T) {
	c := Build(D3Sites(), BuildOptions{Seed: 5})
	sets := LearnedSets(c, LearnOptions{MinSupport: 0.3})
	if len(sets) < 4 {
		t.Errorf("learned sets = %d", len(sets))
	}
	for _, s := range sets {
		if len(s.Patterns) == 0 {
			t.Errorf("set %s empty", s.Entity)
		}
	}
}

func TestLearnEmptyEntity(t *testing.T) {
	c := NewCorpus()
	if got := Learn(c, "Nope", LearnOptions{}); got != nil {
		t.Errorf("patterns from empty corpus: %v", got)
	}
}

func TestCorpusString(t *testing.T) {
	c := NewCorpus()
	c.Add(Entry{Entity: "X", Text: "alpha beta"})
	c.Add(Entry{Entity: "X", Text: "Gamma Delta"})
	s := c.String()
	if !strings.Contains(s, "X: 2 tuples") {
		t.Errorf("summary = %q", s)
	}
}
