// Package render draws visually rich documents, their layout trees, logical
// blocks, interest points and ground-truth annotations as SVG — the
// analogues of the paper's Figures 1, 4, 6 and 8 — using only the standard
// library. The output is deliberately simple (rect + text primitives) so it
// renders identically in any viewer and diffs cleanly in tests.
package render

import (
	"fmt"
	"sort"
	"strings"

	"vs2/internal/colorlab"
	"vs2/internal/doc"
	"vs2/internal/geom"
)

// Options selects which overlays to draw.
type Options struct {
	// Blocks outlines the given block set (logical blocks, Fig. 6 style).
	Blocks []*doc.Node
	// Interest outlines interest points in a heavier stroke (the red boxes
	// of Fig. 6).
	Interest []*doc.Node
	// Truth draws ground-truth annotation boxes with entity labels
	// (Fig. 8 style).
	Truth *doc.GroundTruth
	// Tree draws every node of the layout tree, nesting depth encoded in
	// stroke opacity (Fig. 4 style).
	Tree *doc.Node
	// HideText suppresses the document text (overlay-only rendering).
	HideText bool
}

// SVG renders the document with the requested overlays.
func SVG(d *doc.Document, opts Options) string {
	var sb strings.Builder
	fmt.Fprintf(&sb,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g">`+"\n",
		d.Width, d.Height, d.Width, d.Height)
	fmt.Fprintf(&sb, `<rect x="0" y="0" width="%g" height="%g" fill="%s"/>`+"\n",
		d.Width, d.Height, rgb(d.Background))

	if !opts.HideText {
		renderElements(&sb, d)
	}
	if opts.Tree != nil {
		renderTree(&sb, opts.Tree)
	}
	for _, b := range opts.Blocks {
		rect(&sb, b.Box, "none", "#2060c0", 1.2, 0.9)
	}
	for _, b := range opts.Interest {
		rect(&sb, b.Box.Inset(-2), "none", "#d02020", 2.2, 1)
	}
	if opts.Truth != nil {
		renderTruth(&sb, opts.Truth)
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

func renderElements(sb *strings.Builder, d *doc.Document) {
	for i := range d.Elements {
		e := &d.Elements[i]
		switch e.Kind {
		case doc.ImageElement:
			rect(sb, e.Box, "#e8e8e8", "#b0b0b0", 1, 1)
			// A diagonal cross marks the image placeholder.
			fmt.Fprintf(sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#b0b0b0"/>`+"\n",
				e.Box.X, e.Box.Y, e.Box.MaxX(), e.Box.MaxY())
			fmt.Fprintf(sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#b0b0b0"/>`+"\n",
				e.Box.MaxX(), e.Box.Y, e.Box.X, e.Box.MaxY())
		case doc.TextElement:
			weight := "normal"
			if e.Bold {
				weight = "bold"
			}
			fmt.Fprintf(sb,
				`<text x="%g" y="%g" font-size="%g" font-family="Helvetica,sans-serif" font-weight="%s" fill="%s" textLength="%g" lengthAdjust="spacingAndGlyphs">%s</text>`+"\n",
				e.Box.X, e.Box.MaxY()-0.18*e.Box.H, e.Box.H, weight, rgb(e.Color),
				e.Box.W, escape(e.Text))
		}
	}
}

func renderTree(sb *strings.Builder, root *doc.Node) {
	maxDepth := 1
	root.Walk(func(n *doc.Node) {
		if n.Depth > maxDepth {
			maxDepth = n.Depth
		}
	})
	root.Walk(func(n *doc.Node) {
		opacity := 0.25 + 0.75*float64(n.Depth)/float64(maxDepth)
		rect(sb, n.Box, "none", "#208040", 1, opacity)
	})
}

func renderTruth(sb *strings.Builder, truth *doc.GroundTruth) {
	// Stable colour per entity, drawn in annotation order.
	entities := truth.Entities()
	colorOf := map[string]string{}
	palette := []string{"#c02020", "#2020c0", "#108010", "#b06000", "#801080", "#006080"}
	for i, e := range entities {
		colorOf[e] = palette[i%len(palette)]
	}
	sort.SliceStable(truth.Annotations, func(i, j int) bool {
		return truth.Annotations[i].Entity < truth.Annotations[j].Entity
	})
	for _, a := range truth.Annotations {
		c := colorOf[a.Entity]
		rect(sb, a.Box.Inset(-1), "none", c, 1.4, 1)
		fmt.Fprintf(sb, `<text x="%g" y="%g" font-size="7" fill="%s">%s</text>`+"\n",
			a.Box.X, a.Box.Y-2, c, escape(a.Entity))
	}
}

func rect(sb *strings.Builder, r geom.Rect, fill, stroke string, width, opacity float64) {
	fmt.Fprintf(sb,
		`<rect x="%g" y="%g" width="%g" height="%g" fill="%s" stroke="%s" stroke-width="%g" stroke-opacity="%g"/>`+"\n",
		r.X, r.Y, r.W, r.H, fill, stroke, width, opacity)
}

func rgb(c colorlab.RGB) string {
	return fmt.Sprintf("#%02x%02x%02x", c.R, c.G, c.B)
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// ASCII renders the document's block structure as a character grid —
// terminal-friendly layout inspection for environments without an SVG
// viewer. Each block is outlined with box-drawing characters and tagged
// with an index.
func ASCII(d *doc.Document, blocks []*doc.Node, cols int) string {
	if cols <= 0 {
		cols = 80
	}
	scale := float64(cols) / d.Width
	rows := int(d.Height*scale/2) + 1 // terminal cells are ~2:1
	grid := make([][]rune, rows)
	for i := range grid {
		grid[i] = make([]rune, cols)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	set := func(x, y int, r rune) {
		if y >= 0 && y < rows && x >= 0 && x < cols {
			grid[y][x] = r
		}
	}
	for idx, b := range blocks {
		x0 := int(b.Box.X * scale)
		x1 := int(b.Box.MaxX() * scale)
		y0 := int(b.Box.Y * scale / 2)
		y1 := int(b.Box.MaxY() * scale / 2)
		for x := x0; x <= x1; x++ {
			set(x, y0, '─')
			set(x, y1, '─')
		}
		for y := y0; y <= y1; y++ {
			set(x0, y, '│')
			set(x1, y, '│')
		}
		set(x0, y0, '┌')
		set(x1, y0, '┐')
		set(x0, y1, '└')
		set(x1, y1, '┘')
		label := []rune(fmt.Sprintf("%d", idx))
		for i, r := range label {
			set(x0+1+i, y0, r)
		}
	}
	var sb strings.Builder
	for _, row := range grid {
		sb.WriteString(strings.TrimRight(string(row), " "))
		sb.WriteByte('\n')
	}
	return sb.String()
}
