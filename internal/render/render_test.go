package render

import (
	"strings"
	"testing"

	"vs2/internal/colorlab"
	"vs2/internal/datasets"
	"vs2/internal/doc"
	"vs2/internal/geom"
	"vs2/internal/segment"
)

func sample() *doc.Document {
	d := &doc.Document{ID: "r", Width: 200, Height: 100, Background: colorlab.White}
	d.Elements = []doc.Element{
		{ID: 0, Kind: doc.TextElement, Text: "Hello <World> & \"Co\"",
			Box: geom.Rect{X: 10, Y: 10, W: 100, H: 14}, Color: colorlab.Black, Bold: true},
		{ID: 1, Kind: doc.ImageElement, ImageData: "pic",
			Box: geom.Rect{X: 10, Y: 40, W: 50, H: 40}},
	}
	return d
}

func TestSVGBasics(t *testing.T) {
	d := sample()
	svg := SVG(d, Options{})
	for _, want := range []string{
		`<svg xmlns="http://www.w3.org/2000/svg"`,
		`font-weight="bold"`,
		"Hello &lt;World&gt; &amp; &quot;Co&quot;", // escaped text
		"</svg>",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// The image placeholder draws a crossed rect.
	if strings.Count(svg, "<line") < 2 {
		t.Error("image cross missing")
	}
}

func TestSVGOverlays(t *testing.T) {
	d := sample()
	blocks := []*doc.Node{{Box: geom.Rect{X: 5, Y: 5, W: 110, H: 24}, Elements: []int{0}}}
	truth := &doc.GroundTruth{DocID: "r", Annotations: []doc.Annotation{
		{Entity: "Title", Box: geom.Rect{X: 10, Y: 10, W: 100, H: 14}, Text: "x"},
	}}
	svg := SVG(d, Options{Blocks: blocks, Interest: blocks, Truth: truth, HideText: true})
	if strings.Contains(svg, "Hello") {
		t.Error("HideText did not hide text")
	}
	if !strings.Contains(svg, "#2060c0") {
		t.Error("block outline missing")
	}
	if !strings.Contains(svg, "#d02020") {
		t.Error("interest outline missing")
	}
	if !strings.Contains(svg, ">Title<") {
		t.Error("annotation label missing")
	}
}

func TestSVGTreeOverlay(t *testing.T) {
	d := sample()
	root := doc.NewTree(d)
	root.AddChild(geom.Rect{X: 10, Y: 10, W: 100, H: 14}, []int{0})
	root.AddChild(geom.Rect{X: 10, Y: 40, W: 50, H: 40}, []int{1})
	svg := SVG(d, Options{Tree: root})
	if strings.Count(svg, "#208040") < 3 { // root + 2 children
		t.Error("tree outlines missing")
	}
}

func TestSVGOnGeneratedPoster(t *testing.T) {
	l := datasets.GenerateD2(datasets.Options{N: 1, Seed: 5})[0]
	blocks := segment.New(segment.Options{}).Blocks(l.Doc)
	svg := SVG(l.Doc, Options{Blocks: blocks, Truth: l.Truth})
	if len(svg) < 1000 {
		t.Errorf("suspiciously small SVG: %d bytes", len(svg))
	}
	// Well-formedness smoke: every rect/text self-closes or closes.
	if strings.Count(svg, "<svg") != 1 || strings.Count(svg, "</svg>") != 1 {
		t.Error("svg envelope malformed")
	}
}

func TestASCII(t *testing.T) {
	d := sample()
	blocks := []*doc.Node{
		{Box: geom.Rect{X: 10, Y: 10, W: 100, H: 14}},
		{Box: geom.Rect{X: 10, Y: 40, W: 50, H: 40}},
	}
	art := ASCII(d, blocks, 60)
	if !strings.Contains(art, "┌") || !strings.Contains(art, "┘") {
		t.Errorf("box drawing missing:\n%s", art)
	}
	if !strings.Contains(art, "0") || !strings.Contains(art, "1") {
		t.Error("block indices missing")
	}
	// Default width.
	if ASCII(d, blocks, 0) == "" {
		t.Error("default-width ASCII empty")
	}
}
