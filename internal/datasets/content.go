package datasets

import (
	"fmt"
	"math/rand"
	"strings"
)

// Content pools for the synthetic corpora. Names, cities and organisation
// forms deliberately overlap the gazetteers of the nlp package — exactly as
// the paper's real documents overlap the vocabulary of the Stanford NER —
// while leaving enough out-of-gazetteer mass to keep the annotators
// imperfect.

var firstNamePool = []string{
	"James", "Mary", "Robert", "Patricia", "Michael", "Linda", "David",
	"Elizabeth", "William", "Barbara", "Richard", "Susan", "Joseph",
	"Jessica", "Thomas", "Sarah", "Kevin", "Karen", "Brian", "Nancy",
	"Edward", "Lisa", "Ronald", "Margaret", "Anthony", "Betty", "Jason",
	"Sandra", "Matthew", "Ashley", "Gary", "Emily", "Timothy", "Donna",
	"Maria", "Elena", "Priya", "Wei", "Ahmed", "Sofia", "Marco", "Yuki",
	"Dmitri", "Ingrid", "Ravi", "Aisha", "Hannah", "Victor", "Julia",
	"Samuel",
}

var lastNamePool = []string{
	"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
	"Davis", "Rodriguez", "Martinez", "Wilson", "Anderson", "Taylor",
	"Thomas", "Moore", "Jackson", "Martin", "Lee", "Thompson", "White",
	"Harris", "Clark", "Lewis", "Robinson", "Walker", "Hall", "Young",
	"King", "Wright", "Scott", "Green", "Baker", "Adams", "Nelson",
	"Mitchell", "Carter", "Roberts", "Turner", "Phillips", "Campbell",
	"Parker", "Evans", "Edwards", "Collins", "Stewart", "Morris", "Murphy",
	"Cook", "Rogers", "Walsh", "Petrov", "Tanaka", "Novak", "Kowalski",
}

var orgStemPool = []string{
	"Riverside", "Summit", "Lakeview", "Heritage", "Capital", "Northside",
	"Downtown", "Maplewood", "Crestview", "Pinnacle", "Harbor", "Evergreen",
	"Franklin", "Liberty", "Union", "Meridian", "Cascade", "Horizon",
	"Redstone", "Silverlake", "Oakwood", "Buckeye", "Scioto", "Olentangy",
}

var eventOrgSuffixPool = []string{
	"Jazz Society", "Arts Council", "Community Center", "Music Club",
	"Cultural Association", "Theatre Company", "Dance Academy",
	"Historical Society", "Film Society", "Library Foundation",
	"Youth Orchestra", "Garden Club", "Writers Guild", "Science Museum",
}

var brokerOrgSuffixPool = []string{
	"Realty LLC", "Properties Inc", "Commercial Group", "Real Estate Partners",
	"Brokerage Co", "Property Advisors LLC", "Land Company", "Holdings Corp",
	"Realty Group", "Investment Properties Inc",
}

var streetNamePool = []string{
	"Maple", "Oak", "Main", "High", "Walnut", "Cedar", "Elm", "Washington",
	"Lincoln", "Jefferson", "Park", "Lake", "Hill", "River", "Spring",
	"Church", "Market", "Broad", "Front", "Mill", "Corporate", "Commerce",
	"Industrial", "Enterprise", "Innovation",
}

var streetSuffixPool = []string{"St", "Ave", "Rd", "Blvd", "Dr", "Ln", "Ct", "Pkwy", "Way", "Pl"}

var cityPool = []string{
	"Columbus", "Westerville", "Dublin", "Hilliard", "Gahanna", "Bexley",
	"Whitehall", "Reynoldsburg", "Pickerington", "Lancaster", "Newark",
	"Marion", "Delaware", "Cleveland", "Dayton",
}

var eventKindPool = []string{
	"Jazz Night", "Art Walk", "Poetry Slam", "Food Festival", "Film Screening",
	"Science Fair", "Book Fair", "Dance Recital", "Craft Market",
	"Charity Gala", "Wine Tasting", "Open Mic", "History Lecture",
	"Chamber Concert", "Photography Workshop", "Coding Bootcamp",
	"Yoga Class", "Farmers Market", "Trivia Night", "Choir Performance",
}

var eventAdjPool = []string{
	"Annual", "Grand", "Summer", "Winter", "Spring", "Autumn", "Midnight",
	"Downtown", "Free", "Family", "Community", "International", "Local",
	"Second", "Third", "10th",
}

var eventDescPool = []string{
	"join us for an unforgettable evening of live music and great food",
	"bring the whole family and enjoy free snacks and activities for kids",
	"doors open early and seating is limited so arrive on time",
	"featuring special guests and a raffle with amazing prizes",
	"a celebration of local talent with performances all evening",
	"learn new skills and meet people who share your interests",
	"all proceeds benefit local community programs and schools",
	"light refreshments will be served during the intermission",
	"come early to explore the gallery and meet the artists",
	"an exciting program of workshops and hands-on demonstrations",
}

var weekdayPool = []string{"Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday", "Sunday"}
var monthPool = []string{"January", "February", "March", "April", "May", "June",
	"July", "August", "September", "October", "November", "December"}

var propertyTypePool = []string{
	"retail space", "office building", "warehouse", "mixed-use building",
	"restaurant space", "medical office", "industrial lot", "storefront",
	"commercial land", "flex space",
}

var propertyDescPool = []string{
	"prime location near downtown with excellent street visibility",
	"recently renovated building with modern fixtures throughout",
	"ample parking and easy highway access for commuters",
	"close to grocery stores restaurants and public transit",
	"ideal for retail office or restaurant use with flexible zoning",
	"high ceilings open floor plan and abundant natural light",
	"well maintained property in a rapidly growing business corridor",
	"corner lot with signage opportunities and heavy foot traffic",
}

var taxSubjectPool = []string{
	"Wages, salaries, tips", "Taxable interest income", "Dividend income",
	"Business income or loss", "Capital gain or loss", "Total pensions",
	"Unemployment compensation", "Social security benefits",
	"Adjusted gross income", "Itemized deductions", "Standard deduction",
	"Taxable income", "Federal income tax withheld", "Earned income credit",
	"Child care expenses", "Moving expenses", "Alimony paid",
	"IRA deduction", "Self-employment tax", "Estimated tax payments",
	"Amount you owe", "Refund amount", "Total tax", "Total income",
	"Medical and dental expenses", "State and local taxes", "Real estate taxes",
	"Home mortgage interest", "Charitable contributions", "Casualty losses",
	"Union dues", "Tax preparation fees", "Rental income", "Royalty income",
	"Farm income or loss", "Foreign tax credit", "Education credits",
	"Retirement savings contribution", "Residential energy credit",
	"Alternative minimum tax", "Household employment taxes",
	"Spouse's occupation", "Presidential election campaign fund",
	"Filing status", "Total exemptions claimed", "Dependent's relationship",
}

// pick returns a deterministic random element of the pool.
func pick(rng *rand.Rand, pool []string) string {
	return pool[rng.Intn(len(pool))]
}

func personName(rng *rand.Rand) string {
	return pick(rng, firstNamePool) + " " + pick(rng, lastNamePool)
}

func eventOrgName(rng *rand.Rand) string {
	return pick(rng, orgStemPool) + " " + pick(rng, eventOrgSuffixPool)
}

func brokerOrgName(rng *rand.Rand) string {
	return pick(rng, orgStemPool) + " " + pick(rng, brokerOrgSuffixPool)
}

func streetAddress(rng *rand.Rand) string {
	return fmt.Sprintf("%d %s %s", 100+rng.Intn(8900), pick(rng, streetNamePool), pick(rng, streetSuffixPool))
}

func cityStateZip(rng *rand.Rand) string {
	return fmt.Sprintf("%s, OH %d", pick(rng, cityPool), 43000+rng.Intn(999))
}

func phoneNumber(rng *rand.Rand) string {
	styles := []string{"614-555-%04d", "(614) 555-%04d", "614.555.%04d"}
	return fmt.Sprintf(pick(rng, styles), rng.Intn(10000))
}

func emailAddr(rng *rand.Rand, name string) string {
	parts := strings.Fields(strings.ToLower(name))
	user := parts[0]
	if len(parts) > 1 {
		user = parts[0] + "." + parts[len(parts)-1]
	}
	domains := []string{"acmerealty.com", "cityproperties.net", "ohiobrokers.org",
		"summitgroup.com", "midwestcommercial.com"}
	return user + "@" + pick(rng, domains)
}

func eventTitle(rng *rand.Rand) string {
	if rng.Float64() < 0.6 {
		return pick(rng, eventAdjPool) + " " + pick(rng, eventKindPool)
	}
	return pick(rng, eventKindPool)
}

func eventTime(rng *rand.Rand) string {
	day := pick(rng, weekdayPool)
	month := pick(rng, monthPool)
	date := 1 + rng.Intn(28)
	hour := 1 + rng.Intn(11)
	min := []string{"00", "30", "15"}[rng.Intn(3)]
	ampm := []string{"AM", "PM"}[rng.Intn(2)]
	switch rng.Intn(3) {
	case 0:
		return fmt.Sprintf("%s, %s %d, %d:%s %s", day, month, date, hour, min, ampm)
	case 1:
		return fmt.Sprintf("%s %d at %d:%s %s", month, date, hour, min, ampm)
	default:
		return fmt.Sprintf("%s %d:%s %s", day, hour, min, ampm)
	}
}

func propertySize(rng *rand.Rand) string {
	switch rng.Intn(3) {
	case 0:
		return fmt.Sprintf("%d,%03d sqft", 1+rng.Intn(20), rng.Intn(1000))
	case 1:
		return fmt.Sprintf("%d.%d acres", 1+rng.Intn(12), rng.Intn(10))
	default:
		return fmt.Sprintf("%d floors %d,%03d sqft", 1+rng.Intn(5), 1+rng.Intn(9), rng.Intn(1000))
	}
}

func moneyAmount(rng *rand.Rand) string {
	if rng.Float64() < 0.5 {
		return fmt.Sprintf("%d,%03d.%02d", rng.Intn(90)+1, rng.Intn(1000), rng.Intn(100))
	}
	return fmt.Sprintf("%d.%02d", rng.Intn(9000)+100, rng.Intn(100))
}

// Exported content accessors for the holdout package: distant supervision
// needs holdout text drawn from the same distributions as the documents.

// EventTitleFor samples an event title.
func EventTitleFor(rng *rand.Rand) string { return eventTitle(rng) }

// OrganizerFor samples an event organizer (person or organisation).
func OrganizerFor(rng *rand.Rand) string {
	if rng.Float64() < 0.5 {
		return eventOrgName(rng)
	}
	return personName(rng)
}

// EventTimeFor samples an event time expression.
func EventTimeFor(rng *rand.Rand) string { return eventTime(rng) }

// PlaceFor samples a full venue address.
func PlaceFor(rng *rand.Rand) string {
	return streetAddress(rng) + ", " + cityStateZip(rng)
}

// EventDescFor samples an event description sentence.
func EventDescFor(rng *rand.Rand) string { return pick(rng, eventDescPool) }

// PersonFor samples a person name.
func PersonFor(rng *rand.Rand) string { return personName(rng) }

// FlyerContent is the exported view of one real-estate listing's fields.
type FlyerContent struct {
	Size       string
	Address    string
	Desc       string
	BrokerName string
	Phone      string
	Email      string
}

// FlyerContentFor samples listing content for the holdout sites.
func FlyerContentFor(rng *rand.Rand) FlyerContent {
	name := personName(rng)
	return FlyerContent{
		Size:       propertySize(rng),
		Address:    streetAddress(rng) + ", " + cityStateZip(rng),
		Desc:       pick(rng, propertyDescPool),
		BrokerName: name,
		Phone:      phoneNumber(rng),
		Email:      emailAddr(rng, name),
	}
}
