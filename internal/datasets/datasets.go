// Package datasets generates the three experimental corpora of Section 6.1
// as parametric synthetic equivalents:
//
//   - D1, the NIST Tax dataset [33]: scanned structured tax forms across 20
//     form faces, with one named entity per form field (the paper's corpus
//     has 5595 images and 1369 field types);
//   - D2, the Event Posters dataset: visually rich posters and flyers
//     mixing mobile captures (1375/2190 in the paper) with born-digital
//     PDFs, annotated with the five Table 3 entities;
//   - D3, the Real-estate Flyers dataset: born-digital HTML flyers from
//     broker sites, annotated with the six Table 4 entities.
//
// The real corpora are unavailable (NIST SD6 is distributed on request;
// D2/D3 were collected by the authors and never released), so the
// generators reproduce the distributional properties the algorithms
// depend on: whitespace-delimited sections, font-size salience, template
// reuse within a source, layout heterogeneity across sources, and the
// capture-mode mix that drives OCR noise. Every generator is deterministic
// for a fixed seed.
package datasets

import (
	"fmt"
	"math/rand"

	"vs2/internal/colorlab"
	"vs2/internal/doc"
	"vs2/internal/geom"
)

// Options configures a generator run.
type Options struct {
	// N is the number of documents to generate (default 100).
	N int
	// Seed drives all randomness (default 1).
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.N <= 0 {
		o.N = 100
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// page is a small layout builder shared by the generators: it places word
// runs, tracks element IDs, and records ground-truth boxes.
type page struct {
	d    *doc.Document
	next int
}

func newPage(id, dataset string, w, h float64, capture doc.Capture, bg colorlab.RGB) *page {
	return &page{d: &doc.Document{
		ID: id, Dataset: dataset, Width: w, Height: h,
		Capture: capture, Background: bg,
	}}
}

// charW approximates glyph advance as a fraction of the font height.
const charW = 0.55

// textWidth estimates the rendered width of a string.
func textWidth(s string, fontH float64) float64 {
	return float64(len(s)) * fontH * charW
}

// words lays the text out as word elements starting at (x, y); returns the
// bounding box of the run and the IDs of the created elements.
func (p *page) words(x, y, fontH float64, color colorlab.RGB, bold bool, text string) (geom.Rect, []int) {
	cx := x
	var box geom.Rect
	var ids []int
	for _, w := range splitWords(text) {
		width := textWidth(w, fontH)
		e := doc.Element{
			ID: p.next, Kind: doc.TextElement, Text: w,
			Box:      geom.Rect{X: cx, Y: y, W: width, H: fontH},
			Color:    color,
			FontSize: fontH, Bold: bold, Line: int(y),
		}
		p.d.Elements = append(p.d.Elements, e)
		ids = append(ids, p.next)
		p.next++
		box = box.Union(e.Box)
		cx += width + fontH*0.5
	}
	return box, ids
}

// wrapped lays out text across multiple lines within maxW, with 1.35×
// leading; returns the overall box.
func (p *page) wrapped(x, y, fontH, maxW float64, color colorlab.RGB, text string) (geom.Rect, []int) {
	return p.wrappedLeading(x, y, fontH, maxW, 1.35, color, text)
}

// wrappedLeading is wrapped with an explicit leading factor. Designers set
// loose leading (1.9-2.2×) on airy poster copy; those paragraphs split at
// the whitespace-cut stage and only semantic merging reassembles them —
// the over-segmentation pressure the paper's Eq. 1 step exists for.
func (p *page) wrappedLeading(x, y, fontH, maxW, leading float64, color colorlab.RGB, text string) (geom.Rect, []int) {
	var box geom.Rect
	var ids []int
	cx, cy := x, y
	for _, w := range splitWords(text) {
		width := textWidth(w, fontH)
		if cx+width > x+maxW && cx > x {
			cx = x
			cy += fontH * leading
		}
		e := doc.Element{
			ID: p.next, Kind: doc.TextElement, Text: w,
			Box:      geom.Rect{X: cx, Y: cy, W: width, H: fontH},
			Color:    color,
			FontSize: fontH, Line: int(cy),
		}
		p.d.Elements = append(p.d.Elements, e)
		ids = append(ids, p.next)
		p.next++
		box = box.Union(e.Box)
		cx += width + fontH*0.5
	}
	return box, ids
}

// image places an image element.
func (p *page) image(x, y, w, h float64, tag string) (geom.Rect, int) {
	e := doc.Element{
		ID: p.next, Kind: doc.ImageElement, ImageData: tag,
		Box:  geom.Rect{X: x, Y: y, W: w, H: h},
		Line: -1,
	}
	p.d.Elements = append(p.d.Elements, e)
	id := p.next
	p.next++
	return e.Box, id
}

func splitWords(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ' ' {
			if cur != "" {
				out = append(out, cur)
				cur = ""
			}
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

// annotate records a ground-truth annotation.
func annotate(truth *doc.GroundTruth, entity string, box geom.Rect, text string) {
	truth.Annotations = append(truth.Annotations, doc.Annotation{
		Entity: entity, Box: box, Text: text,
	})
}

// domFor builds a simple DOM over labelled sections for born-digital
// documents; the VIPS and ML-based baselines consume it.
type domSection struct {
	tag   string
	box   geom.Rect
	elems []int
}

func buildDOM(d *doc.Document, sections []domSection) {
	buildDOMNoisy(d, sections, 0, nil)
}

// buildDOMNoisy builds the markup tree with conversion coarseness: with
// probability mergeProb per boundary, two adjacent sections share one
// block-level node. Real documents reach HTML through converters (the
// paper's A4 baseline converts PDFs per ISO 32000) whose output rarely
// matches the visual structure one-to-one — Gallo et al. [14] document
// exactly this degradation.
func buildDOMNoisy(d *doc.Document, sections []domSection, mergeProb float64, rng *rand.Rand) {
	root := &doc.DOMNode{Tag: "body", Box: d.Bounds()}
	var pending *doc.DOMNode
	for _, s := range sections {
		if len(s.elems) == 0 {
			continue
		}
		if pending != nil && rng != nil && rng.Float64() < mergeProb {
			pending.Elements = append(pending.Elements, s.elems...)
			pending.Box = pending.Box.Union(s.box)
			pending.Tag = "div"
			continue
		}
		node := &doc.DOMNode{
			Tag: s.tag, Box: s.box,
			Elements: append([]int(nil), s.elems...),
		}
		root.Children = append(root.Children, node)
		pending = node
	}
	d.DOM = root
}

// rngFor derives a per-document RNG so documents are independent of N.
func rngFor(seed int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(seed*1_000_003 + int64(i)*7919))
}

// docID formats a stable document identifier.
func docID(dataset string, i int) string { return fmt.Sprintf("%s-%05d", dataset, i) }
