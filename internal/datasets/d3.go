package datasets

import (
	"fmt"
	"math/rand"
	"strings"

	"vs2/internal/colorlab"
	"vs2/internal/doc"
	"vs2/internal/geom"
	"vs2/internal/pattern"
)

// Dataset D3 — online commercial real-estate flyers "collected from 20
// different real-estate broker websites" in HTML format (Section 6.1).
// Documents from the same broker site share a template (that per-source
// homogeneity is what lets the ReportMiner baseline work at all), while
// templates differ across sites. Six Table 4 entities are annotated.

// NumBrokerSites matches the paper's 20 source websites.
const NumBrokerSites = 20

// GenerateD3 produces n real-estate flyers distributed over the 20 sites.
func GenerateD3(opts Options) []doc.Labeled {
	opts = opts.withDefaults()
	out := make([]doc.Labeled, 0, opts.N)
	for i := 0; i < opts.N; i++ {
		rng := rngFor(opts.Seed+2, i)
		site := i % NumBrokerSites
		out = append(out, genFlyer(docID("d3", i), site, rng))
	}
	return out
}

// flyerContent is the ground truth of one flyer.
type flyerContent struct {
	headline   string
	address    string
	size       string
	desc       string
	brokerName string
	brokerOrg  string
	phone      string
	email      string
}

func makeFlyerContent(rng *rand.Rand) flyerContent {
	name := personName(rng)
	ptype := pick(rng, propertyTypePool)
	headline := strings.Title(ptype) + " for " + pick(rng, []string{"Lease", "Sale"})
	return flyerContent{
		headline:   headline,
		address:    streetAddress(rng) + ", " + cityStateZip(rng),
		size:       propertySize(rng),
		desc:       pick(rng, propertyDescPool),
		brokerName: name,
		brokerOrg:  brokerOrgName(rng),
		phone:      phoneNumber(rng),
		email:      emailAddr(rng, name),
	}
}

// sitePalette gives each broker site a stable colour scheme.
func sitePalette(site int) (headline, accent, body colorlab.RGB) {
	palettes := []struct{ h, a, b colorlab.RGB }{
		{colorlab.DarkNavy, colorlab.Gold, colorlab.Black},
		{colorlab.Burgundy, colorlab.Gray, colorlab.Black},
		{colorlab.TealPress, colorlab.DarkNavy, colorlab.Black},
		{colorlab.Black, colorlab.Red, colorlab.Gray},
		{colorlab.Blue, colorlab.Green, colorlab.Black},
	}
	p := palettes[site%len(palettes)]
	return p.h, p.a, p.b
}

// listingFooter drops the small-print data-attribution line real listing
// sites carry: a second organization, an update date and an office phone —
// decoys for BrokerName, BrokerPhone and the temporal patterns.
func listingFooter(p *page, rng *rand.Rand) []domSection {
	if rng.Float64() < 0.3 {
		return nil
	}
	text := fmt.Sprintf("listing data by %s updated %d/%d office %s",
		brokerOrgName(rng), 1+rng.Intn(12), 2015+rng.Intn(5), phoneNumber(rng))
	box, ids := p.words(24, p.d.Height-16, 7, colorlab.Gray, false, text)
	return []domSection{{"footer", box, ids}}
}

func genFlyer(id string, site int, rng *rand.Rand) doc.Labeled {
	const (
		pageW = 520.0
		pageH = 680.0
	)
	p := newPage(id, "d3", pageW, pageH, doc.CaptureDigital, colorlab.White)
	p.d.Template = fmt.Sprintf("site%02d", site)
	truth := &doc.GroundTruth{DocID: id}
	c := makeFlyerContent(rng)
	hc, ac, bc := sitePalette(site)

	var sections []domSection
	// Site template family: 20 sites map onto 4 structural variants with
	// per-site palettes and spacing offsets.
	switch site % 4 {
	case 0:
		sections = flyerClassic(p, truth, c, hc, ac, bc, site, rng)
	case 1:
		sections = flyerPhotoLeft(p, truth, c, hc, ac, bc, site, rng)
	case 2:
		sections = flyerBrokerTop(p, truth, c, hc, ac, bc, site, rng)
	default:
		sections = flyerTwoColumn(p, truth, c, hc, ac, bc, site, rng)
	}
	sections = append(sections, listingFooter(p, rng)...)
	// Broker sites are HTML-native, but template markup still wraps some
	// neighbouring sections in shared containers.
	buildDOMNoisy(p.d, sections, 0.1, rng)
	return doc.Labeled{Doc: p.d, Truth: truth}
}

// contactBlock renders the broker contact section and annotates it. The
// returned sections carry per-line DOM granularity — real broker sites
// mark each contact line with its own element, which is what lets
// markup-driven baselines (VIPS, ML-based) resolve contact entities.
func contactBlock(p *page, truth *doc.GroundTruth, c flyerContent,
	x, y float64, accent, body colorlab.RGB) (geom.Rect, []int, []domSection) {
	var all []int
	hBox, hIDs := p.words(x, y, 12, accent, true, "Contact "+c.brokerName)
	all = append(all, hIDs...)
	annotate(truth, pattern.BrokerName, hBox, c.brokerName)

	oBox, oIDs := p.words(x, hBox.MaxY()+13, 10, body, false, c.brokerOrg)
	all = append(all, oIDs...)

	phBox, phIDs := p.words(x, oBox.MaxY()+13, 10, body, false, c.phone)
	all = append(all, phIDs...)
	annotate(truth, pattern.BrokerPhone, phBox, c.phone)

	emBox, emIDs := p.words(x, phBox.MaxY()+13, 10, body, false, c.email)
	all = append(all, emIDs...)
	annotate(truth, pattern.BrokerEmail, emBox, c.email)

	sections := []domSection{
		{"h4", hBox, hIDs},
		{"p", oBox, oIDs},
		{"p", phBox, phIDs}, {"p", emBox, emIDs},
	}
	return hBox.Union(oBox).Union(phBox).Union(emBox), all, sections
}

func flyerClassic(p *page, truth *doc.GroundTruth, c flyerContent,
	hc, ac, bc colorlab.RGB, site int, rng *rand.Rand) []domSection {
	yOff := float64(site%5) * 6
	tBox, tIDs := p.words(30, 40+yOff, 26, hc, true, c.headline)
	annotate(truth, pattern.PropertyDesc, tBox, c.headline)
	aBox, aIDs := p.words(30, tBox.MaxY()+16, 13, ac, false, c.address)
	annotate(truth, pattern.PropertyAddr, aBox, c.address)

	imgBox, imgID := p.image(30, aBox.MaxY()+30, 300, 170, "property-photo")

	szBox, szIDs := p.words(30, imgBox.MaxY()+30, 14, hc, true, c.size)
	annotate(truth, pattern.PropertySize, szBox, c.size)

	dBox, dIDs := p.wrapped(30, szBox.MaxY()+25, 11, p.d.Width-60, bc, c.desc)
	annotate(truth, pattern.PropertyDesc, dBox, c.desc)

	cbBox, cbIDs, cbSecs := contactBlock(p, truth, c, 360, imgBox.Y, ac, bc)
	_ = cbBox
	_ = cbIDs

	return append([]domSection{
		{"h1", tBox, tIDs}, {"h2", aBox, aIDs},
		{"img", imgBox, []int{imgID}},
		{"h3", szBox, szIDs}, {"p", dBox, dIDs},
	}, cbSecs...)
}

func flyerPhotoLeft(p *page, truth *doc.GroundTruth, c flyerContent,
	hc, ac, bc colorlab.RGB, site int, rng *rand.Rand) []domSection {
	imgBox, imgID := p.image(0, 0, 220, 300, "property-photo")

	tBox, tIDs := p.words(250, 50, 22, hc, true, c.headline)
	annotate(truth, pattern.PropertyDesc, tBox, c.headline)
	aBox, aIDs := p.words(250, tBox.MaxY()+14, 12, ac, false, c.address)
	annotate(truth, pattern.PropertyAddr, aBox, c.address)
	szBox, szIDs := p.words(250, aBox.MaxY()+24, 13, hc, true, c.size)
	annotate(truth, pattern.PropertySize, szBox, c.size)

	dBox, dIDs := p.wrapped(30, imgBox.MaxY()+40, 11, p.d.Width-60, bc, c.desc)
	annotate(truth, pattern.PropertyDesc, dBox, c.desc)

	cbBox, cbIDs, cbSecs := contactBlock(p, truth, c, 30, dBox.MaxY()+50, ac, bc)
	_ = cbBox
	_ = cbIDs

	return append([]domSection{
		{"img", imgBox, []int{imgID}},
		{"h1", tBox, tIDs}, {"h2", aBox, aIDs}, {"h3", szBox, szIDs},
		{"p", dBox, dIDs},
	}, cbSecs...)
}

func flyerBrokerTop(p *page, truth *doc.GroundTruth, c flyerContent,
	hc, ac, bc colorlab.RGB, site int, rng *rand.Rand) []domSection {
	cbBox, cbIDs, cbSecs := contactBlock(p, truth, c, 340, 30, ac, bc)
	_ = cbIDs

	tBox, tIDs := p.words(30, 30, 24, hc, true, c.headline)
	annotate(truth, pattern.PropertyDesc, tBox, c.headline)
	aBox, aIDs := p.words(30, tBox.MaxY()+14, 12, ac, false, c.address)
	annotate(truth, pattern.PropertyAddr, aBox, c.address)

	imgBox, imgID := p.image(30, cbBox.MaxY()+40, p.d.Width-60, 180, "property-photo")

	szBox, szIDs := p.words(30, imgBox.MaxY()+28, 13, hc, true, c.size)
	annotate(truth, pattern.PropertySize, szBox, c.size)
	dBox, dIDs := p.wrapped(30, szBox.MaxY()+24, 11, p.d.Width-60, bc, c.desc)
	annotate(truth, pattern.PropertyDesc, dBox, c.desc)

	return append(append([]domSection{}, cbSecs...), []domSection{
		{"h1", tBox, tIDs}, {"h2", aBox, aIDs},
		{"img", imgBox, []int{imgID}},
		{"h3", szBox, szIDs}, {"p", dBox, dIDs},
	}...)
}

func flyerTwoColumn(p *page, truth *doc.GroundTruth, c flyerContent,
	hc, ac, bc colorlab.RGB, site int, rng *rand.Rand) []domSection {
	tBox, tIDs := p.words(30, 36, 24, hc, true, c.headline)
	annotate(truth, pattern.PropertyDesc, tBox, c.headline)

	// Left column: property facts.
	aBox, aIDs := p.wrapped(30, tBox.MaxY()+40, 12, 200, ac, c.address)
	annotate(truth, pattern.PropertyAddr, aBox, c.address)
	szBox, szIDs := p.wrapped(30, aBox.MaxY()+26, 13, 200, hc, c.size)
	annotate(truth, pattern.PropertySize, szBox, c.size)
	dBox, dIDs := p.wrapped(30, szBox.MaxY()+30, 11, 200, bc, c.desc)
	annotate(truth, pattern.PropertyDesc, dBox, c.desc)

	// Right column: photo plus contact.
	imgBox, imgID := p.image(280, tBox.MaxY()+40, 210, 160, "property-photo")
	cbBox, cbIDs, cbSecs := contactBlock(p, truth, c, 280, imgBox.MaxY()+35, ac, bc)
	_ = cbBox
	_ = cbIDs

	return append([]domSection{
		{"h1", tBox, tIDs},
		{"h2", aBox, aIDs}, {"h3", szBox, szIDs}, {"p", dBox, dIDs},
		{"img", imgBox, []int{imgID}},
	}, cbSecs...)
}
