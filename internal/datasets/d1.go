package datasets

import (
	"fmt"
	"math/rand"

	"vs2/internal/colorlab"
	"vs2/internal/doc"
)

// Dataset D1 — structured tax forms in the manner of the NIST Special
// Database 6: 20 form faces from one "package", each a fixed template of
// labelled fields with filled-in values. The IE task extracts every named
// entity corresponding to a form field (Section 6.1); following
// Section 5.2.1, the patterns are exact string matches against the field
// descriptors, so the per-face descriptor inventory doubles as the holdout
// corpus content.

// NumFormFaces is the number of distinct form templates, as in NIST SD6.
const NumFormFaces = 20

// fieldsPerFace yields 20 faces × ~68 fields ≈ the paper's 1369 fields.
func fieldsPerFace(face int) int { return 64 + (face*7)%9 }

// fieldKey is the entity key of one form field.
func fieldKey(face, field int) string { return fmt.Sprintf("face%02d_f%03d", face, field) }

// fieldDescriptor builds the printed label of a field, unique per face.
func fieldDescriptor(face, field int) string {
	subject := taxSubjectPool[(face*13+field)%len(taxSubjectPool)]
	switch field % 3 {
	case 0:
		return fmt.Sprintf("%d %s", field+1, subject)
	case 1:
		return fmt.Sprintf("Line %d. %s", field+1, subject)
	default:
		return fmt.Sprintf("%d %s (see instructions)", field+1, subject)
	}
}

// D1Fields returns entity key → descriptor list for every field of every
// form face — the input to pattern.TaxPatterns and the D1 holdout corpus.
func D1Fields() map[string][]string {
	out := map[string][]string{}
	for face := 0; face < NumFormFaces; face++ {
		for f := 0; f < fieldsPerFace(face); f++ {
			out[fieldKey(face, f)] = []string{fieldDescriptor(face, f)}
		}
	}
	return out
}

// D1FieldCount reports the total number of distinct form fields.
func D1FieldCount() int {
	n := 0
	for face := 0; face < NumFormFaces; face++ {
		n += fieldsPerFace(face)
	}
	return n
}

// GenerateD1 produces n scanned tax-form documents cycling through the 20
// form faces.
func GenerateD1(opts Options) []doc.Labeled {
	opts = opts.withDefaults()
	out := make([]doc.Labeled, 0, opts.N)
	for i := 0; i < opts.N; i++ {
		rng := rngFor(opts.Seed, i)
		face := i % NumFormFaces
		out = append(out, genTaxForm(docID("d1", i), face, rng))
	}
	return out
}

func genTaxForm(id string, face int, rng *rand.Rand) doc.Labeled {
	const (
		pageW = 612.0
		pageH = 792.0
	)
	p := newPage(id, "d1", pageW, pageH, doc.CaptureScan, colorlab.White)
	p.d.Template = fmt.Sprintf("face%02d", face)
	truth := &doc.GroundTruth{DocID: id}

	// Form header.
	title := fmt.Sprintf("Form 10%02d Department of the Treasury", 40+face)
	p.words(40, 24, 14, colorlab.Black, true, title)
	p.words(40, 46, 9, colorlab.Gray, false,
		fmt.Sprintf("Individual Income Tax Return 1988 face %d", face))

	nFields := fieldsPerFace(face)
	twoColumn := face%2 == 1

	labelFont := 8.0
	valueFont := 8.0
	rowH := 20.0 // a full-line gutter between rows: each field is its own block

	y := 80.0
	col := 0
	for f := 0; f < nFields; f++ {
		var lx float64
		if twoColumn {
			if col == 0 {
				lx = 36
			} else {
				lx = 320
			}
		} else {
			lx = 40
			// Real 1040 faces pack short fields two to a line; the narrow
			// inter-field gap defeats line-based layout analysis (the
			// Tesseract baseline merges the pair) while the whitespace-cut
			// model still separates them.
			if f%5 == 4 && f+1 < nFields {
				descA := fieldDescriptor(face, f)
				valueA := fieldValue(rng, f)
				desc2 := fieldDescriptor(face, f+1)
				value2 := fieldValue(rng, f+1)
				lbBox, _ := p.words(40, y, labelFont, colorlab.Black, false, descA)
				vBox, _ := p.words(lbBox.MaxX()+5, y, valueFont, colorlab.Black, false, valueA)
				annotate(truth, fieldKey(face, f), lbBox.Union(vBox), valueA)
				lx2 := vBox.MaxX() + 22
				lbBox2, _ := p.words(lx2, y, labelFont, colorlab.Black, false, desc2)
				vBox2, _ := p.words(lbBox2.MaxX()+5, y, valueFont, colorlab.Black, false, value2)
				annotate(truth, fieldKey(face, f+1), lbBox2.Union(vBox2), value2)
				f++
				y += rowH
				if y > pageH-30 {
					break
				}
				continue
			}
		}
		desc := fieldDescriptor(face, f)
		value := fieldValue(rng, f)
		lbBox, _ := p.words(lx, y, labelFont, colorlab.Black, false, desc)
		// The value sits right after the label, close enough (sub-line gap)
		// that segmentation keeps label and value in one logical block.
		vBox, _ := p.words(lbBox.MaxX()+5, y, valueFont, colorlab.Black, false, value)

		annotate(truth, fieldKey(face, f), lbBox.Union(vBox), value)

		// Advance layout.
		if twoColumn {
			col = 1 - col
			if col == 0 {
				y += rowH
			}
		} else {
			y += rowH
		}
		if y > pageH-30 {
			break
		}
	}
	return doc.Labeled{Doc: p.d, Truth: truth}
}

// fieldValue fills a field with a plausible value.
func fieldValue(rng *rand.Rand, field int) string {
	switch field % 5 {
	case 0, 1:
		return moneyAmount(rng)
	case 2:
		return fmt.Sprintf("%d", rng.Intn(99999))
	case 3:
		return personName(rng)
	default:
		return []string{"Yes", "No", "X", "None", "0"}[rng.Intn(5)]
	}
}
