package datasets

import (
	"fmt"
	"math/rand"

	"vs2/internal/colorlab"
	"vs2/internal/doc"
	"vs2/internal/geom"
	"vs2/internal/pattern"
)

// Dataset D2 — event posters and flyers advertising local events,
// "collected randomly from various sources, including local magazines,
// bulletin boards, and event hosting websites" (Section 6.1). The paper's
// corpus mixes 1375 mobile captures with 815 born-digital PDFs out of 2190
// documents; the generator reproduces that ratio. Five Table 3 entities
// are annotated: Event Title, Event Place, Event Time, Event Organizer and
// Event Description.

// mobileFraction matches the paper's 1375/2190 capture mix.
const mobileFraction = 1375.0 / 2190.0

// posterPalettes give each poster a coherent colour scheme.
var posterPalettes = []struct {
	bg, headline, accent, body colorlab.RGB
}{
	{colorlab.White, colorlab.DarkNavy, colorlab.Burgundy, colorlab.Black},
	{colorlab.Cream, colorlab.Burgundy, colorlab.TealPress, colorlab.Black},
	{colorlab.White, colorlab.Red, colorlab.Blue, colorlab.Gray},
	{colorlab.Cream, colorlab.TealPress, colorlab.Gold, colorlab.Black},
	{colorlab.White, colorlab.Black, colorlab.Red, colorlab.Gray},
}

// GenerateD2 produces n event posters across five layout templates.
func GenerateD2(opts Options) []doc.Labeled {
	opts = opts.withDefaults()
	out := make([]doc.Labeled, 0, opts.N)
	for i := 0; i < opts.N; i++ {
		rng := rngFor(opts.Seed+1, i)
		out = append(out, genPoster(docID("d2", i), rng))
	}
	return out
}

// posterContent is the ground-truth content of one poster.
type posterContent struct {
	title     string
	organizer string // rendered inside organizerLine
	orgLine   string
	time      string
	place     string
	desc      string
}

// descLeading samples the description paragraph's leading: most posters
// set copy tight, a third set it airy enough that lines become visually
// separate areas.
func descLeading(rng *rand.Rand) float64 {
	switch r := rng.Float64(); {
	case r < 0.60:
		return 1.35
	case r < 0.85:
		return 1.9
	default:
		return 2.6
	}
}

func makePosterContent(rng *rand.Rand) posterContent {
	var organizer string
	if rng.Float64() < 0.5 {
		organizer = eventOrgName(rng)
	} else {
		organizer = personName(rng)
	}
	// Poster conventions: a third of posters carry the bare organizer name
	// as its own credit line; the rest frame it ("Presented by X",
	// "X presents", ...).
	var line string
	switch r := rng.Float64(); {
	case r < 0.35:
		line = organizer
	default:
		styles := []string{
			"Presented by %s", "Hosted by %s", "Organized by %s", "%s presents",
		}
		line = fmt.Sprintf(pick(rng, styles), organizer)
	}
	return posterContent{
		title:     eventTitle(rng),
		organizer: organizer,
		orgLine:   line,
		time:      eventTime(rng),
		place:     streetAddress(rng) + ", " + cityStateZip(rng),
		desc:      pick(rng, eventDescPool),
	}
}

func genPoster(id string, rng *rand.Rand) doc.Labeled {
	const (
		pageW = 450.0
		pageH = 640.0
	)
	capture := doc.CaptureDigital
	if rng.Float64() < mobileFraction {
		capture = doc.CaptureMobile
	}
	pal := posterPalettes[rng.Intn(len(posterPalettes))]
	p := newPage(id, "d2", pageW, pageH, capture, pal.bg)
	truth := &doc.GroundTruth{DocID: id}
	content := makePosterContent(rng)

	template := rng.Intn(5)
	p.d.Template = fmt.Sprintf("poster%02d", template)
	var sections []domSection
	switch template {
	case 0:
		sections = posterCentered(p, truth, content, pal, rng)
	case 1:
		sections = posterLeftRail(p, truth, content, pal, rng)
	case 2:
		sections = posterSplit(p, truth, content, pal, rng)
	case 3:
		sections = posterBanner(p, truth, content, pal, rng)
	default:
		sections = posterStacked(p, truth, content, pal, rng)
	}
	if capture == doc.CaptureDigital {
		// Poster PDFs reach HTML through a converter; its markup is coarse.
		buildDOMNoisy(p.d, sections, 0.3, rng)
	}
	return doc.Labeled{Doc: p.d, Truth: truth}
}

// badge drops a decorative highlight ("FREE", "TONIGHT ONLY") into the
// whitespace gutter between two section bands, horizontally offset and
// vertically straddling both bands' y-ranges. Real posters use such
// badges constantly; they are exactly the structure that defeats straight
// projection cuts (no clear horizontal line survives) while a drifting
// whitespace seam routes around them — the paper's Fig. 5 motivation. The
// badge is annotated as an EventDescription mention ("essential details"
// per Table 3: admission highlights qualify).
func badge(p *page, truth *doc.GroundTruth, pal struct{ bg, headline, accent, body colorlab.RGB },
	rng *rand.Rand, upper, lower geom.Rect) {
	if rng.Float64() > 0.45 {
		return
	}
	gap := lower.Y - upper.MaxY()
	if gap < 28 {
		return
	}
	texts := []string{"FREE", "LIVE", "TONIGHT", "NEW", "SOLD OUT", "ALL AGES"}
	text := pick(rng, texts)
	// The badge sits inside the gutter, horizontally offset toward the
	// right margin, leaving whitespace channels on every side.
	fontH := gap - 14
	if fontH > 40 {
		fontH = 40
	}
	if fontH < 14 {
		return
	}
	y := upper.MaxY() + 7
	x := p.d.Width - textWidth(text, fontH) - 24 - float64(rng.Intn(16))
	if x < 30 {
		return
	}
	bBox, _ := p.words(x, y, fontH, pal.accent, true, text)
	annotate(truth, pattern.EventDescription, bBox, text)
}

// finePrint drops a 7pt credits line at the page bottom: designer name,
// print date and a print-shop phone — the decoy mentions that force the
// disambiguation step to do real work (a text-only pipeline routinely
// confuses these with the event's organizer and time, Fig. 3 of the
// paper).
func finePrint(p *page, pal struct{ bg, headline, accent, body colorlab.RGB }, rng *rand.Rand) []domSection {
	if rng.Float64() < 0.25 {
		return nil
	}
	text := fmt.Sprintf("design %s printed %d/%d %s",
		personName(rng), 1+rng.Intn(12), 1+rng.Intn(28), phoneNumber(rng))
	box, ids := p.words(24, p.d.Height-18, 7, colorlab.Gray, false, text)
	return []domSection{{"footer", box, ids}}
}

// jitterY returns a per-section layout perturbation: no two real posters
// share exact section positions, which is what defeats template-mask
// extraction (the paper's ReportMiner analysis: "performance worsened as
// the variability in document layouts increased").
func jitterY(rng *rand.Rand) float64 { return float64(rng.Intn(45)) - 22 }

// centered lays every section on a centred column.
func posterCentered(p *page, truth *doc.GroundTruth, c posterContent,
	pal struct{ bg, headline, accent, body colorlab.RGB }, rng *rand.Rand) []domSection {
	pageW := p.d.Width
	center := func(text string, fontH float64) float64 {
		w := textWidth(text, fontH) + fontH*0.5*float64(len(splitWords(text))-1)
		x := (pageW - w) / 2
		if x < 20 {
			x = 20
		}
		return x
	}
	titleFont := 30.0 + float64(rng.Intn(8))
	y := 50.0 + float64(rng.Intn(30))
	tBox, tIDs := p.words(center(c.title, titleFont), y, titleFont, pal.headline, true, c.title)
	annotate(truth, pattern.EventTitle, tBox, c.title)
	y = tBox.MaxY() + 45 + jitterY(rng)

	oBox, oIDs := p.words(center(c.orgLine, 15), y, 15, pal.accent, false, c.orgLine)
	annotate(truth, pattern.EventOrganizer, oBox, c.organizer)
	y = oBox.MaxY() + 55 + jitterY(rng)

	badge(p, truth, pal, rng, oBox, geom.Rect{X: 60, Y: y, W: 10, H: 10})
	tmBox, tmIDs := p.words(center(c.time, 16), y, 16, pal.body, true, c.time)
	annotate(truth, pattern.EventTime, tmBox, c.time)
	y = tmBox.MaxY() + 22

	plBox, plIDs := p.words(center(c.place, 12), y, 12, pal.body, false, c.place)
	annotate(truth, pattern.EventPlace, plBox, c.place)
	y = plBox.MaxY() + 55 + jitterY(rng)

	dBox, dIDs := p.wrappedLeading(60, y, 11, pageW-120, descLeading(rng), pal.body, c.desc)
	annotate(truth, pattern.EventDescription, dBox, c.desc)

	return append([]domSection{
		{"h1", tBox, tIDs}, {"h3", oBox, oIDs}, {"p", tmBox, tmIDs},
		{"p", plBox, plIDs}, {"p", dBox, dIDs},
	}, finePrint(p, pal, rng)...)
}

// leftRail puts the description in a left column and logistics on the right.
func posterLeftRail(p *page, truth *doc.GroundTruth, c posterContent,
	pal struct{ bg, headline, accent, body colorlab.RGB }, rng *rand.Rand) []domSection {
	titleFont := 26.0 + float64(rng.Intn(6))
	tBox, tIDs := p.words(30, 40, titleFont, pal.headline, true, c.title)
	annotate(truth, pattern.EventTitle, tBox, c.title)

	dBox, dIDs := p.wrappedLeading(30, tBox.MaxY()+50+jitterY(rng), 11, 180, descLeading(rng), pal.body, c.desc)
	annotate(truth, pattern.EventDescription, dBox, c.desc)

	rx := 260.0
	tmBox, tmIDs := p.words(rx, tBox.MaxY()+50+jitterY(rng), 15, pal.accent, true, c.time)
	annotate(truth, pattern.EventTime, tmBox, c.time)

	plBox, plIDs := p.wrapped(rx, tmBox.MaxY()+26, 11, 160, pal.body, c.place)
	annotate(truth, pattern.EventPlace, plBox, c.place)

	oBox, oIDs := p.wrapped(rx, plBox.MaxY()+40+jitterY(rng), 12, 160, pal.accent, c.orgLine)
	annotate(truth, pattern.EventOrganizer, oBox, c.organizer)

	return append([]domSection{
		{"h1", tBox, tIDs}, {"p", dBox, dIDs}, {"p", tmBox, tmIDs},
		{"p", plBox, plIDs}, {"h3", oBox, oIDs},
	}, finePrint(p, pal, rng)...)
}

// split separates a big top banner from a bottom logistics strip.
func posterSplit(p *page, truth *doc.GroundTruth, c posterContent,
	pal struct{ bg, headline, accent, body colorlab.RGB }, rng *rand.Rand) []domSection {
	titleFont := 34.0
	tBox, tIDs := p.words(40, 70, titleFont, pal.headline, true, c.title)
	annotate(truth, pattern.EventTitle, tBox, c.title)

	oBox, oIDs := p.words(40, tBox.MaxY()+18, 14, pal.accent, false, c.orgLine)
	annotate(truth, pattern.EventOrganizer, oBox, c.organizer)

	imgBox, imgID := p.image(120, oBox.MaxY()+40+jitterY(rng), 210, 140, "event-art")

	y := imgBox.MaxY() + 50 + jitterY(rng)
	tmBox, tmIDs := p.words(40, y, 16, pal.body, true, c.time)
	annotate(truth, pattern.EventTime, tmBox, c.time)
	plBox, plIDs := p.words(40, tmBox.MaxY()+20, 12, pal.body, false, c.place)
	annotate(truth, pattern.EventPlace, plBox, c.place)
	dBox, dIDs := p.wrappedLeading(40, plBox.MaxY()+40+jitterY(rng), 11, p.d.Width-80, descLeading(rng), pal.body, c.desc)
	annotate(truth, pattern.EventDescription, dBox, c.desc)

	return append([]domSection{
		{"h1", tBox, tIDs}, {"h3", oBox, oIDs},
		{"img", imgBox, []int{imgID}},
		{"p", tmBox, tmIDs}, {"p", plBox, plIDs}, {"p", dBox, dIDs},
	}, finePrint(p, pal, rng)...)
}

// banner opens with an image strip, then stacked sections.
func posterBanner(p *page, truth *doc.GroundTruth, c posterContent,
	pal struct{ bg, headline, accent, body colorlab.RGB }, rng *rand.Rand) []domSection {
	imgBox, imgID := p.image(0, 0, p.d.Width, 120, "banner")
	titleFont := 28.0
	tBox, tIDs := p.words(35, imgBox.MaxY()+30, titleFont, pal.headline, true, c.title)
	annotate(truth, pattern.EventTitle, tBox, c.title)

	tmBox, tmIDs := p.words(35, tBox.MaxY()+45+jitterY(rng), 15, pal.accent, true, c.time)
	annotate(truth, pattern.EventTime, tmBox, c.time)
	plBox, plIDs := p.words(35, tmBox.MaxY()+20, 12, pal.body, false, c.place)
	annotate(truth, pattern.EventPlace, plBox, c.place)

	badge(p, truth, pal, rng, plBox, geom.Rect{X: 35, Y: plBox.MaxY() + 45, W: 10, H: 10})
	dBox, dIDs := p.wrappedLeading(35, plBox.MaxY()+45, 11, p.d.Width-70, descLeading(rng), pal.body, c.desc)
	annotate(truth, pattern.EventDescription, dBox, c.desc)

	oBox, oIDs := p.words(35, dBox.MaxY()+50+jitterY(rng), 13, pal.accent, false, c.orgLine)
	annotate(truth, pattern.EventOrganizer, oBox, c.organizer)

	return append([]domSection{
		{"img", imgBox, []int{imgID}},
		{"h1", tBox, tIDs}, {"p", tmBox, tmIDs}, {"p", plBox, plIDs},
		{"p", dBox, dIDs}, {"h3", oBox, oIDs},
	}, finePrint(p, pal, rng)...)
}

// stacked is a plain flyer: every section left-aligned with generous
// gutters, plus a fine-print footer that tends to confuse text-only
// pipelines (decoy names).
func posterStacked(p *page, truth *doc.GroundTruth, c posterContent,
	pal struct{ bg, headline, accent, body colorlab.RGB }, rng *rand.Rand) []domSection {
	titleFont := 24.0 + float64(rng.Intn(10))
	tBox, tIDs := p.words(30, 45, titleFont, pal.headline, true, c.title)
	annotate(truth, pattern.EventTitle, tBox, c.title)

	oBox, oIDs := p.words(30, tBox.MaxY()+40+jitterY(rng), 14, pal.accent, false, c.orgLine)
	annotate(truth, pattern.EventOrganizer, oBox, c.organizer)

	dBox, dIDs := p.wrappedLeading(30, oBox.MaxY()+45+jitterY(rng), 11, p.d.Width-60, descLeading(rng), pal.body, c.desc)
	annotate(truth, pattern.EventDescription, dBox, c.desc)

	badge(p, truth, pal, rng, dBox, geom.Rect{X: 30, Y: dBox.MaxY() + 45, W: 10, H: 10})
	tmBox, tmIDs := p.words(30, dBox.MaxY()+45+jitterY(rng), 16, pal.body, true, c.time)
	annotate(truth, pattern.EventTime, tmBox, c.time)
	plBox, plIDs := p.words(30, tmBox.MaxY()+20, 12, pal.body, false, c.place)
	annotate(truth, pattern.EventPlace, plBox, c.place)

	// Decoy fine print: a person name unrelated to the event.
	fpBox, fpIDs := p.words(30, p.d.Height-45, 8, colorlab.Gray, false,
		"flyer design by "+personName(rng))

	return []domSection{
		{"h1", tBox, tIDs}, {"h3", oBox, oIDs}, {"p", dBox, dIDs},
		{"p", tmBox, tmIDs}, {"p", plBox, plIDs}, {"footer", fpBox, fpIDs},
	}
}

// organizerBox returns the bounding box of just the organizer name inside
// the rendered organizer line ("Presented by <name>"): the ground-truth
// box covers the name tokens, not the framing words.
func organizerBox(d *doc.Document, lineIDs []int, organizer string) geom.Rect {
	nameWords := map[string]bool{}
	for _, w := range splitWords(organizer) {
		nameWords[w] = true
	}
	var out geom.Rect
	for _, id := range lineIDs {
		if nameWords[d.Elements[id].Text] {
			out = out.Union(d.Elements[id].Box)
		}
	}
	if out.Empty() {
		return d.BoundingBoxOf(lineIDs)
	}
	return out
}
