package datasets

import (
	"strings"
	"testing"

	"vs2/internal/doc"
	"vs2/internal/pattern"
)

func TestGenerateD1Basics(t *testing.T) {
	docs := GenerateD1(Options{N: 40, Seed: 3})
	if len(docs) != 40 {
		t.Fatalf("docs = %d", len(docs))
	}
	faces := map[string]bool{}
	for _, l := range docs {
		if err := l.Doc.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", l.Doc.ID, err)
		}
		if err := l.Truth.Validate(l.Doc); err != nil {
			t.Fatalf("%s truth invalid: %v", l.Doc.ID, err)
		}
		if l.Doc.Capture != doc.CaptureScan {
			t.Errorf("%s capture = %v", l.Doc.ID, l.Doc.Capture)
		}
		if len(l.Truth.Annotations) < 30 {
			t.Errorf("%s has only %d annotations", l.Doc.ID, len(l.Truth.Annotations))
		}
		faces[l.Doc.Template] = true
	}
	if len(faces) != NumFormFaces {
		t.Errorf("form faces used = %d, want %d", len(faces), NumFormFaces)
	}
}

func TestD1FieldInventory(t *testing.T) {
	fields := D1Fields()
	n := D1FieldCount()
	if len(fields) != n {
		t.Errorf("D1Fields = %d entries, count = %d", len(fields), n)
	}
	// The paper reports 1369 fields; ours should be the same order of
	// magnitude (exactly 20 faces × 64..72 fields).
	if n < 1200 || n > 1500 {
		t.Errorf("field count %d not near 1369", n)
	}
	// Descriptors must be unique per entity and non-empty.
	for k, ds := range fields {
		if len(ds) == 0 || ds[0] == "" {
			t.Fatalf("entity %s has no descriptor", k)
		}
	}
}

func TestD1DescriptorsAppearInDocuments(t *testing.T) {
	docs := GenerateD1(Options{N: 1, Seed: 9})
	l := docs[0]
	transcript := l.Doc.Transcript(nil)
	found := 0
	for _, a := range l.Truth.Annotations {
		if strings.Contains(transcript, a.Text) {
			found++
		}
	}
	if found < len(l.Truth.Annotations)*9/10 {
		t.Errorf("only %d/%d values appear in transcript", found, len(l.Truth.Annotations))
	}
}

func TestGenerateD2Basics(t *testing.T) {
	docs := GenerateD2(Options{N: 80, Seed: 5})
	mobile, digital, withDOM := 0, 0, 0
	templates := map[string]bool{}
	for _, l := range docs {
		if err := l.Doc.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", l.Doc.ID, err)
		}
		if err := l.Truth.Validate(l.Doc); err != nil {
			t.Fatalf("%s truth invalid: %v", l.Doc.ID, err)
		}
		switch l.Doc.Capture {
		case doc.CaptureMobile:
			mobile++
			if l.Doc.DOM != nil {
				t.Error("mobile capture should not carry a DOM")
			}
		case doc.CaptureDigital:
			digital++
			if l.Doc.DOM != nil {
				withDOM++
			}
		}
		templates[l.Doc.Template] = true
		// All five entities annotated.
		ents := l.Truth.Entities()
		if len(ents) != 5 {
			t.Errorf("%s entities = %v", l.Doc.ID, ents)
		}
	}
	if mobile == 0 || digital == 0 {
		t.Errorf("capture mix degenerate: mobile=%d digital=%d", mobile, digital)
	}
	// Ratio should be near the paper's 1375/2190 ≈ 0.63.
	frac := float64(mobile) / float64(len(docs))
	if frac < 0.45 || frac < 0.3 || frac > 0.85 {
		t.Errorf("mobile fraction = %v", frac)
	}
	if withDOM != digital {
		t.Errorf("digital docs without DOM: %d/%d", digital-withDOM, digital)
	}
	if len(templates) < 4 {
		t.Errorf("templates used = %v", templates)
	}
}

func TestD2AnnotationsMatchContent(t *testing.T) {
	docs := GenerateD2(Options{N: 30, Seed: 11})
	for _, l := range docs {
		transcript := l.Doc.Transcript(nil)
		for _, a := range l.Truth.Annotations {
			// Every annotated word should exist in the document text.
			for _, w := range strings.Fields(a.Text) {
				if !strings.Contains(transcript, w) {
					t.Errorf("%s: annotation %s word %q missing from document",
						l.Doc.ID, a.Entity, w)
				}
			}
			if a.Box.Empty() {
				t.Errorf("%s: empty box for %s", l.Doc.ID, a.Entity)
			}
		}
	}
}

func TestGenerateD3Basics(t *testing.T) {
	docs := GenerateD3(Options{N: 60, Seed: 7})
	sites := map[string]bool{}
	for _, l := range docs {
		if err := l.Doc.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", l.Doc.ID, err)
		}
		if err := l.Truth.Validate(l.Doc); err != nil {
			t.Fatalf("%s truth invalid: %v", l.Doc.ID, err)
		}
		if l.Doc.Capture != doc.CaptureDigital || l.Doc.DOM == nil {
			t.Errorf("%s should be digital with DOM", l.Doc.ID)
		}
		sites[l.Doc.Template] = true
		ents := l.Truth.Entities()
		if len(ents) != 6 {
			t.Errorf("%s entities = %v", l.Doc.ID, ents)
		}
	}
	if len(sites) != NumBrokerSites {
		t.Errorf("sites used = %d, want %d", len(sites), NumBrokerSites)
	}
}

func TestD3SiteTemplatesAreConsistent(t *testing.T) {
	docs := GenerateD3(Options{N: 40, Seed: 13})
	// Two documents from the same site must place the BrokerPhone
	// annotation at similar positions (template reuse).
	bySite := map[string][]doc.Labeled{}
	for _, l := range docs {
		bySite[l.Doc.Template] = append(bySite[l.Doc.Template], l)
	}
	for site, ls := range bySite {
		if len(ls) < 2 {
			continue
		}
		a := ls[0].Truth.ForEntity(pattern.BrokerPhone)
		b := ls[1].Truth.ForEntity(pattern.BrokerPhone)
		if len(a) == 0 || len(b) == 0 {
			t.Fatalf("site %s missing phone annotations", site)
		}
		dy := a[0].Box.Y - b[0].Box.Y
		if dy < 0 {
			dy = -dy
		}
		if dy > 120 {
			t.Errorf("site %s phone positions differ by %v (template drift)", site, dy)
		}
	}
}

func TestGeneratorsAreDeterministic(t *testing.T) {
	a := GenerateD2(Options{N: 5, Seed: 21})
	b := GenerateD2(Options{N: 5, Seed: 21})
	for i := range a {
		ta, _ := doc.EncodeLabeled(&a[i])
		tb, _ := doc.EncodeLabeled(&b[i])
		if string(ta) != string(tb) {
			t.Fatalf("doc %d differs across runs", i)
		}
	}
	// Different seeds produce different corpora.
	c := GenerateD2(Options{N: 5, Seed: 22})
	same := 0
	for i := range a {
		if a[i].Doc.Transcript(nil) == c[i].Doc.Transcript(nil) {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical corpora")
	}
}

func TestDocumentsAreIndependentOfN(t *testing.T) {
	small := GenerateD3(Options{N: 3, Seed: 31})
	large := GenerateD3(Options{N: 10, Seed: 31})
	for i := range small {
		if small[i].Doc.Transcript(nil) != large[i].Doc.Transcript(nil) {
			t.Fatalf("doc %d depends on N", i)
		}
	}
}
