package faults

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"vs2/internal/journal"
)

// openWith returns a journal Options.OpenFile hook that wraps the real
// file in a DiskFile with the given fault.
func openWith(fault DiskFault) func(string) (journal.File, error) {
	return func(p string) (journal.File, error) {
		f, err := os.OpenFile(p, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return nil, err
		}
		return NewDiskFile(f, fault), nil
	}
}

// TestDiskShortWriteRecovery: a torn append fails the writer, and replay
// of the resulting file recovers exactly the pre-tear records.
func TestDiskShortWriteRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	w, err := journal.OpenWriter(path, journal.Options{
		Sync:     journal.SyncNever,
		OpenFile: openWith(DiskFault{ShortWriteAt: 3}),
	})
	if err != nil {
		t.Fatal(err)
	}
	records := []string{`{"id":"a"}`, `{"id":"b"}`, `{"id":"c"}`, `{"id":"d"}`}
	var failures int
	for _, r := range records {
		if err := w.Append([]byte(r)); err != nil {
			failures++
			if !errors.Is(err, journal.ErrWriterFailed) && !errors.Is(err, ErrInjectedDisk) {
				t.Fatalf("torn append error = %v", err)
			}
		}
	}
	if failures != 2 { // the torn append and the sticky follow-up
		t.Fatalf("%d failed appends, want 2 (tear + sticky)", failures)
	}
	w.Close()

	var got []string
	st, err := journal.ReplayFile(path, 0, nil, func(p []byte) error {
		got = append(got, string(p))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != records[0] || got[1] != records[1] {
		t.Fatalf("recovered %v, want the two pre-tear records", got)
	}
	if st.TruncatedBytes == 0 {
		t.Error("torn frame not counted")
	}
}

// TestDiskSyncError: a failing fsync surfaces to the caller but leaves
// the frames intact — replay still sees everything that was written.
func TestDiskSyncError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	w, err := journal.OpenWriter(path, journal.Options{
		Sync:     journal.SyncAlways,
		OpenFile: openWith(DiskFault{FailSyncAt: 2}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte(`{"id":"a"}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte(`{"id":"b"}`)); !errors.Is(err, ErrInjectedDisk) {
		t.Fatalf("append with failing fsync = %v, want ErrInjectedDisk", err)
	}
	if err := w.Append([]byte(`{"id":"c"}`)); err != nil {
		t.Fatalf("append after transient fsync failure = %v, want recovery", err)
	}
	w.Close()
	var n int
	if _, err := journal.ReplayFile(path, 0, nil, func([]byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("recovered %d records, want all 3 (fsync failure loses nothing already written)", n)
	}
}

// TestDiskCrashPoint sweeps the crash point across every byte offset of
// a small journal and proves the WAL invariant at each: replay recovers
// a prefix of the records, never a fabrication, and appending after a
// resume-style truncation works.
func TestDiskCrashPoint(t *testing.T) {
	records := []string{`{"id":"a"}`, `{"id":"bb"}`, `{"id":"ccc"}`}
	var total int64
	for _, r := range records {
		total += int64(len(journal.Frame([]byte(r))))
	}
	for crash := int64(1); crash < total; crash += 3 {
		path := filepath.Join(t.TempDir(), "j.wal")
		w, err := journal.OpenWriter(path, journal.Options{
			Sync:     journal.SyncAlways,
			OpenFile: openWith(DiskFault{CrashAfterBytes: crash}),
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range records {
			if err := w.Append([]byte(r)); err != nil {
				t.Fatalf("crash-point writes must report success, got %v", err)
			}
		}
		w.Close()

		var got []string
		st, err := journal.ReplayFile(path, 0, nil, func(p []byte) error {
			got = append(got, string(p))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, g := range got {
			if g != records[i] {
				t.Fatalf("crash@%d: record %d = %q, fabricated (want %q)", crash, i, g, records[i])
			}
		}
		if info, _ := os.Stat(path); info.Size() > crash {
			t.Fatalf("crash@%d: %d bytes landed past the crash point", crash, info.Size())
		}
		if st.Bytes+st.TruncatedBytes > crash {
			t.Fatalf("crash@%d: stats %d+%d exceed the frozen image", crash, st.Bytes, st.TruncatedBytes)
		}
	}
}
