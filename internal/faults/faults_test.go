package faults

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"vs2/internal/doc"
	"vs2/internal/extract"
	"vs2/internal/geom"
)

func grid(n int) *doc.Document {
	d := &doc.Document{ID: "grid", Width: 400, Height: 400}
	for i := 0; i < n; i++ {
		d.Elements = append(d.Elements, doc.Element{
			ID: i, Kind: doc.TextElement, Text: fmt.Sprintf("w%d", i),
			Box:      geom.Rect{X: float64(20 * (i % 10)), Y: float64(30 * (i / 10)), W: 18, H: 12},
			FontSize: 12,
		})
	}
	return d
}

func tree(d *doc.Document) *doc.Node {
	root := doc.NewTree(d)
	half := len(d.Elements) / 2
	var a, b []int
	for i := range d.Elements {
		if i < half {
			a = append(a, i)
		} else {
			b = append(b, i)
		}
	}
	root.Children = []*doc.Node{
		{Box: d.BoundingBoxOf(a), Elements: a, Depth: 1},
		{Box: d.BoundingBoxOf(b), Elements: b, Depth: 1},
	}
	return root
}

func damage(root *doc.Node, n int) []string {
	var out []string
	for _, b := range root.Leaves() {
		bad := "ok"
		switch {
		case math.IsNaN(b.Box.X) || math.IsInf(b.Box.W, 0):
			bad = "nan-box"
		default:
			for _, id := range b.Elements {
				if id < 0 {
					bad = "neg-index"
				} else if id >= n {
					bad = "oob-index"
				}
			}
		}
		out = append(out, fmt.Sprintf("%s/%d", bad, len(b.Elements)))
	}
	return out
}

func TestCorruptTreeDeterministic(t *testing.T) {
	d := grid(20)
	t1, t2 := tree(d), tree(d)
	CorruptTree(t1, 7)
	CorruptTree(t2, 7)
	d1, d2 := damage(t1, len(d.Elements)), damage(t2, len(d.Elements))
	if fmt.Sprint(d1) != fmt.Sprint(d2) {
		t.Fatalf("same seed produced different corruption: %v vs %v", d1, d2)
	}
	for _, s := range d1 {
		if s[:2] == "ok" {
			t.Fatalf("leaf left undamaged: %v", d1)
		}
	}
}

func TestTruncateTreeDropsElements(t *testing.T) {
	d := grid(20)
	tr := tree(d)
	TruncateTree(tr, 3)
	total := 0
	for _, b := range tr.Leaves() {
		total += len(b.Elements)
	}
	if total >= len(d.Elements) {
		t.Fatalf("truncation kept all %d elements", total)
	}
}

func TestDelayHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	inj := Injection{Kind: Delay, Sleep: 10 * time.Second}
	if err := inj.arm(ctx); err != nil {
		t.Fatalf("arm: %v", err)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("delay ignored cancelled ctx: slept %v", el)
	}
}

func TestErrorKindReturnsErrInjected(t *testing.T) {
	s := &Segmenter{Inject: Injection{Kind: Error}}
	if _, err := s.SegmentContext(context.Background(), grid(4)); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}

func TestPanicKindPanics(t *testing.T) {
	defer func() {
		if r := recover(); r != PanicMessage {
			t.Fatalf("recover = %v, want %q", r, PanicMessage)
		}
	}()
	s := &Segmenter{Inject: Injection{Kind: Panic}}
	s.SegmentContext(context.Background(), grid(4)) //nolint:errcheck
	t.Fatal("unreachable")
}

// stubSegmenter returns a fresh two-block tree on every call.
type stubSegmenter struct{}

func (stubSegmenter) SegmentContext(_ context.Context, d *doc.Document) (*doc.Node, error) {
	return tree(d), nil
}

// TestTimesBoundsInjection: a Times-bounded fault fires on exactly the
// first Times calls, then the wrapper delegates cleanly — the transient
// flake the serving layer's retry tests depend on.
func TestTimesBoundsInjection(t *testing.T) {
	d := grid(8)
	s := &Segmenter{Inner: stubSegmenter{}, Inject: Injection{Kind: Error, Times: 2}}
	for call := 1; call <= 4; call++ {
		tr, err := s.SegmentContext(context.Background(), d)
		if call <= 2 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("call %d: err = %v, want ErrInjected", call, err)
			}
			continue
		}
		if err != nil || tr == nil {
			t.Fatalf("call %d after Times exhausted: tree=%v err=%v, want clean delegation", call, tr, err)
		}
	}

	// Post-delegation mutations honour Times too.
	c := &Segmenter{Inner: stubSegmenter{}, Inject: Injection{Kind: Corrupt, Seed: 9, Times: 1}}
	t1, _ := c.SegmentContext(context.Background(), d)
	t2, _ := c.SegmentContext(context.Background(), d)
	if fmt.Sprint(damage(t1, len(d.Elements))) == fmt.Sprint(damage(t2, len(d.Elements))) {
		t.Fatal("corruption did not stop after Times calls")
	}
	for _, s := range damage(t2, len(d.Elements)) {
		if s[:2] != "ok" {
			t.Fatalf("second call still corrupted: %v", damage(t2, len(d.Elements)))
		}
	}
}

func TestCorruptCandidatesStripsGrounding(t *testing.T) {
	cands := map[string][]extract.Candidate{
		"title": {{Entity: "title"}, {Entity: "title"}},
	}
	CorruptCandidates(cands, 1)
	if bt := cands["title"][0].BT; bt != nil {
		t.Fatalf("first candidate kept its block grounding")
	}
}
