package faults

import (
	"errors"
	"io"
	"sync"
)

// ErrInjectedDisk is the cause of every injected disk failure.
var ErrInjectedDisk = errors.New("faults: injected disk failure")

// DiskFault configures the disk failure modes a journal must survive:
// short writes (ENOSPC mid-frame), fsync errors (the kernel refusing
// durability), and crash points (a kill -9 freezing the on-disk image
// mid-byte: later writes report success but never land, exactly what an
// unflushed page cache loses). All sites are 1-based call/byte counts;
// zero disables that site.
type DiskFault struct {
	// ShortWriteAt tears the Nth write: half the buffer lands, the call
	// errors. Zero disables.
	ShortWriteAt int
	// FailSyncAt fails the Nth Sync with ErrInjectedDisk. Zero disables.
	FailSyncAt int
	// CrashAfterBytes freezes the file image once that many bytes have
	// landed: the byte that would cross the boundary and everything after
	// it is silently dropped while writes keep reporting success — the
	// shape of a process killed with dirty pages. Zero disables.
	CrashAfterBytes int64
}

// DiskFile is the fault-injecting journal handle: it satisfies the
// journal package's File interface over any inner handle.
type DiskFile struct {
	mu    sync.Mutex
	inner interface {
		io.Writer
		Sync() error
		Close() error
	}
	fault   DiskFault
	writes  int
	syncs   int
	written int64 // bytes actually landed on inner
	crashed bool
}

// NewDiskFile wraps inner with the configured faults.
func NewDiskFile(inner interface {
	io.Writer
	Sync() error
	Close() error
}, fault DiskFault) *DiskFile {
	return &DiskFile{inner: inner, fault: fault}
}

// Write implements io.Writer with the configured tear and crash point.
func (d *DiskFile) Write(p []byte) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.writes++
	if d.crashed {
		// Post-crash: pretend success, persist nothing.
		return len(p), nil
	}
	if c := d.fault.CrashAfterBytes; c > 0 && d.written+int64(len(p)) > c {
		// The write straddles the crash point: the prefix up to it lands,
		// the rest is lost, and the caller is told everything succeeded.
		keep := c - d.written
		if keep > 0 {
			d.inner.Write(p[:keep]) //nolint:errcheck
			d.written += keep
		}
		d.crashed = true
		return len(p), nil
	}
	if d.fault.ShortWriteAt > 0 && d.writes == d.fault.ShortWriteAt {
		n, _ := d.inner.Write(p[:len(p)/2])
		d.written += int64(n)
		return n, ErrInjectedDisk
	}
	n, err := d.inner.Write(p)
	d.written += int64(n)
	return n, err
}

// Sync implements the journal File's fsync with the configured failure.
// After the crash point it reports success without syncing — a dead
// process cannot observe its own lie.
func (d *DiskFile) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.syncs++
	if d.crashed {
		return nil
	}
	if d.fault.FailSyncAt > 0 && d.syncs == d.fault.FailSyncAt {
		return ErrInjectedDisk
	}
	return d.inner.Sync()
}

// Close closes the inner handle (even "crashed" files hold a real fd).
func (d *DiskFile) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inner.Close()
}

// Crashed reports whether the crash point has been reached.
func (d *DiskFile) Crashed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashed
}

// Written returns the bytes that actually landed on the inner file.
func (d *DiskFile) Written() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.written
}
