// Package faults is a deterministic fault-injection harness for the VS2
// robustness layer. It wraps the segmentation and extraction backends the
// pipeline runs on and injects the failure modes a production document
// feed produces: stalls (seeded delays that outrun phase budgets), panics,
// hard errors, corrupted layout trees (NaN geometry, dangling element
// indices) and truncated element lists. All mutation is driven by a seed,
// so every chaos run is reproducible bit for bit.
//
// The chaos suite at the repository root uses these wrappers to prove the
// ExtractContext containment contract: every injected fault yields either
// a degraded *vs2.Result or a structured *vs2.Error — never a panic and
// never a hang.
package faults

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"vs2/internal/doc"
	"vs2/internal/extract"
	"vs2/internal/obs"
	"vs2/internal/pattern"
)

// Kind selects the failure mode an Injection produces.
type Kind int

const (
	// None delegates untouched.
	None Kind = iota
	// Delay stalls for Sleep (or until ctx expires) before delegating.
	Delay
	// Panic panics instead of delegating.
	Panic
	// Error returns ErrInjected instead of delegating.
	Error
	// Corrupt delegates, then damages the output: NaN boxes, element
	// indices outside the document (segmenter) or candidates with no
	// block grounding (extractor).
	Corrupt
	// Truncate delegates, then drops part of the output: halved element
	// lists and dropped blocks (segmenter), halved candidate lists
	// (extractor).
	Truncate
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Delay:
		return "delay"
	case Panic:
		return "panic"
	case Error:
		return "error"
	case Corrupt:
		return "corrupt"
	case Truncate:
		return "truncate"
	default:
		return "Kind(?)"
	}
}

// ErrInjected is the cause returned by the Error kind.
var ErrInjected = errors.New("faults: injected failure")

// PanicMessage is the payload of the Panic kind, for tests asserting the
// recovered cause.
const PanicMessage = "faults: injected panic"

// Injection configures one fault site.
type Injection struct {
	// Kind is the failure mode; the zero value injects nothing.
	Kind Kind
	// Sleep is the Delay stall; 50ms when zero.
	Sleep time.Duration
	// Seed drives the Corrupt and Truncate mutations.
	Seed int64
	// Times bounds the injection to the first Times calls through the
	// wrapper, after which it delegates cleanly — the shape of a
	// transient backend flake, and what the serving layer's retry and
	// circuit-recovery tests are built on. Zero injects on every call.
	Times int
}

// active reports whether the injection fires on the given 1-based call.
func (f Injection) active(call int64) bool {
	return f.Kind != None && (f.Times <= 0 || call <= int64(f.Times))
}

// arm runs the pre-delegation faults. Delay waits for the stall or for
// ctx, whichever ends first — delegation then proceeds under the (likely
// expired) ctx, exercising the wrapped backend's cooperative
// cancellation. When the run is traced, the injection is recorded as an
// event on the phase span, so chaos runs are self-describing.
func (f Injection) arm(ctx context.Context) error {
	if f.Kind != None {
		obs.SpanFrom(ctx).AddEvent("fault.injected", obs.Str("kind", f.Kind.String()))
	}
	switch f.Kind {
	case Delay:
		d := f.Sleep
		if d <= 0 {
			d = 50 * time.Millisecond
		}
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
		}
	case Panic:
		panic(PanicMessage)
	case Error:
		return ErrInjected
	}
	return nil
}

// SegmentBackend is the segmentation interface the harness wraps — the
// method set vs2.Pipeline drives.
type SegmentBackend interface {
	SegmentContext(ctx context.Context, d *doc.Document) (*doc.Node, error)
}

// Segmenter injects faults around an inner segmentation backend.
type Segmenter struct {
	Inner  SegmentBackend
	Inject Injection

	calls atomic.Int64
}

// SegmentContext implements SegmentBackend with the configured fault.
func (s *Segmenter) SegmentContext(ctx context.Context, d *doc.Document) (*doc.Node, error) {
	inj := s.Inject
	if !inj.active(s.calls.Add(1)) {
		inj = Injection{}
	}
	if err := inj.arm(ctx); err != nil {
		return nil, err
	}
	tree, err := s.Inner.SegmentContext(ctx, d)
	if err != nil || tree == nil {
		return tree, err
	}
	switch inj.Kind {
	case Corrupt:
		CorruptTree(tree, inj.Seed)
	case Truncate:
		TruncateTree(tree, inj.Seed)
	}
	return tree, nil
}

// CorruptTree damages every leaf of a layout tree the way buggy or
// hostile segmenter output would: non-finite boxes, element indices
// beyond the document, negative indices. Deterministic in seed.
func CorruptTree(root *doc.Node, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, b := range root.Leaves() {
		switch rng.Intn(3) {
		case 0:
			b.Box.X = math.NaN()
			b.Box.W = math.Inf(1)
		case 1:
			if len(b.Elements) > 0 {
				b.Elements[rng.Intn(len(b.Elements))] = 1 << 30
			} else {
				b.Elements = []int{1 << 30}
			}
		default:
			if len(b.Elements) > 0 {
				b.Elements[0] = -1
			} else {
				b.Elements = []int{-1}
			}
		}
	}
}

// TruncateTree drops part of the segmentation output: when the root has
// several children a seeded suffix is removed, and every remaining leaf
// keeps only the first half of its element list.
func TruncateTree(root *doc.Node, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	if n := len(root.Children); n > 1 {
		root.Children = root.Children[:1+rng.Intn(n-1)]
	}
	for _, b := range root.Leaves() {
		if len(b.Elements) > 1 {
			b.Elements = b.Elements[:(len(b.Elements)+1)/2]
		}
	}
}

// ExtractBackend is the extraction interface the harness wraps — the
// method set vs2.Pipeline drives.
type ExtractBackend interface {
	SearchContext(ctx context.Context, d *doc.Document, blocks []*doc.Node, sets []*pattern.Set) (map[string][]extract.Candidate, error)
	SelectContext(ctx context.Context, d *doc.Document, blocks []*doc.Node, candidates map[string][]extract.Candidate, sets []*pattern.Set) ([]extract.Extraction, error)
	SelectFirstMatch(d *doc.Document, candidates map[string][]extract.Candidate, sets []*pattern.Set) []extract.Extraction
}

// Extractor injects faults around an inner extraction backend, at the
// search and select phases independently.
type Extractor struct {
	Inner  ExtractBackend
	Search Injection
	Select Injection

	searchCalls atomic.Int64
	selectCalls atomic.Int64
}

// SearchContext implements ExtractBackend with the configured search
// fault.
func (e *Extractor) SearchContext(ctx context.Context, d *doc.Document, blocks []*doc.Node, sets []*pattern.Set) (map[string][]extract.Candidate, error) {
	inj := e.Search
	if !inj.active(e.searchCalls.Add(1)) {
		inj = Injection{}
	}
	if err := inj.arm(ctx); err != nil {
		return nil, err
	}
	cands, err := e.Inner.SearchContext(ctx, d, blocks, sets)
	if err != nil {
		return cands, err
	}
	switch inj.Kind {
	case Corrupt:
		CorruptCandidates(cands, inj.Seed)
	case Truncate:
		TruncateCandidates(cands)
	}
	return cands, nil
}

// SelectContext implements ExtractBackend with the configured select
// fault.
func (e *Extractor) SelectContext(ctx context.Context, d *doc.Document, blocks []*doc.Node, candidates map[string][]extract.Candidate, sets []*pattern.Set) ([]extract.Extraction, error) {
	inj := e.Select
	if !inj.active(e.selectCalls.Add(1)) {
		inj = Injection{}
	}
	if err := inj.arm(ctx); err != nil {
		return nil, err
	}
	return e.Inner.SelectContext(ctx, d, blocks, candidates, sets)
}

// SelectFirstMatch delegates untouched: it is the pipeline's last-resort
// fallback, and the chaos suite probes what happens when the primary path
// fails. Candidates corrupted at the search phase sabotage the fallback
// too, which the suite covers separately (the contract there is a
// structured error, not a crash).
func (e *Extractor) SelectFirstMatch(d *doc.Document, candidates map[string][]extract.Candidate, sets []*pattern.Set) []extract.Extraction {
	return e.Inner.SelectFirstMatch(d, candidates, sets)
}

// CorruptCandidates strips the block grounding (BT) from a seeded subset
// of candidates — at least one per entity — the shape of a search phase
// that raced a mutation. Selection over such candidates panics, which the
// pipeline must contain.
func CorruptCandidates(cands map[string][]extract.Candidate, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for entity, list := range cands {
		for i := range list {
			if i == 0 || rng.Intn(2) == 0 {
				list[i].BT = nil
				list[i].Box.X = math.NaN()
			}
		}
		cands[entity] = list
	}
}

// TruncateCandidates keeps only the first half of every entity's
// candidate list — a search cut short that still returned valid partial
// state.
func TruncateCandidates(cands map[string][]extract.Candidate) {
	for entity, list := range cands {
		if len(list) > 1 {
			cands[entity] = list[:(len(list)+1)/2]
		}
	}
}
