// Package stats implements the statistical machinery VS2 relies on:
//
//   - descriptive statistics and Pearson correlation (Algorithm 1 computes a
//     running correlation between separator widths and neighbouring
//     bounding-box heights);
//   - inflection-point detection on discrete distributions (Algorithm 1,
//     footnote 3: solve for d²f/di² = 0);
//   - Welch's and the paired Student t-test (the significance claim of
//     Section 6.4: p < 0.05 on all datasets);
//   - the Shapiro–Wilk normality test (Section 5.2.1 fills the holdout
//     corpus until the distribution of distinct syntactic patterns is
//     approximately normal, citing Shapiro & Wilk 1965);
//   - non-dominated (Pareto) sorting for the interest-point subset
//     selection of Section 5.3.1.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 when fewer than two
// samples).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Pearson returns the Pearson correlation coefficient ρ(x, y) in [-1, 1].
// Degenerate inputs (length < 2, zero variance) yield 0.
func Pearson(x, y []float64) float64 {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	if n < 2 {
		return 0
	}
	mx, my := Mean(x[:n]), Mean(y[:n])
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// InflectionPoint returns the index of the first inflection of the discrete
// series f: the first interior index where the second difference changes
// sign (the discrete analogue of d²f/di² = 0, per footnote 3 of the paper).
// The series is lightly smoothed with a 3-point moving average first to
// suppress sampling noise. Returns -1 when the series is too short or has no
// sign change.
func InflectionPoint(f []float64) int {
	if len(f) < 4 {
		return -1
	}
	sm := smooth3(f) // sm[k] averages f[k..k+2], so sm index k maps to f index k+1
	prev := 0.0
	first := true
	for i := 1; i < len(sm)-1; i++ {
		d2 := sm[i+1] - 2*sm[i] + sm[i-1]
		if !first && signChanged(prev, d2) {
			return i + 1 // translate back to an index of f
		}
		if d2 != 0 {
			prev = d2
			first = false
		}
	}
	return -1
}

// smooth3 returns the 3-point moving average restricted to full windows;
// the result has len(f)-2 entries, entry k covering f[k..k+2].
func smooth3(f []float64) []float64 {
	if len(f) < 3 {
		return nil
	}
	out := make([]float64, len(f)-2)
	for i := range out {
		out[i] = (f[i] + f[i+1] + f[i+2]) / 3
	}
	return out
}

func signChanged(a, b float64) bool {
	return (a > 0 && b < 0) || (a < 0 && b > 0)
}

// TTestResult reports a t statistic, its degrees of freedom and the
// two-sided p-value.
type TTestResult struct {
	T  float64
	DF float64
	P  float64
}

// ErrInsufficientData is returned when a test is given too few samples.
var ErrInsufficientData = errors.New("stats: insufficient data")

// WelchTTest performs Welch's unequal-variance two-sample t-test.
func WelchTTest(a, b []float64) (TTestResult, error) {
	if len(a) < 2 || len(b) < 2 {
		return TTestResult{}, ErrInsufficientData
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	na, nb := float64(len(a)), float64(len(b))
	se := math.Sqrt(va/na + vb/nb)
	if se == 0 {
		if ma == mb {
			return TTestResult{T: 0, DF: na + nb - 2, P: 1}, nil
		}
		return TTestResult{T: math.Inf(sign(ma - mb)), DF: na + nb - 2, P: 0}, nil
	}
	t := (ma - mb) / se
	num := math.Pow(va/na+vb/nb, 2)
	den := math.Pow(va/na, 2)/(na-1) + math.Pow(vb/nb, 2)/(nb-1)
	df := num / den
	return TTestResult{T: t, DF: df, P: tTwoSidedP(t, df)}, nil
}

// PairedTTest performs the paired Student t-test on equal-length samples;
// this is the test Section 6.4 applies to per-document F1 pairs of VS2 vs.
// the text-only baseline.
func PairedTTest(a, b []float64) (TTestResult, error) {
	if len(a) != len(b) || len(a) < 2 {
		return TTestResult{}, ErrInsufficientData
	}
	d := make([]float64, len(a))
	for i := range a {
		d[i] = a[i] - b[i]
	}
	md := Mean(d)
	sd := StdDev(d)
	n := float64(len(d))
	if sd == 0 {
		if md == 0 {
			return TTestResult{T: 0, DF: n - 1, P: 1}, nil
		}
		return TTestResult{T: math.Inf(sign(md)), DF: n - 1, P: 0}, nil
	}
	t := md / (sd / math.Sqrt(n))
	return TTestResult{T: t, DF: n - 1, P: tTwoSidedP(t, n-1)}, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// tTwoSidedP returns the two-sided p-value of a t statistic with df degrees
// of freedom, via the regularised incomplete beta function.
func tTwoSidedP(t, df float64) float64 {
	if math.IsInf(t, 0) {
		return 0
	}
	x := df / (df + t*t)
	return regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularised incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes style).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// NormalCDF returns Φ(x) for the standard normal distribution.
func NormalCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

// NormalQuantile returns Φ⁻¹(p) using the Acklam rational approximation,
// accurate to ~1e-9 over (0, 1).
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := []float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	var q, r float64
	switch {
	case p < plow:
		q = math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= phigh:
		q = p - 0.5
		r = q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q = math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// ShapiroWilk performs the Shapiro–Wilk W test for normality using
// Royston's AS R94 approximation, valid for 3 ≤ n ≤ 5000. It returns the W
// statistic and an approximate p-value.
func ShapiroWilk(xs []float64) (w, p float64, err error) {
	n := len(xs)
	if n < 3 {
		return 0, 0, ErrInsufficientData
	}
	x := append([]float64(nil), xs...)
	sort.Float64s(x)
	if x[0] == x[n-1] {
		return 0, 0, errors.New("stats: all values identical")
	}

	// Expected values of normal order statistics (Blom approximation) and
	// the Shapiro-Wilk coefficients per Royston (1992).
	m := make([]float64, n)
	var ssm float64
	for i := 0; i < n; i++ {
		m[i] = NormalQuantile((float64(i+1) - 0.375) / (float64(n) + 0.25))
		ssm += m[i] * m[i]
	}
	a := make([]float64, n)
	rsn := 1 / math.Sqrt(float64(n))
	a[n-1] = -2.706056*math.Pow(rsn, 5) + 4.434685*math.Pow(rsn, 4) -
		2.071190*math.Pow(rsn, 3) - 0.147981*math.Pow(rsn, 2) +
		0.221157*rsn + m[n-1]/math.Sqrt(ssm)
	if n > 5 {
		a[n-2] = -3.582633*math.Pow(rsn, 5) + 5.682633*math.Pow(rsn, 4) -
			1.752461*math.Pow(rsn, 3) - 0.293762*math.Pow(rsn, 2) +
			0.042981*rsn + m[n-2]/math.Sqrt(ssm)
	}
	var phi float64
	switch {
	case n > 5:
		phi = (ssm - 2*m[n-1]*m[n-1] - 2*m[n-2]*m[n-2]) /
			(1 - 2*a[n-1]*a[n-1] - 2*a[n-2]*a[n-2])
	default:
		phi = (ssm - 2*m[n-1]*m[n-1]) / (1 - 2*a[n-1]*a[n-1])
	}
	lim := n - 1
	if n > 5 {
		lim = n - 2
	}
	for i := 0; i < lim; i++ {
		a[i] = m[i] / math.Sqrt(phi)
	}
	// Enforce the antisymmetry a_i = -a_{n+1-i} at the corrected edges.
	a[n-1] = abs(a[n-1])
	a[0] = -a[n-1]
	if n > 5 {
		a[n-2] = abs(a[n-2])
		a[1] = -a[n-2]
	}

	mean := Mean(x)
	var num, den float64
	for i := 0; i < n; i++ {
		num += a[i] * x[i]
		den += (x[i] - mean) * (x[i] - mean)
	}
	w = num * num / den
	if w > 1 {
		w = 1
	}

	// p-value per Royston's normalising transformation.
	lw := math.Log(1 - w)
	ln := math.Log(float64(n))
	var mu, sigma float64
	if n <= 11 {
		g := -2.273 + 0.459*float64(n)
		mu = 0.5440 - 0.39978*float64(n) + 0.025054*float64(n)*float64(n) - 0.0006714*math.Pow(float64(n), 3)
		sigma = math.Exp(1.3822 - 0.77857*float64(n) + 0.062767*float64(n)*float64(n) - 0.0020322*math.Pow(float64(n), 3))
		if g-lw <= 0 {
			return w, 0, nil
		}
		z := (math.Log(g-lw) - mu) / sigma
		return w, 1 - NormalCDF(z), nil
	}
	mu = -1.5861 - 0.31082*ln - 0.083751*ln*ln + 0.0038915*ln*ln*ln
	sigma = math.Exp(-0.4803 - 0.082676*ln + 0.0030302*ln*ln)
	z := (lw - mu) / sigma
	return w, 1 - NormalCDF(z), nil
}

func abs(x float64) float64 { return math.Abs(x) }

// ParetoFront returns the indices of the non-dominated points among the
// given objective vectors, where every objective is minimised. A point p
// dominates q when p is no worse than q in every objective and strictly
// better in at least one (Section 5.3.1 selects the first-order Pareto
// front of logical blocks as the document's interest points).
func ParetoFront(points [][]float64) []int {
	var front []int
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i != j && dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, i)
		}
	}
	return front
}

// NonDominatedSort performs full non-dominated sorting, returning successive
// Pareto fronts (front 0 first) covering every point.
func NonDominatedSort(points [][]float64) [][]int {
	remaining := make([]int, len(points))
	for i := range remaining {
		remaining[i] = i
	}
	var fronts [][]int
	for len(remaining) > 0 {
		var front, rest []int
		for _, i := range remaining {
			dominated := false
			for _, j := range remaining {
				if i != j && dominates(points[j], points[i]) {
					dominated = true
					break
				}
			}
			if dominated {
				rest = append(rest, i)
			} else {
				front = append(front, i)
			}
		}
		if len(front) == 0 { // all mutually dominated: numerically impossible, but terminate
			front = rest
			rest = nil
		}
		fronts = append(fronts, front)
		remaining = rest
	}
	return fronts
}

func dominates(p, q []float64) bool {
	better := false
	for k := range p {
		if p[k] > q[k] {
			return false
		}
		if p[k] < q[k] {
			better = true
		}
	}
	return better
}
