package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Variance(xs); math.Abs(got-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs should yield 0")
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Errorf("StdDev = %v", got)
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if got := Pearson(x, y); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect correlation = %v", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(x, neg); math.Abs(got+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %v", got)
	}
	if got := Pearson(x, []float64{3, 3, 3, 3, 3}); got != 0 {
		t.Errorf("zero-variance correlation = %v", got)
	}
	if got := Pearson([]float64{1}, []float64{2}); got != 0 {
		t.Errorf("short correlation = %v", got)
	}
}

func TestPearsonBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(20)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
			y[i] = r.NormFloat64()
		}
		rho := Pearson(x, y)
		return rho >= -1-1e-9 && rho <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInflectionPoint(t *testing.T) {
	// A sigmoid-like curve: convex then concave, inflection near the middle.
	var f []float64
	for i := -10; i <= 10; i++ {
		f = append(f, 1/(1+math.Exp(-float64(i))))
	}
	ip := InflectionPoint(f)
	if ip < 7 || ip > 13 {
		t.Errorf("sigmoid inflection at %d, want near 10", ip)
	}
	// Monotone convex series (no sign change).
	var conv []float64
	for i := 0; i < 10; i++ {
		conv = append(conv, float64(i*i))
	}
	if got := InflectionPoint(conv); got != -1 {
		t.Errorf("convex inflection = %d, want -1", got)
	}
	if got := InflectionPoint([]float64{1, 2}); got != -1 {
		t.Errorf("short series inflection = %d", got)
	}
}

func TestWelchTTest(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a := make([]float64, 50)
	b := make([]float64, 50)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = r.NormFloat64() + 2 // clearly shifted
	}
	res, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-6 {
		t.Errorf("shifted samples p = %v, want tiny", res.P)
	}
	if res.T >= 0 {
		t.Errorf("t should be negative for a < b: %v", res.T)
	}
	// Same distribution: p should usually be large.
	same, err := WelchTTest(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(same.T) > 1e-9 || same.P < 0.99 {
		t.Errorf("identical samples: t=%v p=%v", same.T, same.P)
	}
	if _, err := WelchTTest([]float64{1}, a); err == nil {
		t.Error("insufficient data not reported")
	}
}

func TestPairedTTest(t *testing.T) {
	a := []float64{0.8, 0.9, 0.85, 0.95, 0.88, 0.91, 0.87, 0.9}
	b := make([]float64, len(a))
	for i := range a {
		b[i] = a[i] - 0.05 // consistent improvement
	}
	res, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-6 || res.T <= 0 {
		t.Errorf("consistent improvement: t=%v p=%v", res.T, res.P)
	}
	if _, err := PairedTTest(a, a[:3]); err == nil {
		t.Error("length mismatch not reported")
	}
	eq, _ := PairedTTest(a, a)
	if eq.P != 1 {
		t.Errorf("identical pairs p = %v", eq.P)
	}
}

func TestTDistributionPValues(t *testing.T) {
	// Known critical values: t=2.045, df=29 -> two-sided p ≈ 0.05.
	p := tTwoSidedP(2.045, 29)
	if math.Abs(p-0.05) > 0.002 {
		t.Errorf("t=2.045 df=29 p = %v, want ≈0.05", p)
	}
	// t=0 -> p=1.
	if p := tTwoSidedP(0, 10); math.Abs(p-1) > 1e-9 {
		t.Errorf("t=0 p = %v", p)
	}
}

func TestNormalCDFQuantile(t *testing.T) {
	if got := NormalCDF(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Φ(0) = %v", got)
	}
	if got := NormalCDF(1.959964); math.Abs(got-0.975) > 1e-5 {
		t.Errorf("Φ(1.96) = %v", got)
	}
	for _, p := range []float64{0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999} {
		x := NormalQuantile(p)
		if back := NormalCDF(x); math.Abs(back-p) > 1e-6 {
			t.Errorf("quantile round trip p=%v -> x=%v -> %v", p, x, back)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("quantile boundaries")
	}
}

func TestShapiroWilk(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	normal := make([]float64, 100)
	for i := range normal {
		normal[i] = r.NormFloat64()*3 + 10
	}
	w, p, err := ShapiroWilk(normal)
	if err != nil {
		t.Fatal(err)
	}
	if w < 0.95 {
		t.Errorf("normal sample W = %v, want > 0.95", w)
	}
	if p < 0.01 {
		t.Errorf("normal sample rejected: p = %v", p)
	}

	// Strongly non-normal (exponential-ish, heavy right tail).
	skewed := make([]float64, 100)
	for i := range skewed {
		skewed[i] = math.Exp(r.NormFloat64() * 1.5)
	}
	ws, ps, err := ShapiroWilk(skewed)
	if err != nil {
		t.Fatal(err)
	}
	if ws >= w {
		t.Errorf("skewed W=%v should be below normal W=%v", ws, w)
	}
	if ps > 0.01 {
		t.Errorf("skewed sample not rejected: p = %v", ps)
	}

	if _, _, err := ShapiroWilk([]float64{1, 2}); err == nil {
		t.Error("too-small sample not reported")
	}
	if _, _, err := ShapiroWilk([]float64{5, 5, 5, 5}); err == nil {
		t.Error("constant sample not reported")
	}
}

func TestParetoFront(t *testing.T) {
	// Minimise both coordinates. Points: (0,3) (1,1) (3,0) are the front;
	// (2,2) is dominated by (1,1); (4,4) dominated by everything.
	points := [][]float64{{0, 3}, {1, 1}, {3, 0}, {2, 2}, {4, 4}}
	front := ParetoFront(points)
	want := map[int]bool{0: true, 1: true, 2: true}
	if len(front) != 3 {
		t.Fatalf("front = %v", front)
	}
	for _, i := range front {
		if !want[i] {
			t.Errorf("unexpected front member %d", i)
		}
	}
}

func TestNonDominatedSort(t *testing.T) {
	points := [][]float64{{0, 0}, {1, 1}, {2, 2}, {0, 2}, {2, 0}}
	fronts := NonDominatedSort(points)
	if len(fronts) < 2 {
		t.Fatalf("fronts = %v", fronts)
	}
	if len(fronts[0]) != 1 || fronts[0][0] != 0 {
		t.Errorf("first front = %v, want [0]", fronts[0])
	}
	total := 0
	for _, f := range fronts {
		total += len(f)
	}
	if total != len(points) {
		t.Errorf("fronts cover %d of %d points", total, len(points))
	}
}

// Property: every point in the Pareto front is non-dominated, and every
// point outside it is dominated by some front member or another point.
func TestParetoFrontProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{float64(r.Intn(10)), float64(r.Intn(10)), float64(r.Intn(10))}
		}
		front := ParetoFront(pts)
		inFront := map[int]bool{}
		for _, i := range front {
			inFront[i] = true
		}
		for _, i := range front {
			for j := range pts {
				if i != j && dominates(pts[j], pts[i]) {
					return false
				}
			}
		}
		for i := range pts {
			if inFront[i] {
				continue
			}
			dominatedByAny := false
			for j := range pts {
				if i != j && dominates(pts[j], pts[i]) {
					dominatedByAny = true
					break
				}
			}
			if !dominatedByAny {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
