package obs

import (
	"expvar"
	"strings"
	"testing"
)

// TestDeltaSince: counters and histogram buckets ship as increments,
// gauges as absolutes, and a counter that went backwards (worker
// restart) ships its full current value.
func TestDeltaSince(t *testing.T) {
	r := NewRegistry()
	r.Counter("done").Add(5)
	r.Gauge("depth").Set(2)
	h := r.Histogram("lat", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	prev := r.Snapshot()

	r.Counter("done").Add(3)
	r.Gauge("depth").Set(7)
	h.Observe(5)
	d := r.Snapshot().DeltaSince(prev)

	if got := d.Counters["done"]; got != 3 {
		t.Errorf("counter delta = %d, want 3", got)
	}
	if got := d.Gauges["depth"]; got != 7 {
		t.Errorf("gauge in delta = %v, want absolute 7", got)
	}
	hd := d.Histograms["lat"]
	if hd.Count != 1 || hd.Sum != 5 {
		t.Errorf("hist delta count/sum = %d/%v, want 1/5", hd.Count, hd.Sum)
	}
	if hd.Counts[1] != 1 || hd.Counts[0] != 0 {
		t.Errorf("hist delta buckets = %v, want [0 1 0]", hd.Counts)
	}

	// Restart: current counter below previous ships in full.
	fresh := NewRegistry()
	fresh.Counter("done").Add(2)
	d2 := fresh.Snapshot().DeltaSince(r.Snapshot())
	if got := d2.Counters["done"]; got != 2 {
		t.Errorf("post-restart delta = %d, want full 2", got)
	}

	// A flat registry produces an empty (wire-cheap) delta.
	d3 := r.Snapshot().DeltaSince(r.Snapshot())
	if len(d3.Counters) != 0 || len(d3.Histograms) != 0 {
		t.Errorf("no-change delta carries data: %+v", d3)
	}
}

// TestRegistryMerge: deltas fold into a fleet registry with the shard
// identity as a real label, accumulating across shipments.
func TestRegistryMerge(t *testing.T) {
	fleet := NewRegistry()
	worker := NewRegistry()
	worker.Counter("serve.completed").Add(4)
	worker.Gauge("serve.inflight").Set(2)
	worker.Histogram("lat", []float64{1, 10}).Observe(3)
	snap := worker.Snapshot()

	fleet.Merge(snap, L("shard", "3"))
	fleet.Merge(snap, L("shard", "3")) // second shipment accumulates

	if got := fleet.Counter(`serve.completed{shard="3"}`).Value(); got != 8 {
		t.Errorf("merged counter = %d, want 8", got)
	}
	if got := fleet.Gauge(`serve.inflight{shard="3"}`).Value(); got != 2 {
		t.Errorf("merged gauge = %v, want 2 (last value wins)", got)
	}
	mh := fleet.Histogram(`lat{shard="3"}`, []float64{1, 10})
	if mh.Count() != 2 || mh.Sum() != 6 {
		t.Errorf("merged hist count/sum = %d/%v, want 2/6", mh.Count(), mh.Sum())
	}

	// A corrupt wire histogram (bad bounds) is dropped, not a panic.
	fleet.Merge(Snapshot{Histograms: map[string]HistogramSnapshot{
		"evil": {Count: 1, Bounds: []float64{5, 1}, Counts: []int64{1, 0, 0}},
	}}, L("shard", "3"))
	if got := fleet.Counter("merge.dropped").Value(); got != 1 {
		t.Errorf("merge.dropped = %d, want 1", got)
	}

	// A layout mismatch against an existing series is dropped too.
	fleet.Merge(Snapshot{Histograms: map[string]HistogramSnapshot{
		"lat": {Count: 1, Bounds: []float64{2, 20}, Counts: []int64{1, 0, 0}},
	}}, L("shard", "3"))
	if got := fleet.Counter("merge.dropped").Value(); got != 2 {
		t.Errorf("merge.dropped after mismatch = %d, want 2", got)
	}
	if mh.Count() != 2 {
		t.Errorf("mismatched delta perturbed the series: count %d", mh.Count())
	}
}

// TestHistogramBoundsValidation: misdeclared layouts fail loudly at
// registration instead of misbucketing forever.
func TestHistogramBoundsValidation(t *testing.T) {
	r := NewRegistry()
	for name, bounds := range map[string][]float64{
		"empty":     {},
		"descend":   {5, 1},
		"duplicate": {1, 1, 2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Histogram(%s, %v) did not panic", name, bounds)
				}
			}()
			r.Histogram(name, bounds)
		}()
	}
	// nil still selects the default layout; an existing histogram ignores
	// later (even bad) bounds because registration already fixed them.
	if h := r.Histogram("ok", nil); h == nil {
		t.Fatal("nil bounds must register the default layout")
	}
	if h := r.Histogram("ok", nil); h == nil {
		t.Fatal("re-lookup failed")
	}
}

// TestExpvarDuplicateGuard: publishing the same expvar name twice (from
// one or several registries) is idempotent, not a panic — expvar.Publish
// itself panics on duplicates, so the guard is what keeps two servers in
// one process (vs2d admin + tests) safe.
func TestExpvarDuplicateGuard(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("x").Add(1)
	name := "obs-test-dup-guard"
	a.Expvar(name)
	b.Expvar(name) // would panic without the guard
	a.Expvar(name)
	v := expvar.Get(name)
	if v == nil {
		t.Fatal("expvar never published")
	}
	if s := v.String(); !strings.Contains(s, `"x":1`) {
		t.Errorf("expvar serves the wrong registry: %s", s)
	}
}
