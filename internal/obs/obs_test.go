package obs

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// stepClock returns a deterministic time source advancing step per call,
// starting at base. New, Child, End and AddEvent each consume exactly one
// tick, so span durations under this clock are a function of the API call
// sequence alone.
func stepClock(base time.Time, step time.Duration) func() time.Time {
	var mu sync.Mutex
	t := base
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		cur := t
		t = t.Add(step)
		return cur
	}
}

var testBase = time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)

// TestObsCounterConcurrent hammers one counter and one gauge from many
// goroutines; run under -race this is the data-race proof for the atomic
// implementation.
func TestObsCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("hits").Inc()
				r.Counter("bytes").Add(3)
				r.Gauge("last").Set(float64(w))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != workers*perWorker {
		t.Errorf("hits = %d, want %d", got, workers*perWorker)
	}
	if got := r.Counter("bytes").Value(); got != 3*workers*perWorker {
		t.Errorf("bytes = %d, want %d", got, 3*workers*perWorker)
	}
	if g := r.Gauge("last").Value(); g < 0 || g >= workers {
		t.Errorf("gauge = %v, want one of the written worker ids", g)
	}
}

// TestObsHistogramConcurrent checks bucketing and the atomic sum under
// concurrent observation.
func TestObsHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(0.5) // bucket 0
				h.Observe(5)   // bucket 1
				h.Observe(50)  // bucket 2
				h.Observe(500) // overflow
			}
		}()
	}
	wg.Wait()
	n := int64(workers * perWorker)
	if h.Count() != 4*n {
		t.Fatalf("count = %d, want %d", h.Count(), 4*n)
	}
	wantSum := float64(n) * (0.5 + 5 + 50 + 500)
	if h.Sum() != wantSum {
		t.Errorf("sum = %v, want %v", h.Sum(), wantSum)
	}
	snap := r.Snapshot().Histograms["lat"]
	for i, want := range []int64{n, n, n, n} {
		if snap.Counts[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, snap.Counts[i], want)
		}
	}
}

// TestObsSpanTree builds a trace shaped like a pipeline run and asserts
// the snapshot mirrors the call structure.
func TestObsSpanTree(t *testing.T) {
	tr := New("extract", WithClock(stepClock(testBase, time.Millisecond)))
	seg := tr.Root().Child("segment")
	split := seg.Child("split")
	split.SetAttr("depth", 0)
	split.SetAttr("elements", 12)
	split.End()
	seg.End()
	sel := tr.Root().Child("disambiguate")
	sel.AddEvent("select", Str("entity", "EventTitle"), F64("distance", 0.25))
	sel.End()
	tr.Finish()

	snap := tr.Snapshot()
	if snap.Name != "extract" || len(snap.Children) != 2 {
		t.Fatalf("root = %q with %d children, want extract with 2", snap.Name, len(snap.Children))
	}
	segSnap := snap.Children[0]
	if segSnap.Name != "segment" || len(segSnap.Children) != 1 {
		t.Fatalf("child 0 = %q with %d children, want segment with 1", segSnap.Name, len(segSnap.Children))
	}
	sp := segSnap.Children[0]
	if sp.Name != "split" || sp.Attrs["depth"] != 0 || sp.Attrs["elements"] != 12 {
		t.Errorf("split snapshot = %+v, want depth=0 elements=12", sp)
	}
	selSnap := snap.Children[1]
	if len(selSnap.Events) != 1 || selSnap.Events[0].Name != "select" {
		t.Fatalf("disambiguate events = %+v, want one select event", selSnap.Events)
	}
	if got := selSnap.Events[0].Attrs["entity"]; got != "EventTitle" {
		t.Errorf("event entity = %v, want EventTitle", got)
	}
	// Every span was ended, so durations are positive and children nest
	// inside their parents.
	var check func(s SpanSnapshot)
	check = func(s SpanSnapshot) {
		if s.DurationNS <= 0 {
			t.Errorf("span %q duration = %d, want > 0", s.Name, s.DurationNS)
		}
		for _, c := range s.Children {
			if c.Start.Before(s.Start) {
				t.Errorf("child %q starts before parent %q", c.Name, s.Name)
			}
			check(c)
		}
	}
	check(snap)
}

// TestObsSnapshotGolden locks the JSON wire format: the stepped clock
// makes every timestamp and duration a pure function of the call
// sequence, so the serialisation must match byte for byte.
func TestObsSnapshotGolden(t *testing.T) {
	tr := New("run", WithClock(stepClock(testBase, time.Second)))
	seg := tr.Root().Child("segment") // t+1
	seg.SetAttr("blocks", 3)
	seg.AddEvent("fault.injected", Str("kind", "delay")) // t+2
	seg.End()                                            // t+3
	tr.Finish()                                          // t+4

	data, err := json.MarshalIndent(tr.Snapshot(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{
  "name": "run",
  "start": "2026-01-02T03:04:05Z",
  "duration_ns": 4000000000,
  "children": [
    {
      "name": "segment",
      "start": "2026-01-02T03:04:06Z",
      "duration_ns": 2000000000,
      "attrs": {
        "blocks": 3
      },
      "events": [
        {
          "time": "2026-01-02T03:04:07Z",
          "name": "fault.injected",
          "attrs": {
            "kind": "delay"
          }
        }
      ]
    }
  ]
}`
	if string(data) != golden {
		t.Errorf("snapshot JSON drifted from golden.\ngot:\n%s\nwant:\n%s", data, golden)
	}
}

// TestObsMetricsSnapshotJSON checks the registry snapshot is valid,
// round-trippable JSON with finite bounds.
func TestObsMetricsSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("extract.runs").Inc()
	r.Gauge("blocks.last").Set(7)
	r.Histogram("phase.segment.ms", nil).Observe(3.5)
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	if back.Counters["extract.runs"] != 1 {
		t.Errorf("counters = %+v, want extract.runs=1", back.Counters)
	}
	if back.Gauges["blocks.last"] != 7 {
		t.Errorf("gauges = %+v, want blocks.last=7", back.Gauges)
	}
	h := back.Histograms["phase.segment.ms"]
	if h.Count != 1 || h.Sum != 3.5 {
		t.Errorf("histogram = %+v, want count=1 sum=3.5", h)
	}
	if len(h.Counts) != len(h.Bounds)+1 {
		t.Errorf("counts/bounds = %d/%d, want counts = bounds+1", len(h.Counts), len(h.Bounds))
	}
}

// TestObsNilSafety proves the disabled fast path: every operation on nil
// trace, span and registry values is a no-op, and context lookups on a
// bare context return nil.
func TestObsNilSafety(t *testing.T) {
	var tr *Trace
	var sp *Span
	var r *Registry

	tr.Finish()
	if tr.Root() != nil {
		t.Error("nil trace Root() != nil")
	}
	if got := tr.Snapshot(); got.Name != "" {
		t.Errorf("nil trace snapshot = %+v", got)
	}
	if sp.Child("x") != nil {
		t.Error("nil span Child() != nil")
	}
	sp.End()
	sp.SetAttr("k", 1)
	sp.AddEvent("e")
	if sp.Duration() != 0 || sp.Name() != "" {
		t.Error("nil span has non-zero duration or name")
	}
	r.Counter("c").Inc()
	r.Gauge("g").Set(1)
	r.Histogram("h", nil).Observe(1)
	if r.Counter("c").Value() != 0 {
		t.Error("nil registry counter has a value")
	}
	r.Expvar("nil-registry")

	ctx := context.Background()
	if TraceFrom(ctx) != nil || SpanFrom(ctx) != nil {
		t.Error("bare context carries a trace or span")
	}
	if WithTrace(ctx, nil) != ctx || WithSpan(ctx, nil) != ctx {
		t.Error("attaching nil should return ctx unchanged")
	}
}

// TestObsContextCarriage checks the two-key carriage: trace and current
// span travel independently and SpanFrom picks up the innermost span.
func TestObsContextCarriage(t *testing.T) {
	tr := New("root")
	ctx := WithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("trace not recovered from context")
	}
	phase := tr.Root().Child("segment")
	pctx := WithSpan(ctx, phase)
	if SpanFrom(pctx) != phase {
		t.Fatal("span not recovered from context")
	}
	if SpanFrom(ctx) != nil {
		t.Fatal("outer context must not see the phase span")
	}
	if TraceFrom(pctx) != tr {
		t.Fatal("phase context lost the trace")
	}
}

// TestObsConcurrentSpans annotates one span tree from many goroutines;
// meaningful under -race.
func TestObsConcurrentSpans(t *testing.T) {
	tr := New("root")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sp := tr.Root().Child("worker")
			for i := 0; i < 200; i++ {
				sp.SetAttr("i", i)
				sp.AddEvent("tick", Int("n", i))
			}
			sp.End()
		}(w)
	}
	wg.Wait()
	tr.Finish()
	snap := tr.Snapshot()
	if len(snap.Children) != 8 {
		t.Fatalf("children = %d, want 8", len(snap.Children))
	}
	for _, c := range snap.Children {
		if len(c.Events) != 200 {
			t.Errorf("worker events = %d, want 200", len(c.Events))
		}
	}
}

// TestObsExpvar publishes a registry and checks idempotence.
func TestObsExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	r.Expvar("obs-test-registry")
	r.Expvar("obs-test-registry") // second publish must not panic
}
