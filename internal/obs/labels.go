package obs

import (
	"sort"
	"strings"
)

// Metric labels. The registry itself is a flat name -> metric map; a
// labelled series is a name carrying a canonical label suffix,
// `base{key="value",...}`, produced by Name. Canonicalisation (sorted
// keys, escaped values) makes the encoding injective, so two call sites
// naming the same series always hit the same metric, and WritePrometheus
// can decode the suffix back into real Prometheus labels instead of
// leaking key-suffix pseudo-names like "shard.3.up".

// Label is one key/value pair attached to a metric series.
type Label struct {
	Key   string
	Value string
}

// L builds a label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Name encodes a labelled series name: `base{k="v",...}` with keys
// sorted and values escaped. With no labels it returns base unchanged.
// If base already carries a label suffix, the new labels merge into it
// (a repeated key keeps the later value).
func Name(base string, labels ...Label) string {
	if len(labels) == 0 {
		return base
	}
	prefix, existing := SplitName(base)
	merged := make(map[string]string, len(existing)+len(labels))
	for _, l := range existing {
		merged[l.Key] = l.Value
	}
	for _, l := range labels {
		merged[l.Key] = l.Value
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(prefix)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(merged[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// SplitName decodes a series name into its base and labels. A name
// without a well-formed label suffix is all base; labels come back in
// the suffix's (canonical, sorted) order.
func SplitName(name string) (string, []Label) {
	open := strings.IndexByte(name, '{')
	if open < 0 || !strings.HasSuffix(name, "}") {
		return name, nil
	}
	base := name[:open]
	body := name[open+1 : len(name)-1]
	var labels []Label
	for len(body) > 0 {
		eq := strings.Index(body, `="`)
		if eq < 0 {
			return name, nil // malformed: treat the whole thing as a base name
		}
		key := body[:eq]
		rest := body[eq+2:]
		end, value, ok := unescapeLabel(rest)
		if !ok {
			return name, nil
		}
		labels = append(labels, Label{Key: key, Value: value})
		body = rest[end:]
		if strings.HasPrefix(body, ",") {
			body = body[1:]
		} else if len(body) > 0 {
			return name, nil
		}
	}
	return base, labels
}

// escapeLabel escapes a label value per the Prometheus text format:
// backslash, double quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// unescapeLabel scans an escaped label value up to its closing quote,
// returning the index just past the quote and the decoded value.
func unescapeLabel(s string) (end int, value string, ok bool) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			return i + 1, b.String(), true
		case '\\':
			if i+1 >= len(s) {
				return 0, "", false
			}
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return 0, "", false
}
