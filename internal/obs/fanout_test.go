package obs

import (
	"sync"
	"testing"
)

// TestObsSpanFanoutNesting models the parallel segmenter's span shape:
// one "split" parent whose children are opened and ended from many
// goroutines at once (with events, attrs, and a concurrent snapshot in
// flight), asserting the nesting invariant vs2trace enforces — every
// child's duration fits inside its parent's — survives the fan-out.
// Runs under -race via the `make obs` target.
func TestObsSpanFanoutNesting(t *testing.T) {
	tr := New("segment")
	root := tr.Root().Child("split")

	const workers = 16
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			child := root.Child("split")
			child.SetAttr("depth", 1)
			child.AddEvent("merge", Int("elements", i), Int64("embed_cache_hits", int64(i)))
			grand := child.Child("split")
			grand.SetAttr("depth", 2)
			grand.End()
			child.End()
		}(i)
	}
	// Snapshot concurrently with the fan-out: readers must never block
	// or race writers.
	_ = root.Snapshot()
	wg.Wait()
	root.End()
	tr.Root().End()

	snap := tr.Root().Snapshot()
	var walk func(s SpanSnapshot)
	var spans int
	walk = func(s SpanSnapshot) {
		spans++
		for _, c := range s.Children {
			if c.DurationNS > s.DurationNS {
				t.Errorf("child %q (%dns) exceeds parent %q (%dns)", c.Name, c.DurationNS, s.Name, s.DurationNS)
			}
			walk(c)
		}
	}
	walk(snap)
	if want := 2 + 2*workers; spans != want {
		t.Fatalf("snapshot has %d spans, want %d", spans, want)
	}
}
