package obs

import (
	"sync"
	"testing"
)

// TestGaugeAdd: Add shifts the last value, composes with Set, and
// no-ops on the nil gauge like every other metric.
func TestGaugeAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("fleet.up")
	g.Add(3)
	if got := g.Value(); got != 3 {
		t.Fatalf("after Add(3): %v, want 3", got)
	}
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("after Add(-1): %v, want 2", got)
	}
	g.Set(10)
	g.Add(0.5)
	if got := g.Value(); got != 10.5 {
		t.Fatalf("after Set(10)+Add(0.5): %v, want 10.5", got)
	}
	var nilG *Gauge
	nilG.Add(7) // must not panic
}

// TestGaugeAddConcurrent: the CAS loop loses no updates under
// contention — the up/down accounting a fleet of shard runners does.
func TestGaugeAddConcurrent(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("fleet.up")
	const goroutines, rounds = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				g.Add(1)
				g.Add(-1)
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != goroutines*rounds {
		t.Fatalf("concurrent Add lost updates: %v, want %d", got, goroutines*rounds)
	}
}
