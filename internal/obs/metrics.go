package obs

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Registry aggregates the pipeline's counters, gauges and histograms.
// Metric lookup is a read-locked map access; metric updates are pure
// atomics, safe under -race from any number of goroutines. A nil
// *Registry is a valid, disabled registry: lookups return nil metrics
// whose methods no-op, so call sites record unconditionally.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float.
type Gauge struct{ bits atomic.Uint64 }

// Set records the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last recorded value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Add shifts the gauge by delta atomically (CAS loop), for up/down
// accounting — live-shard counts, membership sizes — where concurrent
// Set calls would lose updates.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Histogram is a fixed-bucket distribution. Observations land in the
// first bucket whose upper bound is ≥ the value; values beyond the last
// bound land in an implicit overflow bucket. Updates are atomic and
// allocation-free.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is overflow
	count   atomic.Int64
	sumBits atomic.Uint64
}

// LatencyBucketsMS is the default bucket layout for phase latencies, in
// milliseconds: 50µs to 5s on a roughly logarithmic grid.
var LatencyBucketsMS = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use with
// the given bucket bounds (nil selects LatencyBucketsMS). The first
// creation fixes the layout; later bounds arguments are ignored.
// Explicit bounds must be non-empty and strictly increasing —
// registration panics otherwise, because a misdeclared layout would
// silently misbucket every later observation.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	if bounds != nil {
		if err := validateBounds(bounds); err != nil {
			panic(fmt.Sprintf("obs: histogram %q: %v", name, err))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		if bounds == nil {
			bounds = LatencyBucketsMS
		}
		h = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
		r.hists[name] = h
	}
	return h
}

// validateBounds rejects bucket layouts that would misbucket: empty
// bound lists and bounds that are not strictly increasing (which
// includes NaN anywhere in the list).
func validateBounds(bounds []float64) error {
	if len(bounds) == 0 {
		return errors.New("empty bucket bounds")
	}
	for i, b := range bounds {
		if b != b { // NaN
			return fmt.Errorf("bound %d is NaN", i)
		}
		if i > 0 && bounds[i-1] >= b {
			return fmt.Errorf("bounds not strictly increasing: bounds[%d]=%v >= bounds[%d]=%v",
				i-1, bounds[i-1], i, b)
		}
	}
	return nil
}

// HistogramSnapshot is the immutable form of one histogram. Counts has
// one entry per bound plus a final overflow bucket; bounds are finite so
// the snapshot is valid JSON (no +Inf).
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry. Concurrent updates during the copy yield
// a consistent-enough view for monitoring (each metric is read
// atomically).
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	snap := Snapshot{}
	if len(r.counters) > 0 {
		snap.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			snap.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		snap.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			snap.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			hs := HistogramSnapshot{
				Count:  h.Count(),
				Sum:    h.Sum(),
				Bounds: append([]float64(nil), h.bounds...),
				Counts: make([]int64, len(h.counts)),
			}
			for i := range h.counts {
				hs.Counts[i] = h.counts[i].Load()
			}
			snap.Histograms[name] = hs
		}
	}
	return snap
}

// MarshalJSON encodes the registry as its snapshot.
func (r *Registry) MarshalJSON() ([]byte, error) { return json.Marshal(r.Snapshot()) }

var expvarMu sync.Mutex

// Expvar publishes the registry's snapshot under the given expvar name,
// making it visible on /debug/vars when the process serves one.
// Idempotent: a name already published (by this or any other registry) is
// left in place.
func (r *Registry) Expvar(name string) {
	if r == nil {
		return
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
