package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// fakeClock drives a Window deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testWindow(span time.Duration, slots int) (*Window, *fakeClock) {
	w := NewWindow([]float64{1, 2, 5, 10, 100}, span, slots)
	c := &fakeClock{t: time.Unix(1_000_000, 0)}
	w.now = c.now
	return w, c
}

func TestWindowQuantile(t *testing.T) {
	w, _ := testWindow(time.Minute, 6)
	// 90 observations in (0,1], 10 in (5,10]: p50 inside the first
	// bucket, p99 inside the fourth.
	for i := 0; i < 90; i++ {
		w.Observe(0.5)
	}
	for i := 0; i < 10; i++ {
		w.Observe(7)
	}
	if p50 := w.Quantile(0.50); p50 <= 0 || p50 > 1 {
		t.Errorf("p50 = %v, want in (0,1]", p50)
	}
	if p95 := w.Quantile(0.95); p95 < 5 || p95 > 10 {
		t.Errorf("p95 = %v, want in [5,10]", p95)
	}
	if count, sum := w.Totals(); count != 100 || math.Abs(sum-115) > 1e-9 {
		t.Errorf("totals = %d, %v; want 100, 115", count, sum)
	}
}

func TestWindowAgesOut(t *testing.T) {
	w, c := testWindow(time.Minute, 6)
	w.Observe(3)
	if count, _ := w.Totals(); count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	c.advance(30 * time.Second)
	w.Observe(3)
	if count, _ := w.Totals(); count != 2 {
		t.Fatalf("count after half window = %d, want 2", count)
	}
	c.advance(45 * time.Second) // first observation is now past the window
	if count, _ := w.Totals(); count != 1 {
		t.Errorf("count after aging = %d, want 1", count)
	}
	c.advance(2 * time.Minute)
	if count, _ := w.Totals(); count != 0 {
		t.Errorf("count after full expiry = %d, want 0", count)
	}
	if q := w.Quantile(0.99); q != 0 {
		t.Errorf("quantile of empty window = %v, want 0", q)
	}
}

func TestWindowOverflowClampsToLastBound(t *testing.T) {
	w, _ := testWindow(time.Minute, 4)
	for i := 0; i < 10; i++ {
		w.Observe(1e6) // far past the last bound
	}
	if q := w.Quantile(0.99); q != 100 {
		t.Errorf("overflow quantile = %v, want clamp to last bound 100", q)
	}
}

func TestWindowNilSafe(t *testing.T) {
	var w *Window
	w.Observe(1)
	if q := w.Quantile(0.5); q != 0 {
		t.Errorf("nil window quantile = %v", q)
	}
	if c, s := w.Totals(); c != 0 || s != 0 {
		t.Errorf("nil window totals = %d, %v", c, s)
	}
	if snap := w.Snapshot(); snap.Count != 0 {
		t.Errorf("nil window snapshot count = %d", snap.Count)
	}
}

// TestObsWindowConcurrent hits one window from many goroutines under
// the race detector (the `make obs` target runs -run TestObs -race).
func TestObsWindowConcurrent(t *testing.T) {
	w := NewWindow(nil, time.Second, 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				w.Observe(float64(i % 50))
				if i%50 == 0 {
					w.Quantile(0.95)
					w.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if count, _ := w.Totals(); count == 0 {
		t.Error("no observations landed")
	}
}
