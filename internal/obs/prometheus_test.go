package obs

import (
	"strings"
	"testing"
)

// TestPrometheusGolden pins the exposition format byte for byte:
// deterministic family order, labelled series decoded from canonical
// names, cumulative histogram buckets with le labels.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("extract.runs").Add(17)
	r.Counter(Name("shard.restarts", L("shard", "1"))).Add(2)
	r.Counter(Name("shard.restarts", L("shard", "0"))).Add(0) // zero still exposes
	r.Gauge(Name("shard.up", L("shard", "0"))).Set(1)
	r.Gauge(Name("shard.up", L("shard", "1"))).Set(0)
	r.Gauge("serve.inflight").Set(3.5)
	h := r.Histogram("phase.segment.ms", []float64{1, 5, 25})
	h.Observe(0.4)
	h.Observe(3)
	h.Observe(3)
	h.Observe(100) // overflow bucket

	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE extract_runs counter
extract_runs 17
# TYPE phase_segment_ms histogram
phase_segment_ms_bucket{le="1"} 1
phase_segment_ms_bucket{le="5"} 3
phase_segment_ms_bucket{le="25"} 3
phase_segment_ms_bucket{le="+Inf"} 4
phase_segment_ms_sum 106.4
phase_segment_ms_count 4
# TYPE serve_inflight gauge
serve_inflight 3.5
# TYPE shard_restarts counter
shard_restarts{shard="0"} 0
shard_restarts{shard="1"} 2
# TYPE shard_up gauge
shard_up{shard="0"} 1
shard_up{shard="1"} 0
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch\n-- got --\n%s\n-- want --\n%s", got, want)
	}
}

// TestPrometheusLabelledHistogram: a labelled histogram series carries
// its labels on every bucket line, with le appended.
func TestPrometheusLabelledHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram(Name("phase.search.ms", L("shard", "2")), []float64{10}).Observe(4)
	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`phase_search_ms_bucket{shard="2",le="10"} 1`,
		`phase_search_ms_bucket{shard="2",le="+Inf"} 1`,
		`phase_search_ms_sum{shard="2"} 4`,
		`phase_search_ms_count{shard="2"} 1`,
	} {
		if !strings.Contains(b.String(), want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, b.String())
		}
	}
}

func TestNameSplitRoundTrip(t *testing.T) {
	cases := []struct {
		base   string
		labels []Label
		want   string
	}{
		{"shard.up", nil, "shard.up"},
		{"shard.up", []Label{L("shard", "3")}, `shard.up{shard="3"}`},
		{"x", []Label{L("b", "2"), L("a", "1")}, `x{a="1",b="2"}`},
		{`x{a="1"}`, []Label{L("b", "2")}, `x{a="1",b="2"}`},
		{"esc", []Label{L("k", `quote " back \ nl`+"\n")}, `esc{k="quote \" back \\ nl\n"}`},
	}
	for _, tc := range cases {
		got := Name(tc.base, tc.labels...)
		if got != tc.want {
			t.Errorf("Name(%q, %v) = %q, want %q", tc.base, tc.labels, got, tc.want)
			continue
		}
		base, labels := SplitName(got)
		round := Name(base, labels...)
		if round != got {
			t.Errorf("SplitName/Name round trip of %q = %q", got, round)
		}
	}
	if base, labels := SplitName("plain.name"); base != "plain.name" || labels != nil {
		t.Errorf("SplitName(plain.name) = %q, %v", base, labels)
	}
	if base, _ := SplitName("torn{a="); base != "torn{a=" {
		t.Errorf("malformed suffix should stay a base name, got %q", base)
	}
}
