// Package obs is the zero-dependency observability substrate of the VS2
// pipeline: a span-tree Trace that mirrors the pipeline's phase structure
// and segmentation recursion, and a Metrics registry of atomic counters,
// gauges and histograms.
//
// Both halves share one design rule: disabled observability must cost
// nothing on the hot path. Every method of Trace, Span and the metric
// types is safe on a nil receiver and returns immediately, so call sites
// instrument unconditionally —
//
//	sp := obs.SpanFrom(ctx)      // nil when tracing is off
//	child := sp.Child("split")   // nil in, nil out; no allocation
//	child.SetAttr("depth", d)    // no-op on nil
//	defer child.End()
//
// — and a run without a Trace on its context executes only nil checks.
//
// A Trace is owned by one extraction run. Span mutation is mutex-guarded
// so instrumented code may annotate spans from concurrent goroutines
// (phase workers, the fault harness) without racing; the snapshot API
// produces an immutable, JSON-marshalable copy of the whole tree.
package obs

import (
	"context"
	"encoding/json"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span or event. Values must be
// JSON-marshalable; the helpers Int, F64, Str and Bool cover the common
// cases.
type Attr struct {
	Key   string
	Value any
}

// Int builds an integer attribute.
func Int(key string, v int) Attr { return Attr{Key: key, Value: v} }

// Int64 builds a 64-bit integer attribute (atomic counters and cache
// statistics arrive as int64).
func Int64(key string, v int64) Attr { return Attr{Key: key, Value: v} }

// F64 builds a float attribute.
func F64(key string, v float64) Attr { return Attr{Key: key, Value: v} }

// Str builds a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, Value: v} }

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr { return Attr{Key: key, Value: v} }

// Event is a point-in-time occurrence inside a span: a merge decision, a
// degradation, an injected fault.
type Event struct {
	Time  time.Time
	Name  string
	Attrs []Attr
}

// Span is one timed node of the trace tree. The zero of *Span (nil) is a
// valid, disabled span: every method no-ops.
type Span struct {
	tr *Trace

	mu       sync.Mutex
	name     string
	start    time.Time
	end      time.Time
	attrs    []Attr
	events   []Event
	children []*Span
}

// Trace is the span tree of one pipeline run. Create one with New, attach
// it to the run's context with WithTrace, and Finish it when the run ends.
type Trace struct {
	root *Span
	now  func() time.Time
}

// Option configures a Trace.
type Option func(*Trace)

// WithClock substitutes the time source, for deterministic tests.
func WithClock(now func() time.Time) Option {
	return func(t *Trace) { t.now = now }
}

// New starts a trace whose root span carries the given name.
func New(name string, opts ...Option) *Trace {
	t := &Trace{now: time.Now}
	for _, o := range opts {
		o(t)
	}
	t.root = &Span{tr: t, name: name, start: t.now()}
	return t
}

// Root returns the root span; nil for a nil trace.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish ends the root span. Idempotent.
func (t *Trace) Finish() { t.Root().End() }

// Child starts a sub-span under s and returns it. Nil-safe: a nil parent
// yields a nil child, so an untraced run allocates nothing.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tr: s.tr, name: name, start: s.tr.now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End stamps the span's end time; the first call wins.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = s.tr.now()
	}
	s.mu.Unlock()
}

// SetAttr annotates the span; a later value for the same key replaces the
// earlier one.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// AddEvent records a point-in-time event inside the span.
func (s *Span) AddEvent(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	ev := Event{Time: s.tr.now(), Name: name, Attrs: attrs}
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

// Name returns the span's name; "" for nil.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration is end−start for a finished span, now−start for a live one.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return s.tr.now().Sub(s.start)
	}
	return s.end.Sub(s.start)
}

// SpanSnapshot is the immutable, JSON-marshalable form of one span. The
// wire format is the contract of `vs2 -trace` and the vs2trace validator.
type SpanSnapshot struct {
	Name       string          `json:"name"`
	Start      time.Time       `json:"start"`
	DurationNS int64           `json:"duration_ns"`
	Attrs      map[string]any  `json:"attrs,omitempty"`
	Events     []EventSnapshot `json:"events,omitempty"`
	Children   []SpanSnapshot  `json:"children,omitempty"`
}

// EventSnapshot is the immutable form of one event.
type EventSnapshot struct {
	Time  time.Time      `json:"time"`
	Name  string         `json:"name"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Snapshot copies the whole span tree. Live spans snapshot with their
// duration so far.
func (t *Trace) Snapshot() SpanSnapshot {
	if t == nil {
		return SpanSnapshot{}
	}
	return t.root.Snapshot()
}

// MarshalJSON encodes the trace as its snapshot.
func (t *Trace) MarshalJSON() ([]byte, error) { return json.Marshal(t.Snapshot()) }

// Snapshot copies the subtree rooted at s.
func (s *Span) Snapshot() SpanSnapshot {
	if s == nil {
		return SpanSnapshot{}
	}
	s.mu.Lock()
	snap := SpanSnapshot{
		Name:       s.name,
		Start:      s.start,
		DurationNS: s.durationLocked().Nanoseconds(),
		Attrs:      attrMap(s.attrs),
	}
	for _, ev := range s.events {
		snap.Events = append(snap.Events, EventSnapshot{Time: ev.Time, Name: ev.Name, Attrs: attrMap(ev.Attrs)})
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		snap.Children = append(snap.Children, c.Snapshot())
	}
	return snap
}

func (s *Span) durationLocked() time.Duration {
	if s.end.IsZero() {
		return s.tr.now().Sub(s.start)
	}
	return s.end.Sub(s.start)
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// Context carriage. The trace and the current span travel on separate
// keys: phase boundaries attach their own span so instrumented internals
// (segmenter, extractor, fault harness) pick up the right parent with one
// SpanFrom call at entry.

type traceKey struct{}
type spanKey struct{}

// WithTrace attaches a trace to the context. A nil trace returns ctx
// unchanged.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the context's trace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// WithSpan attaches the current span to the context. A nil span returns
// ctx unchanged.
func WithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFrom returns the context's current span, or nil. This is the single
// lookup instrumented code performs at a phase boundary; everything below
// passes *Span explicitly, so a disabled trace costs one failed context
// lookup per phase.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}
