package obs

import "math"

// Snapshot delta and registry merge: the plumbing that lets a worker
// process ship its telemetry to a supervising front end. The worker
// periodically snapshots its registry, computes the delta since the
// last shipment, and sends that; the front end folds each delta into a
// fleet registry, stamping every series with the worker's identity
// (e.g. shard="3") as a real label. Counters and histogram buckets
// accumulate across shipments — and across worker restarts, since a
// fresh child's counters restart from zero and deltas keep adding —
// while gauges are last-value-wins per series.

// DeltaSince returns the change from prev to s: counter increments,
// per-bucket histogram increments, and the current gauge values
// (gauges ship absolute — a delta of a last-value metric is
// meaningless). Zero counter deltas are omitted to keep the wire small.
// A counter or histogram that went backwards (the source restarted its
// registry) contributes its full current value.
func (s Snapshot) DeltaSince(prev Snapshot) Snapshot {
	d := Snapshot{}
	for name, cur := range s.Counters {
		delta := cur
		if p, ok := prev.Counters[name]; ok && p <= cur {
			delta = cur - p
		}
		if delta == 0 {
			continue
		}
		if d.Counters == nil {
			d.Counters = map[string]int64{}
		}
		d.Counters[name] = delta
	}
	if len(s.Gauges) > 0 {
		d.Gauges = make(map[string]float64, len(s.Gauges))
		for name, v := range s.Gauges {
			d.Gauges[name] = v
		}
	}
	for name, cur := range s.Histograms {
		hd := cur
		if p, ok := prev.Histograms[name]; ok && sameBounds(p.Bounds, cur.Bounds) && p.Count <= cur.Count {
			hd = HistogramSnapshot{
				Count:  cur.Count - p.Count,
				Sum:    cur.Sum - p.Sum,
				Bounds: cur.Bounds,
				Counts: make([]int64, len(cur.Counts)),
			}
			ok := true
			for i := range cur.Counts {
				if i >= len(p.Counts) || cur.Counts[i] < p.Counts[i] {
					ok = false
					break
				}
				hd.Counts[i] = cur.Counts[i] - p.Counts[i]
			}
			if !ok {
				hd = cur
			}
		}
		if hd.Count == 0 {
			continue
		}
		if d.Histograms == nil {
			d.Histograms = map[string]HistogramSnapshot{}
		}
		d.Histograms[name] = hd
	}
	return d
}

// Merge folds a snapshot delta into the registry, stamping every series
// with the extra labels: counters add, gauges set, histogram buckets
// add. Histogram deltas whose bucket layout cannot merge (mismatched or
// invalid bounds — possible only for a corrupt wire snapshot) are
// dropped and counted on the registry's own "merge.dropped" counter
// rather than panicking the merging process.
func (r *Registry) Merge(delta Snapshot, labels ...Label) {
	if r == nil {
		return
	}
	for name, v := range delta.Counters {
		r.Counter(Name(name, labels...)).Add(v)
	}
	for name, v := range delta.Gauges {
		r.Gauge(Name(name, labels...)).Set(v)
	}
	for name := range delta.Histograms {
		hd := delta.Histograms[name]
		if err := validateBounds(hd.Bounds); err != nil || len(hd.Counts) != len(hd.Bounds)+1 {
			r.Counter("merge.dropped").Inc()
			continue
		}
		h := r.Histogram(Name(name, labels...), hd.Bounds)
		if !h.mergeSnapshot(hd) {
			r.Counter("merge.dropped").Inc()
		}
	}
}

// mergeSnapshot adds a snapshot's buckets into the live histogram;
// false when the bucket layouts differ.
func (h *Histogram) mergeSnapshot(hs HistogramSnapshot) bool {
	if h == nil {
		return false
	}
	if !sameBounds(h.bounds, hs.Bounds) || len(hs.Counts) != len(h.counts) {
		return false
	}
	for i := range hs.Counts {
		h.counts[i].Add(hs.Counts[i])
	}
	h.count.Add(hs.Count)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + hs.Sum)
		if h.sumBits.CompareAndSwap(old, next) {
			return true
		}
	}
}

func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
